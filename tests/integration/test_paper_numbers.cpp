// One place that pins every headline number of the paper against this
// implementation (at full paper scale where cheap, strided where a full
// sweep would take minutes). EXPERIMENTS.md cross-references these.
#include <gtest/gtest.h>

#include "common/angles.h"
#include "delay/error_harness.h"
#include "delay/quantization.h"
#include "delay/table_sizing.h"
#include "delay/tablefree.h"
#include "fpga/report.h"
#include "hw/delay_fabric.h"
#include "imaging/scan_order.h"

namespace us3d {
namespace {

const imaging::SystemConfig kPaper = imaging::paper_system();

TEST(PaperNumbers, SecIIB_164BillionCoefficients) {
  EXPECT_EQ(kPaper.delays_per_frame(), 163'840'000'000LL);
}

TEST(PaperNumbers, SecIIC_2500BillionPerSecond) {
  EXPECT_NEAR(kPaper.delays_per_second() / 1.0e12, 2.46, 0.05);
}

TEST(PaperNumbers, SecIVB_About70SegmentsAtQuarterSample) {
  const delay::TableFreeEngine engine(kPaper);
  EXPECT_GE(engine.pwl().segment_count(), 60u);
  EXPECT_LE(engine.pwl().segment_count(), 80u);
  EXPECT_LE(engine.pwl().measured_max_error(), 0.25 + 1e-9);
}

TEST(PaperNumbers, SecVA_TableFoldsTo2Point5Million) {
  const auto s = delay::reference_table_sizing(kPaper, fx::kRefDelay18);
  EXPECT_EQ(s.raw_entries, 10'000'000);
  EXPECT_EQ(s.folded_entries, 2'500'000);
  EXPECT_DOUBLE_EQ(s.folded_bits, 45.0e6);  // 45 Mb
}

TEST(PaperNumbers, SecVB_832kCorrectionCoefficients) {
  const auto s = delay::steering_set_sizing(kPaper, fx::kCorrection18);
  EXPECT_EQ(s.total_coefficients, 832'000);
}

TEST(PaperNumbers, SecVB_StreamingBandwidth) {
  const auto s = delay::streaming_sizing(kPaper, fx::kRefDelay18,
                                         fx::kCorrection18, 128, 1024);
  EXPECT_DOUBLE_EQ(s.table_fetches_per_second, 960.0);
  EXPECT_NEAR(s.bandwidth_bytes_per_second / 1.0e9, 5.4, 0.15);  // ~5.3
}

TEST(PaperNumbers, SecVB_FabricReaches3Point3Tdelays) {
  const auto a = hw::analyze_fabric(kPaper, hw::FabricConfig{});
  EXPECT_NEAR(a.peak_delays_per_second / 1.0e12, 3.3, 0.05);
  EXPECT_TRUE(a.meets_realtime);
}

TEST(PaperNumbers, SecVIA_QuantizationThirtyThreePercentVsFewPercent) {
  delay::QuantizationExperimentConfig q13;
  q13.ref_format = fx::Format{13, 0, false};
  q13.corr_format = fx::Format{13, 0, true};
  q13.sum_format = fx::Format{14, 0, true};
  q13.trials = 1'000'000;
  const auto r13 = delay::run_quantization_experiment(q13);
  EXPECT_NEAR(r13.fraction_changed(), 0.33, 0.01);
  EXPECT_EQ(r13.max_abs_index_diff, 1);

  delay::QuantizationExperimentConfig q18;
  q18.trials = 1'000'000;
  const auto r18 = delay::run_quantization_experiment(q18);
  EXPECT_LT(r18.fraction_changed(), 0.05);
  EXPECT_EQ(r18.max_abs_index_diff, 1);
}

TEST(PaperNumbers, SecVIA_SteeringErrorShape) {
  // Strided sweep of the full paper system. Paper: avg ~44.6 ns
  // (~1.43 samples) inside directivity; max ~3.1 us (99 samples); raw
  // worst case bounded by the ~214-sample theoretical bound.
  const auto dir = probe::Directivity::from_db_down(
      kPaper.probe.pitch_m, kPaper.wavelength_m(), 6.0);
  const auto rep = delay::measure_steering_algorithmic_error(
      kPaper, delay::SweepStrides{16, 16, 50, 9, 9}, dir);
  EXPECT_LT(rep.samples_all.max_abs(), 214.0 + 1.0);
  EXPECT_GT(rep.samples_all.max_abs(), 100.0);
  EXPECT_NEAR(rep.samples_filtered.mean_abs(), 1.4, 0.7);
  EXPECT_LT(rep.max_error_seconds_filtered, 3.1e-6 * 1.2);
  EXPECT_NEAR(rep.mean_error_seconds_filtered * 1e9, 44.0, 20.0);
}

TEST(PaperNumbers, TableII_ShapeHolds) {
  fpga::Table2Inputs in;
  in.segment_count = 70;
  in.tablefree = {0.25, 2.0};
  in.tablesteer14 = {1.55, 100.0};
  in.tablesteer18 = {1.44, 100.0};
  in.tablefree_stats.evaluations = 1'000'000;
  in.tablefree_stats.total_steps = 17'000;
  in.tablefree_stats.max_steps_single_evaluation = 3;
  const auto rows =
      fpga::generate_table2(kPaper, fpga::xc7vx1140t(), in);
  ASSERT_EQ(rows.size(), 3u);
  // Paper row 1: 100% LUT / 23% FF / 0% BRAM / none / 1.67T / 7.8 / 42x42.
  EXPECT_NEAR(rows[0].lut_fraction, 1.0, 0.02);
  EXPECT_NEAR(rows[0].register_fraction, 0.23, 0.03);
  EXPECT_EQ(rows[0].channels_x, 42);
  EXPECT_NEAR(rows[0].frame_rate, 7.8, 0.7);
  // Paper row 3: 100% LUT / 30% FF / 25% BRAM / 5.3 GB/s / 3.3T / 19.7.
  EXPECT_NEAR(rows[2].lut_fraction, 1.0, 0.05);
  EXPECT_NEAR(rows[2].bram_fraction, 0.25, 0.02);
  EXPECT_NEAR(rows[2].frame_rate, 19.7, 0.7);
}

}  // namespace
}  // namespace us3d
