// End-to-end integration: phantom -> echoes -> beamforming with each delay
// architecture -> image metrics. This exercises every substrate together
// and verifies the paper's central claim at the image level: approximate
// delay generation (TABLEFREE within +/-2 samples, TABLESTEER accurate
// inside the apodized field of view) does not visibly degrade the
// reconstruction.
#include <gtest/gtest.h>

#include <cmath>

#include "acoustic/echo_synth.h"
#include "acoustic/metrics.h"
#include "beamform/beamformer.h"
#include "delay/exact.h"
#include "delay/full_table.h"
#include "delay/tablefree.h"
#include "delay/tablesteer.h"
#include "probe/presets.h"

namespace us3d {
namespace {

imaging::SystemConfig cfg() { return imaging::scaled_system(12, 15, 60); }

struct Pipeline {
  imaging::SystemConfig config = cfg();
  acoustic::Phantom phantom;
  beamform::EchoBuffer echoes;
  probe::MatrixProbe probe;
  probe::ApodizationMap apod;
  beamform::Beamformer bf;

  explicit Pipeline(int it = 7, int ip = 7, int id = 35)
      : phantom({acoustic::PointScatterer{
            imaging::VolumeGrid(config.volume)
                .focal_point(it, ip, id)
                .position,
            1.0}}),
        echoes(acoustic::synthesize_echoes(config, phantom)),
        probe(config.probe),
        apod(probe, probe::WindowKind::kHann),
        bf(config, apod) {}
};

TEST(EndToEnd, AllEnginesLocaliseTheScatterer) {
  Pipeline p;
  delay::ExactDelayEngine exact(p.config);
  delay::TableFreeEngine tablefree(p.config);
  delay::TableSteerEngine tablesteer(p.config);
  delay::FullTableEngine fulltable(p.config);

  for (delay::DelayEngine* engine :
       {static_cast<delay::DelayEngine*>(&exact),
        static_cast<delay::DelayEngine*>(&tablefree),
        static_cast<delay::DelayEngine*>(&tablesteer),
        static_cast<delay::DelayEngine*>(&fulltable)}) {
    const beamform::VolumeImage img = p.bf.reconstruct(p.echoes, *engine);
    const acoustic::PsfMetrics psf = acoustic::measure_psf(img);
    EXPECT_LE(acoustic::peak_offset_steps(psf, 7, 7, 35), 1.5)
        << engine->name() << " misplaced the scatterer";
  }
}

TEST(EndToEnd, ApproximateEnginesMatchExactImageClosely) {
  Pipeline p;
  delay::ExactDelayEngine exact(p.config);
  const beamform::VolumeImage ref = p.bf.reconstruct(p.echoes, exact);

  delay::TableFreeEngine tablefree(p.config);
  const beamform::VolumeImage img_tf = p.bf.reconstruct(p.echoes, tablefree);
  EXPECT_LT(beamform::VolumeImage::nrmse(ref, img_tf), 0.05);

  delay::TableSteerEngine tablesteer(p.config);
  const beamform::VolumeImage img_ts = p.bf.reconstruct(p.echoes, tablesteer);
  EXPECT_LT(beamform::VolumeImage::nrmse(ref, img_ts), 0.12);
}

TEST(EndToEnd, FullTableAndExactImagesAreIdentical) {
  Pipeline p;
  delay::ExactDelayEngine exact(p.config);
  delay::FullTableEngine table(p.config);
  const beamform::VolumeImage a = p.bf.reconstruct(p.echoes, exact);
  const beamform::VolumeImage b = p.bf.reconstruct(p.echoes, table);
  EXPECT_DOUBLE_EQ(beamform::VolumeImage::nrmse(a, b), 0.0);
}

TEST(EndToEnd, PeakAmplitudeBarelyDegraded) {
  // Sec. VI-A's argument, at image level: small selection errors cause a
  // tiny coherence loss, not a structural artifact.
  Pipeline p;
  delay::ExactDelayEngine exact(p.config);
  delay::TableFreeEngine tablefree(p.config);
  const auto ref = p.bf.reconstruct(p.echoes, exact).peak_abs();
  const auto tf = p.bf.reconstruct(p.echoes, tablefree).peak_abs();
  EXPECT_GT(std::abs(tf.value), 0.9 * std::abs(ref.value));
}

TEST(EndToEnd, OffAxisScattererStillLocalisedBySteering) {
  // A scatterer away from the volume centre: TABLESTEER's far-field
  // correction must still point at it.
  Pipeline p(2, 12, 50);
  delay::TableSteerEngine tablesteer(p.config);
  const beamform::VolumeImage img = p.bf.reconstruct(p.echoes, tablesteer);
  const acoustic::PsfMetrics psf = acoustic::measure_psf(img);
  EXPECT_LE(acoustic::peak_offset_steps(psf, 2, 12, 50), 2.0);
}

TEST(EndToEnd, TwoScatterersResolved) {
  Pipeline p;
  const imaging::VolumeGrid grid(p.config.volume);
  p.phantom = {
      {grid.focal_point(4, 7, 20).position, 1.0},
      {grid.focal_point(10, 7, 45).position, 1.0},
  };
  p.echoes = acoustic::synthesize_echoes(p.config, p.phantom);
  delay::TableSteerEngine engine(p.config);
  const beamform::VolumeImage img = p.bf.reconstruct(p.echoes, engine);
  // Both scatterer voxels are bright relative to the background midpoint.
  const float a = std::abs(img.at(4, 7, 20));
  const float b = std::abs(img.at(10, 7, 45));
  const float mid = std::abs(img.at(7, 7, 32));
  EXPECT_GT(a, 4.0f * mid);
  EXPECT_GT(b, 4.0f * mid);
}

}  // namespace
}  // namespace us3d
