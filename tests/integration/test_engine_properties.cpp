// Cross-engine property tests: invariants every delay architecture must
// satisfy, swept over system scales with parameterized gtest. These pin
// down behaviours the paper relies on implicitly (physicality, symmetry,
// order-independence of values) across all engines at once.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "delay/exact.h"
#include "delay/full_table.h"
#include "delay/tablefree.h"
#include "delay/tablesteer.h"
#include "imaging/scan_order.h"

namespace us3d {
namespace {

enum class EngineKind { kExact, kTableFree, kTableSteer18, kTableSteer14 };

const char* kind_name(EngineKind k) {
  switch (k) {
    case EngineKind::kExact: return "EXACT";
    case EngineKind::kTableFree: return "TABLEFREE";
    case EngineKind::kTableSteer18: return "TABLESTEER-18b";
    case EngineKind::kTableSteer14: return "TABLESTEER-14b";
  }
  return "?";
}

std::unique_ptr<delay::DelayEngine> make_engine(
    EngineKind kind, const imaging::SystemConfig& cfg) {
  switch (kind) {
    case EngineKind::kExact:
      return std::make_unique<delay::ExactDelayEngine>(cfg);
    case EngineKind::kTableFree:
      return std::make_unique<delay::TableFreeEngine>(cfg);
    case EngineKind::kTableSteer18:
      return std::make_unique<delay::TableSteerEngine>(
          cfg, delay::TableSteerConfig::bits18());
    case EngineKind::kTableSteer14:
      return std::make_unique<delay::TableSteerEngine>(
          cfg, delay::TableSteerConfig::bits14());
  }
  return nullptr;
}

/// (engine kind, probe side, lines, depths)
using Param = std::tuple<EngineKind, int, int, int>;

class EngineProperty : public ::testing::TestWithParam<Param> {
 protected:
  imaging::SystemConfig cfg_ = imaging::scaled_system(
      std::get<1>(GetParam()), std::get<2>(GetParam()),
      std::get<3>(GetParam()));
  std::unique_ptr<delay::DelayEngine> engine_ =
      make_engine(std::get<0>(GetParam()), cfg_);
};

TEST_P(EngineProperty, DelaysAreNonNegativeAndBounded) {
  engine_->begin_frame(Vec3{});
  const imaging::VolumeGrid grid(cfg_.volume);
  std::vector<std::int32_t> out(
      static_cast<std::size_t>(engine_->element_count()));
  // Upper bound: two-way flight to the deepest point plus the aperture
  // radius and a sample of slack.
  const probe::MatrixProbe probe(cfg_.probe);
  const auto bound = static_cast<std::int32_t>(
      cfg_.seconds_to_samples((2.0 * cfg_.volume.max_depth_m +
                               probe.max_element_radius()) /
                              cfg_.speed_of_sound) + 2.0);
  imaging::for_each_focal_point(
      grid, imaging::ScanOrder::kNappeByNappe,
      [&](const imaging::FocalPoint& fp) {
        engine_->compute(fp, out);
        for (const auto v : out) {
          ASSERT_GE(v, 0) << kind_name(std::get<0>(GetParam()));
          ASSERT_LE(v, bound) << kind_name(std::get<0>(GetParam()));
        }
      });
}

TEST_P(EngineProperty, DelaysIncreaseWithDepthAlongEveryLine) {
  engine_->begin_frame(Vec3{});
  const imaging::VolumeGrid grid(cfg_.volume);
  const auto n = static_cast<std::size_t>(engine_->element_count());
  std::vector<std::int32_t> shallow(n), deep(n);
  for (int it = 0; it < cfg_.volume.n_theta; it += 3) {
    for (int ip = 0; ip < cfg_.volume.n_phi; ip += 3) {
      engine_->compute(grid.focal_point(it, ip, 2), shallow);
      engine_->compute(grid.focal_point(it, ip, cfg_.volume.n_depth - 1),
                       deep);
      for (std::size_t e = 0; e < n; ++e) {
        ASSERT_GT(deep[e], shallow[e])
            << kind_name(std::get<0>(GetParam())) << " line (" << it << ","
            << ip << ") element " << e;
      }
    }
  }
}

TEST_P(EngineProperty, MirrorSymmetryOfTheVolume) {
  // Mirroring the line of sight in theta and the element in x must give
  // the same delay (all engines; for TABLESTEER this is the table-folding
  // correctness, for TABLEFREE pure geometry).
  engine_->begin_frame(Vec3{});
  const imaging::VolumeGrid grid(cfg_.volume);
  const probe::MatrixProbe probe(cfg_.probe);
  const auto n = static_cast<std::size_t>(engine_->element_count());
  std::vector<std::int32_t> a(n), b(n);
  const int nt = cfg_.volume.n_theta;
  const int nx = probe.elements_x();
  for (const int it : {0, nt / 3, nt - 1}) {
    const int k = cfg_.volume.n_depth / 2;
    engine_->compute(grid.focal_point(it, 1, k), a);
    engine_->compute(grid.focal_point(nt - 1 - it, 1, k), b);
    for (int iy = 0; iy < probe.elements_y(); ++iy) {
      for (int ix = 0; ix < nx; ++ix) {
        const auto e = static_cast<std::size_t>(probe.flat_index(ix, iy));
        const auto m =
            static_cast<std::size_t>(probe.flat_index(nx - 1 - ix, iy));
        ASSERT_EQ(a[e], b[m])
            << kind_name(std::get<0>(GetParam())) << " theta " << it
            << " element (" << ix << "," << iy << ")";
      }
    }
  }
}

TEST_P(EngineProperty, RecomputingAPointGivesTheSameAnswer) {
  // Engines may be stateful (TABLEFREE trackers) but state must only
  // affect cost, never values.
  engine_->begin_frame(Vec3{});
  const imaging::VolumeGrid grid(cfg_.volume);
  const auto n = static_cast<std::size_t>(engine_->element_count());
  std::vector<std::int32_t> first(n), again(n), detour(n);
  const auto fp = grid.focal_point(1, 2, cfg_.volume.n_depth / 3);
  engine_->compute(fp, first);
  engine_->compute(grid.focal_point(cfg_.volume.n_theta - 1,
                                    cfg_.volume.n_phi - 1,
                                    cfg_.volume.n_depth - 1),
                   detour);
  engine_->compute(fp, again);
  EXPECT_EQ(first, again) << kind_name(std::get<0>(GetParam()));
}

TEST_P(EngineProperty, WithinTwoSamplesOfExactInTheVolumeCore) {
  // The paper's accuracy envelope, applied to the volume core (inner
  // quarter of the angular range, depths beyond a third of the range)
  // where both architectures are specified to be accurate; the TABLESTEER
  // far-field error is only bounded away from the near field and the
  // extreme angles (Sec. VI-A).
  engine_->begin_frame(Vec3{});
  delay::ExactDelayEngine exact(cfg_);
  exact.begin_frame(Vec3{});
  const imaging::VolumeGrid grid(cfg_.volume);
  const auto n = static_cast<std::size_t>(engine_->element_count());
  std::vector<std::int32_t> a(n), b(n);
  const int nt = cfg_.volume.n_theta;
  const int nd = cfg_.volume.n_depth;
  for (int it = 3 * nt / 8; it < 5 * nt / 8; ++it) {
    for (int k = nd / 3; k < nd; k += nd / 7) {
      const auto fp = grid.focal_point(it, it, k);
      engine_->compute(fp, a);
      exact.compute(fp, b);
      for (std::size_t e = 0; e < n; ++e) {
        ASSERT_LE(std::abs(a[e] - b[e]), 2)
            << kind_name(std::get<0>(GetParam())) << " point (" << it << ","
            << it << "," << k << ") element " << e;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEnginesAndScales, EngineProperty,
    ::testing::Combine(
        ::testing::Values(EngineKind::kExact, EngineKind::kTableFree,
                          EngineKind::kTableSteer18,
                          EngineKind::kTableSteer14),
        ::testing::Values(6, 9),    // probe side (even and odd)
        ::testing::Values(8, 11),   // lines per axis (even and odd)
        ::testing::Values(40)),     // depths
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = kind_name(std::get<0>(info.param));
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_p" + std::to_string(std::get<1>(info.param)) + "_l" +
             std::to_string(std::get<2>(info.param)) + "_d" +
             std::to_string(std::get<3>(info.param));
    });

}  // namespace
}  // namespace us3d
