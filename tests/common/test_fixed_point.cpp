#include "common/fixed_point.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/contracts.h"
#include "common/prng.h"

namespace us3d::fx {
namespace {

TEST(Format, TotalBitsCountsSign) {
  EXPECT_EQ(kRefDelay18.total_bits(), 18);   // uQ13.5
  EXPECT_EQ(kCorrection18.total_bits(), 18); // sQ13.4 = 1+13+4
  EXPECT_EQ(kRefDelay14.total_bits(), 14);   // uQ13.1
  EXPECT_EQ(kCorrection14.total_bits(), 14); // sQ13.0
}

TEST(Format, RangesMatchPaperFormats) {
  // uQ13.5 spans [0, 8192) samples with 1/32-sample resolution.
  EXPECT_DOUBLE_EQ(kRefDelay18.lsb(), 1.0 / 32.0);
  EXPECT_DOUBLE_EQ(kRefDelay18.max_real(), 8192.0 - 1.0 / 32.0);
  EXPECT_DOUBLE_EQ(kRefDelay18.min_real(), 0.0);
  // sQ13.4 spans [-8192, 8192) with 1/16-sample resolution.
  EXPECT_DOUBLE_EQ(kCorrection18.lsb(), 1.0 / 16.0);
  EXPECT_DOUBLE_EQ(kCorrection18.min_real(), -8192.0);
}

TEST(Format, ToStringIsReadable) {
  EXPECT_EQ(kRefDelay18.to_string(), "uQ13.5 (18b)");
  EXPECT_EQ(kCorrection18.to_string(), "sQ13.4 (18b)");
}

TEST(Value, FromRealRoundTripsWithinHalfLsb) {
  const Format fmt{8, 6, true};
  for (double v = -200.0; v <= 200.0; v += 0.37) {
    const Value q = Value::from_real(v, fmt);
    EXPECT_LE(std::abs(q.to_real() - v), fmt.lsb() / 2.0 + 1e-12)
        << "value " << v;
  }
}

TEST(Value, FromRawRejectsOutOfRange) {
  const Format fmt{4, 0, false};
  EXPECT_NO_THROW(Value::from_raw(15, fmt));
  EXPECT_THROW(Value::from_raw(16, fmt), ContractViolation);
  EXPECT_THROW(Value::from_raw(-1, fmt), ContractViolation);
}

TEST(Value, SaturationClampsAtBounds) {
  const Format fmt{4, 0, false};  // [0, 15]
  EXPECT_EQ(Value::from_real(99.0, fmt).raw(), 15);
  EXPECT_EQ(Value::from_real(-3.0, fmt).raw(), 0);
}

TEST(Value, OverflowThrowPolicy) {
  const Format fmt{4, 0, false};
  EXPECT_THROW(
      Value::from_real(99.0, fmt, Rounding::kHalfUp, Overflow::kThrow),
      ContractViolation);
}

TEST(Value, WrapPolicyWrapsLikeTwosComplement) {
  const Format fmt{3, 0, true};  // raw range [-8, 7]
  const Value v =
      Value::from_real(9.0, fmt, Rounding::kHalfUp, Overflow::kWrap);
  EXPECT_EQ(v.raw(), -7);  // 9 mod 16 -> -7
}

TEST(Value, RoundToIntHalfUp) {
  const Format fmt{10, 4, true};
  EXPECT_EQ(Value::from_real(2.5, fmt).round_to_int(Rounding::kHalfUp), 3);
  EXPECT_EQ(Value::from_real(-2.5, fmt).round_to_int(Rounding::kHalfUp), -3);
  EXPECT_EQ(Value::from_real(2.4375, fmt).round_to_int(Rounding::kHalfUp), 2);
}

TEST(Value, RoundToIntHalfEvenBreaksTiesToEven) {
  const Format fmt{10, 1, true};
  EXPECT_EQ(Value::from_real(2.5, fmt).round_to_int(Rounding::kHalfEven), 2);
  EXPECT_EQ(Value::from_real(3.5, fmt).round_to_int(Rounding::kHalfEven), 4);
}

TEST(Value, RescaleToCoarserRounds) {
  const Format fine{10, 6, true};
  const Format coarse{10, 2, true};
  const Value v = Value::from_real(1.234375, fine);  // 79/64
  const Value r = v.rescaled(coarse);
  EXPECT_NEAR(r.to_real(), 1.25, 1e-12);
}

TEST(Value, RescaleToFinerIsExact) {
  const Format coarse{10, 2, true};
  const Format fine{10, 8, true};
  const Value v = Value::from_real(3.75, coarse);
  EXPECT_DOUBLE_EQ(v.rescaled(fine).to_real(), 3.75);
}

TEST(Arithmetic, AddAlignsDifferentFractions) {
  const Value a = Value::from_real(1.5, Format{8, 1, false});   // 1 frac bit
  const Value b = Value::from_real(0.25, Format{8, 2, true});   // 2 frac bits
  const Value sum = add(a, b, Format{9, 2, true});
  EXPECT_DOUBLE_EQ(sum.to_real(), 1.75);
}

TEST(Arithmetic, SubCanGoNegative) {
  const Value a = Value::from_real(1.0, kRefDelay18);
  const Value b = Value::from_real(2.0, kRefDelay18);
  const Value diff = sub(a, b, Format{14, 5, true});
  EXPECT_DOUBLE_EQ(diff.to_real(), -1.0);
}

TEST(Arithmetic, MulMatchesRealProduct) {
  const Value a = Value::from_real(3.25, Format{4, 4, true});
  const Value b = Value::from_real(-1.5, Format{4, 4, true});
  const Value p = mul(a, b, Format{8, 8, true});
  EXPECT_DOUBLE_EQ(p.to_real(), -4.875);
}

TEST(Arithmetic, AddSaturatesInNarrowResult) {
  const Format narrow{4, 0, false};
  const Value a = Value::from_real(12.0, narrow);
  const Value b = Value::from_real(12.0, narrow);
  EXPECT_EQ(add(a, b, narrow).raw(), 15);
}

TEST(RoundRealToInt, AllModesOnKnownValues) {
  EXPECT_EQ(round_real_to_int(2.5, Rounding::kHalfUp), 3);
  EXPECT_EQ(round_real_to_int(-2.5, Rounding::kHalfUp), -3);
  EXPECT_EQ(round_real_to_int(2.5, Rounding::kHalfEven), 2);
  EXPECT_EQ(round_real_to_int(2.9, Rounding::kTruncate), 2);
  EXPECT_EQ(round_real_to_int(-2.9, Rounding::kTruncate), -2);
  EXPECT_EQ(round_real_to_int(-2.1, Rounding::kFloor), -3);
}

// Property sweep: quantization error is bounded by half an LSB for all
// rounding-to-nearest modes and by one LSB for directed modes, across
// formats.
class FixedPointPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(FixedPointPropertyTest, QuantizationErrorBounded) {
  const auto [int_bits, frac_bits, is_signed] = GetParam();
  const Format fmt{int_bits, frac_bits, is_signed};
  SplitMix64 rng(std::uint64_t{0xF00D} + static_cast<std::uint64_t>(frac_bits));
  const double lo = is_signed ? -fmt.max_real() : 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.next_in(lo, fmt.max_real());
    const Value nearest = Value::from_real(v, fmt, Rounding::kHalfUp);
    EXPECT_LE(std::abs(nearest.to_real() - v), fmt.lsb() / 2.0 + 1e-12);
    const Value floored = Value::from_real(v, fmt, Rounding::kFloor);
    EXPECT_LE(v - floored.to_real(), fmt.lsb() + 1e-12);
    EXPECT_GE(v - floored.to_real(), -1e-12);
  }
}

TEST_P(FixedPointPropertyTest, AddIsExactWhenResultFits) {
  const auto [int_bits, frac_bits, is_signed] = GetParam();
  const Format fmt{int_bits, frac_bits, is_signed};
  const Format wide{int_bits + 2, frac_bits, true};
  SplitMix64 rng(std::uint64_t{0xBEEF} + static_cast<std::uint64_t>(int_bits));
  for (int i = 0; i < 2000; ++i) {
    const Value a = Value::from_real(
        rng.next_in(is_signed ? fmt.min_real() : 0.0, fmt.max_real()), fmt);
    const Value b = Value::from_real(
        rng.next_in(is_signed ? fmt.min_real() : 0.0, fmt.max_real()), fmt);
    const Value sum = add(a, b, wide);
    EXPECT_DOUBLE_EQ(sum.to_real(), a.to_real() + b.to_real());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Formats, FixedPointPropertyTest,
    ::testing::Values(std::make_tuple(13, 5, false),   // paper uQ13.5
                      std::make_tuple(13, 4, true),    // paper sQ13.4
                      std::make_tuple(13, 1, false),   // paper uQ13.1
                      std::make_tuple(13, 0, true),    // paper sQ13.0
                      std::make_tuple(8, 8, true),
                      std::make_tuple(20, 10, false)));

}  // namespace
}  // namespace us3d::fx
