// JsonWriter is the one emitter behind every JSON exporter in the repo,
// so its comma placement, escaping and misuse guards are load-bearing:
// a malformed emitter would corrupt every bench contract file at once.
// Structural outputs are cross-checked through the strict reader.
#include "common/json_writer.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/contracts.h"
#include "common/json_reader.h"

namespace us3d {
namespace {

std::string write(void (*fn)(JsonWriter&)) {
  std::ostringstream os;
  JsonWriter w(os);
  fn(w);
  return os.str();
}

TEST(JsonWriter, FlatObjectPlacesCommasAndColons) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object()
      .kv("a", 1)
      .kv("b", 2.5)
      .kv("c", "text")
      .kv("d", true)
      .end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(os.str(), "{\"a\":1,\"b\":2.5,\"c\":\"text\",\"d\":true}");
}

TEST(JsonWriter, NestedContainersRoundTripThroughTheReader) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object()
      .key("rows")
      .begin_array()
      .value(1)
      .value(2)
      .begin_object()
      .kv("k", "v")
      .end_object()
      .end_array()
      .kv_raw("spliced", "{\"x\":9}")
      .end_object();
  ASSERT_TRUE(w.complete());
  const JsonValue doc = parse_json(os.str());
  const auto& rows = doc.at("rows").elements();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].as_int(), 1);
  EXPECT_EQ(rows[2].at("k").as_string(), "v");
  EXPECT_EQ(doc.at("spliced").at("x").as_int(), 9);
}

TEST(JsonWriter, StringsAreEscaped) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object().kv("k", "a\"b\\c\nd").end_object();
  // Raw control characters never reach the wire...
  for (const char c : os.str()) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
  // ...and the reader recovers the original bytes.
  EXPECT_EQ(parse_json(os.str()).at("k").as_string(), "a\"b\\c\nd");
}

TEST(JsonWriter, EmptyContainersAreLegal) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object()
      .key("o")
      .begin_object()
      .end_object()
      .key("a")
      .begin_array()
      .end_array()
      .end_object();
  EXPECT_EQ(os.str(), "{\"o\":{},\"a\":[]}");
}

TEST(JsonWriter, MisuseThrowsInsteadOfEmittingGarbage) {
  // end without begin.
  EXPECT_THROW(write(+[](JsonWriter& w) { w.end_object(); }),
               ContractViolation);
  // array closed as an object.
  EXPECT_THROW(write(+[](JsonWriter& w) { w.begin_array().end_object(); }),
               ContractViolation);
  // key outside an object.
  EXPECT_THROW(write(+[](JsonWriter& w) { w.begin_array().key("k"); }),
               ContractViolation);
  // bare value inside an object (a key must come first).
  EXPECT_THROW(write(+[](JsonWriter& w) { w.begin_object().value(1); }),
               ContractViolation);
  // dangling key at close.
  EXPECT_THROW(
      write(+[](JsonWriter& w) { w.begin_object().key("k").end_object(); }),
      ContractViolation);
  // second root value.
  EXPECT_THROW(write(+[](JsonWriter& w) { w.value(1).value(2); }),
               ContractViolation);
}

TEST(JsonWriter, CompleteTracksRootBalance) {
  std::ostringstream os;
  JsonWriter w(os);
  EXPECT_FALSE(w.complete());
  w.begin_object();
  EXPECT_FALSE(w.complete());
  w.end_object();
  EXPECT_TRUE(w.complete());
}

}  // namespace
}  // namespace us3d
