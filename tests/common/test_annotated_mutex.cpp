// us3d::Mutex / MutexLock / CondVar semantics. These wrappers exist to
// carry Clang thread-safety annotations; the tests pin the part the
// annotations cannot check — that the wrappers still behave exactly like
// std::mutex / std::lock_guard / std::condition_variable at runtime
// (mutual exclusion, try_lock contention, wait/notify hand-off). All of
// them are written to be meaningful under TSan.
#include "common/annotated_mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <thread>
#include <vector>

namespace us3d {
namespace {

TEST(AnnotatedMutex, MutexLockProvidesMutualExclusion) {
  Mutex mutex;
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mutex);
        ++counter;  // unsynchronised long: torn without real exclusion
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
}

TEST(AnnotatedMutex, TryLockRefusesWhileHeldAndSucceedsAfterRelease) {
  Mutex mutex;
  mutex.lock();
  std::atomic<int> refused{0};
  std::thread contender([&] {
    if (!mutex.try_lock()) {
      refused.store(1, std::memory_order_release);
    } else {
      mutex.unlock();
    }
  });
  contender.join();
  EXPECT_EQ(refused.load(), 1);
  mutex.unlock();
  ASSERT_TRUE(mutex.try_lock());
  mutex.assert_held();  // no-op at runtime; must be callable when held
  mutex.unlock();
}

TEST(AnnotatedMutex, CondVarWaitReacquiresTheMutexAroundThePredicate) {
  // A producer/consumer pair through a tiny guarded queue: every wait
  // loop re-checks its predicate under the mutex, so items can never be
  // lost or double-consumed no matter how notifies and wakeups interleave.
  Mutex mutex;
  CondVar cv;
  std::deque<int> queue;
  bool closed = false;
  constexpr int kItems = 5000;

  long consumed_sum = 0;
  std::thread consumer([&] {
    long sum = 0;
    while (true) {
      int item;
      {
        MutexLock lock(mutex);
        while (queue.empty() && !closed) cv.wait(mutex);
        if (queue.empty()) break;  // closed and drained
        item = queue.front();
        queue.pop_front();
      }
      cv.notify_all();  // space freed
      sum += item;
    }
    consumed_sum = sum;
  });

  for (int i = 1; i <= kItems; ++i) {
    {
      MutexLock lock(mutex);
      while (queue.size() >= 4) cv.wait(mutex);
      queue.push_back(i);
    }
    cv.notify_all();
  }
  {
    MutexLock lock(mutex);
    closed = true;
  }
  cv.notify_all();
  consumer.join();
  EXPECT_EQ(consumed_sum, static_cast<long>(kItems) * (kItems + 1) / 2);
}

TEST(AnnotatedMutex, NotifyOneWakesExactlyTheWaitersNeeded) {
  Mutex mutex;
  CondVar cv;
  int tickets = 0;
  std::atomic<int> served{0};
  constexpr int kWaiters = 3;
  std::vector<std::thread> waiters;
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(mutex);
      while (tickets == 0) cv.wait(mutex);
      --tickets;
      served.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (int i = 0; i < kWaiters; ++i) {
    {
      MutexLock lock(mutex);
      ++tickets;
    }
    cv.notify_one();
  }
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(served.load(), kWaiters);
  MutexLock lock(mutex);
  EXPECT_EQ(tickets, 0);
}

}  // namespace
}  // namespace us3d
