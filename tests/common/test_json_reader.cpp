// The strict reader contract: everything the repo's emitters produce
// parses, and every kind of damage — trailing text, duplicate keys,
// malformed literals, depth bombs — throws instead of yielding a
// half-understood document.
#include "common/json_reader.h"

#include <gtest/gtest.h>

#include <string>

#include "common/contracts.h"

namespace us3d {
namespace {

TEST(JsonReader, ParsesScalarsWithExactKinds) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_DOUBLE_EQ(parse_json("2.5e3").as_double(), 2500.0);
  EXPECT_EQ(parse_json("-42").as_int(), -42);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(JsonReader, AsIntIsStricterThanAsDouble) {
  const JsonValue fractional = parse_json("2.5");
  EXPECT_DOUBLE_EQ(fractional.as_double(), 2.5);
  EXPECT_THROW(fractional.as_int("field"), ContractViolation);
  // Scientific notation is a number but not an integer literal.
  EXPECT_THROW(parse_json("1e3").as_int(), ContractViolation);
}

TEST(JsonReader, ObjectMembersKeepDocumentOrder) {
  const JsonValue doc = parse_json(R"({"z":1,"a":2})");
  const auto& members = doc.members();
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(doc.at("a").as_int(), 2);
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(doc.at("missing"), ContractViolation);
}

TEST(JsonReader, NestedArraysAndEscapes) {
  const JsonValue doc = parse_json(R"({"rows":[[1,2],["a\nb"]]})");
  const auto& rows = doc.at("rows").elements();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].elements()[1].as_int(), 2);
  EXPECT_EQ(rows[1].elements()[0].as_string(), "a\nb");
}

TEST(JsonReader, KindMismatchesThrowWithTheFieldName) {
  const JsonValue doc = parse_json(R"({"n":1})");
  try {
    doc.at("n").as_string("n");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("n must be a string"),
              std::string::npos)
        << e.what();
  }
}

TEST(JsonReader, DamageThrows) {
  EXPECT_THROW(parse_json(""), ContractViolation);
  EXPECT_THROW(parse_json("{"), ContractViolation);
  EXPECT_THROW(parse_json("{\"a\":1,}"), ContractViolation);
  EXPECT_THROW(parse_json("[1 2]"), ContractViolation);
  EXPECT_THROW(parse_json("{\"a\":1} rest"), ContractViolation);
  EXPECT_THROW(parse_json("{\"a\":1,\"a\":2}"), ContractViolation);
  EXPECT_THROW(parse_json("nope"), ContractViolation);
  EXPECT_THROW(parse_json("\"unterminated"), ContractViolation);
}

TEST(JsonReader, DepthBombIsRejectedNotStackOverflowed) {
  std::string bomb;
  for (int i = 0; i < 1000; ++i) bomb += '[';
  EXPECT_THROW(parse_json(bomb), ContractViolation);
}

}  // namespace
}  // namespace us3d
