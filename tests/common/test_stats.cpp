#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.h"
#include "common/prng.h"

namespace us3d {
namespace {

TEST(RunningStats, EmptyIsZero) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // classic population-stddev example
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MatchesDirectComputationOnRandomData) {
  SplitMix64 rng(42);
  RunningStats s;
  double sum = 0.0, sum_sq = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_in(-5.0, 11.0);
    s.add(v);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), sum_sq / n - mean * mean, 1e-9);
}

TEST(AbsErrorStats, TracksAbsoluteError) {
  AbsErrorStats e(1.0);
  e.add(-2.0);
  e.add(0.5);
  e.add(1.0);  // exactly at threshold: not exceeding
  EXPECT_EQ(e.count(), 3u);
  EXPECT_DOUBLE_EQ(e.max_abs(), 2.0);
  EXPECT_NEAR(e.mean_abs(), 3.5 / 3.0, 1e-12);
  EXPECT_EQ(e.count_exceeding(), 1u);
  EXPECT_NEAR(e.fraction_exceeding(), 1.0 / 3.0, 1e-12);
}

TEST(AbsErrorStats, RmsOfConstantIsConstant) {
  AbsErrorStats e;
  for (int i = 0; i < 10; ++i) e.add(i % 2 == 0 ? 3.0 : -3.0);
  EXPECT_DOUBLE_EQ(e.rms(), 3.0);
}

TEST(SampleQuantiles, EmptyIsZero) {
  const SampleQuantiles q;
  EXPECT_EQ(q.count(), 0u);
  EXPECT_EQ(q.quantile(0.5), 0.0);
  EXPECT_EQ(q.p99(), 0.0);
}

TEST(SampleQuantiles, KnownPercentilesWithInterpolation) {
  SampleQuantiles q;
  // Insert shuffled so the lazy sort actually has work to do.
  for (const double v : {5.0, 1.0, 4.0, 2.0, 3.0}) q.add(v);
  EXPECT_EQ(q.count(), 5u);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(q.p50(), 3.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.125), 1.5);  // between samples: interpolated
}

TEST(SampleQuantiles, SingleSampleIsEveryQuantile) {
  SampleQuantiles q;
  q.add(7.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(q.p50(), 7.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 7.0);
}

TEST(SampleQuantiles, MergeMatchesFlatInsertionAndReadsStayCoherent) {
  SplitMix64 rng(7);
  SampleQuantiles flat, a, b;
  for (int i = 0; i < 200; ++i) {
    const double v = rng.next_in(0.0, 100.0);
    flat.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  EXPECT_DOUBLE_EQ(a.p90(), a.p90());  // read before merge is fine
  a.merge(b);
  EXPECT_EQ(a.count(), flat.count());
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), flat.quantile(q)) << q;
  }
  // Adding after a read re-sorts lazily.
  a.add(-1.0);
  EXPECT_DOUBLE_EQ(a.quantile(0.0), -1.0);
}

TEST(SampleQuantiles, RejectsOutOfRangeQuantile) {
  SampleQuantiles q;
  q.add(1.0);
  EXPECT_THROW(q.quantile(-0.1), ContractViolation);
  EXPECT_THROW(q.quantile(1.1), ContractViolation);
}

TEST(Histogram, BinsAndSaturatingEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(-5.0);  // clamps to bin 0
  h.add(50.0);  // clamps to bin 9
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(9), 2u);
  for (std::size_t i = 1; i < 9; ++i) EXPECT_EQ(h.bin(i), 0u);
}

TEST(Histogram, EdgesAreUniform) {
  Histogram h(-1.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_width(), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_lower_edge(0), -1.0);
  EXPECT_DOUBLE_EQ(h.bin_lower_edge(3), 0.5);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
}

TEST(Histogram, ToStringMentionsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  const std::string s = h.to_string();
  EXPECT_NE(s.find(": 1"), std::string::npos);
}

}  // namespace
}  // namespace us3d
