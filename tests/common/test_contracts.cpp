#include "common/contracts.h"

#include <gtest/gtest.h>

namespace us3d {
namespace {

TEST(Contracts, PassingExpectsDoesNothing) {
  EXPECT_NO_THROW(US3D_EXPECTS(1 + 1 == 2));
}

TEST(Contracts, FailingExpectsThrowsContractViolation) {
  EXPECT_THROW(US3D_EXPECTS(false), ContractViolation);
}

TEST(Contracts, FailingEnsuresThrowsContractViolation) {
  EXPECT_THROW(US3D_ENSURES(false), ContractViolation);
}

TEST(Contracts, MessageNamesConditionAndLocation) {
  try {
    US3D_EXPECTS(2 > 3);
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("test_contracts.cpp"), std::string::npos);
    EXPECT_NE(what.find("precondition"), std::string::npos);
  }
}

TEST(Contracts, EnsuresMessageSaysPostcondition) {
  try {
    US3D_ENSURES(false);
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("postcondition"), std::string::npos);
  }
}

TEST(Contracts, ContractViolationIsLogicError) {
  EXPECT_THROW(US3D_EXPECTS(false), std::logic_error);
}

}  // namespace
}  // namespace us3d
