#include "common/prng.h"

#include <gtest/gtest.h>

namespace us3d {
namespace {

TEST(SplitMix64, DeterministicForSameSeed) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(SplitMix64, KnownReferenceValue) {
  // First output for seed 0 of canonical SplitMix64.
  SplitMix64 rng(0);
  EXPECT_EQ(rng.next_u64(), 0xE220A8397B1DCDAFull);
}

TEST(SplitMix64, UnitRangeIsHalfOpen) {
  SplitMix64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(SplitMix64, NextInRespectsBounds) {
  SplitMix64 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_in(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(SplitMix64, MeanOfUniformApproachesHalf) {
  SplitMix64 rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_unit();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(SplitMix64, NextBelowStaysBelow) {
  SplitMix64 rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

}  // namespace
}  // namespace us3d
