#include "common/vec3.h"

#include <gtest/gtest.h>

#include <cmath>

namespace us3d {
namespace {

TEST(Vec3, DefaultIsZero) {
  constexpr Vec3 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
  EXPECT_EQ(v.z, 0.0);
}

TEST(Vec3, ArithmeticOperators) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{4.0, -5.0, 6.0};
  EXPECT_EQ(a + b, (Vec3{5.0, -3.0, 9.0}));
  EXPECT_EQ(a - b, (Vec3{-3.0, 7.0, -3.0}));
  EXPECT_EQ(a * 2.0, (Vec3{2.0, 4.0, 6.0}));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_EQ(a / 2.0, (Vec3{0.5, 1.0, 1.5}));
  EXPECT_EQ(-a, (Vec3{-1.0, -2.0, -3.0}));
}

TEST(Vec3, CompoundAssignment) {
  Vec3 v{1.0, 1.0, 1.0};
  v += Vec3{1.0, 2.0, 3.0};
  EXPECT_EQ(v, (Vec3{2.0, 3.0, 4.0}));
  v -= Vec3{2.0, 3.0, 4.0};
  EXPECT_EQ(v, Vec3{});
}

TEST(Vec3, DotAndNorm) {
  const Vec3 a{3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(a.dot(a), 25.0);
  EXPECT_DOUBLE_EQ(a.norm_squared(), 25.0);
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
}

TEST(Vec3, DotIsBilinear) {
  const Vec3 a{1.0, -2.0, 0.5};
  const Vec3 b{2.0, 0.25, -1.0};
  const Vec3 c{-3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ((a + b).dot(c), a.dot(c) + b.dot(c));
  EXPECT_DOUBLE_EQ((a * 3.0).dot(b), 3.0 * a.dot(b));
}

TEST(Vec3, DistanceIsSymmetric) {
  const Vec3 a{0.0, 1.0, 2.0};
  const Vec3 b{-1.0, 5.0, 0.5};
  EXPECT_DOUBLE_EQ(a.distance_to(b), b.distance_to(a));
  EXPECT_DOUBLE_EQ(a.distance_to(a), 0.0);
}

TEST(Vec3, TriangleInequality) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{-2.0, 0.0, 1.0};
  const Vec3 c{4.0, -1.0, 2.0};
  EXPECT_LE(a.distance_to(c), a.distance_to(b) + b.distance_to(c) + 1e-15);
}

TEST(Vec3, NormalizedHasUnitLength) {
  const Vec3 v{2.0, -3.0, 6.0};
  EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-15);
}

TEST(Vec3, NormalizedZeroIsZero) {
  EXPECT_EQ(Vec3{}.normalized(), Vec3{});
}

}  // namespace
}  // namespace us3d
