#include "common/table_io.h"

#include <gtest/gtest.h>

#include "common/contracts.h"

namespace us3d {
namespace {

TEST(MarkdownTable, RendersHeaderAndRows) {
  MarkdownTable t({"a", "bb"});
  t.add_row({"1", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a"), std::string::npos);
  EXPECT_NE(s.find("| bb"), std::string::npos);
  EXPECT_NE(s.find("| 1"), std::string::npos);
  // Separator row present.
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(MarkdownTable, PadsColumnsToWidestCell) {
  MarkdownTable t({"x", "y"});
  t.add_row({"longvalue", "1"});
  const std::string s = t.to_string();
  // Header cell "x" must be padded to the width of "longvalue" (9 chars).
  EXPECT_NE(s.find("| x         |"), std::string::npos);
}

TEST(MarkdownTable, RejectsMismatchedRow) {
  MarkdownTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), ContractViolation);
}

TEST(CsvTable, EscapesSpecialCharacters) {
  CsvTable t({"name", "note"});
  t.add_row({"plain", "has,comma"});
  t.add_row({"quote\"inside", "line\nbreak"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Format, Double) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(Format, Si) {
  EXPECT_EQ(format_si(2.5e12, "delays/s", 1), "2.5 Tdelays/s");
  EXPECT_EQ(format_si(5.3e9, "B/s", 1), "5.3 GB/s");
  EXPECT_EQ(format_si(200.0e6, "Hz", 0), "200 MHz");
  EXPECT_EQ(format_si(12.0, "x", 0), "12 x");
}

TEST(Format, Percent) {
  EXPECT_EQ(format_percent(0.25, 0), "25%");
  EXPECT_EQ(format_percent(0.913, 1), "91.3%");
}

TEST(Format, BitsAndBytes) {
  EXPECT_EQ(format_bits(45.0e6), "45.0 Mb");
  EXPECT_EQ(format_bytes(5.4e9), "5.4 GB");
}

TEST(Format, Count) {
  EXPECT_EQ(format_count(1.638e11), "163.80e9");
  EXPECT_EQ(format_count(123.0), "123");
}

}  // namespace
}  // namespace us3d
