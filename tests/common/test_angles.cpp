#include "common/angles.h"

#include <gtest/gtest.h>

namespace us3d {
namespace {

TEST(Angles, DegToRadKnownValues) {
  EXPECT_DOUBLE_EQ(deg_to_rad(0.0), 0.0);
  EXPECT_DOUBLE_EQ(deg_to_rad(180.0), kPi);
  EXPECT_DOUBLE_EQ(deg_to_rad(90.0), kPi / 2.0);
  EXPECT_DOUBLE_EQ(deg_to_rad(-45.0), -kPi / 4.0);
}

TEST(Angles, RoundTrip) {
  for (double deg = -360.0; deg <= 360.0; deg += 7.3) {
    EXPECT_NEAR(rad_to_deg(deg_to_rad(deg)), deg, 1e-12);
  }
}

TEST(Angles, PaperFieldOfView) {
  // Table I: 73 degree span means +/-36.5 degrees.
  EXPECT_NEAR(deg_to_rad(73.0) / 2.0, deg_to_rad(36.5), 1e-15);
}

}  // namespace
}  // namespace us3d
