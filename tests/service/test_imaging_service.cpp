// ImagingService invariants: admission control against the shared budget,
// priority-ordered worker rebalancing, the three shed policies (with the
// ledger reconciliation delivered + shed + dropped + refused == submitted),
// and failure isolation between sessions.
#include "service/imaging_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "acoustic/echo_synth.h"
#include "acoustic/phantom.h"
#include "common/contracts.h"
#include "common/prng.h"

namespace us3d::service {
namespace {

using beamform::VolumeImage;
using runtime::EchoFrame;

/// A deliberately tiny scenario so service tests stay fast.
Scenario tiny_scenario(const std::string& name,
                       EngineFamily family = EngineFamily::kTableFree) {
  Scenario s;
  s.name = name;
  s.engine = family;
  s.probe_elements = 5;
  s.n_lines = 6;
  s.n_depth = 14;
  s.worker_threads = 2;
  s.queue_depth = 2;
  return s;
}

/// Frames for a scenario, sequence-numbered 0..n-1, one random phantom
/// per frame so different sequences produce different volumes.
std::vector<EchoFrame> make_frames(const Scenario& scenario, int n,
                                   std::uint64_t seed) {
  const imaging::SystemConfig cfg = scenario.system();
  const imaging::VolumeGrid grid(cfg.volume);
  SplitMix64 rng(seed);
  const std::vector<Vec3> origins = scenario.origins(n);
  std::vector<EchoFrame> frames;
  for (int i = 0; i < n; ++i) {
    acoustic::Phantom phantom;
    for (int k = 0; k < 2; ++k) {
      const int it = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(cfg.volume.n_theta)));
      const int ip = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(cfg.volume.n_phi)));
      const int id = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(cfg.volume.n_depth)));
      phantom.push_back(acoustic::PointScatterer{
          grid.focal_point(it, ip, id).position, rng.next_in(0.5, 1.5)});
    }
    acoustic::SynthesisOptions synth;
    synth.origin = origins[static_cast<std::size_t>(i)];
    frames.push_back(EchoFrame{acoustic::synthesize_echoes(cfg, phantom, synth),
                               origins[static_cast<std::size_t>(i)], i});
  }
  return frames;
}

const runtime::VolumeSink kDevNull = [](const VolumeImage&, std::int64_t) {};

TEST(ImagingService, AdmissionRefusesWhenTheWorkerBudgetIsExhausted) {
  ImagingService service(ServiceBudget{.worker_threads = 2,
                                       .inflight_volumes = 8});
  const Admission a = service.open_session(tiny_scenario("a"));
  const Admission b = service.open_session(tiny_scenario("b"));
  ASSERT_TRUE(a.admitted);
  ASSERT_TRUE(b.admitted);
  // Every admitted session is guaranteed a worker; a third would break
  // that guarantee, so admission control refuses it *cleanly*.
  const Admission c = service.open_session(tiny_scenario("c"));
  EXPECT_FALSE(c.admitted);
  EXPECT_EQ(c.session, -1);
  EXPECT_NE(c.reason.find("worker budget"), std::string::npos) << c.reason;
  EXPECT_EQ(service.open_sessions(), 2);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.sessions_admitted, 2);
  EXPECT_EQ(stats.sessions_refused, 1);
  // Closing a session frees its guarantee.
  service.close_session(a.session, kDevNull);
  EXPECT_TRUE(service.open_session(tiny_scenario("c")).admitted);
}

TEST(ImagingService, AdmissionRefusesWhenTheInflightBudgetIsExhausted) {
  ImagingService service(ServiceBudget{.worker_threads = 8,
                                       .inflight_volumes = 3});
  Scenario deep = tiny_scenario("deep");
  deep.queue_depth = 3;
  const Admission a = service.open_session(deep);
  ASSERT_TRUE(a.admitted);
  EXPECT_EQ(a.granted_depth, 3);
  const Admission b = service.open_session(tiny_scenario("b"));
  EXPECT_FALSE(b.admitted);
  EXPECT_NE(b.reason.find("in-flight volume budget"), std::string::npos)
      << b.reason;
  // A compounding session needs two ring slots; with only one left it is
  // refused even though a plain session would fit.
  service.close_session(a.session, kDevNull);
  Scenario two = tiny_scenario("two");
  two.queue_depth = 2;
  ASSERT_TRUE(service.open_session(two).admitted);
  Scenario compound = tiny_scenario("compound");
  compound.compound_origins = 2;
  const Admission c = service.open_session(compound);
  EXPECT_FALSE(c.admitted);
}

TEST(ImagingService, AdmissionClampsDepthToTheRemainingBudget) {
  ImagingService service(ServiceBudget{.worker_threads = 4,
                                       .inflight_volumes = 3});
  Scenario greedy = tiny_scenario("greedy");
  greedy.queue_depth = 2;
  ASSERT_TRUE(service.open_session(greedy).admitted);
  Scenario wants_many = tiny_scenario("wants-many");
  wants_many.queue_depth = 5;
  const Admission a = service.open_session(wants_many);
  ASSERT_TRUE(a.admitted);
  EXPECT_EQ(a.granted_depth, 1);  // only one slot was left
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.inflight_in_use, 3);
  EXPECT_LE(stats.inflight_in_use, stats.budget_inflight);
}

TEST(ImagingService, AdmissionRefusesInvalidScenariosWithTheirReason) {
  ImagingService service(ServiceBudget{});
  Scenario bad = tiny_scenario("bad");
  bad.table_bits = 12;
  const Admission a = service.open_session(bad);
  EXPECT_FALSE(a.admitted);
  EXPECT_NE(a.reason.find("table_bits"), std::string::npos) << a.reason;
  EXPECT_EQ(service.stats().sessions_refused, 1);
}

TEST(ImagingService, WorkerBudgetIsRedealtByPriorityAsSessionsComeAndGo) {
  ImagingService service(ServiceBudget{.worker_threads = 4,
                                       .inflight_volumes = 8});
  Scenario wide = tiny_scenario("interactive");
  wide.worker_threads = 4;
  const Admission a = service.open_session(
      wide, SessionOptions{.priority = PriorityClass::kInteractive});
  ASSERT_TRUE(a.admitted);
  EXPECT_EQ(a.granted_workers, 4);  // alone: the whole budget

  Scenario bulk = tiny_scenario("bulk");
  bulk.worker_threads = 4;
  const Admission b = service.open_session(
      bulk, SessionOptions{.priority = PriorityClass::kBulk});
  ASSERT_TRUE(b.admitted);
  // Both guaranteed one; the surplus goes to the interactive session.
  EXPECT_EQ(service.granted_workers(a.session), 3);
  EXPECT_EQ(service.granted_workers(b.session), 1);
  const ServiceStats mid = service.stats();
  EXPECT_EQ(mid.workers_in_use, 4);
  EXPECT_LE(mid.workers_in_use, mid.budget_workers);

  // Close the interactive session: the bulk one inherits the surplus.
  service.close_session(a.session, kDevNull);
  EXPECT_EQ(service.granted_workers(b.session), 4);
}

TEST(ImagingService, UnknownSessionIdsThrow) {
  ImagingService service(ServiceBudget{});
  EXPECT_THROW(service.poll(42, kDevNull), ContractViolation);
  EchoFrame frame = make_frames(tiny_scenario("u"), 1, 1)[0];
  EXPECT_THROW(service.submit(42, std::move(frame)), ContractViolation);
  EXPECT_THROW(service.close_session(42, kDevNull), ContractViolation);
  EXPECT_THROW(service.session_stats(42), ContractViolation);
}

/// Submits a burst without polling, then drains; returns the final ledger.
SessionStats burst_and_close(ImagingService& service, int session,
                             std::vector<EchoFrame> frames,
                             std::vector<std::int64_t>* delivered_seqs,
                             int* accepted_submits) {
  int ok = 0;
  for (EchoFrame& f : frames) {
    if (service.submit(session, std::move(f))) ++ok;
  }
  if (accepted_submits) *accepted_submits = ok;
  return service.close_session(
      session, [&](const VolumeImage&, std::int64_t seq) {
        if (delivered_seqs) delivered_seqs->push_back(seq);
      });
}

TEST(ImagingService, RefuseNewestShedsTheBurstAndReconciles) {
  ImagingService service(ServiceBudget{.worker_threads = 2,
                                       .inflight_volumes = 2});
  Scenario s = tiny_scenario("refuse");
  s.queue_depth = 1;
  const Admission a = service.open_session(
      s, SessionOptions{.policy = ShedPolicy::kRefuseNewest});
  ASSERT_TRUE(a.admitted);
  std::vector<std::int64_t> seqs;
  int accepted = 0;
  const SessionStats stats = burst_and_close(
      service, a.session, make_frames(s, 12, 3), &seqs, &accepted);
  EXPECT_GT(stats.shed_refused, 0) << "a 12-frame burst into depth 1 must shed";
  EXPECT_EQ(stats.shed_dropped, 0);
  EXPECT_EQ(stats.shed_adaptive, 0);
  EXPECT_EQ(stats.submitted, 12);
  // submit() returned true exactly for the accepted (delivered) frames.
  EXPECT_EQ(accepted, static_cast<int>(seqs.size()));
  // Refuse-newest keeps the *oldest* frames: deliveries are a prefix-ish
  // ordered subsequence starting at 0.
  ASSERT_FALSE(seqs.empty());
  EXPECT_EQ(seqs.front(), 0);
  EXPECT_TRUE(stats.reconciles()) << stats.to_json();
  EXPECT_FALSE(stats.failed);
}

TEST(ImagingService, DropOldestKeepsTheFreshestFramesAndReconciles) {
  ImagingService service(ServiceBudget{.worker_threads = 2,
                                       .inflight_volumes = 2});
  Scenario s = tiny_scenario("drop-oldest");
  s.queue_depth = 1;
  const Admission a = service.open_session(
      s, SessionOptions{.policy = ShedPolicy::kDropOldest});
  ASSERT_TRUE(a.admitted);
  std::vector<std::int64_t> seqs;
  int accepted = 0;
  const SessionStats stats = burst_and_close(
      service, a.session, make_frames(s, 12, 5), &seqs, &accepted);
  EXPECT_GT(stats.shed_dropped, 0);
  EXPECT_EQ(stats.shed_refused, 0);
  EXPECT_EQ(stats.submitted, 12);
  EXPECT_EQ(accepted, 12) << "drop-oldest accepts every submission";
  // Freshest-wins: the newest frame always survives the burst.
  ASSERT_FALSE(seqs.empty());
  EXPECT_EQ(seqs.back(), 11);
  EXPECT_TRUE(stats.reconciles()) << stats.to_json();
}

TEST(ImagingService, AdaptiveDepthShrinksShedsAndRegrows) {
  ImagingService service(ServiceBudget{.worker_threads = 2,
                                       .inflight_volumes = 4});
  Scenario s = tiny_scenario("adaptive");
  s.queue_depth = 4;
  const Admission a = service.open_session(
      s, SessionOptions{.policy = ShedPolicy::kAdaptiveDepth});
  ASSERT_TRUE(a.admitted);
  ASSERT_EQ(a.granted_depth, 4);

  // Burst far past the depth without polling: the policy must halve the
  // depth (at least once) and shed.
  auto frames = make_frames(s, 16, 7);
  for (EchoFrame& f : frames) service.submit(a.session, std::move(f));
  const SessionStats mid = service.session_stats(a.session);
  EXPECT_LT(mid.effective_depth, mid.granted_depth)
      << "overload must shrink the adaptive depth";
  EXPECT_GT(mid.shed_adaptive, 0);

  // Drain everything, then trickle gently: the depth regrows (additive)
  // back toward the grant. "Gently" means waiting for each frame to be
  // delivered — poll() is non-blocking, so a bare poll loop would race
  // the beamformer and the trickle would itself be an overload.
  const auto quiesce = [&] {
    while (true) {
      service.poll(a.session, kDevNull);
      const SessionStats st = service.session_stats(a.session);
      if (st.delivered_insonifications >= st.accepted) break;
    }
  };
  quiesce();
  auto trickle = make_frames(s, 6, 9);
  for (int i = 0; i < 6; ++i) {
    EchoFrame f = trickle[static_cast<std::size_t>(i)];
    f.sequence = 100 + i;
    service.submit(a.session, std::move(f));
    quiesce();
  }
  const SessionStats later = service.session_stats(a.session);
  EXPECT_GT(later.effective_depth, 1);

  const SessionStats final_stats = service.close_session(a.session, kDevNull);
  // The pipeline's own stats report the adaptive depth the session ended
  // at (configured-vs-adaptive is visible on dashboards).
  EXPECT_EQ(final_stats.pipeline.queue_depth, final_stats.effective_depth);
  EXPECT_EQ(final_stats.pipeline.ring_slots, 4);
  EXPECT_TRUE(final_stats.reconciles()) << final_stats.to_json();
  EXPECT_GT(final_stats.shed_adaptive, 0);
  EXPECT_EQ(final_stats.shed_refused, 0);
  EXPECT_EQ(final_stats.shed_dropped, 0);
}

TEST(ImagingService, OneSessionsThrowingSinkDoesNotPoisonItsSibling) {
  ImagingService service(ServiceBudget{.worker_threads = 2,
                                       .inflight_volumes = 4});
  const Scenario sa = tiny_scenario("victim");
  const Scenario sb = tiny_scenario("survivor");
  const Admission a = service.open_session(sa);
  const Admission b = service.open_session(sb);
  ASSERT_TRUE(a.admitted);
  ASSERT_TRUE(b.admitted);

  auto frames_a = make_frames(sa, 3, 11);
  auto frames_b = make_frames(sb, 3, 13);
  for (EchoFrame& f : frames_a) service.submit(a.session, std::move(f));
  for (EchoFrame& f : frames_b) service.submit(b.session, std::move(f));

  // The victim's sink throws on first delivery. The exception is captured
  // into the session, never propagated into the caller or the sibling.
  const runtime::VolumeSink bomb = [](const VolumeImage&, std::int64_t) {
    throw std::runtime_error("display pipe burst");
  };
  EXPECT_NO_THROW({
    while (true) {
      const int n = service.poll(a.session, bomb);
      if (n == 0 && service.session_failed(a.session)) break;
    }
  });
  EXPECT_TRUE(service.session_failed(a.session));
  EXPECT_FALSE(service.session_failed(b.session));

  // Terminal sessions refuse instead of pretending.
  EchoFrame extra = make_frames(sa, 1, 17)[0];
  extra.sequence = 99;
  EXPECT_FALSE(service.submit(a.session, std::move(extra)));

  const SessionStats dead = service.close_session(a.session, bomb);
  EXPECT_TRUE(dead.failed);
  EXPECT_NE(dead.error.find("display pipe burst"), std::string::npos)
      << dead.error;
  EXPECT_EQ(dead.delivered_frames, 0);
  EXPECT_GT(dead.pipeline.dropped_frames + dead.shed_total(), 0);
  EXPECT_EQ(dead.refused_terminal, 1);
  EXPECT_TRUE(dead.reconciles()) << dead.to_json();

  // The sibling delivers everything, bit-for-bit business as usual.
  std::vector<std::int64_t> seqs;
  const SessionStats alive = service.close_session(
      b.session,
      [&](const VolumeImage&, std::int64_t seq) { seqs.push_back(seq); });
  EXPECT_FALSE(alive.failed);
  EXPECT_EQ(alive.delivered_frames, 3);
  EXPECT_EQ(seqs, (std::vector<std::int64_t>{0, 1, 2}));
  EXPECT_TRUE(alive.reconciles()) << alive.to_json();
}

TEST(ImagingService, CompoundingSessionsAccountGroupsCorrectly) {
  ImagingService service(ServiceBudget{.worker_threads = 2,
                                       .inflight_volumes = 4});
  Scenario s = tiny_scenario("sa-compound", EngineFamily::kTableSteerSA);
  s.sa_origins = 3;
  s.compound_origins = 3;
  s.queue_depth = 2;
  const Admission a = service.open_session(s);
  ASSERT_TRUE(a.admitted);
  auto frames = make_frames(s, 6, 19);
  std::int64_t sent = 0;
  for (EchoFrame& f : frames) {
    ASSERT_TRUE(service.submit(a.session, std::move(f)));
    ++sent;
    // Pace on acceptance so the depth-2 backlog never overflows and the
    // group accounting below is deterministic.
    while (service.session_stats(a.session).accepted < sent) {
      service.poll(a.session, kDevNull);
    }
  }
  const SessionStats stats = service.close_session(a.session, kDevNull);
  EXPECT_FALSE(stats.failed);
  EXPECT_EQ(stats.delivered_frames, 2);  // two K=3 groups
  EXPECT_EQ(stats.delivered_insonifications, 6);
  EXPECT_TRUE(stats.reconciles()) << stats.to_json();
}

TEST(ImagingService, MidRunScrapesNeverObserveATornLedger) {
  // The stats-drain race regression test: scrape stats() continuously
  // while a session is submitting, delivering and finally closing. Every
  // snapshot must satisfy the ledger bound (delivered + shed + dropped +
  // refused <= submitted) — before the one-lock pipeline snapshot, a
  // scrape during a delivery burst could see delivered counts ahead of
  // the (stale, lifetime-folded) acceptance counters. snapshot_locked
  // additionally self-checks with US3D_ENSURES(ledger_bounded()).
  ImagingService service(ServiceBudget{.worker_threads = 2,
                                       .inflight_volumes = 4});
  const Scenario s = tiny_scenario("scraped");
  const Admission a = service.open_session(
      s, SessionOptions{.policy = ShedPolicy::kDropOldest});
  ASSERT_TRUE(a.admitted);

  std::atomic<bool> stop{false};
  std::atomic<int> scrapes{0};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const ServiceStats snap = service.stats();
      EXPECT_TRUE(snap.ledger_bounded());
      scrapes.fetch_add(1, std::memory_order_relaxed);
    }
  });

  auto frames = make_frames(s, 12, 41);
  for (EchoFrame& f : frames) {
    service.submit(a.session, std::move(f));  // sheds under pressure: fine
    service.poll(a.session, kDevNull);
  }
  const SessionStats closed = service.close_session(a.session, kDevNull);
  stop.store(true, std::memory_order_relaxed);
  scraper.join();
  EXPECT_TRUE(closed.reconciles()) << closed.to_json();
  EXPECT_TRUE(closed.ledger_bounded());
  EXPECT_GT(scrapes.load(), 0);
  EXPECT_TRUE(service.stats().ledger_bounded());
}

TEST(ImagingService, DestructorClosesEverythingWithoutHanging) {
  ImagingService service(ServiceBudget{.worker_threads = 2,
                                       .inflight_volumes = 4});
  const Scenario s = tiny_scenario("abandoned");
  const Admission a = service.open_session(s);
  ASSERT_TRUE(a.admitted);
  auto frames = make_frames(s, 2, 23);
  for (EchoFrame& f : frames) service.submit(a.session, std::move(f));
  // No poll, no close: the destructor must drain and shut down.
}

}  // namespace
}  // namespace us3d::service
