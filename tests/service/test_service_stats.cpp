// ServiceStats / SessionStats: the JSON contract dashboards and
// BENCH_service.json are built from (keys only grow), per-class latency
// aggregation, and the enum name round-trips.
#include "service/service_stats.h"

#include <gtest/gtest.h>

#include <string>

#include "service/imaging_service.h"

#include "acoustic/echo_synth.h"
#include "acoustic/phantom.h"
#include "common/prng.h"

namespace us3d::service {
namespace {

TEST(ServiceEnums, NamesRoundTrip) {
  for (const PriorityClass p :
       {PriorityClass::kInteractive, PriorityClass::kRoutine,
        PriorityClass::kBulk}) {
    const auto back = parse_priority(priority_name(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
  for (const ShedPolicy p :
       {ShedPolicy::kRefuseNewest, ShedPolicy::kDropOldest,
        ShedPolicy::kAdaptiveDepth}) {
    const auto back = parse_policy(policy_name(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(parse_priority("vip").has_value());
  EXPECT_FALSE(parse_policy("drop_everything").has_value());
}

TEST(SessionStats, JsonCarriesTheLedgerKeys) {
  SessionStats s;
  s.id = 7;
  s.scenario = "demo";
  s.submitted = 10;
  s.accepted = 8;
  s.shed_refused = 2;
  s.latency.add(0.001);
  const std::string json = s.to_json();
  for (const char* key :
       {"\"id\"", "\"scenario\"", "\"priority\"", "\"policy\"",
        "\"granted_workers\"", "\"granted_depth\"", "\"effective_depth\"",
        "\"submitted\"", "\"accepted\"", "\"shed_refused\"",
        "\"shed_dropped\"", "\"shed_adaptive\"", "\"refused_terminal\"",
        "\"delivered_frames\"", "\"delivered_insonifications\"",
        "\"failed\"", "\"error\"", "\"latency\"", "\"p50_ms\"", "\"p90_ms\"",
        "\"p99_ms\"", "\"pipeline\"", "\"queue_depth\"", "\"ring_slots\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
  EXPECT_NE(json.find("\"scenario\":\"demo\""), std::string::npos);
}

TEST(SessionStats, ReconciliationCatchesLostFrames) {
  SessionStats s;
  s.submitted = 5;
  s.accepted = 3;
  s.shed_refused = 2;
  s.pipeline.insonifications = 3;
  s.delivered_insonifications = 2;
  s.pipeline.dropped_frames = 1;
  EXPECT_TRUE(s.reconciles());
  s.submitted = 6;  // one frame unaccounted for
  EXPECT_FALSE(s.reconciles());
}

TEST(SessionStats, LedgerBoundedHoldsMidFlightAndCatchesDoubleCounting) {
  // A healthy mid-flight snapshot: one frame accepted but still in the
  // pipeline — reconciles() is not yet exact, but the bound holds.
  SessionStats s;
  s.submitted = 5;
  s.accepted = 4;
  s.shed_refused = 1;
  s.pipeline.insonifications = 4;
  s.delivered_insonifications = 3;
  EXPECT_FALSE(s.reconciles());
  EXPECT_TRUE(s.ledger_bounded());
  // Every closed, reconciled ledger is also bounded.
  s.delivered_insonifications = 4;
  EXPECT_TRUE(s.reconciles());
  EXPECT_TRUE(s.ledger_bounded());
  // Double counting (a frame both delivered and shed) breaks the bound.
  s.shed_dropped = 2;
  EXPECT_FALSE(s.ledger_bounded());
  // Delivery exceeding pipeline acceptance breaks it too — that is
  // exactly the torn mid-run scrape the one-lock snapshot prevents.
  SessionStats torn;
  torn.submitted = 4;
  torn.accepted = 4;
  torn.pipeline.insonifications = 0;  // stale pipeline view
  torn.delivered_insonifications = 3;
  EXPECT_FALSE(torn.ledger_bounded());
}

TEST(ServiceStats, LedgerBoundedAggregatesOverSessions) {
  ServiceStats s;
  s.submitted = 10;
  s.delivered_frames = 6;
  s.shed_dropped = 4;
  EXPECT_TRUE(s.ledger_bounded());
  s.shed_dropped = 5;  // 6 + 5 > 10: something was counted twice
  EXPECT_FALSE(s.ledger_bounded());
  s.shed_dropped = 4;
  SessionStats bad;
  bad.delivered_insonifications = 1;  // delivered more than accepted
  s.sessions.push_back(bad);
  EXPECT_FALSE(s.ledger_bounded());
}

TEST(ServiceStats, JsonCarriesTheServiceContractKeys) {
  ServiceStats s;
  s.budget_workers = 4;
  s.latency_by_class[0].add(0.002);
  s.sessions.push_back(SessionStats{});
  const std::string json = s.to_json();
  for (const char* key :
       {"\"budget\"", "\"worker_threads\"", "\"inflight_volumes\"",
        "\"workers_in_use\"", "\"inflight_in_use\"", "\"open_sessions\"",
        "\"sessions_admitted\"", "\"sessions_refused\"",
        "\"sessions_closed\"", "\"submitted\"", "\"delivered_frames\"",
        "\"shed_refused\"", "\"shed_dropped\"", "\"shed_adaptive\"",
        "\"shed_total\"", "\"dropped_frames\"", "\"latency_by_class\"",
        "\"interactive\"", "\"routine\"", "\"bulk\"", "\"sessions\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

TEST(ServiceStats, LiveServiceAggregatesPerClassLatencyAndTotals) {
  using runtime::EchoFrame;
  ImagingService service(ServiceBudget{.worker_threads = 2,
                                       .inflight_volumes = 4});
  Scenario scenario;
  scenario.name = "stats-probe";
  scenario.probe_elements = 5;
  scenario.n_lines = 6;
  scenario.n_depth = 12;
  scenario.worker_threads = 1;
  scenario.queue_depth = 2;
  const Admission a = service.open_session(
      scenario, SessionOptions{.priority = PriorityClass::kInteractive});
  ASSERT_TRUE(a.admitted);

  const imaging::SystemConfig cfg = scenario.system();
  const imaging::VolumeGrid grid(cfg.volume);
  const acoustic::Phantom phantom{acoustic::PointScatterer{
      grid.focal_point(2, 3, 5).position, 1.0}};
  for (int i = 0; i < 3; ++i) {
    EchoFrame frame{acoustic::synthesize_echoes(cfg, phantom), Vec3{}, i};
    ASSERT_TRUE(service.submit(a.session, std::move(frame)));
    while (service.session_stats(a.session).accepted < i + 1) {
      service.poll(a.session, [](const beamform::VolumeImage&,
                                 std::int64_t) {});
    }
  }
  const SessionStats closed = service.close_session(a.session);
  EXPECT_EQ(closed.delivered_frames, 3);
  EXPECT_EQ(closed.latency.count(), 3u);
  EXPECT_GT(closed.latency.p50(), 0.0);
  EXPECT_LE(closed.latency.p50(), closed.latency.p99());

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.open_sessions, 0);
  EXPECT_EQ(stats.sessions_closed, 1);
  EXPECT_EQ(stats.submitted, 3);
  EXPECT_EQ(stats.delivered_frames, 3);
  EXPECT_EQ(stats.shed_total(), 0);
  // Latency landed in the session's priority class bucket, not elsewhere.
  EXPECT_EQ(
      stats.latency_by_class[static_cast<int>(PriorityClass::kInteractive)]
          .count(),
      3u);
  EXPECT_EQ(
      stats.latency_by_class[static_cast<int>(PriorityClass::kBulk)].count(),
      0u);
  ASSERT_EQ(stats.sessions.size(), 1u);
  EXPECT_TRUE(stats.sessions[0].reconciles());
  // The service JSON embeds the session ledgers.
  EXPECT_NE(stats.to_json().find("\"scenario\":\"stats-probe\""),
            std::string::npos);
}

}  // namespace
}  // namespace us3d::service
