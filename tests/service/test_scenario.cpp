// Scenario descriptors and the catalog: the JSON round-trip is a wire
// format (clients submit the same descriptors the tests pin), and the
// built-in catalog must span every delay-engine family so "all five
// engines" stays a loop, not a hand-maintained list.
#include "service/scenario.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/contracts.h"

namespace us3d::service {
namespace {

TEST(EngineFamily, NamesRoundTrip) {
  for (const EngineFamily f :
       {EngineFamily::kExact, EngineFamily::kTableFree,
        EngineFamily::kTableSteer, EngineFamily::kFullTable,
        EngineFamily::kTableSteerSA}) {
    const auto parsed = parse_family(family_name(f));
    ASSERT_TRUE(parsed.has_value()) << family_name(f);
    EXPECT_EQ(*parsed, f);
  }
  EXPECT_FALSE(parse_family("fpga").has_value());
}

TEST(Scenario, JsonRoundTripsEveryBuiltin) {
  const ScenarioCatalog catalog = ScenarioCatalog::builtin();
  for (const Scenario& s : catalog.scenarios()) {
    const std::string json = s.to_json();
    const Scenario back = Scenario::from_json(json);
    EXPECT_EQ(back, s) << json;
    // A round-tripped descriptor serializes identically: the JSON is
    // canonical, not just parseable.
    EXPECT_EQ(back.to_json(), json);
  }
}

TEST(Scenario, FromJsonToleratesWhitespaceAndKeyOrder) {
  const Scenario s = Scenario::from_json(R"( {
    "engine" : "tablesteer_sa" ,
    "name"   : "reordered",
    "compound_origins": 2,
    "table_bits": 14,
    "sa_backoff_m": 0.003
  } )");
  EXPECT_EQ(s.name, "reordered");
  EXPECT_EQ(s.engine, EngineFamily::kTableSteerSA);
  EXPECT_EQ(s.compound_origins, 2);
  EXPECT_EQ(s.table_bits, 14);
  EXPECT_DOUBLE_EQ(s.sa_backoff_m, 0.003);
  // Unspecified fields keep their defaults.
  EXPECT_EQ(s.n_lines, Scenario{}.n_lines);
  EXPECT_EQ(s.queue_depth, Scenario{}.queue_depth);
}

TEST(Scenario, FromJsonRejectsMalformedInput) {
  // Structure errors.
  EXPECT_THROW(Scenario::from_json(""), ContractViolation);
  EXPECT_THROW(Scenario::from_json("[]"), ContractViolation);
  EXPECT_THROW(Scenario::from_json("{\"name\":\"x\"} trailing"),
               ContractViolation);
  EXPECT_THROW(Scenario::from_json("{\"name\":\"x\",}"), ContractViolation);
  // Required field.
  EXPECT_THROW(Scenario::from_json("{\"n_lines\":8}"), ContractViolation);
  // Unknown keys and enum values must fail loudly, never be half-applied.
  EXPECT_THROW(Scenario::from_json("{\"name\":\"x\",\"frobnicate\":1}"),
               ContractViolation);
  EXPECT_THROW(Scenario::from_json("{\"name\":\"x\",\"engine\":\"gpu\"}"),
               ContractViolation);
  EXPECT_THROW(Scenario::from_json("{\"name\":\"x\",\"simd\":\"avx\"}"),
               ContractViolation);
  EXPECT_THROW(Scenario::from_json("{\"name\":\"x\",\"precision\":\"int16\"}"),
               ContractViolation);
  EXPECT_THROW(Scenario::from_json("{\"name\":\"x\",\"pacing\":\"turbo\"}"),
               ContractViolation);
  EXPECT_THROW(Scenario::from_json("{\"name\":\"x\",\"order\":\"spiral\"}"),
               ContractViolation);
  // Type errors.
  EXPECT_THROW(Scenario::from_json("{\"name\":\"x\",\"n_lines\":\"8\"}"),
               ContractViolation);
  EXPECT_THROW(Scenario::from_json("{\"name\":\"x\",\"n_lines\":8.5}"),
               ContractViolation);
  // Duplicate keys are ambiguous.
  EXPECT_THROW(Scenario::from_json("{\"name\":\"x\",\"name\":\"y\"}"),
               ContractViolation);
  // validate() runs on the result.
  EXPECT_THROW(Scenario::from_json("{\"name\":\"x\",\"table_bits\":12}"),
               ContractViolation);
  EXPECT_THROW(Scenario::from_json("{\"name\":\"\"}"), ContractViolation);
}

TEST(Scenario, NameEscapingSurvivesTheRoundTrip) {
  Scenario s;
  s.name = "weird \"name\" with \\ backslash\nand\tcontrol \x01 chars";
  const std::string json = s.to_json();
  // The emitted JSON must never contain a raw control character — that
  // is what makes BENCH_service.json json.load()-able for any name.
  for (const char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u) << json;
  }
  const Scenario back = Scenario::from_json(json);
  EXPECT_EQ(back.name, s.name);
}

TEST(Scenario, MaterializesSystemEngineAndPipelineConfig) {
  const ScenarioCatalog catalog = ScenarioCatalog::builtin();
  for (const Scenario& s : catalog.scenarios()) {
    const imaging::SystemConfig cfg = s.system();
    EXPECT_EQ(cfg.volume.n_theta, s.n_lines) << s.name;
    EXPECT_EQ(cfg.volume.n_depth, s.n_depth) << s.name;
    const auto engine = s.make_engine();
    ASSERT_NE(engine, nullptr) << s.name;
    EXPECT_EQ(engine->element_count(), s.probe_elements * s.probe_elements)
        << s.name;
    const runtime::PipelineConfig pc = s.pipeline_config();
    EXPECT_EQ(pc.worker_threads, s.worker_threads) << s.name;
    EXPECT_EQ(pc.queue_depth, s.queue_depth) << s.name;
    EXPECT_EQ(pc.compound_origins, s.compound_origins) << s.name;
  }
}

TEST(Scenario, EngineNamesMatchTheirFamilies) {
  const ScenarioCatalog catalog = ScenarioCatalog::builtin();
  const auto name_of = [&](const char* scenario) {
    const Scenario* s = catalog.find(scenario);
    EXPECT_NE(s, nullptr) << scenario;
    return s->make_engine()->name();
  };
  EXPECT_EQ(name_of("exact-reference"), "EXACT");
  EXPECT_EQ(name_of("tablefree-interactive"), "TABLEFREE");
  EXPECT_EQ(name_of("tablesteer-cardiac-18b"), "TABLESTEER-18b");
  EXPECT_EQ(name_of("tablesteer-lowpower-14b"), "TABLESTEER-14b");
  EXPECT_EQ(name_of("sa-compound-volumetric"), "TABLESTEER-SA");
}

TEST(Scenario, OriginsCycleTheSyntheticAperturePlan) {
  const ScenarioCatalog catalog = ScenarioCatalog::builtin();
  const Scenario* sa = catalog.find("sa-compound-volumetric");
  ASSERT_NE(sa, nullptr);
  const auto origins = sa->origins(sa->sa_origins + 2);
  ASSERT_EQ(origins.size(), static_cast<std::size_t>(sa->sa_origins + 2));
  EXPECT_EQ(origins[0].z, 0.0);  // first virtual source is centred
  EXPECT_LT(origins[1].z, 0.0);  // the rest sit behind the probe
  EXPECT_EQ(origins[static_cast<std::size_t>(sa->sa_origins)].z,
            origins[0].z);  // cycles

  const Scenario* fixed = catalog.find("tablefree-interactive");
  ASSERT_NE(fixed, nullptr);
  for (const Vec3& origin : fixed->origins(3)) {
    EXPECT_EQ(origin.z, 0.0);
  }
}

TEST(ScenarioCatalog, BuiltinSpansAllFiveEngineFamilies) {
  const ScenarioCatalog catalog = ScenarioCatalog::builtin();
  EXPECT_GE(catalog.size(), 5u);
  std::set<EngineFamily> families;
  std::set<std::string> names;
  for (const Scenario& s : catalog.scenarios()) {
    families.insert(s.engine);
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate " << s.name;
    EXPECT_NO_THROW(s.validate()) << s.name;
  }
  EXPECT_EQ(families.size(), 5u) << "catalog must span every engine family";
}

TEST(ScenarioCatalog, FindAddReplaceAndJson) {
  ScenarioCatalog catalog;
  EXPECT_EQ(catalog.find("x"), nullptr);
  Scenario s;
  s.name = "x";
  s.n_lines = 6;
  catalog.add(s);
  ASSERT_NE(catalog.find("x"), nullptr);
  EXPECT_EQ(catalog.find("x")->n_lines, 6);
  s.n_lines = 8;
  catalog.add(s);  // replaces by name
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.find("x")->n_lines, 8);

  Scenario invalid;
  invalid.name = "bad";
  invalid.queue_depth = 0;
  EXPECT_THROW(catalog.add(invalid), ContractViolation);

  const std::string json = catalog.to_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"name\":\"x\""), std::string::npos);
  // Every element of the array is itself a valid scenario object.
  const Scenario back = Scenario::from_json(
      json.substr(1, json.size() - 2));  // single-element array
  EXPECT_EQ(back, *catalog.find("x"));
}

}  // namespace
}  // namespace us3d::service
