// The service acceptance property: under multi-session load with the
// adaptive load-shedding policy actively shedding, every volume that *is*
// delivered remains BIT-IDENTICAL to its serial single-session
// reconstruction — scheduling, budget sharing and shedding may drop
// frames, but they may never corrupt one. Property-tested across all five
// delay-engine families and with >= 4 concurrent sessions on one shared
// worker budget.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "acoustic/echo_synth.h"
#include "acoustic/phantom.h"
#include "beamform/beamformer.h"
#include "common/prng.h"
#include "probe/apodization.h"
#include "service/imaging_service.h"

namespace us3d::service {
namespace {

using beamform::VolumeImage;
using runtime::EchoFrame;

void expect_bit_identical(const VolumeImage& a, const VolumeImage& b,
                          const std::string& what) {
  const auto& s = a.spec();
  ASSERT_EQ(s.total_points(), b.spec().total_points()) << what;
  for (int it = 0; it < s.n_theta; ++it) {
    for (int ip = 0; ip < s.n_phi; ++ip) {
      for (int id = 0; id < s.n_depth; ++id) {
        ASSERT_EQ(a.at(it, ip, id), b.at(it, ip, id))
            << what << " differs at (" << it << "," << ip << "," << id << ")";
      }
    }
  }
}

Scenario tiny_scenario(const std::string& name, EngineFamily family) {
  Scenario s;
  s.name = name;
  s.engine = family;
  s.probe_elements = 5;
  s.n_lines = 6;
  s.n_depth = 12;
  s.sa_origins = 3;
  s.worker_threads = 2;
  s.queue_depth = 2;
  return s;
}

std::vector<EchoFrame> make_frames(const Scenario& scenario, int n,
                                   std::uint64_t seed) {
  const imaging::SystemConfig cfg = scenario.system();
  const imaging::VolumeGrid grid(cfg.volume);
  SplitMix64 rng(seed);
  const std::vector<Vec3> origins = scenario.origins(n);
  std::vector<EchoFrame> frames;
  for (int i = 0; i < n; ++i) {
    acoustic::Phantom phantom;
    for (int k = 0; k < 2; ++k) {
      const int it = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(cfg.volume.n_theta)));
      const int ip = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(cfg.volume.n_phi)));
      const int id = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(cfg.volume.n_depth)));
      phantom.push_back(acoustic::PointScatterer{
          grid.focal_point(it, ip, id).position, rng.next_in(0.5, 1.5)});
    }
    acoustic::SynthesisOptions synth;
    synth.origin = origins[static_cast<std::size_t>(i)];
    frames.push_back(EchoFrame{acoustic::synthesize_echoes(cfg, phantom, synth),
                               origins[static_cast<std::size_t>(i)], i});
  }
  return frames;
}

/// Serial single-session reference for one frame of a scenario.
VolumeImage serial_reference(const Scenario& scenario, const EchoFrame& frame) {
  const imaging::SystemConfig cfg = scenario.system();
  const probe::ApodizationMap apod(probe::MatrixProbe(cfg.probe),
                                   probe::WindowKind::kRect);
  const beamform::Beamformer serial(cfg, apod);
  const auto engine = scenario.make_engine();
  return serial.reconstruct(frame.echoes, *engine,
                            {.order = scenario.order,
                             .origin = frame.origin,
                             .precision = scenario.precision});
}

void check_delivered_against_serial(
    const Scenario& scenario, const std::vector<EchoFrame>& frames,
    const std::map<std::int64_t, VolumeImage>& delivered,
    const std::string& label) {
  for (const auto& [seq, volume] : delivered) {
    ASSERT_GE(seq, 0);
    ASSERT_LT(seq, static_cast<std::int64_t>(frames.size()));
    expect_bit_identical(
        serial_reference(scenario, frames[static_cast<std::size_t>(seq)]),
        volume, label + " seq " + std::to_string(seq));
  }
}

TEST(ServiceBitExactness,
     AdaptiveSheddingNeverCorruptsSurvivorsForAnyEngineFamily) {
  for (const EngineFamily family :
       {EngineFamily::kExact, EngineFamily::kTableFree,
        EngineFamily::kTableSteer, EngineFamily::kFullTable,
        EngineFamily::kTableSteerSA}) {
    ImagingService service(ServiceBudget{.worker_threads = 3,
                                         .inflight_volumes = 4});
    const Scenario overloaded = tiny_scenario(
        std::string("overloaded-") + family_name(family), family);
    const Scenario sibling =
        tiny_scenario("sibling", EngineFamily::kTableFree);
    const Admission a = service.open_session(
        overloaded, SessionOptions{.policy = ShedPolicy::kAdaptiveDepth});
    const Admission b = service.open_session(sibling);
    ASSERT_TRUE(a.admitted) << a.reason;
    ASSERT_TRUE(b.admitted) << b.reason;

    // Overload session A with an unpolled burst (forces adaptive
    // shedding); give B a polite trickle.
    auto frames_a = make_frames(overloaded, 10, 101 + static_cast<int>(family));
    auto frames_b = make_frames(sibling, 3, 55);
    for (const EchoFrame& f : frames_a) {
      EchoFrame copy = f;
      service.submit(a.session, std::move(copy));
    }
    for (const EchoFrame& f : frames_b) {
      EchoFrame copy = f;
      service.submit(b.session, std::move(copy));
    }

    std::map<std::int64_t, VolumeImage> delivered_a, delivered_b;
    const SessionStats stats_a = service.close_session(
        a.session, [&](const VolumeImage& v, std::int64_t seq) {
          delivered_a.emplace(seq, v);
        });
    const SessionStats stats_b = service.close_session(
        b.session, [&](const VolumeImage& v, std::int64_t seq) {
          delivered_b.emplace(seq, v);
        });

    EXPECT_GT(stats_a.shed_adaptive, 0)
        << family_name(family) << ": the burst must overflow depth 2";
    // The adaptive depth shrank under the burst; by close it may already
    // have regrown (that is the point of the additive recovery), so only
    // the ceiling is a hard bound here.
    EXPECT_LE(stats_a.effective_depth, stats_a.granted_depth)
        << family_name(family);
    EXPECT_FALSE(stats_a.failed);
    EXPECT_TRUE(stats_a.reconciles()) << stats_a.to_json();
    EXPECT_EQ(stats_b.delivered_frames, 3);
    EXPECT_GT(stats_a.delivered_frames, 0);

    // The property: every survivor is bit-identical to its serial
    // reconstruction, shedding or not.
    check_delivered_against_serial(overloaded, frames_a, delivered_a,
                                   std::string(family_name(family)) + "/A");
    check_delivered_against_serial(sibling, frames_b, delivered_b,
                                   std::string(family_name(family)) + "/B");
  }
}

TEST(ServiceBitExactness, FourConcurrentSessionsOnOneSharedWorkerBudget) {
  // The acceptance scenario: >= 4 concurrent sessions against one shared
  // worker budget, one of them overloaded under kAdaptiveDepth, every
  // delivered volume still bit-identical to serial.
  ImagingService service(ServiceBudget{.worker_threads = 4,
                                       .inflight_volumes = 8});
  const std::vector<EngineFamily> families = {
      EngineFamily::kTableFree, EngineFamily::kTableSteer,
      EngineFamily::kFullTable, EngineFamily::kTableSteerSA};
  std::vector<Scenario> scenarios;
  std::vector<int> ids;
  for (std::size_t i = 0; i < families.size(); ++i) {
    scenarios.push_back(tiny_scenario(
        std::string("s") + std::to_string(i) + "-" +
            family_name(families[i]),
        families[i]));
    const Admission adm = service.open_session(
        scenarios.back(),
        SessionOptions{.priority = i == 0 ? PriorityClass::kInteractive
                                          : PriorityClass::kRoutine,
                       .policy = ShedPolicy::kAdaptiveDepth});
    ASSERT_TRUE(adm.admitted) << adm.reason;
    ids.push_back(adm.session);
  }
  EXPECT_EQ(service.open_sessions(), 4);
  // The shared budget is fully dealt and never oversubscribed.
  const ServiceStats mid = service.stats();
  EXPECT_EQ(mid.workers_in_use, 4);
  EXPECT_LE(mid.inflight_in_use, mid.budget_inflight);

  // Session 0 is overloaded (3x the frames, submitted in an unpolled
  // burst); the others interleave submits with polls.
  std::vector<std::vector<EchoFrame>> frames;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    frames.push_back(
        make_frames(scenarios[i], i == 0 ? 12 : 4, 200 + 7 * i));
  }
  std::vector<std::map<std::int64_t, VolumeImage>> delivered(4);
  const auto sink_for = [&](std::size_t i) {
    return [&delivered, i](const VolumeImage& v, std::int64_t seq) {
      delivered[i].emplace(seq, v);
    };
  };
  for (const EchoFrame& f : frames[0]) {
    EchoFrame copy = f;
    service.submit(ids[0], std::move(copy));
  }
  for (std::size_t i = 1; i < scenarios.size(); ++i) {
    std::int64_t sent = 0;
    for (const EchoFrame& f : frames[i]) {
      EchoFrame copy = f;
      ASSERT_TRUE(service.submit(ids[i], std::move(copy)));
      ++sent;
      // Polite pacing: wait until the pipeline accepted everything so the
      // backlog never overflows (then "no shedding" is deterministic).
      while (service.session_stats(ids[i]).accepted < sent) {
        service.poll(ids[i], sink_for(i));
      }
    }
  }

  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const SessionStats stats =
        service.close_session(ids[i], sink_for(i));
    EXPECT_FALSE(stats.failed) << stats.error;
    EXPECT_TRUE(stats.reconciles()) << stats.to_json();
    if (i == 0) {
      EXPECT_GT(stats.shed_adaptive, 0)
          << "the overloaded session must shed under kAdaptiveDepth";
    } else {
      EXPECT_EQ(stats.shed_total(), 0)
          << "polite sessions must not be punished for a lagging sibling";
      EXPECT_EQ(stats.delivered_frames, 4);
    }
    check_delivered_against_serial(scenarios[i], frames[i], delivered[i],
                                   scenarios[i].name);
  }
}

TEST(ServiceBitExactness, QuantizedScenarioMatchesSerialQuantized) {
  // A quantized-precision session must deliver volumes bit-identical to
  // the serial quantized beamformer (serial_reference forwards the
  // scenario's precision), and report the resolved precision in its
  // stats.
  ImagingService service(ServiceBudget{.worker_threads = 2,
                                       .inflight_volumes = 4});
  Scenario scenario = tiny_scenario("quantized", EngineFamily::kTableSteer);
  scenario.precision = simd::Precision::kQuantized;
  const Admission adm = service.open_session(scenario);
  ASSERT_TRUE(adm.admitted) << adm.reason;
  EXPECT_EQ(service.session_stats(adm.session).precision, "quantized");

  const auto frames = make_frames(scenario, 4, 909);
  std::map<std::int64_t, VolumeImage> delivered;
  const auto sink = [&](const VolumeImage& v, std::int64_t seq) {
    delivered.emplace(seq, v);
  };
  std::int64_t sent = 0;
  for (const EchoFrame& f : frames) {
    EchoFrame copy = f;
    ASSERT_TRUE(service.submit(adm.session, std::move(copy)));
    ++sent;
    while (service.session_stats(adm.session).accepted < sent) {
      service.poll(adm.session, sink);
    }
  }
  const SessionStats stats = service.close_session(adm.session, sink);
  EXPECT_FALSE(stats.failed) << stats.error;
  EXPECT_EQ(stats.delivered_frames, 4);
  EXPECT_NE(stats.to_json().find("\"precision\":\"quantized\""),
            std::string::npos);
  check_delivered_against_serial(scenario, frames, delivered, scenario.name);
}

}  // namespace
}  // namespace us3d::service
