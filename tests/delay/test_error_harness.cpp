#include "delay/error_harness.h"

#include <gtest/gtest.h>

#include "common/angles.h"
#include "common/contracts.h"
#include "delay/exact.h"
#include "delay/tablefree.h"
#include "delay/tablesteer.h"
#include "probe/presets.h"

namespace us3d::delay {
namespace {

imaging::SystemConfig small_cfg() { return imaging::scaled_system(8, 12, 50); }

TEST(SelectionError, ExactEngineHasZeroError) {
  const auto cfg = small_cfg();
  ExactDelayEngine exact(cfg);
  const auto report = measure_selection_error(
      cfg, exact, imaging::ScanOrder::kNappeByNappe, SweepStrides{});
  EXPECT_EQ(report.pairs_total, cfg.delays_per_frame());
  EXPECT_DOUBLE_EQ(report.all.mean_abs(), 0.0);
  EXPECT_DOUBLE_EQ(report.all.max_abs(), 0.0);
}

TEST(SelectionError, TableFreeWithinPaperBounds) {
  const auto cfg = small_cfg();
  TableFreeEngine engine(cfg);
  const auto report = measure_selection_error(
      cfg, engine, imaging::ScanOrder::kNappeByNappe, SweepStrides{});
  EXPECT_LE(report.all.max_abs(), 2.0);   // paper: max 2
  EXPECT_LT(report.all.mean_abs(), 0.35); // paper: ~0.25
  EXPECT_GT(report.all.mean_abs(), 0.05);
}

TEST(SelectionError, StridesReduceSweptPairs) {
  const auto cfg = small_cfg();
  ExactDelayEngine exact(cfg);
  SweepStrides strides{2, 2, 5, 2, 2};
  const auto report = measure_selection_error(
      cfg, exact, imaging::ScanOrder::kNappeByNappe, strides);
  EXPECT_EQ(report.pairs_total, 6LL * 6 * 10 * 4 * 4);
}

TEST(SelectionError, DirectivityFilterShrinksPairSet) {
  const auto cfg = small_cfg();
  TableSteerEngine engine(cfg);
  const probe::Directivity dir(cfg.probe.pitch_m, cfg.wavelength_m(),
                               deg_to_rad(30.0));
  const auto report =
      measure_selection_error(cfg, engine, imaging::ScanOrder::kNappeByNappe,
                              SweepStrides{2, 2, 5, 2, 2}, dir);
  EXPECT_LT(report.pairs_in_directivity, report.pairs_total);
  EXPECT_GT(report.pairs_in_directivity, 0);
  // Filtering only removes pairs, and removes the worst ones.
  EXPECT_LE(report.filtered.max_abs(), report.all.max_abs());
}

TEST(SelectionError, RejectsBadStrides) {
  const auto cfg = small_cfg();
  ExactDelayEngine exact(cfg);
  SweepStrides bad;
  bad.depth = 0;
  EXPECT_THROW(measure_selection_error(
                   cfg, exact, imaging::ScanOrder::kNappeByNappe, bad),
               ContractViolation);
}

TEST(SteeringAlgorithmicError, UnsteeredVolumeHasTinyError) {
  // A volume with a single on-axis line: Eq. 7 is exact there.
  auto cfg = imaging::scaled_system(8, 1, 40);
  cfg.volume.theta_span_rad = 0.0;
  cfg.volume.phi_span_rad = 0.0;
  const auto report =
      measure_steering_algorithmic_error(cfg, SweepStrides{});
  EXPECT_LT(report.samples_all.max_abs(), 1e-6);
}

TEST(SteeringAlgorithmicError, SteeredVolumeShowsFarFieldError) {
  const auto cfg = small_cfg();
  const auto report =
      measure_steering_algorithmic_error(cfg, SweepStrides{});
  EXPECT_GT(report.samples_all.max_abs(), 0.5);
  EXPECT_GT(report.max_error_seconds_all, 0.0);
  // Mean stays moderate even unfiltered (errors concentrate at edges).
  EXPECT_LT(report.samples_all.mean_abs(), report.samples_all.max_abs());
}

TEST(WeightedSteeringError, WeightedMeanBelowUnweightedMean) {
  // Apodization deweights the aperture edges and directivity deweights the
  // steep angles — exactly where the steering error peaks — so the
  // weighted mean must undercut the raw mean.
  const auto cfg = small_cfg();
  const probe::MatrixProbe probe(cfg.probe);
  const probe::ApodizationMap apod(probe, probe::WindowKind::kHann);
  const auto dir = probe::Directivity::from_db_down(
      cfg.probe.pitch_m, cfg.wavelength_m(), 6.0);
  const auto weighted =
      measure_steering_weighted_error(cfg, SweepStrides{}, apod, dir);
  const auto raw = measure_steering_algorithmic_error(cfg, SweepStrides{});
  EXPECT_GT(weighted.total_weight, 0.0);
  EXPECT_LT(weighted.weighted_mean_abs_samples, raw.samples_all.mean_abs());
  EXPECT_LE(weighted.max_abs_samples_significant, raw.samples_all.max_abs());
}

TEST(WeightedSteeringError, RectApodizationStillWeightsByDirectivity) {
  const auto cfg = small_cfg();
  const probe::MatrixProbe probe(cfg.probe);
  const probe::ApodizationMap rect(probe, probe::WindowKind::kRect);
  const auto dir = probe::Directivity::from_db_down(
      cfg.probe.pitch_m, cfg.wavelength_m(), 6.0);
  const auto weighted =
      measure_steering_weighted_error(cfg, SweepStrides{2, 2, 5, 2, 2},
                                      rect, dir);
  const auto raw = measure_steering_algorithmic_error(
      cfg, SweepStrides{2, 2, 5, 2, 2});
  EXPECT_LT(weighted.weighted_mean_abs_samples, raw.samples_all.mean_abs());
}

TEST(WeightedSteeringError, RejectsMismatchedApodization) {
  const auto cfg = small_cfg();
  const probe::MatrixProbe other(probe::small_probe(4));
  const probe::ApodizationMap apod(other, probe::WindowKind::kHann);
  const auto dir = probe::Directivity::from_db_down(
      cfg.probe.pitch_m, cfg.wavelength_m(), 6.0);
  EXPECT_THROW(
      measure_steering_weighted_error(cfg, SweepStrides{}, apod, dir),
      ContractViolation);
}

TEST(SteeringAlgorithmicError, DirectivityFilterRemovesWorstErrors) {
  const auto cfg = small_cfg();
  const probe::Directivity dir(cfg.probe.pitch_m, cfg.wavelength_m(),
                               deg_to_rad(35.0));
  const auto report =
      measure_steering_algorithmic_error(cfg, SweepStrides{}, dir);
  EXPECT_LT(report.samples_filtered.max_abs(),
            report.samples_all.max_abs());
  EXPECT_LE(report.max_error_seconds_filtered,
            report.max_error_seconds_all);
  EXPECT_LE(report.mean_error_seconds_filtered * 1e9, 1000.0);
}

}  // namespace
}  // namespace us3d::delay
