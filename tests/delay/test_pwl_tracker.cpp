#include "delay/pwl_tracker.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.h"

namespace us3d::delay {
namespace {

PwlSqrt make_table() { return PwlSqrt::build(16.0, 1.0e6, 0.25); }

TEST(PwlTracker, SmoothSweepNeverStepsMoreThanOne) {
  const PwlSqrt pwl = make_table();
  PwlTracker tracker(pwl);
  tracker.seek(16.0);
  // Walk the domain with increments much smaller than any segment width.
  for (double x = 16.0; x <= 1.0e6; x *= 1.001) {
    const auto eval = tracker.evaluate(x);
    EXPECT_LE(eval.steps, 1) << "x = " << x;
    EXPECT_NEAR(eval.value, std::sqrt(x), 0.25 + 1e-9);
  }
  EXPECT_EQ(tracker.max_steps_single_evaluation(), 1);
}

TEST(PwlTracker, TracksDownwardToo) {
  const PwlSqrt pwl = make_table();
  PwlTracker tracker(pwl);
  tracker.seek(1.0e6);
  for (double x = 1.0e6; x >= 16.0; x /= 1.001) {
    const auto eval = tracker.evaluate(x);
    EXPECT_LE(eval.steps, 1);
  }
}

TEST(PwlTracker, BigJumpChargesOneStepPerSegment) {
  const PwlSqrt pwl = make_table();
  PwlTracker tracker(pwl);
  tracker.seek(16.0);
  EXPECT_EQ(tracker.segment(), 0u);
  const auto eval = tracker.evaluate(1.0e6);
  const std::size_t target = pwl.find_segment(1.0e6);
  EXPECT_EQ(eval.steps, static_cast<int>(target));
  EXPECT_EQ(tracker.segment(), target);
}

TEST(PwlTracker, EvaluationMatchesSearchBasedResult) {
  const PwlSqrt pwl = make_table();
  PwlTracker tracker(pwl);
  tracker.seek(500.0);
  for (const double x : {500.0, 510.0, 700.0, 650.0, 2.0e4, 16.0, 9.9e5}) {
    const auto eval = tracker.evaluate(x);
    EXPECT_DOUBLE_EQ(eval.value, pwl.evaluate(x));
    EXPECT_EQ(tracker.segment(), pwl.find_segment(x));
  }
}

TEST(PwlTracker, StatisticsAccumulate) {
  const PwlSqrt pwl = make_table();
  PwlTracker tracker(pwl);
  tracker.seek(16.0);
  tracker.evaluate(16.0);     // 0 steps
  tracker.evaluate(1.0e6);    // many steps
  tracker.evaluate(1.0e6);    // 0 steps
  EXPECT_EQ(tracker.evaluations(), 3);
  EXPECT_GT(tracker.total_steps(), 10);
  EXPECT_EQ(tracker.max_steps_single_evaluation(),
            static_cast<int>(pwl.find_segment(1.0e6)));
}

TEST(PwlTracker, ResetStatisticsKeepsPosition) {
  const PwlSqrt pwl = make_table();
  PwlTracker tracker(pwl);
  tracker.seek(1000.0);
  tracker.evaluate(5.0e5);
  const std::size_t pos = tracker.segment();
  tracker.reset_statistics();
  EXPECT_EQ(tracker.evaluations(), 0);
  EXPECT_EQ(tracker.total_steps(), 0);
  EXPECT_EQ(tracker.segment(), pos);
}

TEST(PwlTracker, SeekDoesNotChargeSteps) {
  const PwlSqrt pwl = make_table();
  PwlTracker tracker(pwl);
  tracker.seek(9.0e5);
  EXPECT_EQ(tracker.total_steps(), 0);
  EXPECT_EQ(tracker.segment(), pwl.find_segment(9.0e5));
}

TEST(PwlTracker, RejectsOutOfDomain) {
  const PwlSqrt pwl = make_table();
  PwlTracker tracker(pwl);
  EXPECT_THROW(tracker.evaluate(15.0), ContractViolation);
  EXPECT_THROW(tracker.evaluate(1.1e6), ContractViolation);
}

}  // namespace
}  // namespace us3d::delay
