#include "delay/tablesteer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "delay/table_sizing.h"
#include "common/contracts.h"
#include "delay/exact.h"
#include "delay/steering.h"
#include "imaging/scan_order.h"
#include "probe/transducer.h"

namespace us3d::delay {
namespace {

imaging::SystemConfig small_cfg() { return imaging::scaled_system(8, 12, 60); }

TEST(TableSteerConfig, NamedDesignPoints) {
  EXPECT_EQ(TableSteerConfig::bits18().entry_format, fx::kRefDelay18);
  EXPECT_EQ(TableSteerConfig::bits18().coeff_format, fx::kCorrection18);
  EXPECT_EQ(TableSteerConfig::bits14().entry_format, fx::kRefDelay14);
  EXPECT_EQ(TableSteerConfig::bits13().entry_format.total_bits(), 13);
  EXPECT_EQ(TableSteerConfig::bits18().name_suffix(), "-18b");
  EXPECT_EQ(TableSteerConfig::bits14().name_suffix(), "-14b");
}

TEST(TableSteerEngine, NameIncludesWidth) {
  TableSteerEngine engine(small_cfg());
  EXPECT_EQ(engine.name(), "TABLESTEER-18b");
  TableSteerEngine engine14(small_cfg(), TableSteerConfig::bits14());
  EXPECT_EQ(engine14.name(), "TABLESTEER-14b");
}

TEST(TableSteerEngine, MatchesDoubleSteeringFormulaWithinFixedPoint) {
  // The engine's integer output must be the fixed-point image of the
  // double-precision Eq. 7 evaluation: |difference| <= 1 sample (the
  // paper's bound on fixed-point effects: "in all cases ... +/-1 sample").
  const auto cfg = small_cfg();
  TableSteerEngine engine(cfg);
  engine.begin_frame(Vec3{});
  const probe::MatrixProbe probe(cfg.probe);
  const imaging::VolumeGrid grid(cfg.volume);
  std::vector<std::int32_t> out(64);
  imaging::for_each_focal_point(
      grid, imaging::ScanOrder::kNappeByNappe,
      [&](const imaging::FocalPoint& fp) {
        engine.compute(fp, out);
        for (int e = 0; e < 64; ++e) {
          const double formula = steered_delay_samples(
              cfg, fp, probe.element_position(e));
          const auto ideal =
              fx::round_real_to_int(formula, fx::Rounding::kHalfUp);
          EXPECT_LE(std::abs(out[static_cast<std::size_t>(e)] - ideal), 1)
              << "point (" << fp.i_theta << "," << fp.i_phi << ","
              << fp.i_depth << ") element " << e;
        }
      });
}

TEST(TableSteerEngine, ExactOnUnsteeredCentreLineAtDepth) {
  // Where theta ~ 0, phi ~ 0 and the point is deep, TABLESTEER equals the
  // exact delay to within fixed-point rounding.
  auto cfg = imaging::scaled_system(8, 13, 60);  // odd line count: true 0
  TableSteerEngine engine(cfg);
  ExactDelayEngine exact(cfg);
  engine.begin_frame(Vec3{});
  exact.begin_frame(Vec3{});
  const imaging::VolumeGrid grid(cfg.volume);
  const int centre = 6;  // theta = phi = 0 for 13 lines
  std::vector<std::int32_t> a(64), b(64);
  const auto fp = grid.focal_point(centre, centre, 59);
  engine.compute(fp, a);
  exact.compute(fp, b);
  for (std::size_t e = 0; e < 64; ++e) {
    EXPECT_LE(std::abs(a[e] - b[e]), 1);
  }
}

TEST(TableSteerEngine, FourteenBitIsCoarserThanEighteen) {
  const auto cfg = small_cfg();
  TableSteerEngine e18(cfg, TableSteerConfig::bits18());
  TableSteerEngine e14(cfg, TableSteerConfig::bits14());
  ExactDelayEngine exact(cfg);
  e18.begin_frame(Vec3{});
  e14.begin_frame(Vec3{});
  exact.begin_frame(Vec3{});
  const imaging::VolumeGrid grid(cfg.volume);
  std::vector<std::int32_t> a(64), b(64), c(64);
  double err18 = 0.0, err14 = 0.0;
  std::int64_t n = 0;
  imaging::for_each_focal_point(
      grid, imaging::ScanOrder::kNappeByNappe,
      [&](const imaging::FocalPoint& fp) {
        e18.compute(fp, a);
        e14.compute(fp, b);
        exact.compute(fp, c);
        for (std::size_t e = 0; e < 64; ++e) {
          err18 += std::abs(a[e] - c[e]);
          err14 += std::abs(b[e] - c[e]);
          ++n;
        }
      });
  // Table II: avg inaccuracy 1.44 (18b) vs 1.55 (14b): 14b is worse.
  EXPECT_LE(err18, err14);
}

TEST(TableSteerEngine, DelaysAreNonNegative) {
  const auto cfg = small_cfg();
  TableSteerEngine engine(cfg);
  engine.begin_frame(Vec3{});
  const imaging::VolumeGrid grid(cfg.volume);
  std::vector<std::int32_t> out(64);
  imaging::for_each_focal_point(
      grid, imaging::ScanOrder::kNappeByNappe,
      [&](const imaging::FocalPoint& fp) {
        engine.compute(fp, out);
        for (const auto v : out) EXPECT_GE(v, 0);
      });
}

TEST(TableSteerEngine, RejectsDisplacedOrigin) {
  TableSteerEngine engine(small_cfg());
  EXPECT_THROW(engine.begin_frame(Vec3{1.0e-3, 0.0, 0.0}),
               ContractViolation);
  EXPECT_NO_THROW(engine.begin_frame(Vec3{}));
}

TEST(TableSteerEngine, RejectsWrongSpan) {
  TableSteerEngine engine(small_cfg());
  engine.begin_frame(Vec3{});
  const imaging::VolumeGrid grid(small_cfg().volume);
  std::vector<std::int32_t> wrong(10);
  EXPECT_THROW(engine.compute(grid.focal_point(0, 0, 0), wrong),
               ContractViolation);
}

TEST(TableSteerEngine, CloneSharesTheImmutableReferenceTable) {
  // The reference table is the paper's headline memory cost; N worker
  // clones must read one shared copy, never duplicate it.
  TableSteerEngine engine(small_cfg());
  const auto clone = engine.clone();
  auto* steer_clone = dynamic_cast<TableSteerEngine*>(clone.get());
  ASSERT_NE(steer_clone, nullptr);
  EXPECT_EQ(&steer_clone->reference_table(), &engine.reference_table());

  // Sharing must not change values: same delays from engine and clone.
  engine.begin_frame(Vec3{});
  steer_clone->begin_frame(Vec3{});
  const probe::MatrixProbe probe(small_cfg().probe);
  const imaging::VolumeGrid grid(small_cfg().volume);
  std::vector<std::int32_t> a(
      static_cast<std::size_t>(probe.element_count()));
  std::vector<std::int32_t> b(a.size());
  const imaging::FocalPoint fp = grid.focal_point(1, 2, 3);
  engine.compute(fp, a);
  steer_clone->compute(fp, b);
  EXPECT_EQ(a, b);
}

TEST(TableSteerEngine, SharesSizingWithComponents) {
  const auto cfg = small_cfg();
  TableSteerEngine engine(cfg);
  EXPECT_EQ(engine.reference_table().entry_count(),
            reference_table_sizing(cfg, fx::kRefDelay18).folded_entries);
  EXPECT_EQ(engine.corrections().coefficient_count(),
            steering_set_sizing(cfg, fx::kCorrection18).total_coefficients);
}

}  // namespace
}  // namespace us3d::delay
