#include "delay/quantization.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "common/contracts.h"

namespace us3d::delay {
namespace {

QuantizationExperimentConfig with_trials(std::int64_t n) {
  QuantizationExperimentConfig cfg;
  cfg.trials = n;
  return cfg;
}

TEST(Quantization, ThirteenBitIntegerFlipsOneThird) {
  // Sec. VI-A: "33% of the echo samples experience this additional
  // inaccuracy if using 13 bit integers". With three independently rounded
  // integer terms, the flip probability is exactly the Irwin-Hall
  // P(|U1+U2+U3| > 1/2) = 1/3.
  QuantizationExperimentConfig cfg = with_trials(500'000);
  cfg.ref_format = fx::Format{13, 0, false};
  cfg.corr_format = fx::Format{13, 0, true};
  cfg.sum_format = fx::Format{14, 0, true};
  const QuantizationResult r = run_quantization_experiment(cfg);
  EXPECT_NEAR(r.fraction_changed(), 1.0 / 3.0, 0.01);
}

TEST(Quantization, EighteenBitFlipsFewPercent) {
  // Sec. VI-A: "reduced to less than 2% when using an 18-bit (13.5) fixed
  // point representation" (with sQ13.4 corrections). Our measured value
  // lands in the same few-percent band.
  const QuantizationResult r =
      run_quantization_experiment(with_trials(500'000));
  EXPECT_LT(r.fraction_changed(), 0.05);
  EXPECT_GT(r.fraction_changed(), 0.001);
}

TEST(Quantization, MaxIndexErrorIsOneSample) {
  // Sec. VI-A: "even when storing delay values as 13-bit integers, the
  // maximum difference ... is of +/-1 sample". The exact-derivation holds
  // for integer storage (three errors < 0.5 each, integer outputs) and for
  // 18b (total error well below 0.5); the mixed 14b grid can reach 2 in
  // rare alignment cases, which the experiment quantifies.
  for (const auto& fmt_pair :
       {std::pair{fx::Format{13, 0, false}, fx::Format{13, 0, true}},
        std::pair{fx::kRefDelay18, fx::kCorrection18}}) {
    QuantizationExperimentConfig cfg = with_trials(200'000);
    cfg.ref_format = fmt_pair.first;
    cfg.corr_format = fmt_pair.second;
    cfg.sum_format = fx::Format{14, fmt_pair.first.fraction_bits, true};
    const QuantizationResult r = run_quantization_experiment(cfg);
    EXPECT_LE(r.max_abs_index_diff, 1)
        << "formats " << fmt_pair.first.to_string();
  }
  QuantizationExperimentConfig cfg14 = with_trials(200'000);
  cfg14.ref_format = fx::kRefDelay14;
  cfg14.corr_format = fx::kCorrection14;
  cfg14.sum_format = fx::Format{14, 1, true};
  EXPECT_LE(run_quantization_experiment(cfg14).max_abs_index_diff, 2);
}

TEST(Quantization, MoreFractionBitsMonotonicallyBetter) {
  double prev = 1.0;
  for (const int frac : {0, 1, 3, 5}) {
    QuantizationExperimentConfig cfg = with_trials(300'000);
    cfg.ref_format = fx::Format{13, frac, false};
    cfg.corr_format = fx::Format{13, frac, true};
    cfg.sum_format = fx::Format{14, frac, true};
    const double f = run_quantization_experiment(cfg).fraction_changed();
    EXPECT_LT(f, prev) << "frac bits " << frac;
    prev = f;
  }
}

TEST(Quantization, DeterministicForSameSeed) {
  const QuantizationResult a =
      run_quantization_experiment(with_trials(100'000));
  const QuantizationResult b =
      run_quantization_experiment(with_trials(100'000));
  EXPECT_EQ(a.changed, b.changed);
}

TEST(Quantization, DifferentSeedsAgreeStatistically) {
  QuantizationExperimentConfig c1 = with_trials(300'000);
  QuantizationExperimentConfig c2 = with_trials(300'000);
  c2.seed = 999;
  const double f1 = run_quantization_experiment(c1).fraction_changed();
  const double f2 = run_quantization_experiment(c2).fraction_changed();
  EXPECT_NEAR(f1, f2, 0.005);
}

TEST(Quantization, RejectsBadConfig) {
  QuantizationExperimentConfig cfg;
  cfg.trials = 0;
  EXPECT_THROW(run_quantization_experiment(cfg), ContractViolation);
}

}  // namespace
}  // namespace us3d::delay
