// The DelayEngine statefulness contract, across every engine: compute()
// before begin_frame() is a precondition violation, and clone() yields an
// independent engine with identical configuration, no inherited frame, and
// bit-identical delays once it begins its own frame. These are the
// invariants the parallel runtime leans on when it clones one prototype
// per worker thread.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/contracts.h"
#include "delay/exact.h"
#include "delay/full_table.h"
#include "delay/synthetic_aperture.h"
#include "delay/tablefree.h"
#include "delay/tablesteer.h"
#include "imaging/scan_order.h"
#include "imaging/system_config.h"

namespace us3d::delay {
namespace {

imaging::SystemConfig cfg() { return imaging::scaled_system(6, 7, 24); }

struct EngineCase {
  std::string label;
  std::function<std::unique_ptr<DelayEngine>()> make;
};

std::vector<EngineCase> all_engines() {
  return {
      {"EXACT",
       [] { return std::make_unique<ExactDelayEngine>(cfg()); }},
      {"TABLEFREE",
       [] { return std::make_unique<TableFreeEngine>(cfg()); }},
      {"TABLESTEER-18b",
       [] {
         return std::make_unique<TableSteerEngine>(
             cfg(), TableSteerConfig::bits18());
       }},
      {"FULLTABLE",
       [] { return std::make_unique<FullTableEngine>(cfg()); }},
      {"TABLESTEER-SA",
       [] {
         return std::make_unique<SyntheticApertureSteerEngine>(
             cfg(), diverging_wave_plan(3, 4.0e-3));
       }},
  };
}

TEST(EngineContract, ComputeBeforeBeginFrameThrows) {
  const imaging::VolumeGrid grid(cfg().volume);
  for (const EngineCase& c : all_engines()) {
    auto engine = c.make();
    EXPECT_FALSE(engine->frame_begun()) << c.label;
    std::vector<std::int32_t> out(
        static_cast<std::size_t>(engine->element_count()));
    EXPECT_THROW(engine->compute(grid.focal_point(0, 0, 0), out),
                 ContractViolation)
        << c.label;
    engine->begin_frame(Vec3{});
    EXPECT_TRUE(engine->frame_begun()) << c.label;
    EXPECT_NO_THROW(engine->compute(grid.focal_point(0, 0, 0), out))
        << c.label;
  }
}

TEST(EngineContract, CloneDoesNotInheritTheBegunFrame) {
  const imaging::VolumeGrid grid(cfg().volume);
  for (const EngineCase& c : all_engines()) {
    auto engine = c.make();
    engine->begin_frame(Vec3{});
    auto clone = engine->clone();
    EXPECT_FALSE(clone->frame_begun()) << c.label;
    std::vector<std::int32_t> out(
        static_cast<std::size_t>(clone->element_count()));
    EXPECT_THROW(clone->compute(grid.focal_point(0, 0, 0), out),
                 ContractViolation)
        << c.label;
  }
}

TEST(EngineContract, ClonePreservesIdentity) {
  for (const EngineCase& c : all_engines()) {
    auto engine = c.make();
    auto clone = engine->clone();
    EXPECT_EQ(clone->name(), engine->name()) << c.label;
    EXPECT_EQ(clone->element_count(), engine->element_count()) << c.label;
  }
}

TEST(EngineContract, CloneProducesBitIdenticalDelays) {
  const imaging::SystemConfig config = cfg();
  const imaging::VolumeGrid grid(config.volume);
  for (const EngineCase& c : all_engines()) {
    auto engine = c.make();
    auto clone = engine->clone();
    engine->begin_frame(Vec3{});
    clone->begin_frame(Vec3{});
    std::vector<std::int32_t> a(
        static_cast<std::size_t>(engine->element_count()));
    std::vector<std::int32_t> b(a.size());
    imaging::for_each_focal_point(
        grid, imaging::ScanOrder::kNappeByNappe,
        [&](const imaging::FocalPoint& fp) {
          engine->compute(fp, a);
          clone->compute(fp, b);
          ASSERT_EQ(a, b) << c.label << " at depth " << fp.i_depth;
        });
  }
}

TEST(EngineContract, CloneIsIndependentOfThePrototype) {
  // Sweep the prototype deep into the volume, then let the clone start its
  // own frame from scratch: the clone's first-nappe delays must match a
  // fresh engine's, not be perturbed by the prototype's tracker state.
  const imaging::SystemConfig config = cfg();
  const imaging::VolumeGrid grid(config.volume);
  TableFreeEngine prototype{config};
  prototype.begin_frame(Vec3{});
  std::vector<std::int32_t> scratch(
      static_cast<std::size_t>(prototype.element_count()));
  imaging::for_each_focal_point(
      grid, imaging::ScanOrder::kNappeByNappe,
      [&](const imaging::FocalPoint& fp) { prototype.compute(fp, scratch); });

  auto clone = prototype.clone();
  TableFreeEngine fresh{config};
  clone->begin_frame(Vec3{});
  fresh.begin_frame(Vec3{});
  std::vector<std::int32_t> a(scratch.size()), b(scratch.size());
  imaging::for_each_focal_point(
      grid, imaging::ScanOrder::kNappeByNappe,
      [&](const imaging::FocalPoint& fp) {
        clone->compute(fp, a);
        fresh.compute(fp, b);
        ASSERT_EQ(a, b);
      });
}

TEST(EngineContract, SyntheticApertureCloneKeepsAllOrigins) {
  const imaging::SystemConfig config = cfg();
  const SyntheticAperturePlan plan = diverging_wave_plan(3, 4.0e-3);
  SyntheticApertureSteerEngine engine(config, plan);
  auto clone = engine.clone();
  const imaging::VolumeGrid grid(config.volume);
  std::vector<std::int32_t> a(
      static_cast<std::size_t>(engine.element_count()));
  std::vector<std::int32_t> b(a.size());
  for (const double z : plan.origin_z) {
    const Vec3 origin{0.0, 0.0, z};
    engine.begin_frame(origin);
    clone->begin_frame(origin);
    engine.compute(grid.focal_point(1, 2, 3), a);
    clone->compute(grid.focal_point(1, 2, 3), b);
    EXPECT_EQ(a, b) << "origin_z=" << z;
  }
}

}  // namespace
}  // namespace us3d::delay
