#include "delay/exact.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/contracts.h"
#include "imaging/scan_order.h"

namespace us3d::delay {
namespace {

TEST(TwoWayDelay, KnownGeometry) {
  // Origin at 0, scatterer straight ahead at 77 mm, element at origin:
  // both paths are 77 mm -> 2*77mm/1540 = 100 us.
  const Vec3 s{0.0, 0.0, 77.0e-3};
  EXPECT_NEAR(two_way_delay_s(Vec3{}, s, Vec3{}, 1540.0), 100.0e-6, 1e-12);
}

TEST(TwoWayDelay, SplitsIntoTxPlusRx) {
  const Vec3 o{1.0e-3, 0.0, 0.0};
  const Vec3 s{5.0e-3, -2.0e-3, 30.0e-3};
  const Vec3 d{-4.0e-3, 3.0e-3, 0.0};
  EXPECT_NEAR(two_way_delay_s(o, s, d, 1540.0),
              one_way_delay_s(s, o, 1540.0) + one_way_delay_s(s, d, 1540.0),
              1e-15);
}

TEST(TwoWayDelay, SymmetricInReceiveElementMirror) {
  // |S-D| is invariant when both S.x and D.x flip sign: the symmetry the
  // reference-table folding exploits.
  const Vec3 s{5.0e-3, 2.0e-3, 30.0e-3};
  const Vec3 s_mirror{-5.0e-3, 2.0e-3, 30.0e-3};
  const Vec3 d{3.0e-3, -1.0e-3, 0.0};
  const Vec3 d_mirror{-3.0e-3, -1.0e-3, 0.0};
  EXPECT_DOUBLE_EQ(two_way_delay_s(Vec3{}, s, d, 1540.0),
                   two_way_delay_s(Vec3{}, s_mirror, d_mirror, 1540.0));
}

TEST(TwoWayDelay, RejectsNonPositiveSpeed) {
  EXPECT_THROW(two_way_delay_s(Vec3{}, Vec3{0, 0, 1e-3}, Vec3{}, 0.0),
               ContractViolation);
}

TEST(ExactDelayEngine, MatchesFreeFunction) {
  const auto cfg = imaging::scaled_system(8, 8, 20);
  ExactDelayEngine engine(cfg);
  engine.begin_frame(Vec3{});
  const imaging::VolumeGrid grid(cfg.volume);
  const imaging::FocalPoint fp = grid.focal_point(3, 5, 10);
  std::vector<std::int32_t> out(static_cast<std::size_t>(
      engine.element_count()));
  engine.compute(fp, out);
  const probe::MatrixProbe probe(cfg.probe);
  for (int e = 0; e < engine.element_count(); ++e) {
    const double t = two_way_delay_s(Vec3{}, fp.position,
                                     probe.element_position(e),
                                     cfg.speed_of_sound);
    const double samples = cfg.seconds_to_samples(t);
    EXPECT_NEAR(out[static_cast<std::size_t>(e)], samples, 0.5 + 1e-9);
    EXPECT_NEAR(engine.delay_samples(fp, e), samples, 1e-9);
  }
}

TEST(ExactDelayEngine, DelaysIncreaseWithDepth) {
  const auto cfg = imaging::scaled_system(4, 4, 50);
  ExactDelayEngine engine(cfg);
  engine.begin_frame(Vec3{});
  const imaging::VolumeGrid grid(cfg.volume);
  std::vector<std::int32_t> shallow(16), deep(16);
  engine.compute(grid.focal_point(2, 2, 5), shallow);
  engine.compute(grid.focal_point(2, 2, 45), deep);
  for (std::size_t e = 0; e < 16; ++e) EXPECT_GT(deep[e], shallow[e]);
}

TEST(ExactDelayEngine, DisplacedOriginAddsTransmitPath) {
  const auto cfg = imaging::scaled_system(4, 4, 20);
  ExactDelayEngine engine(cfg);
  const imaging::VolumeGrid grid(cfg.volume);
  const imaging::FocalPoint fp = grid.focal_point(1, 1, 10);
  std::vector<std::int32_t> centred(16), displaced(16);
  engine.begin_frame(Vec3{});
  engine.compute(fp, centred);
  engine.begin_frame(Vec3{0.0, 0.0, -10.0e-3});  // virtual source behind
  engine.compute(fp, displaced);
  for (std::size_t e = 0; e < 16; ++e) EXPECT_GT(displaced[e], centred[e]);
}

TEST(ExactDelayEngine, DelayFitsEchoBuffer) {
  const auto cfg = imaging::scaled_system(8, 8, 60);
  ExactDelayEngine engine(cfg);
  engine.begin_frame(Vec3{});
  const imaging::VolumeGrid grid(cfg.volume);
  std::vector<std::int32_t> out(64);
  imaging::for_each_focal_point(
      grid, imaging::ScanOrder::kNappeByNappe,
      [&](const imaging::FocalPoint& fp) {
        engine.compute(fp, out);
        for (const auto v : out) {
          EXPECT_GE(v, 0);
          EXPECT_LE(v, cfg.echo_buffer_samples());
        }
      });
}

TEST(ExactDelayEngine, RejectsWrongSpanSize) {
  const auto cfg = imaging::scaled_system(4, 4, 10);
  ExactDelayEngine engine(cfg);
  engine.begin_frame(Vec3{});
  const imaging::VolumeGrid grid(cfg.volume);
  std::vector<std::int32_t> wrong(7);
  EXPECT_THROW(engine.compute(grid.focal_point(0, 0, 0), wrong),
               ContractViolation);
}

}  // namespace
}  // namespace us3d::delay
