#include "delay/full_table.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/contracts.h"
#include "delay/exact.h"
#include "imaging/scan_order.h"

namespace us3d::delay {
namespace {

imaging::SystemConfig tiny_cfg() { return imaging::scaled_system(6, 8, 30); }

TEST(FullTableEngine, ReproducesExactEngineEverywhere) {
  const auto cfg = tiny_cfg();
  FullTableEngine table(cfg);
  ExactDelayEngine exact(cfg);
  table.begin_frame(Vec3{});
  exact.begin_frame(Vec3{});
  const imaging::VolumeGrid grid(cfg.volume);
  std::vector<std::int32_t> a(36), b(36);
  imaging::for_each_focal_point(
      grid, imaging::ScanOrder::kScanlineByScanline,
      [&](const imaging::FocalPoint& fp) {
        table.compute(fp, a);
        exact.compute(fp, b);
        EXPECT_EQ(a, b);
      });
}

TEST(FullTableEngine, EntryCountMatchesSizing) {
  const auto cfg = tiny_cfg();
  FullTableEngine table(cfg);
  EXPECT_EQ(table.entry_count(), cfg.delays_per_frame());
  EXPECT_DOUBLE_EQ(table.storage_bytes(),
                   static_cast<double>(cfg.delays_per_frame()) * 4.0);
}

TEST(FullTableEngine, RefusesPaperScaleTable) {
  // The whole point of the paper: 1.6e11 entries cannot be materialized.
  EXPECT_THROW(FullTableEngine{imaging::paper_system()}, ContractViolation);
}

TEST(FullTableEngine, MaxEntriesIsConfigurable) {
  const auto cfg = tiny_cfg();
  EXPECT_THROW(FullTableEngine(cfg, cfg.delays_per_frame() - 1),
               ContractViolation);
  EXPECT_NO_THROW(FullTableEngine(cfg, cfg.delays_per_frame()));
}

TEST(FullTableEngine, RequiresCentredOrigin) {
  FullTableEngine table(tiny_cfg());
  EXPECT_THROW(table.begin_frame(Vec3{0.0, 1.0e-3, 0.0}), ContractViolation);
}

TEST(FullTableEngine, NameIsFullTable) {
  EXPECT_EQ(FullTableEngine(tiny_cfg()).name(), "FULLTABLE");
}

}  // namespace
}  // namespace us3d::delay
