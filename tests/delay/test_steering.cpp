#include "delay/steering.h"

#include <gtest/gtest.h>

#include <cmath>

#include "delay/table_sizing.h"
#include "common/angles.h"
#include "common/contracts.h"
#include "delay/exact.h"
#include "imaging/volume.h"
#include "probe/transducer.h"

namespace us3d::delay {
namespace {

imaging::SystemConfig small_cfg() { return imaging::scaled_system(8, 16, 50); }

TEST(SteeringCorrection, ZeroForUnsteeredLine) {
  const auto cfg = small_cfg();
  EXPECT_DOUBLE_EQ(
      steering_correction_samples(cfg, 0.0, 0.0, 1.0e-3, 2.0e-3), 0.0);
}

TEST(SteeringCorrection, MatchesFormula) {
  const auto cfg = small_cfg();
  const double theta = deg_to_rad(15.0);
  const double phi = deg_to_rad(-7.0);
  const double x = 2.0e-3, y = -1.5e-3;
  const double expected =
      -(x * std::cos(phi) * std::sin(theta) + y * std::sin(phi)) /
      cfg.speed_of_sound * cfg.sampling_frequency_hz;
  EXPECT_NEAR(steering_correction_samples(cfg, theta, phi, x, y), expected,
              1e-12);
}

TEST(SteeringCorrection, OddInThetaForXTerm) {
  const auto cfg = small_cfg();
  const double phi = deg_to_rad(5.0);
  EXPECT_NEAR(
      steering_correction_samples(cfg, 0.3, phi, 1.0e-3, 0.0),
      -steering_correction_samples(cfg, -0.3, phi, 1.0e-3, 0.0), 1e-12);
}

TEST(SteeredDelay, ExactOnTheReferenceLine) {
  // For theta = phi = 0 the steered delay IS the reference delay: zero
  // algorithmic error on the unsteered line of sight.
  const auto cfg = small_cfg();
  const probe::MatrixProbe probe(cfg.probe);
  const imaging::VolumeGrid grid(cfg.volume);
  imaging::FocalPoint fp = grid.focal_point(0, 0, 25);
  fp.theta = 0.0;
  fp.phi = 0.0;
  fp.position = imaging::VolumeGrid::position(0.0, 0.0, fp.radius);
  for (int e = 0; e < probe.element_count(); e += 7) {
    const Vec3 elem = probe.element_position(e);
    const double exact = cfg.seconds_to_samples(
        two_way_delay_s(Vec3{}, fp.position, elem, cfg.speed_of_sound));
    EXPECT_NEAR(steered_delay_samples(cfg, fp, elem), exact, 1e-9);
  }
}

TEST(SteeredDelay, FarFieldErrorShrinksWithDepth) {
  // The Taylor error is O(aperture^2 / r): deep points are approximated
  // far better than shallow ones.
  const auto cfg = small_cfg();
  const probe::MatrixProbe probe(cfg.probe);
  const imaging::VolumeGrid grid(cfg.volume);
  const Vec3 elem = probe.element_position(0, 0);
  auto error_at = [&](int k) {
    const imaging::FocalPoint fp =
        grid.focal_point(cfg.volume.n_theta - 1, cfg.volume.n_phi - 1, k);
    const double exact = cfg.seconds_to_samples(
        two_way_delay_s(Vec3{}, fp.position, elem, cfg.speed_of_sound));
    return std::abs(steered_delay_samples(cfg, fp, elem) - exact);
  };
  EXPECT_GT(error_at(1), error_at(49));
}

TEST(SteeringCorrections, TableMatchesFormulaEverywhere) {
  const auto cfg = small_cfg();
  const SteeringCorrections corr(cfg);
  const probe::MatrixProbe probe(cfg.probe);
  const imaging::VolumeGrid grid(cfg.volume);
  for (int ix = 0; ix < 8; ix += 2) {
    for (int it = 0; it < cfg.volume.n_theta; it += 5) {
      for (int ip = 0; ip < cfg.volume.n_phi; ip += 3) {
        const double expected = -probe.column_x(ix) *
                                std::cos(grid.phi(ip)) *
                                std::sin(grid.theta(it)) /
                                cfg.speed_of_sound *
                                cfg.sampling_frequency_hz;
        EXPECT_NEAR(corr.x_correction(ix, it, ip).to_real(), expected,
                    fx::kCorrection18.lsb() / 2.0 + 1e-9)
            << ix << " " << it << " " << ip;
      }
    }
  }
  for (int iy = 0; iy < 8; ++iy) {
    for (int ip = 0; ip < cfg.volume.n_phi; ip += 4) {
      const double expected = -probe.row_y(iy) * std::sin(grid.phi(ip)) /
                              cfg.speed_of_sound * cfg.sampling_frequency_hz;
      EXPECT_NEAR(corr.y_correction(iy, ip).to_real(), expected,
                  fx::kCorrection18.lsb() / 2.0 + 1e-9);
    }
  }
}

TEST(SteeringCorrections, PhiFoldUsesCosineSymmetry) {
  // cos(phi) = cos(-phi): x corrections for mirrored phi indices are the
  // same stored coefficient.
  const auto cfg = small_cfg();
  const SteeringCorrections corr(cfg);
  const int n = cfg.volume.n_phi;
  for (int ip = 0; ip < n / 2; ++ip) {
    EXPECT_EQ(corr.x_correction(3, 7, ip).raw(),
              corr.x_correction(3, 7, n - 1 - ip).raw());
  }
}

TEST(SteeringCorrections, CoefficientCountMatchesSizing) {
  const auto cfg = small_cfg();
  const SteeringCorrections corr(cfg);
  const auto sizing = steering_set_sizing(cfg, fx::kCorrection18);
  EXPECT_EQ(corr.x_coefficient_count(), sizing.x_coefficients);
  EXPECT_EQ(corr.y_coefficient_count(), sizing.y_coefficients);
  EXPECT_DOUBLE_EQ(corr.storage_bits(), sizing.total_bits);
}

TEST(SteeringCorrections, RejectsOutOfRange) {
  const auto cfg = small_cfg();
  const SteeringCorrections corr(cfg);
  EXPECT_THROW(corr.x_correction(8, 0, 0), ContractViolation);
  EXPECT_THROW(corr.x_correction(0, 16, 0), ContractViolation);
  EXPECT_THROW(corr.y_correction(0, 16), ContractViolation);
}

}  // namespace
}  // namespace us3d::delay
