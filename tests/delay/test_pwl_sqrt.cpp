#include "delay/pwl_sqrt.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.h"
#include "common/prng.h"

namespace us3d::delay {
namespace {

TEST(PwlSqrt, EveryEvaluationWithinDelta) {
  const PwlSqrt pwl = PwlSqrt::build(16.0, 1.0e6, 0.25);
  SplitMix64 rng(1);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.next_in(16.0, 1.0e6);
    EXPECT_LE(std::abs(pwl.evaluate(x) - std::sqrt(x)), 0.25 + 1e-9)
        << "x = " << x;
  }
}

TEST(PwlSqrt, MeasuredMaxErrorMatchesDelta) {
  const PwlSqrt pwl = PwlSqrt::build(16.0, 2.0e7, 0.25);
  const double err = pwl.measured_max_error(128);
  EXPECT_LE(err, 0.25 + 1e-9);
  // The greedy construction pushes each segment to the bound, so the
  // measured maximum should be essentially delta, not far below it.
  EXPECT_GT(err, 0.24);
}

TEST(PwlSqrt, PaperSystemNeedsAbout70Segments) {
  // Sec. IV-B: "to keep the approximation error below ... +/-0.25 delay
  // samples ... we found 70 segments to be needed". The exact count
  // depends on the domain endpoints; ours lands in the 60-80 band.
  const double max_dist = 4500.0;  // samples (paper geometry, with margin)
  const PwlSqrt pwl = PwlSqrt::build(14.0, max_dist * max_dist, 0.25);
  EXPECT_GE(pwl.segment_count(), 60u);
  EXPECT_LE(pwl.segment_count(), 80u);
}

TEST(PwlSqrt, SegmentCountScalesAsInverseSqrtDelta) {
  // Equal-error PWL of a fixed curve needs ~1/sqrt(delta) segments.
  const std::size_t n1 = PwlSqrt::build(16.0, 1.0e7, 0.5).segment_count();
  const std::size_t n4 = PwlSqrt::build(16.0, 1.0e7, 0.125).segment_count();
  const double ratio = static_cast<double>(n4) / static_cast<double>(n1);
  EXPECT_NEAR(ratio, 2.0, 0.3);
}

TEST(PwlSqrt, SegmentsCoverDomainInOrder) {
  const PwlSqrt pwl = PwlSqrt::build(10.0, 1.0e5, 0.25);
  const auto& segs = pwl.segments();
  EXPECT_DOUBLE_EQ(segs.front().x_start, 10.0);
  for (std::size_t i = 1; i < segs.size(); ++i) {
    EXPECT_GT(segs[i].x_start, segs[i - 1].x_start);
  }
  EXPECT_LE(segs.back().x_start, 1.0e5);
}

TEST(PwlSqrt, FindSegmentBracketsInput) {
  const PwlSqrt pwl = PwlSqrt::build(10.0, 1.0e5, 0.25);
  SplitMix64 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_in(10.0, 1.0e5);
    const std::size_t s = pwl.find_segment(x);
    EXPECT_LE(pwl.segments()[s].x_start, x);
    if (s + 1 < pwl.segment_count()) {
      EXPECT_LT(x, pwl.segments()[s + 1].x_start);
    }
  }
}

TEST(PwlSqrt, FindSegmentAtExactBoundaries) {
  const PwlSqrt pwl = PwlSqrt::build(10.0, 1.0e5, 0.25);
  EXPECT_EQ(pwl.find_segment(10.0), 0u);
  EXPECT_EQ(pwl.find_segment(1.0e5), pwl.segment_count() - 1);
  const double b = pwl.segments()[1].x_start;
  EXPECT_EQ(pwl.find_segment(b), 1u);
}

TEST(PwlSqrt, SlopesDecreaseLikeDerivative) {
  const PwlSqrt pwl = PwlSqrt::build(10.0, 1.0e5, 0.25);
  const auto& segs = pwl.segments();
  for (std::size_t i = 1; i < segs.size(); ++i) {
    EXPECT_LT(segs[i].slope, segs[i - 1].slope);
  }
}

TEST(PwlSqrt, RejectsInvalidDomains) {
  EXPECT_THROW(PwlSqrt::build(0.0, 10.0, 0.25), ContractViolation);
  EXPECT_THROW(PwlSqrt::build(10.0, 10.0, 0.25), ContractViolation);
  EXPECT_THROW(PwlSqrt::build(1.0, 10.0, 0.0), ContractViolation);
}

TEST(PwlSqrt, EvaluateRejectsOutOfDomain) {
  const PwlSqrt pwl = PwlSqrt::build(10.0, 100.0, 0.25);
  EXPECT_THROW(pwl.find_segment(9.0), ContractViolation);
  EXPECT_THROW(pwl.find_segment(101.0), ContractViolation);
}

// Parameterized property sweep over deltas: bound holds and greedy count is
// near the theoretical optimum n ~ (qmax^1/4 - qmin^1/4) / sqrt(2 delta).
class PwlDeltaSweep : public ::testing::TestWithParam<double> {};

TEST_P(PwlDeltaSweep, ErrorBoundHolds) {
  const double delta = GetParam();
  const PwlSqrt pwl = PwlSqrt::build(16.0, 4.0e6, delta);
  EXPECT_LE(pwl.measured_max_error(64), delta * (1.0 + 1e-9));
}

TEST_P(PwlDeltaSweep, SegmentCountNearTheoreticalOptimum) {
  const double delta = GetParam();
  const double x_min = 16.0, x_max = 4.0e6;
  const PwlSqrt pwl = PwlSqrt::build(x_min, x_max, delta);
  // Equal-error minimax segmentation of sqrt: segment width at x is
  // 8 sqrt(delta) x^(3/4), so n = (x_max^1/4 - x_min^1/4) / (2 sqrt(delta)).
  const double optimum = (std::pow(x_max, 0.25) - std::pow(x_min, 0.25)) /
                         (2.0 * std::sqrt(delta));
  EXPECT_GE(static_cast<double>(pwl.segment_count()), optimum * 0.9);
  EXPECT_LE(static_cast<double>(pwl.segment_count()), optimum * 1.2 + 2.0);
}

INSTANTIATE_TEST_SUITE_P(Deltas, PwlDeltaSweep,
                         ::testing::Values(1.0, 0.5, 0.25, 0.125, 0.0625));

TEST(FixedPwlSqrt, MatchesDoubleReferenceClosely) {
  const PwlSqrt pwl = PwlSqrt::build(16.0, 2.0e7, 0.25);
  const FixedPwlSqrt fixed(pwl, FixedPwlSqrt::Config{});
  SplitMix64 rng(5);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.next_in(16.0, 2.0e7);
    const auto xi = static_cast<std::int64_t>(x);
    const std::size_t seg = pwl.find_segment(static_cast<double>(xi));
    const double fixed_val = fixed.evaluate_in_segment(xi, seg).to_real();
    const double ref_val =
        pwl.evaluate_in_segment(static_cast<double>(xi), seg);
    // Quantization of c1/c0 and the result adds at most ~0.1 samples on
    // top of the PWL error for the default formats.
    EXPECT_NEAR(fixed_val, ref_val, 0.15) << "x = " << xi;
  }
}

TEST(FixedPwlSqrt, TotalErrorVsTrueSqrtStaysSmall) {
  const PwlSqrt pwl = PwlSqrt::build(16.0, 2.0e7, 0.25);
  const FixedPwlSqrt fixed(pwl, FixedPwlSqrt::Config{});
  SplitMix64 rng(6);
  double worst = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const auto xi = static_cast<std::int64_t>(rng.next_in(16.0, 2.0e7));
    const std::size_t seg = pwl.find_segment(static_cast<double>(xi));
    const double v = fixed.evaluate_in_segment(xi, seg).to_real();
    worst = std::max(worst, std::abs(v - std::sqrt(static_cast<double>(xi))));
  }
  // delta + fixed-point effects: comfortably below half a sample.
  EXPECT_LT(worst, 0.45);
}

TEST(FixedPwlSqrt, LutBitsScaleWithSegments) {
  const PwlSqrt small = PwlSqrt::build(16.0, 1.0e5, 0.25);
  const PwlSqrt large = PwlSqrt::build(16.0, 2.0e7, 0.25);
  const FixedPwlSqrt fs(small, FixedPwlSqrt::Config{});
  const FixedPwlSqrt fl(large, FixedPwlSqrt::Config{});
  EXPECT_GT(fl.lut_bits(), fs.lut_bits());
  EXPECT_DOUBLE_EQ(
      fs.lut_bits(),
      static_cast<double>(fs.segment_count()) *
          (FixedPwlSqrt::Config{}.slope_format.total_bits() +
           FixedPwlSqrt::Config{}.value_format.total_bits() + 26));
}

}  // namespace
}  // namespace us3d::delay
