#include "delay/table_sizing.h"

#include <gtest/gtest.h>

#include "common/contracts.h"

namespace us3d::delay {
namespace {

const imaging::SystemConfig kPaper = imaging::paper_system();

TEST(NaiveTableSizing, PaperNumbers) {
  // Sec. II-B: ~164e9 coefficients; Sec. II-C: ~2.5e12 accesses/s.
  const NaiveTableSizing s = naive_table_sizing(kPaper, 13);
  EXPECT_EQ(s.coefficients, 163'840'000'000LL);
  EXPECT_NEAR(s.accesses_per_second, 2.4576e12, 1e7);
  // 13-bit coefficients: ~266 GB of storage, ~4 TB/s of access bandwidth.
  EXPECT_NEAR(s.total_bytes, 266.24e9, 1e8);
  EXPECT_GT(s.bandwidth_bytes_per_second, 3.9e12);
}

TEST(NaiveTableSizing, ScalesWithWidth) {
  const NaiveTableSizing s13 = naive_table_sizing(kPaper, 13);
  const NaiveTableSizing s26 = naive_table_sizing(kPaper, 26);
  EXPECT_DOUBLE_EQ(s26.total_bits, 2.0 * s13.total_bits);
}

TEST(NaiveTableSizing, RejectsNonPositiveWidth) {
  EXPECT_THROW(naive_table_sizing(kPaper, 0), ContractViolation);
}

TEST(ReferenceTableSizing, PaperNumbers) {
  // Sec. V-A: 100x100x1000 = 10e6 raw, folded to 50x50x1000 = 2.5e6;
  // Sec. V-B: 2.5e6 x 18 bits = 45 Mb.
  const ReferenceTableSizing s = reference_table_sizing(kPaper,
                                                        fx::kRefDelay18);
  EXPECT_EQ(s.raw_entries, 10'000'000);
  EXPECT_EQ(s.folded_entries, 2'500'000);
  EXPECT_EQ(s.bits_per_entry, 18);
  EXPECT_DOUBLE_EQ(s.folded_bits, 45.0e6);
}

TEST(ReferenceTableSizing, FoldingIsQuarterForEvenGrids) {
  const ReferenceTableSizing s = reference_table_sizing(kPaper,
                                                        fx::kRefDelay18);
  EXPECT_EQ(s.folded_entries * 4, s.raw_entries);
}

TEST(ReferenceTableSizing, OddGridsKeepCentreLine) {
  imaging::SystemConfig cfg = kPaper;
  cfg.probe.elements_x = 101;
  cfg.probe.elements_y = 101;
  const ReferenceTableSizing s = reference_table_sizing(cfg, fx::kRefDelay18);
  EXPECT_EQ(s.folded_entries, 51LL * 51 * 1000);
}

TEST(SteeringSetSizing, PaperNumbers) {
  // Sec. V-B: 100x64x128 + 100x128 = 832e3 values; x18 bits = 14.3 Mib.
  const SteeringSetSizing s = steering_set_sizing(kPaper, fx::kCorrection18);
  EXPECT_EQ(s.x_coefficients, 819'200);
  EXPECT_EQ(s.y_coefficients, 12'800);
  EXPECT_EQ(s.total_coefficients, 832'000);
  EXPECT_DOUBLE_EQ(s.total_bits, 14'976'000.0);
  EXPECT_NEAR(s.total_bits / (1024.0 * 1024.0), 14.28, 0.01);  // Mib
}

TEST(StreamingSizing, PaperNumbers) {
  // Sec. V-B: table fetched 960x/s at ~5.3 GB/s; 128 banks x 1k x 18b =
  // 2.3 Mb slice; slice + corrections ~ 2.3 + 14.3 Mb on chip.
  const StreamingSizing s = streaming_sizing(kPaper, fx::kRefDelay18,
                                             fx::kCorrection18, 128, 1024);
  EXPECT_DOUBLE_EQ(s.table_fetches_per_second, 960.0);
  EXPECT_NEAR(s.bandwidth_bytes_per_second, 5.4e9, 0.1e9);
  EXPECT_NEAR(s.on_chip_slice_bits, 2.36e6, 0.01e6);
  EXPECT_NEAR(s.on_chip_total_bits, 17.3e6, 0.1e6);
}

TEST(StreamingSizing, FourteenBitVariantSavesBandwidth) {
  // Table II: TABLESTEER-14b needs ~4.1 GB/s vs ~5.3 for 18b.
  const StreamingSizing s14 = streaming_sizing(kPaper, fx::kRefDelay14,
                                               fx::kCorrection14, 128, 1024);
  EXPECT_NEAR(s14.bandwidth_bytes_per_second, 4.2e9, 0.1e9);
}

TEST(StreamingSizing, RejectsBadGeometry) {
  EXPECT_THROW(
      streaming_sizing(kPaper, fx::kRefDelay18, fx::kCorrection18, 0, 1024),
      ContractViolation);
}

}  // namespace
}  // namespace us3d::delay
