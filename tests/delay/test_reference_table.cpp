#include "delay/reference_table.h"

#include <gtest/gtest.h>

#include <cmath>

#include "delay/table_sizing.h"
#include "common/angles.h"
#include "common/contracts.h"

namespace us3d::delay {
namespace {

imaging::SystemConfig small_cfg() { return imaging::scaled_system(8, 8, 50); }

TEST(ReferenceDelayTable, FoldedDimensions) {
  const ReferenceDelayTable table(small_cfg());
  EXPECT_EQ(table.quad_x(), 4);
  EXPECT_EQ(table.quad_y(), 4);
  EXPECT_EQ(table.depths(), 50);
  EXPECT_EQ(table.entry_count(), 4 * 4 * 50);
}

TEST(ReferenceDelayTable, OddProbeKeepsCentreColumn) {
  auto cfg = small_cfg();
  cfg.probe.elements_x = 9;
  const ReferenceDelayTable table(cfg);
  EXPECT_EQ(table.quad_x(), 5);
}

TEST(ReferenceDelayTable, EntriesMatchExactWithinHalfLsb) {
  const auto cfg = small_cfg();
  const ReferenceDelayTable table(cfg);
  for (int ix = 0; ix < 8; ix += 3) {
    for (int iy = 0; iy < 8; iy += 2) {
      for (int k = 0; k < 50; k += 7) {
        const double exact = table.exact_entry_samples(ix, iy, k);
        EXPECT_NEAR(table.entry_real(ix, iy, k), exact,
                    fx::kRefDelay18.lsb() / 2.0 + 1e-9);
      }
    }
  }
}

TEST(ReferenceDelayTable, MirrorElementsShareEntries) {
  // The folding invariant: elements at (+x,+y), (-x,+y), (+x,-y), (-x,-y)
  // all read the same stored word.
  const auto cfg = small_cfg();
  const ReferenceDelayTable table(cfg);
  for (int ix = 0; ix < 4; ++ix) {
    for (int iy = 0; iy < 4; ++iy) {
      const int mx = 7 - ix;
      const int my = 7 - iy;
      for (int k = 0; k < 50; k += 11) {
        const auto v = table.entry(ix, iy, k);
        EXPECT_EQ(v, table.entry(mx, iy, k));
        EXPECT_EQ(v, table.entry(ix, my, k));
        EXPECT_EQ(v, table.entry(mx, my, k));
      }
    }
  }
}

TEST(ReferenceDelayTable, FoldIndicesAreInvolutions) {
  const ReferenceDelayTable table(small_cfg());
  for (int ix = 0; ix < 8; ++ix) {
    EXPECT_EQ(table.fold_x(ix), table.fold_x(7 - ix));
    EXPECT_GE(table.fold_x(ix), 0);
    EXPECT_LT(table.fold_x(ix), table.quad_x());
  }
}

TEST(ReferenceDelayTable, DelayIncreasesWithDepth) {
  const ReferenceDelayTable table(small_cfg());
  for (int k = 1; k < 50; ++k) {
    EXPECT_GT(table.entry_real(0, 0, k), table.entry_real(0, 0, k - 1));
  }
}

TEST(ReferenceDelayTable, FartherElementsHaveLargerDelay) {
  const ReferenceDelayTable table(small_cfg());
  // Element (0,0) is the far corner; (3,3)/(4,4) are innermost.
  EXPECT_GT(table.entry_real(0, 0, 10), table.entry_real(4, 4, 10));
}

TEST(ReferenceDelayTable, StorageBitsMatchesSizingModule) {
  const auto cfg = small_cfg();
  const ReferenceDelayTable table(cfg);
  const auto sizing = reference_table_sizing(cfg, fx::kRefDelay18);
  EXPECT_EQ(table.entry_count(), sizing.folded_entries);
  EXPECT_DOUBLE_EQ(table.storage_bits(), sizing.folded_bits);
}

TEST(ReferenceDelayTable, FourteenBitEntriesCoarser) {
  const auto cfg = small_cfg();
  const ReferenceDelayTable t18(cfg);
  const ReferenceDelayTable t14(
      cfg, ReferenceTableConfig{.entry_format = fx::kRefDelay14});
  // Both approximate the same exact value, at different grain.
  const double exact = t18.exact_entry_samples(2, 2, 25);
  EXPECT_NEAR(t14.entry_real(2, 2, 25), exact, fx::kRefDelay14.lsb() / 2.0);
  EXPECT_LE(std::abs(t18.entry_real(2, 2, 25) - exact),
            std::abs(t14.entry_real(2, 2, 25) - exact) + 1e-9);
}

TEST(ReferenceDelayTable, DirectivityPruningCountsShallowWideEntries) {
  auto cfg = small_cfg();
  ReferenceTableConfig tc;
  tc.pruning = probe::Directivity(cfg.probe.pitch_m, cfg.wavelength_m(),
                                  deg_to_rad(30.0));
  const ReferenceDelayTable table(cfg, tc);
  EXPECT_GT(table.prunable_count(), 0);
  EXPECT_LT(table.prunable_fraction(), 1.0);
  // The far-corner element cannot see the shallowest on-axis points.
  EXPECT_TRUE(table.is_prunable(0, 0, 0));
  // Every element sees the deepest on-axis point.
  EXPECT_FALSE(table.is_prunable(0, 0, 49));
}

TEST(ReferenceDelayTable, NoPruningByDefault) {
  const ReferenceDelayTable table(small_cfg());
  EXPECT_EQ(table.prunable_count(), 0);
  EXPECT_DOUBLE_EQ(table.prunable_fraction(), 0.0);
}

TEST(ReferenceDelayTable, RejectsOutOfRange) {
  const ReferenceDelayTable table(small_cfg());
  EXPECT_THROW(table.entry(8, 0, 0), ContractViolation);
  EXPECT_THROW(table.entry_quad(4, 0, 0), ContractViolation);
  EXPECT_THROW(table.entry(0, 0, 50), ContractViolation);
}

}  // namespace
}  // namespace us3d::delay
