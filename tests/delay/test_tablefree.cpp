#include "delay/tablefree.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/contracts.h"
#include "delay/exact.h"
#include "imaging/scan_order.h"

namespace us3d::delay {
namespace {

imaging::SystemConfig small_cfg() { return imaging::scaled_system(8, 12, 60); }

TEST(TableFreeEngine, NameAndElementCount) {
  TableFreeEngine engine(small_cfg());
  EXPECT_EQ(engine.name(), "TABLEFREE");
  EXPECT_EQ(engine.element_count(), 64);
}

TEST(TableFreeEngine, WithinTwoSamplesOfExactEverywhere) {
  // Sec. VI-A: maximum absolute selection error of 2 for the fixed-point
  // implementation.
  const auto cfg = small_cfg();
  TableFreeEngine engine(cfg);
  ExactDelayEngine exact(cfg);
  engine.begin_frame(Vec3{});
  exact.begin_frame(Vec3{});
  const imaging::VolumeGrid grid(cfg.volume);
  std::vector<std::int32_t> a(64), b(64);
  imaging::for_each_focal_point(
      grid, imaging::ScanOrder::kNappeByNappe,
      [&](const imaging::FocalPoint& fp) {
        engine.compute(fp, a);
        exact.compute(fp, b);
        for (std::size_t e = 0; e < 64; ++e) {
          EXPECT_LE(std::abs(a[e] - b[e]), 2)
              << "point (" << fp.i_theta << "," << fp.i_phi << ","
              << fp.i_depth << ") element " << e;
        }
      });
}

TEST(TableFreeEngine, MeanSelectionErrorNearQuarterSample) {
  // Sec. VI-A: mean absolute selection error ~0.2489 on the paper system;
  // scaled systems land in the same 0.15-0.30 band.
  const auto cfg = small_cfg();
  TableFreeEngine engine(cfg);
  ExactDelayEngine exact(cfg);
  engine.begin_frame(Vec3{});
  exact.begin_frame(Vec3{});
  const imaging::VolumeGrid grid(cfg.volume);
  std::vector<std::int32_t> a(64), b(64);
  double sum = 0.0;
  std::int64_t n = 0;
  imaging::for_each_focal_point(
      grid, imaging::ScanOrder::kNappeByNappe,
      [&](const imaging::FocalPoint& fp) {
        engine.compute(fp, a);
        exact.compute(fp, b);
        for (std::size_t e = 0; e < 64; ++e) {
          sum += std::abs(a[e] - b[e]);
          ++n;
        }
      });
  const double mean = sum / static_cast<double>(n);
  EXPECT_GT(mean, 0.10);
  EXPECT_LT(mean, 0.35);
}

TEST(TableFreeEngine, DoublePrecisionModeIsWithinTheoreticalBound) {
  // With fixed-point disabled the only error source is the PWL bound:
  // |tx error| + |rx error| <= 2 * delta = 0.5, plus the final rounding.
  auto cfg = small_cfg();
  TableFreeConfig tf;
  tf.use_fixed_point = false;
  TableFreeEngine engine(cfg, tf);
  ExactDelayEngine exact(cfg);
  engine.begin_frame(Vec3{});
  exact.begin_frame(Vec3{});
  const imaging::VolumeGrid grid(cfg.volume);
  std::vector<std::int32_t> a(64);
  imaging::for_each_focal_point(
      grid, imaging::ScanOrder::kNappeByNappe,
      [&](const imaging::FocalPoint& fp) {
        engine.compute(fp, a);
        for (std::size_t e = 0; e < 64; ++e) {
          const double exact_samples =
              exact.delay_samples(fp, static_cast<int>(e));
          EXPECT_LE(std::abs(a[e] - exact_samples), 0.5 + 0.5 + 1e-6);
        }
      });
}

TEST(TableFreeEngine, SmallerDeltaGivesMoreSegments) {
  auto cfg = small_cfg();
  TableFreeConfig coarse, fine;
  coarse.delta = 0.5;
  fine.delta = 0.125;
  EXPECT_GT(TableFreeEngine(cfg, fine).pwl().segment_count(),
            TableFreeEngine(cfg, coarse).pwl().segment_count());
}

TEST(TableFreeEngine, TrackerStaysIncrementalInNappeOrder) {
  const auto cfg = small_cfg();
  TableFreeEngine engine(cfg);
  engine.begin_frame(Vec3{});
  const imaging::VolumeGrid grid(cfg.volume);
  std::vector<std::int32_t> out(64);
  imaging::for_each_focal_point(
      grid, imaging::ScanOrder::kNappeByNappe,
      [&](const imaging::FocalPoint& fp) { engine.compute(fp, out); });
  const auto stats = engine.tracker_stats();
  EXPECT_GT(stats.evaluations, 0);
  // In nappe order the argument changes slowly: steps per evaluation is a
  // few percent, and single evaluations never cross many segments.
  EXPECT_LT(stats.mean_steps_per_evaluation(), 0.2);
  EXPECT_LE(stats.max_steps_single_evaluation, 4);
}

TEST(TableFreeEngine, ScanlineOrderCausesLargeJumps) {
  const auto cfg = small_cfg();
  TableFreeEngine nappe(cfg), scanline(cfg);
  std::vector<std::int32_t> out(64);
  const imaging::VolumeGrid grid(cfg.volume);

  nappe.begin_frame(Vec3{});
  imaging::for_each_focal_point(
      grid, imaging::ScanOrder::kNappeByNappe,
      [&](const imaging::FocalPoint& fp) { nappe.compute(fp, out); });
  scanline.begin_frame(Vec3{});
  imaging::for_each_focal_point(
      grid, imaging::ScanOrder::kScanlineByScanline,
      [&](const imaging::FocalPoint& fp) { scanline.compute(fp, out); });

  // The depth reset at each new scanline sweeps the tracker across many
  // segments at once (Sec. II-A: "inefficiencies could arise if paired
  // with a scanline-by-scanline beamformer").
  EXPECT_GT(scanline.tracker_stats().max_steps_single_evaluation,
            nappe.tracker_stats().max_steps_single_evaluation);
  EXPECT_GT(scanline.tracker_stats().total_steps,
            nappe.tracker_stats().total_steps);
}

TEST(TableFreeEngine, ResetTrackerStatsClearsCounters) {
  const auto cfg = small_cfg();
  TableFreeEngine engine(cfg);
  engine.begin_frame(Vec3{});
  const imaging::VolumeGrid grid(cfg.volume);
  std::vector<std::int32_t> out(64);
  engine.compute(grid.focal_point(0, 0, 0), out);
  engine.compute(grid.focal_point(0, 0, 59), out);
  engine.reset_tracker_stats();
  const auto stats = engine.tracker_stats();
  EXPECT_EQ(stats.evaluations, 0);
  EXPECT_EQ(stats.total_steps, 0);
}

TEST(TableFreeEngine, BeginFrameReseeksWithoutCharge) {
  const auto cfg = small_cfg();
  TableFreeEngine engine(cfg);
  const imaging::VolumeGrid grid(cfg.volume);
  std::vector<std::int32_t> out(64);
  engine.begin_frame(Vec3{});
  engine.compute(grid.focal_point(0, 0, 59), out);  // deep point
  engine.reset_tracker_stats();
  engine.begin_frame(Vec3{});
  engine.compute(grid.focal_point(0, 0, 0), out);   // shallow point
  // The frame-start seek must not be charged as stall steps.
  EXPECT_EQ(engine.tracker_stats().total_steps, 0);
}

TEST(TableFreeEngine, RejectsWrongSpan) {
  TableFreeEngine engine(small_cfg());
  engine.begin_frame(Vec3{});
  const imaging::VolumeGrid grid(small_cfg().volume);
  std::vector<std::int32_t> wrong(3);
  EXPECT_THROW(engine.compute(grid.focal_point(0, 0, 0), wrong),
               ContractViolation);
}

}  // namespace
}  // namespace us3d::delay
