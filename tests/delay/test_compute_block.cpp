// Property tests of the batched delay API: for every engine, sweeping a
// frame block-by-block through the native compute_block() must reproduce
// the per-point oracle (compute_block_reference, a loop over compute())
// bit-for-bit — for random origins, random subranges, random block sizes,
// engines cloned mid-frame, and sweeps that interleave the per-point and
// block forms. This is the same invariant PR 1 pinned for parallel vs
// serial, one layer down.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/prng.h"
#include "delay/exact.h"
#include "delay/full_table.h"
#include "delay/synthetic_aperture.h"
#include "delay/tablefree.h"
#include "delay/tablesteer.h"
#include "imaging/scan_order.h"
#include "imaging/system_config.h"

namespace us3d::delay {
namespace {

imaging::SystemConfig cfg() { return imaging::scaled_system(6, 7, 24); }

struct EngineCase {
  std::string label;
  std::function<std::unique_ptr<DelayEngine>()> make;
  bool any_origin = false;  // accepts off-centre transmit origins
};

std::vector<EngineCase> all_engines() {
  return {
      {"EXACT", [] { return std::make_unique<ExactDelayEngine>(cfg()); },
       /*any_origin=*/true},
      {"TABLEFREE", [] { return std::make_unique<TableFreeEngine>(cfg()); },
       /*any_origin=*/true},
      {"TABLESTEER-18b",
       [] {
         return std::make_unique<TableSteerEngine>(cfg(),
                                                   TableSteerConfig::bits18());
       }},
      {"FULLTABLE", [] { return std::make_unique<FullTableEngine>(cfg()); }},
      {"TABLESTEER-SA",
       [] {
         return std::make_unique<SyntheticApertureSteerEngine>(
             cfg(), diverging_wave_plan(3, 4.0e-3));
       }},
  };
}

void expect_planes_equal(const DelayPlane& a, const DelayPlane& b,
                         const std::string& label, int block_index) {
  ASSERT_EQ(a.element_count(), b.element_count());
  ASSERT_EQ(a.point_count(), b.point_count());
  for (int e = 0; e < a.element_count(); ++e) {
    const auto ra = a.row(e);
    const auto rb = b.row(e);
    for (int p = 0; p < a.point_count(); ++p) {
      ASSERT_EQ(ra[static_cast<std::size_t>(p)], rb[static_cast<std::size_t>(p)])
          << label << " block " << block_index << " element " << e
          << " point " << p;
    }
  }
}

/// Runs native vs oracle over `range` with both sides starting a fresh
/// frame at `origin`; the oracle runs on an independent clone so stateful
/// engines do not share tracker state between the two sweeps.
void check_block_matches_oracle(DelayEngine& engine, const Vec3& origin,
                                imaging::ScanOrder order,
                                const imaging::ScanRange& range,
                                int max_points, const std::string& label) {
  const imaging::VolumeGrid grid(cfg().volume);
  auto oracle = engine.clone();
  engine.begin_frame(origin);
  oracle->begin_frame(origin);
  DelayPlane native_plane, oracle_plane;
  int block_index = 0;
  imaging::for_each_focal_block(
      grid, order, range, max_points, [&](const imaging::FocalBlock& block) {
        engine.compute_block(block, native_plane);
        oracle->compute_block_reference(block, oracle_plane);
        expect_planes_equal(native_plane, oracle_plane, label, block_index);
        ++block_index;
      });
  EXPECT_GT(block_index, 1) << label;
}

TEST(ComputeBlock, MatchesOracleForEveryEngineAndOrder) {
  for (const EngineCase& c : all_engines()) {
    for (const imaging::ScanOrder order :
         {imaging::ScanOrder::kNappeByNappe,
          imaging::ScanOrder::kScanlineByScanline}) {
      auto engine = c.make();
      check_block_matches_oracle(
          *engine, Vec3{}, order,
          imaging::full_scan_range(cfg().volume, order), 17,
          c.label + "/" + imaging::to_string(order));
    }
  }
}

TEST(ComputeBlock, MatchesOracleForRandomRangesOriginsAndBlockSizes) {
  SplitMix64 prng(0x5eedb10cull);
  for (const EngineCase& c : all_engines()) {
    auto engine = c.make();
    for (int trial = 0; trial < 4; ++trial) {
      const imaging::ScanOrder order =
          prng.next_below(2) == 0 ? imaging::ScanOrder::kNappeByNappe
                                  : imaging::ScanOrder::kScanlineByScanline;
      const int extent = imaging::outer_extent(cfg().volume, order);
      const int begin = static_cast<int>(
          prng.next_below(static_cast<std::uint64_t>(extent)));
      const int end =
          begin + 1 +
          static_cast<int>(prng.next_below(
              static_cast<std::uint64_t>(extent - begin)));
      const int max_points = 1 + static_cast<int>(prng.next_below(97));
      Vec3 origin{};
      if (c.any_origin) {
        origin = Vec3{prng.next_in(-1e-3, 1e-3), prng.next_in(-1e-3, 1e-3),
                      prng.next_in(-2e-3, 0.0)};
      }
      check_block_matches_oracle(*engine, origin, order,
                                 imaging::ScanRange{begin, end}, max_points,
                                 c.label + " trial " +
                                     std::to_string(trial));
    }
  }
}

TEST(ComputeBlock, CloneMidFrameMatchesOracle) {
  // Drive the prototype deep into a frame, then clone it: the clone must
  // produce oracle-exact blocks for a frame of its own, unperturbed by the
  // prototype's mid-frame state (this is what the runtime leans on when it
  // clones a prototype that has already been used).
  const imaging::VolumeGrid grid(cfg().volume);
  const imaging::ScanOrder order = imaging::ScanOrder::kNappeByNappe;
  for (const EngineCase& c : all_engines()) {
    auto prototype = c.make();
    prototype->begin_frame(Vec3{});
    DelayPlane plane;
    int fed = 0;
    imaging::for_each_focal_block(
        grid, order, imaging::ScanRange{0, 9}, 13,
        [&](const imaging::FocalBlock& block) {
          prototype->compute_block(block, plane);
          ++fed;
        });
    ASSERT_GT(fed, 0);
    auto clone = prototype->clone();
    check_block_matches_oracle(*clone, Vec3{}, order,
                               imaging::full_scan_range(cfg().volume, order),
                               19, c.label + " (mid-frame clone)");
  }
}

TEST(ComputeBlock, PerPointAndBlockFormsInterleaveWithinAFrame) {
  // The block contract says compute() and compute_block() may be mixed in
  // one frame sweep. Alternate forms per block on one engine and compare
  // against an all-blocks oracle on a clone — exercises TABLEFREE's shared
  // tracker state across the two entry points.
  const imaging::VolumeGrid grid(cfg().volume);
  const imaging::ScanOrder order = imaging::ScanOrder::kNappeByNappe;
  for (const EngineCase& c : all_engines()) {
    auto engine = c.make();
    auto oracle = engine->clone();
    engine->begin_frame(Vec3{});
    oracle->begin_frame(Vec3{});
    DelayPlane native_plane, oracle_plane;
    std::vector<std::int32_t> row(
        static_cast<std::size_t>(engine->element_count()));
    int block_index = 0;
    imaging::for_each_focal_block(
        grid, order, imaging::full_scan_range(cfg().volume, order), 11,
        [&](const imaging::FocalBlock& block) {
          oracle->compute_block_reference(block, oracle_plane);
          if (block_index % 2 == 0) {
            engine->compute_block(block, native_plane);
            expect_planes_equal(native_plane, oracle_plane, c.label,
                                block_index);
          } else {
            for (int p = 0; p < block.size(); ++p) {
              engine->compute(block[p], row);
              for (int e = 0; e < engine->element_count(); ++e) {
                ASSERT_EQ(row[static_cast<std::size_t>(e)],
                          oracle_plane.at(e, p))
                    << c.label << " block " << block_index << " point " << p;
              }
            }
          }
          ++block_index;
        });
  }
}

TEST(ComputeBlock, TableFreeTrackerChargesIdenticalStepsOnBothPaths) {
  // The block path reorders evaluations (element-outer) but every tracker
  // sees the same argument sequence, so the stall accounting — not just
  // the delay values — must be unchanged.
  const imaging::VolumeGrid grid(cfg().volume);
  TableFreeEngine block_engine(cfg());
  TableFreeEngine point_engine(cfg());
  block_engine.begin_frame(Vec3{});
  point_engine.begin_frame(Vec3{});
  DelayPlane plane;
  std::vector<std::int32_t> row(
      static_cast<std::size_t>(point_engine.element_count()));
  const auto order = imaging::ScanOrder::kNappeByNappe;
  imaging::for_each_focal_block(
      grid, order, imaging::full_scan_range(cfg().volume, order), 23,
      [&](const imaging::FocalBlock& block) {
        block_engine.compute_block(block, plane);
        for (int p = 0; p < block.size(); ++p) point_engine.compute(block[p], row);
      });
  const auto a = block_engine.tracker_stats();
  const auto b = point_engine.tracker_stats();
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.total_steps, b.total_steps);
  EXPECT_EQ(a.max_steps_single_evaluation, b.max_steps_single_evaluation);
}

TEST(ComputeBlock, SyntheticApertureMatchesOracleForEveryPlannedOrigin) {
  const SyntheticAperturePlan plan = diverging_wave_plan(3, 4.0e-3);
  SyntheticApertureSteerEngine engine(cfg(), plan);
  const auto order = imaging::ScanOrder::kNappeByNappe;
  for (const double z : plan.origin_z) {
    check_block_matches_oracle(engine, Vec3{0.0, 0.0, z}, order,
                               imaging::full_scan_range(cfg().volume, order),
                               29, "TABLESTEER-SA z=" + std::to_string(z));
  }
}

TEST(ComputeBlock, RequiresABegunFrame) {
  ExactDelayEngine engine(cfg());
  const imaging::VolumeGrid grid(cfg().volume);
  DelayPlane plane;
  std::vector<imaging::FocalPoint> pts{grid.focal_point(0, 0, 0)};
  imaging::FocalBlock block{std::span<const imaging::FocalPoint>(pts), true};
  EXPECT_THROW(engine.compute_block(block, plane), ContractViolation);
  EXPECT_THROW(engine.compute_block_reference(block, plane),
               ContractViolation);
  engine.begin_frame(Vec3{});
  EXPECT_NO_THROW(engine.compute_block(block, plane));
}

TEST(ComputeBlock, SinglePointBlockEqualsCompute) {
  const imaging::VolumeGrid grid(cfg().volume);
  for (const EngineCase& c : all_engines()) {
    auto engine = c.make();
    engine->begin_frame(Vec3{});
    std::vector<std::int32_t> row(
        static_cast<std::size_t>(engine->element_count()));
    std::vector<imaging::FocalPoint> pts{grid.focal_point(2, 3, 5)};
    imaging::FocalBlock block{std::span<const imaging::FocalPoint>(pts), true};
    DelayPlane plane;
    engine->compute_block(block, plane);
    ASSERT_EQ(plane.point_count(), 1);
    engine->compute(pts.front(), row);
    for (int e = 0; e < engine->element_count(); ++e) {
      EXPECT_EQ(plane.at(e, 0), row[static_cast<std::size_t>(e)]) << c.label;
    }
  }
}

}  // namespace
}  // namespace us3d::delay
