#include "delay/synthetic_aperture.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/contracts.h"
#include "delay/exact.h"
#include "delay/table_sizing.h"
#include "delay/tablefree.h"
#include "imaging/scan_order.h"
#include "imaging/volume.h"

namespace us3d::delay {
namespace {

imaging::SystemConfig small_cfg() { return imaging::scaled_system(8, 12, 60); }

TEST(DivergingWavePlan, SpansRequestedRange) {
  const auto plan = diverging_wave_plan(5, 10.0e-3);
  ASSERT_EQ(plan.origin_count(), 5);
  EXPECT_DOUBLE_EQ(plan.origin_z[0], 0.0);
  EXPECT_DOUBLE_EQ(plan.origin_z[4], -10.0e-3);
  for (std::size_t i = 1; i < plan.origin_z.size(); ++i) {
    EXPECT_LT(plan.origin_z[i], plan.origin_z[i - 1]);
  }
}

TEST(DivergingWavePlan, SingleOriginIsCentred) {
  const auto plan = diverging_wave_plan(1, 10.0e-3);
  ASSERT_EQ(plan.origin_count(), 1);
  EXPECT_DOUBLE_EQ(plan.origin_z[0], 0.0);
}

TEST(MultiOriginRepository, StorageScalesWithOrigins) {
  const auto cfg = small_cfg();
  const MultiOriginTableRepository one(cfg, diverging_wave_plan(1, 5e-3));
  const MultiOriginTableRepository four(cfg, diverging_wave_plan(4, 5e-3));
  EXPECT_DOUBLE_EQ(four.total_storage_bits(), 4.0 * one.total_storage_bits());
  // Each table is the folded single-origin size.
  EXPECT_DOUBLE_EQ(one.total_storage_bits(),
                   reference_table_sizing(cfg, fx::kRefDelay18).folded_bits);
}

TEST(MultiOriginRepository, BandwidthUnchangedVsSingleOrigin) {
  // One table streams per insonification no matter how many origins the
  // repository holds.
  const auto cfg = small_cfg();
  const MultiOriginTableRepository repo(cfg, diverging_wave_plan(8, 5e-3));
  const auto single = streaming_sizing(cfg, fx::kRefDelay18,
                                       fx::kCorrection18, 128, 1024);
  EXPECT_DOUBLE_EQ(repo.dram_bandwidth_bytes_per_second(),
                   single.bandwidth_bytes_per_second);
}

TEST(MultiOriginRepository, TablesDifferByTransmitPath) {
  const auto cfg = small_cfg();
  const MultiOriginTableRepository repo(cfg, diverging_wave_plan(2, 5e-3));
  // A virtual source 5 mm behind the probe lengthens the transmit path by
  // ~5 mm at every depth: entries shift up by ~c/fs * 5 mm ~ 104 samples.
  const double d0 = repo.table(0).entry_real(4, 4, 30);
  const double d1 = repo.table(1).entry_real(4, 4, 30);
  EXPECT_GT(d1, d0 + 90.0);
  EXPECT_LT(d1, d0 + 115.0);
}

TEST(MultiOriginRepository, RejectsOriginInFrontOfProbe) {
  SyntheticAperturePlan bad;
  bad.origin_z = {1.0e-3};  // in front of the probe plane
  EXPECT_THROW(MultiOriginTableRepository(small_cfg(), bad),
               ContractViolation);
}

TEST(SyntheticApertureEngine, MatchesTableSteerForCentredOrigin) {
  const auto cfg = small_cfg();
  SyntheticApertureSteerEngine sa(cfg, diverging_wave_plan(3, 4e-3));
  TableSteerEngine plain(cfg);
  sa.begin_frame(Vec3{});  // origin 0 = centred
  plain.begin_frame(Vec3{});
  const imaging::VolumeGrid grid(cfg.volume);
  std::vector<std::int32_t> a(64), b(64);
  for (const int k : {0, 20, 59}) {
    const auto fp = grid.focal_point(3, 9, k);
    sa.compute(fp, a);
    plain.compute(fp, b);
    EXPECT_EQ(a, b) << "depth " << k;
  }
}

TEST(SyntheticApertureEngine, SelectsTableByOrigin) {
  const auto cfg = small_cfg();
  const auto plan = diverging_wave_plan(3, 4e-3);
  SyntheticApertureSteerEngine engine(cfg, plan);
  engine.begin_frame(Vec3{0.0, 0.0, plan.origin_z[2]});
  EXPECT_EQ(engine.active_origin(), 2);
  engine.begin_frame(Vec3{});
  EXPECT_EQ(engine.active_origin(), 0);
}

TEST(SyntheticApertureEngine, CloneSharesEveryOriginTable) {
  // clone() copies the repository *handle*: every origin's immutable table
  // is shared by address, so N workers x K origins cost one table set.
  const auto cfg = small_cfg();
  const auto plan = diverging_wave_plan(3, 4e-3);
  SyntheticApertureSteerEngine engine(cfg, plan);
  const auto clone = engine.clone();
  auto* sa_clone = dynamic_cast<SyntheticApertureSteerEngine*>(clone.get());
  ASSERT_NE(sa_clone, nullptr);
  ASSERT_EQ(sa_clone->repository().origin_count(),
            engine.repository().origin_count());
  for (int i = 0; i < plan.origin_count(); ++i) {
    EXPECT_EQ(&sa_clone->repository().table(i), &engine.repository().table(i))
        << "origin " << i;
  }
  // Storage accounting still reports the full logical repository.
  EXPECT_DOUBLE_EQ(sa_clone->repository().total_storage_bits(),
                   engine.repository().total_storage_bits());
}

TEST(SyntheticApertureEngine, RejectsUnknownOrigin) {
  const auto cfg = small_cfg();
  SyntheticApertureSteerEngine engine(cfg, diverging_wave_plan(3, 4e-3));
  EXPECT_THROW(engine.begin_frame(Vec3{0.0, 0.0, -1.23e-3}),
               ContractViolation);
  EXPECT_THROW(engine.begin_frame(Vec3{1e-3, 0.0, 0.0}), ContractViolation);
}

TEST(SyntheticApertureEngine, SelectsNearestTableForRoundTrippedOrigins) {
  // Bugfix regression: the old matcher demanded |z - plan z| < 1e-12
  // absolutely, so an origin that round-tripped through storage or
  // arithmetic (a few ulps, or a femtometre of drift) was rejected. The
  // matcher now picks the nearest plan origin within a tolerance scaled
  // to the plan extent.
  const auto cfg = small_cfg();
  const auto plan = diverging_wave_plan(4, 6e-3);
  SyntheticApertureSteerEngine engine(cfg, plan);
  for (int i = 0; i < plan.origin_count(); ++i) {
    const double z = plan.origin_z[static_cast<std::size_t>(i)];
    for (const double drifted :
         {z * (1.0 + 4.0e-16), z - 1.0e-12, z + 1.0e-12, z - 5.0e-10}) {
      engine.begin_frame(Vec3{1.0e-12, -1.0e-12, drifted});
      EXPECT_EQ(engine.active_origin(), i)
          << "origin " << i << " drifted to " << drifted;
    }
  }
  // A genuinely off-plan origin (between two entries) still throws — the
  // tolerance is nanometres against millimetre origin spacing.
  const double midpoint = 0.5 * (plan.origin_z[0] + plan.origin_z[1]);
  EXPECT_THROW(engine.begin_frame(Vec3{0.0, 0.0, midpoint}),
               ContractViolation);
}

TEST(SyntheticApertureEngine, PerturbedOriginComputesIdenticalDelays) {
  // Nearest-table selection means a drifted origin produces exactly the
  // delays of its plan origin — replaying a stored acquisition is
  // bit-stable.
  const auto cfg = small_cfg();
  const auto plan = diverging_wave_plan(3, 4e-3);
  const imaging::VolumeGrid grid(cfg.volume);
  SyntheticApertureSteerEngine exact_engine(cfg, plan);
  SyntheticApertureSteerEngine drifted_engine(cfg, plan);
  const int elements = exact_engine.element_count();
  std::vector<std::int32_t> expected(static_cast<std::size_t>(elements));
  std::vector<std::int32_t> actual(static_cast<std::size_t>(elements));
  const double z = plan.origin_z[1];
  exact_engine.begin_frame(Vec3{0.0, 0.0, z});
  drifted_engine.begin_frame(Vec3{0.0, 0.0, z * (1.0 - 3.0e-16) + 1.0e-12});
  ASSERT_EQ(drifted_engine.active_origin(), exact_engine.active_origin());
  for (const auto [it, ip, id] :
       {std::array{0, 0, 0}, std::array{3, 5, 20}, std::array{7, 11, 59}}) {
    const imaging::FocalPoint fp = grid.focal_point(it, ip, id);
    exact_engine.compute(fp, expected);
    drifted_engine.compute(fp, actual);
    for (int e = 0; e < elements; ++e) {
      ASSERT_EQ(expected[static_cast<std::size_t>(e)],
                actual[static_cast<std::size_t>(e)])
          << "element " << e;
    }
  }
}

TEST(SyntheticApertureEngine, AccurateForDisplacedOriginAtDepth) {
  // With the matching displaced-origin exact reference, the deep on-axis
  // points must agree to within a couple of samples (the transmit-side
  // angular error is second order and small at moderate steering).
  const auto cfg = small_cfg();
  const auto plan = diverging_wave_plan(2, 3.0e-3);
  SyntheticApertureSteerEngine engine(cfg, plan);
  ExactDelayEngine exact(cfg);
  const Vec3 origin{0.0, 0.0, plan.origin_z[1]};
  engine.begin_frame(origin);
  exact.begin_frame(origin);
  const imaging::VolumeGrid grid(cfg.volume);
  std::vector<std::int32_t> a(64), b(64);
  const auto fp = grid.focal_point(6, 6, 55);  // near axis, deep
  engine.compute(fp, a);
  exact.compute(fp, b);
  for (std::size_t e = 0; e < 64; ++e) {
    EXPECT_LE(std::abs(a[e] - b[e]), 2) << "element " << e;
  }
}

TEST(TableFreeSyntheticAperture, DisplacedOriginNeedsNoExtraStorage) {
  // TABLEFREE computes the transmit path on the fly, so any origin works
  // with the same hardware and the same accuracy — the paper's "more
  // flexible in view of advanced imaging modes" advantage (Sec. VI-B).
  const auto cfg = small_cfg();
  TableFreeConfig tf;
  tf.max_origin_backoff_m = 8.0e-3;  // widen the sqrt domain for the source
  TableFreeEngine engine(cfg, tf);
  ExactDelayEngine exact(cfg);
  const imaging::VolumeGrid grid(cfg.volume);
  std::vector<std::int32_t> a(64), b(64);
  for (const double z_behind : {0.0, 3.0e-3, 8.0e-3}) {
    const Vec3 origin{0.0, 0.0, -z_behind};
    engine.begin_frame(origin);
    exact.begin_frame(origin);
    for (const int k : {5, 30, 59}) {
      const auto fp = grid.focal_point(2, 9, k);
      engine.compute(fp, a);
      exact.compute(fp, b);
      for (std::size_t e = 0; e < 64; ++e) {
        EXPECT_LE(std::abs(a[e] - b[e]), 2)
            << "origin z " << -z_behind << " depth " << k;
      }
    }
  }
}

TEST(SyntheticApertureEngine, TransmitErrorGrowsWithDisplacement) {
  // The diverging-wave approximation |S-O| ~ |R-O| degrades as the source
  // moves back and the point steers away: mean error must grow with |z0|.
  const auto cfg = small_cfg();
  const imaging::VolumeGrid grid(cfg.volume);
  auto mean_error_for = [&](double z_behind) {
    const SyntheticAperturePlan plan{{-z_behind}};
    SyntheticApertureSteerEngine engine(cfg, plan);
    ExactDelayEngine exact(cfg);
    const Vec3 origin{0.0, 0.0, -z_behind};
    engine.begin_frame(origin);
    exact.begin_frame(origin);
    std::vector<std::int32_t> a(64), b(64);
    double sum = 0.0;
    std::int64_t n = 0;
    for (int it = 0; it < cfg.volume.n_theta; it += 3) {
      for (int k = 10; k < cfg.volume.n_depth; k += 10) {
        const auto fp = grid.focal_point(it, it, k);
        engine.compute(fp, a);
        exact.compute(fp, b);
        for (std::size_t e = 0; e < 64; ++e) {
          sum += std::abs(a[e] - b[e]);
          ++n;
        }
      }
    }
    return sum / static_cast<double>(n);
  };
  const double at_zero = mean_error_for(0.0);
  const double at_far = mean_error_for(6.0e-3);
  EXPECT_GT(at_far, at_zero);
}

}  // namespace
}  // namespace us3d::delay
