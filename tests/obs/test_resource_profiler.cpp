// Resource-profiler contracts: registered threads aggregate under their
// stage label (first registration wins, once per thread), sample_once()
// publishes the documented gauge families into the given registry, the
// summary JSON round-trips through the strict reader, and the sampler
// thread starts/stops cleanly. CPU and RSS numbers are
// platform-dependent, so the assertions are structural (gauges exist,
// values are sane) rather than exact.
#include "obs/resource_profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "common/json_reader.h"
#include "obs/metrics.h"

namespace us3d::obs {
namespace {

const StageProfile* find_stage(const ResourceProfile& profile,
                               const std::string& stage) {
  for (const StageProfile& s : profile.stages) {
    if (s.stage == stage) return &s;
  }
  return nullptr;
}

/// Spawns a thread registered under `stage` and returns once the
/// registration is visible (registration is once-per-thread, so each
/// test that needs a fresh stage needs a fresh thread). The thread burns
/// CPU until `stop` is set so the stage has non-zero cumulative time.
std::thread stage_thread(const std::string& stage, std::atomic<bool>& stop) {
  std::atomic<bool> registered{false};
  std::thread t([stage, &registered, &stop] {
    ResourceProfiler::global().register_current_thread(stage);
    registered.store(true, std::memory_order_release);
    volatile double sink = 0;
    while (!stop.load(std::memory_order_acquire)) sink = sink + 1.0;
  });
  while (!registered.load(std::memory_order_acquire)) std::this_thread::yield();
  return t;
}

TEST(ResourceProfiler, RegisteredThreadsAggregateByStage) {
  ResourceProfiler& profiler = ResourceProfiler::global();
  profiler.register_current_thread("test_main");
  profiler.register_current_thread("renamed");  // first registration wins

  std::atomic<bool> stop{false};
  std::thread worker = stage_thread("test_worker", stop);

  MetricsRegistry reg;
  profiler.sample_once(reg);
  const ResourceProfile profile = profiler.summary();
  stop.store(true, std::memory_order_release);
  worker.join();

  const StageProfile* main_stage = find_stage(profile, "test_main");
  ASSERT_NE(main_stage, nullptr);
  EXPECT_GE(main_stage->threads, 1);
  EXPECT_EQ(find_stage(profile, "renamed"), nullptr);
  ASSERT_NE(find_stage(profile, "test_worker"), nullptr);
#ifdef __linux__
  EXPECT_GT(profile.rss_bytes, 0);
  EXPECT_GE(profile.rss_bytes_peak, profile.rss_bytes);
  EXPECT_GE(profile.vm_bytes, profile.rss_bytes);
#endif
}

TEST(ResourceProfiler, SampleOncePublishesTheDocumentedGauges) {
  ResourceProfiler& profiler = ResourceProfiler::global();
  std::atomic<bool> stop{false};
  std::thread worker = stage_thread("test_gauges", stop);

  MetricsRegistry reg;
  profiler.sample_once(reg);
  stop.store(true, std::memory_order_release);
  worker.join();

  const auto threads = reg.find_gauge("profile.test_gauges.threads");
  ASSERT_NE(threads, nullptr);
  EXPECT_GE(threads->value(), 1);
  ASSERT_NE(reg.find_gauge("profile.test_gauges.cpu_permille"), nullptr);
#ifdef __linux__
  const auto rss = reg.find_gauge("profile.rss_bytes");
  ASSERT_NE(rss, nullptr);
  EXPECT_GT(rss->value(), 0);
  ASSERT_NE(reg.find_gauge("profile.vm_bytes"), nullptr);
#endif
}

TEST(ResourceProfiler, SummaryJsonRoundTripsThroughTheStrictReader) {
  ResourceProfiler& profiler = ResourceProfiler::global();
  std::atomic<bool> stop{false};
  std::thread worker = stage_thread("test_json", stop);
  MetricsRegistry reg;
  profiler.sample_once(reg);
  stop.store(true, std::memory_order_release);
  worker.join();

  const JsonValue v = parse_json(profiler.summary().to_json());
  EXPECT_NE(v.find("rss_bytes"), nullptr);
  EXPECT_NE(v.find("vm_bytes"), nullptr);
  EXPECT_NE(v.find("samples"), nullptr);
  ASSERT_NE(v.find("stages"), nullptr);
  bool saw = false;
  for (const auto& [stage, body] : v.at("stages").members()) {
    if (stage == "test_json") {
      saw = true;
      EXPECT_GE(body.at("threads").as_int(), 1);
      EXPECT_NE(body.find("cpu_permille"), nullptr);
      EXPECT_NE(body.find("cpu_seconds"), nullptr);
    }
  }
  EXPECT_TRUE(saw);
}

TEST(ResourceProfiler, SamplerThreadStartsAndStops) {
  ResourceProfiler& profiler = ResourceProfiler::global();
  MetricsRegistry reg;

  EXPECT_FALSE(profiler.running());
  profiler.start(reg, std::chrono::milliseconds(1));
  EXPECT_TRUE(profiler.running());
  profiler.start(reg, std::chrono::milliseconds(1));  // no-op when running
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  profiler.stop();
  EXPECT_FALSE(profiler.running());
  profiler.stop();  // no-op when stopped

  // The sampler actually ticked while it was up.
  EXPECT_GT(profiler.summary().samples, 0u);
  // Restartable after stop().
  profiler.start(reg, std::chrono::milliseconds(1));
  EXPECT_TRUE(profiler.running());
  profiler.stop();
}

}  // namespace
}  // namespace us3d::obs
