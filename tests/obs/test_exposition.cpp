// Prometheus exposition contracts: name sanitization and label escaping
// follow text format 0.0.4, the rendered block per family is golden
// (TYPE line, `_total` counters, cumulative `le` buckets ending in +Inf,
// `_sum`/`_count`), and — the lifecycle rule the header promises —
// series unlisted via remove_prefix() never reappear in a later render.
#include "obs/exposition.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace us3d::obs {
namespace {

TEST(PrometheusName, SanitizesCharsetAndGuardsLeadingDigit) {
  EXPECT_EQ(prometheus_name("service.latency_s.interactive"),
            "service_latency_s_interactive");
  EXPECT_EQ(prometheus_name("profile.rss_bytes"), "profile_rss_bytes");
  EXPECT_EQ(prometheus_name("has:colon"), "has:colon");  // colons are legal
  EXPECT_EQ(prometheus_name("weird-name with spaces!"),
            "weird_name_with_spaces_");
  EXPECT_EQ(prometheus_name("9starts.with.digit"), "_9starts_with_digit");
  EXPECT_EQ(prometheus_name(""), "_");
}

TEST(PrometheusLabelEscape, EscapesBackslashQuoteAndNewline) {
  EXPECT_EQ(prometheus_label_escape("plain"), "plain");
  EXPECT_EQ(prometheus_label_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_label_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(prometheus_label_escape("line\nbreak"), "line\\nbreak");
}

TEST(RenderPrometheus, CountersAndGaugesRenderGoldenLines) {
  MetricsRegistry reg;
  reg.counter("svc.frames")->increment(42);
  reg.gauge("svc.depth")->set(-3);

  const std::string text = render_prometheus(reg);
  EXPECT_NE(text.find("# TYPE svc_frames_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("svc_frames_total{us3d_name=\"svc.frames\"} 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE svc_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("svc_depth{us3d_name=\"svc.depth\"} -3\n"),
            std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(RenderPrometheus, HistogramBucketsAreCumulativeWithInf) {
  MetricsRegistry reg;
  const auto h = reg.histogram("lat", std::vector<double>{0.5, 1.0});
  // Binary-exact values so the rendered sum is a stable string.
  h->observe(0.25);  // bucket 0
  h->observe(0.25);  // bucket 0
  h->observe(0.75);  // bucket 1
  h->observe(99.0);  // overflow

  const std::string text = render_prometheus(reg);
  EXPECT_NE(text.find("# TYPE lat histogram\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{us3d_name=\"lat\",le=\"0.5\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_bucket{us3d_name=\"lat\",le=\"1\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_bucket{us3d_name=\"lat\",le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_count{us3d_name=\"lat\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("lat_sum{us3d_name=\"lat\"} 100.25\n"),
            std::string::npos);
}

TEST(RenderPrometheus, DotPathSurvivesInTheNameLabel) {
  MetricsRegistry reg;
  reg.counter("a.b_c")->increment();
  reg.counter("a_b.c")->increment();  // sanitizes to the same prom name
  const std::string text = render_prometheus(reg);
  // Both families collide on `a_b_c_total`, but the us3d_name label keeps
  // them distinguishable.
  EXPECT_NE(text.find("a_b_c_total{us3d_name=\"a.b_c\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("a_b_c_total{us3d_name=\"a_b.c\"} 1\n"),
            std::string::npos);
}

TEST(RenderPrometheus, RemovedSeriesNeverReappear) {
  MetricsRegistry reg;
  reg.counter("service.total")->increment(5);
  // Session-scoped family, still referenced by a live holder after close
  // (the service keeps shared_ptrs to nodes it already resolved).
  const auto held = reg.gauge("service.s7.depth");
  held->set(4);
  reg.gauge("service.s7.ring")->set(2);

  std::string text = render_prometheus(reg);
  EXPECT_NE(text.find("service_s7_depth"), std::string::npos);
  EXPECT_NE(text.find("service_s7_ring"), std::string::npos);

  EXPECT_EQ(reg.remove_prefix("service.s7."), 2u);
  // The holder still works — but the series is gone from every later
  // exposition, even if the holder keeps writing.
  held->set(99);
  text = render_prometheus(reg);
  EXPECT_EQ(text.find("service_s7_depth"), std::string::npos);
  EXPECT_EQ(text.find("service_s7_ring"), std::string::npos);
  EXPECT_NE(text.find("service_total_total{us3d_name=\"service.total\"} 5\n"),
            std::string::npos);
}

TEST(RenderPrometheus, EmptySnapshotRendersEmptyString) {
  MetricsRegistry reg;
  EXPECT_EQ(render_prometheus(reg), "");
}

}  // namespace
}  // namespace us3d::obs
