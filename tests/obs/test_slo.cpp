// SLO watchdog contracts: evaluation is windowed (deltas since the last
// pass, so a service that stops misbehaving actually recovers), breach
// entry and recovery both require a streak (hysteresis), the callback
// fires on edges only, the per-target breach counter / in-breach gauge
// track the state machine, and a window below min_count is "no data" —
// healthy, never accusing. All tests drive evaluate_once() directly on a
// local registry for determinism.
#include "obs/slo.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace us3d::obs {
namespace {

SloTarget quantile_target(double threshold, std::int64_t min_count = 1) {
  SloTarget t;
  t.name = "lat_p99";
  t.kind = SloTarget::Kind::kQuantileMax;
  t.metric = "svc.latency_s";
  t.quantile = 0.99;
  t.threshold = threshold;
  t.min_count = min_count;
  return t;
}

TEST(SloWatchdog, BreachNeedsConsecutiveBadWindows) {
  MetricsRegistry reg;
  const auto hist =
      reg.histogram("svc.latency_s", std::vector<double>{0.01, 0.1, 1.0});
  SloWatchdog::Options opts;
  opts.breach_after = 2;
  opts.recover_after = 2;
  SloWatchdog wd(reg, {quantile_target(0.05)}, opts);

  std::vector<SloBreach> edges;
  wd.set_breach_callback([&edges](const SloBreach& b) { edges.push_back(b); });

  // Window 1: slow observations -> bad, but one window is not a breach.
  hist->observe(0.5);
  hist->observe(0.5);
  auto evals = wd.evaluate_once();
  ASSERT_EQ(evals.size(), 1u);
  EXPECT_TRUE(evals[0].has_data);
  EXPECT_FALSE(evals[0].healthy);
  EXPECT_FALSE(evals[0].in_breach);
  EXPECT_TRUE(edges.empty());
  EXPECT_EQ(reg.find_gauge("slo.lat_p99.in_breach")->value(), 0);

  // Window 2: still slow -> the streak completes, breach edge fires once.
  hist->observe(0.5);
  evals = wd.evaluate_once();
  EXPECT_TRUE(evals[0].in_breach);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_TRUE(edges[0].entered);
  EXPECT_EQ(edges[0].target, "lat_p99");
  EXPECT_GT(edges[0].observed, 0.05);
  EXPECT_EQ(reg.find_counter("slo.lat_p99.breaches")->value(), 1);
  EXPECT_EQ(reg.find_gauge("slo.lat_p99.in_breach")->value(), 1);

  // Window 3: still bad. In breach already -> no second entry edge.
  hist->observe(0.5);
  wd.evaluate_once();
  EXPECT_EQ(edges.size(), 1u);
  EXPECT_EQ(reg.find_counter("slo.lat_p99.breaches")->value(), 1);
}

TEST(SloWatchdog, RecoveryIsWindowedAndNeedsAStreak) {
  MetricsRegistry reg;
  const auto hist =
      reg.histogram("svc.latency_s", std::vector<double>{0.01, 0.1, 1.0});
  SloWatchdog::Options opts;
  opts.breach_after = 1;
  opts.recover_after = 2;
  SloWatchdog wd(reg, {quantile_target(0.05)}, opts);
  std::vector<SloBreach> edges;
  wd.set_breach_callback([&edges](const SloBreach& b) { edges.push_back(b); });

  hist->observe(0.5);
  wd.evaluate_once();  // bad window -> immediate breach (breach_after=1)
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_TRUE(edges[0].entered);

  // Fast observations now. A *cumulative* evaluator would still see the
  // old 0.5 s sample in the p99 forever; the windowed one only judges the
  // new samples.
  hist->observe(0.001);
  hist->observe(0.001);
  auto evals = wd.evaluate_once();  // good window 1 of 2
  EXPECT_TRUE(evals[0].healthy);
  EXPECT_TRUE(evals[0].in_breach);  // hysteresis holds the state
  EXPECT_EQ(edges.size(), 1u);

  hist->observe(0.001);
  evals = wd.evaluate_once();  // good window 2 of 2 -> recovery edge
  EXPECT_FALSE(evals[0].in_breach);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_FALSE(edges[1].entered);
  EXPECT_EQ(reg.find_gauge("slo.lat_p99.in_breach")->value(), 0);
  // Entries counted once; recovery is not an entry.
  EXPECT_EQ(reg.find_counter("slo.lat_p99.breaches")->value(), 1);
}

TEST(SloWatchdog, EmptyWindowIsNoDataAndAdvancesRecovery) {
  MetricsRegistry reg;
  const auto hist =
      reg.histogram("svc.latency_s", std::vector<double>{0.01, 0.1, 1.0});
  SloWatchdog::Options opts;
  opts.breach_after = 1;
  opts.recover_after = 2;
  SloWatchdog wd(reg, {quantile_target(0.05)}, opts);

  hist->observe(0.5);
  wd.evaluate_once();  // breach
  // Two silent windows: nothing observed at all. Silence is not evidence
  // of misbehavior -> the breach ends.
  auto evals = wd.evaluate_once();
  EXPECT_FALSE(evals[0].has_data);
  EXPECT_TRUE(evals[0].healthy);
  evals = wd.evaluate_once();
  EXPECT_FALSE(evals[0].in_breach);
}

TEST(SloWatchdog, MinCountGatesThinWindows) {
  MetricsRegistry reg;
  const auto hist =
      reg.histogram("svc.latency_s", std::vector<double>{0.01, 0.1, 1.0});
  SloWatchdog::Options opts;
  opts.breach_after = 1;
  opts.recover_after = 1;
  SloWatchdog wd(reg, {quantile_target(0.05, /*min_count=*/3)}, opts);

  hist->observe(0.5);  // 1 sample < min_count 3
  auto evals = wd.evaluate_once();
  EXPECT_FALSE(evals[0].has_data);
  EXPECT_FALSE(evals[0].in_breach);

  for (int i = 0; i < 3; ++i) hist->observe(0.5);
  evals = wd.evaluate_once();
  EXPECT_TRUE(evals[0].has_data);
  EXPECT_TRUE(evals[0].in_breach);
}

TEST(SloWatchdog, RatioTargetSumsCounterFamilies) {
  MetricsRegistry reg;
  const auto shed_a = reg.counter("svc.shed.refuse_newest");
  const auto shed_b = reg.counter("svc.shed.drop_oldest");
  const auto submitted = reg.counter("svc.frames");
  reg.counter("svc.shedding_unrelated");  // shares the digits, not the family

  SloTarget t;
  t.name = "shed_rate";
  t.kind = SloTarget::Kind::kRatioMax;
  t.metric = "svc.shed.";  // trailing dot: family prefix sum
  t.denominator = "svc.frames";
  t.threshold = 0.20;
  t.min_count = 10;
  SloWatchdog::Options opts;
  opts.breach_after = 1;
  opts.recover_after = 1;
  SloWatchdog wd(reg, {t}, opts);

  // Window 1: 6 shed of 20 -> 30% > 20% -> breach.
  submitted->increment(20);
  shed_a->increment(4);
  shed_b->increment(2);
  auto evals = wd.evaluate_once();
  EXPECT_TRUE(evals[0].has_data);
  EXPECT_NEAR(evals[0].observed, 0.30, 1e-12);
  EXPECT_TRUE(evals[0].in_breach);

  // Window 2: 20 more frames, only 1 shed -> 5% -> recovered. Lifetime
  // ratio is still 7/40 = 17.5%; only the window matters.
  submitted->increment(20);
  shed_a->increment(1);
  evals = wd.evaluate_once();
  EXPECT_NEAR(evals[0].observed, 0.05, 1e-12);
  EXPECT_FALSE(evals[0].in_breach);

  // Window 3: denominator moved less than min_count -> no data.
  submitted->increment(5);
  shed_a->increment(5);
  evals = wd.evaluate_once();
  EXPECT_FALSE(evals[0].has_data);
}

TEST(SloWatchdog, MissingMetricIsNoData) {
  MetricsRegistry reg;
  SloWatchdog::Options opts;
  opts.breach_after = 1;
  SloWatchdog wd(reg, {quantile_target(0.05)}, opts);
  const auto evals = wd.evaluate_once();
  EXPECT_FALSE(evals[0].has_data);
  EXPECT_TRUE(evals[0].healthy);
}

TEST(SloWatchdog, PeriodicThreadStartsAndStops) {
  MetricsRegistry reg;
  reg.histogram("svc.latency_s", std::vector<double>{0.01, 0.1, 1.0});
  SloWatchdog::Options opts;
  opts.period = std::chrono::milliseconds(1);
  SloWatchdog wd(reg, {quantile_target(0.05)}, opts);
  EXPECT_FALSE(wd.running());
  wd.start();
  EXPECT_TRUE(wd.running());
  wd.stop();
  EXPECT_FALSE(wd.running());
  wd.start();  // restartable; destructor stops implicitly
  EXPECT_TRUE(wd.running());
}

TEST(SloWatchdog, DefaultServiceTargetsCoverLatencyAndShedRate) {
  const std::vector<SloTarget> targets =
      SloWatchdog::default_service_targets();
  ASSERT_EQ(targets.size(), 4u);
  bool saw_shed = false;
  for (const SloTarget& t : targets) {
    if (t.kind == SloTarget::Kind::kRatioMax) {
      saw_shed = true;
      EXPECT_EQ(t.metric.back(), '.');  // family prefix
      EXPECT_EQ(t.denominator, "service.frames_submitted");
    } else {
      EXPECT_EQ(t.metric.rfind("service.latency_s.", 0), 0u);
    }
  }
  EXPECT_TRUE(saw_shed);
}

}  // namespace
}  // namespace us3d::obs
