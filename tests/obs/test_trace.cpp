// Trace contracts the exporter and every consumer rely on: the ring is
// drop-oldest and counts what it dropped, the Chrome export is balanced
// (every B closed by an E) with per-thread monotonic timestamps, a
// disabled or compiled-out build records nothing, and a snapshot taken
// while the owner thread is recording never reads a torn span (the
// seqlock test below is the thread-sanitizer target for this module).
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json_reader.h"

namespace us3d::obs {
namespace {

/// Every trace test starts from a clean, enabled collector (tests in this
/// binary share the process-wide instance).
void fresh_collector() {
  TraceCollector::instance().set_enabled(true);
  TraceCollector::instance().reset();
}

TEST(SpanRing, KeepsTheNewestWindowAndCountsDrops) {
  SpanRing ring(4);
  for (int i = 0; i < 10; ++i) {
    SpanRecord r;
    r.name = "s";
    r.t0_ns = static_cast<std::uint64_t>(i);
    r.t1_ns = static_cast<std::uint64_t>(i);
    ring.push(r);
  }
  std::vector<SpanRecord> out;
  EXPECT_EQ(ring.snapshot(out), 6u);  // 10 pushed, 4 kept
  ASSERT_EQ(out.size(), 4u);
  // Oldest-first window over the newest records.
  EXPECT_EQ(out.front().t0_ns, 6u);
  EXPECT_EQ(out.back().t0_ns, 9u);

  ring.reset();
  out.clear();
  EXPECT_EQ(ring.snapshot(out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(SpanRing, SnapshotNeverReadsATornRecordWhileTheOwnerWrites) {
  // The seqlock contract under real concurrency: one owner pushing as
  // fast as it can, one reader snapshotting. Any record the reader does
  // return must be internally consistent (t1 encodes t0, name is the one
  // the writer uses); overwritten-mid-read records may only be *dropped*.
  SpanRing ring(64);
  std::atomic<bool> stop{false};
  std::thread owner([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      SpanRecord r;
      r.name = "owner";
      r.t0_ns = i;
      r.t1_ns = i * 2 + 1;  // reader-checkable function of t0
      r.arg1_name = "i";
      r.arg1 = static_cast<std::int64_t>(i);
      ring.push(r);
      ++i;
    }
  });
  std::vector<SpanRecord> out;
  for (int round = 0; round < 200; ++round) {
    out.clear();
    ring.snapshot(out);
    for (const SpanRecord& r : out) {
      ASSERT_STREQ(r.name, "owner");
      ASSERT_EQ(r.t1_ns, r.t0_ns * 2 + 1);
      ASSERT_EQ(r.arg1, static_cast<std::int64_t>(r.t0_ns));
    }
  }
  stop.store(true, std::memory_order_relaxed);
  owner.join();
}

TEST(Trace, DisabledCollectorRecordsNothingAndAllocatesNoBuffers) {
  TraceCollector::instance().reset();
  TraceCollector::instance().set_enabled(false);
  {
    US3D_TRACE_SPAN("never");
    US3D_TRACE_INSTANT("never.either", "x", 1);
  }
  EXPECT_EQ(TraceCollector::instance().collect().total_spans(), 0u);
  TraceCollector::instance().set_enabled(true);
}

TEST(Trace, CompiledOutBuildEmitsAnEmptyTrace) {
  if (TraceCollector::compiled_in()) {
    GTEST_SKIP() << "span sites compiled in (US3D_TRACING=ON)";
  }
  fresh_collector();
  {
    US3D_TRACE_SPAN("gone", "sequence", std::int64_t{1});
    US3D_TRACE_INSTANT("gone.too");
  }
  const TraceSnapshot snap = TraceCollector::instance().collect();
  EXPECT_EQ(snap.total_spans(), 0u);
  std::ostringstream os;
  TraceCollector::instance().write_chrome_trace(os);
  const JsonValue doc = parse_json(os.str());
  EXPECT_TRUE(doc.at("traceEvents").elements().empty());
}

TEST(Trace, MacroRecordsANamedSpanWithArguments) {
  if (!TraceCollector::compiled_in()) GTEST_SKIP();
  fresh_collector();
  {
    US3D_TRACE_SPAN("test.outer", "sequence", std::int64_t{7}, "session",
                    std::int64_t{3}, "backend", "scalar");
    US3D_TRACE_SPAN("test.inner");
  }
  US3D_TRACE_INSTANT("test.event", "sequence", std::int64_t{8});
  const TraceSnapshot snap = TraceCollector::instance().collect();
  EXPECT_EQ(snap.total_spans(), 3u);
  const SpanRecord* outer = snap.find("test.outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->arg1, 7);
  EXPECT_EQ(outer->arg2, 3);
  ASSERT_NE(outer->sarg, nullptr);
  EXPECT_STREQ(outer->sarg, "scalar");
  EXPECT_GE(outer->t1_ns, outer->t0_ns);
  const SpanRecord* inner = snap.find("test.inner");
  ASSERT_NE(inner, nullptr);
  // RAII nesting: the inner scope closed before the outer one.
  EXPECT_LE(outer->t0_ns, inner->t0_ns);
  EXPECT_GE(outer->t1_ns, inner->t1_ns);
  const SpanRecord* event = snap.find("test.event");
  ASSERT_NE(event, nullptr);
  EXPECT_EQ(event->t0_ns, event->t1_ns);
}

TEST(Trace, OverflowDropsOldestAndReportsDroppedSpans) {
  if (!TraceCollector::compiled_in()) GTEST_SKIP();
  fresh_collector();
  const std::size_t restore = TraceCollector::instance().thread_capacity();
  TraceCollector::instance().set_thread_capacity(8);
  // A fresh thread picks up the small capacity (the capacity applies to
  // threads that register after the call).
  std::thread t([] {
    set_thread_name("overflower");
    for (std::int64_t i = 0; i < 20; ++i) {
      US3D_TRACE_INSTANT("spam", "i", i);
    }
  });
  t.join();
  TraceCollector::instance().set_thread_capacity(restore);

  const TraceSnapshot snap = TraceCollector::instance().collect();
  const ThreadTrace* overflower = nullptr;
  for (const ThreadTrace& thread : snap.threads) {
    if (thread.name == "overflower") overflower = &thread;
  }
  ASSERT_NE(overflower, nullptr);
  EXPECT_EQ(overflower->spans.size(), 8u);
  EXPECT_EQ(overflower->dropped_spans, 12u);
  // The survivors are the newest records.
  EXPECT_EQ(overflower->spans.front().arg1, 12);
  EXPECT_EQ(overflower->spans.back().arg1, 19);
}

TEST(Trace, ChromeExportIsBalancedAndMonotonicPerThread) {
  if (!TraceCollector::compiled_in()) GTEST_SKIP();
  fresh_collector();
  set_thread_name("main-test");
  for (int i = 0; i < 3; ++i) {
    US3D_TRACE_SPAN("outer", "sequence", static_cast<std::int64_t>(i));
    US3D_TRACE_SPAN("inner");
    US3D_TRACE_INSTANT("tick");
  }
  std::thread worker([] {
    set_thread_name("worker-test");
    for (int i = 0; i < 5; ++i) {
      US3D_TRACE_SPAN("task", "i", static_cast<std::int64_t>(i));
    }
  });
  worker.join();

  std::ostringstream os;
  TraceCollector::instance().write_chrome_trace(os);
  const JsonValue doc = parse_json(os.str());
  const std::vector<JsonValue>& events = doc.at("traceEvents").elements();
  ASSERT_FALSE(events.empty());

  // Per-thread sweep: B/E balanced as a stack (never negative, ends at
  // zero) and ts non-decreasing — the Perfetto import contract.
  std::map<std::int64_t, int> open;
  std::map<std::int64_t, double> last_ts;
  bool saw_thread_name_meta = false;
  for (const JsonValue& e : events) {
    const std::string& ph = e.at("ph").as_string("ph");
    const std::int64_t tid = e.at("tid").as_int("tid");
    if (ph == "M") {
      saw_thread_name_meta |=
          e.at("name").as_string("name") == "thread_name";
      continue;
    }
    const double ts = e.at("ts").as_double("ts");
    if (last_ts.count(tid)) {
      EXPECT_GE(ts, last_ts[tid]);
    }
    last_ts[tid] = ts;
    if (ph == "B") {
      ++open[tid];
    } else if (ph == "E") {
      --open[tid];
      ASSERT_GE(open[tid], 0) << "E without a matching B on tid " << tid;
    } else {
      ADD_FAILURE() << "unexpected phase '" << ph << "'";
    }
  }
  EXPECT_TRUE(saw_thread_name_meta);
  for (const auto& [tid, depth] : open) {
    EXPECT_EQ(depth, 0) << "unbalanced events on tid " << tid;
  }
}

TEST(Trace, ResetDiscardsEverything) {
  if (!TraceCollector::compiled_in()) GTEST_SKIP();
  fresh_collector();
  { US3D_TRACE_SPAN("ephemeral"); }
  EXPECT_GE(TraceCollector::instance().collect().total_spans(), 1u);
  TraceCollector::instance().reset();
  EXPECT_EQ(TraceCollector::instance().collect().total_spans(), 0u);
  EXPECT_EQ(TraceCollector::instance().collect().total_dropped(), 0u);
}

}  // namespace
}  // namespace us3d::obs
