// MetricsRegistry contracts: create-or-get node identity, kind-mismatch
// rejection, prefix removal for per-session families, histogram bucket /
// quantile arithmetic, and a snapshot JSON that round-trips through the
// shared strict reader (the scrape contract the service bench validates).
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/contracts.h"
#include "common/json_reader.h"

namespace us3d::obs {
namespace {

TEST(MetricsRegistry, CreateOrGetReturnsTheSameNode) {
  MetricsRegistry reg;
  const auto a = reg.counter("svc.events");
  const auto b = reg.counter("svc.events");
  EXPECT_EQ(a.get(), b.get());
  a->increment(3);
  EXPECT_EQ(b->value(), 3);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), ContractViolation);
  EXPECT_THROW(reg.histogram("x"), ContractViolation);
  reg.gauge("y");
  EXPECT_THROW(reg.counter("y"), ContractViolation);
}

TEST(MetricsRegistry, RemovePrefixUnlistsExactlyTheFamily) {
  MetricsRegistry reg;
  const auto held = reg.gauge("service.s1.depth");
  reg.gauge("service.s1.ring");
  reg.gauge("service.s10.depth");  // shares the digits, not the family
  reg.counter("service.total");
  EXPECT_EQ(reg.remove_prefix("service.s1."), 2u);
  EXPECT_EQ(reg.size(), 2u);
  // Unlisting never invalidates in-flight holders.
  held->set(7);
  EXPECT_EQ(held->value(), 7);
  // Re-creating the name yields a fresh node, not the held one.
  EXPECT_NE(reg.gauge("service.s1.depth").get(), held.get());
}

TEST(Gauge, SetAndAddAreLastWriteWins) {
  Gauge g;
  g.set(5);
  g.add(-2);
  EXPECT_EQ(g.value(), 3);
}

TEST(FixedHistogram, BucketsCountAndQuantilesInterpolate) {
  FixedHistogram h(std::vector<double>{1.0, 2.0, 4.0});
  for (const double v : {0.5, 0.7, 1.5, 3.0, 3.5, 8.0}) h.observe(v);
  EXPECT_EQ(h.count(), 6);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
  EXPECT_NEAR(h.mean(), (0.5 + 0.7 + 1.5 + 3.0 + 3.5 + 8.0) / 6.0, 1e-12);
  EXPECT_EQ(h.bucket_count(0), 2u);  // <= 1.0
  EXPECT_EQ(h.bucket_count(1), 1u);  // (1, 2]
  EXPECT_EQ(h.bucket_count(2), 2u);  // (2, 4]
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow
  // Quantiles are bucket-resolution estimates: monotone in q, clamped to
  // the observed range, and each lands inside its winning bucket.
  const double p0 = h.quantile(0.0);
  const double p50 = h.quantile(0.5);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p0, p50);
  EXPECT_LE(p50, p99);
  EXPECT_GE(p0, h.min());
  EXPECT_LE(p99, h.max());
  EXPECT_GE(p50, 1.0);  // rank 2.5 of 6 lands past the first bucket
  EXPECT_LE(p50, 4.0);
}

TEST(FixedHistogram, EmptyHistogramReportsZeros) {
  FixedHistogram h(FixedHistogram::default_latency_bounds());
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(FixedHistogram, DefaultLatencyBoundsAreStrictlyAscending) {
  const std::vector<double> bounds = FixedHistogram::default_latency_bounds();
  ASSERT_FALSE(bounds.empty());
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  EXPECT_LE(bounds.front(), 1e-4);
  EXPECT_GE(bounds.back(), 1e2);
}

TEST(FixedHistogram, ConcurrentObserversLoseNothing) {
  FixedHistogram h(std::vector<double>{0.5});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads * kPerThread));
  EXPECT_EQ(h.bucket_count(1), static_cast<std::uint64_t>(kThreads) *
                                   static_cast<std::uint64_t>(kPerThread));
}

TEST(MetricsRegistry, SnapshotJsonRoundTripsThroughTheStrictReader) {
  MetricsRegistry reg;
  reg.counter("svc.admitted")->increment(4);
  reg.gauge("svc.depth")->set(-2);
  const auto h = reg.histogram("svc.latency", {1.0, 2.0});
  h->observe(0.5);
  h->observe(1.5);
  h->observe(9.0);

  const std::string json = reg.snapshot_json();
  const JsonValue doc = parse_json(json);  // strict: throws on any damage

  EXPECT_EQ(doc.at("counters").at("svc.admitted").as_int(), 4);
  EXPECT_EQ(doc.at("gauges").at("svc.depth").as_int(), -2);
  const JsonValue& hist = doc.at("histograms").at("svc.latency");
  EXPECT_EQ(hist.at("count").as_int(), 3);
  EXPECT_DOUBLE_EQ(hist.at("sum").as_double(), 11.0);
  EXPECT_DOUBLE_EQ(hist.at("min").as_double(), 0.5);
  EXPECT_DOUBLE_EQ(hist.at("max").as_double(), 9.0);
  // Buckets list (le, count) pairs with the overflow bucket last.
  const std::vector<JsonValue>& buckets = hist.at("buckets").elements();
  ASSERT_FALSE(buckets.empty());
  EXPECT_EQ(buckets.back().at("le").as_string(), "+inf");
  std::int64_t total = 0;
  for (const JsonValue& b : buckets) total += b.at("count").as_int();
  EXPECT_EQ(total, 3);
}

TEST(MetricsRegistry, GlobalIsOneSharedInstance) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
  const std::string name = "test.metrics.global_probe";
  MetricsRegistry::global().counter(name)->increment();
  EXPECT_GE(MetricsRegistry::global().counter(name)->value(), 1);
  MetricsRegistry::global().remove(name);
}

}  // namespace
}  // namespace us3d::obs
