// Flight-recorder contracts: a dump writes a complete bundle (manifest
// last, all four artifacts valid JSON through the strict reader, trace
// balanced), an unconfigured recorder is a safe no-op from failure
// paths, the rate limiter drops (and counts) back-to-back dumps, and
// retention keeps only the newest max_bundles bundles.
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json_reader.h"
#include "obs/event_log.h"
#include "obs/trace.h"

namespace us3d::obs {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test (under the ctest working dir).
class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path("flightrec_test") /
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  FlightRecorderOptions options() {
    FlightRecorderOptions opts;
    opts.directory = dir_.string();
    opts.min_interval = std::chrono::milliseconds(0);
    return opts;
  }

  std::vector<std::string> bundles() const {
    std::vector<std::string> out;
    if (!fs::exists(dir_)) return out;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      out.push_back(entry.path().filename().string());
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  fs::path dir_;
};

JsonValue parse_artifact(const fs::path& bundle, const std::string& name) {
  std::ifstream in(bundle / name);
  std::ostringstream os;
  os << in.rdbuf();
  return parse_json(os.str());  // throws (fails the test) on bad JSON
}

TEST_F(FlightRecorderTest, UnconfiguredRecorderIsANoOp) {
  FlightRecorder recorder;  // no directory
  EXPECT_FALSE(recorder.enabled());
  EXPECT_EQ(recorder.dump("session_failure"), "");
  EXPECT_EQ(recorder.bundles_written(), 0u);
}

TEST_F(FlightRecorderTest, DumpWritesACompleteValidBundle) {
  // Put live data behind the dump so the artifacts are non-trivial.
  TraceCollector::instance().set_enabled(true);
  EventLog::instance().set_enabled(true);
  { US3D_TRACE_SPAN("flightrec_test.span"); }
  US3D_EVENT_ERROR("flightrec_test.failure", 3, 17, "forced by test");

  FlightRecorder recorder(options());
  EXPECT_TRUE(recorder.enabled());
  const std::string bundle = recorder.dump("session_failure", 3);
  ASSERT_NE(bundle, "");
  EXPECT_EQ(recorder.bundles_written(), 1u);

  const JsonValue manifest = parse_artifact(bundle, "manifest.json");
  EXPECT_EQ(manifest.at("reason").as_string(), "session_failure");
  EXPECT_EQ(manifest.at("session").as_int(), 3);
  ASSERT_EQ(manifest.at("artifacts").size(), 4u);
  for (const JsonValue& artifact : manifest.at("artifacts").elements()) {
    EXPECT_TRUE(fs::exists(fs::path(bundle) / artifact.as_string()));
  }

  // trace.json: valid and balanced (B/E pairs per thread).
  const JsonValue trace = parse_artifact(bundle, "trace.json");
  std::map<std::int64_t, std::int64_t> depth;
  for (const JsonValue& ev : trace.at("traceEvents").elements()) {
    const std::string& ph = ev.at("ph").as_string();
    if (ph == "B") ++depth[ev.at("tid").as_int()];
    if (ph == "E") EXPECT_GE(--depth[ev.at("tid").as_int()], 0);
  }
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "tid " << tid;

  // metrics.json / events.json / resources.json: valid with the expected
  // top-level shape.
  const JsonValue metrics = parse_artifact(bundle, "metrics.json");
  EXPECT_NE(metrics.find("counters"), nullptr);
  const JsonValue events = parse_artifact(bundle, "events.json");
  bool saw_failure = false;
  for (const JsonValue& ev : events.at("events").elements()) {
    if (ev.at("name").as_string() == "flightrec_test.failure") {
      saw_failure = true;
      EXPECT_EQ(ev.at("severity").as_string(), "error");
      EXPECT_EQ(ev.at("session").as_int(), 3);
    }
  }
  EXPECT_TRUE(saw_failure);
  const JsonValue resources = parse_artifact(bundle, "resources.json");
  EXPECT_NE(resources.find("rss_bytes"), nullptr);
  EXPECT_NE(resources.find("stages"), nullptr);
}

TEST_F(FlightRecorderTest, ReasonSlugIsSanitizedIntoTheBundleName) {
  FlightRecorder recorder(options());
  const std::string bundle = recorder.dump("weird reason/../x");
  ASSERT_NE(bundle, "");
  const std::string name = fs::path(bundle).filename().string();
  EXPECT_EQ(name, "pm-000001-weird-reason----x");
}

TEST_F(FlightRecorderTest, RateLimiterDropsAndCountsBackToBackDumps) {
  FlightRecorderOptions opts = options();
  opts.min_interval = std::chrono::hours(1);
  FlightRecorder recorder(opts);

  EXPECT_NE(recorder.dump("first"), "");
  // A crash loop hammering dump(): everything inside the interval drops.
  EXPECT_EQ(recorder.dump("second"), "");
  EXPECT_EQ(recorder.dump("third"), "");
  EXPECT_EQ(recorder.bundles_written(), 1u);
  EXPECT_EQ(recorder.rate_limited(), 2u);
  EXPECT_EQ(bundles().size(), 1u);
}

TEST_F(FlightRecorderTest, RetentionKeepsOnlyTheNewestBundles) {
  FlightRecorderOptions opts = options();
  opts.max_bundles = 2;
  FlightRecorder recorder(opts);

  for (int i = 0; i < 4; ++i) ASSERT_NE(recorder.dump("loop"), "");
  EXPECT_EQ(recorder.bundles_written(), 4u);
  const std::vector<std::string> kept = bundles();
  ASSERT_EQ(kept.size(), 2u);
  // Lexical order == dump order: the two newest survive.
  EXPECT_EQ(kept[0], "pm-000003-loop");
  EXPECT_EQ(kept[1], "pm-000004-loop");
}

}  // namespace
}  // namespace us3d::obs
