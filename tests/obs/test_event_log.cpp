// Event-log contracts the flight recorder relies on: the per-thread ring
// is drop-oldest and counts what it dropped, a merged snapshot is
// timestamp-sorted and finds events by literal name, the JSON export
// round-trips through the strict reader, a disabled log records nothing,
// and a snapshot taken while the owner thread is emitting never reads a
// torn record (the seqlock stress below is this module's
// thread-sanitizer target — the correlated arg1/arg2 pair would expose a
// mixed-generation slot).
#include "obs/event_log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json_reader.h"

namespace us3d::obs {
namespace {

/// Every test starts from a clean, enabled log (tests in this binary
/// share the process-wide instance).
void fresh_log() {
  EventLog::instance().set_enabled(true);
  EventLog::instance().reset();
}

EventRecord make(const char* name, std::int64_t i) {
  EventRecord r;
  r.severity = EventSeverity::kInfo;
  r.name = name;
  r.t_ns = static_cast<std::uint64_t>(i);
  r.arg1_name = "i";
  r.arg1 = i;
  r.arg2_name = "neg";
  r.arg2 = -i;
  return r;
}

TEST(EventRing, KeepsTheNewestWindowAndCountsDrops) {
  EventRing ring(4);
  for (std::int64_t i = 0; i < 10; ++i) ring.push(make("e", i));
  std::vector<EventRecord> out;
  EXPECT_EQ(ring.snapshot(out), 6u);  // 10 pushed, 4 kept
  ASSERT_EQ(out.size(), 4u);
  // Oldest-first window over the newest records.
  EXPECT_EQ(out.front().arg1, 6);
  EXPECT_EQ(out.back().arg1, 9);

  ring.reset();
  out.clear();
  EXPECT_EQ(ring.snapshot(out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(EventRing, DropCountIsCumulativeAcrossSnapshots) {
  EventRing ring(2);
  for (std::int64_t i = 0; i < 5; ++i) ring.push(make("e", i));
  std::vector<EventRecord> out;
  EXPECT_EQ(ring.snapshot(out), 3u);
  for (std::int64_t i = 5; i < 7; ++i) ring.push(make("e", i));
  out.clear();
  EXPECT_EQ(ring.snapshot(out), 5u);  // 7 pushed, 2 kept
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.back().arg1, 6);
}

// The TSan target: one owner thread pushes records whose fields are
// correlated (arg2 == -arg1, t_ns == arg1) while readers snapshot
// continuously. A torn read — payload from two different generations of
// the same slot — would break the correlation; the seqlock must instead
// count such slots as dropped.
TEST(EventRing, ConcurrentSnapshotNeverReadsATornRecord) {
  EventRing ring(8);
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> torn{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&ring, &stop, &torn] {
      std::vector<EventRecord> out;
      while (!stop.load(std::memory_order_acquire)) {
        out.clear();
        ring.snapshot(out);
        for (const EventRecord& r : out) {
          if (r.arg2 != -r.arg1 ||
              r.t_ns != static_cast<std::uint64_t>(r.arg1)) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::int64_t i = 0; i < 200000; ++i) ring.push(make("stress", i));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0);

  // After the dust settles the ring still accounts exactly.
  std::vector<EventRecord> out;
  const std::uint64_t dropped = ring.snapshot(out);
  EXPECT_EQ(out.size(), 8u);
  EXPECT_EQ(dropped, 200000u - 8u);
}

TEST(EventLog, DisabledLogRecordsNothing) {
  fresh_log();
  EventLog::instance().set_enabled(false);
  US3D_EVENT_INFO("ignored.event", 1, 2, "while disabled");
  EXPECT_EQ(EventLog::instance().collect().events.size(), 0u);
  EventLog::instance().set_enabled(true);
}

TEST(EventLog, CollectMergesSortsAndFindsByName) {
  fresh_log();
  US3D_EVENT_INFO("svc.admit", 7, -1, nullptr, "workers", 3);
  US3D_EVENT_WARN("svc.shed", 7, 42, "drop_oldest", "depth", 2);
  US3D_EVENT_ERROR("svc.failed", 7);
  std::thread other([] { US3D_EVENT_DEBUG("svc.other_thread", 8); });
  other.join();

  const EventSnapshot snap = EventLog::instance().collect();
  ASSERT_EQ(snap.events.size(), 4u);
  EXPECT_EQ(snap.dropped, 0u);
  for (std::size_t i = 1; i < snap.events.size(); ++i) {
    EXPECT_LE(snap.events[i - 1].t_ns, snap.events[i].t_ns);
  }
  const EventRecord* shed = snap.find("svc.shed");
  ASSERT_NE(shed, nullptr);
  EXPECT_EQ(shed->severity, EventSeverity::kWarn);
  EXPECT_EQ(shed->session, 7);
  EXPECT_EQ(shed->sequence, 42);
  EXPECT_STREQ(shed->detail, "drop_oldest");
  EXPECT_STREQ(shed->arg1_name, "depth");
  EXPECT_EQ(shed->arg1, 2);
  EXPECT_EQ(snap.count("svc.shed"), 1u);
  EXPECT_EQ(snap.find("svc.missing"), nullptr);
  ASSERT_EQ(snap.last(1).size(), 1u);
  EXPECT_STREQ(snap.last(1)[0].name, "svc.other_thread");
}

TEST(EventLog, JsonExportRoundTripsThroughTheStrictReader) {
  fresh_log();
  US3D_EVENT_INFO("json.first", 1, 10, "detail text", "k1", -5, "k2", 6);
  US3D_EVENT_WARN("json.second");

  std::ostringstream os;
  EventLog::instance().write_events_json(os);
  const JsonValue v = parse_json(os.str());
  EXPECT_TRUE(v.at("enabled").as_bool());
  EXPECT_EQ(v.at("dropped").as_int(), 0);
  ASSERT_EQ(v.at("events").size(), 2u);
  const JsonValue& first = v.at("events").elements()[0];
  EXPECT_EQ(first.at("name").as_string(), "json.first");
  EXPECT_EQ(first.at("severity").as_string(), "info");
  EXPECT_EQ(first.at("session").as_int(), 1);
  EXPECT_EQ(first.at("sequence").as_int(), 10);
  EXPECT_EQ(first.at("detail").as_string(), "detail text");
  EXPECT_EQ(first.at("k1").as_int(), -5);
  EXPECT_EQ(first.at("k2").as_int(), 6);
  // Optional context is omitted, not emitted as -1.
  const JsonValue& second = v.at("events").elements()[1];
  EXPECT_EQ(second.find("session"), nullptr);
  EXPECT_EQ(second.find("detail"), nullptr);
}

TEST(EventLog, JsonExportTruncatesToTheNewestN) {
  fresh_log();
  for (int i = 0; i < 6; ++i) US3D_EVENT_INFO("trunc.event", i);
  std::ostringstream os;
  EventLog::instance().write_events_json(os, 2);
  const JsonValue v = parse_json(os.str());
  ASSERT_EQ(v.at("events").size(), 2u);
  EXPECT_EQ(v.at("events").elements()[1].at("session").as_int(), 5);
}

TEST(EventLog, ResetForgetsEverything) {
  fresh_log();
  US3D_EVENT_INFO("reset.me");
  EXPECT_EQ(EventLog::instance().collect().events.size(), 1u);
  EventLog::instance().reset();
  const EventSnapshot snap = EventLog::instance().collect();
  EXPECT_EQ(snap.events.size(), 0u);
  EXPECT_EQ(snap.dropped, 0u);
}

TEST(EventLog, SeverityNamesAreStable) {
  EXPECT_STREQ(severity_name(EventSeverity::kDebug), "debug");
  EXPECT_STREQ(severity_name(EventSeverity::kInfo), "info");
  EXPECT_STREQ(severity_name(EventSeverity::kWarn), "warn");
  EXPECT_STREQ(severity_name(EventSeverity::kError), "error");
}

}  // namespace
}  // namespace us3d::obs
