// The SIMD backend dispatcher: name/parse round-trips, the availability
// lattice (compiled ∧ CPU), resolution precedence (explicit option over
// US3D_SIMD over auto-detection), and the loud-failure contract for
// forced-but-unavailable backends — the property CI leans on when it runs
// the suites once per forced backend.
#include "simd/dispatch.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace us3d::simd {
namespace {

/// Scoped US3D_SIMD override; restores the previous value on destruction
/// so tests compose with a CI harness that forces a backend globally.
class ScopedEnv {
 public:
  explicit ScopedEnv(const char* value) {
    const char* old = std::getenv("US3D_SIMD");
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    set(value);
  }
  ~ScopedEnv() { had_ ? set(saved_.c_str()) : set(nullptr); }

 private:
  static void set(const char* value) {
    if (value != nullptr) {
      ::setenv("US3D_SIMD", value, 1);
    } else {
      ::unsetenv("US3D_SIMD");
    }
  }
  std::string saved_;
  bool had_ = false;
};

constexpr DasBackend kAll[] = {DasBackend::kAuto, DasBackend::kScalar,
                               DasBackend::kSSE2, DasBackend::kAVX2,
                               DasBackend::kNEON};

TEST(SimdDispatch, NamesAndParseRoundTrip) {
  for (const DasBackend b : kAll) {
    const auto parsed = parse_backend(backend_name(b));
    ASSERT_TRUE(parsed.has_value()) << backend_name(b);
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_EQ(parse_backend("avx512"), std::nullopt);
  EXPECT_EQ(parse_backend(""), std::nullopt);
  EXPECT_EQ(parse_backend("AVX2"), std::nullopt) << "names are lower-case";
}

TEST(SimdDispatch, ScalarIsAlwaysAvailableAndLast) {
  EXPECT_TRUE(backend_compiled(DasBackend::kScalar));
  EXPECT_TRUE(backend_available(DasBackend::kScalar));
  const auto backends = available_backends();
  ASSERT_FALSE(backends.empty());
  EXPECT_EQ(backends.back(), DasBackend::kScalar);
  for (const DasBackend b : backends) {
    EXPECT_NE(b, DasBackend::kAuto);
    EXPECT_TRUE(backend_available(b)) << backend_name(b);
  }
}

TEST(SimdDispatch, AvailableImpliesCompiled) {
  for (const DasBackend b : kAll) {
    if (backend_available(b)) {
      EXPECT_TRUE(backend_compiled(b)) << backend_name(b);
    }
  }
}

TEST(SimdDispatch, AutoResolvesToTheBestAvailableBackend) {
  ScopedEnv env(nullptr);  // neutralize any harness-level US3D_SIMD
  const DasBackend resolved = resolve_backend(DasBackend::kAuto);
  EXPECT_EQ(resolved, available_backends().front());
  EXPECT_TRUE(backend_available(resolved));
}

TEST(SimdDispatch, ExplicitRequestResolvesToItself) {
  for (const DasBackend b : available_backends()) {
    EXPECT_EQ(resolve_backend(b), b) << backend_name(b);
  }
}

TEST(SimdDispatch, ForcingAnUnavailableBackendThrows) {
  bool saw_unavailable = false;
  for (const DasBackend b :
       {DasBackend::kSSE2, DasBackend::kAVX2, DasBackend::kNEON}) {
    if (backend_available(b)) continue;
    saw_unavailable = true;
    EXPECT_THROW(resolve_backend(b), std::runtime_error) << backend_name(b);
    ScopedEnv env(backend_name(b));
    EXPECT_THROW(resolve_backend(DasBackend::kAuto), std::runtime_error)
        << "US3D_SIMD=" << backend_name(b);
  }
  // On any one host at least one of sse2/avx2/neon is missing (no CPU
  // implements both x86 and ARM vector ISAs), so the loop always bites.
  EXPECT_TRUE(saw_unavailable);
}

TEST(SimdDispatch, EnvVarForcesAutoResolution) {
  for (const DasBackend b : available_backends()) {
    ScopedEnv env(backend_name(b));
    EXPECT_EQ(resolve_backend(DasBackend::kAuto), b) << backend_name(b);
  }
}

TEST(SimdDispatch, EnvVarAutoAndEmptyFallThroughToDetection) {
  {
    ScopedEnv env("auto");
    EXPECT_EQ(resolve_backend(DasBackend::kAuto), available_backends().front());
  }
  {
    ScopedEnv env("");
    EXPECT_EQ(resolve_backend(DasBackend::kAuto), available_backends().front());
  }
}

TEST(SimdDispatch, UnknownEnvVarValueThrows) {
  ScopedEnv env("fastest-please");
  EXPECT_THROW(resolve_backend(DasBackend::kAuto), std::runtime_error);
}

TEST(SimdDispatch, ExplicitRequestBeatsTheEnvVar) {
  // Even with the env pinned to scalar, an explicit option wins.
  ScopedEnv env("scalar");
  for (const DasBackend b : available_backends()) {
    EXPECT_EQ(resolve_backend(b), b) << backend_name(b);
  }
}

TEST(SimdDispatch, RowFnExistsForEveryConcreteBackend) {
  for (const DasBackend b : {DasBackend::kScalar, DasBackend::kSSE2,
                             DasBackend::kAVX2, DasBackend::kNEON}) {
    EXPECT_NE(das_row_fn(b), nullptr) << backend_name(b);
  }
  EXPECT_THROW(das_row_fn(DasBackend::kAuto), std::logic_error);
}

}  // namespace
}  // namespace us3d::simd
