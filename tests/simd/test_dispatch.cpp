// The SIMD backend dispatcher: name/parse round-trips, the availability
// lattice (compiled ∧ CPU), resolution precedence (explicit option over
// US3D_SIMD over auto-detection), and the loud-failure contract for
// forced-but-unavailable backends — the property CI leans on when it runs
// the suites once per forced backend. The precision knob (US3D_PRECISION)
// mirrors the same precedence and is pinned here alongside.
#include "simd/dispatch.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace us3d::simd {
namespace {

/// Scoped environment-variable override; restores the previous value on
/// destruction so tests compose with a CI harness that forces a backend
/// (or a precision) globally.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    set(value);
  }
  ~ScopedEnv() { had_ ? set(saved_.c_str()) : set(nullptr); }

 private:
  void set(const char* value) {
    if (value != nullptr) {
      ::setenv(name_, value, 1);
    } else {
      ::unsetenv(name_);
    }
  }
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

constexpr DasBackend kAll[] = {DasBackend::kAuto, DasBackend::kScalar,
                               DasBackend::kSSE2, DasBackend::kAVX2,
                               DasBackend::kAVX512, DasBackend::kNEON};

constexpr DasBackend kConcrete[] = {DasBackend::kScalar, DasBackend::kSSE2,
                                    DasBackend::kAVX2, DasBackend::kAVX512,
                                    DasBackend::kNEON};

TEST(SimdDispatch, NamesAndParseRoundTrip) {
  for (const DasBackend b : kAll) {
    const auto parsed = parse_backend(backend_name(b));
    ASSERT_TRUE(parsed.has_value()) << backend_name(b);
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_EQ(parse_backend("avx"), std::nullopt);
  EXPECT_EQ(parse_backend(""), std::nullopt);
  EXPECT_EQ(parse_backend("AVX2"), std::nullopt) << "names are lower-case";
}

TEST(SimdDispatch, ScalarIsAlwaysAvailableAndLast) {
  EXPECT_TRUE(backend_compiled(DasBackend::kScalar));
  EXPECT_TRUE(backend_available(DasBackend::kScalar));
  const auto backends = available_backends();
  ASSERT_FALSE(backends.empty());
  EXPECT_EQ(backends.back(), DasBackend::kScalar);
  for (const DasBackend b : backends) {
    EXPECT_NE(b, DasBackend::kAuto);
    EXPECT_TRUE(backend_available(b)) << backend_name(b);
  }
}

TEST(SimdDispatch, AvailableImpliesCompiled) {
  for (const DasBackend b : kAll) {
    if (backend_available(b)) {
      EXPECT_TRUE(backend_compiled(b)) << backend_name(b);
    }
  }
}

TEST(SimdDispatch, AutoResolvesToTheBestAvailableBackend) {
  ScopedEnv env("US3D_SIMD", nullptr);  // neutralize any harness-level force
  const DasBackend resolved = resolve_backend(DasBackend::kAuto);
  EXPECT_EQ(resolved, available_backends().front());
  EXPECT_TRUE(backend_available(resolved));
}

TEST(SimdDispatch, ExplicitRequestResolvesToItself) {
  for (const DasBackend b : available_backends()) {
    EXPECT_EQ(resolve_backend(b), b) << backend_name(b);
  }
}

TEST(SimdDispatch, ForcingAnUnavailableBackendThrows) {
  bool saw_unavailable = false;
  for (const DasBackend b : {DasBackend::kSSE2, DasBackend::kAVX2,
                             DasBackend::kAVX512, DasBackend::kNEON}) {
    if (backend_available(b)) continue;
    saw_unavailable = true;
    EXPECT_THROW(resolve_backend(b), std::runtime_error) << backend_name(b);
    ScopedEnv env("US3D_SIMD", backend_name(b));
    EXPECT_THROW(resolve_backend(DasBackend::kAuto), std::runtime_error)
        << "US3D_SIMD=" << backend_name(b);
  }
  // On any one host at least one of sse2/avx2/neon is missing (no CPU
  // implements both x86 and ARM vector ISAs), so the loop always bites.
  EXPECT_TRUE(saw_unavailable);
}

TEST(SimdDispatch, EnvVarForcesAutoResolution) {
  for (const DasBackend b : available_backends()) {
    ScopedEnv env("US3D_SIMD", backend_name(b));
    EXPECT_EQ(resolve_backend(DasBackend::kAuto), b) << backend_name(b);
  }
}

TEST(SimdDispatch, EnvVarAutoAndEmptyFallThroughToDetection) {
  {
    ScopedEnv env("US3D_SIMD", "auto");
    EXPECT_EQ(resolve_backend(DasBackend::kAuto), available_backends().front());
  }
  {
    ScopedEnv env("US3D_SIMD", "");
    EXPECT_EQ(resolve_backend(DasBackend::kAuto), available_backends().front());
  }
}

TEST(SimdDispatch, UnknownEnvVarValueThrows) {
  ScopedEnv env("US3D_SIMD", "fastest-please");
  EXPECT_THROW(resolve_backend(DasBackend::kAuto), std::runtime_error);
}

TEST(SimdDispatch, ExplicitRequestBeatsTheEnvVar) {
  // Even with the env pinned to scalar, an explicit option wins.
  ScopedEnv env("US3D_SIMD", "scalar");
  for (const DasBackend b : available_backends()) {
    EXPECT_EQ(resolve_backend(b), b) << backend_name(b);
  }
}

TEST(SimdDispatch, Avx512AvailabilityIsConsistentWithAvx2) {
  // The avx512 availability predicate requires avx2 too (the quantized
  // pipeline leans on both being orderable best-first).
  if (backend_available(DasBackend::kAVX512)) {
    EXPECT_TRUE(backend_available(DasBackend::kAVX2));
  }
}

TEST(SimdDispatch, RowFnExistsForEveryConcreteBackend) {
  for (const DasBackend b : kConcrete) {
    EXPECT_NE(das_row_fn(b), nullptr) << backend_name(b);
    EXPECT_NE(das_row_q_fn(b), nullptr) << backend_name(b);
  }
  EXPECT_THROW(das_row_fn(DasBackend::kAuto), std::logic_error);
  EXPECT_THROW(das_row_q_fn(DasBackend::kAuto), std::logic_error);
}

TEST(SimdDispatch, NeonLatticeMatchesTheTargetArchitecture) {
#if defined(__aarch64__)
  // AArch64 mandates AdvSIMD: the TU compiles its real vector bodies and
  // the runtime hwcap check must agree, so compiled-in implies available
  // and auto-detection ranks neon ahead of the scalar reference.
  EXPECT_TRUE(backend_compiled(DasBackend::kNEON));
  EXPECT_TRUE(backend_available(DasBackend::kNEON));
  EXPECT_EQ(available_backends().front(), DasBackend::kNEON);
#else
  // Everywhere else the NEON TU degrades to its scalar body and must
  // report itself not compiled — never available-but-secretly-scalar.
  EXPECT_FALSE(backend_compiled(DasBackend::kNEON));
  EXPECT_FALSE(backend_available(DasBackend::kNEON));
#endif
}

TEST(SimdDispatch, ForcingX86BackendsOnArmThrowsInsteadOfFallingBack) {
#if defined(__aarch64__)
  for (const DasBackend b :
       {DasBackend::kSSE2, DasBackend::kAVX2, DasBackend::kAVX512}) {
    EXPECT_FALSE(backend_compiled(b)) << backend_name(b);
    EXPECT_FALSE(backend_available(b)) << backend_name(b);
    // Both forcing channels must fail loudly — silently resolving to
    // neon would defeat the forced-backend CI cells.
    EXPECT_THROW(resolve_backend(b), std::runtime_error) << backend_name(b);
    ScopedEnv env("US3D_SIMD", backend_name(b));
    EXPECT_THROW(resolve_backend(DasBackend::kAuto), std::runtime_error)
        << "US3D_SIMD=" << backend_name(b);
  }
  // The env precedence ladder is unchanged on arm: an explicit scalar
  // request still beats a neon-forcing environment.
  ScopedEnv env("US3D_SIMD", "neon");
  EXPECT_EQ(resolve_backend(DasBackend::kScalar), DasBackend::kScalar);
  EXPECT_EQ(resolve_backend(DasBackend::kAuto), DasBackend::kNEON);
#else
  GTEST_SKIP() << "x86 host: the aarch64 qemu CI lane pins this case";
#endif
}

TEST(SimdDispatch, PrecisionNamesAndParseRoundTrip) {
  for (const Precision p :
       {Precision::kAuto, Precision::kDouble, Precision::kQuantized}) {
    const auto parsed = parse_precision(precision_name(p));
    ASSERT_TRUE(parsed.has_value()) << precision_name(p);
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_EQ(parse_precision("int16"), std::nullopt);
  EXPECT_EQ(parse_precision(""), std::nullopt);
  EXPECT_EQ(parse_precision("Double"), std::nullopt) << "names are lower-case";
}

TEST(SimdDispatch, PrecisionDefaultsToDouble) {
  ScopedEnv env("US3D_PRECISION", nullptr);
  EXPECT_EQ(resolve_precision(Precision::kAuto), Precision::kDouble);
}

TEST(SimdDispatch, PrecisionEnvVarForcesAutoResolution) {
  {
    ScopedEnv env("US3D_PRECISION", "quantized");
    EXPECT_EQ(resolve_precision(Precision::kAuto), Precision::kQuantized);
  }
  {
    ScopedEnv env("US3D_PRECISION", "double");
    EXPECT_EQ(resolve_precision(Precision::kAuto), Precision::kDouble);
  }
  {
    ScopedEnv env("US3D_PRECISION", "auto");
    EXPECT_EQ(resolve_precision(Precision::kAuto), Precision::kDouble);
  }
  {
    ScopedEnv env("US3D_PRECISION", "");
    EXPECT_EQ(resolve_precision(Precision::kAuto), Precision::kDouble);
  }
}

TEST(SimdDispatch, PrecisionExplicitRequestBeatsTheEnvVar) {
  ScopedEnv env("US3D_PRECISION", "quantized");
  EXPECT_EQ(resolve_precision(Precision::kDouble), Precision::kDouble);
  EXPECT_EQ(resolve_precision(Precision::kQuantized), Precision::kQuantized);
}

TEST(SimdDispatch, PrecisionUnknownEnvVarValueThrows) {
  ScopedEnv env("US3D_PRECISION", "float128");
  EXPECT_THROW(resolve_precision(Precision::kAuto), std::runtime_error);
}

}  // namespace
}  // namespace us3d::simd
