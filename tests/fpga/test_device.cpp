#include "fpga/device.h"

#include <gtest/gtest.h>

namespace us3d::fpga {
namespace {

TEST(Device, Virtex7Inventory) {
  const FpgaDevice d = xc7vx1140t();
  EXPECT_EQ(d.name, "XC7VX1140T-2");
  EXPECT_DOUBLE_EQ(d.luts, 712'000.0);
  EXPECT_DOUBLE_EQ(d.ffs, 1'424'000.0);
  // Sec. V-B: "the largest Xilinx Virtex 7 carry up to 68 Mb of BRAM".
  // Xilinx counts 1024-bit kilobits: 1880 x 36 Kb = 67,680 Kb = 69.3e6 bits.
  EXPECT_NEAR(d.bram_bits() / 1024.0 / 1000.0, 67.68, 0.1);
}

TEST(Device, UltraScaleProjectionDoublesLuts) {
  // Sec. VI-B: UltraScale parts "feature twice the LUT count".
  EXPECT_DOUBLE_EQ(ultrascale_projection().luts, 2.0 * xc7vx1140t().luts);
}

TEST(ResourceUsage, AccumulatesAndScales) {
  ResourceUsage a{100.0, 50.0, 2.0, 1.0};
  const ResourceUsage b{10.0, 5.0, 0.5, 0.0};
  a += b;
  EXPECT_DOUBLE_EQ(a.luts, 110.0);
  EXPECT_DOUBLE_EQ(a.bram36, 2.5);
  const ResourceUsage s = b.scaled(4.0);
  EXPECT_DOUBLE_EQ(s.luts, 40.0);
  const ResourceUsage sum = a + b;
  EXPECT_DOUBLE_EQ(sum.ffs, 60.0);
}

TEST(Utilization, FractionsAndLimiting) {
  const FpgaDevice d = xc7vx1140t();
  ResourceUsage u;
  u.luts = d.luts / 2.0;
  u.ffs = d.ffs / 4.0;
  u.bram36 = d.bram36_blocks * 0.75;
  const UtilizationReport r = utilization(u, d);
  EXPECT_DOUBLE_EQ(r.lut_fraction, 0.5);
  EXPECT_DOUBLE_EQ(r.ff_fraction, 0.25);
  EXPECT_DOUBLE_EQ(r.bram_fraction, 0.75);
  EXPECT_TRUE(r.fits);
  EXPECT_EQ(r.limiting_resource, "BRAM");
  EXPECT_DOUBLE_EQ(r.limiting_fraction, 0.75);
}

TEST(Utilization, OverflowingDesignDoesNotFit) {
  const FpgaDevice d = xc7vx1140t();
  ResourceUsage u;
  u.luts = d.luts * 1.2;
  const UtilizationReport r = utilization(u, d);
  EXPECT_FALSE(r.fits);
  EXPECT_EQ(r.limiting_resource, "LUT");
}

TEST(Utilization, DspLimitedDesign) {
  const FpgaDevice d = xc7vx1140t();
  ResourceUsage u;
  u.dsps = d.dsps * 2.0;
  const UtilizationReport r = utilization(u, d);
  EXPECT_EQ(r.limiting_resource, "DSP");
  EXPECT_FALSE(r.fits);
}

}  // namespace
}  // namespace us3d::fpga
