#include "fpga/primitives.h"

#include <gtest/gtest.h>

#include "common/contracts.h"

namespace us3d::fpga {
namespace {

TEST(Primitives, AdderScalesWithWidth) {
  const ResourceUsage a16 = adder_cost(16);
  const ResourceUsage a32 = adder_cost(32);
  EXPECT_DOUBLE_EQ(a32.luts, 2.0 * a16.luts);
  EXPECT_DOUBLE_EQ(a16.ffs, 16.0);
  EXPECT_DOUBLE_EQ(adder_cost(16, /*registered=*/false).ffs, 0.0);
}

TEST(Primitives, ComparatorIsCheaperThanAdder) {
  EXPECT_LT(comparator_cost(26).luts, adder_cost(26).luts);
}

TEST(Primitives, LutMultiplierScalesWithProductOfWidths) {
  const double m18 = multiplier_lut_cost(18, 18).luts;
  const double m36 = multiplier_lut_cost(36, 18).luts;
  EXPECT_DOUBLE_EQ(m36, 2.0 * m18);
  // An 18x18 soft multiplier lands near the classic ~110-130 LUT range.
  EXPECT_GT(m18, 80.0);
  EXPECT_LT(m18, 150.0);
}

TEST(Primitives, DspMultiplierTiles) {
  EXPECT_DOUBLE_EQ(multiplier_dsp_cost(18, 18).dsps, 1.0);
  EXPECT_DOUBLE_EQ(multiplier_dsp_cost(25, 18).dsps, 1.0);
  EXPECT_DOUBLE_EQ(multiplier_dsp_cost(26, 18).dsps, 2.0);
  EXPECT_DOUBLE_EQ(multiplier_dsp_cost(26, 19).dsps, 4.0);
}

TEST(Primitives, RomPacks64BitsPerLut) {
  EXPECT_DOUBLE_EQ(lut_rom_cost(64.0).luts, 1.0);
  EXPECT_DOUBLE_EQ(lut_rom_cost(65.0).luts, 2.0);
  EXPECT_DOUBLE_EQ(lut_rom_cost(4900.0).luts, 77.0);
}

TEST(Primitives, BramHalfBlockFor1kx18) {
  // One 1k x 18b bank = half a 36 Kb block (the Fig. 4 design point).
  EXPECT_DOUBLE_EQ(bram36_blocks_for(1024, 18), 0.5);
  EXPECT_DOUBLE_EQ(bram36_blocks_for(1024, 14), 0.5);  // padded to 18
  EXPECT_DOUBLE_EQ(bram36_blocks_for(1024, 36), 1.0);
}

TEST(Primitives, BramCascadesWithDepth) {
  EXPECT_DOUBLE_EQ(bram36_blocks_for(2048, 18), 1.0);
  EXPECT_DOUBLE_EQ(bram36_blocks_for(4096, 18), 2.0);
}

TEST(Primitives, BramPaperCorrectionStore) {
  // 832e3 coefficients at 18 bits: ~406 blocks (~14.96 Mb padded).
  EXPECT_NEAR(bram36_blocks_for(832'000, 18), 406.5, 1.0);
}

TEST(Primitives, RejectBadArguments) {
  EXPECT_THROW(adder_cost(0), ContractViolation);
  EXPECT_THROW(multiplier_lut_cost(0, 8), ContractViolation);
  EXPECT_THROW(lut_rom_cost(-1.0), ContractViolation);
  EXPECT_THROW(bram36_blocks_for(0, 18), ContractViolation);
  EXPECT_THROW(bram36_blocks_for(100, 80), ContractViolation);
}

}  // namespace
}  // namespace us3d::fpga
