#include "fpga/tablefree_cost.h"

#include <gtest/gtest.h>

#include "common/contracts.h"

namespace us3d::fpga {
namespace {

const imaging::SystemConfig kPaper = imaging::paper_system();

delay::TableFreeEngine::TrackerStats nappe_stats() {
  delay::TableFreeEngine::TrackerStats s;
  s.evaluations = 1'000'000;
  s.total_steps = 17'000;  // ~1.7% steps/eval, as measured in nappe order
  s.max_steps_single_evaluation = 3;
  return s;
}

TEST(TableFreeUnitCost, AboutFourHundredLuts) {
  // Calibration anchor: 712k LUTs / ~400 LUT per unit ~= 1764 units = 42x42
  // supported channels (Table II).
  const ResourceUsage unit = tablefree_unit_cost(70);
  EXPECT_GT(unit.luts, 350.0);
  EXPECT_LT(unit.luts, 450.0);
  EXPECT_EQ(unit.bram36, 0.0);  // the whole point: no BRAM
  EXPECT_EQ(unit.dsps, 0.0);    // LUT-fabric multiplier
}

TEST(TableFreeUnitCost, GrowsWithSegmentCount) {
  EXPECT_GT(tablefree_unit_cost(140).luts, tablefree_unit_cost(70).luts);
}

TEST(TableFreeUnitCost, RejectsZeroSegments) {
  EXPECT_THROW(tablefree_unit_cost(0), ContractViolation);
}

TEST(TableFreeFeasibility, PaperTableIIRow) {
  const TableFreeFeasibility f =
      analyze_tablefree_fpga(kPaper, xc7vx1140t(), 70, nappe_stats());
  // "a transducer with only 42x42 elements" fits the device.
  EXPECT_NEAR(f.max_channels_side, 42, 1);
  // The full 100x100 fleet needs several devices.
  EXPECT_FALSE(f.full_probe_util.fits);
  EXPECT_GT(f.full_probe_util.lut_fraction, 4.0);
  // Normalized throughput: 10000 units x 167 MHz = 1.67 Tdelays/s.
  EXPECT_NEAR(f.normalized_delays_per_second, 1.67e12, 0.01e12);
  // Frame rate ~7.8-8.3 fps (Table II: 7.8).
  EXPECT_NEAR(f.frame_rate, 8.0, 0.5);
}

TEST(TableFreeFeasibility, UltraScaleSupportsMoreChannels) {
  // Sec. VI-B projection: a 2x-LUT part should roughly double unit count
  // (~59x59), approaching 100x100 with further generations.
  const TableFreeFeasibility v7 =
      analyze_tablefree_fpga(kPaper, xc7vx1140t(), 70, nappe_stats());
  const TableFreeFeasibility us =
      analyze_tablefree_fpga(kPaper, ultrascale_projection(), 70,
                             nappe_stats());
  EXPECT_GT(us.max_units_fitting, 1.9 * v7.max_units_fitting);
  EXPECT_GE(us.max_channels_side, 59);
}

TEST(TableFreeFeasibility, RegistersWellUnderLuts) {
  // Table II: registers 23% when LUTs are 100%.
  const TableFreeFeasibility f =
      analyze_tablefree_fpga(kPaper, xc7vx1140t(), 70, nappe_stats());
  const ResourceUsage fit =
      f.per_unit.scaled(static_cast<double>(f.max_units_fitting));
  const UtilizationReport util = utilization(fit, xc7vx1140t());
  EXPECT_NEAR(util.ff_fraction, 0.23, 0.04);
}

}  // namespace
}  // namespace us3d::fpga
