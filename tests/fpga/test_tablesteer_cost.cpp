#include "fpga/tablesteer_cost.h"

#include <gtest/gtest.h>

#include "common/contracts.h"

namespace us3d::fpga {
namespace {

const imaging::SystemConfig kPaper = imaging::paper_system();

hw::FabricConfig fabric_for(const delay::TableSteerConfig& ts) {
  hw::FabricConfig f;
  f.entry_format = ts.entry_format;
  return f;
}

TEST(TableSteerBlockCost, AddersAndBramPerBlock) {
  const ResourceUsage block = tablesteer_block_cost(hw::FabricConfig{});
  // 136 19-21 bit adders plus overhead: a few thousand LUTs.
  EXPECT_GT(block.luts, 4'000.0);
  EXPECT_LT(block.luts, 7'000.0);
  // One 1kx18 bank = half a 36 Kb block.
  EXPECT_DOUBLE_EQ(block.bram36, 0.5);
}

TEST(TableSteerFeasibility, EighteenBitTableIIRow) {
  const auto ts = delay::TableSteerConfig::bits18();
  const TableSteerFeasibility f =
      analyze_tablesteer_fpga(kPaper, xc7vx1140t(), fabric_for(ts), ts);
  // Table II: LUTs 100%, Registers 30%, BRAM 25%.
  EXPECT_NEAR(f.util.lut_fraction, 1.00, 0.05);
  EXPECT_NEAR(f.util.ff_fraction, 0.30, 0.05);
  EXPECT_NEAR(f.util.bram_fraction, 0.25, 0.02);
  EXPECT_TRUE(f.fabric.meets_realtime);
  EXPECT_NEAR(f.fabric.dram_bandwidth_bytes_per_second, 5.4e9, 0.2e9);
}

TEST(TableSteerFeasibility, FourteenBitTableIIRow) {
  const auto ts = delay::TableSteerConfig::bits14();
  const TableSteerFeasibility f =
      analyze_tablesteer_fpga(kPaper, xc7vx1140t(), fabric_for(ts), ts);
  // Table II: LUTs 91%, Registers 25%, BRAM 25% (14b pads to 18b ports).
  EXPECT_NEAR(f.util.lut_fraction, 0.91, 0.05);
  EXPECT_NEAR(f.util.ff_fraction, 0.25, 0.05);
  EXPECT_NEAR(f.util.bram_fraction, 0.25, 0.02);
  EXPECT_NEAR(f.fabric.dram_bandwidth_bytes_per_second, 4.2e9, 0.2e9);
}

TEST(TableSteerFeasibility, CorrectionsDominateBram) {
  const auto ts = delay::TableSteerConfig::bits18();
  const TableSteerFeasibility f =
      analyze_tablesteer_fpga(kPaper, xc7vx1140t(), fabric_for(ts), ts);
  // ~406 blocks of corrections vs 64 blocks of slice buffers.
  EXPECT_GT(f.corrections.bram36, 5.0 * 64.0);
}

TEST(TableSteerFeasibility, RejectsMismatchedFormats) {
  hw::FabricConfig f;
  f.entry_format = fx::kRefDelay14;
  EXPECT_THROW(analyze_tablesteer_fpga(kPaper, xc7vx1140t(), f,
                                       delay::TableSteerConfig::bits18()),
               ContractViolation);
}

TEST(TableSteerFeasibility, WiderFabricCostsMoreLuts) {
  hw::FabricConfig wide;
  wide.y_corrections = 32;  // 8 + 32*8 adders per block
  const ResourceUsage base = tablesteer_block_cost(hw::FabricConfig{});
  const ResourceUsage big = tablesteer_block_cost(wide);
  EXPECT_GT(big.luts, base.luts);
}

}  // namespace
}  // namespace us3d::fpga
