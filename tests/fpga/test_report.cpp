#include "fpga/report.h"

#include <gtest/gtest.h>

#include "common/contracts.h"

namespace us3d::fpga {
namespace {

Table2Inputs sample_inputs() {
  Table2Inputs in;
  in.segment_count = 70;
  in.tablefree = {0.25, 2.0};
  in.tablesteer14 = {1.55, 100.0};
  in.tablesteer18 = {1.44, 100.0};
  in.tablefree_stats.evaluations = 1'000'000;
  in.tablefree_stats.total_steps = 17'000;
  in.tablefree_stats.max_steps_single_evaluation = 3;
  return in;
}

TEST(Table2, HasThreeArchitectureRows) {
  const auto rows = generate_table2(imaging::paper_system(), xc7vx1140t(),
                                    sample_inputs());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].architecture, "TABLEFREE");
  EXPECT_EQ(rows[1].architecture, "TABLESTEER-14b");
  EXPECT_EQ(rows[2].architecture, "TABLESTEER-18b");
}

TEST(Table2, ShapeMatchesPaper) {
  const auto rows = generate_table2(imaging::paper_system(), xc7vx1140t(),
                                    sample_inputs());
  const Table2Row& tf = rows[0];
  const Table2Row& ts14 = rows[1];
  const Table2Row& ts18 = rows[2];

  // TABLEFREE: no BRAM, no off-chip traffic, lower clock, fewer channels.
  EXPECT_DOUBLE_EQ(tf.bram_fraction, 0.0);
  EXPECT_DOUBLE_EQ(tf.offchip_bytes_per_second, 0.0);
  EXPECT_DOUBLE_EQ(tf.clock_hz, 167.0e6);
  EXPECT_LT(tf.channels_x, 100);

  // TABLESTEER: BRAM-heavy, GB/s off-chip, full 100x100 support, ~2.5x
  // the frame rate.
  EXPECT_GT(ts18.bram_fraction, 0.2);
  EXPECT_GT(ts18.offchip_bytes_per_second, 4.0e9);
  EXPECT_EQ(ts18.channels_x, 100);
  EXPECT_GT(ts18.frame_rate, 2.0 * tf.frame_rate);
  EXPECT_GT(ts18.throughput_delays_per_second,
            tf.throughput_delays_per_second);

  // 14b variant trades accuracy for bandwidth, not throughput.
  EXPECT_LT(ts14.offchip_bytes_per_second, ts18.offchip_bytes_per_second);
  EXPECT_DOUBLE_EQ(ts14.throughput_delays_per_second,
                   ts18.throughput_delays_per_second);
  EXPECT_GT(ts14.inaccuracy.avg_off_samples, ts18.inaccuracy.avg_off_samples);
}

TEST(Table2, OnlyTableSteerMeetsRealtime15) {
  const auto rows = generate_table2(imaging::paper_system(), xc7vx1140t(),
                                    sample_inputs());
  EXPECT_LT(rows[0].frame_rate, 15.0);
  EXPECT_GT(rows[1].frame_rate, 15.0);
  EXPECT_GT(rows[2].frame_rate, 15.0);
}

TEST(Table2, RenderContainsAllRows) {
  const auto rows = generate_table2(imaging::paper_system(), xc7vx1140t(),
                                    sample_inputs());
  const std::string s = render_table2(rows).to_string();
  EXPECT_NE(s.find("TABLEFREE"), std::string::npos);
  EXPECT_NE(s.find("TABLESTEER-14b"), std::string::npos);
  EXPECT_NE(s.find("TABLESTEER-18b"), std::string::npos);
  EXPECT_NE(s.find("none"), std::string::npos);  // TABLEFREE off-chip BW
  EXPECT_NE(s.find("100x100"), std::string::npos);
}

TEST(Table2, RejectsMissingSegmentCount) {
  Table2Inputs in = sample_inputs();
  in.segment_count = 0;
  EXPECT_THROW(
      generate_table2(imaging::paper_system(), xc7vx1140t(), in),
      ContractViolation);
}

}  // namespace
}  // namespace us3d::fpga
