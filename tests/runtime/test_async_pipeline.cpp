// AsyncPipeline invariants. The headline properties: (1) the async
// bounded-queue pipeline produces volumes BIT-IDENTICAL to the serial
// Beamformer for every delay engine — overlap changes scheduling, never
// values; (2) K-origin compounding is bit-identical to beamforming each
// insonification serially and summing in shot order; (3) backpressure is
// real — try_submit refuses once the bounded queues and the VolumeRing
// are full — and failures (sink or worker) stop the stream with
// delivery-based accounting: frames means delivered, everything else is
// surfaced as dropped_frames.
#include "runtime/async_pipeline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "acoustic/echo_synth.h"
#include "acoustic/phantom.h"
#include "common/prng.h"
#include "delay/exact.h"
#include "delay/full_table.h"
#include "delay/synthetic_aperture.h"
#include "delay/tablefree.h"
#include "delay/tablesteer.h"
#include "probe/presets.h"

namespace us3d::runtime {
namespace {

using beamform::VolumeImage;

void expect_bit_identical(const VolumeImage& a, const VolumeImage& b,
                          const std::string& what) {
  const auto& s = a.spec();
  ASSERT_EQ(s.total_points(), b.spec().total_points()) << what;
  for (int it = 0; it < s.n_theta; ++it) {
    for (int ip = 0; ip < s.n_phi; ++ip) {
      for (int id = 0; id < s.n_depth; ++id) {
        ASSERT_EQ(a.at(it, ip, id), b.at(it, ip, id))
            << what << " differs at (" << it << "," << ip << "," << id << ")";
      }
    }
  }
}

acoustic::Phantom random_phantom(const imaging::SystemConfig& cfg,
                                 SplitMix64& rng, int scatterers) {
  const imaging::VolumeGrid grid(cfg.volume);
  acoustic::Phantom phantom;
  for (int i = 0; i < scatterers; ++i) {
    const int it = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(cfg.volume.n_theta)));
    const int ip = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(cfg.volume.n_phi)));
    const int id = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(cfg.volume.n_depth)));
    phantom.push_back(acoustic::PointScatterer{
        grid.focal_point(it, ip, id).position, rng.next_in(0.5, 1.5)});
  }
  return phantom;
}

probe::ApodizationMap rect_apod(const imaging::SystemConfig& cfg) {
  return probe::ApodizationMap(probe::MatrixProbe(cfg.probe),
                               probe::WindowKind::kRect);
}

/// One frame per entry of `origins`, sequence-numbered in order.
std::vector<EchoFrame> origin_frames(const imaging::SystemConfig& cfg,
                                     const std::vector<Vec3>& origins,
                                     std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<EchoFrame> frames;
  std::int64_t seq = 0;
  for (const Vec3& origin : origins) {
    acoustic::SynthesisOptions synth;
    synth.origin = origin;
    frames.push_back(EchoFrame{
        acoustic::synthesize_echoes(cfg, random_phantom(cfg, rng, 2), synth),
        origin, seq++});
  }
  return frames;
}

struct EngineCase {
  std::string label;
  std::function<std::unique_ptr<delay::DelayEngine>(
      const imaging::SystemConfig&)>
      make;
  /// Frame origins this engine accepts (SA cycles its plan; the
  /// fixed-table engines require the centred origin).
  std::vector<Vec3> origins_for(int frames) const {
    std::vector<Vec3> origins;
    for (int i = 0; i < frames; ++i) {
      origins.push_back(plan_origins.empty()
                            ? Vec3{}
                            : plan_origins[static_cast<std::size_t>(i) %
                                           plan_origins.size()]);
    }
    return origins;
  }
  std::vector<Vec3> plan_origins;  // empty for non-SA engines
};

std::vector<EngineCase> all_engines() {
  const delay::SyntheticAperturePlan plan = delay::diverging_wave_plan(3, 3.0e-3);
  std::vector<Vec3> sa_origins;
  for (const double z : plan.origin_z) sa_origins.push_back(Vec3{0.0, 0.0, z});
  return {
      {"EXACT",
       [](const imaging::SystemConfig& cfg) {
         return std::make_unique<delay::ExactDelayEngine>(cfg);
       },
       {}},
      {"TABLEFREE",
       [](const imaging::SystemConfig& cfg) {
         return std::make_unique<delay::TableFreeEngine>(cfg);
       },
       {}},
      {"TABLESTEER-18b",
       [](const imaging::SystemConfig& cfg) {
         return std::make_unique<delay::TableSteerEngine>(
             cfg, delay::TableSteerConfig::bits18());
       },
       {}},
      {"FULLTABLE",
       [](const imaging::SystemConfig& cfg) {
         return std::make_unique<delay::FullTableEngine>(cfg);
       },
       {}},
      {"TABLESTEER-SA",
       [plan](const imaging::SystemConfig& cfg) {
         return std::make_unique<delay::SyntheticApertureSteerEngine>(cfg,
                                                                      plan);
       },
       sa_origins},
  };
}

/// Per-frame serial references (one reconstruct per insonification).
std::vector<VolumeImage> serial_references(const imaging::SystemConfig& cfg,
                                           const EngineCase& c,
                                           const std::vector<EchoFrame>& frames) {
  const auto apod = rect_apod(cfg);
  const beamform::Beamformer serial(cfg, apod);
  std::vector<VolumeImage> refs;
  for (const EchoFrame& f : frames) {
    auto engine = c.make(cfg);
    refs.push_back(serial.reconstruct(f.echoes, *engine, {.origin = f.origin}));
  }
  return refs;
}

TEST(AsyncPipeline, OutputsMatchSerialForEveryEngineInOrder) {
  const imaging::SystemConfig cfg = imaging::scaled_system(6, 7, 20);
  const auto apod = rect_apod(cfg);
  for (const EngineCase& c : all_engines()) {
    auto frames = origin_frames(cfg, c.origins_for(4), 17);
    const auto refs = serial_references(cfg, c, frames);

    auto prototype = c.make(cfg);
    FramePipeline pipeline(cfg, apod, *prototype,
                           PipelineConfig{.worker_threads = 3});
    AsyncPipeline async(pipeline, AsyncOptions{.depth = 3});
    for (EchoFrame& f : frames) ASSERT_TRUE(async.submit(std::move(f)));
    std::vector<VolumeImage> received;
    std::vector<std::int64_t> order;
    const PipelineStats stats =
        async.finish([&](const VolumeImage& v, std::int64_t seq) {
          received.push_back(v);
          order.push_back(seq);
        });
    async.rethrow_if_failed();
    ASSERT_EQ(received.size(), refs.size()) << c.label;
    for (std::size_t i = 0; i < refs.size(); ++i) {
      EXPECT_EQ(order[i], static_cast<std::int64_t>(i)) << c.label;
      expect_bit_identical(refs[i], received[i],
                           c.label + " frame " + std::to_string(i));
    }
    EXPECT_EQ(stats.frames, 4);
    EXPECT_EQ(stats.insonifications, 4);
    EXPECT_EQ(stats.dropped_frames, 0);
  }
}

TEST(AsyncPipeline, CompoundedVolumesMatchTheSerialSumForEveryEngine) {
  const imaging::SystemConfig cfg = imaging::scaled_system(6, 7, 18);
  const auto apod = rect_apod(cfg);
  constexpr int kGroup = 3;
  constexpr int kFrames = 6;  // two full groups
  for (const EngineCase& c : all_engines()) {
    auto frames = origin_frames(cfg, c.origins_for(kFrames), 23);
    const auto refs = serial_references(cfg, c, frames);
    // Serial compounding reference: sum each group in shot order.
    std::vector<VolumeImage> compounds;
    for (int g = 0; g < kFrames / kGroup; ++g) {
      VolumeImage acc = refs[static_cast<std::size_t>(g * kGroup)];
      for (int k = 1; k < kGroup; ++k) {
        acc.add(refs[static_cast<std::size_t>(g * kGroup + k)]);
      }
      compounds.push_back(std::move(acc));
    }

    auto prototype = c.make(cfg);
    FramePipeline pipeline(cfg, apod, *prototype,
                           PipelineConfig{.worker_threads = 2});
    AsyncPipeline async(pipeline,
                        AsyncOptions{.depth = 2, .compound_origins = kGroup});
    for (EchoFrame& f : frames) ASSERT_TRUE(async.submit(std::move(f)));
    std::vector<VolumeImage> received;
    std::vector<std::int64_t> order;
    const PipelineStats stats =
        async.finish([&](const VolumeImage& v, std::int64_t seq) {
          received.push_back(v);
          order.push_back(seq);
        });
    async.rethrow_if_failed();
    ASSERT_EQ(received.size(), compounds.size()) << c.label;
    for (std::size_t g = 0; g < compounds.size(); ++g) {
      // The compound volume is tagged with its last insonification.
      EXPECT_EQ(order[g], static_cast<std::int64_t>((g + 1) * kGroup - 1))
          << c.label;
      expect_bit_identical(compounds[g], received[g],
                           c.label + " compound " + std::to_string(g));
    }
    EXPECT_EQ(stats.frames, kFrames / kGroup);
    EXPECT_EQ(stats.insonifications, kFrames);
    EXPECT_EQ(stats.dropped_frames, 0);
    EXPECT_EQ(stats.compound.count, kFrames);  // one record per shot summed
    EXPECT_EQ(stats.beamform.count, kFrames);
  }
}

TEST(AsyncPipeline, PartialTailGroupIsDeliveredNotDropped) {
  const imaging::SystemConfig cfg = imaging::scaled_system(5, 6, 14);
  const auto apod = rect_apod(cfg);
  auto frames = origin_frames(cfg, std::vector<Vec3>(5, Vec3{}), 31);
  delay::TableFreeEngine prototype(cfg);
  FramePipeline pipeline(cfg, apod, prototype,
                         PipelineConfig{.worker_threads = 2});
  AsyncPipeline async(pipeline,
                      AsyncOptions{.depth = 2, .compound_origins = 3});
  for (EchoFrame& f : frames) ASSERT_TRUE(async.submit(std::move(f)));
  std::vector<std::int64_t> order;
  const PipelineStats stats = async.finish(
      [&](const VolumeImage&, std::int64_t seq) { order.push_back(seq); });
  async.rethrow_if_failed();
  // 5 shots at K=3: one full group (seq 2) and one partial tail (seq 4).
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 4);
  EXPECT_EQ(stats.frames, 2);
  EXPECT_EQ(stats.insonifications, 5);
  EXPECT_EQ(stats.dropped_frames, 0);
}

TEST(AsyncPipeline, TrySubmitBackpressuresWithoutAConsumer) {
  const imaging::SystemConfig cfg = imaging::scaled_system(5, 6, 14);
  const auto apod = rect_apod(cfg);
  const auto frames = origin_frames(cfg, std::vector<Vec3>(1, Vec3{}), 41);
  delay::TableFreeEngine prototype(cfg);
  FramePipeline pipeline(cfg, apod, prototype,
                         PipelineConfig{.worker_threads = 2});
  AsyncPipeline async(pipeline, AsyncOptions{.depth = 1});
  // Nobody polls: in-flight work is bounded by the input queue (1), the
  // beamformed hand-off (1) and the single ring slot, so refusal MUST
  // come within a handful of accepted frames no matter how fast the
  // beamform stage is.
  int accepted = 0;
  while (accepted < 16) {
    EchoFrame f = frames[0];
    f.sequence = accepted;
    if (!async.try_submit(f)) break;
    ++accepted;
  }
  EXPECT_GE(accepted, 1);
  EXPECT_LT(accepted, 16) << "try_submit never refused: no backpressure";
  // Draining delivers exactly what was accepted — nothing lost, nothing
  // invented.
  int delivered = 0;
  const PipelineStats stats =
      async.finish([&](const VolumeImage&, std::int64_t) { ++delivered; });
  async.rethrow_if_failed();
  EXPECT_EQ(delivered, accepted);
  EXPECT_EQ(stats.frames, accepted);
  EXPECT_EQ(stats.insonifications, accepted);
  EXPECT_EQ(stats.dropped_frames, 0);
}

TEST(AsyncPipeline, PollIsNonBlockingAndFlushIsExhaustive) {
  const imaging::SystemConfig cfg = imaging::scaled_system(5, 6, 14);
  const auto apod = rect_apod(cfg);
  auto frames = origin_frames(cfg, std::vector<Vec3>(3, Vec3{}), 43);
  delay::TableFreeEngine prototype(cfg);
  FramePipeline pipeline(cfg, apod, prototype,
                         PipelineConfig{.worker_threads = 2});
  AsyncPipeline async(pipeline, AsyncOptions{.depth = 2});
  int delivered = 0;
  const VolumeSink count = [&](const VolumeImage&, std::int64_t) {
    ++delivered;
  };
  EXPECT_FALSE(async.poll(count));  // nothing submitted yet
  for (EchoFrame& f : frames) ASSERT_TRUE(async.submit(std::move(f)));
  async.flush(count);  // blocks until all 3 are beamformed and delivered
  EXPECT_EQ(delivered, 3);
  const PipelineStats stats = async.finish(count);
  async.rethrow_if_failed();
  EXPECT_EQ(delivered, 3);  // finish found nothing left
  EXPECT_EQ(stats.frames, 3);
}

TEST(AsyncPipeline, SinkFailureStopsTheStreamAndCountsDrops) {
  const imaging::SystemConfig cfg = imaging::scaled_system(5, 6, 14);
  const auto apod = rect_apod(cfg);
  delay::TableFreeEngine prototype(cfg);
  FramePipeline pipeline(cfg, apod, prototype,
                         PipelineConfig{.worker_threads = 2});
  AsyncPipeline async(pipeline, AsyncOptions{.depth = 2});
  const auto frames = origin_frames(cfg, std::vector<Vec3>(4, Vec3{}), 47);
  const VolumeSink failing = [](const VolumeImage&, std::int64_t) {
    throw std::runtime_error("sink failed");
  };
  EchoFrame f0 = frames[0];
  ASSERT_TRUE(async.submit(std::move(f0)));
  async.flush(failing);  // delivery attempt fails the pipeline
  EXPECT_TRUE(async.failed());
  EchoFrame f1 = frames[1];
  EXPECT_FALSE(async.submit(std::move(f1)));  // refused after failure
  const PipelineStats stats = async.finish(failing);
  EXPECT_EQ(stats.frames, 0);          // delivered means delivered
  EXPECT_EQ(stats.insonifications, 1);
  EXPECT_EQ(stats.dropped_frames, 1);  // the failed delivery is not lost
  EXPECT_THROW(async.rethrow_if_failed(), std::runtime_error);
}

TEST(AsyncPipeline, SetQueueDepthShrinksAndRegrowsTheBoundMidStream) {
  const imaging::SystemConfig cfg = imaging::scaled_system(5, 6, 14);
  const auto apod = rect_apod(cfg);
  delay::TableFreeEngine prototype(cfg);
  FramePipeline pipeline(cfg, apod, prototype,
                         PipelineConfig{.worker_threads = 2});
  AsyncPipeline async(pipeline, AsyncOptions{.depth = 4});
  EXPECT_EQ(async.queue_depth(), 4);
  EXPECT_EQ(async.ring_slots(), 4);

  auto frames = origin_frames(cfg, std::vector<Vec3>(6, Vec3{}), 59);
  // Shrink mid-stream: already-queued work is never dropped, the tighter
  // bound only refuses new submissions earlier.
  ASSERT_TRUE(async.submit(EchoFrame{frames[0]}));
  async.set_queue_depth(1);
  EXPECT_EQ(async.queue_depth(), 1);
  int accepted = 1;
  for (int i = 1; i < 6; ++i) {
    EchoFrame f = frames[static_cast<std::size_t>(i)];
    if (async.try_submit(f)) ++accepted;
  }
  EXPECT_LT(accepted, 6) << "a depth-1 bound must refuse an instant burst";

  // Regrow and stream the rest through.
  async.set_queue_depth(4);
  for (int i = accepted; i < 6; ++i) {
    EchoFrame f = frames[static_cast<std::size_t>(i)];
    f.sequence = i;
    ASSERT_TRUE(async.submit(std::move(f)));
  }
  int delivered = 0;
  const PipelineStats stats =
      async.finish([&](const VolumeImage&, std::int64_t) { ++delivered; });
  async.rethrow_if_failed();
  EXPECT_EQ(delivered, 6);
  EXPECT_EQ(stats.frames, 6);
  EXPECT_EQ(stats.dropped_frames, 0);
  EXPECT_EQ(stats.queue_depth, 4);  // the latest configured depth
  EXPECT_EQ(stats.ring_slots, 4);   // the allocation never changed
}

TEST(AsyncPipeline, ConcurrentScrapeNeverObservesATornLedger) {
  // Regression: submit() used to count acceptance only after the blocking
  // queue push, so a delivery racing the push could bump frames while
  // submitted_ still excluded that insonification — a scraper would see
  // frames > insonifications. The fix counts acceptance optimistically
  // (increment before the push, roll back on refusal), making
  // delivered <= submitted hold at every instant.
  const imaging::SystemConfig cfg = imaging::scaled_system(5, 6, 14);
  const auto apod = rect_apod(cfg);
  delay::TableFreeEngine prototype(cfg);
  FramePipeline pipeline(cfg, apod, prototype,
                         PipelineConfig{.worker_threads = 2});
  AsyncPipeline async(pipeline, AsyncOptions{.depth = 2});
  const auto frames = origin_frames(cfg, std::vector<Vec3>(1, Vec3{}), 61);

  std::atomic<bool> done{false};
  std::atomic<int> torn{0};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      const PipelineStats snap = async.stats_snapshot();
      if (snap.frames > snap.insonifications) {
        torn.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::yield();
    }
  });

  constexpr int kFrames = 24;
  int delivered = 0;
  const VolumeSink count = [&](const VolumeImage&, std::int64_t) {
    ++delivered;
  };
  // try_submit + poll-on-refusal: a blocking submit with no concurrent
  // consumer would wedge once both ring slots sit in undelivered outputs
  // (the documented backpressure contract), and the refusal/delivery
  // interleaving is exactly what keeps submits racing deliveries here.
  int submitted = 0;
  while (submitted < kFrames) {
    EchoFrame f = frames[0];
    f.sequence = submitted;
    if (async.try_submit(f)) {
      ++submitted;
    } else {
      async.poll(count);
    }
  }
  async.flush(count);
  done.store(true, std::memory_order_release);
  scraper.join();
  async.rethrow_if_failed();
  EXPECT_EQ(torn.load(), 0) << "a scrape observed frames > insonifications";
  const PipelineStats stats = async.finish(count);
  EXPECT_EQ(stats.frames, kFrames);
  EXPECT_EQ(stats.insonifications, kFrames);
  EXPECT_EQ(stats.dropped_frames, 0);
}

TEST(AsyncPipeline, DestructionWithoutFinishDoesNotHang) {
  const imaging::SystemConfig cfg = imaging::scaled_system(5, 6, 14);
  const auto apod = rect_apod(cfg);
  delay::TableFreeEngine prototype(cfg);
  FramePipeline pipeline(cfg, apod, prototype,
                         PipelineConfig{.worker_threads = 2});
  auto frames = origin_frames(cfg, std::vector<Vec3>(3, Vec3{}), 53);
  {
    AsyncPipeline async(pipeline, AsyncOptions{.depth = 1});
    for (EchoFrame& f : frames) {
      if (!async.try_submit(f)) break;
    }
    // No poll, no finish: the destructor must shut the stages down.
  }
  SUCCEED();
}

}  // namespace
}  // namespace us3d::runtime
