#include "runtime/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/contracts.h"

namespace us3d::runtime {
namespace {

TEST(WorkerPool, RunsEveryTaskExactlyOnce) {
  for (const int threads : {1, 2, 4, 7}) {
    WorkerPool pool(threads);
    EXPECT_EQ(pool.thread_count(), threads);
    std::vector<std::atomic<int>> hits(37);
    pool.run(37, [&](int task) { hits[static_cast<std::size_t>(task)]++; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(WorkerPool, ParallelismCapStillRunsEveryTaskExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.parallelism_cap(), 4);
  for (const int cap : {1, 2, 3, 4}) {
    pool.set_parallelism_cap(cap);
    EXPECT_EQ(pool.parallelism_cap(), cap);
    std::vector<std::atomic<int>> hits(23);
    pool.run(23, [&](int task) { hits[static_cast<std::size_t>(task)]++; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(WorkerPool, ParallelismCapBoundsConcurrentClaimants) {
  WorkerPool pool(4);
  pool.set_parallelism_cap(1);
  // With a cap of 1 only the caller drains, so the observed concurrency
  // during the job can never exceed 1.
  std::atomic<int> active{0};
  std::atomic<int> peak{0};
  pool.run(16, [&](int) {
    const int now = ++active;
    int prev = peak.load();
    while (now > prev && !peak.compare_exchange_weak(prev, now)) {
    }
    --active;
  });
  EXPECT_EQ(peak.load(), 1);
}

TEST(WorkerPool, ParallelismCapClampsAndRejectsZero) {
  WorkerPool pool(2);
  pool.set_parallelism_cap(99);
  EXPECT_EQ(pool.parallelism_cap(), 2);
  EXPECT_THROW(pool.set_parallelism_cap(0), ContractViolation);
}

TEST(WorkerPool, ZeroTasksIsANoOp) {
  WorkerPool pool(3);
  pool.run(0, [](int) { FAIL() << "no task should run"; });
}

TEST(WorkerPool, ReusableAcrossManyJobs) {
  WorkerPool pool(4);
  std::atomic<long> sum{0};
  for (int job = 0; job < 50; ++job) {
    pool.run(8, [&](int task) { sum += task; });
  }
  EXPECT_EQ(sum.load(), 50 * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
}

TEST(WorkerPool, RapidJobsWithCapFlappingRunEveryTaskExactlyOnce) {
  // Regression: drain_job() used to re-read the guarded job_ pointer
  // OUTSIDE the lock when invoking the task, so a claimant delayed
  // between claiming a task index and calling the function could race
  // run() installing the next job and invoke the wrong (or a destroyed)
  // callable. The fix snapshots the pointer under the lock at claim
  // time. Back-to-back jobs plus a cap-flapping thread maximise both
  // job turnover and claimant wakeups.
  WorkerPool pool(4);
  std::atomic<bool> done{false};
  std::thread flapper([&] {
    int cap = 1;
    while (!done.load(std::memory_order_acquire)) {
      pool.set_parallelism_cap(cap);
      cap = (cap % 4) + 1;
    }
  });
  for (int job = 0; job < 200; ++job) {
    std::vector<std::atomic<int>> hits(16);
    pool.run(16, [&hits, job](int task) {
      // Tag the check with the job index: a cross-job invocation would
      // double-hit a slot of the wrong job's vector.
      ASSERT_LT(task, 16) << "job " << job;
      hits[static_cast<std::size_t>(task)]++;
    });
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1) << "job " << job;
  }
  done.store(true, std::memory_order_release);
  flapper.join();
}

TEST(WorkerPool, PropagatesTheFirstTaskException) {
  WorkerPool pool(3);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.run(10,
               [&](int task) {
                 ran++;
                 if (task == 4) throw std::runtime_error("task 4 failed");
               }),
      std::runtime_error);
  // All tasks still ran: a failed task does not strand the others.
  EXPECT_EQ(ran.load(), 10);
  // And the pool is still usable afterwards.
  std::atomic<int> again{0};
  pool.run(5, [&](int) { again++; });
  EXPECT_EQ(again.load(), 5);
}

TEST(WorkerPool, RejectsBadArguments) {
  EXPECT_THROW(WorkerPool(0), ContractViolation);
  WorkerPool pool(2);
  EXPECT_THROW(pool.run(-1, [](int) {}), ContractViolation);
}

}  // namespace
}  // namespace us3d::runtime
