// BoundedQueue and VolumeRing — the backpressure primitives of the async
// runtime. The properties that matter: FIFO order under concurrency,
// capacity is a hard bound (try_push refuses, push parks), close() is a
// graceful end-of-stream (producers refused, consumers drain then read
// nullopt), and the ring recycles exactly its N slots with acquire()
// blocking once all are in flight.
#include "runtime/bounded_queue.h"

#include <gtest/gtest.h>

#include <optional>
#include <thread>
#include <vector>

#include "common/contracts.h"
#include "imaging/system_config.h"
#include "runtime/volume_ring.h"

namespace us3d::runtime {
namespace {

TEST(BoundedQueue, FifoOrderSingleThread) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 4; ++i) {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, TryPushRefusesWhenFullWithoutConsumingTheItem) {
  BoundedQueue<int> q(2);
  int item = 7;
  EXPECT_TRUE(q.try_push(item));
  item = 8;
  EXPECT_TRUE(q.try_push(item));
  item = 9;
  EXPECT_FALSE(q.try_push(item));
  EXPECT_EQ(item, 9);  // refused item stays with the caller
  EXPECT_EQ(q.size(), 2u);
  (void)q.pop();
  EXPECT_TRUE(q.try_push(item));  // space freed -> accepted again
}

TEST(BoundedQueue, PushBlocksUntilSpaceFrees) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.push(1));
  std::thread producer([&] { EXPECT_TRUE(q.push(2)); });
  // The producer is parked on the full queue until this pop.
  const auto first = q.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 1);
  const auto second = q.pop();  // blocks until the producer lands
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, 2);
  producer.join();
}

TEST(BoundedQueue, CloseDrainsThenSignalsEndOfStream) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));  // refused after close
  int item = 4;
  EXPECT_FALSE(q.try_push(item));
  EXPECT_EQ(q.pop(), std::make_optional(1));  // remaining items drain
  EXPECT_EQ(q.pop(), std::make_optional(2));
  EXPECT_FALSE(q.pop().has_value());  // end of stream
}

TEST(BoundedQueue, CloseWakesABlockedConsumer) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  q.close();
  consumer.join();
}

TEST(BoundedQueue, ConcurrentProducerConsumerPreservesOrder) {
  BoundedQueue<int> q(3);
  constexpr int kItems = 2000;
  std::vector<int> received;
  received.reserve(kItems);
  std::thread consumer([&] {
    while (auto v = q.pop()) received.push_back(*v);
  });
  for (int i = 0; i < kItems; ++i) ASSERT_TRUE(q.push(i));
  q.close();
  consumer.join();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
}

TEST(BoundedQueue, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedQueue<int>(0), ContractViolation);
}

TEST(BoundedQueue, SetCapacityGrowsAndShrinksTheBoundWithoutDroppingItems) {
  BoundedQueue<int> q(1);
  int v = 1;
  EXPECT_TRUE(q.try_push(v));
  int w = 2;
  EXPECT_FALSE(q.try_push(w));
  q.set_capacity(3);
  EXPECT_EQ(q.capacity(), 3u);
  EXPECT_TRUE(q.try_push(w));
  int x = 3;
  EXPECT_TRUE(q.try_push(x));
  // Shrinking below the fill level refuses new pushes but keeps what is
  // queued; draining below the new bound re-admits.
  q.set_capacity(1);
  int y = 4;
  EXPECT_FALSE(q.try_push(y));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_TRUE(q.try_push(y));
  EXPECT_EQ(q.pop(), 4);
  EXPECT_THROW(q.set_capacity(0), ContractViolation);
}

TEST(BoundedQueue, SetCapacityWakesABlockedProducer) {
  BoundedQueue<int> q(1);
  int v = 1;
  ASSERT_TRUE(q.try_push(v));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.push(2);  // blocks: the queue is full at capacity 1
    pushed.store(true);
  });
  q.set_capacity(2);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.size(), 2u);
}

imaging::VolumeSpec tiny_spec() {
  return imaging::scaled_system(4, 5, 6).volume;
}

TEST(VolumeRing, HandsOutExactlyItsSlots) {
  VolumeRing ring(tiny_spec(), 3);
  EXPECT_EQ(ring.slots(), 3);
  EXPECT_EQ(ring.free_count(), 3);
  const int a = ring.acquire();
  const int b = ring.acquire();
  const int c = ring.acquire();
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a, c);
  EXPECT_EQ(ring.free_count(), 0);
  EXPECT_EQ(ring.try_acquire(), -1);  // all in flight
  ring.release(b);
  EXPECT_EQ(ring.try_acquire(), b);  // recycled, no allocation
  ring.release(a);
  ring.release(b);
  ring.release(c);
}

TEST(VolumeRing, ActiveSlotCapLimitsInFlightWithoutReallocation) {
  VolumeRing ring(tiny_spec(), 3);
  EXPECT_EQ(ring.active_slots(), 3);
  ring.set_active_slots(1);
  EXPECT_EQ(ring.active_slots(), 1);
  const int a = ring.try_acquire();
  ASSERT_GE(a, 0);
  EXPECT_EQ(ring.try_acquire(), -1);  // capped: 2 slots still allocated
  EXPECT_EQ(ring.free_count(), 2);
  // Growing the cap re-admits waiters; the clamp keeps it within the
  // allocation.
  ring.set_active_slots(99);
  EXPECT_EQ(ring.active_slots(), 3);
  const int b = ring.try_acquire();
  EXPECT_GE(b, 0);
  ring.release(a);
  ring.release(b);
  EXPECT_THROW(ring.set_active_slots(0), ContractViolation);
}

TEST(VolumeRing, ShrinkingTheCapBelowInFlightDrainsGracefully) {
  VolumeRing ring(tiny_spec(), 2);
  const int a = ring.acquire();
  const int b = ring.acquire();
  ring.set_active_slots(1);
  EXPECT_EQ(ring.try_acquire(), -1);
  ring.release(a);
  // Still over the cap: one in flight equals the cap of one.
  EXPECT_EQ(ring.try_acquire(), -1);
  ring.release(b);
  EXPECT_GE(ring.try_acquire(), 0);  // back under the cap
}

TEST(VolumeRing, AcquireBlocksUntilRelease) {
  VolumeRing ring(tiny_spec(), 1);
  const int slot = ring.acquire();
  ASSERT_EQ(slot, 0);
  int reacquired = -2;
  std::thread waiter([&] { reacquired = ring.acquire(); });
  ring.release(slot);
  waiter.join();
  EXPECT_EQ(reacquired, slot);
  ring.release(slot);
}

TEST(VolumeRing, CloseUnblocksWaitersWithSentinel) {
  VolumeRing ring(tiny_spec(), 1);
  const int slot = ring.acquire();
  std::thread waiter([&] { EXPECT_EQ(ring.acquire(), -1); });
  ring.close();
  waiter.join();
  EXPECT_EQ(ring.try_acquire(), -1);  // closed ring refuses new work
  ring.release(slot);                 // release still works after close
}

TEST(VolumeRing, VolumesMatchTheSpecAndPersistAcrossRecycling) {
  const auto spec = tiny_spec();
  VolumeRing ring(spec, 2);
  const int slot = ring.acquire();
  EXPECT_EQ(ring[slot].voxel_count(), spec.total_points());
  ring[slot].at(0, 0, 0) = 42.0f;
  ring.release(slot);
  const int again = ring.try_acquire();
  ASSERT_GE(again, 0);
  // Slots are reused, not reallocated: the stale value is still there
  // (the beamform stage overwrites every voxel it owns).
  if (again == slot) {
    EXPECT_EQ(ring[again].at(0, 0, 0), 42.0f);
  }
  ring.release(again);
}

}  // namespace
}  // namespace us3d::runtime
