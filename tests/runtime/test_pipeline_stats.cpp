#include "runtime/pipeline_stats.h"

#include <gtest/gtest.h>

namespace us3d::runtime {
namespace {

TEST(StageStats, RecordsMinMeanMax) {
  StageStats s;
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.mean_s(), 0.0);
  s.record(0.010);
  s.record(0.030);
  s.record(0.020);
  EXPECT_EQ(s.count, 3);
  EXPECT_DOUBLE_EQ(s.min_s, 0.010);
  EXPECT_DOUBLE_EQ(s.max_s, 0.030);
  EXPECT_DOUBLE_EQ(s.mean_s(), 0.020);
}

TEST(StageStats, MergeMatchesDirectRecording) {
  StageStats a, b, all;
  for (const double v : {0.010, 0.030}) {
    a.record(v);
    all.record(v);
  }
  for (const double v : {0.005, 0.040}) {
    b.record(v);
    all.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count, all.count);
  EXPECT_DOUBLE_EQ(a.min_s, all.min_s);
  EXPECT_DOUBLE_EQ(a.max_s, all.max_s);
  EXPECT_DOUBLE_EQ(a.total_s, all.total_s);
  // Merging an empty accumulator changes nothing, in either direction.
  StageStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count, all.count);
  empty.merge(b);
  EXPECT_DOUBLE_EQ(empty.min_s, b.min_s);
  EXPECT_EQ(empty.count, b.count);
}

TEST(PipelineStats, ThroughputDerivesFromWallClock) {
  PipelineStats p;
  p.frames = 30;
  p.voxels = 30 * 1000;
  p.wall_s = 2.0;
  EXPECT_DOUBLE_EQ(p.sustained_fps(), 15.0);
  EXPECT_DOUBLE_EQ(p.voxels_per_second(), 15000.0);
}

TEST(PipelineStats, EmptyStatsAreSafe) {
  const PipelineStats p;
  EXPECT_DOUBLE_EQ(p.sustained_fps(), 0.0);
  EXPECT_DOUBLE_EQ(p.voxels_per_second(), 0.0);
  EXPECT_FALSE(p.to_string().empty());
  EXPECT_FALSE(p.to_json().empty());
}

TEST(PipelineStats, JsonCarriesTheBenchContractKeys) {
  PipelineStats p;
  p.frames = 4;
  p.worker_threads = 2;
  p.wall_s = 1.0;
  p.beamform.record(0.25);
  const std::string json = p.to_json();
  // The bench contract: keys only grow, never get renamed. The async
  // runtime added insonifications / dropped_frames / compound; the static
  // analysis pass added the raw voxels ledger (previously only the derived
  // voxels_per_second was emitted, so a consumer could not reconstruct the
  // delivered-voxel count from the JSON).
  for (const char* key :
       {"\"frames\"", "\"insonifications\"", "\"dropped_frames\"",
        "\"voxels\"", "\"worker_threads\"", "\"queue_depth\"",
        "\"ring_slots\"", "\"wall_s\"", "\"sustained_fps\"",
        "\"voxels_per_second\"", "\"ingest\"", "\"beamform\"",
        "\"compound\"", "\"consume\"", "\"mean_ms\"", "\"min_ms\"",
        "\"max_ms\"", "\"total_ms\"", "\"count\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
  EXPECT_NE(json.find("\"voxels\":0"), std::string::npos);
}

TEST(PipelineStats, DepthAndRingSlotsReportConfiguredVersusAdaptive) {
  PipelineStats p;
  p.queue_depth = 2;
  p.ring_slots = 4;
  const std::string json = p.to_json();
  EXPECT_NE(json.find("\"queue_depth\":2"), std::string::npos);
  EXPECT_NE(json.find("\"ring_slots\":4"), std::string::npos);
  EXPECT_NE(p.to_string().find("depth 2/4"), std::string::npos);
}

TEST(PipelineStats, LifetimeCoherenceInvariant) {
  PipelineStats p;
  EXPECT_TRUE(p.lifetime_coherent());
  p.frames = 2;
  p.insonifications = 5;
  p.dropped_frames = 3;
  EXPECT_TRUE(p.lifetime_coherent());
  p.dropped_frames = -1;
  EXPECT_FALSE(p.lifetime_coherent());
  p.dropped_frames = 0;
  p.frames = 9;  // delivered more than accepted: incoherent
  EXPECT_FALSE(p.lifetime_coherent());
}

TEST(PipelineStats, DroppedFramesSurfaceInTheSummary) {
  PipelineStats p;
  p.frames = 2;
  p.insonifications = 5;
  p.dropped_frames = 3;
  const std::string text = p.to_string();
  EXPECT_NE(text.find("DROPPED"), std::string::npos) << text;
  EXPECT_NE(p.to_json().find("\"dropped_frames\":3"), std::string::npos);
  // Healthy runs do not shout about drops.
  PipelineStats healthy;
  healthy.frames = 2;
  healthy.insonifications = 2;
  EXPECT_EQ(healthy.to_string().find("DROPPED"), std::string::npos);
}

}  // namespace
}  // namespace us3d::runtime
