// FramePipeline invariants. The headline property — the reason the runtime
// may parallelize order-sensitive engines at all — is that parallel
// reconstruction is BIT-IDENTICAL to the serial Beamformer::reconstruct for
// every delay engine, every scan order and every thread count, because
// delay values depend only on (origin, focal point). The property tests
// sweep seeded-random system configurations to pin this down, and the
// streaming tests check ordering, double buffering and stats plumbing.
#include "runtime/frame_pipeline.h"

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "acoustic/echo_synth.h"
#include "acoustic/phantom.h"
#include "common/contracts.h"
#include "common/prng.h"
#include "runtime/async_pipeline.h"
#include "delay/exact.h"
#include "delay/full_table.h"
#include "delay/synthetic_aperture.h"
#include "delay/tablefree.h"
#include "delay/tablesteer.h"
#include "probe/presets.h"

namespace us3d::runtime {
namespace {

using beamform::VolumeImage;

struct EngineCase {
  std::string label;
  std::function<std::unique_ptr<delay::DelayEngine>(
      const imaging::SystemConfig&)>
      make;
};

std::vector<EngineCase> pipeline_engines() {
  return {
      {"EXACT",
       [](const imaging::SystemConfig& cfg) {
         return std::make_unique<delay::ExactDelayEngine>(cfg);
       }},
      {"TABLEFREE",
       [](const imaging::SystemConfig& cfg) {
         return std::make_unique<delay::TableFreeEngine>(cfg);
       }},
      {"TABLESTEER-18b",
       [](const imaging::SystemConfig& cfg) {
         return std::make_unique<delay::TableSteerEngine>(
             cfg, delay::TableSteerConfig::bits18());
       }},
      {"FULLTABLE",
       [](const imaging::SystemConfig& cfg) {
         return std::make_unique<delay::FullTableEngine>(cfg);
       }},
  };
}

/// Voxel-for-voxel equality (float ==, no tolerance).
void expect_bit_identical(const VolumeImage& a, const VolumeImage& b,
                          const std::string& what) {
  const auto& s = a.spec();
  ASSERT_EQ(s.total_points(), b.spec().total_points()) << what;
  for (int it = 0; it < s.n_theta; ++it) {
    for (int ip = 0; ip < s.n_phi; ++ip) {
      for (int id = 0; id < s.n_depth; ++id) {
        ASSERT_EQ(a.at(it, ip, id), b.at(it, ip, id))
            << what << " differs at (" << it << "," << ip << "," << id << ")";
      }
    }
  }
}

acoustic::Phantom random_phantom(const imaging::SystemConfig& cfg,
                                 SplitMix64& rng, int scatterers) {
  const imaging::VolumeGrid grid(cfg.volume);
  acoustic::Phantom phantom;
  for (int i = 0; i < scatterers; ++i) {
    const int it = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(cfg.volume.n_theta)));
    const int ip = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(cfg.volume.n_phi)));
    const int id = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(cfg.volume.n_depth)));
    phantom.push_back(acoustic::PointScatterer{
        grid.focal_point(it, ip, id).position, rng.next_in(0.5, 1.5)});
  }
  return phantom;
}

probe::ApodizationMap rect_apod(const imaging::SystemConfig& cfg) {
  return probe::ApodizationMap(probe::MatrixProbe(cfg.probe),
                               probe::WindowKind::kRect);
}

TEST(FramePipeline, ParallelIsBitIdenticalToSerialForEveryEngine) {
  const imaging::SystemConfig cfg = imaging::scaled_system(8, 9, 30);
  SplitMix64 rng(42);
  const auto echoes =
      acoustic::synthesize_echoes(cfg, random_phantom(cfg, rng, 3));
  const auto apod = rect_apod(cfg);
  const beamform::Beamformer serial(cfg, apod);

  for (const EngineCase& c : pipeline_engines()) {
    auto serial_engine = c.make(cfg);
    const VolumeImage reference = serial.reconstruct(echoes, *serial_engine);
    for (const int threads : {1, 2, 3, 8}) {
      auto prototype = c.make(cfg);
      FramePipeline pipeline(cfg, apod, *prototype,
                             PipelineConfig{.worker_threads = threads});
      const VolumeImage parallel = pipeline.reconstruct_frame(echoes, Vec3{});
      expect_bit_identical(reference, parallel,
                           c.label + " threads=" + std::to_string(threads));
    }
  }
}

TEST(FramePipeline, BitIdenticalInBothScanOrders) {
  const imaging::SystemConfig cfg = imaging::scaled_system(6, 8, 24);
  SplitMix64 rng(7);
  const auto echoes =
      acoustic::synthesize_echoes(cfg, random_phantom(cfg, rng, 2));
  const auto apod = rect_apod(cfg);
  const beamform::Beamformer serial(cfg, apod);
  for (const imaging::ScanOrder order :
       {imaging::ScanOrder::kNappeByNappe,
        imaging::ScanOrder::kScanlineByScanline}) {
    delay::TableFreeEngine engine(cfg);
    const VolumeImage reference =
        serial.reconstruct(echoes, engine, {.order = order});
    delay::TableFreeEngine prototype(cfg);
    FramePipeline pipeline(
        cfg, apod, prototype,
        PipelineConfig{.worker_threads = 4, .order = order});
    expect_bit_identical(reference, pipeline.reconstruct_frame(echoes, Vec3{}),
                         std::string("order=") + to_string(order));
  }
}

TEST(FramePipeline, PropertyRandomConfigsStayBitIdentical) {
  // Seeded-PRNG sweep over system geometry, engine, thread count and
  // phantom: the parallel/serial equivalence must hold for all of them.
  SplitMix64 rng(0xC0FFEEu);
  const auto engines = pipeline_engines();
  for (int trial = 0; trial < 6; ++trial) {
    const int side = 4 + static_cast<int>(rng.next_below(5));    // 4..8
    const int lines = 5 + static_cast<int>(rng.next_below(5));   // 5..9
    const int depths = 16 + static_cast<int>(rng.next_below(17)); // 16..32
    const imaging::SystemConfig cfg =
        imaging::scaled_system(side, lines, depths);
    const auto& engine_case =
        engines[static_cast<std::size_t>(rng.next_below(engines.size()))];
    const int threads = 2 + static_cast<int>(rng.next_below(5));  // 2..6
    const auto order = rng.next_below(2) == 0
                           ? imaging::ScanOrder::kNappeByNappe
                           : imaging::ScanOrder::kScanlineByScanline;
    const auto echoes =
        acoustic::synthesize_echoes(cfg, random_phantom(cfg, rng, 2));
    const auto apod = rect_apod(cfg);

    auto serial_engine = engine_case.make(cfg);
    const VolumeImage reference = beamform::Beamformer(cfg, apod).reconstruct(
        echoes, *serial_engine, {.order = order});
    auto prototype = engine_case.make(cfg);
    FramePipeline pipeline(
        cfg, apod, *prototype,
        PipelineConfig{.worker_threads = threads, .order = order});
    expect_bit_identical(
        reference, pipeline.reconstruct_frame(echoes, Vec3{}),
        "trial " + std::to_string(trial) + " " + engine_case.label +
            " side=" + std::to_string(side) + " threads=" +
            std::to_string(threads));
  }
}

TEST(FramePipeline, RepeatedRunsAreDeterministic) {
  const imaging::SystemConfig cfg = imaging::scaled_system(6, 7, 20);
  SplitMix64 rng(99);
  const auto echoes =
      acoustic::synthesize_echoes(cfg, random_phantom(cfg, rng, 3));
  const auto apod = rect_apod(cfg);
  delay::TableFreeEngine prototype(cfg);
  FramePipeline pipeline(cfg, apod, prototype,
                         PipelineConfig{.worker_threads = 4});
  const VolumeImage first = pipeline.reconstruct_frame(echoes, Vec3{});
  for (int repeat = 0; repeat < 3; ++repeat) {
    expect_bit_identical(first, pipeline.reconstruct_frame(echoes, Vec3{}),
                         "repeat " + std::to_string(repeat));
  }
}

TEST(FramePipeline, SyntheticApertureOriginsFlowThroughTheWorkers) {
  const imaging::SystemConfig cfg = imaging::scaled_system(6, 7, 20);
  const delay::SyntheticAperturePlan plan =
      delay::diverging_wave_plan(3, 3.0e-3);
  const Vec3 origin{0.0, 0.0, plan.origin_z[1]};
  SplitMix64 rng(5);
  acoustic::SynthesisOptions synth;
  synth.origin = origin;
  const auto echoes =
      acoustic::synthesize_echoes(cfg, random_phantom(cfg, rng, 2), synth);
  const auto apod = rect_apod(cfg);

  delay::SyntheticApertureSteerEngine serial_engine(cfg, plan);
  const VolumeImage reference = beamform::Beamformer(cfg, apod).reconstruct(
      echoes, serial_engine, {.origin = origin});
  delay::SyntheticApertureSteerEngine prototype(cfg, plan);
  FramePipeline pipeline(cfg, apod, prototype,
                         PipelineConfig{.worker_threads = 3});
  expect_bit_identical(reference, pipeline.reconstruct_frame(echoes, origin),
                       "synthetic aperture");
}

TEST(FramePipeline, ThreadCountClampsToOuterExtent) {
  const imaging::SystemConfig cfg = imaging::scaled_system(4, 5, 6);
  delay::ExactDelayEngine prototype(cfg);
  FramePipeline pipeline(cfg, rect_apod(cfg), prototype,
                         PipelineConfig{.worker_threads = 64});
  EXPECT_EQ(pipeline.worker_threads(), 6);  // n_depth nappes
}

std::vector<EchoFrame> synth_frames(const imaging::SystemConfig& cfg, int n,
                                    std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<EchoFrame> frames;
  for (int i = 0; i < n; ++i) {
    frames.push_back(EchoFrame{
        acoustic::synthesize_echoes(cfg, random_phantom(cfg, rng, 2)), Vec3{},
        0});
  }
  return frames;
}

TEST(FramePipeline, StreamingRunDeliversEveryFrameInOrder) {
  const imaging::SystemConfig cfg = imaging::scaled_system(6, 7, 20);
  const auto apod = rect_apod(cfg);
  const auto frames = synth_frames(cfg, 5, 11);
  const beamform::Beamformer serial(cfg, apod);

  // Serial references, one per frame.
  std::vector<VolumeImage> references;
  for (const EchoFrame& f : frames) {
    delay::TableFreeEngine engine(cfg);
    references.push_back(serial.reconstruct(f.echoes, engine));
  }

  for (const bool double_buffered : {false, true}) {
    delay::TableFreeEngine prototype(cfg);
    FramePipeline pipeline(
        cfg, apod, prototype,
        PipelineConfig{.worker_threads = 3,
                       .double_buffered = double_buffered});
    ReplayFrameSource source(frames);
    std::vector<std::int64_t> order;
    std::vector<VolumeImage> received;
    const PipelineStats stats =
        pipeline.run(source, [&](const VolumeImage& v, std::int64_t seq) {
          order.push_back(seq);
          received.push_back(v);  // copy: the buffer is recycled
        });
    ASSERT_EQ(order.size(), 5u);
    for (std::int64_t i = 0; i < 5; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    for (std::size_t i = 0; i < references.size(); ++i) {
      expect_bit_identical(references[i], received[i],
                           "frame " + std::to_string(i) + " db=" +
                               std::to_string(double_buffered));
    }
    EXPECT_EQ(stats.frames, 5);
    EXPECT_EQ(stats.voxels, 5 * cfg.volume.total_points());
    EXPECT_EQ(stats.beamform.count, 5);
    EXPECT_EQ(stats.consume.count, 5);
    EXPECT_GT(stats.sustained_fps(), 0.0);
  }
}

TEST(FramePipeline, MaxFramesLimitsTheRun) {
  const imaging::SystemConfig cfg = imaging::scaled_system(5, 6, 16);
  delay::ExactDelayEngine prototype(cfg);
  FramePipeline pipeline(
      cfg, rect_apod(cfg), prototype,
      PipelineConfig{.worker_threads = 2, .max_frames = 3});
  ReplayFrameSource source(synth_frames(cfg, 2, 21), 4);  // 8 available
  int delivered = 0;
  const PipelineStats stats =
      pipeline.run(source, [&](const VolumeImage&, std::int64_t) {
        ++delivered;
      });
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(stats.frames, 3);
}

TEST(FramePipeline, SinkExceptionsPropagateAndThePipelineSurvives) {
  const imaging::SystemConfig cfg = imaging::scaled_system(5, 6, 16);
  const auto frames = synth_frames(cfg, 4, 31);
  for (const bool double_buffered : {false, true}) {
    delay::ExactDelayEngine prototype(cfg);
    FramePipeline pipeline(
        cfg, rect_apod(cfg), prototype,
        PipelineConfig{.worker_threads = 2,
                       .double_buffered = double_buffered});
    {
      ReplayFrameSource source(frames);
      EXPECT_THROW(
          pipeline.run(source,
                       [&](const VolumeImage&, std::int64_t seq) {
                         if (seq == 1) throw std::runtime_error("sink failed");
                       }),
          std::runtime_error)
          << "db=" << double_buffered;
    }
    // The pipeline stays usable after a failed run.
    ReplayFrameSource source(frames);
    int delivered = 0;
    pipeline.run(source,
                 [&](const VolumeImage&, std::int64_t) { ++delivered; });
    EXPECT_EQ(delivered, 4) << "db=" << double_buffered;
  }
}

TEST(FramePipeline, SinkFailureAccountsDeliveredVersusDropped) {
  // Bugfix regression: frames used to be counted as soon as they were
  // beamformed — a failing sink left stats claiming phantom deliveries
  // and silently swallowed the in-flight volume. Accounting is now
  // delivery-based with drops surfaced.
  const imaging::SystemConfig cfg = imaging::scaled_system(5, 6, 16);
  const auto frames = synth_frames(cfg, 4, 33);
  for (const bool double_buffered : {false, true}) {
    delay::ExactDelayEngine prototype(cfg);
    FramePipeline pipeline(
        cfg, rect_apod(cfg), prototype,
        PipelineConfig{.worker_threads = 2,
                       .double_buffered = double_buffered});
    ReplayFrameSource source(frames);
    EXPECT_THROW(
        pipeline.run(source,
                     [&](const VolumeImage&, std::int64_t seq) {
                       if (seq == 1) throw std::runtime_error("sink failed");
                     }),
        std::runtime_error);
    // The failed run's truth is folded into the lifetime stats before the
    // rethrow: exactly one frame was delivered, and every insonification
    // the pipeline accepted is either delivered or visibly dropped.
    const PipelineStats& stats = pipeline.stats();
    EXPECT_EQ(stats.frames, 1) << "db=" << double_buffered;
    EXPECT_GE(stats.dropped_frames, 1) << "db=" << double_buffered;
    EXPECT_EQ(stats.insonifications, stats.frames + stats.dropped_frames)
        << "db=" << double_buffered;
  }
}

/// An engine whose compute always throws — drives the worker error paths.
class ThrowingEngine final : public delay::DelayEngine {
 public:
  explicit ThrowingEngine(const imaging::SystemConfig& cfg)
      : probe_(cfg.probe) {}
  std::string name() const override { return "THROWING"; }
  int element_count() const override { return probe_.element_count(); }
  std::unique_ptr<delay::DelayEngine> clone() const override {
    return std::make_unique<ThrowingEngine>(*this);
  }

 protected:
  void do_begin_frame(const Vec3&) override {}
  void do_compute(const imaging::FocalPoint&,
                  std::span<std::int32_t>) override {
    throw std::runtime_error("engine failed mid-sweep");
  }

 private:
  probe::MatrixProbe probe_;
};

TEST(FramePipeline, WorkerExceptionsPropagateInBothBufferedModes) {
  const imaging::SystemConfig cfg = imaging::scaled_system(5, 6, 16);
  const auto frames = synth_frames(cfg, 3, 37);
  for (const bool double_buffered : {false, true}) {
    ThrowingEngine prototype(cfg);
    FramePipeline pipeline(
        cfg, rect_apod(cfg), prototype,
        PipelineConfig{.worker_threads = 2,
                       .double_buffered = double_buffered});
    int delivered = 0;
    ReplayFrameSource source(frames);
    EXPECT_THROW(pipeline.run(source,
                              [&](const VolumeImage&, std::int64_t) {
                                ++delivered;
                              }),
                 std::runtime_error)
        << "db=" << double_buffered;
    EXPECT_EQ(delivered, 0);
    EXPECT_EQ(pipeline.stats().frames, 0) << "db=" << double_buffered;
    EXPECT_GE(pipeline.stats().dropped_frames, 1) << "db=" << double_buffered;
    // A second run fails the same way instead of hanging or crashing —
    // the pool and the stage threads wound down cleanly.
    ReplayFrameSource again(frames);
    EXPECT_THROW(pipeline.run(again, [](const VolumeImage&, std::int64_t) {}),
                 std::runtime_error);
  }
}

/// A source that fails mid-stream — drives the ingest error path.
class ThrowingSource final : public FrameSource {
 public:
  ThrowingSource(std::vector<EchoFrame> frames, std::size_t throw_at)
      : frames_(std::move(frames)), throw_at_(throw_at) {}
  std::optional<EchoFrame> next_frame() override {
    if (emitted_ >= throw_at_) throw std::runtime_error("source failed");
    EchoFrame frame = frames_[emitted_ % frames_.size()];
    frame.sequence = static_cast<std::int64_t>(emitted_++);
    return frame;
  }

 private:
  std::vector<EchoFrame> frames_;
  std::size_t throw_at_;
  std::size_t emitted_ = 0;
};

TEST(FramePipeline, SourceExceptionsPropagateInBothBufferedModes) {
  // Regression: in the double-buffered mode a throwing FrameSource used
  // to unwind past the joinable consumer thread and std::terminate. The
  // exception must propagate after the pipeline quiesces, with already
  // ingested frames still delivered.
  const imaging::SystemConfig cfg = imaging::scaled_system(5, 6, 16);
  const auto frames = synth_frames(cfg, 2, 67);
  for (const bool double_buffered : {false, true}) {
    delay::ExactDelayEngine prototype(cfg);
    FramePipeline pipeline(
        cfg, rect_apod(cfg), prototype,
        PipelineConfig{.worker_threads = 2,
                       .double_buffered = double_buffered});
    int delivered = 0;
    ThrowingSource source(frames, /*throw_at=*/2);
    EXPECT_THROW(pipeline.run(source,
                              [&](const VolumeImage&, std::int64_t) {
                                ++delivered;
                              }),
                 std::runtime_error)
        << "db=" << double_buffered;
    // The two frames ingested before the failure complete gracefully.
    EXPECT_EQ(delivered, 2) << "db=" << double_buffered;
    // And the pipeline survives for the next run.
    ReplayFrameSource good(frames);
    int again = 0;
    pipeline.run(good, [&](const VolumeImage&, std::int64_t) { ++again; });
    EXPECT_EQ(again, 2) << "db=" << double_buffered;
  }
}

TEST(FramePipeline, MaxFramesTruncatesMidStreamWithCompounding) {
  const imaging::SystemConfig cfg = imaging::scaled_system(5, 6, 16);
  delay::ExactDelayEngine prototype(cfg);
  FramePipeline pipeline(
      cfg, rect_apod(cfg), prototype,
      PipelineConfig{.worker_threads = 2,
                     .compound_origins = 2,
                     .max_frames = 5});
  ReplayFrameSource source(synth_frames(cfg, 2, 39), 8);  // 16 available
  std::vector<std::int64_t> order;
  const PipelineStats stats = pipeline.run(
      source, [&](const VolumeImage&, std::int64_t seq) {
        order.push_back(seq);
      });
  // 5 insonifications at K=2: two full compounds (seq 1, 3) plus the
  // truncation-point partial (seq 4) — truncated work is still delivered.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 3);
  EXPECT_EQ(order[2], 4);
  EXPECT_EQ(stats.insonifications, 5);
  EXPECT_EQ(stats.frames, 3);
  EXPECT_EQ(stats.dropped_frames, 0);
}

TEST(FramePipeline, CompoundedRunMatchesSerialSum) {
  const imaging::SystemConfig cfg = imaging::scaled_system(6, 7, 18);
  const auto apod = rect_apod(cfg);
  const auto frames = synth_frames(cfg, 4, 43);
  const beamform::Beamformer serial(cfg, apod);
  std::vector<VolumeImage> compounds;
  for (int g = 0; g < 2; ++g) {
    delay::TableFreeEngine e0(cfg);
    VolumeImage acc = serial.reconstruct(frames[static_cast<std::size_t>(2 * g)].echoes, e0);
    delay::TableFreeEngine e1(cfg);
    acc.add(serial.reconstruct(frames[static_cast<std::size_t>(2 * g + 1)].echoes, e1));
    compounds.push_back(std::move(acc));
  }
  for (const bool double_buffered : {false, true}) {
    delay::TableFreeEngine prototype(cfg);
    FramePipeline pipeline(
        cfg, apod, prototype,
        PipelineConfig{.worker_threads = 3,
                       .double_buffered = double_buffered,
                       .compound_origins = 2});
    ReplayFrameSource source(frames);
    std::vector<VolumeImage> received;
    pipeline.run(source, [&](const VolumeImage& v, std::int64_t) {
      received.push_back(v);
    });
    ASSERT_EQ(received.size(), 2u);
    for (std::size_t g = 0; g < 2; ++g) {
      expect_bit_identical(compounds[g], received[g],
                           "compound " + std::to_string(g) + " db=" +
                               std::to_string(double_buffered));
    }
  }
}

TEST(FramePipeline, PerturbedSyntheticApertureOriginsReplayIdentically) {
  // Regression for the origin-matching bugfix: origins that round-tripped
  // through storage/arithmetic arrive a few ulps off the plan values; the
  // engine must select the same table and produce the same volume instead
  // of throwing.
  const imaging::SystemConfig cfg = imaging::scaled_system(6, 7, 18);
  const delay::SyntheticAperturePlan plan =
      delay::diverging_wave_plan(3, 3.0e-3);
  const auto apod = rect_apod(cfg);
  SplitMix64 rng(57);
  std::vector<EchoFrame> exact_frames;
  std::vector<EchoFrame> perturbed_frames;
  for (int i = 0; i < 3; ++i) {
    const double z = plan.origin_z[static_cast<std::size_t>(i)];
    const Vec3 origin{0.0, 0.0, z};
    acoustic::SynthesisOptions synth;
    synth.origin = origin;
    auto echoes =
        acoustic::synthesize_echoes(cfg, random_phantom(cfg, rng, 2), synth);
    exact_frames.push_back(EchoFrame{echoes, origin, i});
    // The same physical shot, origin nudged as if deserialized.
    const Vec3 drifted{1.0e-12, -1.0e-12, z * (1.0 + 4.0e-16) - 1.0e-12};
    perturbed_frames.push_back(EchoFrame{std::move(echoes), drifted, i});
  }
  delay::SyntheticApertureSteerEngine serial_proto(cfg, plan);
  FramePipeline exact_pipeline(cfg, apod, serial_proto,
                               PipelineConfig{.worker_threads = 2});
  ReplayFrameSource exact_source(exact_frames);
  std::vector<VolumeImage> expected;
  exact_pipeline.run(exact_source, [&](const VolumeImage& v, std::int64_t) {
    expected.push_back(v);
  });

  delay::SyntheticApertureSteerEngine perturbed_proto(cfg, plan);
  FramePipeline perturbed_pipeline(cfg, apod, perturbed_proto,
                                   PipelineConfig{.worker_threads = 2});
  ReplayFrameSource perturbed_source(perturbed_frames);
  std::vector<VolumeImage> actual;
  perturbed_pipeline.run(perturbed_source,
                         [&](const VolumeImage& v, std::int64_t) {
                           actual.push_back(v);
                         });
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    expect_bit_identical(expected[i], actual[i],
                         "perturbed origin frame " + std::to_string(i));
  }
}

TEST(FramePipeline, WallClockDefinitionIsCoherentAcrossEntryPoints) {
  // Bugfix regression: reconstruct_frame used to fold beamform-only time
  // into wall_s while run() folded whole-stream time, so mixing the entry
  // points produced meaningless lifetime rates. Both now contribute their
  // whole call under one definition.
  const imaging::SystemConfig cfg = imaging::scaled_system(5, 6, 16);
  delay::ExactDelayEngine prototype(cfg);
  FramePipeline pipeline(cfg, rect_apod(cfg), prototype,
                         PipelineConfig{.worker_threads = 2});
  const auto frames = synth_frames(cfg, 2, 61);
  const auto t0 = std::chrono::steady_clock::now();
  {
    ReplayFrameSource source(frames);
    pipeline.run(source, [](const VolumeImage&, std::int64_t) {});
  }
  (void)pipeline.reconstruct_frame(frames[0].echoes, Vec3{});
  (void)pipeline.reconstruct_frame(frames[1].echoes, Vec3{});
  const double external_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const PipelineStats& stats = pipeline.stats();
  EXPECT_EQ(stats.frames, 4);
  EXPECT_EQ(stats.insonifications, 4);
  // Every second the beamform stage ran happened inside an entry point...
  EXPECT_GE(stats.wall_s, stats.beamform.total_s);
  // ...and wall_s never exceeds the externally observed elapsed time, so
  // lifetime sustained_fps is a real (conservative) rate.
  EXPECT_LE(stats.wall_s, external_s);
  EXPECT_GT(stats.sustained_fps(), 0.0);
}

TEST(FramePipeline, StatsAccumulateAcrossRunsAndReset) {
  const imaging::SystemConfig cfg = imaging::scaled_system(5, 6, 16);
  delay::ExactDelayEngine prototype(cfg);
  FramePipeline pipeline(cfg, rect_apod(cfg), prototype,
                         PipelineConfig{.worker_threads = 2});
  const auto frames = synth_frames(cfg, 2, 41);
  for (int i = 0; i < 2; ++i) {
    ReplayFrameSource source(frames);
    pipeline.run(source, [](const VolumeImage&, std::int64_t) {});
  }
  EXPECT_EQ(pipeline.stats().frames, 4);
  // reconstruct_frame() also contributes wall time, so lifetime rates
  // stay meaningful for frame-at-a-time callers.
  (void)pipeline.reconstruct_frame(frames[0].echoes, Vec3{});
  EXPECT_EQ(pipeline.stats().frames, 5);
  EXPECT_GT(pipeline.stats().wall_s, 0.0);
  EXPECT_GT(pipeline.stats().sustained_fps(), 0.0);
  const std::string json = pipeline.stats().to_json();
  EXPECT_NE(json.find("\"sustained_fps\""), std::string::npos);
  EXPECT_NE(json.find("\"beamform\""), std::string::npos);
  pipeline.reset_stats();
  EXPECT_EQ(pipeline.stats().frames, 0);
  EXPECT_EQ(pipeline.stats().worker_threads, 2);
}

TEST(FramePipeline, LifetimeCountersStaySumOfSessionsAcrossRestarts) {
  // Satellite regression: back-to-back run()s, a direct AsyncPipeline
  // session and a reconstruct_frame() on ONE pipeline must leave the
  // lifetime accumulator exactly equal to the sum of the per-session
  // snapshots. Direct async sessions used to bypass the fold entirely
  // (only run() folded), so service-style usage drifted.
  const imaging::SystemConfig cfg = imaging::scaled_system(5, 6, 16);
  delay::ExactDelayEngine prototype(cfg);
  FramePipeline pipeline(cfg, rect_apod(cfg), prototype,
                         PipelineConfig{.worker_threads = 2, .queue_depth = 2});
  const auto frames = synth_frames(cfg, 3, 71);
  const VolumeSink devnull = [](const VolumeImage&, std::int64_t) {};

  std::int64_t frames_sum = 0, insonifications_sum = 0, voxels_sum = 0;
  double wall_sum = 0.0;
  for (int i = 0; i < 2; ++i) {
    ReplayFrameSource source(frames);
    const PipelineStats run_stats = pipeline.run(source, devnull);
    frames_sum += run_stats.frames;
    insonifications_sum += run_stats.insonifications;
    voxels_sum += run_stats.voxels;
    wall_sum += run_stats.wall_s;
  }
  {
    AsyncPipeline async(pipeline, AsyncOptions{.depth = 2});
    for (const EchoFrame& f : frames) {
      EchoFrame copy = f;
      ASSERT_TRUE(async.submit(std::move(copy)));
    }
    const PipelineStats session = async.finish(devnull);
    async.rethrow_if_failed();
    frames_sum += session.frames;
    insonifications_sum += session.insonifications;
    voxels_sum += session.voxels;
    wall_sum += session.wall_s;
    EXPECT_EQ(session.queue_depth, 2);
    EXPECT_EQ(session.ring_slots, 2);
  }
  // After the streaming sessions, the lifetime wall clock is exactly the
  // sum of the per-session snapshots.
  EXPECT_NEAR(pipeline.stats().wall_s, wall_sum, 1e-9);

  (void)pipeline.reconstruct_frame(frames[0].echoes, Vec3{});
  frames_sum += 1;
  insonifications_sum += 1;
  voxels_sum += cfg.volume.total_points();

  const PipelineStats& life = pipeline.stats();
  EXPECT_EQ(life.frames, frames_sum);
  EXPECT_EQ(life.insonifications, insonifications_sum);
  EXPECT_EQ(life.voxels, voxels_sum);
  EXPECT_EQ(life.dropped_frames, 0);
  EXPECT_GT(life.wall_s, wall_sum);  // reconstruct_frame added its call
  EXPECT_TRUE(life.lifetime_coherent());
  // The streaming sessions reported their depth/ring configuration.
  EXPECT_EQ(life.queue_depth, 2);
  EXPECT_EQ(life.ring_slots, 2);
}

TEST(FramePipeline, WorkerCapThrottlesWithoutChangingTheVolume) {
  const imaging::SystemConfig cfg = imaging::scaled_system(6, 7, 20);
  SplitMix64 rng(97);
  const auto echoes = acoustic::synthesize_echoes(
      cfg, random_phantom(cfg, rng, 3));
  delay::TableFreeEngine prototype(cfg);

  FramePipeline serial(cfg, rect_apod(cfg), prototype,
                       PipelineConfig{.worker_threads = 1});
  const VolumeImage reference = serial.reconstruct_frame(echoes, Vec3{});

  FramePipeline pipeline(cfg, rect_apod(cfg), prototype,
                         PipelineConfig{.worker_threads = 4});
  EXPECT_EQ(pipeline.worker_cap(), pipeline.worker_threads());
  for (const int cap : {1, 2, 4}) {
    pipeline.set_worker_cap(cap);
    EXPECT_EQ(pipeline.worker_cap(), std::min(cap, pipeline.worker_threads()));
    const VolumeImage capped = pipeline.reconstruct_frame(echoes, Vec3{});
    expect_bit_identical(reference, capped,
                         "worker cap " + std::to_string(cap));
  }
  // The cap clamps to the pool size rather than growing it.
  pipeline.set_worker_cap(64);
  EXPECT_EQ(pipeline.worker_cap(), pipeline.worker_threads());
  EXPECT_THROW(pipeline.set_worker_cap(0), ContractViolation);
}

}  // namespace
}  // namespace us3d::runtime
