// FramePipeline invariants. The headline property — the reason the runtime
// may parallelize order-sensitive engines at all — is that parallel
// reconstruction is BIT-IDENTICAL to the serial Beamformer::reconstruct for
// every delay engine, every scan order and every thread count, because
// delay values depend only on (origin, focal point). The property tests
// sweep seeded-random system configurations to pin this down, and the
// streaming tests check ordering, double buffering and stats plumbing.
#include "runtime/frame_pipeline.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "acoustic/echo_synth.h"
#include "acoustic/phantom.h"
#include "common/prng.h"
#include "delay/exact.h"
#include "delay/full_table.h"
#include "delay/synthetic_aperture.h"
#include "delay/tablefree.h"
#include "delay/tablesteer.h"
#include "probe/presets.h"

namespace us3d::runtime {
namespace {

using beamform::VolumeImage;

struct EngineCase {
  std::string label;
  std::function<std::unique_ptr<delay::DelayEngine>(
      const imaging::SystemConfig&)>
      make;
};

std::vector<EngineCase> pipeline_engines() {
  return {
      {"EXACT",
       [](const imaging::SystemConfig& cfg) {
         return std::make_unique<delay::ExactDelayEngine>(cfg);
       }},
      {"TABLEFREE",
       [](const imaging::SystemConfig& cfg) {
         return std::make_unique<delay::TableFreeEngine>(cfg);
       }},
      {"TABLESTEER-18b",
       [](const imaging::SystemConfig& cfg) {
         return std::make_unique<delay::TableSteerEngine>(
             cfg, delay::TableSteerConfig::bits18());
       }},
      {"FULLTABLE",
       [](const imaging::SystemConfig& cfg) {
         return std::make_unique<delay::FullTableEngine>(cfg);
       }},
  };
}

/// Voxel-for-voxel equality (float ==, no tolerance).
void expect_bit_identical(const VolumeImage& a, const VolumeImage& b,
                          const std::string& what) {
  const auto& s = a.spec();
  ASSERT_EQ(s.total_points(), b.spec().total_points()) << what;
  for (int it = 0; it < s.n_theta; ++it) {
    for (int ip = 0; ip < s.n_phi; ++ip) {
      for (int id = 0; id < s.n_depth; ++id) {
        ASSERT_EQ(a.at(it, ip, id), b.at(it, ip, id))
            << what << " differs at (" << it << "," << ip << "," << id << ")";
      }
    }
  }
}

acoustic::Phantom random_phantom(const imaging::SystemConfig& cfg,
                                 SplitMix64& rng, int scatterers) {
  const imaging::VolumeGrid grid(cfg.volume);
  acoustic::Phantom phantom;
  for (int i = 0; i < scatterers; ++i) {
    const int it = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(cfg.volume.n_theta)));
    const int ip = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(cfg.volume.n_phi)));
    const int id = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(cfg.volume.n_depth)));
    phantom.push_back(acoustic::PointScatterer{
        grid.focal_point(it, ip, id).position, rng.next_in(0.5, 1.5)});
  }
  return phantom;
}

probe::ApodizationMap rect_apod(const imaging::SystemConfig& cfg) {
  return probe::ApodizationMap(probe::MatrixProbe(cfg.probe),
                               probe::WindowKind::kRect);
}

TEST(FramePipeline, ParallelIsBitIdenticalToSerialForEveryEngine) {
  const imaging::SystemConfig cfg = imaging::scaled_system(8, 9, 30);
  SplitMix64 rng(42);
  const auto echoes =
      acoustic::synthesize_echoes(cfg, random_phantom(cfg, rng, 3));
  const auto apod = rect_apod(cfg);
  const beamform::Beamformer serial(cfg, apod);

  for (const EngineCase& c : pipeline_engines()) {
    auto serial_engine = c.make(cfg);
    const VolumeImage reference = serial.reconstruct(echoes, *serial_engine);
    for (const int threads : {1, 2, 3, 8}) {
      auto prototype = c.make(cfg);
      FramePipeline pipeline(cfg, apod, *prototype,
                             PipelineConfig{.worker_threads = threads});
      const VolumeImage parallel = pipeline.reconstruct_frame(echoes, Vec3{});
      expect_bit_identical(reference, parallel,
                           c.label + " threads=" + std::to_string(threads));
    }
  }
}

TEST(FramePipeline, BitIdenticalInBothScanOrders) {
  const imaging::SystemConfig cfg = imaging::scaled_system(6, 8, 24);
  SplitMix64 rng(7);
  const auto echoes =
      acoustic::synthesize_echoes(cfg, random_phantom(cfg, rng, 2));
  const auto apod = rect_apod(cfg);
  const beamform::Beamformer serial(cfg, apod);
  for (const imaging::ScanOrder order :
       {imaging::ScanOrder::kNappeByNappe,
        imaging::ScanOrder::kScanlineByScanline}) {
    delay::TableFreeEngine engine(cfg);
    const VolumeImage reference =
        serial.reconstruct(echoes, engine, {.order = order});
    delay::TableFreeEngine prototype(cfg);
    FramePipeline pipeline(
        cfg, apod, prototype,
        PipelineConfig{.worker_threads = 4, .order = order});
    expect_bit_identical(reference, pipeline.reconstruct_frame(echoes, Vec3{}),
                         std::string("order=") + to_string(order));
  }
}

TEST(FramePipeline, PropertyRandomConfigsStayBitIdentical) {
  // Seeded-PRNG sweep over system geometry, engine, thread count and
  // phantom: the parallel/serial equivalence must hold for all of them.
  SplitMix64 rng(0xC0FFEEu);
  const auto engines = pipeline_engines();
  for (int trial = 0; trial < 6; ++trial) {
    const int side = 4 + static_cast<int>(rng.next_below(5));    // 4..8
    const int lines = 5 + static_cast<int>(rng.next_below(5));   // 5..9
    const int depths = 16 + static_cast<int>(rng.next_below(17)); // 16..32
    const imaging::SystemConfig cfg =
        imaging::scaled_system(side, lines, depths);
    const auto& engine_case =
        engines[static_cast<std::size_t>(rng.next_below(engines.size()))];
    const int threads = 2 + static_cast<int>(rng.next_below(5));  // 2..6
    const auto order = rng.next_below(2) == 0
                           ? imaging::ScanOrder::kNappeByNappe
                           : imaging::ScanOrder::kScanlineByScanline;
    const auto echoes =
        acoustic::synthesize_echoes(cfg, random_phantom(cfg, rng, 2));
    const auto apod = rect_apod(cfg);

    auto serial_engine = engine_case.make(cfg);
    const VolumeImage reference = beamform::Beamformer(cfg, apod).reconstruct(
        echoes, *serial_engine, {.order = order});
    auto prototype = engine_case.make(cfg);
    FramePipeline pipeline(
        cfg, apod, *prototype,
        PipelineConfig{.worker_threads = threads, .order = order});
    expect_bit_identical(
        reference, pipeline.reconstruct_frame(echoes, Vec3{}),
        "trial " + std::to_string(trial) + " " + engine_case.label +
            " side=" + std::to_string(side) + " threads=" +
            std::to_string(threads));
  }
}

TEST(FramePipeline, RepeatedRunsAreDeterministic) {
  const imaging::SystemConfig cfg = imaging::scaled_system(6, 7, 20);
  SplitMix64 rng(99);
  const auto echoes =
      acoustic::synthesize_echoes(cfg, random_phantom(cfg, rng, 3));
  const auto apod = rect_apod(cfg);
  delay::TableFreeEngine prototype(cfg);
  FramePipeline pipeline(cfg, apod, prototype,
                         PipelineConfig{.worker_threads = 4});
  const VolumeImage first = pipeline.reconstruct_frame(echoes, Vec3{});
  for (int repeat = 0; repeat < 3; ++repeat) {
    expect_bit_identical(first, pipeline.reconstruct_frame(echoes, Vec3{}),
                         "repeat " + std::to_string(repeat));
  }
}

TEST(FramePipeline, SyntheticApertureOriginsFlowThroughTheWorkers) {
  const imaging::SystemConfig cfg = imaging::scaled_system(6, 7, 20);
  const delay::SyntheticAperturePlan plan =
      delay::diverging_wave_plan(3, 3.0e-3);
  const Vec3 origin{0.0, 0.0, plan.origin_z[1]};
  SplitMix64 rng(5);
  acoustic::SynthesisOptions synth;
  synth.origin = origin;
  const auto echoes =
      acoustic::synthesize_echoes(cfg, random_phantom(cfg, rng, 2), synth);
  const auto apod = rect_apod(cfg);

  delay::SyntheticApertureSteerEngine serial_engine(cfg, plan);
  const VolumeImage reference = beamform::Beamformer(cfg, apod).reconstruct(
      echoes, serial_engine, {.origin = origin});
  delay::SyntheticApertureSteerEngine prototype(cfg, plan);
  FramePipeline pipeline(cfg, apod, prototype,
                         PipelineConfig{.worker_threads = 3});
  expect_bit_identical(reference, pipeline.reconstruct_frame(echoes, origin),
                       "synthetic aperture");
}

TEST(FramePipeline, ThreadCountClampsToOuterExtent) {
  const imaging::SystemConfig cfg = imaging::scaled_system(4, 5, 6);
  delay::ExactDelayEngine prototype(cfg);
  FramePipeline pipeline(cfg, rect_apod(cfg), prototype,
                         PipelineConfig{.worker_threads = 64});
  EXPECT_EQ(pipeline.worker_threads(), 6);  // n_depth nappes
}

std::vector<EchoFrame> synth_frames(const imaging::SystemConfig& cfg, int n,
                                    std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<EchoFrame> frames;
  for (int i = 0; i < n; ++i) {
    frames.push_back(EchoFrame{
        acoustic::synthesize_echoes(cfg, random_phantom(cfg, rng, 2)), Vec3{},
        0});
  }
  return frames;
}

TEST(FramePipeline, StreamingRunDeliversEveryFrameInOrder) {
  const imaging::SystemConfig cfg = imaging::scaled_system(6, 7, 20);
  const auto apod = rect_apod(cfg);
  const auto frames = synth_frames(cfg, 5, 11);
  const beamform::Beamformer serial(cfg, apod);

  // Serial references, one per frame.
  std::vector<VolumeImage> references;
  for (const EchoFrame& f : frames) {
    delay::TableFreeEngine engine(cfg);
    references.push_back(serial.reconstruct(f.echoes, engine));
  }

  for (const bool double_buffered : {false, true}) {
    delay::TableFreeEngine prototype(cfg);
    FramePipeline pipeline(
        cfg, apod, prototype,
        PipelineConfig{.worker_threads = 3,
                       .double_buffered = double_buffered});
    ReplayFrameSource source(frames);
    std::vector<std::int64_t> order;
    std::vector<VolumeImage> received;
    const PipelineStats stats =
        pipeline.run(source, [&](const VolumeImage& v, std::int64_t seq) {
          order.push_back(seq);
          received.push_back(v);  // copy: the buffer is recycled
        });
    ASSERT_EQ(order.size(), 5u);
    for (std::int64_t i = 0; i < 5; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    for (std::size_t i = 0; i < references.size(); ++i) {
      expect_bit_identical(references[i], received[i],
                           "frame " + std::to_string(i) + " db=" +
                               std::to_string(double_buffered));
    }
    EXPECT_EQ(stats.frames, 5);
    EXPECT_EQ(stats.voxels, 5 * cfg.volume.total_points());
    EXPECT_EQ(stats.beamform.count, 5);
    EXPECT_EQ(stats.consume.count, 5);
    EXPECT_GT(stats.sustained_fps(), 0.0);
  }
}

TEST(FramePipeline, MaxFramesLimitsTheRun) {
  const imaging::SystemConfig cfg = imaging::scaled_system(5, 6, 16);
  delay::ExactDelayEngine prototype(cfg);
  FramePipeline pipeline(
      cfg, rect_apod(cfg), prototype,
      PipelineConfig{.worker_threads = 2, .max_frames = 3});
  ReplayFrameSource source(synth_frames(cfg, 2, 21), 4);  // 8 available
  int delivered = 0;
  const PipelineStats stats =
      pipeline.run(source, [&](const VolumeImage&, std::int64_t) {
        ++delivered;
      });
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(stats.frames, 3);
}

TEST(FramePipeline, SinkExceptionsPropagateAndThePipelineSurvives) {
  const imaging::SystemConfig cfg = imaging::scaled_system(5, 6, 16);
  delay::ExactDelayEngine prototype(cfg);
  FramePipeline pipeline(cfg, rect_apod(cfg), prototype,
                         PipelineConfig{.worker_threads = 2});
  const auto frames = synth_frames(cfg, 4, 31);
  {
    ReplayFrameSource source(frames);
    EXPECT_THROW(
        pipeline.run(source,
                     [&](const VolumeImage&, std::int64_t seq) {
                       if (seq == 1) throw std::runtime_error("sink failed");
                     }),
        std::runtime_error);
  }
  // The pipeline stays usable after a failed run.
  ReplayFrameSource source(frames);
  int delivered = 0;
  pipeline.run(source,
               [&](const VolumeImage&, std::int64_t) { ++delivered; });
  EXPECT_EQ(delivered, 4);
}

TEST(FramePipeline, StatsAccumulateAcrossRunsAndReset) {
  const imaging::SystemConfig cfg = imaging::scaled_system(5, 6, 16);
  delay::ExactDelayEngine prototype(cfg);
  FramePipeline pipeline(cfg, rect_apod(cfg), prototype,
                         PipelineConfig{.worker_threads = 2});
  const auto frames = synth_frames(cfg, 2, 41);
  for (int i = 0; i < 2; ++i) {
    ReplayFrameSource source(frames);
    pipeline.run(source, [](const VolumeImage&, std::int64_t) {});
  }
  EXPECT_EQ(pipeline.stats().frames, 4);
  // reconstruct_frame() also contributes wall time, so lifetime rates
  // stay meaningful for frame-at-a-time callers.
  (void)pipeline.reconstruct_frame(frames[0].echoes, Vec3{});
  EXPECT_EQ(pipeline.stats().frames, 5);
  EXPECT_GT(pipeline.stats().wall_s, 0.0);
  EXPECT_GT(pipeline.stats().sustained_fps(), 0.0);
  const std::string json = pipeline.stats().to_json();
  EXPECT_NE(json.find("\"sustained_fps\""), std::string::npos);
  EXPECT_NE(json.find("\"beamform\""), std::string::npos);
  pipeline.reset_stats();
  EXPECT_EQ(pipeline.stats().frames, 0);
  EXPECT_EQ(pipeline.stats().worker_threads, 2);
}

}  // namespace
}  // namespace us3d::runtime
