#include "runtime/frame_source.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "common/contracts.h"
#include "common/prng.h"

namespace us3d::runtime {
namespace {

EchoFrame noise_frame(std::uint64_t seed, int elements, int samples) {
  EchoFrame frame{beamform::EchoBuffer(elements, samples), Vec3{}, 0};
  SplitMix64 rng(seed);
  for (int e = 0; e < elements; ++e) {
    for (float& v : frame.echoes.row(e)) {
      v = static_cast<float>(rng.next_in(-1.0, 1.0));
    }
  }
  return frame;
}

std::vector<EchoFrame> noise_frames(int n) {
  std::vector<EchoFrame> frames;
  for (int i = 0; i < n; ++i) {
    frames.push_back(noise_frame(1000 + static_cast<std::uint64_t>(i), 4, 64));
  }
  return frames;
}

TEST(ReplayFrameSource, EmitsFramesInOrderWithSequenceNumbers) {
  ReplayFrameSource source(noise_frames(3));
  EXPECT_EQ(source.total_frames(), 3);
  for (std::int64_t i = 0; i < 3; ++i) {
    auto frame = source.next_frame();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->sequence, i);
  }
  EXPECT_FALSE(source.next_frame().has_value());
}

TEST(ReplayFrameSource, RepeatsCycleThroughTheFrameSet) {
  ReplayFrameSource source(noise_frames(2), 3);
  EXPECT_EQ(source.total_frames(), 6);
  std::vector<float> first_samples;
  for (std::int64_t i = 0; i < 6; ++i) {
    auto frame = source.next_frame();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->sequence, i);
    first_samples.push_back(frame->echoes.sample(0, 0));
  }
  EXPECT_FALSE(source.next_frame().has_value());
  // Frame content cycles with period 2 while sequence keeps increasing.
  EXPECT_EQ(first_samples[0], first_samples[2]);
  EXPECT_EQ(first_samples[1], first_samples[3]);
  EXPECT_NE(first_samples[0], first_samples[1]);
}

TEST(ReplayFrameSource, RewindRestartsTheStream) {
  ReplayFrameSource source(noise_frames(2));
  (void)source.next_frame();
  (void)source.next_frame();
  EXPECT_FALSE(source.next_frame().has_value());
  source.rewind();
  auto frame = source.next_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->sequence, 0);
}

TEST(ReplayFrameSource, RejectsEmptyAndZeroRepeats) {
  EXPECT_THROW(ReplayFrameSource({}), ContractViolation);
  EXPECT_THROW(ReplayFrameSource(noise_frames(1), 0), ContractViolation);
}

hw::StreamBufferConfig ingest_config(double bandwidth_bytes_per_s) {
  hw::StreamBufferConfig cfg;
  cfg.capacity_words = 512;
  cfg.clock_hz = 100.0e6;
  cfg.dram_bandwidth_bytes_per_s = bandwidth_bytes_per_s;
  cfg.word_bits = 32;
  cfg.drain_words_per_cycle = 0.25;
  // Small preload relative to the 256-word frames, so the steady-state
  // bandwidth balance (not the preload) decides feasibility.
  cfg.initial_fill_words = 16;
  return cfg;
}

TEST(StreamedFrameSource, GenerousBandwidthIsFeasible) {
  // Drain: 0.25 words/cycle @ 100 MHz @ 32-bit words = 100 MB/s demand.
  ReplayFrameSource inner(noise_frames(4));
  StreamedFrameSource source(inner, ingest_config(400.0e6));
  int frames = 0;
  while (source.next_frame()) ++frames;
  EXPECT_EQ(frames, 4);
  EXPECT_EQ(source.report().frames, 4);
  EXPECT_TRUE(source.report().feasible());
  EXPECT_EQ(source.report().underrun_frames, 0);
}

TEST(StreamedFrameSource, StarvedBandwidthReportsUnderruns) {
  ReplayFrameSource inner(noise_frames(4));
  StreamedFrameSource source(inner, ingest_config(10.0e6));
  while (source.next_frame()) {
  }
  EXPECT_FALSE(source.report().feasible());
  EXPECT_EQ(source.report().underrun_frames, 4);
  EXPECT_GT(source.report().stall_cycles, 0);
}

TEST(StreamedFrameSource, ForwardsFramesUnchanged) {
  const auto frames = noise_frames(2);
  ReplayFrameSource plain(frames);
  ReplayFrameSource inner(frames);
  StreamedFrameSource source(inner, ingest_config(400.0e6));
  for (int i = 0; i < 2; ++i) {
    auto a = plain.next_frame();
    auto b = source.next_frame();
    ASSERT_TRUE(a && b);
    EXPECT_EQ(a->sequence, b->sequence);
    for (int e = 0; e < a->echoes.element_count(); ++e) {
      for (std::int64_t s = 0; s < a->echoes.samples_per_element(); ++s) {
        ASSERT_EQ(a->echoes.sample(e, s), b->echoes.sample(e, s));
      }
    }
  }
}

TEST(StreamedFrameSource, RejectsUnconfiguredModel) {
  ReplayFrameSource inner(noise_frames(1));
  EXPECT_THROW(StreamedFrameSource(inner, hw::StreamBufferConfig{}),
               ContractViolation);
}

TEST(StreamedFrameSource, UnderrunAccountingAccumulatesAcrossFrames) {
  // Starved bandwidth: every frame underruns, and the per-frame model
  // results must accumulate monotonically — frames, underrun_frames and
  // stall_cycles all grow with each delivery, min margin only worsens.
  ReplayFrameSource inner(noise_frames(5));
  StreamedFrameSource source(inner, ingest_config(10.0e6));
  std::int64_t last_stalls = 0;
  double last_margin = 0.0;
  for (std::int64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(source.next_frame().has_value());
    const IngestModelReport& r = source.report();
    EXPECT_EQ(r.frames, i);
    EXPECT_EQ(r.underrun_frames, i);
    EXPECT_GT(r.stall_cycles, last_stalls);
    if (i == 1) {
      last_margin = r.min_margin_cycles;
    } else {
      EXPECT_LE(r.min_margin_cycles, last_margin);
      last_margin = r.min_margin_cycles;
    }
    last_stalls = r.stall_cycles;
    EXPECT_GT(r.modeled_ingest_s, 0.0);
  }
  EXPECT_FALSE(source.report().feasible());
}

TEST(StreamedFrameSource, ReportOnlyModeNeverSleeps) {
  ReplayFrameSource inner(noise_frames(3));
  StreamedFrameSource source(inner, ingest_config(400.0e6));
  EXPECT_EQ(source.pacing(), IngestPacing::kReportOnly);
  while (source.next_frame()) {
  }
  EXPECT_GT(source.report().modeled_ingest_s, 0.0);
  EXPECT_DOUBLE_EQ(source.report().paced_wait_s, 0.0);
}

TEST(StreamedFrameSource, WallClockPacingHoldsDeliveryToTheModeledRate) {
  // 4 elements x 64 samples = 256 words per frame; drained at 0.25
  // words/cycle that is ~1024 cycles/frame. At a 100 kHz model clock each
  // frame models ~10 ms of front-end time, so pulling 4 frames must take
  // at least ~40 ms of wall clock when pacing is on.
  hw::StreamBufferConfig cfg = ingest_config(400.0e6);
  cfg.clock_hz = 100.0e3;
  ReplayFrameSource inner(noise_frames(4));
  StreamedFrameSource source(inner, cfg, IngestPacing::kWallClock);
  const auto t0 = std::chrono::steady_clock::now();
  int frames = 0;
  while (source.next_frame()) ++frames;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(frames, 4);
  const IngestModelReport& r = source.report();
  EXPECT_GT(r.modeled_ingest_s, 0.03);
  // The consumer was faster than the modeled front-end, so delivery was
  // held back to the acquisition rate (with a little scheduler slack).
  EXPECT_GE(elapsed, 0.9 * r.modeled_ingest_s);
  EXPECT_GT(r.paced_wait_s, 0.0);
}

}  // namespace
}  // namespace us3d::runtime
