#include "hw/tablefree_unit.h"

#include <gtest/gtest.h>

#include "common/contracts.h"

namespace us3d::hw {
namespace {

const imaging::SystemConfig kPaper = imaging::paper_system();

delay::TableFreeEngine::TrackerStats stats_with_mean(double steps_per_eval) {
  delay::TableFreeEngine::TrackerStats s;
  s.evaluations = 1'000'000;
  s.total_steps = static_cast<std::int64_t>(steps_per_eval * 1.0e6);
  s.max_steps_single_evaluation = 3;
  return s;
}

TEST(TableFreeTiming, PaperRuleOfThumbOneFpsPer20MHz) {
  // Sec. IV-B: "an achievable frame rate of about 1 fps per 20 MHz of
  // operating frequency" -> 167 MHz gives ~8 fps (Table II says 7.8).
  const TableFreeTiming t = analyze_tablefree_timing(
      kPaper, stats_with_mean(0.02), TableFreeUnitModel{});
  EXPECT_NEAR(t.frame_rate, 8.0, 0.5);
  EXPECT_NEAR(t.frame_rate, 167.0e6 / 20.0e6, 0.6);
}

TEST(TableFreeTiming, CyclesScaleWithVolume) {
  const TableFreeTiming t = analyze_tablefree_timing(
      kPaper, stats_with_mean(0.0), TableFreeUnitModel{});
  // 16.384e6 points / 0.8 efficiency plus refills.
  EXPECT_NEAR(t.cycles_per_frame, 16.384e6 / 0.8, 1e4);
}

TEST(TableFreeTiming, StallsReduceFrameRate) {
  const TableFreeTiming clean = analyze_tablefree_timing(
      kPaper, stats_with_mean(0.0), TableFreeUnitModel{});
  const TableFreeTiming stalled = analyze_tablefree_timing(
      kPaper, stats_with_mean(0.5), TableFreeUnitModel{});
  EXPECT_LT(stalled.frame_rate, clean.frame_rate);
  EXPECT_NEAR(stalled.frame_rate, clean.frame_rate / 1.5, 0.1);
}

TEST(TableFreeTiming, FleetThroughputIsPerUnitTimesElements) {
  const TableFreeTiming t = analyze_tablefree_timing(
      kPaper, stats_with_mean(0.0), TableFreeUnitModel{});
  EXPECT_NEAR(t.fleet_delays_per_second,
              t.delays_per_second_per_unit * 10'000.0, 1.0);
}

TEST(TableFreeTiming, HigherClockScalesLinearly) {
  TableFreeUnitModel fast;
  fast.clock_hz = 334.0e6;
  const TableFreeTiming slow = analyze_tablefree_timing(
      kPaper, stats_with_mean(0.0), TableFreeUnitModel{});
  const TableFreeTiming quick =
      analyze_tablefree_timing(kPaper, stats_with_mean(0.0), fast);
  EXPECT_NEAR(quick.frame_rate / slow.frame_rate, 2.0, 0.01);
}

TEST(TableFreeTiming, RejectsBadModel) {
  TableFreeUnitModel bad;
  bad.clock_hz = 0.0;
  EXPECT_THROW(
      analyze_tablefree_timing(kPaper, stats_with_mean(0.0), bad),
      ContractViolation);
  bad = TableFreeUnitModel{};
  bad.datapath_efficiency = 0.0;
  EXPECT_THROW(
      analyze_tablefree_timing(kPaper, stats_with_mean(0.0), bad),
      ContractViolation);
}

}  // namespace
}  // namespace us3d::hw
