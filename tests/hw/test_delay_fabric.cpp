#include "hw/delay_fabric.h"

#include <gtest/gtest.h>

#include "common/contracts.h"

namespace us3d::hw {
namespace {

const imaging::SystemConfig kPaper = imaging::paper_system();

TEST(FabricConfig, PaperBlockGeometry) {
  const FabricConfig f;
  // Sec. V-B: "8 + 16 x 8 = 136 adders per block", 128 outputs per cycle.
  EXPECT_EQ(f.adders_per_block(), 136);
  EXPECT_EQ(f.delays_per_cycle_per_block(), 128);
}

TEST(FabricAnalysis, PaperThroughputNumbers) {
  const FabricAnalysis a = analyze_fabric(kPaper, FabricConfig{});
  // Sec. V-B: "128 blocks ... can reach a peak throughput of 3.3 Tdelays/s
  // at 200 MHz, meeting specifications".
  EXPECT_NEAR(a.peak_delays_per_second, 3.28e12, 0.01e12);
  EXPECT_NEAR(a.required_delays_per_second, 2.46e12, 0.01e12);
  EXPECT_NEAR(a.utilization, 0.75, 0.01);
  EXPECT_TRUE(a.meets_realtime);
  // Table II: ~19.7-20 fps at peak.
  EXPECT_NEAR(a.frame_rate_at_peak, 20.0, 0.5);
  EXPECT_EQ(a.total_adders, 136 * 128);
}

TEST(FabricAnalysis, PaperMemoryNumbers) {
  const FabricAnalysis a = analyze_fabric(kPaper, FabricConfig{});
  EXPECT_DOUBLE_EQ(a.table_fetches_per_second, 960.0);
  EXPECT_NEAR(a.dram_bandwidth_bytes_per_second, 5.4e9, 0.1e9);
  // Each fetched entry is reused 8x from BRAM (4 mirrored elements x
  // 256 scanlines / 128 outputs per read).
  EXPECT_NEAR(a.reuse_per_fetched_entry, 8.0, 0.01);
}

TEST(FabricAnalysis, FourteenBitLowersBandwidthOnly) {
  FabricConfig f14;
  f14.entry_format = fx::kRefDelay14;
  const FabricAnalysis a18 = analyze_fabric(kPaper, FabricConfig{});
  const FabricAnalysis a14 = analyze_fabric(kPaper, f14);
  EXPECT_DOUBLE_EQ(a14.peak_delays_per_second, a18.peak_delays_per_second);
  EXPECT_LT(a14.dram_bandwidth_bytes_per_second,
            a18.dram_bandwidth_bytes_per_second);
  EXPECT_NEAR(a14.dram_bandwidth_bytes_per_second, 4.2e9, 0.1e9);
}

TEST(FabricAnalysis, HalfTheBlocksMissRealtime) {
  FabricConfig f;
  f.blocks = 32;
  const FabricAnalysis a = analyze_fabric(kPaper, f);
  EXPECT_FALSE(a.meets_realtime);
  EXPECT_GT(a.utilization, 1.0);
}

TEST(FabricStreaming, BalancedBandwidthRunsCleanly) {
  const StreamBufferReport r =
      simulate_fabric_streaming(kPaper, FabricConfig{}, 3, 1.02);
  EXPECT_FALSE(r.underrun);
  // Sec. V-B: "an ample margin of 1k cycles of latency to fetch new data".
  EXPECT_GT(r.min_margin_cycles, 1000.0);
}

TEST(FabricStreaming, ToleratesRefreshBlackouts) {
  const StreamBufferReport r = simulate_fabric_streaming(
      kPaper, FabricConfig{}, 3, 1.05, /*blackout_period=*/7800,
      /*blackout_duration=*/200);
  EXPECT_FALSE(r.underrun);
}

TEST(FabricStreaming, InsufficientBandwidthUnderruns) {
  const StreamBufferReport r =
      simulate_fabric_streaming(kPaper, FabricConfig{}, 2, 0.5);
  EXPECT_TRUE(r.underrun);
}

TEST(FabricAnalysis, RejectsInvalidConfig) {
  FabricConfig f;
  f.blocks = 0;
  EXPECT_THROW(analyze_fabric(kPaper, f), ContractViolation);
  EXPECT_THROW(simulate_fabric_streaming(kPaper, FabricConfig{}, 0),
               ContractViolation);
}

}  // namespace
}  // namespace us3d::hw
