#include "hw/nappe_interleaver.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "common/contracts.h"

namespace us3d::hw {
namespace {

TEST(NappeInterleaver, ConsecutiveDepthsHitDistinctBanks) {
  const NappeInterleaver il(128, 2500, 1000);
  std::set<int> banks;
  for (int d = 0; d < 128; ++d) banks.insert(il.locate(7, d).bank);
  EXPECT_EQ(banks.size(), 128u);  // full parallelism over a bank-wide window
}

TEST(NappeInterleaver, MappingIsInjective) {
  const NappeInterleaver il(8, 16, 40);
  std::set<std::pair<int, std::int64_t>> seen;
  for (std::int64_t q = 0; q < 16; ++q) {
    for (int d = 0; d < 40; ++d) {
      const auto loc = il.locate(q, d);
      EXPECT_TRUE(seen.insert({loc.bank, loc.line}).second)
          << "collision at element " << q << " depth " << d;
      EXPECT_GE(loc.bank, 0);
      EXPECT_LT(loc.bank, 8);
      EXPECT_GE(loc.line, 0);
      EXPECT_LT(loc.line, il.lines_per_bank());
    }
  }
}

TEST(NappeInterleaver, BankIsDepthModuloBanks) {
  const NappeInterleaver il(128, 2500, 1000);
  EXPECT_EQ(il.locate(0, 0).bank, 0);
  EXPECT_EQ(il.locate(0, 127).bank, 127);
  EXPECT_EQ(il.locate(0, 128).bank, 0);
  EXPECT_EQ(il.locate(42, 200).bank, 200 % 128);
}

TEST(NappeInterleaver, LinesPerBankCoversTable) {
  const NappeInterleaver il(128, 2500, 1000);
  // 1000 depths / 128 banks = 8 rows per element per bank.
  EXPECT_EQ(il.lines_per_bank(), 2500 * 8);
  // Total capacity >= table entries.
  EXPECT_GE(il.lines_per_bank() * 128, 2'500'000);
}

TEST(NappeInterleaver, WindowParallelism) {
  const NappeInterleaver il(128, 2500, 1000);
  EXPECT_EQ(il.banks_touched_by_depth_window(0, 1), 1);
  EXPECT_EQ(il.banks_touched_by_depth_window(0, 64), 64);
  EXPECT_EQ(il.banks_touched_by_depth_window(0, 128), 128);
  EXPECT_EQ(il.banks_touched_by_depth_window(0, 500), 128);  // saturates
  // Clipped at the end of the depth range.
  EXPECT_EQ(il.banks_touched_by_depth_window(999, 128), 1);
}

TEST(NappeInterleaver, UnevenDepthsStillInjective) {
  const NappeInterleaver il(8, 5, 11);  // 11 depths over 8 banks
  std::set<std::pair<int, std::int64_t>> seen;
  for (std::int64_t q = 0; q < 5; ++q) {
    for (int d = 0; d < 11; ++d) {
      EXPECT_TRUE(
          seen.insert({il.locate(q, d).bank, il.locate(q, d).line}).second);
    }
  }
}

TEST(NappeInterleaver, RejectsBadArguments) {
  EXPECT_THROW(NappeInterleaver(0, 10, 10), ContractViolation);
  const NappeInterleaver il(8, 10, 10);
  EXPECT_THROW(il.locate(10, 0), ContractViolation);
  EXPECT_THROW(il.locate(0, 10), ContractViolation);
  EXPECT_THROW(il.banks_touched_by_depth_window(0, 0), ContractViolation);
}

}  // namespace
}  // namespace us3d::hw
