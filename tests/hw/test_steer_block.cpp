#include "hw/steer_block.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/contracts.h"
#include "delay/reference_table.h"
#include "delay/steering.h"
#include "imaging/system_config.h"
#include "probe/transducer.h"

namespace us3d::hw {
namespace {

imaging::SystemConfig small_cfg() { return imaging::scaled_system(8, 16, 60); }

delay::TableSteerConfig fmt18() { return delay::TableSteerConfig::bits18(); }

TEST(SteerBlock, GeometryMatchesPaperBlock) {
  const SteerBlock block(fmt18());
  EXPECT_EQ(block.x_slots(), 8);
  EXPECT_EQ(block.y_slots(), 16);
  EXPECT_EQ(block.outputs_per_cycle(), 128);
  EXPECT_EQ(block.adder_count(), 136);  // 8 + 16*8 (Sec. V-B)
}

TEST(SteerBlock, RequiresLoadBeforeCycle) {
  const SteerBlock block(fmt18());
  std::vector<std::int32_t> out(128);
  const fx::Value ref = fx::Value::from_real(100.0, fmt18().entry_format);
  EXPECT_THROW(block.cycle(ref, out), ContractViolation);
}

TEST(SteerBlock, ZeroCorrectionsPassReferenceThrough) {
  SteerBlock block(fmt18());
  const fx::Value zero = fx::Value::from_raw(0, fmt18().coeff_format);
  std::vector<fx::Value> xs(8, zero), ys(16, zero);
  block.load_corrections(xs, ys);
  const fx::Value ref = fx::Value::from_real(1234.5, fmt18().entry_format);
  std::vector<std::int32_t> out(128);
  block.cycle(ref, out);
  for (const auto v : out) {
    EXPECT_EQ(v, 1235);  // round-half-up of 1234.5
  }
}

TEST(SteerBlock, OutputsOrderedYOuterXInner) {
  SteerBlock block(fmt18());
  std::vector<fx::Value> xs, ys;
  for (int i = 0; i < 8; ++i) {
    xs.push_back(fx::Value::from_real(i, fmt18().coeff_format));
  }
  for (int j = 0; j < 16; ++j) {
    ys.push_back(fx::Value::from_real(100.0 * j, fmt18().coeff_format));
  }
  block.load_corrections(xs, ys);
  const fx::Value ref = fx::Value::from_real(1000.0, fmt18().entry_format);
  std::vector<std::int32_t> out(128);
  block.cycle(ref, out);
  // out[j*8 + i] = 1000 + i + 100 j.
  EXPECT_EQ(out[0], 1000);
  EXPECT_EQ(out[3], 1003);
  EXPECT_EQ(out[8], 1100);
  EXPECT_EQ(out[127], 1000 + 7 + 1500);
}

TEST(SteerBlock, NegativeSumsClampToZero) {
  SteerBlock block(fmt18());
  const fx::Value big_negative =
      fx::Value::from_real(-500.0, fmt18().coeff_format);
  std::vector<fx::Value> xs(8, big_negative), ys(16, big_negative);
  block.load_corrections(xs, ys);
  const fx::Value ref = fx::Value::from_real(100.0, fmt18().entry_format);
  std::vector<std::int32_t> out(128);
  block.cycle(ref, out);
  for (const auto v : out) EXPECT_EQ(v, 0);
}

TEST(SteerBlock, BitExactAgainstTableSteerEngine) {
  // The decisive check: one block computing an 8-theta x 16-phi patch of a
  // nappe for one element must reproduce the engine's indices exactly.
  const auto cfg = small_cfg();
  delay::TableSteerEngine engine(cfg);
  engine.begin_frame(Vec3{});
  const probe::MatrixProbe probe(cfg.probe);
  const imaging::VolumeGrid grid(cfg.volume);

  const int ix = 5, iy = 2;       // element under test
  const int theta0 = 4, phi0 = 0; // patch origin: 8 thetas x 16 phis
  const int k = 37;               // depth slice

  // Load the block's correction registers from the shared correction set.
  SteerBlock block(delay::TableSteerConfig::bits18());
  std::vector<fx::Value> xs, ys;
  // x corrections depend on phi as well; the fabric reloads them per phi
  // group, so pick one phi for stage-1 and iterate phi via stage 2 only
  // where the x-correction is phi-independent. For the equivalence check
  // we iterate the 16 phis and reload stage 1 accordingly.
  std::vector<std::int32_t> engine_out(
      static_cast<std::size_t>(engine.element_count()));
  for (int jp = 0; jp < 16; ++jp) {
    const int i_phi = phi0 + jp;
    xs.clear();
    ys.clear();
    for (int it = 0; it < 8; ++it) {
      xs.push_back(
          engine.corrections().x_correction(ix, theta0 + it, i_phi));
    }
    // Stage 2 applies the same y correction to the 8 stage-1 sums; load
    // 16 identical copies so one cycle yields all 8 outputs 16 times.
    const fx::Value cy = engine.corrections().y_correction(iy, i_phi);
    ys.assign(16, cy);
    block.load_corrections(xs, ys);

    const fx::Value ref = engine.reference_table().entry(ix, iy, k);
    std::vector<std::int32_t> block_out(128);
    block.cycle(ref, block_out);

    for (int it = 0; it < 8; ++it) {
      const auto fp = grid.focal_point(theta0 + it, i_phi, k);
      engine.compute(fp, engine_out);
      const auto flat =
          static_cast<std::size_t>(probe.flat_index(ix, iy));
      EXPECT_EQ(block_out[static_cast<std::size_t>(it)], engine_out[flat])
          << "theta " << theta0 + it << " phi " << i_phi;
    }
  }
}

TEST(SteerBlock, RejectsWrongFormatsAndSizes) {
  SteerBlock block(fmt18());
  const fx::Value zero18 = fx::Value::from_raw(0, fmt18().coeff_format);
  std::vector<fx::Value> xs(8, zero18), ys(16, zero18);
  std::vector<fx::Value> xs_short(7, zero18);
  EXPECT_THROW(block.load_corrections(xs_short, ys), ContractViolation);
  // Wrong coefficient format.
  const fx::Value zero14 =
      fx::Value::from_raw(0, delay::TableSteerConfig::bits14().coeff_format);
  std::vector<fx::Value> xs_wrong(8, zero14);
  EXPECT_THROW(block.load_corrections(xs_wrong, ys), ContractViolation);
  // Wrong reference format / output size.
  block.load_corrections(xs, ys);
  std::vector<std::int32_t> out_small(64);
  const fx::Value ref = fx::Value::from_real(10.0, fmt18().entry_format);
  EXPECT_THROW(block.cycle(ref, out_small), ContractViolation);
  const fx::Value ref14 = fx::Value::from_real(
      10.0, delay::TableSteerConfig::bits14().entry_format);
  std::vector<std::int32_t> out(128);
  EXPECT_THROW(block.cycle(ref14, out), ContractViolation);
}

}  // namespace
}  // namespace us3d::hw
