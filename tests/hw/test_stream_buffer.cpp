#include "hw/stream_buffer.h"

#include <gtest/gtest.h>

#include "common/contracts.h"

namespace us3d::hw {
namespace {

StreamBufferConfig base_config() {
  StreamBufferConfig cfg;
  cfg.capacity_words = 1024;
  cfg.clock_hz = 200.0e6;
  cfg.word_bits = 18;
  cfg.drain_words_per_cycle = 1.0;
  // Producer exactly matches: 1 word/cycle = 18 bits * 200 MHz / 8.
  cfg.dram_bandwidth_bytes_per_s = 18.0 / 8.0 * 200.0e6;
  cfg.initial_fill_words = 1024;
  return cfg;
}

TEST(StreamBuffer, BalancedRatesNeverUnderrun) {
  const StreamBufferReport r = simulate_stream(base_config(), 100'000);
  EXPECT_FALSE(r.underrun);
  EXPECT_EQ(r.underrun_cycles, 0);
  EXPECT_GT(r.min_fill_words, 900);  // stays near full
}

TEST(StreamBuffer, ProducerSurplusKeepsBufferFull) {
  StreamBufferConfig cfg = base_config();
  cfg.dram_bandwidth_bytes_per_s *= 2.0;
  const StreamBufferReport r = simulate_stream(cfg, 100'000);
  EXPECT_FALSE(r.underrun);
  // Within one drain quantum of full for the whole live stream.
  EXPECT_GE(r.min_fill_words, 1023);
}

TEST(StreamBuffer, StarvedProducerUnderruns) {
  StreamBufferConfig cfg = base_config();
  cfg.dram_bandwidth_bytes_per_s *= 0.5;  // half the needed bandwidth
  const StreamBufferReport r = simulate_stream(cfg, 100'000);
  EXPECT_TRUE(r.underrun);
  EXPECT_GT(r.underrun_cycles, 10'000);
}

TEST(StreamBuffer, EmptyStartRidesOnProducer) {
  StreamBufferConfig cfg = base_config();
  cfg.initial_fill_words = 0;
  cfg.dram_bandwidth_bytes_per_s *= 1.5;
  const StreamBufferReport r = simulate_stream(cfg, 50'000);
  // A strictly faster producer eventually builds margin; transient
  // underruns at the very start are expected and counted.
  EXPECT_LT(r.underrun_cycles, 10);
}

TEST(StreamBuffer, ShortBlackoutAbsorbedByBuffer) {
  StreamBufferConfig cfg = base_config();
  cfg.dram_bandwidth_bytes_per_s *= 1.1;
  cfg.blackout_period_cycles = 10'000;
  cfg.blackout_duration_cycles = 500;  // < capacity at 1 word/cycle
  const StreamBufferReport r = simulate_stream(cfg, 200'000);
  EXPECT_FALSE(r.underrun);
  EXPECT_LT(r.min_fill_words, 1024);  // blackout visibly dents occupancy
}

TEST(StreamBuffer, LongBlackoutUnderruns) {
  StreamBufferConfig cfg = base_config();
  cfg.blackout_period_cycles = 10'000;
  cfg.blackout_duration_cycles = 2'000;  // exceeds buffer capacity
  const StreamBufferReport r = simulate_stream(cfg, 200'000);
  EXPECT_TRUE(r.underrun);
}

TEST(StreamBuffer, MarginCyclesIsFillOverDrain) {
  StreamBufferConfig cfg = base_config();
  cfg.dram_bandwidth_bytes_per_s *= 2.0;
  cfg.drain_words_per_cycle = 2.0;
  const StreamBufferReport r = simulate_stream(cfg, 100'000);
  EXPECT_DOUBLE_EQ(r.min_margin_cycles,
                   static_cast<double>(r.min_fill_words) / 2.0);
}

TEST(StreamBuffer, ConsumesExactlyTotalWords) {
  StreamBufferConfig cfg = base_config();
  const StreamBufferReport r = simulate_stream(cfg, 12'345);
  // cycle count ~ total/drain, allowing pipeline effects.
  EXPECT_GE(r.cycles_simulated, 12'345);
  EXPECT_LT(r.cycles_simulated, 12'345 + 2048);
}

TEST(StreamBuffer, RejectsInvalidConfig) {
  StreamBufferConfig cfg = base_config();
  cfg.capacity_words = 0;
  EXPECT_THROW(simulate_stream(cfg, 100), ContractViolation);
  cfg = base_config();
  cfg.drain_words_per_cycle = 0.0;
  EXPECT_THROW(simulate_stream(cfg, 100), ContractViolation);
  cfg = base_config();
  cfg.initial_fill_words = 4096;  // above capacity
  EXPECT_THROW(simulate_stream(cfg, 100), ContractViolation);
}

}  // namespace
}  // namespace us3d::hw
