#include "acoustic/pulse.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.h"
#include "common/contracts.h"

namespace us3d::acoustic {
namespace {

TEST(GaussianPulse, PeakAtZeroIsOne) {
  const GaussianPulse p(4.0e6, 4.0e6);
  EXPECT_DOUBLE_EQ(p.value(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.envelope(0.0), 1.0);
}

TEST(GaussianPulse, EnvelopeIsSymmetric) {
  const GaussianPulse p(4.0e6, 4.0e6);
  for (double t = 0.0; t < 1.0e-6; t += 0.05e-6) {
    EXPECT_DOUBLE_EQ(p.envelope(t), p.envelope(-t));
  }
}

TEST(GaussianPulse, OscillatesAtCenterFrequency) {
  const GaussianPulse p(4.0e6, 1.0e6);  // narrowband: many cycles
  const double period = 1.0 / 4.0e6;
  // Zero crossings at quarter-period offsets.
  EXPECT_NEAR(p.value(period / 4.0) / p.envelope(period / 4.0), 0.0, 1e-9);
  // Trough at half period.
  EXPECT_NEAR(p.value(period / 2.0) / p.envelope(period / 2.0), -1.0, 1e-9);
}

TEST(GaussianPulse, BandwidthSetsSigma) {
  // sigma = sqrt(2 ln 2) / (pi B): for B = 4 MHz, ~93.7 ns.
  const GaussianPulse p(4.0e6, 4.0e6);
  EXPECT_NEAR(p.sigma(), 93.7e-9, 0.5e-9);
  // Wider bandwidth -> shorter pulse.
  const GaussianPulse wide(4.0e6, 8.0e6);
  EXPECT_LT(wide.sigma(), p.sigma());
}

TEST(GaussianPulse, HalfAmplitudeAtHalfBandwidthOffsetInSpectrum) {
  // Verify the -6 dB definition numerically via the analytic spectrum
  // exp(-sigma^2 (2 pi f)^2 / 2) evaluated at f = B/2.
  const double b = 4.0e6;
  const GaussianPulse p(4.0e6, b);
  const double s = p.sigma();
  const double mag =
      std::exp(-s * s * std::pow(2.0 * kPi * b / 2.0, 2.0) / 2.0);
  EXPECT_NEAR(mag, 0.5, 1e-9);
}

TEST(GaussianPulse, SupportCoversEnvelope) {
  const GaussianPulse p(4.0e6, 4.0e6);
  EXPECT_LT(p.envelope(p.support()), 1e-5);
  EXPECT_GT(p.envelope(p.support() * 0.5), 1e-4);
}

TEST(GaussianPulse, RejectsBadParameters) {
  EXPECT_THROW(GaussianPulse(0.0, 1.0e6), ContractViolation);
  EXPECT_THROW(GaussianPulse(4.0e6, 0.0), ContractViolation);
}

}  // namespace
}  // namespace us3d::acoustic
