#include "acoustic/echo_synth.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/contracts.h"
#include "delay/exact.h"
#include "probe/transducer.h"

namespace us3d::acoustic {
namespace {

imaging::SystemConfig small_cfg() { return imaging::scaled_system(6, 8, 40); }

TEST(EchoSynth, BufferShapeMatchesConfig) {
  const auto cfg = small_cfg();
  const auto echoes = synthesize_echoes(cfg, {});
  EXPECT_EQ(echoes.element_count(), 36);
  EXPECT_EQ(echoes.samples_per_element(), cfg.echo_buffer_samples());
}

TEST(EchoSynth, EmptyPhantomGivesSilence) {
  const auto cfg = small_cfg();
  const auto echoes = synthesize_echoes(cfg, {});
  for (int e = 0; e < echoes.element_count(); ++e) {
    for (const float v : echoes.row(e)) EXPECT_EQ(v, 0.0f);
  }
}

TEST(EchoSynth, EchoPeaksAtExactTwoWayDelay) {
  // Target inside the scaled system's 7.7 mm depth range.
  const auto cfg = small_cfg();
  const Vec3 target{0.0, 0.0, 5.0e-3};
  const auto echoes = synthesize_echoes(cfg, {{target, 1.0}});
  const probe::MatrixProbe probe(cfg.probe);
  for (int e = 0; e < probe.element_count(); e += 7) {
    const double t = delay::two_way_delay_s(
        Vec3{}, target, probe.element_position(e), cfg.speed_of_sound);
    const auto idx = static_cast<std::int64_t>(
        std::llround(t * cfg.sampling_frequency_hz));
    // The sample nearest the true delay carries (nearly) the pulse peak.
    EXPECT_GT(echoes.sample(e, idx), 0.8f);
    // Far from the arrival, silence.
    EXPECT_EQ(echoes.sample(e, idx + 400), 0.0f);
  }
}

TEST(EchoSynth, AmplitudeScalesLinearly) {
  const auto cfg = small_cfg();
  const Vec3 target{1.0e-3, -0.5e-3, 12.0e-3};
  const auto weak = synthesize_echoes(cfg, {{target, 0.5}});
  const auto strong = synthesize_echoes(cfg, {{target, 2.0}});
  for (int i = 0; i < 200; ++i) {
    const auto idx = cfg.echo_buffer_samples() / 3 + i;
    EXPECT_NEAR(strong.sample(0, idx), 4.0f * weak.sample(0, idx), 1e-4f);
  }
}

TEST(EchoSynth, TwoScatterersSuperpose) {
  const auto cfg = small_cfg();
  const Vec3 a{0.0, 0.0, 10.0e-3};
  const Vec3 b{0.0, 0.0, 20.0e-3};
  const auto ea = synthesize_echoes(cfg, {{a, 1.0}});
  const auto eb = synthesize_echoes(cfg, {{b, 1.0}});
  const auto both = synthesize_echoes(cfg, {{a, 1.0}, {b, 1.0}});
  for (std::int64_t i = 0; i < cfg.echo_buffer_samples(); i += 17) {
    EXPECT_NEAR(both.sample(3, i), ea.sample(3, i) + eb.sample(3, i), 1e-5f);
  }
}

TEST(EchoSynth, SphericalSpreadingAttenuatesDeepEchoes) {
  const auto cfg = small_cfg();
  const Vec3 shallow{0.0, 0.0, 2.0e-3};
  const Vec3 deep{0.0, 0.0, 7.0e-3};
  SynthesisOptions opt;
  opt.spherical_spreading = true;
  const auto es = synthesize_echoes(cfg, {{shallow, 1.0}}, opt);
  const auto ed = synthesize_echoes(cfg, {{deep, 1.0}}, opt);
  auto peak_of = [&](const beamform::EchoBuffer& buf) {
    float best = 0.0f;
    for (const float v : buf.row(0)) best = std::max(best, std::abs(v));
    return best;
  };
  EXPECT_GT(peak_of(es), 10.0f * peak_of(ed));
}

TEST(EchoSynth, DisplacedOriginShiftsArrival) {
  const auto cfg = small_cfg();
  const Vec3 target{0.0, 0.0, 5.0e-3};
  SynthesisOptions opt;
  opt.origin = Vec3{0.0, 0.0, -2.0e-3};  // virtual source behind probe
  const auto centred = synthesize_echoes(cfg, {{target, 1.0}});
  const auto displaced = synthesize_echoes(cfg, {{target, 1.0}}, opt);
  auto first_nonzero = [](const beamform::EchoBuffer& buf) {
    const auto row = buf.row(0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (std::abs(row[i]) > 1e-4f) return static_cast<std::int64_t>(i);
    }
    return std::int64_t{-1};
  };
  EXPECT_GT(first_nonzero(displaced), first_nonzero(centred));
}

TEST(EchoSynth, RejectsScattererBehindProbe) {
  const auto cfg = small_cfg();
  EXPECT_THROW(synthesize_echoes(cfg, {{Vec3{0.0, 0.0, -1.0e-3}, 1.0}}),
               ContractViolation);
}

}  // namespace
}  // namespace us3d::acoustic
