#include "acoustic/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.h"
#include "common/contracts.h"

namespace us3d::acoustic {
namespace {

imaging::VolumeSpec spec(int n = 21) {
  return imaging::VolumeSpec{
      .n_theta = n,
      .n_phi = n,
      .n_depth = n,
      .theta_span_rad = deg_to_rad(40.0),
      .phi_span_rad = deg_to_rad(40.0),
      .min_depth_m = 1.0e-3,
      .max_depth_m = 21.0e-3,
  };
}

/// Builds a separable Gaussian blob centred at (c,c,c).
beamform::VolumeImage gaussian_blob(double sigma_theta, double sigma_phi,
                                    double sigma_depth, float floor_level = 0.0f) {
  const auto s = spec();
  beamform::VolumeImage img(s);
  const int c = 10;
  for (int it = 0; it < s.n_theta; ++it) {
    for (int ip = 0; ip < s.n_phi; ++ip) {
      for (int id = 0; id < s.n_depth; ++id) {
        const double g =
            std::exp(-0.5 * (std::pow((it - c) / sigma_theta, 2.0) +
                             std::pow((ip - c) / sigma_phi, 2.0) +
                             std::pow((id - c) / sigma_depth, 2.0)));
        img.at(it, ip, id) = static_cast<float>(g) + floor_level;
      }
    }
  }
  return img;
}

TEST(PsfMetrics, PeakFoundAtBlobCentre) {
  const auto img = gaussian_blob(2.0, 2.0, 2.0);
  const PsfMetrics m = measure_psf(img);
  EXPECT_EQ(m.peak.i_theta, 10);
  EXPECT_EQ(m.peak.i_phi, 10);
  EXPECT_EQ(m.peak.i_depth, 10);
}

TEST(PsfMetrics, WidthMatchesGaussianFwhm) {
  // -6 dB (half-amplitude) full width of a Gaussian = 2.355 sigma.
  const auto img = gaussian_blob(2.0, 2.0, 2.0);
  const PsfMetrics m = measure_psf(img);
  EXPECT_NEAR(m.width_theta, 2.355 * 2.0, 0.2);
  EXPECT_NEAR(m.width_phi, 2.355 * 2.0, 0.2);
  EXPECT_NEAR(m.width_depth, 2.355 * 2.0, 0.2);
}

TEST(PsfMetrics, AnisotropicBlobHasAnisotropicWidths) {
  const auto img = gaussian_blob(1.0, 2.0, 4.0);
  const PsfMetrics m = measure_psf(img);
  EXPECT_LT(m.width_theta, m.width_phi);
  EXPECT_LT(m.width_phi, m.width_depth);
}

TEST(PsfMetrics, SidelobeRatioDetectsSecondaryPeak) {
  auto img = gaussian_blob(1.5, 1.5, 1.5);
  img.at(2, 2, 2) = 0.25f;  // artificial sidelobe far from the main lobe
  const PsfMetrics m = measure_psf(img, /*mainlobe_exclusion=*/5);
  EXPECT_NEAR(m.sidelobe_ratio, 0.25, 0.02);
}

TEST(PsfMetrics, CleanBlobHasLowSidelobes) {
  const auto img = gaussian_blob(1.5, 1.5, 1.5);
  const PsfMetrics m = measure_psf(img, 6);
  EXPECT_LT(m.sidelobe_ratio, 1e-4);
}

TEST(PsfMetrics, PeakOffsetSteps) {
  const auto img = gaussian_blob(2.0, 2.0, 2.0);
  const PsfMetrics m = measure_psf(img);
  EXPECT_DOUBLE_EQ(peak_offset_steps(m, 10, 10, 10), 0.0);
  EXPECT_DOUBLE_EQ(peak_offset_steps(m, 10, 10, 13), 3.0);
  EXPECT_NEAR(peak_offset_steps(m, 9, 9, 9), std::sqrt(3.0), 1e-12);
}

TEST(PsfMetrics, RejectsNegativeExclusion) {
  const auto img = gaussian_blob(2.0, 2.0, 2.0);
  EXPECT_THROW(measure_psf(img, -1), ContractViolation);
}

}  // namespace
}  // namespace us3d::acoustic
