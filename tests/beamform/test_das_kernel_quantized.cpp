// The integer (int16) DAS row kernels and their exact-arithmetic contract:
// every available backend must be bit-identical to the integer scalar
// reference — same sanitized-delay semantics, same
// (weight * sample) >> kQuantWeightFracBits per point, same int32
// accumulation — on random blocks, on adversarial delay-delta patterns
// (both the pair-compressed gather hit path and its wide-pair fallback in
// the AVX2 kernel), on sentinel-heavy planes, and on every tail size.
// Also pins the format invariants of QuantizedDelayPlane and
// QuantizedEchoBuffer the compare-free kernel contract rests on.
#include "beamform/das_kernel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "beamform/beamformer.h"
#include "beamform/quantized.h"
#include "common/contracts.h"
#include "common/prng.h"
#include "delay/quantized_plane.h"
#include "delay/tablefree.h"
#include "imaging/volume.h"
#include "simd/dispatch.h"

namespace us3d::beamform {
namespace {

imaging::SystemConfig small_cfg() { return imaging::scaled_system(6, 7, 24); }

EchoBuffer random_echoes(const imaging::SystemConfig& cfg,
                         std::uint64_t seed) {
  EchoBuffer echoes(cfg.probe.element_count(), cfg.echo_buffer_samples());
  SplitMix64 prng(seed);
  for (int e = 0; e < echoes.element_count(); ++e) {
    for (float& v : echoes.row(e)) {
      v = static_cast<float>(prng.next_in(-1.0, 1.0));
    }
  }
  return echoes;
}

std::vector<simd::DasBackend> vector_backends() {
  std::vector<simd::DasBackend> result;
  for (simd::DasBackend b : simd::available_backends()) {
    if (b != simd::DasBackend::kScalar) result.push_back(b);
  }
  return result;
}

std::size_t padded16(int points) {
  return static_cast<std::size_t>((points + 15) / 16 * 16);
}

// The integer row contract, written out longhand: the value every backend
// must reproduce bit for bit.
std::int32_t reference_term(const QuantizedEchoBuffer& echoes, int element,
                            std::int16_t delay, std::int32_t weight) {
  // Sanitized delays address the echo row directly; the sentinel `samples`
  // lands in the guaranteed-zero padding, so no bounds logic exists here
  // either — exactly like the kernels.
  const std::int16_t* row = echoes.row(element).data();
  return (weight * static_cast<std::int32_t>(row[delay])) >>
         simd::kQuantWeightFracBits;
}

TEST(DasKernelQuantized, EveryAvailableBackendMatchesScalarBitForBit) {
  const auto cfg = small_cfg();
  const probe::MatrixProbe probe(cfg.probe);
  const probe::ApodizationMap apod(probe, probe::WindowKind::kHann);
  const DasKernel kernel(apod);
  const EchoBuffer echoes = random_echoes(cfg, 0x0a51d3ull);
  QuantizedEchoBuffer qechoes;
  qechoes.quantize_from(echoes);
  const std::int64_t samples = echoes.samples_per_element();

  SplitMix64 prng(0x9bacc3ull);
  // Sizes straddle the 16-point pair loop, the 8-point epilogue and the
  // scalar tail of the integer kernels.
  for (const int points : {1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 24, 31, 33, 48,
                           63, 64}) {
    delay::DelayPlane plane;
    plane.reshape(probe.element_count(), points);
    for (int e = 0; e < probe.element_count(); ++e) {
      for (int p = 0; p < points; ++p) {
        // ~1/4 of the delays land outside the acquisition window so the
        // sentinel mapping is exercised everywhere.
        const std::int64_t idx =
            static_cast<std::int64_t>(prng.next_below(
                static_cast<std::uint64_t>(2 * samples))) -
            samples / 2;
        plane.at(e, p) = static_cast<std::int32_t>(idx);
      }
    }
    delay::QuantizedDelayPlane qplane;
    qplane.quantize_from(plane, samples);

    std::vector<std::int32_t> reference(padded16(points));
    kernel.accumulate_block_quantized(qechoes, qplane, reference,
                                      simd::DasBackend::kScalar);
    for (const simd::DasBackend backend : vector_backends()) {
      std::vector<std::int32_t> acc(padded16(points), -1);
      kernel.accumulate_block_quantized(qechoes, qplane, acc, backend);
      for (int p = 0; p < points; ++p) {
        ASSERT_EQ(acc[static_cast<std::size_t>(p)],
                  reference[static_cast<std::size_t>(p)])
            << simd::backend_name(backend) << " points=" << points
            << " p=" << p;
      }
    }
  }
}

TEST(DasKernelQuantized, ScalarReferenceMatchesTheWrittenOutContract) {
  const auto cfg = small_cfg();
  const probe::MatrixProbe probe(cfg.probe);
  const probe::ApodizationMap apod(probe, probe::WindowKind::kHann);
  const DasKernel kernel(apod);
  const EchoBuffer echoes = random_echoes(cfg, 0xc0417ac7ull);
  QuantizedEchoBuffer qechoes;
  qechoes.quantize_from(echoes);
  const std::int64_t samples = echoes.samples_per_element();

  const int points = 21;
  delay::DelayPlane plane;
  plane.reshape(probe.element_count(), points);
  SplitMix64 prng(0x5eedull);
  for (int e = 0; e < probe.element_count(); ++e) {
    for (int p = 0; p < points; ++p) {
      plane.at(e, p) = static_cast<std::int32_t>(prng.next_below(
          static_cast<std::uint64_t>(samples + 8)));  // some out-of-window
    }
  }
  delay::QuantizedDelayPlane qplane;
  qplane.quantize_from(plane, samples);

  std::vector<std::int32_t> acc(padded16(points));
  kernel.accumulate_block_quantized(qechoes, qplane, acc,
                                    simd::DasBackend::kScalar);
  const std::vector<int>& active = kernel.active_elements();
  for (int p = 0; p < points; ++p) {
    std::int32_t expected = 0;
    for (std::size_t k = 0; k < active.size(); ++k) {
      const int e = active[k];
      expected += reference_term(qechoes, e, qplane.at(e, p),
                                 quantize_weight(apod.weight_flat(e)));
    }
    ASSERT_EQ(acc[static_cast<std::size_t>(p)], expected) << "p=" << p;
  }
}

// ---------------------------------------------------------------------------
// Direct row-kernel probes: adversarial delay-delta patterns chosen to pin
// both code paths of the pair-compressed AVX2 kernel — groups where every
// even/odd pair fits one 32-bit gather lane (the hit path) and groups with
// at least one wide pair (the two-gather fallback) — plus the transitions
// between them inside one row.

struct RowCase {
  const char* label;
  std::vector<std::int16_t> delays;  // pre-sanitized: values in [0, samples]
};

std::vector<RowCase> adversarial_rows(std::int64_t samples) {
  const std::int16_t last = static_cast<std::int16_t>(samples - 1);
  const std::int16_t sentinel = static_cast<std::int16_t>(samples);
  std::vector<RowCase> cases;

  auto fill = [](int n, auto&& gen) {
    std::vector<std::int16_t> d(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) d[static_cast<std::size_t>(p)] = gen(p);
    return d;
  };

  // Every pair equal: the hit path with offset 0 everywhere.
  cases.push_back({"all-equal", fill(64, [&](int) { return 7; })});
  // Monotone +1 ramp: pairs differ by exactly 1, hit path both offsets.
  cases.push_back({"ramp-up", fill(64, [&](int p) {
    return static_cast<std::int16_t>(p % (last + 1));
  })});
  // Monotone -1 ramp: the odd lane is the pair minimum.
  cases.push_back({"ramp-down", fill(64, [&](int p) {
    return static_cast<std::int16_t>(last - p % (last + 1));
  })});
  // Alternating far apart: every pair is wide — pure fallback.
  cases.push_back({"alternating-wide", fill(64, [&](int p) {
    return static_cast<std::int16_t>(p % 2 == 0 ? 0 : last);
  })});
  // One wide pair per 16-point group: the whole group must fall back and
  // still match exactly.
  cases.push_back({"one-wide-per-group", fill(64, [&](int p) {
    if (p % 16 == 9) return last;
    return static_cast<std::int16_t>(3 + (p % 2));
  })});
  // Hit group, fallback group, hit group... transitions inside one row.
  cases.push_back({"group-transitions", fill(96, [&](int p) {
    const bool wide_group = (p / 16) % 2 == 1;
    if (wide_group) return static_cast<std::int16_t>(p % 2 == 0 ? 1 : last);
    return static_cast<std::int16_t>(11 + (p % 2));
  })});
  // Sentinel-saturated row (all out-of-window): must accumulate zero.
  cases.push_back({"all-sentinel", fill(64, [&](int) { return sentinel; })});
  // Sentinel boundary: in-window pairs adjacent to sentinel pairs; the
  // (last, sentinel) pair differs by 1 and stays on the hit path, reading
  // the guaranteed-zero entry at `samples`.
  cases.push_back({"sentinel-boundary", fill(64, [&](int p) {
    return p % 4 < 2 ? last : sentinel;
  })});
  // Tails: every length hits a different mix of 16-pt / 8-pt / scalar
  // loops.
  for (int tail = 1; tail <= 64; ++tail) {
    cases.push_back({"random-walk-tail",
                     fill(tail, [&, state = std::int16_t{16}](int p) mutable {
                       state = static_cast<std::int16_t>(
                           std::min<int>(last, std::max(0, state + (p % 3) - 1)));
                       return state;
                     })});
  }
  return cases;
}

TEST(DasKernelQuantized, AdversarialRowsMatchScalarOnEveryBackend) {
  const auto cfg = small_cfg();
  const EchoBuffer echoes = random_echoes(cfg, 0xadd3ull);
  QuantizedEchoBuffer qechoes;
  qechoes.quantize_from(echoes);
  const std::int64_t samples = qechoes.samples_per_element();
  const std::int32_t weight = quantize_weight(0.731);
  const simd::DasRowQFn scalar_fn =
      simd::das_row_q_fn(simd::DasBackend::kScalar);

  for (const RowCase& c : adversarial_rows(samples)) {
    const int points = static_cast<int>(c.delays.size());
    std::vector<std::int32_t> reference(static_cast<std::size_t>(points), 5);
    scalar_fn(qechoes.row(0).data(), samples, c.delays.data(), weight,
              reference.data(), points);
    for (const simd::DasBackend backend : vector_backends()) {
      std::vector<std::int32_t> acc(static_cast<std::size_t>(points), 5);
      simd::das_row_q_fn(backend)(qechoes.row(0).data(), samples,
                                  c.delays.data(), weight, acc.data(), points);
      for (int p = 0; p < points; ++p) {
        ASSERT_EQ(acc[static_cast<std::size_t>(p)],
                  reference[static_cast<std::size_t>(p)])
            << c.label << " " << simd::backend_name(backend)
            << " points=" << points << " p=" << p;
      }
    }
  }
}

TEST(DasKernelQuantized, SentinelRowsAccumulateExactlyZero) {
  const auto cfg = small_cfg();
  const EchoBuffer echoes = random_echoes(cfg, 0x5e47ull);
  QuantizedEchoBuffer qechoes;
  qechoes.quantize_from(echoes);
  const std::int64_t samples = qechoes.samples_per_element();
  const std::vector<std::int16_t> sentinels(
      64, static_cast<std::int16_t>(samples));
  for (const simd::DasBackend backend : simd::available_backends()) {
    std::vector<std::int32_t> acc(64, 0);
    simd::das_row_q_fn(backend)(qechoes.row(1).data(), samples,
                                sentinels.data(), quantize_weight(1.0),
                                acc.data(), 64);
    for (int p = 0; p < 64; ++p) {
      ASSERT_EQ(acc[static_cast<std::size_t>(p)], 0)
          << simd::backend_name(backend) << " p=" << p;
    }
  }
}

TEST(DasKernelQuantized, AllZeroApodizationWritesPureZeros) {
  // A 2x2 Hann aperture has only edge elements: every quantized weight is
  // zero, the active list is empty, and the kernel must neither read the
  // echoes nor the (sentinel) delays.
  auto cfg = small_cfg();
  cfg.probe.elements_x = 2;
  cfg.probe.elements_y = 2;
  const probe::MatrixProbe probe(cfg.probe);
  const probe::ApodizationMap apod(probe, probe::WindowKind::kHann);
  const DasKernel kernel(apod);
  ASSERT_EQ(kernel.active_count(), 0);

  EchoBuffer echoes(probe.element_count(), 32);
  QuantizedEchoBuffer qechoes;
  qechoes.quantize_from(echoes);
  const int points = 13;
  delay::DelayPlane plane;
  plane.reshape(probe.element_count(), points);
  for (int e = 0; e < probe.element_count(); ++e) {
    for (int p = 0; p < points; ++p) {
      plane.at(e, p) = std::numeric_limits<std::int32_t>::max() - p;
    }
  }
  delay::QuantizedDelayPlane qplane;
  qplane.quantize_from(plane, qechoes.samples_per_element());
  for (const simd::DasBackend backend : simd::available_backends()) {
    std::vector<std::int32_t> acc(padded16(points), -1);
    kernel.accumulate_block_quantized(qechoes, qplane, acc, backend);
    for (int p = 0; p < points; ++p) {
      ASSERT_EQ(acc[static_cast<std::size_t>(p)], 0)
          << simd::backend_name(backend) << " p=" << p;
    }
  }
}

// ---------------------------------------------------------------------------
// Format invariants the compare-free kernel contract rests on.

TEST(QuantizedDelayPlane, PreservesInWindowIndicesExactlyAndSentinelsTheRest) {
  delay::DelayPlane plane;
  plane.reshape(2, 7);
  const std::int64_t samples = 100;
  const std::int32_t probe_values[7] = {
      0, 99, 50, -1, 100, std::numeric_limits<std::int32_t>::max(),
      std::numeric_limits<std::int32_t>::min()};
  for (int e = 0; e < 2; ++e) {
    for (int p = 0; p < 7; ++p) plane.at(e, p) = probe_values[p];
  }
  delay::QuantizedDelayPlane qplane;
  qplane.quantize_from(plane, samples);
  const std::int16_t sentinel = static_cast<std::int16_t>(samples);
  const std::int16_t expected[7] = {0, 99, 50, sentinel, sentinel, sentinel,
                                    sentinel};
  for (int e = 0; e < 2; ++e) {
    for (int p = 0; p < 7; ++p) {
      EXPECT_EQ(qplane.at(e, p), expected[p]) << "e=" << e << " p=" << p;
    }
  }
}

TEST(QuantizedDelayPlane, PitchPaddingIsSentinelFilled) {
  delay::DelayPlane plane;
  plane.reshape(3, 21);
  for (int e = 0; e < 3; ++e) {
    for (int p = 0; p < 21; ++p) plane.at(e, p) = p;
  }
  delay::QuantizedDelayPlane qplane;
  const std::int64_t samples = 64;
  qplane.quantize_from(plane, samples);
  EXPECT_EQ(qplane.row_stride() % 32u, 0u);
  EXPECT_EQ(qplane.padded_point_count(), 32);
  ASSERT_LE(static_cast<std::size_t>(qplane.padded_point_count()),
            qplane.row_stride());
  const std::int16_t sentinel = static_cast<std::int16_t>(samples);
  for (int e = 0; e < 3; ++e) {
    const std::int16_t* row = qplane.row(e).data();
    for (std::size_t p = 21; p < qplane.row_stride(); ++p) {
      ASSERT_EQ(row[p], sentinel) << "e=" << e << " pad entry " << p;
    }
  }
}

TEST(QuantizedDelayPlane, RejectsWindowsInt16CannotAddress) {
  delay::DelayPlane plane;
  plane.reshape(1, 4);
  for (int p = 0; p < 4; ++p) plane.at(0, p) = p;
  delay::QuantizedDelayPlane qplane;
  EXPECT_NO_THROW(qplane.quantize_from(plane, simd::kQuantMaxSamples));
  EXPECT_THROW(qplane.quantize_from(plane, simd::kQuantMaxSamples + 1),
               ContractViolation);
  EXPECT_THROW(qplane.quantize_from(plane, 0), ContractViolation);
}

TEST(QuantizedEchoBuffer, PeakScalesAndZeroPadsTheSentinelEntries) {
  EchoBuffer echoes(2, 10);
  echoes.row(0)[3] = 0.5f;
  echoes.row(1)[7] = -2.0f;  // the buffer peak
  QuantizedEchoBuffer q;
  q.quantize_from(echoes);
  EXPECT_EQ(q.samples_per_element(), 10);
  EXPECT_DOUBLE_EQ(q.lsb(), 2.0 / 32767.0);
  // Peak maps to the full-scale raw word; the 0.5 sample to half of it
  // (8192 after half-up rounding of 8191.75).
  EXPECT_EQ(q.row(1).data()[7], -32767);
  EXPECT_EQ(q.row(0).data()[3], 8192);
  // The sentinel entry [samples] and the gather-overread entry
  // [samples + 1] must read zero on every row.
  for (int e = 0; e < 2; ++e) {
    EXPECT_EQ(q.row(e).data()[10], 0) << "e=" << e;
    EXPECT_EQ(q.row(e).data()[11], 0) << "e=" << e;
  }
}

TEST(QuantizedEchoBuffer, AllZeroBufferHasZeroLsbAndZeroWords) {
  EchoBuffer echoes(3, 16);
  QuantizedEchoBuffer q;
  q.quantize_from(echoes);
  EXPECT_EQ(q.lsb(), 0.0);
  for (int e = 0; e < 3; ++e) {
    for (std::int64_t s = 0; s < 16; ++s) {
      ASSERT_EQ(q.row(e).data()[s], 0);
    }
  }
}

}  // namespace
}  // namespace us3d::beamform
