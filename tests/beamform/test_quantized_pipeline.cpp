// Property tests for the declared accuracy bounds of the quantized int16
// pipeline (beamform/quantized.h) and for its runtime plumbing. Three
// claims are pinned here:
//
//  1. Index quantization adds ZERO delay error: every in-window entry of
//     the int32 DelayPlane survives int16 quantization exactly, so the
//     quantized path's delay-error budget (kQuantMaxDelayErrorSamples) is
//     spent entirely by the engine's own rounding, which the
//     delay/error_harness measures directly.
//  2. The quantized reconstruction stays within the declared image-quality
//     bounds against the exact double volume (acoustic/metrics PSNR >=
//     kQuantMinPsnrDb on the synthesized phantoms).
//  3. The parallel runtime's quantized frames are bit-identical to the
//     serial quantized beamformer, the resolved precision is reported in
//     PipelineStats, and quantized + per-voxel is rejected up front.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "acoustic/echo_synth.h"
#include "acoustic/metrics.h"
#include "acoustic/phantom.h"
#include "beamform/beamformer.h"
#include "beamform/quantized.h"
#include "common/contracts.h"
#include "common/prng.h"
#include "delay/error_harness.h"
#include "delay/full_table.h"
#include "delay/quantized_plane.h"
#include "delay/tablefree.h"
#include "delay/tablesteer.h"
#include "imaging/scan_order.h"
#include "imaging/system_config.h"
#include "probe/apodization.h"
#include "probe/presets.h"
#include "runtime/frame_pipeline.h"

namespace us3d::beamform {
namespace {

imaging::SystemConfig small_cfg() { return imaging::scaled_system(6, 7, 24); }

acoustic::Phantom corner_phantom(const imaging::SystemConfig& cfg) {
  const imaging::VolumeGrid grid(cfg.volume);
  acoustic::Phantom phantom;
  phantom.push_back(acoustic::PointScatterer{
      grid.focal_point(1, 1, cfg.volume.n_depth / 3).position, 1.0});
  phantom.push_back(acoustic::PointScatterer{
      grid.focal_point(cfg.volume.n_theta - 2, cfg.volume.n_phi - 2,
                       2 * cfg.volume.n_depth / 3)
          .position,
      0.7});
  phantom.push_back(acoustic::PointScatterer{
      grid.focal_point(cfg.volume.n_theta / 2, cfg.volume.n_phi / 2,
                       cfg.volume.n_depth / 2)
          .position,
      1.3});
  return phantom;
}

probe::ApodizationMap hann_apod(const imaging::SystemConfig& cfg) {
  return probe::ApodizationMap(probe::MatrixProbe(cfg.probe),
                               probe::WindowKind::kHann);
}

/// Claim 1, directly at the plane level: sweep a table engine over every
/// focal block of the volume and check the int16 plane against the int32
/// plane entry for entry. In-window indices must be preserved EXACTLY
/// (zero added delay error); everything else must be the sentinel.
TEST(QuantizedDelayError, IndexQuantizationAddsZeroDelayError) {
  const imaging::SystemConfig cfg = small_cfg();
  delay::TableSteerEngine engine(cfg, delay::TableSteerConfig::bits18());
  engine.begin_frame(Vec3{});

  const std::int64_t samples = 96;  // shorter than any real window: forces
                                    // genuine out-of-window entries too
  const imaging::VolumeGrid grid(cfg.volume);
  const auto order = imaging::ScanOrder::kNappeByNappe;
  delay::DelayPlane plane;
  delay::QuantizedDelayPlane qplane;
  std::vector<imaging::FocalPoint> buffer;
  std::int64_t in_window = 0;
  std::int64_t sentinels = 0;
  imaging::for_each_focal_block(
      grid, order, imaging::full_scan_range(cfg.volume, order), 64, buffer,
      [&](const imaging::FocalBlock& block) {
        engine.compute_block(block, plane);
        qplane.quantize_from(plane, samples);
        for (int e = 0; e < plane.element_count(); ++e) {
          for (int p = 0; p < plane.point_count(); ++p) {
            const std::int32_t d = plane.at(e, p);
            const std::int16_t q = qplane.at(e, p);
            if (d >= 0 && d < samples) {
              // Exact preservation — the |quantized - original| delay
              // error of the int16 path is identically zero.
              ASSERT_EQ(static_cast<std::int32_t>(q), d);
              ++in_window;
            } else {
              ASSERT_EQ(static_cast<std::int64_t>(q), samples);
              ++sentinels;
            }
          }
        }
      });
  // The sweep must have exercised both sides of the window to mean
  // anything.
  EXPECT_GT(in_window, 0);
  EXPECT_GT(sentinels, 0);
}

/// Claim 1, at the harness level: with an engine whose only error is
/// rounding exact delays to integer indices (FullTable), the end-to-end
/// selection error of the quantized path — engine rounding plus the zero
/// added by int16 quantization — stays within the declared
/// kQuantMaxDelayErrorSamples budget.
TEST(QuantizedDelayError, FullTableSelectionStaysWithinTheDeclaredBudget) {
  const imaging::SystemConfig cfg = small_cfg();
  delay::FullTableEngine engine(cfg);
  const delay::SelectionErrorReport report = delay::measure_selection_error(
      cfg, engine, imaging::ScanOrder::kNappeByNappe, delay::SweepStrides{});
  EXPECT_GT(report.pairs_total, 0);
  EXPECT_LE(report.all.max_abs(), kQuantMaxDelayErrorSamples);
}

/// Claim 2: quantized vs exact double volumes on a synthesized phantom.
/// sQ0.15 peak scaling plus uQ1.14 weights keeps the PSNR far above the
/// declared floor; the assertion is against the declared constant so a
/// format regression (fewer effective bits anywhere in the chain) fails
/// loudly.
TEST(QuantizedImageQuality, PsnrAgainstDoubleMeetsTheDeclaredBound) {
  const imaging::SystemConfig cfg = small_cfg();
  const auto echoes = acoustic::synthesize_echoes(cfg, corner_phantom(cfg));
  const auto apod = hann_apod(cfg);
  const Beamformer bf(cfg, apod);
  delay::TableFreeEngine engine(cfg);

  BeamformOptions dopts;
  dopts.precision = simd::Precision::kDouble;
  const VolumeImage exact = bf.reconstruct(echoes, engine, dopts);

  BeamformOptions qopts;
  qopts.precision = simd::Precision::kQuantized;
  const VolumeImage quantized = bf.reconstruct(echoes, engine, qopts);

  const acoustic::VolumeDiff diff = acoustic::compare_volumes(exact, quantized);
  EXPECT_GE(diff.psnr_db, kQuantMinPsnrDb)
      << "max_abs_diff=" << diff.max_abs_diff << " rms=" << diff.rms_diff;
}

/// Claim 3a: a multi-worker quantized FramePipeline is bit-identical to
/// the serial quantized Beamformer — the same guarantee the double path
/// has always made, extended to the integer sweep.
TEST(QuantizedRuntime, ParallelQuantizedIsBitIdenticalToSerialQuantized) {
  const imaging::SystemConfig cfg = small_cfg();
  const auto echoes = acoustic::synthesize_echoes(cfg, corner_phantom(cfg));
  const auto apod = hann_apod(cfg);
  const Beamformer serial(cfg, apod);
  delay::TableSteerEngine serial_engine(cfg,
                                        delay::TableSteerConfig::bits18());

  BeamformOptions qopts;
  qopts.precision = simd::Precision::kQuantized;
  const VolumeImage reference =
      serial.reconstruct(echoes, serial_engine, qopts);

  for (const int threads : {1, 2, 3}) {
    delay::TableSteerEngine prototype(cfg, delay::TableSteerConfig::bits18());
    runtime::FramePipeline pipeline(
        cfg, apod, prototype,
        runtime::PipelineConfig{.worker_threads = threads,
                                .precision = simd::Precision::kQuantized});
    const VolumeImage parallel = pipeline.reconstruct_frame(echoes, Vec3{});
    const auto& s = reference.spec();
    for (int it = 0; it < s.n_theta; ++it) {
      for (int ip = 0; ip < s.n_phi; ++ip) {
        for (int id = 0; id < s.n_depth; ++id) {
          ASSERT_EQ(reference.at(it, ip, id), parallel.at(it, ip, id))
              << "threads=" << threads << " at (" << it << "," << ip << ","
              << id << ")";
        }
      }
    }
  }
}

/// Claim 3b: the resolved precision is observable — PipelineStats carries
/// it as a string and exports it under the "precision" JSON key.
TEST(QuantizedRuntime, ResolvedPrecisionIsReportedInStats) {
  const imaging::SystemConfig cfg = small_cfg();
  const auto apod = hann_apod(cfg);
  delay::TableFreeEngine prototype(cfg);

  runtime::FramePipeline quantized(
      cfg, apod, prototype,
      runtime::PipelineConfig{.precision = simd::Precision::kQuantized});
  EXPECT_EQ(quantized.stats().precision, "quantized");
  EXPECT_NE(quantized.stats().to_json().find("\"precision\":\"quantized\""),
            std::string::npos);

  // Explicit, not kAuto: this case must hold even under a
  // US3D_PRECISION=quantized environment cell.
  runtime::FramePipeline exact(
      cfg, apod, prototype,
      runtime::PipelineConfig{.precision = simd::Precision::kDouble});
  EXPECT_EQ(exact.stats().precision, "double");
}

/// Claim 3c: the quantized path is block-only. Both the serial beamformer
/// and the pipeline constructor reject kPerVoxel + kQuantized as a
/// precondition violation instead of silently falling back.
TEST(QuantizedRuntime, PerVoxelPathIsRejected) {
  const imaging::SystemConfig cfg = small_cfg();
  const auto echoes = acoustic::synthesize_echoes(cfg, corner_phantom(cfg));
  const auto apod = hann_apod(cfg);
  const Beamformer bf(cfg, apod);
  delay::TableFreeEngine engine(cfg);

  BeamformOptions bad;
  bad.path = ReconstructPath::kPerVoxel;
  bad.precision = simd::Precision::kQuantized;
  EXPECT_THROW(bf.reconstruct(echoes, engine, bad), ContractViolation);

  EXPECT_THROW(runtime::FramePipeline(
                   cfg, apod, engine,
                   runtime::PipelineConfig{
                       .path = ReconstructPath::kPerVoxel,
                       .precision = simd::Precision::kQuantized}),
               ContractViolation);
}

}  // namespace
}  // namespace us3d::beamform
