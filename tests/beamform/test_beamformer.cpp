#include "beamform/beamformer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "acoustic/echo_synth.h"
#include "common/contracts.h"
#include "delay/exact.h"
#include "imaging/volume.h"
#include "probe/presets.h"

namespace us3d::beamform {
namespace {

imaging::SystemConfig small_cfg() { return imaging::scaled_system(8, 9, 40); }

/// A phantom with one scatterer exactly on a focal-grid node.
acoustic::Phantom grid_phantom(const imaging::SystemConfig& cfg, int it,
                               int ip, int id) {
  const imaging::VolumeGrid grid(cfg.volume);
  return {acoustic::PointScatterer{grid.focal_point(it, ip, id).position,
                                   1.0}};
}

TEST(Beamformer, PeakAppearsAtScattererLocation) {
  const auto cfg = small_cfg();
  const auto phantom = grid_phantom(cfg, 4, 4, 25);
  const auto echoes = acoustic::synthesize_echoes(cfg, phantom);
  const probe::MatrixProbe probe(cfg.probe);
  const probe::ApodizationMap apod(probe, probe::WindowKind::kRect);
  Beamformer bf(cfg, apod);
  delay::ExactDelayEngine engine(cfg);
  const VolumeImage img = bf.reconstruct(echoes, engine);
  const auto peak = img.peak_abs();
  EXPECT_EQ(peak.i_theta, 4);
  EXPECT_EQ(peak.i_phi, 4);
  EXPECT_EQ(peak.i_depth, 25);
  EXPECT_GT(peak.value, 0.5f);  // coherent sum, normalized
}

TEST(Beamformer, CoherentGainOverSingleElement) {
  // At the true focus every element contributes the pulse maximum; the
  // normalized sum approaches 1.0 while any single echo sample is <= 1.
  const auto cfg = small_cfg();
  const auto phantom = grid_phantom(cfg, 4, 4, 30);
  const auto echoes = acoustic::synthesize_echoes(cfg, phantom);
  const probe::MatrixProbe probe(cfg.probe);
  const probe::ApodizationMap apod(probe, probe::WindowKind::kRect);
  Beamformer bf(cfg, apod);
  delay::ExactDelayEngine engine(cfg);
  engine.begin_frame(Vec3{});
  const imaging::VolumeGrid grid(cfg.volume);
  const float focus =
      bf.beamform_point(echoes, engine, grid.focal_point(4, 4, 30));
  EXPECT_GT(focus, 0.8f);
}

TEST(Beamformer, OffFocusIsMuchDimmerThanFocus) {
  const auto cfg = small_cfg();
  const auto phantom = grid_phantom(cfg, 4, 4, 30);
  const auto echoes = acoustic::synthesize_echoes(cfg, phantom);
  const probe::MatrixProbe probe(cfg.probe);
  const probe::ApodizationMap apod(probe, probe::WindowKind::kRect);
  Beamformer bf(cfg, apod);
  delay::ExactDelayEngine engine(cfg);
  engine.begin_frame(Vec3{});
  const imaging::VolumeGrid grid(cfg.volume);
  const float focus = std::abs(
      bf.beamform_point(echoes, engine, grid.focal_point(4, 4, 30)));
  const float away = std::abs(
      bf.beamform_point(echoes, engine, grid.focal_point(0, 8, 5)));
  EXPECT_GT(focus, 10.0f * away);
}

TEST(Beamformer, ApodizationZeroWeightElementsAreIgnored) {
  // Hann weights vanish at the aperture edge; corrupting edge-element data
  // must not change the result.
  const auto cfg = small_cfg();
  const auto phantom = grid_phantom(cfg, 4, 4, 20);
  auto echoes = acoustic::synthesize_echoes(cfg, phantom);
  const probe::MatrixProbe probe(cfg.probe);
  const probe::ApodizationMap apod(probe, probe::WindowKind::kHann);
  Beamformer bf(cfg, apod);
  delay::ExactDelayEngine engine(cfg);
  engine.begin_frame(Vec3{});
  const imaging::VolumeGrid grid(cfg.volume);
  const auto fp = grid.focal_point(4, 4, 20);
  const float before = bf.beamform_point(echoes, engine, fp);
  for (auto& v : echoes.row(probe.flat_index(0, 0))) v = 99.0f;
  const float after = bf.beamform_point(echoes, engine, fp);
  EXPECT_EQ(before, after);
}

TEST(Beamformer, BothScanOrdersGiveSameVolume) {
  const auto cfg = small_cfg();
  const auto phantom = grid_phantom(cfg, 3, 5, 15);
  const auto echoes = acoustic::synthesize_echoes(cfg, phantom);
  const probe::MatrixProbe probe(cfg.probe);
  const probe::ApodizationMap apod(probe, probe::WindowKind::kRect);
  Beamformer bf(cfg, apod);
  delay::ExactDelayEngine engine(cfg);
  const VolumeImage nappe = bf.reconstruct(
      echoes, engine, {.order = imaging::ScanOrder::kNappeByNappe});
  const VolumeImage scanline = bf.reconstruct(
      echoes, engine, {.order = imaging::ScanOrder::kScanlineByScanline});
  EXPECT_DOUBLE_EQ(VolumeImage::nrmse(nappe, scanline), 0.0);
}

TEST(Beamformer, OriginOptionReachesTheDelayEngine) {
  // Regression test: reconstruct() must forward the shot's transmit origin
  // to the engine; beamforming displaced-origin echoes with a centred
  // origin shifts the peak deeper by ~origin_z/2.
  const auto cfg = small_cfg();
  const Vec3 origin{0.0, 0.0, -8.0 * cfg.wavelength_m()};
  const auto phantom = grid_phantom(cfg, 4, 4, 20);
  acoustic::SynthesisOptions opt;
  opt.origin = origin;
  const auto echoes = acoustic::synthesize_echoes(cfg, phantom, opt);
  const probe::MatrixProbe probe(cfg.probe);
  const probe::ApodizationMap apod(probe, probe::WindowKind::kRect);
  Beamformer bf(cfg, apod);
  delay::ExactDelayEngine engine(cfg);

  const VolumeImage right = bf.reconstruct(echoes, engine, {.origin = origin});
  EXPECT_EQ(right.peak_abs().i_depth, 20);

  const VolumeImage wrong = bf.reconstruct(echoes, engine, {});
  EXPECT_GT(wrong.peak_abs().i_depth, 22);
}

TEST(Beamformer, RejectsMismatchedEchoBuffer) {
  const auto cfg = small_cfg();
  const probe::MatrixProbe probe(cfg.probe);
  const probe::ApodizationMap apod(probe, probe::WindowKind::kRect);
  Beamformer bf(cfg, apod);
  delay::ExactDelayEngine engine(cfg);
  EchoBuffer wrong(7, 100);  // wrong element count
  EXPECT_THROW(bf.reconstruct(wrong, engine), ContractViolation);
}

TEST(Beamformer, RejectsMismatchedApodization) {
  const auto cfg = small_cfg();
  const probe::MatrixProbe other(probe::small_probe(4));
  const probe::ApodizationMap apod(other, probe::WindowKind::kRect);
  EXPECT_THROW(Beamformer(cfg, apod), ContractViolation);
}

}  // namespace
}  // namespace us3d::beamform
