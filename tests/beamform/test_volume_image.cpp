#include "beamform/volume_image.h"

#include <gtest/gtest.h>

#include "common/angles.h"
#include "common/contracts.h"

namespace us3d::beamform {
namespace {

imaging::VolumeSpec tiny_spec() {
  return imaging::VolumeSpec{
      .n_theta = 4,
      .n_phi = 5,
      .n_depth = 6,
      .theta_span_rad = deg_to_rad(20.0),
      .phi_span_rad = deg_to_rad(20.0),
      .min_depth_m = 1.0e-3,
      .max_depth_m = 6.0e-3,
  };
}

TEST(VolumeImage, StartsZeroed) {
  const VolumeImage img(tiny_spec());
  EXPECT_EQ(img.voxel_count(), 120);
  EXPECT_EQ(img.at(0, 0, 0), 0.0f);
  EXPECT_EQ(img.at(3, 4, 5), 0.0f);
}

TEST(VolumeImage, ReadWriteRoundTrip) {
  VolumeImage img(tiny_spec());
  img.at(2, 3, 4) = 1.5f;
  EXPECT_EQ(img.at(2, 3, 4), 1.5f);
  EXPECT_EQ(img.at(2, 3, 3), 0.0f);
}

TEST(VolumeImage, PeakFindsLargestMagnitude) {
  VolumeImage img(tiny_spec());
  img.at(1, 1, 1) = 0.5f;
  img.at(2, 4, 0) = -3.0f;  // negative but largest magnitude
  const auto p = img.peak_abs();
  EXPECT_EQ(p.i_theta, 2);
  EXPECT_EQ(p.i_phi, 4);
  EXPECT_EQ(p.i_depth, 0);
  EXPECT_EQ(p.value, -3.0f);
}

TEST(VolumeImage, AddAccumulatesVoxelWise) {
  VolumeImage a(tiny_spec());
  VolumeImage b(tiny_spec());
  a.at(1, 2, 3) = 1.25f;
  a.at(0, 0, 0) = -2.0f;
  b.at(1, 2, 3) = 0.75f;
  b.at(3, 4, 5) = 4.0f;
  a.add(b);
  EXPECT_EQ(a.at(1, 2, 3), 2.0f);
  EXPECT_EQ(a.at(0, 0, 0), -2.0f);
  EXPECT_EQ(a.at(3, 4, 5), 4.0f);
  // The addend is untouched.
  EXPECT_EQ(b.at(1, 2, 3), 0.75f);
}

TEST(VolumeImage, AddInShotOrderMatchesManualSum) {
  // The compounding contract: summing volumes in shot order with add()
  // reproduces the per-voxel float sum exactly (same op order).
  VolumeImage v0(tiny_spec()), v1(tiny_spec()), v2(tiny_spec());
  float x = 0.1f;
  for (int it = 0; it < 4; ++it) {
    for (int ip = 0; ip < 5; ++ip) {
      for (int id = 0; id < 6; ++id) {
        v0.at(it, ip, id) = x;
        v1.at(it, ip, id) = 1.0f - x;
        v2.at(it, ip, id) = 0.5f * x;
        x += 0.013f;
      }
    }
  }
  VolumeImage acc = v0;
  acc.add(v1);
  acc.add(v2);
  for (int it = 0; it < 4; ++it) {
    for (int ip = 0; ip < 5; ++ip) {
      for (int id = 0; id < 6; ++id) {
        const float expected =
            (v0.at(it, ip, id) + v1.at(it, ip, id)) + v2.at(it, ip, id);
        ASSERT_EQ(acc.at(it, ip, id), expected);
      }
    }
  }
}

TEST(VolumeImage, AddRejectsMismatchedShapes) {
  auto other_spec = tiny_spec();
  other_spec.n_depth += 1;
  VolumeImage a(tiny_spec());
  const VolumeImage b(other_spec);
  EXPECT_THROW(a.add(b), ContractViolation);
}

TEST(VolumeImage, NrmseZeroForIdenticalVolumes) {
  VolumeImage a(tiny_spec());
  a.at(0, 0, 0) = 2.0f;
  EXPECT_DOUBLE_EQ(VolumeImage::nrmse(a, a), 0.0);
}

TEST(VolumeImage, NrmseScalesWithDifference) {
  VolumeImage a(tiny_spec()), b(tiny_spec()), c(tiny_spec());
  a.at(1, 1, 1) = 4.0f;
  b.at(1, 1, 1) = 4.2f;
  c.at(1, 1, 1) = 5.0f;
  EXPECT_LT(VolumeImage::nrmse(a, b), VolumeImage::nrmse(a, c));
}

TEST(VolumeImage, NrmseRejectsMismatchedShapes) {
  VolumeImage a(tiny_spec());
  a.at(0, 0, 0) = 1.0f;
  auto other = tiny_spec();
  other.n_depth = 7;
  VolumeImage b(other);
  EXPECT_THROW(VolumeImage::nrmse(a, b), ContractViolation);
}

TEST(VolumeImage, NrmseRejectsAllZeroReference) {
  const VolumeImage a(tiny_spec());
  EXPECT_THROW(VolumeImage::nrmse(a, a), ContractViolation);
}

TEST(VolumeImage, RejectsOutOfRange) {
  VolumeImage img(tiny_spec());
  EXPECT_THROW(img.at(4, 0, 0), ContractViolation);
  EXPECT_THROW(img.at(0, 5, 0), ContractViolation);
  EXPECT_THROW(img.at(0, 0, 6), ContractViolation);
}

}  // namespace
}  // namespace us3d::beamform
