#include "beamform/volume_image.h"

#include <gtest/gtest.h>

#include "common/angles.h"
#include "common/contracts.h"

namespace us3d::beamform {
namespace {

imaging::VolumeSpec tiny_spec() {
  return imaging::VolumeSpec{
      .n_theta = 4,
      .n_phi = 5,
      .n_depth = 6,
      .theta_span_rad = deg_to_rad(20.0),
      .phi_span_rad = deg_to_rad(20.0),
      .min_depth_m = 1.0e-3,
      .max_depth_m = 6.0e-3,
  };
}

TEST(VolumeImage, StartsZeroed) {
  const VolumeImage img(tiny_spec());
  EXPECT_EQ(img.voxel_count(), 120);
  EXPECT_EQ(img.at(0, 0, 0), 0.0f);
  EXPECT_EQ(img.at(3, 4, 5), 0.0f);
}

TEST(VolumeImage, ReadWriteRoundTrip) {
  VolumeImage img(tiny_spec());
  img.at(2, 3, 4) = 1.5f;
  EXPECT_EQ(img.at(2, 3, 4), 1.5f);
  EXPECT_EQ(img.at(2, 3, 3), 0.0f);
}

TEST(VolumeImage, PeakFindsLargestMagnitude) {
  VolumeImage img(tiny_spec());
  img.at(1, 1, 1) = 0.5f;
  img.at(2, 4, 0) = -3.0f;  // negative but largest magnitude
  const auto p = img.peak_abs();
  EXPECT_EQ(p.i_theta, 2);
  EXPECT_EQ(p.i_phi, 4);
  EXPECT_EQ(p.i_depth, 0);
  EXPECT_EQ(p.value, -3.0f);
}

TEST(VolumeImage, NrmseZeroForIdenticalVolumes) {
  VolumeImage a(tiny_spec());
  a.at(0, 0, 0) = 2.0f;
  EXPECT_DOUBLE_EQ(VolumeImage::nrmse(a, a), 0.0);
}

TEST(VolumeImage, NrmseScalesWithDifference) {
  VolumeImage a(tiny_spec()), b(tiny_spec()), c(tiny_spec());
  a.at(1, 1, 1) = 4.0f;
  b.at(1, 1, 1) = 4.2f;
  c.at(1, 1, 1) = 5.0f;
  EXPECT_LT(VolumeImage::nrmse(a, b), VolumeImage::nrmse(a, c));
}

TEST(VolumeImage, NrmseRejectsMismatchedShapes) {
  VolumeImage a(tiny_spec());
  a.at(0, 0, 0) = 1.0f;
  auto other = tiny_spec();
  other.n_depth = 7;
  VolumeImage b(other);
  EXPECT_THROW(VolumeImage::nrmse(a, b), ContractViolation);
}

TEST(VolumeImage, NrmseRejectsAllZeroReference) {
  const VolumeImage a(tiny_spec());
  EXPECT_THROW(VolumeImage::nrmse(a, a), ContractViolation);
}

TEST(VolumeImage, RejectsOutOfRange) {
  VolumeImage img(tiny_spec());
  EXPECT_THROW(img.at(4, 0, 0), ContractViolation);
  EXPECT_THROW(img.at(0, 5, 0), ContractViolation);
  EXPECT_THROW(img.at(0, 0, 6), ContractViolation);
}

}  // namespace
}  // namespace us3d::beamform
