// The block delay-and-sum kernel: active-element hoisting (zero-weight
// elements are never read, even with garbage delays), echo-window clamp
// semantics, normalization, single-point blocks, and — the acceptance
// criterion of the block refactor — bit-identical volumes from the block
// and per-voxel reconstruction paths for every engine.
#include "beamform/das_kernel.h"

#include <gtest/gtest.h>

#include <iterator>
#include <limits>
#include <vector>

#include "acoustic/echo_synth.h"
#include "beamform/beamformer.h"
#include "common/prng.h"
#include "delay/exact.h"
#include "delay/full_table.h"
#include "delay/synthetic_aperture.h"
#include "delay/tablefree.h"
#include "delay/tablesteer.h"
#include "imaging/volume.h"

namespace us3d::beamform {
namespace {

imaging::SystemConfig small_cfg() { return imaging::scaled_system(6, 7, 24); }

EchoBuffer random_echoes(const imaging::SystemConfig& cfg,
                         std::uint64_t seed) {
  EchoBuffer echoes(cfg.probe.element_count(), cfg.echo_buffer_samples());
  SplitMix64 prng(seed);
  for (int e = 0; e < echoes.element_count(); ++e) {
    for (float& v : echoes.row(e)) {
      v = static_cast<float>(prng.next_in(-1.0, 1.0));
    }
  }
  return echoes;
}

TEST(DasKernel, ActiveListExcludesExactlyTheZeroWeightElements) {
  const auto cfg = small_cfg();
  const probe::MatrixProbe probe(cfg.probe);
  const probe::ApodizationMap apod(probe, probe::WindowKind::kHann);
  const DasKernel kernel(apod);
  std::vector<int> expected;
  for (int e = 0; e < probe.element_count(); ++e) {
    if (apod.weight_flat(e) != 0.0) expected.push_back(e);
  }
  ASSERT_FALSE(expected.empty());
  ASSERT_LT(static_cast<int>(expected.size()), probe.element_count())
      << "Hann must zero the aperture edge for this test to bite";
  EXPECT_EQ(kernel.active_elements(), expected);
}

TEST(DasKernel, ZeroWeightRowsAreNeverRead) {
  // Give inactive elements delay indices that would be wildly out of range
  // or mid-buffer garbage: the sum must match a manual Eq. 1 evaluation
  // that only visits nonzero weights.
  const auto cfg = small_cfg();
  const probe::MatrixProbe probe(cfg.probe);
  const probe::ApodizationMap apod(probe, probe::WindowKind::kHann);
  const DasKernel kernel(apod);
  const EchoBuffer echoes = random_echoes(cfg, 0xda5ull);

  const int points = 9;
  delay::DelayPlane plane;
  plane.reshape(probe.element_count(), points);
  SplitMix64 prng(0x7ab1e5ull);
  for (int e = 0; e < probe.element_count(); ++e) {
    const bool active = apod.weight_flat(e) != 0.0;
    for (int p = 0; p < points; ++p) {
      plane.at(e, p) =
          active ? static_cast<std::int32_t>(prng.next_below(
                       static_cast<std::uint64_t>(echoes.samples_per_element())))
                 : std::numeric_limits<std::int32_t>::max() - 7;
    }
  }

  std::vector<double> acc(static_cast<std::size_t>(points));
  kernel.accumulate_block(echoes, plane, acc);
  for (int p = 0; p < points; ++p) {
    double expected = 0.0;
    for (int e = 0; e < probe.element_count(); ++e) {
      const double w = apod.weight_flat(e);
      if (w == 0.0) continue;
      expected += w * echoes.sample(e, plane.at(e, p));
    }
    EXPECT_EQ(acc[static_cast<std::size_t>(p)], expected) << "point " << p;
  }
}

TEST(DasKernel, OutOfWindowDelaysReadAsZero) {
  const auto cfg = small_cfg();
  const probe::MatrixProbe probe(cfg.probe);
  const probe::ApodizationMap apod(probe, probe::WindowKind::kRect);
  const DasKernel kernel(apod);
  const EchoBuffer echoes = random_echoes(cfg, 0xc1a3ull);

  delay::DelayPlane plane;
  plane.reshape(probe.element_count(), 3);
  for (int e = 0; e < probe.element_count(); ++e) {
    plane.at(e, 0) = -1;  // before the acquisition window
    plane.at(e, 1) = static_cast<std::int32_t>(echoes.samples_per_element());
    plane.at(e, 2) = 0;  // first valid sample
  }
  std::vector<double> acc(3);
  kernel.accumulate_block(echoes, plane, acc);
  EXPECT_EQ(acc[0], 0.0);
  EXPECT_EQ(acc[1], 0.0);
  double expected = 0.0;
  for (int e = 0; e < probe.element_count(); ++e) {
    expected += apod.weight_flat(e) * echoes.sample(e, 0);
  }
  EXPECT_EQ(acc[2], expected);
}

TEST(DasKernel, SinglePointBlockMatchesBeamformPoint) {
  const auto cfg = small_cfg();
  const probe::MatrixProbe probe(cfg.probe);
  const probe::ApodizationMap apod(probe, probe::WindowKind::kHann);
  const Beamformer bf(cfg, apod);
  const EchoBuffer echoes = random_echoes(cfg, 0x51e9ull);
  delay::ExactDelayEngine engine(cfg);
  engine.begin_frame(Vec3{});

  const imaging::VolumeGrid grid(cfg.volume);
  std::vector<imaging::FocalPoint> pts{grid.focal_point(3, 2, 11)};
  imaging::FocalBlock block{std::span<const imaging::FocalPoint>(pts), true};
  delay::DelayPlane plane;
  engine.compute_block(block, plane);
  std::vector<double> acc(1);
  bf.kernel().accumulate_block(echoes, plane, acc);
  const float normalized = static_cast<float>(acc[0]) *
                           static_cast<float>(1.0 / apod.total_weight());
  EXPECT_EQ(normalized, bf.beamform_point(echoes, engine, pts.front()));
}

TEST(DasKernel, NormalizationScalesByTotalWeight) {
  const auto cfg = small_cfg();
  const probe::MatrixProbe probe(cfg.probe);
  const probe::ApodizationMap apod(probe, probe::WindowKind::kHamming);
  const Beamformer bf(cfg, apod);
  const EchoBuffer echoes = random_echoes(cfg, 0x4011ull);
  delay::ExactDelayEngine engine(cfg);
  // This pins the DOUBLE path's normalization constant (the quantized
  // path normalizes by its own quantized total weight), so the precision
  // is explicit rather than inherited from US3D_PRECISION.
  const VolumeImage raw = bf.reconstruct(
      echoes, engine,
      {.normalize = false, .precision = simd::Precision::kDouble});
  const VolumeImage normalized = bf.reconstruct(
      echoes, engine,
      {.normalize = true, .precision = simd::Precision::kDouble});
  const float norm = static_cast<float>(1.0 / apod.total_weight());
  const auto& spec = cfg.volume;
  for (int it = 0; it < spec.n_theta; ++it) {
    for (int ip = 0; ip < spec.n_phi; ++ip) {
      for (int id = 0; id < spec.n_depth; ++id) {
        ASSERT_EQ(normalized.at(it, ip, id), raw.at(it, ip, id) * norm);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SIMD backend parity: every backend the host can run must be bit-identical
// to the scalar reference — same per-point double accumulators, same
// element fold order, mul + add (never FMA) — on random blocks, on tail
// sizes that are not a multiple of any lane width, and on out-of-window
// delays.

std::vector<simd::DasBackend> vector_backends() {
  std::vector<simd::DasBackend> result;
  for (simd::DasBackend b : simd::available_backends()) {
    if (b != simd::DasBackend::kScalar) result.push_back(b);
  }
  return result;
}

TEST(DasKernelSimd, EveryAvailableBackendMatchesScalarBitForBit) {
  const auto cfg = small_cfg();
  const probe::MatrixProbe probe(cfg.probe);
  const probe::ApodizationMap apod(probe, probe::WindowKind::kHann);
  const DasKernel kernel(apod);
  const EchoBuffer echoes = random_echoes(cfg, 0x51d3ull);
  const std::int64_t samples = echoes.samples_per_element();

  SplitMix64 prng(0xbacc3ull);
  // Sizes straddle every lane width (SSE2: 4, AVX2: 8) and its tails.
  for (const int points : {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 64}) {
    delay::DelayPlane plane;
    plane.reshape(probe.element_count(), points);
    for (int e = 0; e < probe.element_count(); ++e) {
      for (int p = 0; p < points; ++p) {
        // ~1/4 of the delays land outside the acquisition window (before
        // or after), so the masked gather path is exercised everywhere.
        const std::int64_t idx =
            static_cast<std::int64_t>(prng.next_below(
                static_cast<std::uint64_t>(2 * samples))) -
            samples / 2;
        plane.at(e, p) = static_cast<std::int32_t>(idx);
      }
    }
    std::vector<double> reference(static_cast<std::size_t>(points));
    kernel.accumulate_block(echoes, plane, reference,
                            simd::DasBackend::kScalar);
    for (const simd::DasBackend backend : vector_backends()) {
      std::vector<double> acc(static_cast<std::size_t>(points), -1.0);
      kernel.accumulate_block(echoes, plane, acc, backend);
      for (int p = 0; p < points; ++p) {
        ASSERT_EQ(acc[static_cast<std::size_t>(p)],
                  reference[static_cast<std::size_t>(p)])
            << simd::backend_name(backend) << " points=" << points
            << " p=" << p;
      }
    }
  }
}

TEST(DasKernelSimd, OutOfWindowDelaysClampToZeroOnEveryBackend) {
  const auto cfg = small_cfg();
  const probe::MatrixProbe probe(cfg.probe);
  const probe::ApodizationMap apod(probe, probe::WindowKind::kRect);
  const DasKernel kernel(apod);
  const EchoBuffer echoes = random_echoes(cfg, 0xc1a3ull);

  // A full vector width of nothing but out-of-window indices, including
  // the extremes a corrupted plane could carry.
  const std::int32_t bad[] = {
      -1,
      std::numeric_limits<std::int32_t>::min(),
      static_cast<std::int32_t>(echoes.samples_per_element()),
      std::numeric_limits<std::int32_t>::max(),
      -7,
      static_cast<std::int32_t>(echoes.samples_per_element()) + 1,
      std::numeric_limits<std::int32_t>::max() - 1,
      -1000000,
  };
  const int points = static_cast<int>(std::size(bad));
  delay::DelayPlane plane;
  plane.reshape(probe.element_count(), points);
  for (int e = 0; e < probe.element_count(); ++e) {
    for (int p = 0; p < points; ++p) plane.at(e, p) = bad[p];
  }
  for (const simd::DasBackend backend : simd::available_backends()) {
    std::vector<double> acc(static_cast<std::size_t>(points), -1.0);
    kernel.accumulate_block(echoes, plane, acc, backend);
    for (int p = 0; p < points; ++p) {
      ASSERT_EQ(acc[static_cast<std::size_t>(p)], 0.0)
          << simd::backend_name(backend) << " p=" << p;
    }
  }
}

TEST(DasKernelSimd, AllZeroApodizationReadsNothingOnEveryBackend) {
  // A 2x2 Hann aperture is entirely edge elements, so every weight is
  // exactly zero: the active list is empty and the kernel must write pure
  // zeros without touching the echo rows or the (garbage) delays.
  auto cfg = small_cfg();
  cfg.probe.elements_x = 2;
  cfg.probe.elements_y = 2;
  const probe::MatrixProbe probe(cfg.probe);
  const probe::ApodizationMap apod(probe, probe::WindowKind::kHann);
  ASSERT_EQ(apod.total_weight(), 0.0);
  const DasKernel kernel(apod);
  ASSERT_EQ(kernel.active_count(), 0);

  EchoBuffer echoes(probe.element_count(), 16);
  const int points = 13;
  delay::DelayPlane plane;
  plane.reshape(probe.element_count(), points);
  for (int e = 0; e < probe.element_count(); ++e) {
    for (int p = 0; p < points; ++p) {
      plane.at(e, p) = std::numeric_limits<std::int32_t>::max() - p;
    }
  }
  for (const simd::DasBackend backend : simd::available_backends()) {
    std::vector<double> acc(static_cast<std::size_t>(points), -1.0);
    kernel.accumulate_block(echoes, plane, acc, backend);
    for (int p = 0; p < points; ++p) {
      ASSERT_EQ(acc[static_cast<std::size_t>(p)], 0.0)
          << simd::backend_name(backend) << " p=" << p;
    }
  }
}

TEST(DasKernelSimd, ForcedBackendVolumesAreBitIdenticalThroughTheBeamformer) {
  // End-to-end: the whole reconstruct path with BeamformOptions::simd
  // forced per backend, against the scalar-forced volume, for a
  // representative engine pair (exact + the production TABLEFREE).
  const auto cfg = small_cfg();
  const probe::MatrixProbe probe(cfg.probe);
  const probe::ApodizationMap apod(probe, probe::WindowKind::kHann);
  const Beamformer bf(cfg, apod);
  const EchoBuffer echoes = random_echoes(cfg, 0xf0ccedull);

  std::vector<std::unique_ptr<delay::DelayEngine>> engines;
  engines.push_back(std::make_unique<delay::ExactDelayEngine>(cfg));
  engines.push_back(std::make_unique<delay::TableFreeEngine>(cfg));
  for (auto& engine : engines) {
    const VolumeImage reference = bf.reconstruct(
        echoes, *engine, {.simd = simd::DasBackend::kScalar});
    for (const simd::DasBackend backend : vector_backends()) {
      const VolumeImage volume =
          bf.reconstruct(echoes, *engine, {.simd = backend});
      const auto& spec = cfg.volume;
      for (int it = 0; it < spec.n_theta; ++it) {
        for (int ip = 0; ip < spec.n_phi; ++ip) {
          for (int id = 0; id < spec.n_depth; ++id) {
            ASSERT_EQ(volume.at(it, ip, id), reference.at(it, ip, id))
                << engine->name() << " " << simd::backend_name(backend)
                << " voxel (" << it << "," << ip << "," << id << ")";
          }
        }
      }
    }
  }
}

TEST(DasKernel, BlockPathIsBitIdenticalToPerVoxelPathForEveryEngine) {
  const auto cfg = small_cfg();
  const probe::MatrixProbe probe(cfg.probe);
  const probe::ApodizationMap apod(probe, probe::WindowKind::kHann);
  const Beamformer bf(cfg, apod);
  const EchoBuffer echoes = random_echoes(cfg, 0xb17e4ac7ull);

  std::vector<std::unique_ptr<delay::DelayEngine>> engines;
  engines.push_back(std::make_unique<delay::ExactDelayEngine>(cfg));
  engines.push_back(std::make_unique<delay::TableFreeEngine>(cfg));
  engines.push_back(std::make_unique<delay::TableSteerEngine>(cfg));
  engines.push_back(std::make_unique<delay::FullTableEngine>(cfg));
  engines.push_back(std::make_unique<delay::SyntheticApertureSteerEngine>(
      cfg, delay::diverging_wave_plan(2, 3.0e-3)));

  for (auto& engine : engines) {
    for (const imaging::ScanOrder order :
         {imaging::ScanOrder::kNappeByNappe,
          imaging::ScanOrder::kScanlineByScanline}) {
      for (const int block_points : {0, 1, 13}) {
        // The per-voxel path only exists in double; pin the block side to
        // double too so the comparison holds under US3D_PRECISION cells.
        BeamformOptions block_opt{.order = order,
                                  .path = ReconstructPath::kBlock,
                                  .block_points = block_points,
                                  .precision = simd::Precision::kDouble};
        BeamformOptions voxel_opt{.order = order,
                                  .path = ReconstructPath::kPerVoxel,
                                  .precision = simd::Precision::kDouble};
        const VolumeImage a = bf.reconstruct(echoes, *engine, block_opt);
        const VolumeImage b = bf.reconstruct(echoes, *engine, voxel_opt);
        const auto& spec = cfg.volume;
        for (int it = 0; it < spec.n_theta; ++it) {
          for (int ip = 0; ip < spec.n_phi; ++ip) {
            for (int id = 0; id < spec.n_depth; ++id) {
              ASSERT_EQ(a.at(it, ip, id), b.at(it, ip, id))
                  << engine->name() << " " << imaging::to_string(order)
                  << " block_points=" << block_points << " voxel (" << it
                  << "," << ip << "," << id << ")";
            }
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace us3d::beamform
