#include "beamform/echo_buffer.h"

#include <gtest/gtest.h>

#include "common/contracts.h"

namespace us3d::beamform {
namespace {

TEST(EchoBuffer, StartsZeroed) {
  const EchoBuffer buf(4, 100);
  for (int e = 0; e < 4; ++e) {
    for (int i = 0; i < 100; ++i) EXPECT_EQ(buf.sample(e, i), 0.0f);
  }
}

TEST(EchoBuffer, RowWritesAreVisibleToSample) {
  EchoBuffer buf(3, 50);
  buf.row(1)[10] = 2.5f;
  EXPECT_EQ(buf.sample(1, 10), 2.5f);
  EXPECT_EQ(buf.sample(0, 10), 0.0f);
  EXPECT_EQ(buf.sample(2, 10), 0.0f);
}

TEST(EchoBuffer, OutOfWindowIndicesReadZero) {
  EchoBuffer buf(2, 50);
  buf.row(0)[0] = 1.0f;
  buf.row(0)[49] = 1.0f;
  EXPECT_EQ(buf.sample(0, -1), 0.0f);
  EXPECT_EQ(buf.sample(0, 50), 0.0f);
  EXPECT_EQ(buf.sample(0, 1'000'000), 0.0f);
}

TEST(EchoBuffer, RowSpanHasCorrectLength) {
  EchoBuffer buf(2, 77);
  EXPECT_EQ(buf.row(0).size(), 77u);
  const EchoBuffer& cref = buf;
  EXPECT_EQ(cref.row(1).size(), 77u);
}

TEST(EchoBuffer, ClearZeroesEverything) {
  EchoBuffer buf(2, 10);
  buf.row(0)[5] = 3.0f;
  buf.clear();
  EXPECT_EQ(buf.sample(0, 5), 0.0f);
}

TEST(EchoBuffer, RejectsBadConstructionAndIndices) {
  EXPECT_THROW(EchoBuffer(0, 10), ContractViolation);
  EXPECT_THROW(EchoBuffer(4, 0), ContractViolation);
  EchoBuffer buf(2, 10);
  EXPECT_THROW(buf.sample(2, 0), ContractViolation);
  EXPECT_THROW(buf.row(-1), ContractViolation);
}

}  // namespace
}  // namespace us3d::beamform
