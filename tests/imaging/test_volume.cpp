#include "imaging/volume.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.h"
#include "common/contracts.h"
#include "imaging/system_config.h"

namespace us3d::imaging {
namespace {

VolumeSpec small_spec() {
  return VolumeSpec{
      .n_theta = 9,
      .n_phi = 9,
      .n_depth = 11,
      .theta_span_rad = deg_to_rad(73.0),
      .phi_span_rad = deg_to_rad(73.0),
      .min_depth_m = 1.0e-3,
      .max_depth_m = 11.0e-3,
  };
}

TEST(VolumeSpec, TotalPoints) {
  EXPECT_EQ(small_spec().total_points(), 9 * 9 * 11);
  EXPECT_EQ(paper_system().volume.total_points(), 128LL * 128 * 1000);
}

TEST(VolumeGrid, AngleEndpointsAndSymmetry) {
  const VolumeGrid grid(small_spec());
  EXPECT_NEAR(grid.theta(0), -deg_to_rad(36.5), 1e-12);
  EXPECT_NEAR(grid.theta(8), deg_to_rad(36.5), 1e-12);
  EXPECT_NEAR(grid.theta(4), 0.0, 1e-12);  // odd count: centre on axis
  for (int i = 0; i < 9; ++i) {
    EXPECT_NEAR(grid.theta(i), -grid.theta(8 - i), 1e-12);
    EXPECT_NEAR(grid.phi(i), -grid.phi(8 - i), 1e-12);
  }
}

TEST(VolumeGrid, RadiusIsUniform) {
  const VolumeGrid grid(small_spec());
  EXPECT_DOUBLE_EQ(grid.radius(0), 1.0e-3);
  EXPECT_DOUBLE_EQ(grid.radius(10), 11.0e-3);
  for (int k = 1; k < 11; ++k) {
    EXPECT_NEAR(grid.radius(k) - grid.radius(k - 1), 1.0e-3, 1e-15);
  }
}

TEST(VolumeGrid, PositionMatchesEq5) {
  // S = (r cos(phi) sin(theta), r sin(phi), r cos(phi) cos(theta)).
  const double theta = deg_to_rad(20.0);
  const double phi = deg_to_rad(-10.0);
  const double r = 42.0e-3;
  const Vec3 s = VolumeGrid::position(theta, phi, r);
  EXPECT_NEAR(s.x, r * std::cos(phi) * std::sin(theta), 1e-15);
  EXPECT_NEAR(s.y, r * std::sin(phi), 1e-15);
  EXPECT_NEAR(s.z, r * std::cos(phi) * std::cos(theta), 1e-15);
}

TEST(VolumeGrid, PositionPreservesRadius) {
  const VolumeGrid grid(small_spec());
  for (int it = 0; it < 9; it += 2) {
    for (int ip = 0; ip < 9; ip += 2) {
      for (int id = 0; id < 11; id += 3) {
        const FocalPoint fp = grid.focal_point(it, ip, id);
        EXPECT_NEAR(fp.position.norm(), fp.radius, 1e-12);
      }
    }
  }
}

TEST(VolumeGrid, OnAxisPointIsStraightAhead) {
  const VolumeGrid grid(small_spec());
  const FocalPoint fp = grid.focal_point(4, 4, 5);
  EXPECT_NEAR(fp.position.x, 0.0, 1e-12);
  EXPECT_NEAR(fp.position.y, 0.0, 1e-12);
  EXPECT_NEAR(fp.position.z, fp.radius, 1e-12);
}

TEST(VolumeGrid, FocalPointCarriesIndices) {
  const VolumeGrid grid(small_spec());
  const FocalPoint fp = grid.focal_point(2, 7, 3);
  EXPECT_EQ(fp.i_theta, 2);
  EXPECT_EQ(fp.i_phi, 7);
  EXPECT_EQ(fp.i_depth, 3);
  EXPECT_DOUBLE_EQ(fp.theta, grid.theta(2));
  EXPECT_DOUBLE_EQ(fp.phi, grid.phi(7));
  EXPECT_DOUBLE_EQ(fp.radius, grid.radius(3));
}

TEST(VolumeGrid, RejectsBadSpec) {
  VolumeSpec bad = small_spec();
  bad.n_theta = 0;
  EXPECT_THROW(VolumeGrid{bad}, ContractViolation);
  bad = small_spec();
  bad.min_depth_m = 0.0;
  EXPECT_THROW(VolumeGrid{bad}, ContractViolation);
  bad = small_spec();
  bad.max_depth_m = bad.min_depth_m / 2.0;
  EXPECT_THROW(VolumeGrid{bad}, ContractViolation);
}

TEST(VolumeGrid, RejectsOutOfRangeIndices) {
  const VolumeGrid grid(small_spec());
  EXPECT_THROW(grid.theta(9), ContractViolation);
  EXPECT_THROW(grid.phi(-1), ContractViolation);
  EXPECT_THROW(grid.radius(11), ContractViolation);
}

TEST(VolumeGrid, PaperDepthRangeIs500Lambda) {
  const SystemConfig cfg = paper_system();
  EXPECT_NEAR(cfg.volume.max_depth_m, 500.0 * cfg.wavelength_m(), 1e-9);
  EXPECT_NEAR(cfg.volume.max_depth_m, 192.5e-3, 1e-6);
}

}  // namespace
}  // namespace us3d::imaging
