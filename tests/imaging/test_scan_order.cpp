#include "imaging/scan_order.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>
#include <vector>

#include "common/angles.h"

namespace us3d::imaging {
namespace {

VolumeSpec tiny_spec(int nt = 3, int np = 4, int nd = 5) {
  return VolumeSpec{
      .n_theta = nt,
      .n_phi = np,
      .n_depth = nd,
      .theta_span_rad = deg_to_rad(40.0),
      .phi_span_rad = deg_to_rad(40.0),
      .min_depth_m = 1.0e-3,
      .max_depth_m = 5.0e-3,
  };
}

TEST(ScanOrder, ToString) {
  EXPECT_STREQ(to_string(ScanOrder::kScanlineByScanline),
               "scanline-by-scanline");
  EXPECT_STREQ(to_string(ScanOrder::kNappeByNappe), "nappe-by-nappe");
}

TEST(ScanCursor, VisitsEveryPointExactlyOnce) {
  for (const auto order :
       {ScanOrder::kScanlineByScanline, ScanOrder::kNappeByNappe}) {
    const VolumeGrid grid(tiny_spec());
    std::set<std::tuple<int, int, int>> seen;
    for_each_focal_point(grid, order, [&](const FocalPoint& fp) {
      seen.insert({fp.i_theta, fp.i_phi, fp.i_depth});
    });
    EXPECT_EQ(static_cast<std::int64_t>(seen.size()), grid.total_points());
  }
}

TEST(ScanCursor, ScanlineOrderHasDepthInnermost) {
  const VolumeGrid grid(tiny_spec());
  std::vector<FocalPoint> fps;
  for_each_focal_point(grid, ScanOrder::kScanlineByScanline,
                       [&](const FocalPoint& fp) { fps.push_back(fp); });
  // First n_depth points share the first line of sight.
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(fps[static_cast<std::size_t>(k)].i_theta, 0);
    EXPECT_EQ(fps[static_cast<std::size_t>(k)].i_phi, 0);
    EXPECT_EQ(fps[static_cast<std::size_t>(k)].i_depth, k);
  }
  // Then phi advances.
  EXPECT_EQ(fps[5].i_phi, 1);
  EXPECT_EQ(fps[5].i_depth, 0);
}

TEST(ScanCursor, NappeOrderHasDepthOutermost) {
  const VolumeGrid grid(tiny_spec());
  std::vector<FocalPoint> fps;
  for_each_focal_point(grid, ScanOrder::kNappeByNappe,
                       [&](const FocalPoint& fp) { fps.push_back(fp); });
  // The first n_theta*n_phi points form the first nappe (constant depth 0).
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(fps[static_cast<std::size_t>(i)].i_depth, 0);
  }
  EXPECT_EQ(fps[12].i_depth, 1);
  // Within a nappe, phi is innermost.
  EXPECT_EQ(fps[0].i_phi, 0);
  EXPECT_EQ(fps[1].i_phi, 1);
}

TEST(ScanCursor, BothOrdersVisitSameSet) {
  const VolumeGrid grid(tiny_spec(4, 3, 6));
  std::set<std::tuple<int, int, int>> a, b;
  for_each_focal_point(grid, ScanOrder::kScanlineByScanline,
                       [&](const FocalPoint& fp) {
                         a.insert({fp.i_theta, fp.i_phi, fp.i_depth});
                       });
  for_each_focal_point(grid, ScanOrder::kNappeByNappe,
                       [&](const FocalPoint& fp) {
                         b.insert({fp.i_theta, fp.i_phi, fp.i_depth});
                       });
  EXPECT_EQ(a, b);
}

TEST(ScanCursor, PositionAndTotalTrackProgress) {
  const VolumeGrid grid(tiny_spec());
  ScanCursor cursor(grid, ScanOrder::kNappeByNappe);
  EXPECT_EQ(cursor.total(), 60);
  EXPECT_EQ(cursor.position(), 0);
  FocalPoint fp;
  ASSERT_TRUE(cursor.next(fp));
  EXPECT_EQ(cursor.position(), 1);
  while (cursor.next(fp)) {
  }
  EXPECT_EQ(cursor.position(), 60);
  EXPECT_FALSE(cursor.next(fp));
}

TEST(ScanCursor, ResetRestarts) {
  const VolumeGrid grid(tiny_spec());
  ScanCursor cursor(grid, ScanOrder::kScanlineByScanline);
  FocalPoint first, again;
  ASSERT_TRUE(cursor.next(first));
  cursor.reset();
  ASSERT_TRUE(cursor.next(again));
  EXPECT_EQ(first.i_theta, again.i_theta);
  EXPECT_EQ(first.i_phi, again.i_phi);
  EXPECT_EQ(first.i_depth, again.i_depth);
  EXPECT_EQ(cursor.position(), 1);
}

TEST(ScanCursor, NappeDepthChangesSlowlyScanlineDepthJumps) {
  // The property TABLEFREE exploits: in nappe order the radius changes by
  // one step at a time; in scanline order it resets by the whole depth
  // range at each new line.
  const VolumeGrid grid(tiny_spec(2, 2, 50));
  double max_jump_nappe = 0.0, max_jump_scanline = 0.0;
  double prev = -1.0;
  for_each_focal_point(grid, ScanOrder::kNappeByNappe,
                       [&](const FocalPoint& fp) {
                         if (prev >= 0.0) {
                           max_jump_nappe =
                               std::max(max_jump_nappe,
                                        std::abs(fp.radius - prev));
                         }
                         prev = fp.radius;
                       });
  prev = -1.0;
  for_each_focal_point(grid, ScanOrder::kScanlineByScanline,
                       [&](const FocalPoint& fp) {
                         if (prev >= 0.0) {
                           max_jump_scanline =
                               std::max(max_jump_scanline,
                                        std::abs(fp.radius - prev));
                         }
                         prev = fp.radius;
                       });
  EXPECT_LT(max_jump_nappe, 1.1e-4);       // one depth step (~0.08 mm) or 0
  EXPECT_GT(max_jump_scanline, 3.9e-3);    // full depth reset
}

}  // namespace
}  // namespace us3d::imaging
