#include "imaging/insonification.h"

#include <gtest/gtest.h>

#include "common/contracts.h"
#include "imaging/system_config.h"
#include "probe/presets.h"

namespace us3d::imaging {
namespace {

TEST(AcquisitionPlan, PaperDesignPoint) {
  // Sec. V-B: 64 insonifications per volume, 256 scanlines each, 15 Hz ->
  // 960 insonifications/s.
  const SystemConfig cfg = paper_system();
  EXPECT_EQ(cfg.plan.shots_per_volume, 64);
  EXPECT_EQ(cfg.plan.scanlines_per_shot, 256);
  EXPECT_DOUBLE_EQ(cfg.plan.volume_rate_hz, 15.0);
  EXPECT_DOUBLE_EQ(cfg.plan.shots_per_second(), 960.0);
}

TEST(AcquisitionPlan, MakePlanSplitsLinesEvenly) {
  const SystemConfig cfg = paper_system();
  const AcquisitionPlan plan = make_plan(cfg.volume, 128, 20.0);
  EXPECT_EQ(plan.scanlines_per_shot, 128);
  EXPECT_DOUBLE_EQ(plan.shots_per_second(), 2560.0);
}

TEST(AcquisitionPlan, RejectsUnevenSplit) {
  const SystemConfig cfg = paper_system();
  EXPECT_THROW(make_plan(cfg.volume, 63, 15.0), ContractViolation);
}

TEST(RoundTrip, PaperSystemIsQuarterMillisecond) {
  const SystemConfig cfg = paper_system();
  // 2 x 192.5 mm / 1540 m/s = 250 us ("sub-millisecond", Sec. I).
  EXPECT_NEAR(round_trip_seconds(cfg.volume, cfg.speed_of_sound), 250.0e-6,
              1.0e-6);
}

TEST(Feasibility, PaperPlanIsAcousticallyFeasible) {
  const SystemConfig cfg = paper_system();
  // 960 shots/s x 250 us = 24% duty: feasible.
  EXPECT_TRUE(
      is_acoustically_feasible(cfg.plan, cfg.volume, cfg.speed_of_sound));
  EXPECT_NEAR(
      max_acoustic_volume_rate(cfg.volume, cfg.speed_of_sound, 64), 62.5,
      0.5);
}

TEST(Feasibility, TooManyShotsBecomesInfeasible) {
  const SystemConfig cfg = paper_system();
  const AcquisitionPlan plan = make_plan(cfg.volume, 16384, 15.0);
  EXPECT_FALSE(
      is_acoustically_feasible(plan, cfg.volume, cfg.speed_of_sound));
}

TEST(Feasibility, MultiKilohertz2DRatesPossible) {
  // Sec. I: "multi-kHz frame rates are possible" for single-shot imaging.
  const SystemConfig cfg = paper_system();
  EXPECT_GT(max_acoustic_volume_rate(cfg.volume, cfg.speed_of_sound, 1),
            1000.0);
}

}  // namespace
}  // namespace us3d::imaging
