// Parameterized shape sweep for the scan cursor: both orders must cover
// every focal point exactly once on any grid shape, including degenerate
// single-line and single-nappe volumes. TABLEFREE's correctness depends on
// this enumeration being exact.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "common/angles.h"
#include "imaging/scan_order.h"

namespace us3d::imaging {
namespace {

using Shape = std::tuple<int, int, int>;  // n_theta, n_phi, n_depth

class ScanOrderShape : public ::testing::TestWithParam<Shape> {
 protected:
  VolumeSpec spec() const {
    const auto [nt, np, nd] = GetParam();
    return VolumeSpec{
        .n_theta = nt,
        .n_phi = np,
        .n_depth = nd,
        .theta_span_rad = nt > 1 ? deg_to_rad(60.0) : 0.0,
        .phi_span_rad = np > 1 ? deg_to_rad(60.0) : 0.0,
        .min_depth_m = 1.0e-3,
        .max_depth_m = 1.0e-3 * nd,
    };
  }
};

TEST_P(ScanOrderShape, BothOrdersCoverExactlyOnce) {
  const VolumeGrid grid(spec());
  for (const auto order :
       {ScanOrder::kScanlineByScanline, ScanOrder::kNappeByNappe}) {
    std::set<std::tuple<int, int, int>> seen;
    std::int64_t visits = 0;
    for_each_focal_point(grid, order, [&](const FocalPoint& fp) {
      seen.insert({fp.i_theta, fp.i_phi, fp.i_depth});
      ++visits;
    });
    EXPECT_EQ(visits, grid.total_points()) << to_string(order);
    EXPECT_EQ(static_cast<std::int64_t>(seen.size()), grid.total_points())
        << to_string(order);
  }
}

TEST_P(ScanOrderShape, CursorTerminatesAndReportsTotal) {
  const VolumeGrid grid(spec());
  ScanCursor cursor(grid, ScanOrder::kNappeByNappe);
  FocalPoint fp;
  std::int64_t n = 0;
  while (cursor.next(fp)) ++n;
  EXPECT_EQ(n, cursor.total());
  EXPECT_FALSE(cursor.next(fp));  // stays exhausted
  cursor.reset();
  EXPECT_TRUE(cursor.next(fp));
}

TEST_P(ScanOrderShape, NappeOrderNeverRetreatsInDepth) {
  const VolumeGrid grid(spec());
  int prev_depth = -1;
  for_each_focal_point(grid, ScanOrder::kNappeByNappe,
                       [&](const FocalPoint& fp) {
    EXPECT_GE(fp.i_depth, prev_depth);
    prev_depth = fp.i_depth;
  });
}

TEST_P(ScanOrderShape, ScanlineOrderNeverRetreatsInTheta) {
  const VolumeGrid grid(spec());
  int prev_theta = -1;
  for_each_focal_point(grid, ScanOrder::kScanlineByScanline,
                       [&](const FocalPoint& fp) {
    EXPECT_GE(fp.i_theta, prev_theta);
    prev_theta = fp.i_theta;
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ScanOrderShape,
    ::testing::Values(Shape{1, 1, 1}, Shape{1, 1, 16}, Shape{16, 1, 1},
                      Shape{1, 16, 1}, Shape{2, 3, 5}, Shape{5, 3, 2},
                      Shape{7, 7, 7}, Shape{16, 8, 4}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param)) + "_d" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace us3d::imaging
