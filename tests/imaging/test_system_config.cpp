#include "imaging/system_config.h"

#include <gtest/gtest.h>

#include "common/angles.h"

namespace us3d::imaging {
namespace {

TEST(SystemConfig, PaperSystemMatchesTableI) {
  const SystemConfig cfg = paper_system();
  EXPECT_DOUBLE_EQ(cfg.speed_of_sound, 1540.0);
  EXPECT_DOUBLE_EQ(cfg.sampling_frequency_hz, 32.0e6);
  EXPECT_EQ(cfg.volume.n_theta, 128);
  EXPECT_EQ(cfg.volume.n_phi, 128);
  EXPECT_EQ(cfg.volume.n_depth, 1000);
  EXPECT_NEAR(cfg.volume.theta_span_rad, deg_to_rad(73.0), 1e-12);
  EXPECT_NEAR(cfg.wavelength_m(), 0.385e-3, 1e-9);
}

TEST(SystemConfig, SamplePeriodIsAbout30ns) {
  // Sec. II-B: "tp should be calculated with a very fine grain of about
  // 30 ns" (1/32 MHz = 31.25 ns).
  EXPECT_NEAR(paper_system().sample_period_s(), 31.25e-9, 1e-12);
}

TEST(SystemConfig, SampleConversionRoundTrip) {
  const SystemConfig cfg = paper_system();
  EXPECT_DOUBLE_EQ(cfg.seconds_to_samples(cfg.samples_to_seconds(123.0)),
                   123.0);
  EXPECT_DOUBLE_EQ(cfg.seconds_to_samples(1.0e-6), 32.0);
}

TEST(SystemConfig, EchoBufferSlightlyMoreThan8000Samples) {
  // Sec. V-B: "an echo buffer containing slightly more than 8000 samples,
  // corresponding to a 32 MHz sampling of ... 2 x 500 lambda. This
  // requires 13-bit precision."
  const SystemConfig cfg = paper_system();
  EXPECT_GT(cfg.echo_buffer_samples(), 8000);
  // 13 bits index samples 0..8191, i.e. a buffer of up to 8192 samples.
  EXPECT_LE(cfg.echo_buffer_samples(), 8192);
  EXPECT_EQ(cfg.delay_index_bits(), 13);
}

TEST(SystemConfig, DelaysPerFrameIs164Billion) {
  // Sec. II-B: "the theoretical number of delay values to be calculated is
  // about 164e9".
  const SystemConfig cfg = paper_system();
  EXPECT_EQ(cfg.delays_per_frame(), 128LL * 128 * 1000 * 100 * 100);
  EXPECT_NEAR(static_cast<double>(cfg.delays_per_frame()), 163.84e9, 1e6);
}

TEST(SystemConfig, DelaysPerSecondIs2500Billion) {
  // Sec. II-C: "about 2.5e12 delay values/s for reconstruction at 15 fps".
  EXPECT_NEAR(paper_system().delays_per_second(), 2.4576e12, 1e7);
}

TEST(ScaledSystem, PreservesDensityAndPhysics) {
  const SystemConfig small = scaled_system(16, 32, 100);
  EXPECT_EQ(small.probe.elements_x, 16);
  EXPECT_EQ(small.volume.n_theta, 32);
  EXPECT_EQ(small.volume.n_depth, 100);
  EXPECT_DOUBLE_EQ(small.speed_of_sound, paper_system().speed_of_sound);
  // Depth step stays lambda/2.
  const double step = (small.volume.max_depth_m - small.volume.min_depth_m) /
                      (small.volume.n_depth - 1);
  EXPECT_NEAR(step, small.wavelength_m() / 2.0, 1e-9);
}

TEST(ScaledSystem, TinyGridPlanDividesLinesEvenly) {
  const SystemConfig tiny = scaled_system(4, 4, 10);
  // 16 scanlines: the largest shot count <= 64 dividing them is 16.
  EXPECT_EQ(tiny.plan.shots_per_volume, 16);
  EXPECT_EQ(tiny.plan.scanlines_per_shot, 1);
}

}  // namespace
}  // namespace us3d::imaging
