// Partitioned scan sweeps: the ranges the parallel runtime hands its
// workers must tile the serial sweep exactly, for both scan orders.
#include "imaging/scan_order.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

#include "common/contracts.h"

namespace us3d::imaging {
namespace {

VolumeSpec spec(int n_theta, int n_phi, int n_depth) {
  VolumeSpec s;
  s.n_theta = n_theta;
  s.n_phi = n_phi;
  s.n_depth = n_depth;
  s.theta_span_rad = 1.0;
  s.phi_span_rad = 1.0;
  s.min_depth_m = 0.01;
  s.max_depth_m = 0.08;
  return s;
}

std::vector<std::array<int, 3>> sweep_indices(const VolumeGrid& grid,
                                              ScanOrder order,
                                              const ScanRange& range) {
  std::vector<std::array<int, 3>> out;
  for_each_focal_point(grid, order, range, [&](const FocalPoint& fp) {
    out.push_back({fp.i_theta, fp.i_phi, fp.i_depth});
  });
  return out;
}

TEST(ScanRange, OuterExtentFollowsTheOrder) {
  const VolumeSpec s = spec(7, 5, 11);
  EXPECT_EQ(outer_extent(s, ScanOrder::kNappeByNappe), 11);
  EXPECT_EQ(outer_extent(s, ScanOrder::kScanlineByScanline), 7);
  EXPECT_EQ(full_scan_range(s, ScanOrder::kNappeByNappe), (ScanRange{0, 11}));
}

TEST(ScanRange, PartitionTilesTheAxisExactly) {
  const VolumeSpec s = spec(7, 5, 11);
  for (const ScanOrder order :
       {ScanOrder::kNappeByNappe, ScanOrder::kScanlineByScanline}) {
    for (int parts = 1; parts <= 16; ++parts) {
      const auto ranges = partition_scan(s, order, parts);
      ASSERT_FALSE(ranges.empty());
      EXPECT_LE(static_cast<int>(ranges.size()), parts);
      EXPECT_EQ(ranges.front().outer_begin, 0);
      EXPECT_EQ(ranges.back().outer_end, outer_extent(s, order));
      for (std::size_t i = 0; i < ranges.size(); ++i) {
        EXPECT_FALSE(ranges[i].empty());
        if (i > 0) {
          EXPECT_EQ(ranges[i].outer_begin, ranges[i - 1].outer_end);
        }
      }
    }
  }
}

TEST(ScanRange, PartitionIsNearEqual) {
  const auto ranges =
      partition_scan(spec(5, 4, 23), ScanOrder::kNappeByNappe, 4);
  ASSERT_EQ(ranges.size(), 4u);
  int smallest = ranges[0].extent(), largest = ranges[0].extent();
  for (const ScanRange& r : ranges) {
    smallest = std::min(smallest, r.extent());
    largest = std::max(largest, r.extent());
  }
  EXPECT_LE(largest - smallest, 1);
}

TEST(ScanRange, MorePartsThanSlabsClampsToSlabs) {
  const auto ranges =
      partition_scan(spec(3, 4, 5), ScanOrder::kNappeByNappe, 64);
  EXPECT_EQ(ranges.size(), 5u);
  for (const ScanRange& r : ranges) EXPECT_EQ(r.extent(), 1);
}

TEST(ScanRange, ConcatenatedRangeSweepsEqualTheSerialSweep) {
  const VolumeSpec s = spec(6, 5, 13);
  const VolumeGrid grid(s);
  for (const ScanOrder order :
       {ScanOrder::kNappeByNappe, ScanOrder::kScanlineByScanline}) {
    const auto serial = sweep_indices(grid, order, full_scan_range(s, order));
    for (const int parts : {2, 3, 5}) {
      std::vector<std::array<int, 3>> tiled;
      for (const ScanRange& r : partition_scan(s, order, parts)) {
        const auto part = sweep_indices(grid, order, r);
        tiled.insert(tiled.end(), part.begin(), part.end());
      }
      EXPECT_EQ(tiled, serial) << to_string(order) << " parts=" << parts;
    }
  }
}

TEST(ScanRange, RangedCursorTotalAndPosition) {
  const VolumeSpec s = spec(4, 3, 10);
  const VolumeGrid grid(s);
  ScanCursor cursor(grid, ScanOrder::kNappeByNappe, ScanRange{2, 5});
  EXPECT_EQ(cursor.total(), 3 * 4 * 3);
  FocalPoint fp;
  int n = 0;
  while (cursor.next(fp)) {
    EXPECT_GE(fp.i_depth, 2);
    EXPECT_LT(fp.i_depth, 5);
    ++n;
  }
  EXPECT_EQ(n, cursor.total());
  EXPECT_EQ(cursor.position(), cursor.total());
  cursor.reset();
  ASSERT_TRUE(cursor.next(fp));
  EXPECT_EQ(fp.i_depth, 2);  // reset returns to the range start, not 0
}

TEST(BlockCursor, BlocksTileTheRangeInSweepOrder) {
  const VolumeSpec s = spec(6, 5, 13);
  const VolumeGrid grid(s);
  for (const ScanOrder order :
       {ScanOrder::kNappeByNappe, ScanOrder::kScanlineByScanline}) {
    for (const ScanRange range :
         {full_scan_range(s, order), ScanRange{1, 4}, ScanRange{3, 4}}) {
      const auto serial = sweep_indices(grid, order, range);
      for (const int max_points : {1, 7, 16, 1024}) {
        std::vector<std::array<int, 3>> tiled;
        for_each_focal_block(
            grid, order, range, max_points, [&](const FocalBlock& block) {
              EXPECT_GT(block.size(), 0);
              EXPECT_LE(block.size(), max_points);
              for (int p = 0; p < block.size(); ++p) {
                tiled.push_back(
                    {block[p].i_theta, block[p].i_phi, block[p].i_depth});
              }
            });
        EXPECT_EQ(tiled, serial)
            << to_string(order) << " max_points=" << max_points;
      }
    }
  }
}

TEST(BlockCursor, BlocksNeverCrossAnOuterAxisBoundary) {
  const VolumeSpec s = spec(4, 3, 6);
  const VolumeGrid grid(s);
  for (const ScanOrder order :
       {ScanOrder::kNappeByNappe, ScanOrder::kScanlineByScanline}) {
    for_each_focal_block(
        grid, order, full_scan_range(s, order), 1 << 20,
        [&](const FocalBlock& block) {
          const int outer = order == ScanOrder::kNappeByNappe
                                ? block.front().i_depth
                                : block.front().i_theta;
          for (int p = 0; p < block.size(); ++p) {
            const int point_outer = order == ScanOrder::kNappeByNappe
                                        ? block[p].i_depth
                                        : block[p].i_theta;
            EXPECT_EQ(point_outer, outer);
          }
          // An uncapped block is a whole outer slab (maximal run).
          const int inner = order == ScanOrder::kNappeByNappe
                                ? s.n_theta * s.n_phi
                                : s.n_phi * s.n_depth;
          EXPECT_EQ(block.size(), inner);
        });
  }
}

TEST(BlockCursor, UniformDepthIsExactForBothOrders) {
  const VolumeSpec s = spec(4, 3, 6);
  const VolumeGrid grid(s);
  for (const ScanOrder order :
       {ScanOrder::kNappeByNappe, ScanOrder::kScanlineByScanline}) {
    for (const int max_points : {2, 5, 64}) {
      for_each_focal_block(
          grid, order, full_scan_range(s, order), max_points,
          [&](const FocalBlock& block) {
            bool same = true;
            for (int p = 0; p < block.size(); ++p) {
              same = same && block[p].i_depth == block.front().i_depth;
            }
            EXPECT_EQ(block.uniform_depth, same) << to_string(order);
            // Nappe-order blocks lie inside one nappe by construction.
            if (order == ScanOrder::kNappeByNappe) {
              EXPECT_TRUE(block.uniform_depth);
            }
          });
    }
  }
}

TEST(BlockCursor, ReusesTheCallerBuffer) {
  const VolumeSpec s = spec(4, 3, 6);
  const VolumeGrid grid(s);
  std::vector<FocalPoint> buffer;
  int blocks = 0;
  const FocalPoint* stable_data = nullptr;
  for_each_focal_block(grid, ScanOrder::kNappeByNappe,
                       full_scan_range(s, ScanOrder::kNappeByNappe), 5, buffer,
                       [&](const FocalBlock& block) {
                         EXPECT_EQ(block.points.data(), buffer.data());
                         if (blocks > 0) {
                           // After the first full-size block the storage is
                           // at its high-water mark and is never reallocated.
                           EXPECT_EQ(buffer.data(), stable_data);
                         }
                         stable_data = buffer.data();
                         ++blocks;
                       });
  EXPECT_GT(blocks, 1);
}

TEST(ScanRange, RejectsOutOfBoundsRanges) {
  const VolumeSpec s = spec(4, 3, 10);
  const VolumeGrid grid(s);
  EXPECT_THROW(ScanCursor(grid, ScanOrder::kNappeByNappe, ScanRange{-1, 3}),
               ContractViolation);
  EXPECT_THROW(ScanCursor(grid, ScanOrder::kNappeByNappe, ScanRange{0, 11}),
               ContractViolation);
  EXPECT_THROW(partition_scan(s, ScanOrder::kNappeByNappe, 0),
               ContractViolation);
}

}  // namespace
}  // namespace us3d::imaging
