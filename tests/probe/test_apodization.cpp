#include "probe/apodization.h"

#include <gtest/gtest.h>

#include "common/contracts.h"
#include "probe/presets.h"

namespace us3d::probe {
namespace {

TEST(WindowValue, RectIsFlat) {
  for (double u = 0.0; u <= 1.0; u += 0.1) {
    EXPECT_DOUBLE_EQ(window_value(WindowKind::kRect, u), 1.0);
  }
}

TEST(WindowValue, HannIsZeroAtEdgesOneAtCentre) {
  EXPECT_NEAR(window_value(WindowKind::kHann, 0.0), 0.0, 1e-15);
  EXPECT_NEAR(window_value(WindowKind::kHann, 1.0), 0.0, 1e-12);
  EXPECT_NEAR(window_value(WindowKind::kHann, 0.5), 1.0, 1e-15);
}

TEST(WindowValue, HammingHasClassicEdgeValue) {
  EXPECT_NEAR(window_value(WindowKind::kHamming, 0.0), 0.08, 1e-12);
  EXPECT_NEAR(window_value(WindowKind::kHamming, 0.5), 1.0, 1e-12);
}

TEST(WindowValue, BlackmanEdgesNearZero) {
  EXPECT_NEAR(window_value(WindowKind::kBlackman, 0.0), 0.0, 1e-12);
  EXPECT_NEAR(window_value(WindowKind::kBlackman, 0.5), 1.0, 1e-12);
}

TEST(WindowValue, TukeyFlatTopAndTapers) {
  // alpha = 0.5: flat for u in [0.25, 0.75], cosine tapers outside.
  EXPECT_DOUBLE_EQ(window_value(WindowKind::kTukey, 0.5, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(window_value(WindowKind::kTukey, 0.3, 0.5), 1.0);
  EXPECT_NEAR(window_value(WindowKind::kTukey, 0.0, 0.5), 0.0, 1e-15);
  EXPECT_NEAR(window_value(WindowKind::kTukey, 1.0, 0.5), 0.0, 1e-12);
  // alpha = 0 degenerates to rect.
  EXPECT_DOUBLE_EQ(window_value(WindowKind::kTukey, 0.0, 0.0), 1.0);
}

TEST(WindowValue, AllWindowsSymmetric) {
  for (const auto kind : {WindowKind::kHann, WindowKind::kHamming,
                          WindowKind::kTukey, WindowKind::kBlackman}) {
    for (double u = 0.0; u <= 0.5; u += 0.05) {
      EXPECT_NEAR(window_value(kind, u), window_value(kind, 1.0 - u), 1e-12);
    }
  }
}

TEST(WindowValue, RejectsOutOfRangePosition) {
  EXPECT_THROW(window_value(WindowKind::kHann, -0.1), ContractViolation);
  EXPECT_THROW(window_value(WindowKind::kHann, 1.1), ContractViolation);
}

TEST(ApodizationMap, SeparableProduct) {
  const MatrixProbe probe(small_probe(8));
  const ApodizationMap map(probe, WindowKind::kHann);
  // weight(ix,iy) = wx(ix)*wy(iy): check against scalar window.
  for (int ix = 0; ix < 8; ++ix) {
    const double u = ix / 7.0;
    EXPECT_NEAR(map.weight(ix, 3),
                window_value(WindowKind::kHann, u) *
                    window_value(WindowKind::kHann, 3.0 / 7.0),
                1e-12);
  }
}

TEST(ApodizationMap, FlatIndexMatchesGridIndex) {
  const MatrixProbe probe(small_probe(6));
  const ApodizationMap map(probe, WindowKind::kHamming);
  for (int e = 0; e < probe.element_count(); ++e) {
    EXPECT_DOUBLE_EQ(map.weight_flat(e),
                     map.weight(probe.index_x(e), probe.index_y(e)));
  }
}

TEST(ApodizationMap, TotalWeightMatchesSum) {
  const MatrixProbe probe(small_probe(5));
  const ApodizationMap map(probe, WindowKind::kHann);
  double sum = 0.0;
  for (int e = 0; e < probe.element_count(); ++e) sum += map.weight_flat(e);
  EXPECT_NEAR(map.total_weight(), sum, 1e-12);
}

TEST(ApodizationMap, RectTotalIsElementCount) {
  const MatrixProbe probe(small_probe(9));
  const ApodizationMap map(probe, WindowKind::kRect);
  EXPECT_DOUBLE_EQ(map.total_weight(), 81.0);
}

TEST(ApodizationMap, SingleElementProbeGetsCentreWeight) {
  const MatrixProbe probe(small_probe(1));
  const ApodizationMap map(probe, WindowKind::kHann);
  EXPECT_DOUBLE_EQ(map.weight(0, 0), 1.0);
}

}  // namespace
}  // namespace us3d::probe
