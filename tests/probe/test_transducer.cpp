#include "probe/transducer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.h"
#include "probe/presets.h"

namespace us3d::probe {
namespace {

MatrixProbe make_probe(int nx, int ny, double pitch = 1.0e-3) {
  return MatrixProbe(TransducerSpec{nx, ny, pitch, 4.0e6, 4.0e6});
}

TEST(TransducerSpec, DerivedQuantities) {
  const TransducerSpec spec = paper_probe();
  EXPECT_EQ(spec.element_count(), 10000);
  EXPECT_NEAR(spec.wavelength_m(1540.0), 0.385e-3, 1e-9);
  // Table I: matrix dimension d = 50 lambda = 19.25 mm.
  EXPECT_NEAR(spec.aperture_x_m(), 19.25e-3, 1e-6);
  EXPECT_NEAR(spec.aperture_y_m(), 19.25e-3, 1e-6);
}

TEST(MatrixProbe, GridIsCentred) {
  const MatrixProbe probe = make_probe(4, 4);
  Vec3 sum{};
  for (int e = 0; e < probe.element_count(); ++e) {
    sum += probe.element_position(e);
  }
  EXPECT_NEAR(sum.x, 0.0, 1e-15);
  EXPECT_NEAR(sum.y, 0.0, 1e-15);
  EXPECT_NEAR(sum.z, 0.0, 1e-15);
}

TEST(MatrixProbe, ElementsLieInZPlane) {
  const MatrixProbe probe = make_probe(5, 3);
  for (int e = 0; e < probe.element_count(); ++e) {
    EXPECT_EQ(probe.element_position(e).z, 0.0);
  }
}

TEST(MatrixProbe, PitchBetweenNeighbours) {
  const double pitch = 0.1925e-3;
  const MatrixProbe probe = make_probe(10, 10, pitch);
  const Vec3 a = probe.element_position(3, 5);
  const Vec3 b = probe.element_position(4, 5);
  const Vec3 c = probe.element_position(3, 6);
  EXPECT_NEAR(b.x - a.x, pitch, 1e-15);
  EXPECT_NEAR(c.y - a.y, pitch, 1e-15);
}

TEST(MatrixProbe, FlatIndexRoundTrip) {
  const MatrixProbe probe = make_probe(7, 5);
  for (int iy = 0; iy < 5; ++iy) {
    for (int ix = 0; ix < 7; ++ix) {
      const int flat = probe.flat_index(ix, iy);
      EXPECT_EQ(probe.index_x(flat), ix);
      EXPECT_EQ(probe.index_y(flat), iy);
      EXPECT_EQ(probe.element_position(flat), probe.element_position(ix, iy));
    }
  }
}

TEST(MatrixProbe, MirrorSymmetryOfColumns) {
  const MatrixProbe probe = make_probe(100, 100);
  for (int ix = 0; ix < 100; ++ix) {
    EXPECT_NEAR(probe.column_x(ix), -probe.column_x(99 - ix), 1e-15);
  }
}

TEST(MatrixProbe, EvenGridHasNoElementOnAxis) {
  // With lambda/2 pitch and even counts, element x coordinates are odd
  // multiples of pitch/2 (the folding in the reference table relies on it).
  const MatrixProbe probe = make_probe(100, 100, 0.1925e-3);
  for (int ix = 0; ix < 100; ++ix) {
    EXPECT_GT(std::abs(probe.column_x(ix)), 0.09e-3);
  }
}

TEST(MatrixProbe, MaxElementRadiusIsCornerDistance) {
  const MatrixProbe probe = make_probe(100, 100, 0.1925e-3);
  const Vec3 corner = probe.element_position(0, 0);
  EXPECT_NEAR(probe.max_element_radius(), corner.norm(), 1e-12);
}

TEST(MatrixProbe, RejectsInvalidSpec) {
  EXPECT_THROW(make_probe(0, 4), ContractViolation);
  EXPECT_THROW(MatrixProbe(TransducerSpec{4, 4, -1.0, 4e6, 4e6}),
               ContractViolation);
  EXPECT_THROW(MatrixProbe(TransducerSpec{4, 4, 1e-3, 0.0, 4e6}),
               ContractViolation);
}

TEST(MatrixProbe, RejectsOutOfRangeIndices) {
  const MatrixProbe probe = make_probe(4, 4);
  EXPECT_THROW(probe.element_position(4, 0), ContractViolation);
  EXPECT_THROW(probe.element_position(-1), ContractViolation);
  EXPECT_THROW(probe.flat_index(0, 4), ContractViolation);
}

}  // namespace
}  // namespace us3d::probe
