#include "probe/directivity.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.h"
#include "common/contracts.h"

namespace us3d::probe {
namespace {

constexpr double kLambda = 0.385e-3;
constexpr double kWidth = kLambda / 2.0;

TEST(Directivity, AmplitudeIsOneOnAxis) {
  const Directivity d(kWidth, kLambda, deg_to_rad(45.0));
  EXPECT_DOUBLE_EQ(d.amplitude(0.0), 1.0);
}

TEST(Directivity, AmplitudeDecreasesMonotonically) {
  const Directivity d(kWidth, kLambda, deg_to_rad(45.0));
  double prev = 1.0;
  for (double deg = 1.0; deg <= 89.0; deg += 1.0) {
    const double a = d.amplitude(deg_to_rad(deg));
    EXPECT_LT(a, prev + 1e-12) << "at " << deg << " deg";
    prev = a;
  }
}

TEST(Directivity, AmplitudeIsZeroAtGrazing) {
  const Directivity d(kWidth, kLambda, deg_to_rad(45.0));
  EXPECT_NEAR(d.amplitude(kPi / 2.0), 0.0, 1e-12);
}

TEST(Directivity, AmplitudeIsEven) {
  const Directivity d(kWidth, kLambda, deg_to_rad(45.0));
  EXPECT_DOUBLE_EQ(d.amplitude(0.3), d.amplitude(-0.3));
}

TEST(Directivity, FromDbDownFindsHalfAmplitudeAngle) {
  const Directivity d = Directivity::from_db_down(kWidth, kLambda, 6.0);
  // At the cutoff, the response should be 10^(-6/20) ~= 0.501.
  EXPECT_NEAR(d.amplitude(d.cutoff_angle()), std::pow(10.0, -6.0 / 20.0),
              1e-6);
  // Half-wavelength elements are wide radiators: cutoff near 50 degrees.
  EXPECT_NEAR(rad_to_deg(d.cutoff_angle()), 49.8, 0.5);
}

TEST(Directivity, DeeperCutoffGivesWiderCone) {
  const Directivity d6 = Directivity::from_db_down(kWidth, kLambda, 6.0);
  const Directivity d12 = Directivity::from_db_down(kWidth, kLambda, 12.0);
  EXPECT_GT(d12.cutoff_angle(), d6.cutoff_angle());
}

TEST(Directivity, AngleToOnAxisPointIsZero) {
  const Vec3 elem{1.0e-3, 2.0e-3, 0.0};
  const Vec3 straight_ahead = elem + Vec3{0.0, 0.0, 50.0e-3};
  EXPECT_NEAR(Directivity::angle_to(elem, straight_ahead), 0.0, 1e-12);
}

TEST(Directivity, AngleToLateralPointIs90Deg) {
  const Vec3 elem{};
  const Vec3 side{10.0e-3, 0.0, 0.0};
  EXPECT_NEAR(Directivity::angle_to(elem, side), kPi / 2.0, 1e-12);
}

TEST(Directivity, AngleToKnown45Deg) {
  const Vec3 elem{};
  const Vec3 p{5.0e-3, 0.0, 5.0e-3};
  EXPECT_NEAR(Directivity::angle_to(elem, p), kPi / 4.0, 1e-12);
}

TEST(Directivity, AcceptsInsideConeRejectsOutside) {
  const Directivity d(kWidth, kLambda, deg_to_rad(30.0));
  const Vec3 elem{};
  EXPECT_TRUE(d.accepts(elem, Vec3{0.0, 0.0, 10.0e-3}));
  EXPECT_TRUE(d.accepts(elem, Vec3{2.0e-3, 0.0, 10.0e-3}));   // ~11 deg
  EXPECT_FALSE(d.accepts(elem, Vec3{10.0e-3, 0.0, 10.0e-3})); // 45 deg
}

TEST(Directivity, RejectsInvalidConstruction) {
  EXPECT_THROW(Directivity(0.0, kLambda, 0.5), ContractViolation);
  EXPECT_THROW(Directivity(kWidth, kLambda, 0.0), ContractViolation);
  EXPECT_THROW(Directivity(kWidth, kLambda, kPi), ContractViolation);
}

TEST(Directivity, AngleToCoincidentPointRejected) {
  EXPECT_THROW(Directivity::angle_to(Vec3{}, Vec3{}), ContractViolation);
}

}  // namespace
}  // namespace us3d::probe
