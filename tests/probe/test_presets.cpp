#include "probe/presets.h"

#include <gtest/gtest.h>

#include "common/contracts.h"

namespace us3d::probe {
namespace {

TEST(Presets, PaperProbeMatchesTableI) {
  const TransducerSpec spec = paper_probe();
  EXPECT_EQ(spec.elements_x, 100);
  EXPECT_EQ(spec.elements_y, 100);
  EXPECT_DOUBLE_EQ(spec.center_frequency_hz, 4.0e6);
  EXPECT_DOUBLE_EQ(spec.bandwidth_hz, 4.0e6);
  // pitch = lambda/2 = c/fc/2 = 192.5 um.
  EXPECT_NEAR(spec.pitch_m, 0.19250e-3, 1e-9);
}

TEST(Presets, SpeedOfSoundIsTableIValue) {
  EXPECT_DOUBLE_EQ(kSpeedOfSoundTissue, 1540.0);
}

TEST(Presets, SmallProbeKeepsPhysics) {
  const TransducerSpec spec = small_probe(16);
  EXPECT_EQ(spec.elements_x, 16);
  EXPECT_EQ(spec.elements_y, 16);
  EXPECT_DOUBLE_EQ(spec.pitch_m, paper_probe().pitch_m);
  EXPECT_DOUBLE_EQ(spec.center_frequency_hz,
                   paper_probe().center_frequency_hz);
}

TEST(Presets, Figure3ProbeIs16x16) {
  const TransducerSpec spec = figure3_probe();
  EXPECT_EQ(spec.elements_x, 16);
  EXPECT_EQ(spec.elements_y, 16);
}

TEST(Presets, SmallProbeRejectsNonPositive) {
  EXPECT_THROW(small_probe(0), ContractViolation);
}

}  // namespace
}  // namespace us3d::probe
