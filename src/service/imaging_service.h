// The multi-session imaging service: many concurrent imaging workloads on
// one box, scheduled against a *shared* global budget instead of a
// per-pipeline free-for-all. This is the system-level payoff of the
// paper's thesis — once delay generation stops costing gigabytes of
// tables and the bandwidth to stream them, the same hardware can serve
// many scenarios at once, and the interesting problems become admission,
// fair sharing and load shedding.
//
//   client ──open_session(Scenario, priority, policy)──► admission control
//      │                                                  (refuse when the
//      │ submit(frame)                                     budget is gone)
//      ▼
//   per-session bounded backlog ──pump──► AsyncPipeline (own FramePipeline,
//      │ (shed policy applies here)        worker cap + ring slots granted
//      ▼                                   from the shared budget)
//   poll()/close_session() ◄── delivered volumes, per-class latency stats
//
// Scheduling model:
//  - Workers: the service owns `ServiceBudget::worker_threads` logical
//    workers. Every open session is guaranteed one; the surplus is dealt
//    in priority order (interactive > routine > bulk, FIFO within a
//    class) up to each session's requested parallelism, and re-dealt on
//    every open/close via FramePipeline::set_worker_cap — no
//    re-partitioning, no respawning, bit pattern unchanged.
//  - In-flight volumes: each session's VolumeRing slots are granted from
//    `ServiceBudget::inflight_volumes` at admission and returned at
//    close.
//  - Admission control: open_session() refuses (with a reason, counted in
//    ServiceStats::sessions_refused) when either budget is exhausted.
//  - Load shedding: submit() never blocks. When a session's backlog is
//    full its ShedPolicy decides — refuse the newest, drop the oldest, or
//    adaptively shrink the session's queue depth (AIMD: halve on
//    overflow, regrow one step per fully drained backlog) so a lagging
//    session sheds early instead of hoarding shared slots. Compounding
//    caveat: with compound_origins K > 1 the pipeline sums K consecutive
//    *accepted* insonifications, so shedding changes group composition —
//    each delivered volume is still the exact serial sum of the K shots
//    it names, but not the volume the unshedded schedule would have
//    produced (and with synthetic aperture the group may repeat an
//    origin). Sessions that need fixed K-groups should either not shed
//    (pace on acceptance) or treat a compound group as one frame
//    upstream.
//  - Failure isolation: every session has its own pipeline and stage
//    threads. A throwing sink or worker fails *that* session (captured in
//    its stats, surfaced via session_failed()/SessionStats::error);
//    siblings never notice.
//
// Threading: all methods are safe to call concurrently. Per-session
// operations (submit/poll/close) serialize on the session, never on the
// service, so one slow client cannot stall another's submit path.
// Sequence numbers within a session must be strictly increasing — they
// key the submit-to-delivery latency ledger. Sinks run on the calling
// thread while the session is locked: a sink must NOT call back into the
// service for its own session (submit/poll/stats from inside the sink
// self-deadlocks on the non-recursive session mutex); touching a
// *different* session from a sink is fine.
#ifndef US3D_SERVICE_IMAGING_SERVICE_H
#define US3D_SERVICE_IMAGING_SERVICE_H

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/annotated_mutex.h"
#include "obs/metrics.h"
#include "runtime/async_pipeline.h"
#include "runtime/frame_pipeline.h"
#include "runtime/frame_source.h"
#include "service/scenario.h"
#include "service/service_stats.h"

namespace us3d::service {

/// The shared, service-wide resource pool sessions are admitted against.
struct ServiceBudget {
  int worker_threads = 4;    ///< total sweep parallelism across sessions
  int inflight_volumes = 8;  ///< total VolumeRing slots across sessions
};

/// Per-session QoS knobs chosen by the client at admission.
struct SessionOptions {
  PriorityClass priority = PriorityClass::kRoutine;
  ShedPolicy policy = ShedPolicy::kRefuseNewest;
};

/// Outcome of open_session(). When refused, `reason` says which budget
/// ran out and `session` is -1.
struct Admission {
  bool admitted = false;
  int session = -1;
  std::string reason;
  int granted_workers = 0;  ///< initial worker cap (rebalanced later)
  int granted_depth = 0;    ///< queue depth actually allocated
};

class ImagingService {
 public:
  explicit ImagingService(const ServiceBudget& budget);
  /// Closes every open session, discarding undelivered output.
  ~ImagingService();

  ImagingService(const ImagingService&) = delete;
  ImagingService& operator=(const ImagingService&) = delete;

  /// Admission control: validates the scenario, grants budget shares (a
  /// session always gets >= 1 worker and >= 1 ring slot or is refused),
  /// builds the session's pipeline and rebalances worker caps.
  Admission open_session(const Scenario& scenario,
                         const SessionOptions& options = {})
      US3D_EXCLUDES(service_mutex_);

  /// Non-blocking frame submission. Returns true when the frame entered
  /// the session's backlog/pipeline, false when it was shed
  /// (kRefuseNewest on a full backlog) or the session is terminal.
  /// Sequence numbers must be strictly increasing per session.
  bool submit(int session, runtime::EchoFrame frame)
      US3D_EXCLUDES(service_mutex_);

  /// Non-blocking: delivers every currently finished volume to `sink`, in
  /// order; returns how many were delivered. A sink exception fails the
  /// session (captured, not rethrown) — siblings are unaffected.
  int poll(int session, const runtime::VolumeSink& sink)
      US3D_EXCLUDES(service_mutex_);

  /// Drains the session (remaining outputs go to `sink`, which may be
  /// null), releases its budget shares, rebalances the survivors and
  /// returns the final ledger. Never throws on session failure — the
  /// error is in the returned stats.
  SessionStats close_session(int session,
                             const runtime::VolumeSink& sink = {})
      US3D_EXCLUDES(service_mutex_);

  /// Live snapshot of one open session.
  SessionStats session_stats(int session) const US3D_EXCLUDES(service_mutex_);
  bool session_failed(int session) const US3D_EXCLUDES(service_mutex_);
  /// Current worker cap of an open session (changes as siblings come and
  /// go — the priority test hooks observe rebalancing through this).
  int granted_workers(int session) const US3D_EXCLUDES(service_mutex_);
  int open_sessions() const US3D_EXCLUDES(service_mutex_);

  /// Whole-box snapshot: open sessions live, closed sessions final.
  ServiceStats stats() const US3D_EXCLUDES(service_mutex_);

  const ServiceBudget& budget() const { return budget_; }

 private:
  struct Session;

  std::shared_ptr<Session> find(int session) const
      US3D_EXCLUDES(service_mutex_);
  /// Post-mortem hook: if `s` just transitioned to failed (flagged under
  /// its mutex by capture_error_locked), trigger one flight-recorder dump
  /// — after every lock is released, because dump() does file IO and
  /// walks the telemetry registries. No-op unless a post-mortem directory
  /// is configured.
  void maybe_dump_failure(const std::shared_ptr<Session>& s)
      US3D_EXCLUDES(service_mutex_);
  /// Re-deals the worker budget across open sessions (see the scheduling
  /// model above). Caller holds service_mutex_.
  void rebalance_locked() US3D_REQUIRES(service_mutex_);
  /// Folds one session snapshot into the service totals.
  static void fold(ServiceStats& out, const SessionStats& s);

  ServiceBudget budget_;
  mutable Mutex service_mutex_;
  // Open sessions, by id.
  std::map<int, std::shared_ptr<Session>> sessions_
      US3D_GUARDED_BY(service_mutex_);
  std::vector<SessionStats> closed_ US3D_GUARDED_BY(service_mutex_);
  int next_id_ US3D_GUARDED_BY(service_mutex_) = 1;
  int inflight_in_use_ US3D_GUARDED_BY(service_mutex_) = 0;
  std::int64_t sessions_admitted_ US3D_GUARDED_BY(service_mutex_) = 0;
  std::int64_t sessions_refused_ US3D_GUARDED_BY(service_mutex_) = 0;

  // Live telemetry nodes in obs::MetricsRegistry::global(), resolved once
  // at construction (the hot paths only bump atomics). Session-scoped
  // gauges ("service.s<id>.*") are registered by each session's pipeline
  // and unlisted at close.
  std::shared_ptr<obs::Counter> admitted_counter_;
  std::shared_ptr<obs::Counter> refused_counter_;
  std::shared_ptr<obs::Counter> frames_submitted_counter_;
  std::shared_ptr<obs::Counter> closed_counter_;
  std::shared_ptr<obs::Counter> rebalance_counter_;
  std::array<std::shared_ptr<obs::Counter>, 3> shed_counters_;  // by policy
  std::array<std::shared_ptr<obs::FixedHistogram>, kPriorityClasses>
      latency_hist_;
  std::shared_ptr<obs::Gauge> open_sessions_gauge_;
  std::shared_ptr<obs::Gauge> inflight_gauge_;
};

}  // namespace us3d::service

#endif  // US3D_SERVICE_IMAGING_SERVICE_H
