#include "service/imaging_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <utility>

#include "common/annotated_mutex.h"
#include "common/contracts.h"
#include "obs/event_log.h"
#include "obs/flight_recorder.h"
#include "obs/resource_profiler.h"
#include "obs/trace.h"
#include "probe/apodization.h"

namespace us3d::service {

namespace {

using Clock = std::chrono::steady_clock;

/// Metric name prefix for one session's gauges ("service.s<id>."). The
/// trailing dot keeps remove_prefix("service.s1.") from unlisting
/// "service.s10.*".
std::string session_scope(int id) {
  return "service.s" + std::to_string(id);
}

}  // namespace

// One admitted client workload: its own pipeline and async stage graph
// (failure isolation), a bounded backlog the shed policy acts on, and the
// frame ledger. All mutable state is guarded by `mutex`; the fields above
// it are admission-time constants, frozen before the session is published
// in the service map. The service only nests its own lock around a
// session's in open_session (on the still-unpublished session, to
// initialize guarded fields); everywhere else — including the read-only
// snapshots in stats() — the service lock is released before a session
// mutex is taken, so one slow client can never stall the service.
struct ImagingService::Session {
  int id = -1;
  Scenario scenario;
  SessionOptions options;
  std::unique_ptr<runtime::FramePipeline> pipeline;
  std::unique_ptr<runtime::AsyncPipeline> async;
  int ring_slots = 0;          ///< in-flight budget this session holds
  int requested_workers = 1;   ///< cap ceiling (pipeline partition count)
  std::atomic<int> worker_cap{1};  ///< current grant; written by rebalance

  mutable Mutex mutex;
  struct Pending {
    runtime::EchoFrame frame;
    Clock::time_point submitted_at;
  };
  std::deque<Pending> backlog US3D_GUARDED_BY(mutex);
  /// Submit instant of every frame the async pipeline has accepted but
  /// not yet delivered, keyed by (strictly increasing) sequence.
  std::map<std::int64_t, Clock::time_point> in_flight US3D_GUARDED_BY(mutex);
  int granted_depth US3D_GUARDED_BY(mutex) = 0;
  int effective_depth US3D_GUARDED_BY(mutex) = 0;
  bool closing US3D_GUARDED_BY(mutex) = false;
  bool finished US3D_GUARDED_BY(mutex) = false;

  std::int64_t submitted US3D_GUARDED_BY(mutex) = 0;
  std::int64_t accepted US3D_GUARDED_BY(mutex) = 0;
  std::int64_t shed_refused US3D_GUARDED_BY(mutex) = 0;
  std::int64_t shed_dropped US3D_GUARDED_BY(mutex) = 0;
  std::int64_t shed_adaptive US3D_GUARDED_BY(mutex) = 0;
  std::int64_t refused_terminal US3D_GUARDED_BY(mutex) = 0;
  std::int64_t delivered_frames US3D_GUARDED_BY(mutex) = 0;
  std::int64_t delivered_insonifications US3D_GUARDED_BY(mutex) = 0;
  bool failed US3D_GUARDED_BY(mutex) = false;
  /// Set by capture_error_locked on the failing transition; consumed by
  /// ImagingService::maybe_dump_failure once every lock is released.
  bool postmortem_pending US3D_GUARDED_BY(mutex) = false;
  std::string error US3D_GUARDED_BY(mutex);
  SampleQuantiles latency US3D_GUARDED_BY(mutex);
  /// Set once at close.
  runtime::PipelineStats final_pipeline US3D_GUARDED_BY(mutex);
  /// Service-wide per-class latency histogram (shared with siblings of
  /// the same priority); observed alongside `latency` on every delivery.
  std::shared_ptr<obs::FixedHistogram> latency_hist US3D_GUARDED_BY(mutex);

  /// Moves backlog frames into the async pipeline while it accepts them,
  /// and (adaptive policy) regrows a shrunken depth one step per fully
  /// drained backlog — the additive half of AIMD.
  void pump_locked() US3D_REQUIRES(mutex) {
    while (!backlog.empty()) {
      Pending& p = backlog.front();
      const std::int64_t seq = p.frame.sequence;
      const Clock::time_point t = p.submitted_at;
      if (!async->try_submit(p.frame)) break;  // frame left intact
      in_flight.emplace(seq, t);
      ++accepted;
      backlog.pop_front();
    }
    if (options.policy == ShedPolicy::kAdaptiveDepth && backlog.empty() &&
        effective_depth < granted_depth) {
      ++effective_depth;
      async->set_queue_depth(effective_depth);
    }
  }

  /// Wraps the user sink with delivery accounting. Invoked with `mutex`
  /// held (poll/finish run the sink on the calling thread). The user sink
  /// runs first: if it throws, the async pipeline fails the session and
  /// nothing here counts the volume as delivered.
  runtime::VolumeSink delivery_sink(const runtime::VolumeSink& user)
      US3D_REQUIRES(mutex) {
    return [this, &user](const beamform::VolumeImage& volume,
                         std::int64_t sequence) {
      // The sink only ever runs on the poll/close caller's thread, which
      // holds the session mutex for the whole drain; assert that to the
      // thread-safety analysis (a lambda body is analyzed standalone and
      // cannot see its caller's lock).
      mutex.assert_held();
      if (user) user(volume, sequence);
      const Clock::time_point now = Clock::now();
      ++delivered_frames;
      // A delivered volume folds every accepted insonification up to its
      // sequence (with compounding, K of them); shed frames were already
      // erased when shed, so what remains <= sequence was delivered.
      for (auto it = in_flight.begin();
           it != in_flight.end() && it->first <= sequence;) {
        const double seconds =
            std::chrono::duration<double>(now - it->second).count();
        latency.add(seconds);
        if (latency_hist) latency_hist->observe(seconds);
        ++delivered_insonifications;
        it = in_flight.erase(it);
      }
    };
  }

  void capture_error_locked() US3D_REQUIRES(mutex) {
    if (failed || !async->failed()) return;
    failed = true;
    postmortem_pending = true;
    try {
      async->rethrow_if_failed();
    } catch (const std::exception& e) {
      error = e.what();
    } catch (...) {
      error = "unknown session error";
    }
    // The error string is dynamic and the event log only keeps static
    // strings; the full text lives in SessionStats::error and in the
    // post-mortem bundle's metrics/manifest context.
    US3D_EVENT_ERROR("session.failed", id, -1, "async pipeline failed");
  }

  SessionStats snapshot_locked() const US3D_REQUIRES(mutex) {
    SessionStats out;
    out.id = id;
    out.scenario = scenario.name;
    out.priority = options.priority;
    out.policy = options.policy;
    out.granted_workers = worker_cap.load(std::memory_order_relaxed);
    out.granted_depth = granted_depth;
    out.effective_depth = effective_depth;
    out.submitted = submitted;
    out.accepted = accepted;
    out.shed_refused = shed_refused;
    out.shed_dropped = shed_dropped;
    out.shed_adaptive = shed_adaptive;
    out.refused_terminal = refused_terminal;
    out.delivered_frames = delivered_frames;
    out.delivered_insonifications = delivered_insonifications;
    out.failed = failed;
    out.error = error;
    out.latency = latency;
    // One consistent pipeline view taken under the async state lock
    // *while we hold the session mutex* (every ledger mutation — submit,
    // pump, deliver — happens under that same session mutex, so nothing
    // moves between reading the ledger above and the pipeline counters
    // here). Mid-run the snapshot reports live acceptance; after close
    // the final session stats are exact. Before this, a mid-run scrape
    // read FramePipeline lifetime stats — zero until finish() folds the
    // session in — so delivered counts could exceed reported acceptance.
    out.pipeline = finished ? final_pipeline : async->stats_snapshot();
    out.precision = out.pipeline.precision;
    US3D_ENSURES(out.ledger_bounded());
    return out;
  }
};

ImagingService::ImagingService(const ServiceBudget& budget) : budget_(budget) {
  US3D_EXPECTS(budget.worker_threads >= 1);
  US3D_EXPECTS(budget.inflight_volumes >= 1);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  admitted_counter_ = reg.counter("service.sessions_admitted");
  refused_counter_ = reg.counter("service.sessions_refused");
  frames_submitted_counter_ = reg.counter("service.frames_submitted");
  closed_counter_ = reg.counter("service.sessions_closed");
  rebalance_counter_ = reg.counter("service.rebalances");
  for (const ShedPolicy policy :
       {ShedPolicy::kRefuseNewest, ShedPolicy::kDropOldest,
        ShedPolicy::kAdaptiveDepth}) {
    shed_counters_[static_cast<std::size_t>(policy)] = reg.counter(
        std::string("service.shed.") + policy_name(policy));
  }
  for (int p = 0; p < kPriorityClasses; ++p) {
    latency_hist_[static_cast<std::size_t>(p)] = reg.histogram(
        std::string("service.latency_s.") +
        priority_name(static_cast<PriorityClass>(p)));
  }
  open_sessions_gauge_ = reg.gauge("service.open_sessions");
  inflight_gauge_ = reg.gauge("service.inflight_in_use");
  // Telemetry bring-up rides on service construction: US3D_PROFILE starts
  // the per-stage resource sampler into the same registry.
  obs::ResourceProfiler::start_from_env();
}

ImagingService::~ImagingService() {
  std::vector<int> open;
  {
    MutexLock lock(service_mutex_);
    for (const auto& [id, session] : sessions_) open.push_back(id);
  }
  for (const int id : open) close_session(id, {});
}

Admission ImagingService::open_session(const Scenario& scenario,
                                       const SessionOptions& options) {
  Admission result;
  const auto refuse = [&](const std::string& reason) {
    result.admitted = false;
    result.session = -1;
    result.reason = reason;
    refused_counter_->increment();
    US3D_TRACE_INSTANT("service.refuse");
    MutexLock lock(service_mutex_);
    ++sessions_refused_;
    return result;
  };
  try {
    scenario.validate();
  } catch (const std::exception& e) {
    US3D_EVENT_WARN("service.refuse", -1, -1, "scenario validation failed");
    return refuse(e.what());
  }

  MutexLock lock(service_mutex_);
  if (static_cast<int>(sessions_.size()) >= budget_.worker_threads) {
    ++sessions_refused_;
    refused_counter_->increment();
    US3D_TRACE_INSTANT("service.refuse");
    US3D_EVENT_WARN("service.refuse", -1, -1, "worker budget exhausted",
                    "open_sessions", static_cast<std::int64_t>(
                                         sessions_.size()));
    result.reason = "worker budget exhausted";
    return result;
  }
  const int min_slots = scenario.compound_origins > 1 ? 2 : 1;
  const int remaining = budget_.inflight_volumes - inflight_in_use_;
  if (remaining < min_slots) {
    ++sessions_refused_;
    refused_counter_->increment();
    US3D_TRACE_INSTANT("service.refuse");
    US3D_EVENT_WARN("service.refuse", -1, -1,
                    "in-flight volume budget exhausted", "remaining",
                    remaining, "needed", min_slots);
    result.reason = "in-flight volume budget exhausted";
    return result;
  }
  const int depth = std::min(scenario.queue_depth, remaining);

  auto session = std::make_shared<Session>();
  session->id = next_id_;
  session->scenario = scenario;
  session->options = options;
  {
    // The session is not published yet, so its mutex is uncontended; the
    // lock keeps the guarded-field initialization visible to the
    // thread-safety analysis (service -> session nesting is safe here for
    // the same reason: nobody else can hold this session's mutex).
    MutexLock session_lock(session->mutex);
    session->granted_depth = depth;
    session->effective_depth = depth;
  }
  try {
    const imaging::SystemConfig system = scenario.system();
    const probe::ApodizationMap apod(probe::MatrixProbe(system.probe),
                                     probe::WindowKind::kRect);
    runtime::PipelineConfig pc = scenario.pipeline_config();
    // Partition for the most parallelism this session could ever be
    // granted; rebalancing then moves the cap, never the partitioning.
    pc.worker_threads = std::min(scenario.worker_threads,
                                 budget_.worker_threads);
    pc.queue_depth = depth;
    const auto prototype = scenario.make_engine();
    session->pipeline = std::make_unique<runtime::FramePipeline>(
        system, apod, *prototype, pc);
    session->requested_workers = session->pipeline->worker_threads();
    session->async = std::make_unique<runtime::AsyncPipeline>(
        *session->pipeline,
        runtime::AsyncOptions{.depth = depth,
                              .compound_origins = scenario.compound_origins,
                              .session = session->id,
                              .metrics_scope = session_scope(session->id)});
  } catch (const std::exception& e) {
    // Construction failed (e.g. a forced SIMD backend this host cannot
    // run): the session never existed, the budget is untouched.
    ++sessions_refused_;
    refused_counter_->increment();
    US3D_TRACE_INSTANT("service.refuse");
    US3D_EVENT_WARN("service.refuse", -1, -1,
                    "pipeline construction failed");
    result.reason = e.what();
    return result;
  }
  {
    MutexLock session_lock(session->mutex);
    session->latency_hist =
        latency_hist_[static_cast<std::size_t>(options.priority)];
  }
  session->ring_slots = session->async->ring_slots();
  US3D_ENSURES(session->ring_slots <= remaining);

  ++next_id_;
  ++sessions_admitted_;
  inflight_in_use_ += session->ring_slots;
  sessions_.emplace(session->id, session);
  rebalance_locked();
  admitted_counter_->increment();
  open_sessions_gauge_->set(static_cast<std::int64_t>(sessions_.size()));
  inflight_gauge_->set(inflight_in_use_);

  result.admitted = true;
  result.session = session->id;
  result.granted_workers =
      session->worker_cap.load(std::memory_order_relaxed);
  result.granted_depth = depth;
  US3D_TRACE_INSTANT("service.admit", "session", session->id, "workers",
                     result.granted_workers);
  US3D_EVENT_INFO("service.admit", session->id, -1, nullptr, "workers",
                  result.granted_workers, "depth", depth);
  return result;
}

void ImagingService::rebalance_locked() {
  // Priority-ordered deal (FIFO within a class: the map iterates in id
  // order and the sort is stable): every session is guaranteed one
  // worker — admission control never admits more sessions than workers —
  // and the surplus tops sessions up to their requested parallelism,
  // interactive first.
  std::vector<Session*> order;
  order.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) order.push_back(session.get());
  std::stable_sort(order.begin(), order.end(),
                   [](const Session* a, const Session* b) {
                     return a->options.priority < b->options.priority;
                   });
  int remaining = budget_.worker_threads - static_cast<int>(order.size());
  US3D_ENSURES(remaining >= 0);
  for (Session* session : order) {
    const int extra =
        std::min(remaining, std::max(0, session->requested_workers - 1));
    const int cap = 1 + extra;
    remaining -= extra;
    session->worker_cap.store(cap, std::memory_order_relaxed);
    session->pipeline->set_worker_cap(cap);
  }
  rebalance_counter_->increment();
  US3D_TRACE_INSTANT("service.rebalance", "sessions",
                     static_cast<std::int64_t>(order.size()));
  US3D_EVENT_DEBUG("service.rebalance", -1, -1, nullptr, "sessions",
                   static_cast<std::int64_t>(order.size()), "budget",
                   budget_.worker_threads);
}

std::shared_ptr<ImagingService::Session> ImagingService::find(
    int session) const {
  MutexLock lock(service_mutex_);
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    throw ContractViolation("imaging service: unknown session " +
                            std::to_string(session));
  }
  return it->second;
}

bool ImagingService::submit(int session, runtime::EchoFrame frame) {
  const std::shared_ptr<Session> s = find(session);
  frames_submitted_counter_->increment();
  // Single exit from the locked region: the failure post-mortem (if this
  // submit observed the failing transition) must run with no lock held.
  bool entered = false;
  {
    MutexLock lock(s->mutex);
    ++s->submitted;
    if (s->closing || s->async->failed()) {
      s->capture_error_locked();
      ++s->refused_terminal;
      US3D_EVENT_WARN("service.refuse_terminal", session, frame.sequence,
                      s->closing ? "session closing" : "session failed");
    } else {
      s->pump_locked();
      bool refused_newest = false;
      if (static_cast<int>(s->backlog.size()) >= s->effective_depth) {
        const std::shared_ptr<obs::Counter>& shed =
            shed_counters_[static_cast<std::size_t>(s->options.policy)];
        const char* policy = policy_name(s->options.policy);
        switch (s->options.policy) {
          case ShedPolicy::kRefuseNewest:
            ++s->shed_refused;
            shed->increment();
            US3D_TRACE_INSTANT("service.shed", "session", session,
                               "sequence", frame.sequence);
            US3D_EVENT_WARN("service.shed", session, frame.sequence, policy,
                            "backlog",
                            static_cast<std::int64_t>(s->backlog.size()));
            refused_newest = true;
            break;
          case ShedPolicy::kDropOldest:
            US3D_TRACE_INSTANT("service.shed", "session", session,
                               "sequence", s->backlog.front().frame.sequence);
            US3D_EVENT_WARN("service.shed", session,
                            s->backlog.front().frame.sequence, policy,
                            "backlog",
                            static_cast<std::int64_t>(s->backlog.size()));
            s->backlog.pop_front();
            ++s->shed_dropped;
            shed->increment();
            break;
          case ShedPolicy::kAdaptiveDepth:
            // Multiplicative decrease: halve this session's depth (floor
            // 1) so the laggard holds fewer shared slots, then shed the
            // now-overflowing oldest frames. pump_locked() regrows it.
            s->effective_depth = std::max(1, s->effective_depth / 2);
            s->async->set_queue_depth(s->effective_depth);
            while (static_cast<int>(s->backlog.size()) >=
                   s->effective_depth) {
              US3D_TRACE_INSTANT("service.shed", "session", session,
                                 "sequence",
                                 s->backlog.front().frame.sequence);
              US3D_EVENT_WARN("service.shed", session,
                              s->backlog.front().frame.sequence, policy,
                              "depth", s->effective_depth);
              s->backlog.pop_front();
              ++s->shed_adaptive;
              shed->increment();
            }
            break;
        }
      }
      if (!refused_newest) {
        s->backlog.push_back(
            Session::Pending{std::move(frame), Clock::now()});
        s->pump_locked();
        entered = true;
      }
    }
  }
  maybe_dump_failure(s);
  return entered;
}

int ImagingService::poll(int session, const runtime::VolumeSink& sink) {
  const std::shared_ptr<Session> s = find(session);
  int delivered = 0;
  {
    MutexLock lock(s->mutex);
    if (s->closing) return 0;
    s->pump_locked();
    const runtime::VolumeSink deliver = s->delivery_sink(sink);
    while (s->async->poll(deliver)) {
      ++delivered;
      s->pump_locked();  // a freed ring slot may admit backlog immediately
    }
    s->capture_error_locked();
  }
  maybe_dump_failure(s);
  return delivered;
}

SessionStats ImagingService::close_session(int session,
                                           const runtime::VolumeSink& sink) {
  std::shared_ptr<Session> s;
  {
    MutexLock lock(service_mutex_);
    const auto it = sessions_.find(session);
    if (it == sessions_.end()) {
      throw ContractViolation("imaging service: unknown session " +
                              std::to_string(session));
    }
    s = it->second;
  }
  SessionStats final_stats;
  {
    MutexLock lock(s->mutex);
    if (!s->finished) {
      s->closing = true;
      const runtime::VolumeSink deliver = s->delivery_sink(sink);
      // Drain the backlog *through* the pipeline: deliver one output at a
      // time to free slots, then pump again — a healthy session sheds
      // nothing at close.
      while (!s->backlog.empty() && !s->async->failed()) {
        s->pump_locked();
        if (s->backlog.empty()) break;
        if (!s->async->wait_one(deliver)) break;
      }
      s->async->close();
      s->final_pipeline = s->async->finish(deliver);
      s->capture_error_locked();
      // Whatever is still backlogged never reached the pipeline (it
      // failed or refused): shed it, visibly.
      for (; !s->backlog.empty(); s->backlog.pop_front()) ++s->shed_dropped;
      // Accepted-but-undelivered frames are the pipeline's dropped_frames;
      // they get no latency sample.
      s->in_flight.clear();
      s->finished = true;
    }
    final_stats = s->snapshot_locked();
  }
  maybe_dump_failure(s);
  US3D_EVENT_INFO("service.close", session, -1, nullptr, "delivered",
                  final_stats.delivered_frames);
  {
    MutexLock lock(service_mutex_);
    const auto it = sessions_.find(session);
    if (it != sessions_.end() && it->second == s) {
      sessions_.erase(it);
      inflight_in_use_ -= s->ring_slots;
      closed_.push_back(final_stats);
      rebalance_locked();
      closed_counter_->increment();
      open_sessions_gauge_->set(static_cast<std::int64_t>(sessions_.size()));
      inflight_gauge_->set(inflight_in_use_);
      // Unlist this session's scoped gauges; the counters above are
      // service-lifetime and stay.
      obs::MetricsRegistry::global().remove_prefix(session_scope(session) +
                                                   ".");
    }
  }
  return final_stats;
}

void ImagingService::maybe_dump_failure(const std::shared_ptr<Session>& s) {
  bool dump = false;
  int id = -1;
  {
    MutexLock lock(s->mutex);
    if (s->postmortem_pending) {
      s->postmortem_pending = false;
      dump = true;
      id = s->id;
    }
  }
  if (dump) {
    obs::FlightRecorder::global().dump("session_failure", id);
  }
}

SessionStats ImagingService::session_stats(int session) const {
  const std::shared_ptr<Session> s = find(session);
  MutexLock lock(s->mutex);
  return s->snapshot_locked();
}

bool ImagingService::session_failed(int session) const {
  const std::shared_ptr<Session> s = find(session);
  MutexLock lock(s->mutex);
  return s->failed || s->async->failed();
}

int ImagingService::granted_workers(int session) const {
  return find(session)->worker_cap.load(std::memory_order_relaxed);
}

int ImagingService::open_sessions() const {
  MutexLock lock(service_mutex_);
  return static_cast<int>(sessions_.size());
}

void ImagingService::fold(ServiceStats& out, const SessionStats& s) {
  out.submitted += s.submitted;
  out.delivered_frames += s.delivered_frames;
  out.shed_refused += s.shed_refused;
  out.shed_dropped += s.shed_dropped;
  out.shed_adaptive += s.shed_adaptive;
  out.dropped_frames += s.pipeline.dropped_frames;
  out.latency_by_class[static_cast<std::size_t>(s.priority)].merge(s.latency);
  out.sessions.push_back(s);
}

ServiceStats ImagingService::stats() const {
  // Snapshot the roster under the service lock, then RELEASE it before
  // touching any session mutex: a session mid-close holds its own mutex
  // for the whole drain, and blocking on it while holding service_mutex_
  // would stall every other session's submit path — exactly the coupling
  // the per-session locking exists to prevent. No double counting either
  // way: close_session erases from sessions_ and appends to closed_ in
  // one service-lock critical section, and we copy both together.
  ServiceStats out;
  std::vector<std::shared_ptr<Session>> open;
  {
    MutexLock lock(service_mutex_);
    out.budget_workers = budget_.worker_threads;
    out.budget_inflight = budget_.inflight_volumes;
    out.inflight_in_use = inflight_in_use_;
    out.open_sessions = static_cast<int>(sessions_.size());
    out.sessions_admitted = sessions_admitted_;
    out.sessions_refused = sessions_refused_;
    out.sessions_closed = static_cast<std::int64_t>(closed_.size());
    for (const SessionStats& closed : closed_) fold(out, closed);
    open.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) open.push_back(session);
  }
  for (const std::shared_ptr<Session>& session : open) {
    MutexLock session_lock(session->mutex);
    const SessionStats snapshot = session->snapshot_locked();
    out.workers_in_use += snapshot.granted_workers;
    fold(out, snapshot);
  }
  return out;
}

}  // namespace us3d::service
