#include "service/scenario.h"

#include <algorithm>
#include <sstream>

#include "common/contracts.h"
#include "common/json_reader.h"
#include "common/json_writer.h"
#include "delay/exact.h"
#include "delay/full_table.h"
#include "delay/tablefree.h"
#include "delay/tablesteer.h"

namespace us3d::service {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw ContractViolation("scenario: " + what);
}

const char* order_name(imaging::ScanOrder order) {
  return order == imaging::ScanOrder::kNappeByNappe ? "nappe" : "scanline";
}

std::optional<imaging::ScanOrder> parse_order(std::string_view name) {
  if (name == "nappe") return imaging::ScanOrder::kNappeByNappe;
  if (name == "scanline") return imaging::ScanOrder::kScanlineByScanline;
  return std::nullopt;
}

const char* pacing_name(runtime::IngestPacing pacing) {
  return pacing == runtime::IngestPacing::kWallClock ? "wall_clock"
                                                     : "report_only";
}

std::optional<runtime::IngestPacing> parse_pacing(std::string_view name) {
  if (name == "report_only") return runtime::IngestPacing::kReportOnly;
  if (name == "wall_clock") return runtime::IngestPacing::kWallClock;
  return std::nullopt;
}

// JSON I/O rides the shared common/ layer: JsonWriter out, parse_json in
// (both grown from this module's original flat emitter/parser, so the
// wire format and the house strictness — reject duplicates, unknowns and
// trailing text — are unchanged). The field-level type errors keep their
// names via the accessor `what` argument.

int to_int(const std::string& field, const JsonValue& v) {
  return static_cast<int>(v.as_int(field));
}

}  // namespace

const char* family_name(EngineFamily family) {
  switch (family) {
    case EngineFamily::kExact:
      return "exact";
    case EngineFamily::kTableFree:
      return "tablefree";
    case EngineFamily::kTableSteer:
      return "tablesteer";
    case EngineFamily::kFullTable:
      return "fulltable";
    case EngineFamily::kTableSteerSA:
      return "tablesteer_sa";
  }
  return "?";
}

std::optional<EngineFamily> parse_family(std::string_view name) {
  for (const EngineFamily f :
       {EngineFamily::kExact, EngineFamily::kTableFree,
        EngineFamily::kTableSteer, EngineFamily::kFullTable,
        EngineFamily::kTableSteerSA}) {
    if (name == family_name(f)) return f;
  }
  return std::nullopt;
}

void Scenario::validate() const {
  if (name.empty()) bad("name must be non-empty");
  if (probe_elements < 2) bad("probe_elements must be >= 2");
  if (n_lines < 2) bad("n_lines must be >= 2");
  if (n_depth < 2) bad("n_depth must be >= 2");
  if (table_bits != 18 && table_bits != 14 && table_bits != 13) {
    bad("table_bits must be one of 18, 14, 13");
  }
  if (sa_origins < 1) bad("sa_origins must be >= 1");
  if (sa_backoff_m < 0.0) bad("sa_backoff_m must be >= 0");
  if (compound_origins < 1) bad("compound_origins must be >= 1");
  if (worker_threads < 1) bad("worker_threads must be >= 1");
  if (queue_depth < 1) bad("queue_depth must be >= 1");
}

imaging::SystemConfig Scenario::system() const {
  return imaging::scaled_system(probe_elements, n_lines, n_depth);
}

delay::SyntheticAperturePlan Scenario::sa_plan() const {
  if (engine != EngineFamily::kTableSteerSA) {
    return delay::diverging_wave_plan(1, 0.0);
  }
  return delay::diverging_wave_plan(sa_origins, sa_backoff_m);
}

std::vector<Vec3> Scenario::origins(int frames) const {
  US3D_EXPECTS(frames >= 0);
  std::vector<Vec3> out;
  out.reserve(static_cast<std::size_t>(frames));
  if (engine != EngineFamily::kTableSteerSA) {
    out.assign(static_cast<std::size_t>(frames), Vec3{});
    return out;
  }
  const delay::SyntheticAperturePlan plan = sa_plan();
  for (int i = 0; i < frames; ++i) {
    const double z =
        plan.origin_z[static_cast<std::size_t>(i) % plan.origin_z.size()];
    out.push_back(Vec3{0.0, 0.0, z});
  }
  return out;
}

namespace {

delay::TableSteerConfig steer_config(int bits) {
  switch (bits) {
    case 18:
      return delay::TableSteerConfig::bits18();
    case 14:
      return delay::TableSteerConfig::bits14();
    default:
      return delay::TableSteerConfig::bits13();
  }
}

}  // namespace

std::unique_ptr<delay::DelayEngine> Scenario::make_engine() const {
  validate();
  const imaging::SystemConfig cfg = system();
  switch (engine) {
    case EngineFamily::kExact:
      return std::make_unique<delay::ExactDelayEngine>(cfg);
    case EngineFamily::kTableFree: {
      delay::TableFreeConfig tf;
      // Widen the sqrt domain for displaced origins if a plan ever feeds
      // this scenario off-centre frames (harmless when centred).
      tf.max_origin_backoff_m = sa_backoff_m;
      return std::make_unique<delay::TableFreeEngine>(cfg, tf);
    }
    case EngineFamily::kTableSteer:
      return std::make_unique<delay::TableSteerEngine>(
          cfg, steer_config(table_bits));
    case EngineFamily::kFullTable:
      return std::make_unique<delay::FullTableEngine>(cfg);
    case EngineFamily::kTableSteerSA:
      return std::make_unique<delay::SyntheticApertureSteerEngine>(
          cfg, sa_plan(), steer_config(table_bits));
  }
  bad("unknown engine family");
}

runtime::PipelineConfig Scenario::pipeline_config() const {
  runtime::PipelineConfig pc;
  pc.worker_threads = worker_threads;
  pc.order = order;
  pc.simd = simd;
  pc.precision = precision;
  pc.queue_depth = queue_depth;
  pc.compound_origins = compound_origins;
  return pc;
}

std::string Scenario::to_json() const {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object()
      .kv("name", name)
      .kv("probe_elements", probe_elements)
      .kv("n_lines", n_lines)
      .kv("n_depth", n_depth)
      .kv("order", order_name(order))
      .kv("engine", family_name(engine))
      .kv("table_bits", table_bits)
      .kv("sa_origins", sa_origins)
      .kv("sa_backoff_m", sa_backoff_m)
      .kv("compound_origins", compound_origins)
      .kv("simd", simd::backend_name(simd))
      .kv("precision", simd::precision_name(precision))
      .kv("pacing", pacing_name(pacing))
      .kv("worker_threads", worker_threads)
      .kv("queue_depth", queue_depth)
      .end_object();
  return os.str();
}

Scenario Scenario::from_json(std::string_view json) {
  const JsonValue doc = parse_json(json);
  if (!doc.is_object()) bad("descriptor must be a JSON object");
  Scenario s;
  bool named = false;
  for (const auto& [key, value] : doc.members()) {
    if (key == "name") {
      s.name = value.as_string(key);
      named = true;
    } else if (key == "probe_elements") {
      s.probe_elements = to_int(key, value);
    } else if (key == "n_lines") {
      s.n_lines = to_int(key, value);
    } else if (key == "n_depth") {
      s.n_depth = to_int(key, value);
    } else if (key == "order") {
      const auto order = parse_order(value.as_string(key));
      if (!order) bad("unknown scan order '" + value.text() + "'");
      s.order = *order;
    } else if (key == "engine") {
      const auto family = parse_family(value.as_string(key));
      if (!family) bad("unknown engine family '" + value.text() + "'");
      s.engine = *family;
    } else if (key == "table_bits") {
      s.table_bits = to_int(key, value);
    } else if (key == "sa_origins") {
      s.sa_origins = to_int(key, value);
    } else if (key == "sa_backoff_m") {
      s.sa_backoff_m = value.as_double(key);
    } else if (key == "compound_origins") {
      s.compound_origins = to_int(key, value);
    } else if (key == "simd") {
      const auto backend = simd::parse_backend(value.as_string(key));
      if (!backend) bad("unknown simd backend '" + value.text() + "'");
      s.simd = *backend;
    } else if (key == "precision") {
      const auto precision = simd::parse_precision(value.as_string(key));
      if (!precision) bad("unknown precision '" + value.text() + "'");
      s.precision = *precision;
    } else if (key == "pacing") {
      const auto pacing = parse_pacing(value.as_string(key));
      if (!pacing) bad("unknown ingest pacing '" + value.text() + "'");
      s.pacing = *pacing;
    } else if (key == "worker_threads") {
      s.worker_threads = to_int(key, value);
    } else if (key == "queue_depth") {
      s.queue_depth = to_int(key, value);
    } else {
      bad("unknown field '" + key + "'");
    }
  }
  if (!named) bad("missing required field 'name'");
  s.validate();
  return s;
}

void ScenarioCatalog::add(Scenario scenario) {
  scenario.validate();
  const auto it =
      std::find_if(scenarios_.begin(), scenarios_.end(),
                   [&](const Scenario& s) { return s.name == scenario.name; });
  if (it != scenarios_.end()) {
    *it = std::move(scenario);
  } else {
    scenarios_.push_back(std::move(scenario));
  }
}

const Scenario* ScenarioCatalog::find(std::string_view name) const {
  for (const Scenario& s : scenarios_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<std::string> ScenarioCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const Scenario& s : scenarios_) out.push_back(s.name);
  return out;
}

std::string ScenarioCatalog::to_json() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < scenarios_.size(); ++i) {
    if (i) os << ',';
    os << scenarios_[i].to_json();
  }
  os << ']';
  return os.str();
}

ScenarioCatalog ScenarioCatalog::builtin() {
  ScenarioCatalog catalog;
  // One scenario per engine family, sized so a whole-catalog sweep stays
  // test-fast; names follow the clinical workload they stand in for.
  catalog.add(Scenario{.name = "exact-reference",
                       .engine = EngineFamily::kExact,
                       .worker_threads = 1,
                       .queue_depth = 1});
  catalog.add(Scenario{.name = "tablefree-interactive",
                       .engine = EngineFamily::kTableFree,
                       .worker_threads = 2,
                       .queue_depth = 2});
  catalog.add(Scenario{.name = "tablesteer-cardiac-18b",
                       .engine = EngineFamily::kTableSteer,
                       .table_bits = 18,
                       .worker_threads = 2,
                       .queue_depth = 2});
  catalog.add(Scenario{.name = "tablesteer-lowpower-14b",
                       .probe_elements = 6,
                       .n_lines = 10,
                       .n_depth = 40,
                       .engine = EngineFamily::kTableSteer,
                       .table_bits = 14,
                       .worker_threads = 1,
                       .queue_depth = 1});
  catalog.add(Scenario{.name = "fulltable-smallfield",
                       .probe_elements = 6,
                       .n_lines = 10,
                       .n_depth = 32,
                       .engine = EngineFamily::kFullTable,
                       .worker_threads = 1,
                       .queue_depth = 2});
  catalog.add(Scenario{.name = "sa-compound-volumetric",
                       .engine = EngineFamily::kTableSteerSA,
                       .sa_origins = 4,
                       .compound_origins = 4,
                       .worker_threads = 2,
                       .queue_depth = 2});
  catalog.add(Scenario{.name = "tablefree-paced-freehand",
                       .order = imaging::ScanOrder::kScanlineByScanline,
                       .engine = EngineFamily::kTableFree,
                       .pacing = runtime::IngestPacing::kWallClock,
                       .worker_threads = 2,
                       .queue_depth = 3});
  // Fixed-point variants: one per table-backed engine family, running the
  // int16 end-to-end quantized sweep (the paper's integer-hardware
  // operating point). Error bounds for these are pinned by the quantized
  // pipeline property tests.
  catalog.add(Scenario{.name = "tablesteer-quantized-18b",
                       .engine = EngineFamily::kTableSteer,
                       .table_bits = 18,
                       .precision = simd::Precision::kQuantized,
                       .worker_threads = 2,
                       .queue_depth = 2});
  catalog.add(Scenario{.name = "fulltable-quantized-smallfield",
                       .probe_elements = 6,
                       .n_lines = 10,
                       .n_depth = 32,
                       .engine = EngineFamily::kFullTable,
                       .precision = simd::Precision::kQuantized,
                       .worker_threads = 1,
                       .queue_depth = 2});
  catalog.add(Scenario{.name = "sa-compound-quantized",
                       .engine = EngineFamily::kTableSteerSA,
                       .sa_origins = 4,
                       .compound_origins = 4,
                       .precision = simd::Precision::kQuantized,
                       .worker_threads = 2,
                       .queue_depth = 2});
  return catalog;
}

}  // namespace us3d::service
