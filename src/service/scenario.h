// Declarative imaging scenarios — the enumerable surface behind "handles
// as many scenarios as you can imagine". A Scenario names one complete
// workload: probe preset x volume/scan geometry x delay-engine family x
// synthetic-aperture compounding x SIMD backend x ingest pacing x runtime
// shape (workers, queue depth). The imaging service admits sessions by
// Scenario, benches sweep them, and the JSON round-trip makes the catalog
// a wire format: a client can POST the same descriptor the tests pin.
//
// Scenarios are *descriptions*, not live objects: system() / make_engine()
// / pipeline_config() materialize the pieces the runtime needs. The
// built-in catalog spans every delay-engine family the paper discusses, so
// "all five engines" is a loop over ScenarioCatalog::builtin(), not a
// hand-maintained list in each test.
#ifndef US3D_SERVICE_SCENARIO_H
#define US3D_SERVICE_SCENARIO_H

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "delay/engine.h"
#include "delay/synthetic_aperture.h"
#include "imaging/scan_order.h"
#include "imaging/system_config.h"
#include "runtime/frame_pipeline.h"
#include "runtime/frame_source.h"
#include "simd/dispatch.h"

namespace us3d::service {

/// The five delay-generation families of the reproduction (Sec. III-V).
enum class EngineFamily {
  kExact,         ///< double-precision reference (no hardware model)
  kTableFree,     ///< on-the-fly PWL sqrt per element (Sec. IV)
  kTableSteer,    ///< reference table + steering plane (Sec. V)
  kFullTable,     ///< one precomputed table entry per (point, element)
  kTableSteerSA,  ///< TABLESTEER with per-insonification origins
};

/// Lower-case stable name ("exact", "tablefree", "tablesteer",
/// "fulltable", "tablesteer_sa").
const char* family_name(EngineFamily family);
/// Inverse of family_name(); nullopt for anything unrecognised.
std::optional<EngineFamily> parse_family(std::string_view name);

struct Scenario {
  /// Catalog key; also the JSON "name". Must be non-empty.
  std::string name;

  // --- geometry ------------------------------------------------------
  /// Probe elements per side (probe::small_probe); the volume scales with
  /// the line count exactly like imaging::scaled_system.
  int probe_elements = 8;
  int n_lines = 12;  ///< theta = phi lines of sight
  int n_depth = 48;  ///< focal points per line
  imaging::ScanOrder order = imaging::ScanOrder::kNappeByNappe;

  // --- delay engine --------------------------------------------------
  EngineFamily engine = EngineFamily::kTableFree;
  /// TABLESTEER entry width (18, 14 or 13); ignored by other families.
  int table_bits = 18;
  /// Synthetic-aperture plan (kTableSteerSA only): origin count and how
  /// far behind the probe the deepest virtual source sits.
  int sa_origins = 4;
  double sa_backoff_m = 4.0e-3;

  // --- runtime shape -------------------------------------------------
  /// Compounding factor K: coherently sum K successive insonifications
  /// per delivered volume (1 disables).
  int compound_origins = 1;
  simd::DasBackend simd = simd::DasBackend::kAuto;
  /// Arithmetic precision of the beamform hot path: "double" runs the
  /// exact IEEE reference, "quantized" the int16 end-to-end fixed-point
  /// sweep, "auto" defers to US3D_PRECISION (then double). Reported per
  /// session in SessionStats::precision.
  simd::Precision precision = simd::Precision::kAuto;
  /// How a front-end feeding this scenario paces frame delivery
  /// (runtime::StreamedFrameSource); the service itself never sleeps.
  runtime::IngestPacing pacing = runtime::IngestPacing::kReportOnly;
  /// Requested sweep parallelism; the service grants at most this many
  /// workers from its shared budget.
  int worker_threads = 2;
  /// Requested in-flight volumes; the service grants at most this many
  /// ring slots from its shared budget.
  int queue_depth = 2;

  bool operator==(const Scenario&) const = default;

  /// Throws ContractViolation naming the offending field.
  void validate() const;

  /// The scaled SystemConfig this scenario images.
  imaging::SystemConfig system() const;
  /// A configured prototype engine (clone()d per worker by the pipeline).
  std::unique_ptr<delay::DelayEngine> make_engine() const;
  /// The PipelineConfig a dedicated pipeline for this scenario would use
  /// (the service overrides workers/depth with its granted shares).
  runtime::PipelineConfig pipeline_config() const;
  /// The shot plan for kTableSteerSA scenarios (origin_count 1 otherwise).
  delay::SyntheticAperturePlan sa_plan() const;
  /// Transmit origins for a stream of `frames` insonifications: cycles the
  /// SA plan for kTableSteerSA, the centred origin for everything else.
  std::vector<Vec3> origins(int frames) const;

  /// Single JSON object, one key per field (no trailing newline).
  std::string to_json() const;
  /// Inverse of to_json(): tolerant of whitespace and key order, strict
  /// about unknown enum values and malformed fields (throws
  /// ContractViolation). Missing fields keep their defaults; "name" is
  /// required. The result is validate()d.
  static Scenario from_json(std::string_view json);
};

/// A named, ordered set of scenarios.
class ScenarioCatalog {
 public:
  /// Adds (or replaces, by name) a validated scenario.
  void add(Scenario scenario);

  const Scenario* find(std::string_view name) const;
  const std::vector<Scenario>& scenarios() const { return scenarios_; }
  std::vector<std::string> names() const;
  std::size_t size() const { return scenarios_.size(); }

  /// JSON array of every scenario, in catalog order.
  std::string to_json() const;

  /// The built-in catalog: at least one scenario per delay-engine family
  /// (all five), plus variants exercising compounding, per-voxel-scale
  /// geometry, wall-clock pacing and reduced table widths.
  static ScenarioCatalog builtin();

 private:
  std::vector<Scenario> scenarios_;
};

}  // namespace us3d::service

#endif  // US3D_SERVICE_SCENARIO_H
