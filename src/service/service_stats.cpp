#include "service/service_stats.h"

#include <sstream>

#include "common/table_io.h"

namespace us3d::service {

namespace {

void quantiles_json(std::ostringstream& os, const SampleQuantiles& q) {
  os << "{\"count\":" << q.count() << ",\"p50_ms\":" << q.p50() * 1e3
     << ",\"p90_ms\":" << q.p90() * 1e3 << ",\"p99_ms\":" << q.p99() * 1e3
     << '}';
}

}  // namespace

const char* priority_name(PriorityClass priority) {
  switch (priority) {
    case PriorityClass::kInteractive:
      return "interactive";
    case PriorityClass::kRoutine:
      return "routine";
    case PriorityClass::kBulk:
      return "bulk";
  }
  return "?";
}

std::optional<PriorityClass> parse_priority(std::string_view name) {
  for (const PriorityClass p :
       {PriorityClass::kInteractive, PriorityClass::kRoutine,
        PriorityClass::kBulk}) {
    if (name == priority_name(p)) return p;
  }
  return std::nullopt;
}

const char* policy_name(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kRefuseNewest:
      return "refuse_newest";
    case ShedPolicy::kDropOldest:
      return "drop_oldest";
    case ShedPolicy::kAdaptiveDepth:
      return "adaptive_depth";
  }
  return "?";
}

std::optional<ShedPolicy> parse_policy(std::string_view name) {
  for (const ShedPolicy p :
       {ShedPolicy::kRefuseNewest, ShedPolicy::kDropOldest,
        ShedPolicy::kAdaptiveDepth}) {
    if (name == policy_name(p)) return p;
  }
  return std::nullopt;
}

std::string SessionStats::to_json() const {
  std::ostringstream os;
  os << "{\"id\":" << id << ",\"scenario\":\"" << json_escape(scenario) << '"'
     << ",\"priority\":\"" << priority_name(priority) << '"'
     << ",\"policy\":\"" << policy_name(policy) << '"'
     << ",\"granted_workers\":" << granted_workers
     << ",\"granted_depth\":" << granted_depth
     << ",\"effective_depth\":" << effective_depth
     << ",\"submitted\":" << submitted << ",\"accepted\":" << accepted
     << ",\"shed_refused\":" << shed_refused
     << ",\"shed_dropped\":" << shed_dropped
     << ",\"shed_adaptive\":" << shed_adaptive
     << ",\"refused_terminal\":" << refused_terminal
     << ",\"delivered_frames\":" << delivered_frames
     << ",\"delivered_insonifications\":" << delivered_insonifications
     << ",\"failed\":" << (failed ? "true" : "false") << ",\"error\":\""
     << json_escape(error) << '"' << ",\"latency\":";
  quantiles_json(os, latency);
  os << ",\"pipeline\":" << pipeline.to_json() << '}';
  return os.str();
}

std::string ServiceStats::to_json() const {
  std::ostringstream os;
  os << "{\"budget\":{\"worker_threads\":" << budget_workers
     << ",\"inflight_volumes\":" << budget_inflight << '}'
     << ",\"workers_in_use\":" << workers_in_use
     << ",\"inflight_in_use\":" << inflight_in_use
     << ",\"open_sessions\":" << open_sessions
     << ",\"sessions_admitted\":" << sessions_admitted
     << ",\"sessions_refused\":" << sessions_refused
     << ",\"sessions_closed\":" << sessions_closed
     << ",\"submitted\":" << submitted
     << ",\"delivered_frames\":" << delivered_frames
     << ",\"shed_refused\":" << shed_refused
     << ",\"shed_dropped\":" << shed_dropped
     << ",\"shed_adaptive\":" << shed_adaptive
     << ",\"shed_total\":" << shed_total()
     << ",\"dropped_frames\":" << dropped_frames << ",\"latency_by_class\":{";
  for (int p = 0; p < kPriorityClasses; ++p) {
    if (p) os << ',';
    os << '"' << priority_name(static_cast<PriorityClass>(p)) << "\":";
    quantiles_json(os, latency_by_class[static_cast<std::size_t>(p)]);
  }
  os << "},\"sessions\":[";
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    if (i) os << ',';
    os << sessions[i].to_json();
  }
  os << "]}";
  return os.str();
}

}  // namespace us3d::service
