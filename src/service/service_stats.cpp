#include "service/service_stats.h"

#include <sstream>

#include "common/json_writer.h"

namespace us3d::service {

namespace {

void quantiles_json(JsonWriter& w, const SampleQuantiles& q) {
  w.begin_object()
      .kv("count", q.count())
      .kv("p50_ms", q.p50() * 1e3)
      .kv("p90_ms", q.p90() * 1e3)
      .kv("p99_ms", q.p99() * 1e3)
      .end_object();
}

}  // namespace

const char* priority_name(PriorityClass priority) {
  switch (priority) {
    case PriorityClass::kInteractive:
      return "interactive";
    case PriorityClass::kRoutine:
      return "routine";
    case PriorityClass::kBulk:
      return "bulk";
  }
  return "?";
}

std::optional<PriorityClass> parse_priority(std::string_view name) {
  for (const PriorityClass p :
       {PriorityClass::kInteractive, PriorityClass::kRoutine,
        PriorityClass::kBulk}) {
    if (name == priority_name(p)) return p;
  }
  return std::nullopt;
}

const char* policy_name(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kRefuseNewest:
      return "refuse_newest";
    case ShedPolicy::kDropOldest:
      return "drop_oldest";
    case ShedPolicy::kAdaptiveDepth:
      return "adaptive_depth";
  }
  return "?";
}

std::optional<ShedPolicy> parse_policy(std::string_view name) {
  for (const ShedPolicy p :
       {ShedPolicy::kRefuseNewest, ShedPolicy::kDropOldest,
        ShedPolicy::kAdaptiveDepth}) {
    if (name == policy_name(p)) return p;
  }
  return std::nullopt;
}

std::string SessionStats::to_json() const {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object()
      .kv("id", id)
      .kv("scenario", scenario)
      .kv("precision", precision)
      .kv("priority", priority_name(priority))
      .kv("policy", policy_name(policy))
      .kv("granted_workers", granted_workers)
      .kv("granted_depth", granted_depth)
      .kv("effective_depth", effective_depth)
      .kv("submitted", submitted)
      .kv("accepted", accepted)
      .kv("shed_refused", shed_refused)
      .kv("shed_dropped", shed_dropped)
      .kv("shed_adaptive", shed_adaptive)
      .kv("refused_terminal", refused_terminal)
      .kv("delivered_frames", delivered_frames)
      .kv("delivered_insonifications", delivered_insonifications)
      .kv("failed", failed)
      .kv("error", error)
      .key("latency");
  quantiles_json(w, latency);
  w.kv_raw("pipeline", pipeline.to_json()).end_object();
  return os.str();
}

std::string ServiceStats::to_json() const {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object()
      .key("budget")
      .begin_object()
      .kv("worker_threads", budget_workers)
      .kv("inflight_volumes", budget_inflight)
      .end_object()
      .kv("workers_in_use", workers_in_use)
      .kv("inflight_in_use", inflight_in_use)
      .kv("open_sessions", open_sessions)
      .kv("sessions_admitted", sessions_admitted)
      .kv("sessions_refused", sessions_refused)
      .kv("sessions_closed", sessions_closed)
      .kv("submitted", submitted)
      .kv("delivered_frames", delivered_frames)
      .kv("shed_refused", shed_refused)
      .kv("shed_dropped", shed_dropped)
      .kv("shed_adaptive", shed_adaptive)
      .kv("shed_total", shed_total())
      .kv("dropped_frames", dropped_frames)
      .key("latency_by_class")
      .begin_object();
  for (int p = 0; p < kPriorityClasses; ++p) {
    w.key(priority_name(static_cast<PriorityClass>(p)));
    quantiles_json(w, latency_by_class[static_cast<std::size_t>(p)]);
  }
  w.end_object().key("sessions").begin_array();
  for (const SessionStats& session : sessions) {
    w.value_raw(session.to_json());
  }
  w.end_array().end_object();
  return os.str();
}

}  // namespace us3d::service
