// Observability for the multi-session imaging service: per-session and
// service-wide aggregation over runtime::PipelineStats, plus the QoS
// vocabulary (priority classes, shedding policies) those numbers are
// keyed by. The JSON emitters feed BENCH_service.json and operator
// dashboards, so — like PipelineStats — keys only grow, never get
// renamed.
//
// The accounting contract every policy must reconcile to (and the tests
// pin):
//
//   submitted == accepted + shed_refused + shed_dropped + shed_adaptive
//                + refused_terminal
//   accepted  == pipeline.insonifications   (once the session is closed)
//   pipeline.insonifications == delivered_insonifications
//                               + pipeline.dropped_frames
//
// i.e. every frame a client ever handed the service is exactly one of:
// delivered, shed by policy, dropped by a failure, or refused because the
// session was already terminal. Nothing is silently lost.
#ifndef US3D_SERVICE_SERVICE_STATS_H
#define US3D_SERVICE_SERVICE_STATS_H

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.h"
#include "runtime/pipeline_stats.h"

namespace us3d::service {

/// QoS class of a session. Ordering is meaningful: lower enum value =
/// higher priority when the shared worker budget is re-divided.
enum class PriorityClass {
  kInteractive,  ///< live scanning: gets spare workers first
  kRoutine,      ///< scheduled exams
  kBulk,         ///< reprocessing / research sweeps: takes what is left
};
inline constexpr int kPriorityClasses = 3;

const char* priority_name(PriorityClass priority);
std::optional<PriorityClass> parse_priority(std::string_view name);

/// What happens when a session's bounded backlog is full at submit().
enum class ShedPolicy {
  /// Refuse the incoming frame (the client sees false and keeps going).
  kRefuseNewest,
  /// Drop the oldest backlogged frame to make room — freshest data wins.
  kDropOldest,
  /// Shrink this session's queue depth (backlog bound and in-flight ring
  /// cap) and shed the overflow, so a lagging session holds less of the
  /// shared budget instead of stalling its neighbours; the depth regrows
  /// one step per fully drained backlog. Closes the ROADMAP item.
  kAdaptiveDepth,
};

const char* policy_name(ShedPolicy policy);
std::optional<ShedPolicy> parse_policy(std::string_view name);

/// One session's ledger. Valid mid-flight (snapshot) and after close
/// (final; `pipeline` then includes the whole streaming session).
struct SessionStats {
  int id = -1;
  std::string scenario;
  /// Resolved arithmetic precision of this session's pipeline ("double" /
  /// "quantized" — mirrors pipeline.precision for direct dashboard use).
  std::string precision;
  PriorityClass priority = PriorityClass::kRoutine;
  ShedPolicy policy = ShedPolicy::kRefuseNewest;

  // Budget shares.
  int granted_workers = 0;  ///< current worker cap from the shared budget
  int granted_depth = 0;    ///< admitted queue depth (ring allocation)
  int effective_depth = 0;  ///< current adaptive depth (== granted unless
                            ///< kAdaptiveDepth shrank it)

  // The frame ledger (see the accounting contract above).
  std::int64_t submitted = 0;
  std::int64_t accepted = 0;
  std::int64_t shed_refused = 0;
  std::int64_t shed_dropped = 0;
  std::int64_t shed_adaptive = 0;
  std::int64_t refused_terminal = 0;  ///< after failure/close
  std::int64_t delivered_frames = 0;  ///< volumes the sink received
  std::int64_t delivered_insonifications = 0;

  bool failed = false;
  std::string error;  ///< first failure, empty when healthy

  runtime::PipelineStats pipeline;
  /// Submit-to-delivery latency samples, seconds.
  SampleQuantiles latency;

  std::int64_t shed_total() const {
    return shed_refused + shed_dropped + shed_adaptive;
  }
  /// The reconciliation invariant (see header comment). Only exact once
  /// the session is closed; mid-flight snapshots may have frames still in
  /// the pipeline.
  bool reconciles() const {
    return submitted ==
               accepted + shed_total() + refused_terminal &&
           accepted == pipeline.insonifications &&
           pipeline.insonifications ==
               delivered_insonifications + pipeline.dropped_frames;
  }

  /// The mid-flight form of the invariant, which every snapshot —
  /// including one scraped in the middle of a delivery burst — must
  /// satisfy: nothing is counted twice, so the ledger outcomes can never
  /// exceed what was submitted, and delivery never exceeds what the
  /// pipeline accepted. Closed sessions satisfy the exact reconciles().
  /// The service takes each session's snapshot under one lock (pipeline
  /// counters via AsyncPipeline::stats_snapshot inside it), which is what
  /// makes this hold at every instant rather than merely at quiescence.
  bool ledger_bounded() const {
    return accepted + shed_total() + refused_terminal <= submitted &&
           delivered_insonifications + pipeline.dropped_frames +
                   shed_total() + refused_terminal <=
               submitted &&
           delivered_insonifications + pipeline.dropped_frames <=
               pipeline.insonifications &&
           pipeline.insonifications <= accepted;
  }

  std::string to_json() const;
};

/// Whole-box view: totals across open and closed sessions plus the
/// per-priority-class latency distributions.
struct ServiceStats {
  // Budget occupancy.
  int budget_workers = 0;
  int budget_inflight = 0;
  int workers_in_use = 0;
  int inflight_in_use = 0;
  int open_sessions = 0;

  // Admission ledger.
  std::int64_t sessions_admitted = 0;
  std::int64_t sessions_refused = 0;
  std::int64_t sessions_closed = 0;

  // Frame totals (sum over `sessions`).
  std::int64_t submitted = 0;
  std::int64_t delivered_frames = 0;
  std::int64_t shed_refused = 0;
  std::int64_t shed_dropped = 0;
  std::int64_t shed_adaptive = 0;
  std::int64_t dropped_frames = 0;

  /// Submit-to-delivery latency per priority class, aggregated over every
  /// session of that class (open and closed).
  std::array<SampleQuantiles, kPriorityClasses> latency_by_class;

  /// Every session the service has seen: open ones as live snapshots,
  /// closed ones as their final ledgers.
  std::vector<SessionStats> sessions;

  std::int64_t shed_total() const {
    return shed_refused + shed_dropped + shed_adaptive;
  }

  /// Scrape-safety invariant over the whole box: the totals are bounded
  /// by submission and every per-session ledger is bounded too (see
  /// SessionStats::ledger_bounded). Holds for any stats() call at any
  /// instant, not just after quiescence.
  bool ledger_bounded() const {
    if (delivered_frames + shed_total() + dropped_frames > submitted) {
      return false;
    }
    for (const SessionStats& s : sessions) {
      if (!s.ledger_bounded()) return false;
    }
    return true;
  }

  std::string to_json() const;
};

}  // namespace us3d::service

#endif  // US3D_SERVICE_SERVICE_STATS_H
