// Fixed-point side of the quantized int16 DAS pipeline: the formats every
// layer agrees on, the declared accuracy bounds the property tests pin,
// and the int16 echo container the integer row kernels (simd/dispatch.h,
// DasRowQFn) sweep.
//
// Quantization scheme, end to end:
//  - echo samples: per-buffer peak scaling onto sQ0.15 — the largest
//    magnitude in the buffer maps to raw 32767, so lsb() = peak / 32767
//    and the full int16 dynamic range is spent on the actual signal.
//    Rounding is to-nearest, ties away from zero (what an add-half-LSB
//    rounder does), saturating at +/-32767.
//  - apodization weights: uQ1.14 words (kQuantWeightFormat; 1.0 -> 16384
//    exactly), quantized half-up/saturating through the fx datapath model.
//  - delay indices: preserved exactly when in-window (delay/
//    quantized_plane.h), sentinel `samples` otherwise (reads the zeroed
//    row padding) — zero added delay error, and compare-free kernels.
// A quantized voxel is reconstructed as double(acc) * lsb(), optionally
// normalized by the *quantized* total weight so the integer path is
// self-consistent rather than borrowing double-path constants.
#ifndef US3D_BEAMFORM_QUANTIZED_H
#define US3D_BEAMFORM_QUANTIZED_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned.h"
#include "common/fixed_point.h"
#include "simd/dispatch.h"

namespace us3d::beamform {

class EchoBuffer;

/// uQ1.14: the apodization-weight word of the integer row contract.
/// Unsigned — apodization windows are non-negative — with one integer bit
/// so a unit weight is exact.
inline constexpr fx::Format kQuantWeightFormat{1, simd::kQuantWeightFracBits,
                                               false};

/// sQ0.15: the echo-sample word. The binary point is nominal — the real
/// scale is per-buffer (QuantizedEchoBuffer::lsb()) — but the width and
/// saturation behaviour are this format's.
inline constexpr fx::Format kQuantEchoFormat{0, 15, true};

/// Declared accuracy bounds of the quantized path, pinned by the property
/// tests (tests/beamform/test_quantized_pipeline.cpp) and reported by the
/// block-kernel bench. Index quantization itself is exact; the delay-error
/// budget is the engine-side table rounding the error harness measures.
inline constexpr double kQuantMaxDelayErrorSamples = 0.5;
/// Minimum PSNR (dB, against the exact double volume) a quantized
/// reconstruction must reach on the harness phantoms.
inline constexpr double kQuantMinPsnrDb = 60.0;

/// Quantizes one apodization weight into its uQ1.14 kernel word
/// (half-up, saturating). The result is in [0, 2^15) as the integer row
/// contract requires.
std::int32_t quantize_weight(double weight);

/// Int16 mirror of EchoBuffer: one peak-scaled sQ0.15 row per element,
/// rows padded to a 64-byte pitch with at least two zeroed trailing
/// entries — entry `samples` is the out-of-window sentinel the sanitized
/// delay planes address, entry samples+1 absorbs the 32-bit gather
/// overread of the AVX2/AVX-512 integer kernels. Scratch semantics like
/// the delay planes:
/// capacity grows monotonically, steady-state frames re-quantize in place.
class QuantizedEchoBuffer {
 public:
  QuantizedEchoBuffer() = default;

  /// Re-quantizes from `echoes` (grow-only reshape). Requires
  /// samples_per_element() <= simd::kQuantMaxSamples — longer windows are
  /// unaddressable by int16 delay indices.
  void quantize_from(const EchoBuffer& echoes);

  int element_count() const { return elements_; }
  std::int64_t samples_per_element() const { return samples_; }
  /// Padded row pitch in entries (a multiple of 32 int16 = 64 bytes,
  /// always >= samples_per_element() + 2).
  std::size_t row_stride() const { return stride_; }

  /// Real value of one raw LSB: peak / 32767, or 0 for an all-zero buffer
  /// (every raw word is then 0 too, so reconstruction stays exact).
  double lsb() const { return lsb_; }

  /// One element's quantized samples, densely packed (size = samples).
  std::span<const std::int16_t> row(int element) const {
    return {data_.data() + static_cast<std::size_t>(element) * stride_,
            static_cast<std::size_t>(samples_)};
  }

 private:
  int elements_ = 0;
  std::int64_t samples_ = 0;
  std::size_t stride_ = 0;
  double lsb_ = 0.0;
  std::vector<std::int16_t, AlignedAllocator<std::int16_t, 64>> data_;
};

}  // namespace us3d::beamform

#endif  // US3D_BEAMFORM_QUANTIZED_H
