#include "beamform/quantized.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "beamform/echo_buffer.h"
#include "common/contracts.h"

namespace us3d::beamform {

std::int32_t quantize_weight(double weight) {
  US3D_EXPECTS(weight >= 0.0);
  return static_cast<std::int32_t>(
      fx::Value::from_real(weight, kQuantWeightFormat).raw());
}

void QuantizedEchoBuffer::quantize_from(const EchoBuffer& echoes) {
  elements_ = echoes.element_count();
  samples_ = echoes.samples_per_element();
  US3D_EXPECTS(samples_ <= simd::kQuantMaxSamples);
  // 32 int16 entries = one 64-byte cache line per pitch step; the +2
  // guarantees two zeroed entries past the last sample even when the row
  // already sits on the pitch — entry `samples` is the out-of-window
  // sentinel the sanitized delay planes address, and entry samples+1
  // covers the 32-bit gathers' overread of the entry after the target.
  constexpr std::size_t kLine = 32;
  const std::size_t row_entries = static_cast<std::size_t>(samples_) + 2;
  stride_ = (row_entries + kLine - 1) / kLine * kLine;
  const std::size_t needed = static_cast<std::size_t>(elements_) * stride_;
  if (needed > data_.size()) data_.resize(needed);

  double peak = 0.0;
  for (int e = 0; e < elements_; ++e) {
    for (const float v : echoes.row(e)) {
      peak = std::max(peak, std::abs(static_cast<double>(v)));
    }
  }
  lsb_ = peak > 0.0 ? peak / 32767.0 : 0.0;
  const double scale = peak > 0.0 ? 32767.0 / peak : 0.0;

  const std::int64_t max_raw = kQuantEchoFormat.max_raw();  // 32767
  for (int e = 0; e < elements_; ++e) {
    const std::span<const float> src = echoes.row(e);
    std::int16_t* dst = data_.data() + static_cast<std::size_t>(e) * stride_;
    for (std::int64_t s = 0; s < samples_; ++s) {
      const long r = std::lround(static_cast<double>(src[static_cast<
          std::size_t>(s)]) * scale);
      const long clamped = std::clamp<long>(r, -max_raw, max_raw);
      dst[s] = static_cast<std::int16_t>(clamped);
    }
    // Deterministic (and gather-safe) padding regardless of what a prior,
    // longer frame left behind.
    std::memset(dst + samples_, 0,
                (stride_ - static_cast<std::size_t>(samples_)) *
                    sizeof(std::int16_t));
  }
}

}  // namespace us3d::beamform
