// Receive delay-and-sum beamformer (Eq. 1): for every focal point S, sum
// the apodized echo samples selected by the delay engine across elements.
// The engine is a plug-in, so the same beamformer runs with EXACT,
// TABLEFREE, TABLESTEER or FULLTABLE delays — image quality then directly
// reflects delay accuracy, as Sec. II-A argues.
//
// The hot path is block-based: reconstruct_span decomposes its range into
// smooth-order FocalBlocks, asks the engine for a DelayPlane per block
// (one virtual call per run instead of per voxel) and feeds it to the
// DasKernel. The per-voxel path is kept selectable via
// BeamformOptions::path for A/B benchmarking; both produce bit-identical
// volumes. All mutable sweep state lives in a caller-owned BeamformScratch
// so workers reuse one scratch per thread and frames allocate nothing.
#ifndef US3D_BEAMFORM_BEAMFORMER_H
#define US3D_BEAMFORM_BEAMFORMER_H

#include <cstdint>
#include <vector>

#include "beamform/das_kernel.h"
#include "beamform/echo_buffer.h"
#include "beamform/volume_image.h"
#include "common/latency.h"
#include "delay/delay_plane.h"
#include "delay/engine.h"
#include "imaging/scan_order.h"
#include "imaging/system_config.h"
#include "probe/apodization.h"

namespace us3d::beamform {

/// Which reconstruction inner loop to run. kBlock is the production path;
/// kPerVoxel is the legacy one-compute()-per-focal-point loop, kept for
/// benchmarking the dispatch overhead it pays (bench_a11).
enum class ReconstructPath {
  kBlock,
  kPerVoxel,
};

struct BeamformOptions {
  imaging::ScanOrder order = imaging::ScanOrder::kNappeByNappe;
  /// Normalize each voxel by the total apodization weight.
  bool normalize = true;
  /// Transmit origin for this frame, forwarded to the delay engine's
  /// begin_frame(). Synthetic-aperture shots pass their virtual source.
  Vec3 origin{};
  ReconstructPath path = ReconstructPath::kBlock;
  /// Max focal points per block; 0 picks a size that keeps the DelayPlane
  /// around 256 KiB (see Beamformer::auto_block_points).
  int block_points = 0;
  /// SIMD backend for the DAS row kernel (block path only). kAuto resolves
  /// via the US3D_SIMD env var, then the best backend the CPU supports;
  /// forcing an unavailable backend throws (simd/dispatch.h). All backends
  /// produce bit-identical volumes.
  simd::DasBackend simd = simd::DasBackend::kAuto;
  /// Arithmetic precision of the sweep. kAuto resolves via US3D_PRECISION
  /// then defaults to kDouble (the exact reference). kQuantized runs the
  /// int16 end-to-end fixed-point path (beamform/quantized.h) — block path
  /// only; combining it with ReconstructPath::kPerVoxel is a precondition
  /// violation.
  simd::Precision precision = simd::Precision::kAuto;
};

/// Reusable sweep state: the DelayPlane the engine fills, the partial-sum
/// array the kernel accumulates into, the block point storage, and the
/// per-point delay row for the per-voxel path. Everything grows once to
/// the high-water mark and is then reused — one scratch per worker thread
/// makes whole frames allocation-free.
struct BeamformScratch {
  delay::DelayPlane plane;
  std::vector<double> acc;
  std::vector<imaging::FocalPoint> block_points;
  std::vector<std::int32_t> point_delays;
  /// Quantized-path mirrors (int16 delay plane, int32 partial sums, and
  /// the echo quantization target for callers that pass a float
  /// EchoBuffer). Untouched by double-precision sweeps.
  delay::QuantizedDelayPlane qplane;
  std::vector<std::int32_t> qacc;
  QuantizedEchoBuffer qechoes;
  /// When true, reconstruct_span times each block into `profile_data`
  /// (one record per FocalBlock swept).
  bool profile = false;
  LatencyStats profile_data;
};

class Beamformer {
 public:
  Beamformer(const imaging::SystemConfig& config,
             const probe::ApodizationMap& apodization);

  /// Reconstructs the whole volume with delays from `engine`. Equivalent
  /// to begin_frame() + reconstruct_span() over the full scan range.
  VolumeImage reconstruct(const EchoBuffer& echoes,
                          delay::DelayEngine& engine,
                          const BeamformOptions& options = {}) const;

  /// Beamforms one outer-axis slab of the volume into `image` (only the
  /// voxels inside `range` are written). The caller owns the frame
  /// protocol: `engine.begin_frame()` must already have been called with
  /// the frame's origin. This is the unit of work the parallel runtime
  /// hands to each worker — sweeping disjoint ranges of the same frame
  /// with independent engine clones writes disjoint voxels and is
  /// bit-identical to the serial sweep. `scratch` is the worker's reusable
  /// sweep state.
  void reconstruct_span(const EchoBuffer& echoes, delay::DelayEngine& engine,
                        const imaging::ScanRange& range, VolumeImage& image,
                        BeamformScratch& scratch,
                        const BeamformOptions& options = {}) const;

  /// Convenience overload backed by a thread-local scratch (tests,
  /// one-shot callers). Concurrent sweeps from different threads are fine;
  /// each thread reuses its own buffers.
  void reconstruct_span(const EchoBuffer& echoes, delay::DelayEngine& engine,
                        const imaging::ScanRange& range, VolumeImage& image,
                        const BeamformOptions& options = {}) const;

  /// Quantized-path overload taking echoes already quantized by the
  /// caller: the runtime quantizes each frame's EchoBuffer once and hands
  /// the same QuantizedEchoBuffer to every worker span, instead of paying
  /// the quantization per span. Passing this buffer *is* the precision
  /// choice — options.precision is not consulted — and the sweep is
  /// bit-identical to the float-EchoBuffer entry point resolving to
  /// kQuantized (quantization is deterministic). Block path only.
  void reconstruct_span(const QuantizedEchoBuffer& echoes,
                        delay::DelayEngine& engine,
                        const imaging::ScanRange& range, VolumeImage& image,
                        BeamformScratch& scratch,
                        const BeamformOptions& options = {}) const;

  /// Beamforms a single focal point (used by tests). Uses the thread-local
  /// scratch — no per-call heap allocation.
  float beamform_point(const EchoBuffer& echoes, delay::DelayEngine& engine,
                       const imaging::FocalPoint& fp) const;

  const DasKernel& kernel() const { return kernel_; }

  /// The block size used when BeamformOptions::block_points is 0: as many
  /// points as keep `elements` DelayPlane rows near 256 KiB, clamped to
  /// [16, 1024].
  static int auto_block_points(int elements);

 private:
  float accumulate(const EchoBuffer& echoes,
                   std::span<const std::int32_t> delays) const;
  void reconstruct_span_quantized(const QuantizedEchoBuffer& echoes,
                                  delay::DelayEngine& engine,
                                  const imaging::ScanRange& range,
                                  VolumeImage& image,
                                  BeamformScratch& scratch,
                                  const BeamformOptions& options) const;
  static BeamformScratch& thread_scratch();

  imaging::SystemConfig config_;
  probe::ApodizationMap apodization_;
  DasKernel kernel_;
  double weight_norm_;
  double quantized_weight_norm_;
};

}  // namespace us3d::beamform

#endif  // US3D_BEAMFORM_BEAMFORMER_H
