// Receive delay-and-sum beamformer (Eq. 1): for every focal point S, sum
// the apodized echo samples selected by the delay engine across elements.
// The engine is a plug-in, so the same beamformer runs with EXACT,
// TABLEFREE, TABLESTEER or FULLTABLE delays — image quality then directly
// reflects delay accuracy, as Sec. II-A argues.
#ifndef US3D_BEAMFORM_BEAMFORMER_H
#define US3D_BEAMFORM_BEAMFORMER_H

#include "beamform/echo_buffer.h"
#include "beamform/volume_image.h"
#include "delay/engine.h"
#include "imaging/scan_order.h"
#include "imaging/system_config.h"
#include "probe/apodization.h"

namespace us3d::beamform {

struct BeamformOptions {
  imaging::ScanOrder order = imaging::ScanOrder::kNappeByNappe;
  /// Normalize each voxel by the total apodization weight.
  bool normalize = true;
  /// Transmit origin for this frame, forwarded to the delay engine's
  /// begin_frame(). Synthetic-aperture shots pass their virtual source.
  Vec3 origin{};
};

class Beamformer {
 public:
  Beamformer(const imaging::SystemConfig& config,
             const probe::ApodizationMap& apodization);

  /// Reconstructs the whole volume with delays from `engine`. Equivalent
  /// to begin_frame() + reconstruct_span() over the full scan range.
  VolumeImage reconstruct(const EchoBuffer& echoes,
                          delay::DelayEngine& engine,
                          const BeamformOptions& options = {}) const;

  /// Beamforms one outer-axis slab of the volume into `image` (only the
  /// voxels inside `range` are written). The caller owns the frame
  /// protocol: `engine.begin_frame()` must already have been called with
  /// the frame's origin. This is the unit of work the parallel runtime
  /// hands to each worker — sweeping disjoint ranges of the same frame
  /// with independent engine clones writes disjoint voxels and is
  /// bit-identical to the serial sweep.
  void reconstruct_span(const EchoBuffer& echoes, delay::DelayEngine& engine,
                        const imaging::ScanRange& range, VolumeImage& image,
                        const BeamformOptions& options = {}) const;

  /// Beamforms a single focal point (used by tests).
  float beamform_point(const EchoBuffer& echoes, delay::DelayEngine& engine,
                       const imaging::FocalPoint& fp) const;

 private:
  float accumulate(const EchoBuffer& echoes,
                   std::span<const std::int32_t> delays) const;

  imaging::SystemConfig config_;
  probe::ApodizationMap apodization_;
  double weight_norm_;
};

}  // namespace us3d::beamform

#endif  // US3D_BEAMFORM_BEAMFORMER_H
