#include "beamform/beamformer.h"

#include <algorithm>
#include <chrono>

#include "common/contracts.h"

namespace us3d::beamform {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

Beamformer::Beamformer(const imaging::SystemConfig& config,
                       const probe::ApodizationMap& apodization)
    : config_(config), apodization_(apodization), kernel_(apodization) {
  US3D_EXPECTS(apodization.elements_x() == config.probe.elements_x);
  US3D_EXPECTS(apodization.elements_y() == config.probe.elements_y);
  const double total = apodization_.total_weight();
  US3D_EXPECTS(total > 0.0);
  weight_norm_ = 1.0 / total;
}

int Beamformer::auto_block_points(int elements) {
  constexpr int kTargetBytes = 256 * 1024;
  const int points =
      kTargetBytes / (static_cast<int>(sizeof(std::int32_t)) * elements);
  return std::clamp(points, 16, 1024);
}

BeamformScratch& Beamformer::thread_scratch() {
  thread_local BeamformScratch scratch;
  return scratch;
}

float Beamformer::accumulate(const EchoBuffer& echoes,
                             std::span<const std::int32_t> delays) const {
  double acc = 0.0;
  const int n = static_cast<int>(delays.size());
  for (int e = 0; e < n; ++e) {
    const double w = apodization_.weight_flat(e);
    if (w == 0.0) continue;
    acc += w * echoes.sample(e, delays[static_cast<std::size_t>(e)]);
  }
  return static_cast<float>(acc);
}

VolumeImage Beamformer::reconstruct(const EchoBuffer& echoes,
                                    delay::DelayEngine& engine,
                                    const BeamformOptions& options) const {
  VolumeImage image(config_.volume);
  engine.begin_frame(options.origin);
  reconstruct_span(echoes, engine,
                   imaging::full_scan_range(config_.volume, options.order),
                   image, options);
  return image;
}

void Beamformer::reconstruct_span(const EchoBuffer& echoes,
                                  delay::DelayEngine& engine,
                                  const imaging::ScanRange& range,
                                  VolumeImage& image,
                                  BeamformScratch& scratch,
                                  const BeamformOptions& options) const {
  US3D_EXPECTS(echoes.element_count() == engine.element_count());
  US3D_EXPECTS(engine.frame_begun());
  US3D_EXPECTS(image.spec().total_points() == config_.volume.total_points());
  const imaging::VolumeGrid grid(config_.volume);

  if (options.path == ReconstructPath::kPerVoxel) {
    // Legacy loop: one virtual compute() and one weighted sum per voxel.
    scratch.point_delays.resize(
        static_cast<std::size_t>(engine.element_count()));
    imaging::for_each_focal_point(
        grid, options.order, range, [&](const imaging::FocalPoint& fp) {
          engine.compute(fp, scratch.point_delays);
          float v = accumulate(echoes, scratch.point_delays);
          if (options.normalize) v *= static_cast<float>(weight_norm_);
          image.at(fp.i_theta, fp.i_phi, fp.i_depth) = v;
        });
    return;
  }

  // Resolve the SIMD backend once per span, not per block: kAuto resolution
  // reads the environment and probes availability, which cannot change
  // mid-sweep. Blocks then carry a concrete backend down to the kernel.
  const simd::DasBackend backend = simd::resolve_backend(options.simd);
  const int block_points = options.block_points > 0
                               ? options.block_points
                               : auto_block_points(engine.element_count());
  if (scratch.acc.size() < static_cast<std::size_t>(block_points)) {
    scratch.acc.resize(static_cast<std::size_t>(block_points));
  }
  imaging::for_each_focal_block(
      grid, options.order, range, block_points, scratch.block_points,
      [&](const imaging::FocalBlock& block) {
        const auto t0 = scratch.profile ? Clock::now() : Clock::time_point{};
        engine.compute_block(block, scratch.plane);
        kernel_.accumulate_block(echoes, scratch.plane, scratch.acc, backend);
        for (int p = 0; p < block.size(); ++p) {
          // Cast to float before the normalization multiply, exactly as
          // the per-voxel path always has — keeps the two paths (and the
          // pre-block history) bit-identical.
          float v = static_cast<float>(scratch.acc[static_cast<std::size_t>(p)]);
          if (options.normalize) v *= static_cast<float>(weight_norm_);
          const imaging::FocalPoint& fp = block[p];
          image.at(fp.i_theta, fp.i_phi, fp.i_depth) = v;
        }
        if (scratch.profile) scratch.profile_data.record(seconds_since(t0));
      });
}

void Beamformer::reconstruct_span(const EchoBuffer& echoes,
                                  delay::DelayEngine& engine,
                                  const imaging::ScanRange& range,
                                  VolumeImage& image,
                                  const BeamformOptions& options) const {
  reconstruct_span(echoes, engine, range, image, thread_scratch(), options);
}

float Beamformer::beamform_point(const EchoBuffer& echoes,
                                 delay::DelayEngine& engine,
                                 const imaging::FocalPoint& fp) const {
  BeamformScratch& scratch = thread_scratch();
  scratch.point_delays.resize(
      static_cast<std::size_t>(engine.element_count()));
  engine.compute(fp, scratch.point_delays);
  return accumulate(echoes, scratch.point_delays) *
         static_cast<float>(weight_norm_);
}

}  // namespace us3d::beamform
