#include "beamform/beamformer.h"

#include <vector>

#include "common/contracts.h"

namespace us3d::beamform {

Beamformer::Beamformer(const imaging::SystemConfig& config,
                       const probe::ApodizationMap& apodization)
    : config_(config), apodization_(apodization) {
  US3D_EXPECTS(apodization.elements_x() == config.probe.elements_x);
  US3D_EXPECTS(apodization.elements_y() == config.probe.elements_y);
  const double total = apodization_.total_weight();
  US3D_EXPECTS(total > 0.0);
  weight_norm_ = 1.0 / total;
}

float Beamformer::accumulate(const EchoBuffer& echoes,
                             std::span<const std::int32_t> delays) const {
  double acc = 0.0;
  const int n = static_cast<int>(delays.size());
  for (int e = 0; e < n; ++e) {
    const double w = apodization_.weight_flat(e);
    if (w == 0.0) continue;
    acc += w * echoes.sample(e, delays[static_cast<std::size_t>(e)]);
  }
  return static_cast<float>(acc);
}

VolumeImage Beamformer::reconstruct(const EchoBuffer& echoes,
                                    delay::DelayEngine& engine,
                                    const BeamformOptions& options) const {
  VolumeImage image(config_.volume);
  engine.begin_frame(options.origin);
  reconstruct_span(echoes, engine,
                   imaging::full_scan_range(config_.volume, options.order),
                   image, options);
  return image;
}

void Beamformer::reconstruct_span(const EchoBuffer& echoes,
                                  delay::DelayEngine& engine,
                                  const imaging::ScanRange& range,
                                  VolumeImage& image,
                                  const BeamformOptions& options) const {
  US3D_EXPECTS(echoes.element_count() == engine.element_count());
  US3D_EXPECTS(engine.frame_begun());
  US3D_EXPECTS(image.spec().total_points() == config_.volume.total_points());
  const imaging::VolumeGrid grid(config_.volume);
  std::vector<std::int32_t> delays(
      static_cast<std::size_t>(engine.element_count()));

  imaging::for_each_focal_point(
      grid, options.order, range, [&](const imaging::FocalPoint& fp) {
        engine.compute(fp, delays);
        float v = accumulate(echoes, delays);
        if (options.normalize) v *= static_cast<float>(weight_norm_);
        image.at(fp.i_theta, fp.i_phi, fp.i_depth) = v;
      });
}

float Beamformer::beamform_point(const EchoBuffer& echoes,
                                 delay::DelayEngine& engine,
                                 const imaging::FocalPoint& fp) const {
  std::vector<std::int32_t> delays(
      static_cast<std::size_t>(engine.element_count()));
  engine.compute(fp, delays);
  return accumulate(echoes, delays) * static_cast<float>(weight_norm_);
}

}  // namespace us3d::beamform
