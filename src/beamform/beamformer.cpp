#include "beamform/beamformer.h"

#include <algorithm>
#include <chrono>

#include "common/contracts.h"

namespace us3d::beamform {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

Beamformer::Beamformer(const imaging::SystemConfig& config,
                       const probe::ApodizationMap& apodization)
    : config_(config), apodization_(apodization), kernel_(apodization) {
  US3D_EXPECTS(apodization.elements_x() == config.probe.elements_x);
  US3D_EXPECTS(apodization.elements_y() == config.probe.elements_y);
  const double total = apodization_.total_weight();
  US3D_EXPECTS(total > 0.0);
  weight_norm_ = 1.0 / total;
  // Every weight could quantize to zero if the whole map sits below one
  // uQ1.14 LSB; that only trips a contract when a *quantized* normalized
  // sweep actually runs.
  const double qtotal = kernel_.quantized_total_weight();
  quantized_weight_norm_ = qtotal > 0.0 ? 1.0 / qtotal : 0.0;
}

int Beamformer::auto_block_points(int elements) {
  constexpr int kTargetBytes = 256 * 1024;
  const int points =
      kTargetBytes / (static_cast<int>(sizeof(std::int32_t)) * elements);
  return std::clamp(points, 16, 1024);
}

BeamformScratch& Beamformer::thread_scratch() {
  thread_local BeamformScratch scratch;
  return scratch;
}

float Beamformer::accumulate(const EchoBuffer& echoes,
                             std::span<const std::int32_t> delays) const {
  double acc = 0.0;
  const int n = static_cast<int>(delays.size());
  for (int e = 0; e < n; ++e) {
    const double w = apodization_.weight_flat(e);
    if (w == 0.0) continue;
    acc += w * echoes.sample(e, delays[static_cast<std::size_t>(e)]);
  }
  return static_cast<float>(acc);
}

VolumeImage Beamformer::reconstruct(const EchoBuffer& echoes,
                                    delay::DelayEngine& engine,
                                    const BeamformOptions& options) const {
  VolumeImage image(config_.volume);
  engine.begin_frame(options.origin);
  reconstruct_span(echoes, engine,
                   imaging::full_scan_range(config_.volume, options.order),
                   image, options);
  return image;
}

void Beamformer::reconstruct_span(const EchoBuffer& echoes,
                                  delay::DelayEngine& engine,
                                  const imaging::ScanRange& range,
                                  VolumeImage& image,
                                  BeamformScratch& scratch,
                                  const BeamformOptions& options) const {
  US3D_EXPECTS(echoes.element_count() == engine.element_count());
  US3D_EXPECTS(engine.frame_begun());
  US3D_EXPECTS(image.spec().total_points() == config_.volume.total_points());
  const imaging::VolumeGrid grid(config_.volume);

  const simd::Precision precision = simd::resolve_precision(options.precision);
  if (precision == simd::Precision::kQuantized) {
    // Quantize this caller's echoes into the scratch and run the integer
    // sweep. Quantization is deterministic, so repeating it per span (the
    // runtime avoids this via the QuantizedEchoBuffer overload) changes
    // nothing but time.
    US3D_EXPECTS(options.path == ReconstructPath::kBlock);
    scratch.qechoes.quantize_from(echoes);
    reconstruct_span_quantized(scratch.qechoes, engine, range, image, scratch,
                               options);
    return;
  }

  if (options.path == ReconstructPath::kPerVoxel) {
    // Legacy loop: one virtual compute() and one weighted sum per voxel.
    scratch.point_delays.resize(
        static_cast<std::size_t>(engine.element_count()));
    imaging::for_each_focal_point(
        grid, options.order, range, [&](const imaging::FocalPoint& fp) {
          engine.compute(fp, scratch.point_delays);
          float v = accumulate(echoes, scratch.point_delays);
          if (options.normalize) v *= static_cast<float>(weight_norm_);
          image.at(fp.i_theta, fp.i_phi, fp.i_depth) = v;
        });
    return;
  }

  // Resolve the SIMD backend once per span, not per block: kAuto resolution
  // reads the environment and probes availability, which cannot change
  // mid-sweep. Blocks then carry a concrete backend down to the kernel.
  const simd::DasBackend backend = simd::resolve_backend(options.simd);
  const int block_points = options.block_points > 0
                               ? options.block_points
                               : auto_block_points(engine.element_count());
  if (scratch.acc.size() < static_cast<std::size_t>(block_points)) {
    scratch.acc.resize(static_cast<std::size_t>(block_points));
  }
  imaging::for_each_focal_block(
      grid, options.order, range, block_points, scratch.block_points,
      [&](const imaging::FocalBlock& block) {
        const auto t0 = scratch.profile ? Clock::now() : Clock::time_point{};
        engine.compute_block(block, scratch.plane);
        kernel_.accumulate_block(echoes, scratch.plane, scratch.acc, backend);
        for (int p = 0; p < block.size(); ++p) {
          // Cast to float before the normalization multiply, exactly as
          // the per-voxel path always has — keeps the two paths (and the
          // pre-block history) bit-identical.
          float v = static_cast<float>(scratch.acc[static_cast<std::size_t>(p)]);
          if (options.normalize) v *= static_cast<float>(weight_norm_);
          const imaging::FocalPoint& fp = block[p];
          image.at(fp.i_theta, fp.i_phi, fp.i_depth) = v;
        }
        if (scratch.profile) scratch.profile_data.record(seconds_since(t0));
      });
}

void Beamformer::reconstruct_span(const EchoBuffer& echoes,
                                  delay::DelayEngine& engine,
                                  const imaging::ScanRange& range,
                                  VolumeImage& image,
                                  const BeamformOptions& options) const {
  reconstruct_span(echoes, engine, range, image, thread_scratch(), options);
}

void Beamformer::reconstruct_span(const QuantizedEchoBuffer& echoes,
                                  delay::DelayEngine& engine,
                                  const imaging::ScanRange& range,
                                  VolumeImage& image,
                                  BeamformScratch& scratch,
                                  const BeamformOptions& options) const {
  reconstruct_span_quantized(echoes, engine, range, image, scratch, options);
}

void Beamformer::reconstruct_span_quantized(const QuantizedEchoBuffer& echoes,
                                            delay::DelayEngine& engine,
                                            const imaging::ScanRange& range,
                                            VolumeImage& image,
                                            BeamformScratch& scratch,
                                            const BeamformOptions& options)
    const {
  US3D_EXPECTS(echoes.element_count() == engine.element_count());
  US3D_EXPECTS(engine.frame_begun());
  US3D_EXPECTS(image.spec().total_points() == config_.volume.total_points());
  US3D_EXPECTS(options.path == ReconstructPath::kBlock);
  // Normalizing by a quantized total weight of zero would wipe the volume;
  // it means the apodization map sits entirely below one uQ1.14 LSB and
  // the quantized path cannot represent it.
  US3D_EXPECTS(!options.normalize || kernel_.quantized_total_weight() > 0.0);
  const imaging::VolumeGrid grid(config_.volume);

  const simd::DasBackend backend = simd::resolve_backend(options.simd);
  const int block_points = options.block_points > 0
                               ? options.block_points
                               : auto_block_points(engine.element_count());
  // Rounded up to a whole vector: the kernel sweeps rows through the
  // quantized plane's sentinel padding (see accumulate_block_quantized).
  const std::size_t qacc_points =
      static_cast<std::size_t>((block_points + 15) / 16 * 16);
  if (scratch.qacc.size() < qacc_points) {
    scratch.qacc.resize(qacc_points);
  }
  const std::int64_t samples = echoes.samples_per_element();
  const double lsb = echoes.lsb();
  imaging::for_each_focal_block(
      grid, options.order, range, block_points, scratch.block_points,
      [&](const imaging::FocalBlock& block) {
        const auto t0 = scratch.profile ? Clock::now() : Clock::time_point{};
        // The engine fills the same int32 plane as the double path; only
        // the per-block int16 requantization and the integer kernel
        // differ. Delay selection is therefore identical by construction.
        engine.compute_block(block, scratch.plane);
        scratch.qplane.quantize_from(scratch.plane, samples);
        kernel_.accumulate_block_quantized(echoes, scratch.qplane,
                                           scratch.qacc, backend);
        for (int p = 0; p < block.size(); ++p) {
          // Reconstruct in double (exact for any int32 accumulator), cast
          // to float before the normalization multiply like the double
          // path does.
          float v = static_cast<float>(
              static_cast<double>(scratch.qacc[static_cast<std::size_t>(p)]) *
              lsb);
          if (options.normalize) {
            v *= static_cast<float>(quantized_weight_norm_);
          }
          const imaging::FocalPoint& fp = block[p];
          image.at(fp.i_theta, fp.i_phi, fp.i_depth) = v;
        }
        if (scratch.profile) scratch.profile_data.record(seconds_since(t0));
      });
}

float Beamformer::beamform_point(const EchoBuffer& echoes,
                                 delay::DelayEngine& engine,
                                 const imaging::FocalPoint& fp) const {
  BeamformScratch& scratch = thread_scratch();
  scratch.point_delays.resize(
      static_cast<std::size_t>(engine.element_count()));
  engine.compute(fp, scratch.point_delays);
  return accumulate(echoes, scratch.point_delays) *
         static_cast<float>(weight_norm_);
}

}  // namespace us3d::beamform
