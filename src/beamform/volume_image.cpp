#include "beamform/volume_image.h"

#include <cmath>

#include "common/contracts.h"

namespace us3d::beamform {

VolumeImage::VolumeImage(const imaging::VolumeSpec& spec) : spec_(spec) {
  US3D_EXPECTS(spec.total_points() > 0);
  data_.assign(static_cast<std::size_t>(spec.total_points()), 0.0f);
}

std::size_t VolumeImage::index(int i_theta, int i_phi, int i_depth) const {
  US3D_EXPECTS(i_theta >= 0 && i_theta < spec_.n_theta);
  US3D_EXPECTS(i_phi >= 0 && i_phi < spec_.n_phi);
  US3D_EXPECTS(i_depth >= 0 && i_depth < spec_.n_depth);
  return (static_cast<std::size_t>(i_theta) *
              static_cast<std::size_t>(spec_.n_phi) +
          static_cast<std::size_t>(i_phi)) *
             static_cast<std::size_t>(spec_.n_depth) +
         static_cast<std::size_t>(i_depth);
}

float& VolumeImage::at(int i_theta, int i_phi, int i_depth) {
  return data_[index(i_theta, i_phi, i_depth)];
}

float VolumeImage::at(int i_theta, int i_phi, int i_depth) const {
  return data_[index(i_theta, i_phi, i_depth)];
}

VolumeImage::Peak VolumeImage::peak_abs() const {
  Peak p;
  float best = -1.0f;
  for (int it = 0; it < spec_.n_theta; ++it) {
    for (int ip = 0; ip < spec_.n_phi; ++ip) {
      for (int id = 0; id < spec_.n_depth; ++id) {
        const float v = std::abs(at(it, ip, id));
        if (v > best) {
          best = v;
          p = Peak{it, ip, id, at(it, ip, id)};
        }
      }
    }
  }
  return p;
}

void VolumeImage::add(const VolumeImage& other) {
  US3D_EXPECTS(spec_.n_theta == other.spec_.n_theta &&
               spec_.n_phi == other.spec_.n_phi &&
               spec_.n_depth == other.spec_.n_depth);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

double VolumeImage::nrmse(const VolumeImage& reference,
                          const VolumeImage& test) {
  US3D_EXPECTS(reference.spec_.n_theta == test.spec_.n_theta &&
               reference.spec_.n_phi == test.spec_.n_phi &&
               reference.spec_.n_depth == test.spec_.n_depth);
  double sum_sq = 0.0;
  const double peak = std::abs(reference.peak_abs().value);
  US3D_EXPECTS(peak > 0.0);
  for (std::size_t i = 0; i < reference.data_.size(); ++i) {
    const double d = static_cast<double>(reference.data_[i]) -
                     static_cast<double>(test.data_[i]);
    sum_sq += d * d;
  }
  return std::sqrt(sum_sq / static_cast<double>(reference.data_.size())) /
         peak;
}

}  // namespace us3d::beamform
