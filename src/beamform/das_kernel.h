// The apodization-weighted delay-and-sum inner kernel of the block hot
// path (Eq. 1 over a FocalBlock). Three things make it fast where the old
// per-voxel accumulate() was slow:
//
//  1. The zero-weight element test is hoisted out of the inner loop: the
//     kernel precomputes the list of *active* elements (w != 0) once per
//     apodization map, so the sweep never branches on weights.
//  2. The loop order is element-outer / point-inner: one element's echo
//     row and one DelayPlane row stream through the inner loop as plain
//     contiguous arrays — gather on the echo index, but sequential
//     everywhere else. The row sweep itself runs through an explicit-SIMD
//     backend (src/simd/): AVX2 masked gather, SSE2, or the scalar
//     reference, selected per call (option > US3D_SIMD env > best
//     available, see simd/dispatch.h).
//  3. Per-point partial sums accumulate in a flat double array owned by the
//     caller (reused across blocks, no allocation in the sweep).
//
// Bit-compatibility: the element-outer order visits active elements in
// ascending flat index, which is exactly the order the per-voxel
// accumulate() added them in, and sums in double just like it did — so a
// block sweep produces bit-identical voxels to the per-voxel path. The
// SIMD backends keep one double accumulator per point (lanes map 1:1 to
// points, elements fold in the same ascending order, mul + add, never
// FMA), so every backend is additionally bit-identical to scalar.
#ifndef US3D_BEAMFORM_DAS_KERNEL_H
#define US3D_BEAMFORM_DAS_KERNEL_H

#include <span>
#include <vector>

#include <cstdint>

#include "beamform/echo_buffer.h"
#include "beamform/quantized.h"
#include "delay/delay_plane.h"
#include "delay/quantized_plane.h"
#include "probe/apodization.h"
#include "simd/dispatch.h"

namespace us3d::beamform {

class DasKernel {
 public:
  explicit DasKernel(const probe::ApodizationMap& apodization);

  /// Elements with nonzero apodization weight, ascending flat index.
  const std::vector<int>& active_elements() const { return active_; }
  int active_count() const { return static_cast<int>(active_.size()); }

  /// Weighted delay-and-sum: acc[p] = sum over active elements e of
  /// w_e * echoes(e, plane(e, p)). Overwrites acc[0 .. plane.point_count()).
  /// Out-of-window delay indices read as zero, matching EchoBuffer::sample.
  /// `backend` selects the row kernel (simd/dispatch.h); kAuto resolves
  /// via US3D_SIMD / CPU detection, a concrete backend must be available
  /// on this host (resolve_backend throws otherwise). Every backend
  /// produces bit-identical sums.
  void accumulate_block(const EchoBuffer& echoes,
                        const delay::DelayPlane& plane, std::span<double> acc,
                        simd::DasBackend backend = simd::DasBackend::kAuto)
      const;

  /// Fixed-point mirror of accumulate_block for the quantized pipeline:
  /// acc[p] = sum over active elements of the uQ1.14-weighted int16
  /// samples, each product arithmetic-shifted by kQuantWeightFracBits
  /// before accumulating (the DasRowQFn contract). Exact integer
  /// arithmetic, so every backend is bit-identical — the parity suite in
  /// tests/beamform/test_das_kernel_quantized.cpp pins it. A real voxel is
  /// double(acc[p]) * echoes.lsb(). `acc` must hold at least
  /// plane.padded_point_count() entries: the rows are swept through their
  /// sentinel-filled padding (which accumulates exactly 0) so no backend
  /// runs a scalar row tail; entries past point_count() are scratch.
  void accumulate_block_quantized(
      const QuantizedEchoBuffer& echoes,
      const delay::QuantizedDelayPlane& plane, std::span<std::int32_t> acc,
      simd::DasBackend backend = simd::DasBackend::kAuto) const;

  /// Sum of the *quantized* weights in real units (raw / 2^14): the
  /// normalization constant of the quantized path, kept self-consistent
  /// with the words the kernels actually multiplied by.
  double quantized_total_weight() const { return quantized_total_weight_; }

 private:
  int elements_;                  // element count the kernel was built for
  std::vector<int> active_;       // flat indices of nonzero-weight elements
  std::vector<double> weights_;   // weight per active_ entry (same order)
  std::vector<std::int32_t> quantized_weights_;  // uQ1.14 words, same order
  double quantized_total_weight_ = 0.0;
};

}  // namespace us3d::beamform

#endif  // US3D_BEAMFORM_DAS_KERNEL_H
