#include "beamform/echo_buffer.h"

#include <algorithm>

#include "common/contracts.h"

namespace us3d::beamform {

EchoBuffer::EchoBuffer(int element_count, std::int64_t samples_per_element)
    : elements_(element_count), samples_(samples_per_element) {
  US3D_EXPECTS(element_count > 0);
  US3D_EXPECTS(samples_per_element > 0);
  data_.assign(static_cast<std::size_t>(elements_) *
                   static_cast<std::size_t>(samples_),
               0.0f);
}

float EchoBuffer::sample(int element, std::int64_t index) const {
  US3D_EXPECTS(element >= 0 && element < elements_);
  if (index < 0 || index >= samples_) return 0.0f;
  return data_[static_cast<std::size_t>(element) *
                   static_cast<std::size_t>(samples_) +
               static_cast<std::size_t>(index)];
}

std::span<float> EchoBuffer::row(int element) {
  US3D_EXPECTS(element >= 0 && element < elements_);
  return {&data_[static_cast<std::size_t>(element) *
                 static_cast<std::size_t>(samples_)],
          static_cast<std::size_t>(samples_)};
}

std::span<const float> EchoBuffer::row(int element) const {
  US3D_EXPECTS(element >= 0 && element < elements_);
  return {&data_[static_cast<std::size_t>(element) *
                 static_cast<std::size_t>(samples_)],
          static_cast<std::size_t>(samples_)};
}

void EchoBuffer::clear() { std::fill(data_.begin(), data_.end(), 0.0f); }

}  // namespace us3d::beamform
