#include "beamform/das_kernel.h"

#include <algorithm>

#include "common/contracts.h"

namespace us3d::beamform {

DasKernel::DasKernel(const probe::ApodizationMap& apodization)
    : elements_(apodization.elements_x() * apodization.elements_y()) {
  for (int e = 0; e < elements_; ++e) {
    const double w = apodization.weight_flat(e);
    if (w == 0.0) continue;
    active_.push_back(e);
    weights_.push_back(w);
    quantized_weights_.push_back(quantize_weight(w));
  }
  for (const std::int32_t qw : quantized_weights_) {
    quantized_total_weight_ +=
        static_cast<double>(qw) * kQuantWeightFormat.lsb();
  }
  // The int32 quantized accumulators tolerate < 2^15 shifted terms
  // (each has magnitude <= 2^16); real probes are far below this.
  US3D_ENSURES(active_.size() < (1u << 15));
}

void DasKernel::accumulate_block(const EchoBuffer& echoes,
                                 const delay::DelayPlane& plane,
                                 std::span<double> acc,
                                 simd::DasBackend backend) const {
  const int n = plane.point_count();
  US3D_EXPECTS(acc.size() >= static_cast<std::size_t>(n));
  US3D_EXPECTS(echoes.element_count() == plane.element_count());
  // The active list indexes up to the apodization map's element count; a
  // smaller plane/echo pair must fail loudly, not read out of bounds.
  US3D_EXPECTS(plane.element_count() == elements_);
  std::fill(acc.begin(), acc.begin() + n, 0.0);
  const simd::DasRowFn row_fn =
      simd::das_row_fn(simd::resolve_backend(backend));
  const std::int64_t samples = echoes.samples_per_element();
  for (std::size_t k = 0; k < active_.size(); ++k) {
    const int e = active_[k];
    row_fn(echoes.row(e).data(), samples, plane.row(e).data(), weights_[k],
           acc.data(), n);
  }
}

void DasKernel::accumulate_block_quantized(
    const QuantizedEchoBuffer& echoes, const delay::QuantizedDelayPlane& plane,
    std::span<std::int32_t> acc, simd::DasBackend backend) const {
  // Sweep whole rows rounded up to the plane's sentinel-filled padding:
  // the extra lanes read guaranteed-zero echo entries and accumulate 0,
  // so no backend ever runs a scalar row tail. acc[n .. padded) is
  // zeroed scratch the caller must provide and should ignore.
  const int n = plane.padded_point_count();
  US3D_EXPECTS(acc.size() >= static_cast<std::size_t>(n));
  US3D_EXPECTS(echoes.element_count() == plane.element_count());
  US3D_EXPECTS(plane.element_count() == elements_);
  std::fill(acc.begin(), acc.begin() + n, std::int32_t{0});
  const simd::DasRowQFn row_fn =
      simd::das_row_q_fn(simd::resolve_backend(backend));
  const std::int64_t samples = echoes.samples_per_element();
  for (std::size_t k = 0; k < active_.size(); ++k) {
    const int e = active_[k];
    row_fn(echoes.row(e).data(), samples, plane.row(e).data(),
           quantized_weights_[k], acc.data(), n);
  }
}

}  // namespace us3d::beamform
