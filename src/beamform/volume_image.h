// Beamformed output volume: one scalar s(S) per focal point (Eq. 1),
// indexed like the VolumeGrid.
#ifndef US3D_BEAMFORM_VOLUME_IMAGE_H
#define US3D_BEAMFORM_VOLUME_IMAGE_H

#include <cstdint>
#include <vector>

#include "imaging/volume.h"

namespace us3d::beamform {

class VolumeImage {
 public:
  explicit VolumeImage(const imaging::VolumeSpec& spec);

  const imaging::VolumeSpec& spec() const { return spec_; }

  float& at(int i_theta, int i_phi, int i_depth);
  float at(int i_theta, int i_phi, int i_depth) const;

  std::int64_t voxel_count() const {
    return static_cast<std::int64_t>(data_.size());
  }

  /// Location and value of the maximum-magnitude voxel.
  struct Peak {
    int i_theta = 0;
    int i_phi = 0;
    int i_depth = 0;
    float value = 0.0f;
  };
  Peak peak_abs() const;

  /// Voxel-wise accumulate: this += other (specs must match). This is the
  /// synthetic-aperture compounding primitive — coherently summing one
  /// volume per insonification in shot order is the serial compounding
  /// reference the async runtime reproduces bit-for-bit.
  void add(const VolumeImage& other);

  /// Root-mean-square difference normalized by the reference's peak
  /// magnitude; 0 means identical volumes.
  static double nrmse(const VolumeImage& reference, const VolumeImage& test);

 private:
  std::size_t index(int i_theta, int i_phi, int i_depth) const;
  imaging::VolumeSpec spec_;
  std::vector<float> data_;
};

}  // namespace us3d::beamform

#endif  // US3D_BEAMFORM_VOLUME_IMAGE_H
