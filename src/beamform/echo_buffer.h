// Per-element echo sample storage: the "e(D, t)" term of Eq. (1). One row
// of fs-sampled RF data per receive element; delay engines produce indices
// into these rows.
#ifndef US3D_BEAMFORM_ECHO_BUFFER_H
#define US3D_BEAMFORM_ECHO_BUFFER_H

#include <cstdint>
#include <span>
#include <vector>

namespace us3d::beamform {

class EchoBuffer {
 public:
  EchoBuffer(int element_count, std::int64_t samples_per_element);

  int element_count() const { return elements_; }
  std::int64_t samples_per_element() const { return samples_; }

  /// Sample value; indices outside the acquisition window read as 0 (the
  /// hardware clamps the same way).
  float sample(int element, std::int64_t index) const;

  /// Mutable row for the synthesizer.
  std::span<float> row(int element);
  std::span<const float> row(int element) const;

  void clear();

 private:
  int elements_;
  std::int64_t samples_;
  std::vector<float> data_;  // row-major [element][sample]
};

}  // namespace us3d::beamform

#endif  // US3D_BEAMFORM_ECHO_BUFFER_H
