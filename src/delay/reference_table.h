// TABLESTEER's reference delay table (Sec. V-A, Fig. 3a): the two-way
// delays for the *unsteered* line of sight (points R on the Z axis), one
// entry per (element, depth). With the transmit origin on the probe's
// vertical axis the table is mirror-symmetric in x and y, so only one
// quadrant of element columns/rows is stored (2.5e6 entries instead of
// 10e6 for the paper system). Entries are held in hardware fixed-point
// format (unsigned Q13.5 by default).
#ifndef US3D_DELAY_REFERENCE_TABLE_H
#define US3D_DELAY_REFERENCE_TABLE_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/fixed_point.h"
#include "imaging/system_config.h"
#include "probe/directivity.h"
#include "probe/transducer.h"

namespace us3d::delay {

struct ReferenceTableConfig {
  fx::Format entry_format = fx::kRefDelay18;
  /// When set, entries whose element cannot see the on-axis point (angle
  /// beyond the directivity cutoff) are counted as prunable (Fig. 3a).
  std::optional<probe::Directivity> pruning{};
  /// Transmit-origin displacement along the probe axis (negative = virtual
  /// source behind the probe). Keeping the origin on the axis preserves
  /// the X/Y folding (Sec. V-A: the table stays quarter-size as long as
  /// the origin is "vertically aligned" with the transducer centre);
  /// synthetic-aperture modes build one table per origin (see
  /// delay/synthetic_aperture.h).
  double origin_z = 0.0;
};

class ReferenceDelayTable {
 public:
  ReferenceDelayTable(const imaging::SystemConfig& config,
                      const ReferenceTableConfig& table_config = {});

  /// Folded quadrant dimensions.
  int quad_x() const { return quad_x_; }
  int quad_y() const { return quad_y_; }
  int depths() const { return depths_; }

  /// Quadrant index for a full-grid element column/row index. Mirror
  /// columns share an index because |x| matches.
  int fold_x(int ix) const;
  int fold_y(int iy) const;

  /// Fixed-point reference delay (two-way, in echo samples) for full-grid
  /// element (ix, iy) at depth index i_depth.
  fx::Value entry(int ix, int iy, int i_depth) const;
  fx::Value entry_quad(int qx, int qy, int i_depth) const;
  double entry_real(int ix, int iy, int i_depth) const;

  /// Exact (double) value the entry was quantized from.
  double exact_entry_samples(int ix, int iy, int i_depth) const;

  /// Transmit origin this table was built for.
  Vec3 origin() const { return Vec3{0.0, 0.0, origin_z_}; }

  std::int64_t entry_count() const;
  double storage_bits() const;

  /// Entries flagged prunable by the directivity model, and the fraction
  /// of the folded table they represent.
  std::int64_t prunable_count() const { return prunable_; }
  double prunable_fraction() const;
  bool is_prunable(int qx, int qy, int i_depth) const;

  const fx::Format& entry_format() const { return format_; }

 private:
  std::size_t index(int qx, int qy, int i_depth) const;

  imaging::SystemConfig config_;
  probe::MatrixProbe probe_;
  fx::Format format_;
  double origin_z_ = 0.0;
  int quad_x_ = 0;
  int quad_y_ = 0;
  int depths_ = 0;
  std::vector<std::int32_t> raw_;       // fixed-point words
  std::vector<bool> prunable_mask_;
  std::int64_t prunable_ = 0;
};

}  // namespace us3d::delay

#endif  // US3D_DELAY_REFERENCE_TABLE_H
