// Incremental segment tracking (Sec. IV-B). When focal points are visited
// in scan order, the sqrt argument changes gradually, so the hardware does
// not search for the right PWL segment: it keeps the current segment and
// steps at most one segment per comparator evaluation (the two ">="
// comparators of Fig. 2a). Large jumps — e.g. the depth reset at the start
// of a new scanline in scanline order — cost one cycle per crossed segment.
// The tracker counts those steps so the cycle-accurate models and the
// scan-order ablation can charge them.
#ifndef US3D_DELAY_PWL_TRACKER_H
#define US3D_DELAY_PWL_TRACKER_H

#include <cstdint>

#include "delay/pwl_sqrt.h"

namespace us3d::delay {

class PwlTracker {
 public:
  /// The tracker holds a reference to `table`; it must not outlive it.
  explicit PwlTracker(const PwlSqrt& table);

  struct Evaluation {
    double value = 0.0;  ///< PWL approximation of sqrt(x)
    int steps = 0;       ///< segments crossed to reach x's segment
  };

  /// Moves the current segment toward x (one step per crossed boundary)
  /// and evaluates. x must lie inside the table domain.
  Evaluation evaluate(double x);

  /// Current segment index (for pairing with FixedPwlSqrt).
  std::size_t segment() const { return segment_; }

  /// Lifetime statistics, for stall accounting.
  std::int64_t total_steps() const { return total_steps_; }
  std::int64_t evaluations() const { return evaluations_; }
  int max_steps_single_evaluation() const { return max_steps_; }

  /// Resets the segment to the one containing x (a "seek", as done once at
  /// frame start) without charging steps.
  void seek(double x);

  /// Re-points the tracker at an identical segmentation owned elsewhere.
  /// Used when an engine that owns both the PwlSqrt and its trackers is
  /// copied: the copied trackers must follow the copy's table, not the
  /// original's. The segment index and statistics are preserved, so the
  /// tables must have the same segmentation.
  void rebind(const PwlSqrt& table);

  void reset_statistics();

 private:
  const PwlSqrt* table_;
  std::size_t segment_ = 0;
  std::int64_t total_steps_ = 0;
  std::int64_t evaluations_ = 0;
  int max_steps_ = 0;
};

}  // namespace us3d::delay

#endif  // US3D_DELAY_PWL_TRACKER_H
