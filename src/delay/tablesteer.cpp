#include "delay/tablesteer.h"

#include <cmath>

#include "common/contracts.h"

namespace us3d::delay {

TableSteerConfig TableSteerConfig::bits18() {
  return TableSteerConfig{
      .entry_format = fx::kRefDelay18,
      .coeff_format = fx::kCorrection18,
      .sum_format = fx::Format{14, 5, true},
  };
}

TableSteerConfig TableSteerConfig::bits14() {
  return TableSteerConfig{
      .entry_format = fx::kRefDelay14,
      .coeff_format = fx::kCorrection14,
      .sum_format = fx::Format{14, 1, true},
  };
}

TableSteerConfig TableSteerConfig::bits13() {
  return TableSteerConfig{
      .entry_format = fx::Format{13, 0, false},
      .coeff_format = fx::Format{13, 0, true},
      .sum_format = fx::Format{14, 0, true},
  };
}

std::string TableSteerConfig::name_suffix() const {
  return "-" + std::to_string(entry_format.total_bits()) + "b";
}

void steer_compute_point(const probe::MatrixProbe& probe,
                         const ReferenceDelayTable& table,
                         const SteeringCorrections& corrections,
                         const TableSteerConfig& ts_config,
                         const imaging::FocalPoint& fp,
                         std::span<std::int32_t> out) {
  const int nx = probe.elements_x();
  const int ny = probe.elements_y();
  for (int iy = 0; iy < ny; ++iy) {
    const fx::Value cy = corrections.y_correction(iy, fp.i_phi);
    for (int ix = 0; ix < nx; ++ix) {
      const fx::Value ref = table.entry(ix, iy, fp.i_depth);
      const fx::Value cx = corrections.x_correction(ix, fp.i_theta, fp.i_phi);
      // Two adders per element in the Fig. 4 block; the second performs
      // the rounding to the integer echo-sample index.
      const fx::Value sum0 = fx::add(ref, cx, ts_config.sum_format);
      const fx::Value sum1 = fx::add(sum0, cy, ts_config.sum_format);
      const std::int64_t idx = sum1.round_to_int(fx::Rounding::kHalfUp);
      out[static_cast<std::size_t>(probe.flat_index(ix, iy))] =
          static_cast<std::int32_t>(idx < 0 ? 0 : idx);
    }
  }
}

void steer_compute_block(const probe::MatrixProbe& probe,
                         const ReferenceDelayTable& table,
                         const SteeringCorrections& corrections,
                         const TableSteerConfig& ts_config,
                         const imaging::FocalBlock& block, DelayPlane& plane,
                         std::vector<fx::Value>& cy_scratch) {
  const int n = block.size();
  const int nx = probe.elements_x();
  const int ny = probe.elements_y();
  cy_scratch.resize(static_cast<std::size_t>(n));
  for (int iy = 0; iy < ny; ++iy) {
    // One y-correction gather per row, shared by all nx columns.
    for (int p = 0; p < n; ++p) {
      cy_scratch[static_cast<std::size_t>(p)] =
          corrections.y_correction(iy, block[p].i_phi);
    }
    for (int ix = 0; ix < nx; ++ix) {
      const std::span<std::int32_t> row = plane.row(probe.flat_index(ix, iy));
      // kNappeByNappe blocks never span two nappes, so the table entry is
      // a per-element constant there; fall back to a per-point read when a
      // scanline-order block mixes depths.
      if (block.uniform_depth) {
        const fx::Value ref = table.entry(ix, iy, block.front().i_depth);
        for (int p = 0; p < n; ++p) {
          const fx::Value cx =
              corrections.x_correction(ix, block[p].i_theta, block[p].i_phi);
          const fx::Value sum0 = fx::add(ref, cx, ts_config.sum_format);
          const fx::Value sum1 =
              fx::add(sum0, cy_scratch[static_cast<std::size_t>(p)],
                      ts_config.sum_format);
          const std::int64_t idx = sum1.round_to_int(fx::Rounding::kHalfUp);
          row[static_cast<std::size_t>(p)] =
              static_cast<std::int32_t>(idx < 0 ? 0 : idx);
        }
      } else {
        for (int p = 0; p < n; ++p) {
          const fx::Value ref = table.entry(ix, iy, block[p].i_depth);
          const fx::Value cx =
              corrections.x_correction(ix, block[p].i_theta, block[p].i_phi);
          const fx::Value sum0 = fx::add(ref, cx, ts_config.sum_format);
          const fx::Value sum1 =
              fx::add(sum0, cy_scratch[static_cast<std::size_t>(p)],
                      ts_config.sum_format);
          const std::int64_t idx = sum1.round_to_int(fx::Rounding::kHalfUp);
          row[static_cast<std::size_t>(p)] =
              static_cast<std::int32_t>(idx < 0 ? 0 : idx);
        }
      }
    }
  }
}

TableSteerEngine::TableSteerEngine(const imaging::SystemConfig& config,
                                   const TableSteerConfig& ts_config)
    : config_(config),
      probe_(config.probe),
      ts_config_(ts_config),
      table_(std::make_shared<const ReferenceDelayTable>(
          config,
          ReferenceTableConfig{.entry_format = ts_config.entry_format})),
      corrections_(config, ts_config.coeff_format) {}

std::string TableSteerEngine::name() const {
  return "TABLESTEER" + ts_config_.name_suffix();
}

int TableSteerEngine::element_count() const { return probe_.element_count(); }

std::unique_ptr<DelayEngine> TableSteerEngine::clone() const {
  return std::make_unique<TableSteerEngine>(*this);
}

void TableSteerEngine::do_begin_frame(const Vec3& origin) {
  // The reference table was built for O at the array centre; a displaced
  // origin would need a different (larger) table (Sec. V-A).
  US3D_EXPECTS(std::abs(origin.x) < 1e-12 && std::abs(origin.y) < 1e-12 &&
               std::abs(origin.z) < 1e-12);
}

void TableSteerEngine::do_compute(const imaging::FocalPoint& fp,
                                  std::span<std::int32_t> out) {
  US3D_EXPECTS(out.size() == static_cast<std::size_t>(element_count()));
  steer_compute_point(probe_, *table_, corrections_, ts_config_, fp, out);
}

void TableSteerEngine::do_compute_block(const imaging::FocalBlock& block,
                                        DelayPlane& plane) {
  steer_compute_block(probe_, *table_, corrections_, ts_config_, block, plane,
                      block_cy_);
}

}  // namespace us3d::delay
