#include "delay/tablesteer.h"

#include <cmath>

#include "common/contracts.h"

namespace us3d::delay {

TableSteerConfig TableSteerConfig::bits18() {
  return TableSteerConfig{
      .entry_format = fx::kRefDelay18,
      .coeff_format = fx::kCorrection18,
      .sum_format = fx::Format{14, 5, true},
  };
}

TableSteerConfig TableSteerConfig::bits14() {
  return TableSteerConfig{
      .entry_format = fx::kRefDelay14,
      .coeff_format = fx::kCorrection14,
      .sum_format = fx::Format{14, 1, true},
  };
}

TableSteerConfig TableSteerConfig::bits13() {
  return TableSteerConfig{
      .entry_format = fx::Format{13, 0, false},
      .coeff_format = fx::Format{13, 0, true},
      .sum_format = fx::Format{14, 0, true},
  };
}

std::string TableSteerConfig::name_suffix() const {
  return "-" + std::to_string(entry_format.total_bits()) + "b";
}

TableSteerEngine::TableSteerEngine(const imaging::SystemConfig& config,
                                   const TableSteerConfig& ts_config)
    : config_(config),
      probe_(config.probe),
      ts_config_(ts_config),
      table_(config, ReferenceTableConfig{.entry_format =
                                              ts_config.entry_format}),
      corrections_(config, ts_config.coeff_format) {}

std::string TableSteerEngine::name() const {
  return "TABLESTEER" + ts_config_.name_suffix();
}

int TableSteerEngine::element_count() const { return probe_.element_count(); }

std::unique_ptr<DelayEngine> TableSteerEngine::clone() const {
  return std::make_unique<TableSteerEngine>(*this);
}

void TableSteerEngine::do_begin_frame(const Vec3& origin) {
  // The reference table was built for O at the array centre; a displaced
  // origin would need a different (larger) table (Sec. V-A).
  US3D_EXPECTS(std::abs(origin.x) < 1e-12 && std::abs(origin.y) < 1e-12 &&
               std::abs(origin.z) < 1e-12);
}

void TableSteerEngine::do_compute(const imaging::FocalPoint& fp,
                                  std::span<std::int32_t> out) {
  US3D_EXPECTS(out.size() == static_cast<std::size_t>(element_count()));
  const int nx = probe_.elements_x();
  const int ny = probe_.elements_y();
  for (int iy = 0; iy < ny; ++iy) {
    const fx::Value cy = corrections_.y_correction(iy, fp.i_phi);
    for (int ix = 0; ix < nx; ++ix) {
      const fx::Value ref = table_.entry(ix, iy, fp.i_depth);
      const fx::Value cx = corrections_.x_correction(ix, fp.i_theta, fp.i_phi);
      // Two adders per element in the Fig. 4 block; the second performs
      // the rounding to the integer echo-sample index.
      const fx::Value sum0 = fx::add(ref, cx, ts_config_.sum_format);
      const fx::Value sum1 = fx::add(sum0, cy, ts_config_.sum_format);
      const std::int64_t idx = sum1.round_to_int(fx::Rounding::kHalfUp);
      out[static_cast<std::size_t>(probe_.flat_index(ix, iy))] =
          static_cast<std::int32_t>(idx < 0 ? 0 : idx);
    }
  }
}

}  // namespace us3d::delay
