#include "delay/table_sizing.h"

#include "common/contracts.h"

namespace us3d::delay {

NaiveTableSizing naive_table_sizing(const imaging::SystemConfig& config,
                                    int bits_per_coefficient) {
  US3D_EXPECTS(bits_per_coefficient > 0);
  NaiveTableSizing s;
  s.coefficients = config.delays_per_frame();
  s.bits_per_coefficient = bits_per_coefficient;
  s.total_bits = static_cast<double>(s.coefficients) * bits_per_coefficient;
  s.total_bytes = s.total_bits / 8.0;
  s.accesses_per_second = config.delays_per_second();
  s.bandwidth_bytes_per_second =
      s.accesses_per_second * bits_per_coefficient / 8.0;
  return s;
}

ReferenceTableSizing reference_table_sizing(
    const imaging::SystemConfig& config, const fx::Format& entry_format) {
  ReferenceTableSizing s;
  const auto& p = config.probe;
  const auto& v = config.volume;
  s.raw_entries = static_cast<std::int64_t>(p.elements_x) * p.elements_y *
                  v.n_depth;
  // With the origin on the probe's vertical axis, the table is mirror-
  // symmetric in x and y; only one quadrant of element columns/rows is kept.
  const std::int64_t qx = (p.elements_x + 1) / 2;
  const std::int64_t qy = (p.elements_y + 1) / 2;
  s.folded_entries = qx * qy * v.n_depth;
  s.bits_per_entry = entry_format.total_bits();
  s.folded_bits = static_cast<double>(s.folded_entries) * s.bits_per_entry;
  return s;
}

SteeringSetSizing steering_set_sizing(const imaging::SystemConfig& config,
                                      const fx::Format& coeff_format) {
  SteeringSetSizing s;
  const auto& p = config.probe;
  const auto& v = config.volume;
  // x corrections: xD * cos(phi) * sin(theta) / c. cos is even in phi, so
  // only n_phi/2 distinct phi values are needed.
  s.x_coefficients = static_cast<std::int64_t>(p.elements_x) *
                     (v.n_phi / 2) * v.n_theta;
  // y corrections: yD * sin(phi) / c, one value per (row, phi).
  s.y_coefficients = static_cast<std::int64_t>(p.elements_y) * v.n_phi;
  s.total_coefficients = s.x_coefficients + s.y_coefficients;
  s.bits_per_coefficient = coeff_format.total_bits();
  s.total_bits =
      static_cast<double>(s.total_coefficients) * s.bits_per_coefficient;
  return s;
}

StreamingSizing streaming_sizing(const imaging::SystemConfig& config,
                                 const fx::Format& entry_format,
                                 const fx::Format& coeff_format,
                                 int bram_banks, std::int64_t lines_per_bank) {
  US3D_EXPECTS(bram_banks > 0 && lines_per_bank > 0);
  StreamingSizing s;
  // The reference table is indexed by (element quadrant, depth) only, so a
  // shot that beamforms any subset of scanlines still sweeps the whole
  // depth range: the full table is re-fetched once per insonification.
  s.table_fetches_per_second = config.plan.shots_per_second();
  const ReferenceTableSizing ref =
      reference_table_sizing(config, entry_format);
  s.bandwidth_bytes_per_second =
      ref.folded_bits / 8.0 * s.table_fetches_per_second;
  s.bram_banks = bram_banks;
  s.bram_lines_per_bank = lines_per_bank;
  s.on_chip_slice_bits = static_cast<double>(bram_banks) *
                         static_cast<double>(lines_per_bank) *
                         entry_format.total_bits();
  s.on_chip_total_bits =
      s.on_chip_slice_bits + steering_set_sizing(config, coeff_format).total_bits;
  return s;
}

}  // namespace us3d::delay
