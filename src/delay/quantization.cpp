#include "delay/quantization.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"
#include "common/prng.h"

namespace us3d::delay {

QuantizationResult run_quantization_experiment(
    const QuantizationExperimentConfig& config) {
  US3D_EXPECTS(config.trials > 0);
  US3D_EXPECTS(config.max_delay_samples > 0.0);
  US3D_EXPECTS(config.max_correction_samples >= 0.0);

  SplitMix64 rng(config.seed);
  QuantizationResult result;
  result.trials = config.trials;

  for (std::int64_t i = 0; i < config.trials; ++i) {
    // A random but physically plausible triple: the reference delay spans
    // the echo buffer; corrections stay inside the steering swing and the
    // summed delay inside the buffer.
    const double ref = rng.next_in(2.0 * config.max_correction_samples,
                                   config.max_delay_samples -
                                       2.0 * config.max_correction_samples);
    const double cx = rng.next_in(-config.max_correction_samples,
                                  config.max_correction_samples);
    const double cy = rng.next_in(-config.max_correction_samples,
                                  config.max_correction_samples);

    const std::int64_t ideal = fx::round_real_to_int(
        ref + cx + cy, fx::Rounding::kHalfUp);

    const fx::Value ref_q = fx::Value::from_real(ref, config.ref_format);
    const fx::Value cx_q = fx::Value::from_real(cx, config.corr_format);
    const fx::Value cy_q = fx::Value::from_real(cy, config.corr_format);
    const fx::Value sum0 = fx::add(ref_q, cx_q, config.sum_format);
    const fx::Value sum1 = fx::add(sum0, cy_q, config.sum_format);
    const std::int64_t hw = sum1.round_to_int(fx::Rounding::kHalfUp);

    const std::int64_t diff = std::abs(hw - ideal);
    if (diff != 0) ++result.changed;
    result.max_abs_index_diff = std::max(result.max_abs_index_diff, diff);
  }
  return result;
}

}  // namespace us3d::delay
