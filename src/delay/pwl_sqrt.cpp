#include "delay/pwl_sqrt.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"

namespace us3d::delay {

namespace {

/// Maximum deviation between sqrt and its chord on [a, b]. For the concave
/// sqrt, the worst point x* satisfies f'(x*) = chord slope, i.e.
/// x* = 1 / (4 s^2), and the deviation is f(x*) - chord(x*).
double chord_deviation(double a, double b) {
  if (b <= a) return 0.0;
  const double s = (std::sqrt(b) - std::sqrt(a)) / (b - a);
  const double x_star = 1.0 / (4.0 * s * s);
  const double chord_at_star = std::sqrt(a) + s * (x_star - a);
  return std::sqrt(x_star) - chord_at_star;
}

}  // namespace

PwlSqrt::PwlSqrt(std::vector<PwlSegment> segments, double x_min, double x_max,
                 double delta)
    : segments_(std::move(segments)), x_min_(x_min), x_max_(x_max),
      delta_(delta) {}

PwlSqrt PwlSqrt::build(double x_min, double x_max, double delta) {
  US3D_EXPECTS(x_min > 0.0);
  US3D_EXPECTS(x_max > x_min);
  US3D_EXPECTS(delta > 0.0);

  std::vector<PwlSegment> segments;
  double a = x_min;
  while (a < x_max) {
    // Find the largest b in (a, x_max] whose minimax error (half the chord
    // deviation) stays within delta. Exponential probe, then bisection.
    double lo = a;
    double hi = x_max;
    if (chord_deviation(a, x_max) / 2.0 > delta) {
      double probe = a + 1.0;
      while (probe < x_max && chord_deviation(a, probe) / 2.0 <= delta) {
        lo = probe;
        probe = a + (probe - a) * 2.0;
      }
      hi = std::min(probe, x_max);
      for (int i = 0; i < 80 && hi - lo > 1e-9 * hi; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (chord_deviation(a, mid) / 2.0 <= delta) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
    } else {
      lo = x_max;
    }
    const double b = lo;
    US3D_ENSURES(b > a);
    const double s = (std::sqrt(b) - std::sqrt(a)) / (b - a);
    const double half_dev = chord_deviation(a, b) / 2.0;
    // Minimax fit: chord raised by half the deviation.
    segments.push_back(PwlSegment{a, s, std::sqrt(a) + half_dev});
    a = b;
  }
  US3D_ENSURES(!segments.empty());
  return PwlSqrt(std::move(segments), x_min, x_max, delta);
}

std::size_t PwlSqrt::find_segment(double x) const {
  US3D_EXPECTS(x >= x_min_ && x <= x_max_);
  // First segment whose start is > x, minus one.
  const auto it = std::upper_bound(
      segments_.begin(), segments_.end(), x,
      [](double v, const PwlSegment& seg) { return v < seg.x_start; });
  return static_cast<std::size_t>(std::distance(segments_.begin(), it)) - 1;
}

double PwlSqrt::evaluate_in_segment(double x, std::size_t segment) const {
  US3D_EXPECTS(segment < segments_.size());
  const PwlSegment& seg = segments_[segment];
  return seg.value + seg.slope * (x - seg.x_start);
}

double PwlSqrt::evaluate(double x) const {
  return evaluate_in_segment(x, find_segment(x));
}

double PwlSqrt::measured_max_error(std::size_t samples_per_segment) const {
  US3D_EXPECTS(samples_per_segment >= 2);
  double worst = 0.0;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const double a = segments_[i].x_start;
    const double b =
        i + 1 < segments_.size() ? segments_[i + 1].x_start : x_max_;
    for (std::size_t k = 0; k <= samples_per_segment; ++k) {
      const double x = a + (b - a) * static_cast<double>(k) /
                               static_cast<double>(samples_per_segment);
      worst = std::max(worst,
                       std::abs(evaluate_in_segment(x, i) - std::sqrt(x)));
    }
  }
  return worst;
}

FixedPwlSqrt::FixedPwlSqrt(const PwlSqrt& reference, const Config& config)
    : config_(config) {
  const auto& segs = reference.segments();
  x_starts_.reserve(segs.size());
  slopes_.reserve(segs.size());
  values_.reserve(segs.size());
  for (const PwlSegment& seg : segs) {
    // Hardware anchors each segment at an integer boundary (the squared
    // distances it sees are integers).
    x_starts_.push_back(static_cast<std::int64_t>(std::floor(seg.x_start)));
    slopes_.push_back(fx::Value::from_real(seg.slope, config.slope_format));
    values_.push_back(fx::Value::from_real(seg.value, config.value_format));
  }
}

double FixedPwlSqrt::lut_bits() const {
  // x_start boundaries are stored at the input width (26 bits covers the
  // squared-distance range of the paper system).
  constexpr int kBoundaryBits = 26;
  return static_cast<double>(segment_count()) *
         (config_.slope_format.total_bits() + config_.value_format.total_bits() +
          kBoundaryBits);
}

fx::Value FixedPwlSqrt::evaluate_in_segment(std::int64_t x,
                                            std::size_t segment) const {
  US3D_EXPECTS(segment < slopes_.size());
  US3D_EXPECTS(x >= 0);
  const std::int64_t dx = x - x_starts_[segment];
  // One multiplier: c1 * dx, then one adder: + c0 (Fig. 2a). dx fits the
  // multiplier input: segments are widest at the top of the domain
  // (~2^21 sample^2 for the paper system).
  const fx::Value prod =
      fx::mul(slopes_[segment],
              fx::Value::from_raw(dx, fx::Format{40, 0, true}),
              fx::Format{20, config_.result_format.fraction_bits, true});
  return fx::add(prod, values_[segment], config_.result_format);
}

}  // namespace us3d::delay
