#include "delay/reference_table.h"

#include <cmath>

#include "common/contracts.h"
#include "delay/exact.h"
#include "imaging/volume.h"

namespace us3d::delay {

ReferenceDelayTable::ReferenceDelayTable(
    const imaging::SystemConfig& config,
    const ReferenceTableConfig& table_config)
    : config_(config),
      probe_(config.probe),
      format_(table_config.entry_format),
      origin_z_(table_config.origin_z) {
  quad_x_ = (probe_.elements_x() + 1) / 2;
  quad_y_ = (probe_.elements_y() + 1) / 2;
  depths_ = config.volume.n_depth;

  const imaging::VolumeGrid grid(config.volume);
  raw_.resize(static_cast<std::size_t>(quad_x_) *
              static_cast<std::size_t>(quad_y_) *
              static_cast<std::size_t>(depths_));
  prunable_mask_.assign(raw_.size(), false);

  // Representative quadrant element for qx: the full-grid column with the
  // largest x (they all share |x| with their mirror).
  for (int qx = 0; qx < quad_x_; ++qx) {
    const double ex = std::abs(probe_.column_x(probe_.elements_x() - 1 - qx));
    for (int qy = 0; qy < quad_y_; ++qy) {
      const double ey = std::abs(probe_.row_y(probe_.elements_y() - 1 - qy));
      const Vec3 elem{ex, ey, 0.0};
      const Vec3 origin{0.0, 0.0, table_config.origin_z};
      for (int k = 0; k < depths_; ++k) {
        const double r = grid.radius(k);
        const Vec3 point{0.0, 0.0, r};
        const double t_samples = config.seconds_to_samples(
            two_way_delay_s(origin, point, elem, config.speed_of_sound));
        const fx::Value v = fx::Value::from_real(t_samples, format_);
        const std::size_t i = index(qx, qy, k);
        raw_[i] = static_cast<std::int32_t>(v.raw());
        if (table_config.pruning &&
            !table_config.pruning->accepts(elem, point)) {
          prunable_mask_[i] = true;
          ++prunable_;
        }
      }
    }
  }
}

int ReferenceDelayTable::fold_x(int ix) const {
  US3D_EXPECTS(ix >= 0 && ix < probe_.elements_x());
  // Mirror columns ix and (nx-1-ix) share |x|; index so that qx = 0 is the
  // outermost column (largest |x|), matching the build loop.
  return std::min(ix, probe_.elements_x() - 1 - ix);
}

int ReferenceDelayTable::fold_y(int iy) const {
  US3D_EXPECTS(iy >= 0 && iy < probe_.elements_y());
  return std::min(iy, probe_.elements_y() - 1 - iy);
}

std::size_t ReferenceDelayTable::index(int qx, int qy, int i_depth) const {
  US3D_EXPECTS(qx >= 0 && qx < quad_x_);
  US3D_EXPECTS(qy >= 0 && qy < quad_y_);
  US3D_EXPECTS(i_depth >= 0 && i_depth < depths_);
  return (static_cast<std::size_t>(qx) * static_cast<std::size_t>(quad_y_) +
          static_cast<std::size_t>(qy)) *
             static_cast<std::size_t>(depths_) +
         static_cast<std::size_t>(i_depth);
}

fx::Value ReferenceDelayTable::entry(int ix, int iy, int i_depth) const {
  return entry_quad(fold_x(ix), fold_y(iy), i_depth);
}

fx::Value ReferenceDelayTable::entry_quad(int qx, int qy, int i_depth) const {
  return fx::Value::from_raw(raw_[index(qx, qy, i_depth)], format_);
}

double ReferenceDelayTable::entry_real(int ix, int iy, int i_depth) const {
  return entry(ix, iy, i_depth).to_real();
}

double ReferenceDelayTable::exact_entry_samples(int ix, int iy,
                                                int i_depth) const {
  const imaging::VolumeGrid grid(config_.volume);
  const Vec3 elem = probe_.element_position(ix, iy);
  const Vec3 point{0.0, 0.0, grid.radius(i_depth)};
  // Folding uses |x|, |y|, so the stored entry corresponds to the mirrored
  // element with the largest coordinates; |R-D| is mirror-invariant.
  return config_.seconds_to_samples(
      two_way_delay_s(origin(), point, elem, config_.speed_of_sound));
}

std::int64_t ReferenceDelayTable::entry_count() const {
  return static_cast<std::int64_t>(raw_.size());
}

double ReferenceDelayTable::storage_bits() const {
  return static_cast<double>(entry_count()) * format_.total_bits();
}

double ReferenceDelayTable::prunable_fraction() const {
  return entry_count() ? static_cast<double>(prunable_) /
                             static_cast<double>(entry_count())
                       : 0.0;
}

bool ReferenceDelayTable::is_prunable(int qx, int qy, int i_depth) const {
  return prunable_mask_[index(qx, qy, i_depth)];
}

}  // namespace us3d::delay
