#include "delay/steering.h"

#include <cmath>

#include "common/contracts.h"
#include "delay/exact.h"
#include "imaging/volume.h"
#include "probe/transducer.h"

namespace us3d::delay {

double steering_correction_samples(const imaging::SystemConfig& config,
                                   double theta, double phi, double element_x,
                                   double element_y) {
  const double correction_s =
      -(element_x * std::cos(phi) * std::sin(theta) +
        element_y * std::sin(phi)) /
      config.speed_of_sound;
  return config.seconds_to_samples(correction_s);
}

double steered_delay_samples(const imaging::SystemConfig& config,
                             const imaging::FocalPoint& fp,
                             const Vec3& element_pos) {
  // Reference point R on the Z axis at the same radius (Eq. 4).
  const Vec3 r{0.0, 0.0, fp.radius};
  const double t_ref = config.seconds_to_samples(
      two_way_delay_s(Vec3{}, r, element_pos, config.speed_of_sound));
  return t_ref + steering_correction_samples(config, fp.theta, fp.phi,
                                             element_pos.x, element_pos.y);
}

SteeringCorrections::SteeringCorrections(const imaging::SystemConfig& config,
                                         const fx::Format& coeff_format)
    : config_(config), format_(coeff_format) {
  const probe::MatrixProbe probe(config.probe);
  const imaging::VolumeGrid grid(config.volume);
  n_theta_ = config.volume.n_theta;
  n_phi_ = config.volume.n_phi;
  n_phi_folded_ = (n_phi_ + 1) / 2;
  nx_ = probe.elements_x();
  ny_ = probe.elements_y();

  const double k = config.sampling_frequency_hz / config.speed_of_sound;

  // x corrections: -xD * cos(phi) * sin(theta) * fs/c, folded over |phi|.
  x_raw_.resize(static_cast<std::size_t>(nx_) *
                static_cast<std::size_t>(n_theta_) *
                static_cast<std::size_t>(n_phi_folded_));
  for (int ix = 0; ix < nx_; ++ix) {
    const double ex = probe.column_x(ix);
    for (int it = 0; it < n_theta_; ++it) {
      const double sin_theta = std::sin(grid.theta(it));
      for (int ip = 0; ip < n_phi_folded_; ++ip) {
        // Representative phi for the folded index: the non-negative one.
        const double cos_phi = std::cos(grid.phi(n_phi_ - 1 - ip));
        const double corr = -ex * cos_phi * sin_theta * k;
        x_raw_[x_index(ix, it, ip)] = static_cast<std::int32_t>(
            fx::Value::from_real(corr, format_).raw());
      }
    }
  }

  // y corrections: -yD * sin(phi) * fs/c, one per (row, phi).
  y_raw_.resize(static_cast<std::size_t>(ny_) *
                static_cast<std::size_t>(n_phi_));
  for (int iy = 0; iy < ny_; ++iy) {
    const double ey = probe.row_y(iy);
    for (int ip = 0; ip < n_phi_; ++ip) {
      const double corr = -ey * std::sin(grid.phi(ip)) * k;
      y_raw_[y_index(iy, ip)] = static_cast<std::int32_t>(
          fx::Value::from_real(corr, format_).raw());
    }
  }
}

int SteeringCorrections::fold_phi(int i_phi) const {
  US3D_EXPECTS(i_phi >= 0 && i_phi < n_phi_);
  // phi grid is symmetric: i and (n_phi-1-i) share |phi|; fold so that
  // index 0 is the largest |phi| (matching the build loop's representative).
  return std::min(i_phi, n_phi_ - 1 - i_phi);
}

std::size_t SteeringCorrections::x_index(int ix, int i_theta,
                                         int i_phi_folded) const {
  US3D_EXPECTS(ix >= 0 && ix < nx_);
  US3D_EXPECTS(i_theta >= 0 && i_theta < n_theta_);
  US3D_EXPECTS(i_phi_folded >= 0 && i_phi_folded < n_phi_folded_);
  return (static_cast<std::size_t>(ix) * static_cast<std::size_t>(n_theta_) +
          static_cast<std::size_t>(i_theta)) *
             static_cast<std::size_t>(n_phi_folded_) +
         static_cast<std::size_t>(i_phi_folded);
}

std::size_t SteeringCorrections::y_index(int iy, int i_phi) const {
  US3D_EXPECTS(iy >= 0 && iy < ny_);
  US3D_EXPECTS(i_phi >= 0 && i_phi < n_phi_);
  return static_cast<std::size_t>(iy) * static_cast<std::size_t>(n_phi_) +
         static_cast<std::size_t>(i_phi);
}

fx::Value SteeringCorrections::x_correction(int ix, int i_theta,
                                            int i_phi) const {
  return fx::Value::from_raw(x_raw_[x_index(ix, i_theta, fold_phi(i_phi))],
                             format_);
}

fx::Value SteeringCorrections::y_correction(int iy, int i_phi) const {
  return fx::Value::from_raw(y_raw_[y_index(iy, i_phi)], format_);
}

std::int64_t SteeringCorrections::x_coefficient_count() const {
  return static_cast<std::int64_t>(x_raw_.size());
}

std::int64_t SteeringCorrections::y_coefficient_count() const {
  return static_cast<std::int64_t>(y_raw_.size());
}

std::int64_t SteeringCorrections::coefficient_count() const {
  return x_coefficient_count() + y_coefficient_count();
}

double SteeringCorrections::storage_bits() const {
  return static_cast<double>(coefficient_count()) * format_.total_bits();
}

}  // namespace us3d::delay
