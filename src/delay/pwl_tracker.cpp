#include "delay/pwl_tracker.h"

#include <algorithm>

#include "common/contracts.h"

namespace us3d::delay {

PwlTracker::PwlTracker(const PwlSqrt& table) : table_(&table) {}

PwlTracker::Evaluation PwlTracker::evaluate(double x) {
  US3D_EXPECTS(x >= table_->x_min() && x <= table_->x_max());
  const auto& segs = table_->segments();
  int steps = 0;
  // Step down while x is below the current segment's start.
  while (segment_ > 0 && x < segs[segment_].x_start) {
    --segment_;
    ++steps;
  }
  // Step up while x is at or beyond the next segment's start.
  while (segment_ + 1 < segs.size() && x >= segs[segment_ + 1].x_start) {
    ++segment_;
    ++steps;
  }
  ++evaluations_;
  total_steps_ += steps;
  max_steps_ = std::max(max_steps_, steps);
  return Evaluation{table_->evaluate_in_segment(x, segment_), steps};
}

void PwlTracker::seek(double x) { segment_ = table_->find_segment(x); }

void PwlTracker::rebind(const PwlSqrt& table) {
  US3D_EXPECTS(table.segment_count() == table_->segment_count());
  table_ = &table;
}

void PwlTracker::reset_statistics() {
  total_steps_ = 0;
  evaluations_ = 0;
  max_steps_ = 0;
}

}  // namespace us3d::delay
