// Piecewise-linear approximation of sqrt(x), Figure 2 of the paper.
//
// TABLEFREE evaluates the receive distance sqrt(dx^2+dy^2+dz^2) (in units
// of echo samples) with a segmented linear approximation whose maximum
// error is bounded by a chosen delta (0.25 samples in the paper, needing
// 70 segments). Each segment stores a slope c1 and an anchor value c0 so
// hardware evaluates c1*(x - x_start) + c0 with one multiplier and one
// adder; the minimax offset is folded into c0.
#ifndef US3D_DELAY_PWL_SQRT_H
#define US3D_DELAY_PWL_SQRT_H

#include <cstddef>
#include <vector>

#include "common/fixed_point.h"

namespace us3d::delay {

struct PwlSegment {
  double x_start = 0.0;  ///< segment domain is [x_start, next.x_start)
  double slope = 0.0;    ///< c1: chord slope over the segment
  double value = 0.0;    ///< c0: minimax-adjusted value at x_start
};

/// Double-precision segmented sqrt with per-segment minimax fit.
class PwlSqrt {
 public:
  /// Builds a segmentation of [x_min, x_max] such that the approximation
  /// error of each segment is at most `delta` (same units as sqrt(x)).
  /// Greedy construction: each segment is extended as far as the bound
  /// allows, which is within one segment of optimal for a concave function.
  static PwlSqrt build(double x_min, double x_max, double delta);

  std::size_t segment_count() const { return segments_.size(); }
  const std::vector<PwlSegment>& segments() const { return segments_; }
  double x_min() const { return x_min_; }
  double x_max() const { return x_max_; }
  double delta() const { return delta_; }

  /// Index of the segment containing x (binary search).
  std::size_t find_segment(double x) const;

  /// Approximate sqrt(x) using the given segment (no search).
  double evaluate_in_segment(double x, std::size_t segment) const;

  /// Approximate sqrt(x) with a fresh segment search.
  double evaluate(double x) const;

  /// Largest |approx - sqrt| found by dense sampling (for verification).
  double measured_max_error(std::size_t samples_per_segment = 64) const;

 private:
  PwlSqrt(std::vector<PwlSegment> segments, double x_min, double x_max,
          double delta);
  std::vector<PwlSegment> segments_;
  double x_min_ = 0.0;
  double x_max_ = 0.0;
  double delta_ = 0.0;
};

/// Fixed-point quantization of a PwlSqrt: c1/c0 are stored in LUT formats
/// and evaluation happens on raw integer words, modelling the hardware
/// datapath (one multiplier, one adder, Fig. 2a).
class FixedPwlSqrt {
 public:
  struct Config {
    fx::Format slope_format{1, 22, false};   ///< c1 LUT entries
    fx::Format value_format{13, 8, false};   ///< c0 LUT entries
    fx::Format result_format{13, 6, false};  ///< per-path delay, samples
  };

  FixedPwlSqrt(const PwlSqrt& reference, const Config& config);

  const Config& config() const { return config_; }
  std::size_t segment_count() const { return slopes_.size(); }

  /// Total LUT storage in bits (c1 table + c0 table + x_start table).
  double lut_bits() const;

  /// Evaluates with integer arithmetic. `x` must be a non-negative integer
  /// (squared distances in sample^2 units are integers in hardware).
  /// `segment` comes from a PwlTracker or find_segment on the reference.
  fx::Value evaluate_in_segment(std::int64_t x, std::size_t segment) const;

 private:
  Config config_;
  std::vector<std::int64_t> x_starts_;  // integer segment boundaries
  std::vector<fx::Value> slopes_;
  std::vector<fx::Value> values_;
};

}  // namespace us3d::delay

#endif  // US3D_DELAY_PWL_SQRT_H
