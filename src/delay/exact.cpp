#include "delay/exact.h"

#include <cmath>

#include "common/contracts.h"
#include "common/fixed_point.h"

namespace us3d::delay {

double one_way_delay_s(const Vec3& a, const Vec3& b, double speed_of_sound) {
  US3D_EXPECTS(speed_of_sound > 0.0);
  return a.distance_to(b) / speed_of_sound;
}

double two_way_delay_s(const Vec3& origin, const Vec3& focal,
                       const Vec3& element, double speed_of_sound) {
  US3D_EXPECTS(speed_of_sound > 0.0);
  return (focal.distance_to(origin) + focal.distance_to(element)) /
         speed_of_sound;
}

ExactDelayEngine::ExactDelayEngine(const imaging::SystemConfig& config)
    : config_(config), probe_(config.probe) {}

int ExactDelayEngine::element_count() const { return probe_.element_count(); }

std::unique_ptr<DelayEngine> ExactDelayEngine::clone() const {
  return std::make_unique<ExactDelayEngine>(*this);
}

void ExactDelayEngine::do_begin_frame(const Vec3& origin) { origin_ = origin; }

double ExactDelayEngine::delay_samples(const imaging::FocalPoint& fp,
                                       int flat_element) const {
  const Vec3 d = probe_.element_position(flat_element);
  return config_.seconds_to_samples(
      two_way_delay_s(origin_, fp.position, d, config_.speed_of_sound));
}

void ExactDelayEngine::do_compute(const imaging::FocalPoint& fp,
                                  std::span<std::int32_t> out) {
  US3D_EXPECTS(out.size() == static_cast<std::size_t>(element_count()));
  const double tx =
      config_.seconds_to_samples(
          one_way_delay_s(fp.position, origin_, config_.speed_of_sound));
  for (int e = 0; e < element_count(); ++e) {
    const double rx = config_.seconds_to_samples(one_way_delay_s(
        fp.position, probe_.element_position(e), config_.speed_of_sound));
    out[static_cast<std::size_t>(e)] = static_cast<std::int32_t>(
        fx::round_real_to_int(tx + rx, fx::Rounding::kHalfUp));
  }
}

void ExactDelayEngine::do_compute_block(const imaging::FocalBlock& block,
                                        DelayPlane& plane) {
  const int n = block.size();
  block_tx_.resize(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    block_tx_[static_cast<std::size_t>(p)] = config_.seconds_to_samples(
        one_way_delay_s(block[p].position, origin_, config_.speed_of_sound));
  }
  for (int e = 0; e < element_count(); ++e) {
    const Vec3 d = probe_.element_position(e);
    const std::span<std::int32_t> row = plane.row(e);
    for (int p = 0; p < n; ++p) {
      const double rx = config_.seconds_to_samples(
          one_way_delay_s(block[p].position, d, config_.speed_of_sound));
      row[static_cast<std::size_t>(p)] = static_cast<std::int32_t>(
          fx::round_real_to_int(block_tx_[static_cast<std::size_t>(p)] + rx,
                                fx::Rounding::kHalfUp));
    }
  }
}

}  // namespace us3d::delay
