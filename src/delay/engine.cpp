#include "delay/engine.h"

#include <vector>

namespace us3d::delay {

void DelayEngine::compute_block_reference(const imaging::FocalBlock& block,
                                          DelayPlane& plane) {
  US3D_EXPECTS(frame_begun_);
  plane.reshape(element_count(), block.size());
  if (block.empty()) return;
  DelayEngine::do_compute_block(block, plane);
}

void DelayEngine::do_compute_block(const imaging::FocalBlock& block,
                                   DelayPlane& plane) {
  // Per-point gather row, scattered into the SoA plane. This is the oracle
  // path; native overrides avoid both the allocation and the transpose.
  std::vector<std::int32_t> row(static_cast<std::size_t>(element_count()));
  for (int p = 0; p < block.size(); ++p) {
    do_compute(block[p], row);
    for (int e = 0; e < element_count(); ++e) {
      plane.at(e, p) = row[static_cast<std::size_t>(e)];
    }
  }
}

}  // namespace us3d::delay
