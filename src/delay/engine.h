// Common interface of all delay generators. A delay engine produces, for
// one focal point, the echo-buffer sample index for every probe element —
// exactly what the receive beamformer consumes (Eq. 1: the delay tp is used
// as an index into the echo stream e).
//
// Engines may be stateful and order-sensitive: TABLEFREE tracks the current
// PWL segment per element and therefore expects focal points in a smooth
// scan order (Algorithm 1). Callers must call begin_frame() before a sweep
// and then feed focal points in a single ScanCursor order.
#ifndef US3D_DELAY_ENGINE_H
#define US3D_DELAY_ENGINE_H

#include <cstdint>
#include <span>
#include <string>

#include "common/vec3.h"
#include "imaging/focal_point.h"

namespace us3d::delay {

class DelayEngine {
 public:
  virtual ~DelayEngine() = default;

  /// Human-readable identifier ("EXACT", "TABLEFREE", "TABLESTEER-18b", ...).
  virtual std::string name() const = 0;

  /// Number of receive elements this engine produces delays for; `out` in
  /// compute() must have exactly this many entries (probe flat order).
  virtual int element_count() const = 0;

  /// Resets per-frame state and fixes the transmit origin O for the frame.
  virtual void begin_frame(const Vec3& origin) = 0;

  /// Computes the two-way delay, rounded to an echo-buffer sample index,
  /// for every element at focal point `fp`.
  virtual void compute(const imaging::FocalPoint& fp,
                       std::span<std::int32_t> out) = 0;
};

}  // namespace us3d::delay

#endif  // US3D_DELAY_ENGINE_H
