// Common interface of all delay generators. A delay engine produces, for
// one focal point, the echo-buffer sample index for every probe element —
// exactly what the receive beamformer consumes (Eq. 1: the delay tp is used
// as an index into the echo stream e).
//
// Engines may be stateful and order-sensitive: TABLEFREE tracks the current
// PWL segment per element and therefore expects focal points in a smooth
// scan order (Algorithm 1). Callers must call begin_frame() before a sweep
// and then feed focal points in a single ScanCursor order.
//
// Statefulness contract (enforced here, not per engine): compute() before
// begin_frame() is a precondition violation. begin_frame() fixes the
// transmit origin and resets all per-frame state, so a frame sweep is a
// begin_frame() followed by compute() calls only. clone() produces an
// independently usable engine with identical configuration and tables but
// *no* begun frame — the runtime clones one prototype per worker thread and
// each worker begins its own frame, which is what makes parallel
// reconstruction bit-identical to serial (delay values depend only on the
// focal point and origin, never on the visit order).
//
// Block contract (the batched hot path): compute_block() fills a DelayPlane
// — [element][point] rows — for a FocalBlock, i.e. a contiguous run of
// focal points in the active scan order that never crosses an outer-axis
// boundary (see imaging::BlockCursor). Feeding a frame's blocks in order is
// *equivalent by construction* to feeding its points one by one: delay
// values depend only on (origin, focal point), so per-voxel and block
// sweeps are bit-identical, and compute() and compute_block() may even be
// interleaved within one frame. What the block form buys is amortization:
// one virtual dispatch per run instead of per voxel, per-element state
// advanced once across the whole run (TABLEFREE's PWL trackers walk their
// segment monotonically along a smooth run — exactly Algorithm 1's
// intention), and per-block invariants hoisted out of inner loops
// (TABLESTEER reads its reference-table entry once per element when the
// block's depth is uniform, which kNappeByNappe blocks always are). The
// caller passes a reusable DelayPlane scratch; reshape() grows it once and
// steady-state sweeps allocate nothing. compute_block_reference() is the
// non-virtual per-point oracle the property tests pin every native block
// implementation against.
#ifndef US3D_DELAY_ENGINE_H
#define US3D_DELAY_ENGINE_H

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/contracts.h"
#include "common/vec3.h"
#include "delay/delay_plane.h"
#include "imaging/focal_block.h"
#include "imaging/focal_point.h"

namespace us3d::delay {

class DelayEngine {
 public:
  virtual ~DelayEngine() = default;

  /// Human-readable identifier ("EXACT", "TABLEFREE", "TABLESTEER-18b", ...).
  virtual std::string name() const = 0;

  /// Number of receive elements this engine produces delays for; `out` in
  /// compute() must have exactly this many entries (probe flat order).
  virtual int element_count() const = 0;

  /// Deep copy with identical configuration and precomputed tables. The
  /// clone shares nothing mutable with the original and starts with no
  /// begun frame, so engine and clone can sweep concurrently on different
  /// threads once each has called begin_frame().
  virtual std::unique_ptr<DelayEngine> clone() const = 0;

  /// Resets per-frame state and fixes the transmit origin O for the frame.
  void begin_frame(const Vec3& origin) {
    do_begin_frame(origin);
    frame_begun_ = true;
  }

  /// Computes the two-way delay, rounded to an echo-buffer sample index,
  /// for every element at focal point `fp`. begin_frame() must have been
  /// called first (a cloned engine does not inherit the prototype's frame).
  void compute(const imaging::FocalPoint& fp, std::span<std::int32_t> out) {
    US3D_EXPECTS(frame_begun_);  // compute() before begin_frame()
    do_compute(fp, out);
  }

  /// Batched form: fills `plane` (reshaped to element_count() x
  /// block.size()) for a smooth-order run. Bit-identical to calling
  /// compute() on each point in block order; see the block contract above.
  void compute_block(const imaging::FocalBlock& block, DelayPlane& plane) {
    US3D_EXPECTS(frame_begun_);
    plane.reshape(element_count(), block.size());
    if (!block.empty()) do_compute_block(block, plane);
  }

  /// The per-point oracle: the exact loop-over-compute() path the block
  /// implementations must reproduce bit-for-bit. Non-virtual on purpose —
  /// property tests run it on a clone and compare against compute_block().
  /// Allocates a per-call gather row; never use it on a hot path.
  void compute_block_reference(const imaging::FocalBlock& block,
                               DelayPlane& plane);

  /// Whether begin_frame() has been called on *this* instance.
  bool frame_begun() const { return frame_begun_; }

 protected:
  DelayEngine() = default;
  // Copies never inherit a begun frame — neither the source's (copy) nor
  // the target's previous one (assignment): the result must get its own
  // begin_frame() before compute().
  DelayEngine(const DelayEngine&) : frame_begun_(false) {}
  DelayEngine& operator=(const DelayEngine&) {
    frame_begun_ = false;
    return *this;
  }

  virtual void do_begin_frame(const Vec3& origin) = 0;
  virtual void do_compute(const imaging::FocalPoint& fp,
                          std::span<std::int32_t> out) = 0;
  /// Default: the per-point reference loop. Every shipped engine overrides
  /// this with a native batched implementation; the fallback keeps custom
  /// engines correct and is what compute_block_reference() runs.
  virtual void do_compute_block(const imaging::FocalBlock& block,
                                DelayPlane& plane);

 private:
  bool frame_begun_ = false;
};

}  // namespace us3d::delay

#endif  // US3D_DELAY_ENGINE_H
