#include "delay/quantized_plane.h"

#include "common/contracts.h"
#include "simd/dispatch.h"

namespace us3d::delay {

void QuantizedDelayPlane::quantize_from(const DelayPlane& plane,
                                        std::int64_t samples) {
  US3D_EXPECTS(samples > 0);
  US3D_EXPECTS(samples <= simd::kQuantMaxSamples);
  elements_ = plane.element_count();
  points_ = plane.point_count();
  // 32 int16 entries = one 64-byte cache line per pitch step.
  constexpr std::size_t kLine = 32;
  stride_ = (static_cast<std::size_t>(points_) + kLine - 1) / kLine * kLine;
  const std::size_t needed = static_cast<std::size_t>(elements_) * stride_;
  if (needed > data_.size()) data_.resize(needed);

  const std::int16_t sentinel = static_cast<std::int16_t>(samples);
  for (int e = 0; e < elements_; ++e) {
    const std::int32_t* src = plane.row(e).data();
    std::int16_t* dst = data_.data() + static_cast<std::size_t>(e) * stride_;
    for (int p = 0; p < points_; ++p) {
      const std::int32_t d = src[p];
      // samples <= 32767 makes the window bound also fit int16, so every
      // in-window index round-trips exactly and the sentinel `samples` —
      // which addresses the echo rows' guaranteed-zero padding — is
      // representable too. Sanitizing here is what lets the integer row
      // kernels run compare-free unmasked sweeps.
      dst[p] = (d >= 0 && d < samples) ? static_cast<std::int16_t>(d)
                                       : sentinel;
    }
    // Sentinel-fill the pitch padding so kernels may sweep whole rows
    // rounded up to padded_point_count() — the padding reads the echo
    // rows' zeroed tail and contributes exactly nothing, and no row ever
    // needs a sub-vector tail loop.
    for (std::size_t p = static_cast<std::size_t>(points_); p < stride_; ++p) {
      dst[p] = sentinel;
    }
  }
}

}  // namespace us3d::delay
