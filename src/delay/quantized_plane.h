// Int16 mirror of DelayPlane for the quantized DAS path (simd/dispatch.h,
// DasRowQFn): same [element][point] SoA layout, rows padded to a 64-byte
// pitch (32 int16 entries), quantized once per focal block from the plane
// the delay engine just filled. In-window indices are preserved *exactly*;
// everything else becomes the sentinel `samples`, which addresses the
// guaranteed-zero padding of beamform::QuantizedEchoBuffer rows — the same
// clamp-to-zero the double contract applies, but resolved here once so the
// integer row kernels run compare-free unmasked sweeps. Index quantization
// therefore adds zero delay error on top of the engine's own rounding.
//
// Like DelayPlane this is per-worker scratch: capacity grows monotonically
// and is never released, so steady-state frames quantize with zero
// allocation.
#ifndef US3D_DELAY_QUANTIZED_PLANE_H
#define US3D_DELAY_QUANTIZED_PLANE_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned.h"
#include "delay/delay_plane.h"

namespace us3d::delay {

class QuantizedDelayPlane {
 public:
  QuantizedDelayPlane() = default;

  /// Reshapes to mirror `plane` and quantizes every entry against an
  /// acquisition window of `samples`. Requires samples in
  /// (0, simd::kQuantMaxSamples] — longer windows cannot be addressed by
  /// int16 indices and are rejected rather than silently truncated.
  void quantize_from(const DelayPlane& plane, std::int64_t samples);

  int element_count() const { return elements_; }
  int point_count() const { return points_; }
  /// Padded row pitch in entries (a multiple of 32 int16 = 64 bytes).
  std::size_t row_stride() const { return stride_; }

  /// Point count rounded up to a whole 16-lane vector (<= row_stride()).
  /// Entries in [point_count(), padded_point_count()) are sentinel-filled
  /// by quantize_from, so a kernel sweeping this many points per row does
  /// the identical accumulation with no scalar tail — the padding lanes
  /// read guaranteed-zero echo entries and add 0.
  int padded_point_count() const { return (points_ + 15) / 16 * 16; }

  /// One element's quantized delays, densely packed (size = points).
  std::span<const std::int16_t> row(int element) const {
    return {data_.data() + static_cast<std::size_t>(element) * stride_,
            static_cast<std::size_t>(points_)};
  }

  std::int16_t at(int element, int point) const {
    return data_[static_cast<std::size_t>(element) * stride_ +
                 static_cast<std::size_t>(point)];
  }

 private:
  int elements_ = 0;
  int points_ = 0;
  std::size_t stride_ = 0;
  std::vector<std::int16_t, AlignedAllocator<std::int16_t, 64>> data_;
};

}  // namespace us3d::delay

#endif  // US3D_DELAY_QUANTIZED_PLANE_H
