// Exact (double-precision) delay computation, Eq. (2)/(3) of the paper.
// This is the accuracy reference every approximate architecture is judged
// against, and also the generator used to fill precomputed tables.
#ifndef US3D_DELAY_EXACT_H
#define US3D_DELAY_EXACT_H

#include <memory>
#include <vector>

#include "delay/engine.h"
#include "imaging/system_config.h"

namespace us3d::delay {

/// One-way propagation delay |a - b| / c in seconds.
double one_way_delay_s(const Vec3& a, const Vec3& b, double speed_of_sound);

/// Two-way delay tp(O, S, D) = (|S-O| + |S-D|) / c in seconds (Eq. 2).
double two_way_delay_s(const Vec3& origin, const Vec3& focal,
                       const Vec3& element, double speed_of_sound);

/// Stateless reference engine: evaluates Eq. (2) in double precision per
/// element and rounds to the nearest echo sample.
class ExactDelayEngine final : public DelayEngine {
 public:
  explicit ExactDelayEngine(const imaging::SystemConfig& config);

  std::string name() const override { return "EXACT"; }
  int element_count() const override;
  std::unique_ptr<DelayEngine> clone() const override;

  /// Unrounded two-way delay in echo samples, for error analyses.
  double delay_samples(const imaging::FocalPoint& fp, int flat_element) const;

  const probe::MatrixProbe& probe() const { return probe_; }
  const imaging::SystemConfig& config() const { return config_; }

 protected:
  void do_begin_frame(const Vec3& origin) override;
  void do_compute(const imaging::FocalPoint& fp,
                  std::span<std::int32_t> out) override;
  /// Native block path: the transmit leg is evaluated once per point for
  /// the whole run, then each element sweeps its contiguous plane row.
  void do_compute_block(const imaging::FocalBlock& block,
                        DelayPlane& plane) override;

 private:
  imaging::SystemConfig config_;
  probe::MatrixProbe probe_;
  Vec3 origin_{};
  std::vector<double> block_tx_;  // per-block transmit delays, reused
};

}  // namespace us3d::delay

#endif  // US3D_DELAY_EXACT_H
