// The fixed-point storage Monte-Carlo of Sec. VI-A: draw random (reference
// delay, x correction, y correction) triples, store them in the hardware
// formats, sum and round to an echo-sample index, and count how often the
// index differs from the one computed in high precision. The paper reports
// 33% of selections changed with 13-bit integer storage vs <2% with 18-bit
// (Q13.5) storage, with a maximum difference of +/-1 sample either way.
#ifndef US3D_DELAY_QUANTIZATION_H
#define US3D_DELAY_QUANTIZATION_H

#include <cstdint>

#include "common/fixed_point.h"

namespace us3d::delay {

struct QuantizationExperimentConfig {
  fx::Format ref_format = fx::kRefDelay18;
  fx::Format corr_format = fx::kCorrection18;
  fx::Format sum_format{14, 5, true};
  std::int64_t trials = 10'000'000;    ///< the paper's 10e6 random inputs
  std::uint64_t seed = 0x3D0017A50ULL;  ///< deterministic default
  double max_delay_samples = 8000.0;   ///< echo-buffer span
  double max_correction_samples = 220.0;  ///< worst-case steering swing
};

struct QuantizationResult {
  std::int64_t trials = 0;
  std::int64_t changed = 0;          ///< selection index differs from ideal
  std::int64_t max_abs_index_diff = 0;
  double fraction_changed() const {
    return trials ? static_cast<double>(changed) /
                        static_cast<double>(trials)
                  : 0.0;
  }
};

QuantizationResult run_quantization_experiment(
    const QuantizationExperimentConfig& config);

}  // namespace us3d::delay

#endif  // US3D_DELAY_QUANTIZATION_H
