#include "delay/error_harness.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/contracts.h"
#include "common/fixed_point.h"
#include "delay/exact.h"
#include "delay/steering.h"

namespace us3d::delay {

namespace {

/// Visits focal points in the requested order, skipping those that do not
/// match the strides. Engines still see a smooth (strided) progression.
template <typename Fn>
void strided_sweep(const imaging::SystemConfig& config,
                   imaging::ScanOrder order, const SweepStrides& strides,
                   Fn&& fn) {
  US3D_EXPECTS(strides.theta > 0 && strides.phi > 0 && strides.depth > 0);
  const imaging::VolumeGrid grid(config.volume);
  imaging::for_each_focal_point(grid, order, [&](const imaging::FocalPoint& fp) {
    if (fp.i_theta % strides.theta != 0) return;
    if (fp.i_phi % strides.phi != 0) return;
    if (fp.i_depth % strides.depth != 0) return;
    fn(fp);
  });
}

}  // namespace

SelectionErrorReport measure_selection_error(
    const imaging::SystemConfig& config, DelayEngine& engine,
    imaging::ScanOrder order, const SweepStrides& strides,
    const std::optional<probe::Directivity>& directivity) {
  US3D_EXPECTS(strides.element_x > 0 && strides.element_y > 0);
  SelectionErrorReport report;
  const probe::MatrixProbe probe(config.probe);
  ExactDelayEngine exact(config);
  exact.begin_frame(Vec3{});
  engine.begin_frame(Vec3{});

  const auto n = static_cast<std::size_t>(engine.element_count());
  std::vector<std::int32_t> approx(n);

  strided_sweep(config, order, strides, [&](const imaging::FocalPoint& fp) {
    engine.compute(fp, approx);
    for (int iy = 0; iy < probe.elements_y(); iy += strides.element_y) {
      for (int ix = 0; ix < probe.elements_x(); ix += strides.element_x) {
        const int e = probe.flat_index(ix, iy);
        const double exact_samples = exact.delay_samples(fp, e);
        const auto exact_index =
            fx::round_real_to_int(exact_samples, fx::Rounding::kHalfUp);
        const double err = static_cast<double>(
            approx[static_cast<std::size_t>(e)] - exact_index);
        report.all.add(err);
        ++report.pairs_total;
        if (!directivity ||
            directivity->accepts(probe.element_position(e), fp.position)) {
          report.filtered.add(err);
          ++report.pairs_in_directivity;
        }
      }
    }
  });
  return report;
}

AlgorithmicSteeringReport measure_steering_algorithmic_error(
    const imaging::SystemConfig& config, const SweepStrides& strides,
    const std::optional<probe::Directivity>& directivity) {
  US3D_EXPECTS(strides.element_x > 0 && strides.element_y > 0);
  AlgorithmicSteeringReport report;
  const probe::MatrixProbe probe(config.probe);
  RunningStats seconds_filtered;

  strided_sweep(config, imaging::ScanOrder::kNappeByNappe, strides,
                [&](const imaging::FocalPoint& fp) {
    for (int iy = 0; iy < probe.elements_y(); iy += strides.element_y) {
      for (int ix = 0; ix < probe.elements_x(); ix += strides.element_x) {
        const Vec3 elem = probe.element_position(ix, iy);
        const double exact_samples = config.seconds_to_samples(
            two_way_delay_s(Vec3{}, fp.position, elem,
                            config.speed_of_sound));
        const double steered = steered_delay_samples(config, fp, elem);
        const double err_samples = steered - exact_samples;
        const double err_seconds =
            std::abs(config.samples_to_seconds(err_samples));
        report.samples_all.add(err_samples);
        report.max_error_seconds_all =
            std::max(report.max_error_seconds_all, err_seconds);
        if (!directivity || directivity->accepts(elem, fp.position)) {
          report.samples_filtered.add(err_samples);
          seconds_filtered.add(err_seconds);
          report.max_error_seconds_filtered =
              std::max(report.max_error_seconds_filtered, err_seconds);
        }
      }
    }
  });
  report.mean_error_seconds_filtered = seconds_filtered.mean();
  return report;
}

WeightedSteeringReport measure_steering_weighted_error(
    const imaging::SystemConfig& config, const SweepStrides& strides,
    const probe::ApodizationMap& apodization,
    const probe::Directivity& directivity) {
  US3D_EXPECTS(strides.element_x > 0 && strides.element_y > 0);
  const probe::MatrixProbe probe(config.probe);
  US3D_EXPECTS(apodization.elements_x() == probe.elements_x());
  US3D_EXPECTS(apodization.elements_y() == probe.elements_y());

  WeightedSteeringReport report;
  double weighted_sum = 0.0;

  // First pass quantities are accumulated together with a running maximum
  // weight so the significance threshold is well-defined.
  struct Sample {
    double weight;
    double abs_err;
  };
  std::vector<Sample> samples;

  strided_sweep(config, imaging::ScanOrder::kNappeByNappe, strides,
                [&](const imaging::FocalPoint& fp) {
    for (int iy = 0; iy < probe.elements_y(); iy += strides.element_y) {
      for (int ix = 0; ix < probe.elements_x(); ix += strides.element_x) {
        const Vec3 elem = probe.element_position(ix, iy);
        const double w =
            apodization.weight(ix, iy) *
            directivity.amplitude(
                probe::Directivity::angle_to(elem, fp.position));
        const double exact_samples = config.seconds_to_samples(
            two_way_delay_s(Vec3{}, fp.position, elem,
                            config.speed_of_sound));
        const double err =
            std::abs(steered_delay_samples(config, fp, elem) -
                     exact_samples);
        weighted_sum += w * err;
        report.total_weight += w;
        samples.push_back({w, err});
      }
    }
  });

  if (report.total_weight > 0.0) {
    report.weighted_mean_abs_samples = weighted_sum / report.total_weight;
  }
  double max_weight = 0.0;
  for (const Sample& s : samples) max_weight = std::max(max_weight, s.weight);
  for (const Sample& s : samples) {
    if (s.weight > 0.01 * max_weight) {
      report.max_abs_samples_significant =
          std::max(report.max_abs_samples_significant, s.abs_err);
    }
  }
  return report;
}

}  // namespace us3d::delay
