#include "delay/delay_plane.h"

#include "common/contracts.h"

namespace us3d::delay {

void DelayPlane::reshape(int elements, int points) {
  US3D_EXPECTS(elements > 0);
  US3D_EXPECTS(points >= 0);
  elements_ = elements;
  points_ = points;
  // 16 int32 entries = one 64-byte cache line per pitch step.
  constexpr std::size_t kLine = 16;
  stride_ = (static_cast<std::size_t>(points) + kLine - 1) / kLine * kLine;
  const std::size_t needed = static_cast<std::size_t>(elements) * stride_;
  if (needed > data_.size()) data_.resize(needed);
}

}  // namespace us3d::delay
