// Steering corrections (Sec. V-A): the tilted plane that adapts the
// on-axis reference delay table to a steered line of sight (theta, phi):
//
//   tp(O,S,D) ~= tp(O,R,D) - (xD cos(phi) sin(theta) + yD sin(phi)) / c
//
// The correction separates into a per-column term (depends on xD, theta,
// phi) and a per-row term (depends on yD, phi). Both are precomputed into
// signed fixed-point (Q13.4 at 18 bits); cos(phi) is even, so x-corrections
// are stored for half the phi range only — giving the paper's
// ex*(n_phi/2)*n_theta + ey*n_phi = 832e3 coefficients.
#ifndef US3D_DELAY_STEERING_H
#define US3D_DELAY_STEERING_H

#include <cstdint>
#include <vector>

#include "common/fixed_point.h"
#include "imaging/focal_point.h"
#include "imaging/system_config.h"

namespace us3d::delay {

/// Double-precision steering correction in echo samples (the exact value
/// the coefficients quantize): -(xD cos(phi) sin(theta) + yD sin(phi)) * fs/c.
double steering_correction_samples(const imaging::SystemConfig& config,
                                   double theta, double phi, double element_x,
                                   double element_y);

/// Double-precision steered delay (Eq. 7) in echo samples: exact reference
/// delay for the same radius plus the correction plane. This isolates the
/// *algorithmic* (far-field Taylor) error from fixed-point effects.
double steered_delay_samples(const imaging::SystemConfig& config,
                             const imaging::FocalPoint& fp,
                             const Vec3& element_pos);

/// Precomputed fixed-point correction coefficient set.
class SteeringCorrections {
 public:
  SteeringCorrections(const imaging::SystemConfig& config,
                      const fx::Format& coeff_format = fx::kCorrection18);

  /// Correction contribution of element column ix for line (i_theta, i_phi).
  fx::Value x_correction(int ix, int i_theta, int i_phi) const;
  /// Correction contribution of element row iy for elevation i_phi.
  fx::Value y_correction(int iy, int i_phi) const;

  std::int64_t x_coefficient_count() const;
  std::int64_t y_coefficient_count() const;
  std::int64_t coefficient_count() const;
  double storage_bits() const;

  const fx::Format& coeff_format() const { return format_; }

 private:
  /// Index of |phi| in the folded phi table.
  int fold_phi(int i_phi) const;
  std::size_t x_index(int ix, int i_theta, int i_phi_folded) const;
  std::size_t y_index(int iy, int i_phi) const;

  imaging::SystemConfig config_;
  fx::Format format_;
  int n_theta_ = 0;
  int n_phi_ = 0;
  int n_phi_folded_ = 0;
  int nx_ = 0;
  int ny_ = 0;
  std::vector<std::int32_t> x_raw_;
  std::vector<std::int32_t> y_raw_;
};

}  // namespace us3d::delay

#endif  // US3D_DELAY_STEERING_H
