#include "delay/full_table.h"

#include "common/contracts.h"
#include "delay/exact.h"
#include "imaging/scan_order.h"

namespace us3d::delay {

FullTableEngine::FullTableEngine(const imaging::SystemConfig& config,
                                 std::int64_t max_entries)
    : config_(config), probe_(config.probe) {
  const std::int64_t entries = config.delays_per_frame();
  US3D_EXPECTS(entries <= max_entries);
  table_.resize(static_cast<std::size_t>(entries));

  ExactDelayEngine exact(config);
  exact.begin_frame(Vec3{});
  const imaging::VolumeGrid grid(config.volume);
  const auto n_elements = static_cast<std::size_t>(probe_.element_count());
  imaging::for_each_focal_point(
      grid, imaging::ScanOrder::kNappeByNappe,
      [&](const imaging::FocalPoint& fp) {
        const std::size_t base =
            base_index(fp.i_theta, fp.i_phi, fp.i_depth);
        exact.compute(fp, std::span<std::int32_t>(&table_[base], n_elements));
      });
}

int FullTableEngine::element_count() const { return probe_.element_count(); }

std::unique_ptr<DelayEngine> FullTableEngine::clone() const {
  return std::make_unique<FullTableEngine>(*this);
}

void FullTableEngine::do_begin_frame(const Vec3& origin) {
  // The table was precomputed for the centred origin.
  US3D_EXPECTS(origin == Vec3{});
}

std::size_t FullTableEngine::base_index(int i_theta, int i_phi,
                                        int i_depth) const {
  const auto& v = config_.volume;
  US3D_EXPECTS(i_theta >= 0 && i_theta < v.n_theta);
  US3D_EXPECTS(i_phi >= 0 && i_phi < v.n_phi);
  US3D_EXPECTS(i_depth >= 0 && i_depth < v.n_depth);
  const std::size_t point_index =
      (static_cast<std::size_t>(i_theta) * static_cast<std::size_t>(v.n_phi) +
       static_cast<std::size_t>(i_phi)) *
          static_cast<std::size_t>(v.n_depth) +
      static_cast<std::size_t>(i_depth);
  return point_index * static_cast<std::size_t>(probe_.element_count());
}

void FullTableEngine::do_compute(const imaging::FocalPoint& fp,
                                 std::span<std::int32_t> out) {
  US3D_EXPECTS(out.size() == static_cast<std::size_t>(element_count()));
  const std::size_t base = base_index(fp.i_theta, fp.i_phi, fp.i_depth);
  for (std::size_t e = 0; e < out.size(); ++e) out[e] = table_[base + e];
}

void FullTableEngine::do_compute_block(const imaging::FocalBlock& block,
                                       DelayPlane& plane) {
  const auto n_elements = static_cast<std::size_t>(element_count());
  for (int p = 0; p < block.size(); ++p) {
    const imaging::FocalPoint& fp = block[p];
    const std::size_t base = base_index(fp.i_theta, fp.i_phi, fp.i_depth);
    for (std::size_t e = 0; e < n_elements; ++e) {
      plane.at(static_cast<int>(e), p) = table_[base + e];
    }
  }
}

std::int64_t FullTableEngine::entry_count() const {
  return static_cast<std::int64_t>(table_.size());
}

double FullTableEngine::storage_bytes() const {
  return static_cast<double>(table_.size()) * sizeof(std::int32_t);
}

}  // namespace us3d::delay
