// The naive baseline the paper argues against (Sec. II-B): precompute one
// delay per (focal point, element) and look it up. Materializable only for
// scaled-down systems — which is exactly the point; naive_table_sizing()
// reports why the paper system cannot be built this way.
#ifndef US3D_DELAY_FULL_TABLE_H
#define US3D_DELAY_FULL_TABLE_H

#include <cstdint>
#include <vector>

#include "delay/engine.h"
#include "imaging/system_config.h"
#include "probe/transducer.h"

namespace us3d::delay {

class FullTableEngine final : public DelayEngine {
 public:
  /// Precomputes the full table with exact arithmetic. Refuses to build
  /// tables above `max_entries` (default 2^28) — the paper system would
  /// need 1.6e11 entries.
  explicit FullTableEngine(const imaging::SystemConfig& config,
                           std::int64_t max_entries = std::int64_t{1} << 28);

  std::string name() const override { return "FULLTABLE"; }
  int element_count() const override;
  /// Copies the materialized table rather than recomputing it.
  std::unique_ptr<DelayEngine> clone() const override;

  std::int64_t entry_count() const;
  double storage_bytes() const;  ///< as materialized here (int32 entries)

 protected:
  void do_begin_frame(const Vec3& origin) override;
  void do_compute(const imaging::FocalPoint& fp,
                  std::span<std::int32_t> out) override;
  /// Native block path: one contiguous table read per point, scattered
  /// into the SoA rows (the table is [point][element], the plane the
  /// transpose).
  void do_compute_block(const imaging::FocalBlock& block,
                        DelayPlane& plane) override;

 private:
  std::size_t base_index(int i_theta, int i_phi, int i_depth) const;

  imaging::SystemConfig config_;
  probe::MatrixProbe probe_;
  std::vector<std::int32_t> table_;
};

}  // namespace us3d::delay

#endif  // US3D_DELAY_FULL_TABLE_H
