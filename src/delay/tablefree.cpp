#include "delay/tablefree.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"

namespace us3d::delay {

namespace {

/// Domain of the shared PWL sqrt table: squared distances (in sample^2)
/// up to the longest receive path, with a small safety margin. The lower
/// end is 1: a steered shallow focal point can pass arbitrarily close to
/// an element, so the table must cover the whole range (distances below
/// one sample cannot occur at any realistic focal depth, and the tiny-x
/// segments cost only one or two extra table entries).
PwlSqrt build_pwl(const imaging::SystemConfig& cfg,
                  const TableFreeConfig& tf) {
  const probe::MatrixProbe probe(cfg.probe);
  const double k = cfg.sampling_frequency_hz / cfg.speed_of_sound;
  // The longest path is either receive (deepest point to a corner element)
  // or transmit from a backed-off virtual source.
  const double reach =
      std::max(probe.max_element_radius(), tf.max_origin_backoff_m);
  const double max_dist = (cfg.volume.max_depth_m + reach) * k;
  const double x_max = 1.05 * max_dist * max_dist;
  return PwlSqrt::build(1.0, x_max, tf.delta);
}

}  // namespace

TableFreeEngine::TableFreeEngine(const imaging::SystemConfig& config,
                                 const TableFreeConfig& tf_config)
    : config_(config),
      probe_(config.probe),
      tf_config_(tf_config),
      pwl_(build_pwl(config, tf_config)),
      fixed_pwl_(pwl_, tf_config.fixed),
      tx_tracker_(pwl_) {
  const double k = config_.sampling_frequency_hz / config_.speed_of_sound;
  element_pos_samples_.reserve(
      static_cast<std::size_t>(probe_.element_count()));
  rx_trackers_.reserve(static_cast<std::size_t>(probe_.element_count()));
  for (int e = 0; e < probe_.element_count(); ++e) {
    element_pos_samples_.push_back(probe_.element_position(e) * k);
    rx_trackers_.emplace_back(pwl_);
  }
}

TableFreeEngine::TableFreeEngine(const TableFreeEngine& other)
    : DelayEngine(other),
      config_(other.config_),
      probe_(other.probe_),
      tf_config_(other.tf_config_),
      pwl_(other.pwl_),
      fixed_pwl_(other.fixed_pwl_),
      element_pos_samples_(other.element_pos_samples_),
      rx_trackers_(other.rx_trackers_),
      tx_tracker_(other.tx_tracker_),
      origin_samples_(other.origin_samples_),
      pending_seek_(other.pending_seek_) {
  for (PwlTracker& t : rx_trackers_) t.rebind(pwl_);
  tx_tracker_.rebind(pwl_);
}

int TableFreeEngine::element_count() const { return probe_.element_count(); }

std::unique_ptr<DelayEngine> TableFreeEngine::clone() const {
  return std::make_unique<TableFreeEngine>(*this);
}

void TableFreeEngine::do_begin_frame(const Vec3& origin) {
  const double k = config_.sampling_frequency_hz / config_.speed_of_sound;
  origin_samples_ = origin * k;
  pending_seek_ = true;
}

double TableFreeEngine::squared_distance(const Vec3& a, const Vec3& b) {
  return (a - b).norm_squared();
}

void TableFreeEngine::seed_trackers(const Vec3& s0) {
  // At frame start the control logic preloads each unit's segment
  // register (a one-off seek, not charged as stall cycles).
  tx_tracker_.seek(std::clamp(squared_distance(s0, origin_samples_),
                              pwl_.x_min(), pwl_.x_max()));
  for (std::size_t e = 0; e < rx_trackers_.size(); ++e) {
    rx_trackers_[e].seek(
        std::clamp(squared_distance(s0, element_pos_samples_[e]),
                   pwl_.x_min(), pwl_.x_max()));
  }
  pending_seek_ = false;
}

double TableFreeEngine::evaluate_path(PwlTracker& tracker, double q) const {
  tracker.evaluate(q);
  if (tf_config_.use_fixed_point) {
    return fixed_pwl_
        .evaluate_in_segment(static_cast<std::int64_t>(q), tracker.segment())
        .to_real();
  }
  return pwl_.evaluate_in_segment(q, tracker.segment());
}

void TableFreeEngine::do_compute(const imaging::FocalPoint& fp,
                                 std::span<std::int32_t> out) {
  US3D_EXPECTS(out.size() == static_cast<std::size_t>(element_count()));
  const double k = config_.sampling_frequency_hz / config_.speed_of_sound;
  const Vec3 s = fp.position * k;  // focal point in sample units

  const double q_tx =
      std::clamp(squared_distance(s, origin_samples_), pwl_.x_min(),
                 pwl_.x_max());
  if (pending_seek_) seed_trackers(s);

  // Transmit path: one evaluation per focal point, shared by all elements.
  const double t_tx = evaluate_path(tx_tracker_, q_tx);

  for (std::size_t e = 0; e < rx_trackers_.size(); ++e) {
    const double q_rx = std::clamp(
        squared_distance(s, element_pos_samples_[e]), pwl_.x_min(),
        pwl_.x_max());
    const double t_rx = evaluate_path(rx_trackers_[e], q_rx);
    out[e] = static_cast<std::int32_t>(
        fx::round_real_to_int(t_tx + t_rx, fx::Rounding::kHalfUp));
  }
}

void TableFreeEngine::do_compute_block(const imaging::FocalBlock& block,
                                       DelayPlane& plane) {
  const double k = config_.sampling_frequency_hz / config_.speed_of_sound;
  const int n = block.size();
  block_pos_.resize(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    block_pos_[static_cast<std::size_t>(p)] = block[p].position * k;
  }

  if (pending_seek_) seed_trackers(block_pos_.front());

  // Transmit leg: the shared tracker walks the whole run once.
  block_tx_.resize(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    const double q_tx =
        std::clamp(squared_distance(block_pos_[static_cast<std::size_t>(p)],
                                    origin_samples_),
                   pwl_.x_min(), pwl_.x_max());
    block_tx_[static_cast<std::size_t>(p)] = evaluate_path(tx_tracker_, q_tx);
  }

  // Receive legs: each element's tracker advances once across the whole
  // run before the next element is touched. The tracker sees the same q
  // sequence as in the per-point sweep, so segments — and therefore delay
  // values and step counts — are identical.
  for (std::size_t e = 0; e < rx_trackers_.size(); ++e) {
    PwlTracker& tracker = rx_trackers_[e];
    const Vec3 d = element_pos_samples_[e];
    const std::span<std::int32_t> row = plane.row(static_cast<int>(e));
    for (int p = 0; p < n; ++p) {
      const double q_rx = std::clamp(
          squared_distance(block_pos_[static_cast<std::size_t>(p)], d),
          pwl_.x_min(), pwl_.x_max());
      const double t_rx = evaluate_path(tracker, q_rx);
      row[static_cast<std::size_t>(p)] = static_cast<std::int32_t>(
          fx::round_real_to_int(block_tx_[static_cast<std::size_t>(p)] + t_rx,
                                fx::Rounding::kHalfUp));
    }
  }
}

TableFreeEngine::TrackerStats TableFreeEngine::tracker_stats() const {
  TrackerStats s;
  auto absorb = [&s](const PwlTracker& t) {
    s.evaluations += t.evaluations();
    s.total_steps += t.total_steps();
    s.max_steps_single_evaluation = std::max(
        s.max_steps_single_evaluation, t.max_steps_single_evaluation());
  };
  for (const PwlTracker& t : rx_trackers_) absorb(t);
  absorb(tx_tracker_);
  return s;
}

void TableFreeEngine::reset_tracker_stats() {
  for (PwlTracker& t : rx_trackers_) t.reset_statistics();
  tx_tracker_.reset_statistics();
}

}  // namespace us3d::delay
