// TABLESTEER delay engine (Sec. V): reference table + steering plane, all
// in hardware fixed point. Per (focal point, element): one table read, two
// adds, one rounding to the echo-sample index — exactly the datapath of the
// Fig. 4 block.
#ifndef US3D_DELAY_TABLESTEER_H
#define US3D_DELAY_TABLESTEER_H

#include <memory>
#include <vector>

#include "delay/engine.h"
#include "delay/reference_table.h"
#include "delay/steering.h"
#include "imaging/system_config.h"

namespace us3d::delay {

struct TableSteerConfig {
  fx::Format entry_format = fx::kRefDelay18;    ///< reference delays
  fx::Format coeff_format = fx::kCorrection18;  ///< steering corrections
  /// Accumulator for ref + cx + cy before rounding; one extra integer bit
  /// absorbs the worst-case correction swing.
  fx::Format sum_format{14, 5, true};

  /// The paper's 18-bit design point (uQ13.5 + sQ13.4).
  static TableSteerConfig bits18();
  /// The paper's 14-bit design point (uQ13.1 + sQ13.0).
  static TableSteerConfig bits14();
  /// Pathological 13-bit integer storage (Sec. VI-A: 33% of selections hit
  /// the extra +/-1 sample error).
  static TableSteerConfig bits13();

  std::string name_suffix() const;  ///< "-18b", "-14b", ...
};

/// The Fig. 4 datapath (table read + two adds + rounding) for one focal
/// point. Shared by TableSteerEngine and the synthetic-aperture engine,
/// which runs the same datapath against whichever origin's table is
/// active; steer_compute_block is the batched form of exactly this.
void steer_compute_point(const probe::MatrixProbe& probe,
                         const ReferenceDelayTable& table,
                         const SteeringCorrections& corrections,
                         const TableSteerConfig& ts_config,
                         const imaging::FocalPoint& fp,
                         std::span<std::int32_t> out);

/// The same datapath applied to a whole block, element-outer. `cy_scratch`
/// is reusable per-point y-correction storage (grown once).
void steer_compute_block(const probe::MatrixProbe& probe,
                         const ReferenceDelayTable& table,
                         const SteeringCorrections& corrections,
                         const TableSteerConfig& ts_config,
                         const imaging::FocalBlock& block, DelayPlane& plane,
                         std::vector<fx::Value>& cy_scratch);

class TableSteerEngine final : public DelayEngine {
 public:
  TableSteerEngine(const imaging::SystemConfig& config,
                   const TableSteerConfig& ts_config = TableSteerConfig::bits18());

  std::string name() const override;
  int element_count() const override;
  /// Copies the steering coefficients and *shares* the immutable reference
  /// table (shared_ptr<const>): the table is the paper's headline memory
  /// cost, and N worker clones reading one copy is exactly the reuse the
  /// hardware design streams for. No table bytes are duplicated per clone.
  std::unique_ptr<DelayEngine> clone() const override;

  const ReferenceDelayTable& reference_table() const { return *table_; }
  const SteeringCorrections& corrections() const { return corrections_; }
  const TableSteerConfig& config() const { return ts_config_; }

 protected:
  /// TABLESTEER assumes a constant origin on the probe's vertical axis
  /// (Sec. V: "we assume a constant origin O across frames"); begin_frame
  /// rejects anything else.
  void do_begin_frame(const Vec3& origin) override;
  void do_compute(const imaging::FocalPoint& fp,
                  std::span<std::int32_t> out) override;
  /// Native block path: element-outer sweep with the per-row y-correction
  /// gathered once per row and — on uniform-depth blocks, i.e. every
  /// kNappeByNappe block — the reference-table entry read once per element
  /// instead of once per (element, point).
  void do_compute_block(const imaging::FocalBlock& block,
                        DelayPlane& plane) override;

 private:
  imaging::SystemConfig config_;
  probe::MatrixProbe probe_;
  TableSteerConfig ts_config_;
  /// Immutable after construction; shared by every clone of this engine.
  std::shared_ptr<const ReferenceDelayTable> table_;
  SteeringCorrections corrections_;
  std::vector<fx::Value> block_cy_;  // per-block y-corrections, reused
};

}  // namespace us3d::delay

#endif  // US3D_DELAY_TABLESTEER_H
