// Synthetic-aperture support (Sec. V: "Techniques like synthetic aperture
// imaging rely on repositioning O at every insonification; they can be
// supported by way of multiple precalculated delay tables, at extra
// hardware cost").
//
// This module implements that extension for virtual sources on the probe
// axis (diverging-wave 3D imaging): one reference table per origin, a
// shared steering-correction set (the receive-side correction plane does
// not depend on O), an engine that switches tables per insonification, and
// the storage/bandwidth accounting that shows why the table repository
// must live off chip.
//
// Off-axis origins would additionally break the X/Y table folding and need
// a transmit-side correction plane; the paper leaves them to "an off-chip
// repository of delay tables", and so do we.
#ifndef US3D_DELAY_SYNTHETIC_APERTURE_H
#define US3D_DELAY_SYNTHETIC_APERTURE_H

#include <memory>
#include <vector>

#include "delay/engine.h"
#include "delay/reference_table.h"
#include "delay/steering.h"
#include "delay/tablesteer.h"
#include "imaging/system_config.h"

namespace us3d::delay {

/// A synthetic-aperture shot sequence: one on-axis virtual source per
/// insonification (z <= 0: at or behind the probe plane).
struct SyntheticAperturePlan {
  std::vector<double> origin_z;  ///< one entry per distinct virtual source

  int origin_count() const { return static_cast<int>(origin_z.size()); }
};

/// Evenly spaced virtual sources from z = 0 down to -max_depth_behind.
SyntheticAperturePlan diverging_wave_plan(int origins,
                                          double max_depth_behind_m);

/// One reference delay table per virtual source, plus repository-level
/// storage/bandwidth accounting.
class MultiOriginTableRepository {
 public:
  MultiOriginTableRepository(const imaging::SystemConfig& config,
                             const SyntheticAperturePlan& plan,
                             const fx::Format& entry_format = fx::kRefDelay18);
  /// Copies *share* the immutable per-origin tables (shared_ptr<const>):
  /// N worker clones x K origins reference one table set instead of
  /// deep-copying the repository whose size is the paper's headline
  /// bottleneck. No table bytes are duplicated per copy.
  MultiOriginTableRepository(const MultiOriginTableRepository& other) = default;
  MultiOriginTableRepository& operator=(const MultiOriginTableRepository&) =
      delete;

  int origin_count() const { return static_cast<int>(tables_.size()); }
  const ReferenceDelayTable& table(int origin_index) const;
  double origin_z(int origin_index) const;

  /// Total storage across all origins (the off-chip repository size).
  double total_storage_bits() const;

  /// DRAM bandwidth: unchanged vs single-origin TABLESTEER — each
  /// insonification streams exactly one table, whichever origin it uses.
  double dram_bandwidth_bytes_per_second() const;

 private:
  imaging::SystemConfig config_;
  std::vector<double> origin_zs_;
  /// Immutable after construction; shared across repository copies.
  std::vector<std::shared_ptr<const ReferenceDelayTable>> tables_;
};

/// TABLESTEER with per-insonification origin selection. begin_frame()
/// accepts any origin present in the plan; compute() then uses that
/// origin's table with the shared steering corrections.
class SyntheticApertureSteerEngine final : public DelayEngine {
 public:
  SyntheticApertureSteerEngine(
      const imaging::SystemConfig& config, const SyntheticAperturePlan& plan,
      const TableSteerConfig& ts_config = TableSteerConfig::bits18());

  std::string name() const override { return "TABLESTEER-SA"; }
  int element_count() const override;
  /// Shares the whole immutable table repository with the clone (see
  /// MultiOriginTableRepository's copy semantics) — cloning costs the
  /// steering corrections and scratch only, never the tables.
  std::unique_ptr<DelayEngine> clone() const override;

  const MultiOriginTableRepository& repository() const { return repo_; }
  int active_origin() const { return active_; }

 protected:
  /// Selects the table whose origin matches (on-axis origins only).
  void do_begin_frame(const Vec3& origin) override;
  void do_compute(const imaging::FocalPoint& fp,
                  std::span<std::int32_t> out) override;
  /// Native block path: the shared TABLESTEER block kernel against the
  /// insonification's active table.
  void do_compute_block(const imaging::FocalBlock& block,
                        DelayPlane& plane) override;

 private:
  imaging::SystemConfig config_;
  probe::MatrixProbe probe_;
  TableSteerConfig ts_config_;
  MultiOriginTableRepository repo_;
  SteeringCorrections corrections_;
  int active_ = 0;
  std::vector<fx::Value> block_cy_;  // per-block y-corrections, reused
};

}  // namespace us3d::delay

#endif  // US3D_DELAY_SYNTHETIC_APERTURE_H
