// Accuracy measurement harness (Sec. VI-A): sweeps an engine and the exact
// reference over the imaging volume and accumulates selection-error
// statistics (integer echo-sample index differences), optionally filtered
// by element directivity — the paper's "errors beyond the elements'
// directivity are removed by apodization" argument.
#ifndef US3D_DELAY_ERROR_HARNESS_H
#define US3D_DELAY_ERROR_HARNESS_H

#include <cstdint>
#include <optional>

#include "common/stats.h"
#include "delay/engine.h"
#include "imaging/scan_order.h"
#include "imaging/system_config.h"
#include "probe/apodization.h"
#include "probe/directivity.h"

namespace us3d::delay {

/// Sub-sampling of the sweep, so scaled accuracy runs stay fast while the
/// full paper sweep remains expressible (all strides = 1).
struct SweepStrides {
  int theta = 1;
  int phi = 1;
  int depth = 1;
  int element_x = 1;
  int element_y = 1;
};

struct SelectionErrorReport {
  AbsErrorStats all{1.0};       ///< every (point, element) pair swept
  AbsErrorStats filtered{1.0};  ///< only pairs within the directivity cone
  std::int64_t pairs_total = 0;
  std::int64_t pairs_in_directivity = 0;
};

/// Compares `engine` against exact double-precision delays (both rounded
/// to echo-sample indices, as the paper does: "quantizing both to an
/// integer selection index prior to comparison").
SelectionErrorReport measure_selection_error(
    const imaging::SystemConfig& config, DelayEngine& engine,
    imaging::ScanOrder order, const SweepStrides& strides,
    const std::optional<probe::Directivity>& directivity = std::nullopt);

struct AlgorithmicSteeringReport {
  AbsErrorStats samples_all{1.0};       ///< |error| in echo samples
  AbsErrorStats samples_filtered{1.0};  ///< within directivity only
  double max_error_seconds_all = 0.0;
  double max_error_seconds_filtered = 0.0;
  double mean_error_seconds_filtered = 0.0;
};

/// Measures the pure first-order-Taylor steering error (Eq. 7 vs Eq. 2) in
/// double precision — no tables, no fixed point. This is the paper's
/// "average absolute error ... due to the algorithm itself was 44.641 ns,
/// i.e. ~1.43 samples; maximum observed 3.1 us, i.e. 99 samples".
AlgorithmicSteeringReport measure_steering_algorithmic_error(
    const imaging::SystemConfig& config, const SweepStrides& strides,
    const std::optional<probe::Directivity>& directivity = std::nullopt);

struct WeightedSteeringReport {
  /// Mean of |error| weighted by each pair's beamforming contribution
  /// (apodization window x soft directivity amplitude) — the quantity the
  /// paper's "filtered away by apodization" argument actually bounds.
  double weighted_mean_abs_samples = 0.0;
  /// Largest |error| among pairs whose weight exceeds 1% of the maximum
  /// (errors below that threshold cannot visibly affect the image).
  double max_abs_samples_significant = 0.0;
  double total_weight = 0.0;
};

/// Weighted variant of the steering-error measurement: instead of a hard
/// acceptance cone, every (point, element) pair contributes with its
/// apodization x directivity amplitude, exactly as it would in Eq. (1).
WeightedSteeringReport measure_steering_weighted_error(
    const imaging::SystemConfig& config, const SweepStrides& strides,
    const probe::ApodizationMap& apodization,
    const probe::Directivity& directivity);

}  // namespace us3d::delay

#endif  // US3D_DELAY_ERROR_HARNESS_H
