// Storage and bandwidth accounting for every delay-table variant discussed
// in the paper:
//  - Sec. II-B/II-C: the naive full table (~164e9 coefficients, ~2.5e12
//    coefficient accesses per second at 15 fps);
//  - Sec. V-A: the TABLESTEER reference table (10e6 raw entries, 2.5e6
//    after symmetry folding) and the steering-correction set (832e3 values);
//  - Sec. V-B: on-chip footprints (45 Mb / 14.3 Mb / 2.3 Mb slice buffer)
//    and the DRAM streaming bandwidth (5.3 GB/s at 18 bit, 4.1 at 14 bit).
#ifndef US3D_DELAY_TABLE_SIZING_H
#define US3D_DELAY_TABLE_SIZING_H

#include <cstdint>

#include "common/fixed_point.h"
#include "imaging/system_config.h"

namespace us3d::delay {

/// Sizing of the naive "one coefficient per (focal point, element)" table.
struct NaiveTableSizing {
  std::int64_t coefficients = 0;   ///< points x elements
  int bits_per_coefficient = 0;
  double total_bits = 0.0;
  double total_bytes = 0.0;
  double accesses_per_second = 0.0;  ///< at the plan's volume rate
  double bandwidth_bytes_per_second = 0.0;
};

NaiveTableSizing naive_table_sizing(const imaging::SystemConfig& config,
                                    int bits_per_coefficient);

/// Sizing of the TABLESTEER reference table (one unsteered line of sight).
struct ReferenceTableSizing {
  std::int64_t raw_entries = 0;     ///< ex x ey x n_depth
  std::int64_t folded_entries = 0;  ///< after X/Y mirror symmetry (/4 best case)
  int bits_per_entry = 0;
  double folded_bits = 0.0;
};

ReferenceTableSizing reference_table_sizing(
    const imaging::SystemConfig& config, const fx::Format& entry_format);

/// Sizing of the precomputed steering-correction coefficient set:
/// ex * (n_phi/2) * n_theta values for the x corrections (cos(phi) is even)
/// plus ey * n_phi values for the y corrections.
struct SteeringSetSizing {
  std::int64_t x_coefficients = 0;
  std::int64_t y_coefficients = 0;
  std::int64_t total_coefficients = 0;
  int bits_per_coefficient = 0;
  double total_bits = 0.0;
};

SteeringSetSizing steering_set_sizing(const imaging::SystemConfig& config,
                                      const fx::Format& coeff_format);

/// Sizing of the DRAM-streamed deployment: the reference table lives off
/// chip and a small per-nappe slice is kept in BRAM as a circular buffer.
struct StreamingSizing {
  double table_fetches_per_second = 0.0;  ///< once per insonification
  double bandwidth_bytes_per_second = 0.0;
  int bram_banks = 0;
  std::int64_t bram_lines_per_bank = 0;
  double on_chip_slice_bits = 0.0;   ///< banks * lines * width
  double on_chip_total_bits = 0.0;   ///< slice + steering corrections
};

StreamingSizing streaming_sizing(const imaging::SystemConfig& config,
                                 const fx::Format& entry_format,
                                 const fx::Format& coeff_format,
                                 int bram_banks, std::int64_t lines_per_bank);

}  // namespace us3d::delay

#endif  // US3D_DELAY_TABLE_SIZING_H
