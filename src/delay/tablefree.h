// TABLEFREE delay generation (Sec. IV): no table at all. Each element has
// a small unit evaluating the receive-path sqrt with the PWL approximation
// and incremental segment tracking; the transmit path is shared by all
// elements (computed once per focal point). One multiplier + one adder +
// small c1/c0 LUTs per unit (Fig. 2a).
#ifndef US3D_DELAY_TABLEFREE_H
#define US3D_DELAY_TABLEFREE_H

#include <memory>
#include <vector>

#include "delay/engine.h"
#include "delay/pwl_sqrt.h"
#include "delay/pwl_tracker.h"
#include "imaging/system_config.h"
#include "probe/transducer.h"

namespace us3d::delay {

struct TableFreeConfig {
  /// PWL error bound in echo samples (paper: 0.25 -> 70 segments).
  double delta = 0.25;
  /// Fixed-point formats of the hardware datapath.
  FixedPwlSqrt::Config fixed{};
  /// Largest transmit-origin displacement behind the probe the unit must
  /// support (synthetic-aperture virtual sources). Widens the sqrt domain
  /// accordingly; 0 covers the paper's centred-origin operation.
  double max_origin_backoff_m = 0.0;
  /// When false, the engine evaluates the PWL in double precision,
  /// isolating the algorithmic (approximation) error from fixed-point
  /// effects — the distinction Sec. VI-A draws.
  bool use_fixed_point = true;
};

class TableFreeEngine final : public DelayEngine {
 public:
  TableFreeEngine(const imaging::SystemConfig& config,
                  const TableFreeConfig& tf_config = {});
  /// Copying rebinds the per-element trackers to the copy's own PWL table
  /// (they hold a pointer to the engine-owned segmentation).
  TableFreeEngine(const TableFreeEngine& other);
  TableFreeEngine& operator=(const TableFreeEngine&) = delete;

  std::string name() const override { return "TABLEFREE"; }
  int element_count() const override;
  std::unique_ptr<DelayEngine> clone() const override;

  const PwlSqrt& pwl() const { return pwl_; }
  const FixedPwlSqrt& fixed_pwl() const { return fixed_pwl_; }
  const TableFreeConfig& config() const { return tf_config_; }

  /// Aggregated tracker statistics across all element units (for the
  /// scan-order ablation and the hw stall model).
  struct TrackerStats {
    std::int64_t evaluations = 0;
    std::int64_t total_steps = 0;
    int max_steps_single_evaluation = 0;
    double mean_steps_per_evaluation() const {
      return evaluations ? static_cast<double>(total_steps) /
                               static_cast<double>(evaluations)
                         : 0.0;
    }
  };
  TrackerStats tracker_stats() const;
  void reset_tracker_stats();

 protected:
  void do_begin_frame(const Vec3& origin) override;
  void do_compute(const imaging::FocalPoint& fp,
                  std::span<std::int32_t> out) override;
  /// Native block path — Algorithm 1's amortization made explicit: the
  /// shared transmit tracker walks the run once, then each element's
  /// receive tracker advances across the *whole* run before the next
  /// element is touched. Segment tracking stays incremental (the argument
  /// changes smoothly along a run), but the per-voxel re-dispatch into
  /// every tracker is gone.
  void do_compute_block(const imaging::FocalBlock& block,
                        DelayPlane& plane) override;

 private:
  /// Squared distance in sample^2 units between two points given in
  /// sample-scaled coordinates.
  static double squared_distance(const Vec3& a, const Vec3& b);

  /// One PWL receive/transmit path evaluation at squared distance q using
  /// `tracker`'s current segment (which evaluate() just advanced).
  double evaluate_path(PwlTracker& tracker, double q) const;

  /// Frame-start preload of every tracker's segment register at the first
  /// focal point `s0` (sample units) — the one-off seek both compute entry
  /// points run when pending_seek_ is set, kept in one place so compute()
  /// and compute_block() stay interleavable within a frame.
  void seed_trackers(const Vec3& s0);

  imaging::SystemConfig config_;
  probe::MatrixProbe probe_;
  TableFreeConfig tf_config_;
  PwlSqrt pwl_;
  FixedPwlSqrt fixed_pwl_;
  std::vector<Vec3> element_pos_samples_;  // element positions, sample units
  std::vector<PwlTracker> rx_trackers_;    // one per element
  PwlTracker tx_tracker_;
  Vec3 origin_samples_{};
  bool pending_seek_ = true;
  std::vector<Vec3> block_pos_;    // per-block scaled positions, reused
  std::vector<double> block_tx_;   // per-block transmit delays, reused
};

}  // namespace us3d::delay

#endif  // US3D_DELAY_TABLEFREE_H
