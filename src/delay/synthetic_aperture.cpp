#include "delay/synthetic_aperture.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"
#include "delay/table_sizing.h"

namespace us3d::delay {

SyntheticAperturePlan diverging_wave_plan(int origins,
                                          double max_depth_behind_m) {
  US3D_EXPECTS(origins > 0);
  US3D_EXPECTS(max_depth_behind_m >= 0.0);
  SyntheticAperturePlan plan;
  plan.origin_z.reserve(static_cast<std::size_t>(origins));
  for (int i = 0; i < origins; ++i) {
    const double frac =
        origins == 1 ? 0.0
                     : static_cast<double>(i) / static_cast<double>(origins - 1);
    plan.origin_z.push_back(-frac * max_depth_behind_m);
  }
  return plan;
}

MultiOriginTableRepository::MultiOriginTableRepository(
    const imaging::SystemConfig& config, const SyntheticAperturePlan& plan,
    const fx::Format& entry_format)
    : config_(config), origin_zs_(plan.origin_z) {
  US3D_EXPECTS(plan.origin_count() > 0);
  tables_.reserve(origin_zs_.size());
  for (const double z : origin_zs_) {
    US3D_EXPECTS(z <= 0.0);  // virtual source at or behind the probe plane
    ReferenceTableConfig tc;
    tc.entry_format = entry_format;
    tc.origin_z = z;
    tables_.push_back(std::make_shared<const ReferenceDelayTable>(config, tc));
  }
}

const ReferenceDelayTable& MultiOriginTableRepository::table(
    int origin_index) const {
  US3D_EXPECTS(origin_index >= 0 && origin_index < origin_count());
  return *tables_[static_cast<std::size_t>(origin_index)];
}

double MultiOriginTableRepository::origin_z(int origin_index) const {
  US3D_EXPECTS(origin_index >= 0 && origin_index < origin_count());
  return origin_zs_[static_cast<std::size_t>(origin_index)];
}

double MultiOriginTableRepository::total_storage_bits() const {
  double bits = 0.0;
  for (const auto& t : tables_) bits += t->storage_bits();
  return bits;
}

double MultiOriginTableRepository::dram_bandwidth_bytes_per_second() const {
  // One table streamed per insonification regardless of which origin it
  // belongs to; identical to the single-origin stream rate.
  return streaming_sizing(config_, tables_.front()->entry_format(),
                          fx::kCorrection18, 128, 1024)
      .bandwidth_bytes_per_second;
}

SyntheticApertureSteerEngine::SyntheticApertureSteerEngine(
    const imaging::SystemConfig& config, const SyntheticAperturePlan& plan,
    const TableSteerConfig& ts_config)
    : config_(config),
      probe_(config.probe),
      ts_config_(ts_config),
      repo_(config, plan, ts_config.entry_format),
      corrections_(config, ts_config.coeff_format) {}

int SyntheticApertureSteerEngine::element_count() const {
  return probe_.element_count();
}

std::unique_ptr<DelayEngine> SyntheticApertureSteerEngine::clone() const {
  return std::unique_ptr<DelayEngine>(new SyntheticApertureSteerEngine(*this));
}

void SyntheticApertureSteerEngine::do_begin_frame(const Vec3& origin) {
  // Select the nearest plan origin. Origins that round-tripped through
  // storage, arithmetic or serialization arrive perturbed by a few ulps,
  // so an exact (absolute 1e-12) match would spuriously reject them; the
  // tolerance is instead scaled to the plan's extent — nanometres against
  // millimetre origin spacing — which accepts any round-off while still
  // rejecting origins genuinely between two plan entries.
  double span = std::abs(origin.z);
  int nearest = 0;
  double nearest_dist = std::abs(repo_.origin_z(0) - origin.z);
  for (int i = 0; i < repo_.origin_count(); ++i) {
    span = std::max(span, std::abs(repo_.origin_z(i)));
    const double dist = std::abs(repo_.origin_z(i) - origin.z);
    if (dist < nearest_dist) {
      nearest = i;
      nearest_dist = dist;
    }
  }
  const double tolerance = std::max(1e-9, 1e-6 * span);
  if (std::abs(origin.x) > tolerance || std::abs(origin.y) > tolerance) {
    throw ContractViolation(
        "synthetic-aperture origin must lie on the probe axis");
  }
  if (nearest_dist > tolerance) {
    throw ContractViolation(
        "synthetic-aperture origin not present in the table repository");
  }
  active_ = nearest;
}

void SyntheticApertureSteerEngine::do_compute(const imaging::FocalPoint& fp,
                                              std::span<std::int32_t> out) {
  US3D_EXPECTS(out.size() == static_cast<std::size_t>(element_count()));
  steer_compute_point(probe_, repo_.table(active_), corrections_, ts_config_,
                      fp, out);
}

void SyntheticApertureSteerEngine::do_compute_block(
    const imaging::FocalBlock& block, DelayPlane& plane) {
  steer_compute_block(probe_, repo_.table(active_), corrections_, ts_config_,
                      block, plane, block_cy_);
}

}  // namespace us3d::delay
