// Structure-of-arrays output of the batched delay API: one row of echo
// sample indices per probe element, one column per focal point of a
// FocalBlock. The [element][point] layout is what the delay-and-sum kernel
// wants — it walks one element's row against that element's echo stream in
// a plain contiguous loop — and rows are padded to a 64-byte pitch (and the
// buffer 64-byte aligned) so each row starts on its own cache line and the
// compiler can vectorize row sweeps without peeling.
//
// A DelayPlane is scratch: reshape() grows capacity monotonically and never
// releases it, so one plane per worker serves every block of every frame
// with zero steady-state allocation.
#ifndef US3D_DELAY_DELAY_PLANE_H
#define US3D_DELAY_DELAY_PLANE_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned.h"

namespace us3d::delay {

class DelayPlane {
 public:
  DelayPlane() = default;

  /// Shapes the plane to `elements` rows of `points` valid entries each.
  /// Existing contents are discarded. Allocates only when the required
  /// storage exceeds anything seen before (grow-only capacity).
  void reshape(int elements, int points);

  int element_count() const { return elements_; }
  int point_count() const { return points_; }
  /// Padded row pitch in entries (a multiple of 16 int32 = 64 bytes).
  std::size_t row_stride() const { return stride_; }

  /// One element's delays across the block, densely packed (size = points).
  std::span<std::int32_t> row(int element) {
    return {data_.data() + static_cast<std::size_t>(element) * stride_,
            static_cast<std::size_t>(points_)};
  }
  std::span<const std::int32_t> row(int element) const {
    return {data_.data() + static_cast<std::size_t>(element) * stride_,
            static_cast<std::size_t>(points_)};
  }

  std::int32_t& at(int element, int point) {
    return data_[static_cast<std::size_t>(element) * stride_ +
                 static_cast<std::size_t>(point)];
  }
  std::int32_t at(int element, int point) const {
    return data_[static_cast<std::size_t>(element) * stride_ +
                 static_cast<std::size_t>(point)];
  }

 private:
  int elements_ = 0;
  int points_ = 0;
  std::size_t stride_ = 0;
  std::vector<std::int32_t, AlignedAllocator<std::int32_t, 64>> data_;
};

}  // namespace us3d::delay

#endif  // US3D_DELAY_DELAY_PLANE_H
