// Portable scalar references for the DAS row contracts (simd/dispatch.h).
// Every vector backend must match its reference bit-for-bit; these are
// also the tail loops the vector backends share for the last
// points % lane_width points. das_row_scalar is the IEEE double contract,
// das_row_q_scalar the exact-integer quantized contract.
#ifndef US3D_SIMD_DAS_SCALAR_H
#define US3D_SIMD_DAS_SCALAR_H

#include <cstdint>

namespace us3d::simd {

void das_row_scalar(const float* echo, std::int64_t samples,
                    const std::int32_t* delays, double weight, double* acc,
                    int points);

void das_row_q_scalar(const std::int16_t* echo, std::int64_t samples,
                      const std::int16_t* delays, std::int32_t weight,
                      std::int32_t* acc, int points);

}  // namespace us3d::simd

#endif  // US3D_SIMD_DAS_SCALAR_H
