// Portable scalar reference for the DAS row contract (simd/dispatch.h).
// Every vector backend must match it bit-for-bit; it is also the tail
// loop the vector backends share for the last points % lane_width points.
#ifndef US3D_SIMD_DAS_SCALAR_H
#define US3D_SIMD_DAS_SCALAR_H

#include <cstdint>

namespace us3d::simd {

void das_row_scalar(const float* echo, std::int64_t samples,
                    const std::int32_t* delays, double weight, double* acc,
                    int points);

}  // namespace us3d::simd

#endif  // US3D_SIMD_DAS_SCALAR_H
