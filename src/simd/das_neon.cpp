#include "simd/das_neon.h"

#include "simd/das_scalar.h"
#include "simd/dispatch.h"

// The real vector bodies need AArch64 AdvSIMD: the double row works in
// float64x2 lanes (no double vectors on 32-bit ARM NEON). On every other
// target the TU degrades to the scalar bodies and reports itself not
// compiled, exactly like the x86 TUs built without their ISA flag.
#if defined(__aarch64__) && (defined(__ARM_NEON) || defined(__ARM_NEON__))

#include <arm_neon.h>

#include <limits>

namespace us3d::simd {

const bool kDasNeonCompiled = true;

void das_row_neon(const float* echo, std::int64_t samples,
                  const std::int32_t* delays, double weight, double* acc,
                  int points) {
  // Delays are int32, so when the acquisition window itself exceeds the
  // int32 range every non-negative index is in-window and the upper-bound
  // compare drops out.
  const bool windowed = samples <= std::numeric_limits<std::int32_t>::max();
  const int32x4_t vbound =
      vdupq_n_s32(windowed ? static_cast<std::int32_t>(samples) : 0);
  const int32x4_t vzero = vdupq_n_s32(0);
  const float64x2_t vw = vdupq_n_f64(weight);
  int p = 0;
  for (; p + 4 <= points; p += 4) {
    const int32x4_t idx = vld1q_s32(delays + p);
    uint32x4_t inwin = vcgeq_s32(idx, vzero);
    if (windowed) inwin = vandq_u32(inwin, vcltq_s32(idx, vbound));
    // AdvSIMD has no gather: per-lane scalar loads behind the vector mask
    // (masked-out lanes are never dereferenced), like the SSE2 body.
    alignas(16) std::int32_t ibuf[4];
    alignas(16) std::uint32_t mbuf[4];
    vst1q_s32(ibuf, idx);
    vst1q_u32(mbuf, inwin);
    alignas(16) float sbuf[4];
    for (int l = 0; l < 4; ++l) {
      sbuf[l] = mbuf[l] != 0 ? echo[static_cast<std::size_t>(ibuf[l])] : 0.0f;
    }
    const float32x4_t s = vld1q_f32(sbuf);
    // Widen to double and fold acc += w * s as separate mul + add — the
    // same IEEE operations per point as the scalar reference, so the
    // output is bit-identical. This TU builds with -ffp-contract=off
    // (gcc's arm_neon.h lowers these intrinsics to plain vector operators
    // the compiler could otherwise re-fuse into a fused multiply-add).
    const float64x2_t lo = vcvt_f64_f32(vget_low_f32(s));
    const float64x2_t hi = vcvt_high_f64_f32(s);
    vst1q_f64(acc + p, vaddq_f64(vld1q_f64(acc + p), vmulq_f64(vw, lo)));
    vst1q_f64(acc + p + 2,
              vaddq_f64(vld1q_f64(acc + p + 2), vmulq_f64(vw, hi)));
  }
  if (p < points) {
    das_row_scalar(echo, samples, delays + p, weight, acc + p, points - p);
  }
}

void das_row_q_neon(const std::int16_t* echo, std::int64_t samples,
                    const std::int16_t* delays, std::int32_t weight,
                    std::int32_t* acc, int points) {
  // The quantized contract pre-sanitizes delays into [0, samples] (the
  // sentinel reads zeroed padding), so there is no window test anywhere:
  // per-lane loads stand in for the gather x86 uses from AVX2 up, and the
  // arithmetic runs at NEON's native int16 lane width. Through the kernel
  // layer `points` is the plane's sentinel-filled padded count (a
  // multiple of 16), so the 8-lane loop sweeps whole rows with no scalar
  // tail; the trailing call only fires for direct sub-vector invocations.
  static_cast<void>(samples);
  // weight < 2^15 (uQ1.14 word), so it fits a non-negative int16 lane and
  // the widening multiplies below form the exact signed 32-bit product.
  const int16x4_t vw = vdup_n_s16(static_cast<std::int16_t>(weight));
  int p = 0;
  for (; p + 8 <= points; p += 8) {
    alignas(16) std::int16_t sbuf[8];
    for (int l = 0; l < 8; ++l) {
      sbuf[l] = echo[static_cast<std::size_t>(
          static_cast<std::uint16_t>(delays[p + l]))];
    }
    const int16x8_t s = vld1q_s16(sbuf);
    // Exact 32-bit products from the widening 16x16 multiplies, then the
    // contract's arithmetic shift and int32 accumulate — identical
    // integer arithmetic to the scalar reference, twice the lanes of the
    // double kernel. The mul / shift / add stay separate instructions by
    // design: the shift sits between them in the contract, so a fused
    // multiply-accumulate could not compute this term anyway.
    const int32x4_t t_lo =
        vshrq_n_s32(vmull_s16(vget_low_s16(s), vw), kQuantWeightFracBits);
    const int32x4_t t_hi =
        vshrq_n_s32(vmull_s16(vget_high_s16(s), vw), kQuantWeightFracBits);
    vst1q_s32(acc + p, vaddq_s32(vld1q_s32(acc + p), t_lo));
    vst1q_s32(acc + p + 4, vaddq_s32(vld1q_s32(acc + p + 4), t_hi));
  }
  if (p < points) {
    das_row_q_scalar(echo, samples, delays + p, weight, acc + p, points - p);
  }
}

}  // namespace us3d::simd

#else  // !(__aarch64__ && __ARM_NEON)

namespace us3d::simd {

const bool kDasNeonCompiled = false;

// Keeps the symbols defined on non-AArch64 targets; dispatch reports the
// backend unavailable, so these bodies are unreachable through resolve.
void das_row_neon(const float* echo, std::int64_t samples,
                  const std::int32_t* delays, double weight, double* acc,
                  int points) {
  das_row_scalar(echo, samples, delays, weight, acc, points);
}

void das_row_q_neon(const std::int16_t* echo, std::int64_t samples,
                    const std::int16_t* delays, std::int32_t weight,
                    std::int32_t* acc, int points) {
  das_row_q_scalar(echo, samples, delays, weight, acc, points);
}

}  // namespace us3d::simd

#endif
