#include "simd/das_neon.h"

#include "simd/das_scalar.h"

namespace us3d::simd {

#if defined(__ARM_NEON) || defined(__ARM_NEON__)
const bool kDasNeonCompiled = true;
#else
const bool kDasNeonCompiled = false;
#endif

// Stub: the dispatch interface, availability reporting and parity tests
// all treat NEON as a first-class backend, but the row body is still the
// scalar reference (bit-identical by construction). Replacing it with a
// real float32x4/float64x2 implementation is tracked in ROADMAP.md.
void das_row_neon(const float* echo, std::int64_t samples,
                  const std::int32_t* delays, double weight, double* acc,
                  int points) {
  das_row_scalar(echo, samples, delays, weight, acc, points);
}

// Stub like the double body. The integer contract is exact arithmetic, so
// this is bit-identical to every other integer backend by definition; a
// native int16x8 vmull/vshr body (ROADMAP follow-on) only changes speed.
void das_row_q_neon(const std::int16_t* echo, std::int64_t samples,
                    const std::int16_t* delays, std::int32_t weight,
                    std::int32_t* acc, int points) {
  das_row_q_scalar(echo, samples, delays, weight, acc, points);
}

}  // namespace us3d::simd
