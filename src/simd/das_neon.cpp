#include "simd/das_neon.h"

#include "simd/das_scalar.h"

namespace us3d::simd {

#if defined(__ARM_NEON) || defined(__ARM_NEON__)
const bool kDasNeonCompiled = true;
#else
const bool kDasNeonCompiled = false;
#endif

// Stub: the dispatch interface, availability reporting and parity tests
// all treat NEON as a first-class backend, but the row body is still the
// scalar reference (bit-identical by construction). Replacing it with a
// real float32x4/float64x2 implementation is tracked in ROADMAP.md.
void das_row_neon(const float* echo, std::int64_t samples,
                  const std::int32_t* delays, double weight, double* acc,
                  int points) {
  das_row_scalar(echo, samples, delays, weight, acc, points);
}

}  // namespace us3d::simd
