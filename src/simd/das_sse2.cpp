#include "simd/das_sse2.h"

#include "simd/das_scalar.h"
#include "simd/dispatch.h"

#if defined(__SSE2__)

#include <emmintrin.h>

#include <limits>

namespace us3d::simd {

const bool kDasSse2Compiled = true;

void das_row_sse2(const float* echo, std::int64_t samples,
                  const std::int32_t* delays, double weight, double* acc,
                  int points) {
  // Delays are int32, so when the acquisition window itself exceeds the
  // int32 range every non-negative index is in-window and the upper-bound
  // compare drops out.
  const bool windowed =
      samples <= std::numeric_limits<std::int32_t>::max();
  const __m128i vbound =
      _mm_set1_epi32(windowed ? static_cast<std::int32_t>(samples) : 0);
  const __m128i vminus1 = _mm_set1_epi32(-1);
  const __m128d vw = _mm_set1_pd(weight);
  int p = 0;
  for (; p + 4 <= points; p += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(delays + p));
    __m128i inwin = _mm_cmpgt_epi32(idx, vminus1);
    if (windowed) inwin = _mm_and_si128(inwin, _mm_cmpgt_epi32(vbound, idx));
    const int lanes = _mm_movemask_ps(_mm_castsi128_ps(inwin));
    // No gather before AVX2: per-lane scalar loads behind the vector mask
    // (masked-out lanes are never dereferenced).
    alignas(16) std::int32_t ibuf[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(ibuf), idx);
    alignas(16) float sbuf[4];
    for (int l = 0; l < 4; ++l) {
      sbuf[l] =
          (lanes >> l) & 1 ? echo[static_cast<std::size_t>(ibuf[l])] : 0.0f;
    }
    const __m128 s = _mm_load_ps(sbuf);
    // Widen to double and fold acc += w * s as separate mul + add — the
    // same IEEE operations per point as the scalar reference, so the
    // output is bit-identical.
    const __m128d lo = _mm_cvtps_pd(s);
    const __m128d hi = _mm_cvtps_pd(_mm_movehl_ps(s, s));
    _mm_storeu_pd(acc + p,
                  _mm_add_pd(_mm_loadu_pd(acc + p), _mm_mul_pd(vw, lo)));
    _mm_storeu_pd(acc + p + 2,
                  _mm_add_pd(_mm_loadu_pd(acc + p + 2), _mm_mul_pd(vw, hi)));
  }
  if (p < points) {
    das_row_scalar(echo, samples, delays + p, weight, acc + p, points - p);
  }
}

void das_row_q_sse2(const std::int16_t* echo, std::int64_t samples,
                    const std::int16_t* delays, std::int32_t weight,
                    std::int32_t* acc, int points) {
  // The quantized contract pre-sanitizes delays into [0, samples] (the
  // sentinel reads zeroed padding), so there is no window test at all —
  // just per-lane loads (no gather before AVX2) and exact int16 products.
  static_cast<void>(samples);
  // weight < 2^15 (uQ1.14 word), so it fits a non-negative int16 lane and
  // mullo/mulhi_epi16 below form the exact signed 32-bit product.
  const __m128i vw = _mm_set1_epi16(static_cast<std::int16_t>(weight));
  int p = 0;
  for (; p + 8 <= points; p += 8) {
    alignas(16) std::int16_t sbuf[8];
    for (int l = 0; l < 8; ++l) {
      sbuf[l] = echo[static_cast<std::size_t>(
          static_cast<std::uint16_t>(delays[p + l]))];
    }
    const __m128i s = _mm_load_si128(reinterpret_cast<const __m128i*>(sbuf));
    // Exact 32-bit products from the 16x16 multiply pair, then the
    // contract's arithmetic shift and int32 accumulate — identical
    // integer arithmetic to the scalar reference, twice the lanes of the
    // double kernel.
    const __m128i prod_lo16 = _mm_mullo_epi16(s, vw);
    const __m128i prod_hi16 = _mm_mulhi_epi16(s, vw);
    const __m128i prod01 = _mm_unpacklo_epi16(prod_lo16, prod_hi16);
    const __m128i prod23 = _mm_unpackhi_epi16(prod_lo16, prod_hi16);
    const __m128i t01 = _mm_srai_epi32(prod01, kQuantWeightFracBits);
    const __m128i t23 = _mm_srai_epi32(prod23, kQuantWeightFracBits);
    __m128i* acc01 = reinterpret_cast<__m128i*>(acc + p);
    __m128i* acc23 = reinterpret_cast<__m128i*>(acc + p + 4);
    _mm_storeu_si128(acc01, _mm_add_epi32(_mm_loadu_si128(acc01), t01));
    _mm_storeu_si128(acc23, _mm_add_epi32(_mm_loadu_si128(acc23), t23));
  }
  if (p < points) {
    das_row_q_scalar(echo, samples, delays + p, weight, acc + p, points - p);
  }
}

}  // namespace us3d::simd

#else  // !defined(__SSE2__)

namespace us3d::simd {

const bool kDasSse2Compiled = false;

// Keeps the symbols defined on non-x86 targets; dispatch reports the
// backend unavailable, so these bodies are unreachable through resolve.
void das_row_sse2(const float* echo, std::int64_t samples,
                  const std::int32_t* delays, double weight, double* acc,
                  int points) {
  das_row_scalar(echo, samples, delays, weight, acc, points);
}

void das_row_q_sse2(const std::int16_t* echo, std::int64_t samples,
                    const std::int16_t* delays, std::int32_t weight,
                    std::int32_t* acc, int points) {
  das_row_q_scalar(echo, samples, delays, weight, acc, points);
}

}  // namespace us3d::simd

#endif
