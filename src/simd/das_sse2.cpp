#include "simd/das_sse2.h"

#include "simd/das_scalar.h"

#if defined(__SSE2__)

#include <emmintrin.h>

#include <limits>

namespace us3d::simd {

const bool kDasSse2Compiled = true;

void das_row_sse2(const float* echo, std::int64_t samples,
                  const std::int32_t* delays, double weight, double* acc,
                  int points) {
  // Delays are int32, so when the acquisition window itself exceeds the
  // int32 range every non-negative index is in-window and the upper-bound
  // compare drops out.
  const bool windowed =
      samples <= std::numeric_limits<std::int32_t>::max();
  const __m128i vbound =
      _mm_set1_epi32(windowed ? static_cast<std::int32_t>(samples) : 0);
  const __m128i vminus1 = _mm_set1_epi32(-1);
  const __m128d vw = _mm_set1_pd(weight);
  int p = 0;
  for (; p + 4 <= points; p += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(delays + p));
    __m128i inwin = _mm_cmpgt_epi32(idx, vminus1);
    if (windowed) inwin = _mm_and_si128(inwin, _mm_cmpgt_epi32(vbound, idx));
    const int lanes = _mm_movemask_ps(_mm_castsi128_ps(inwin));
    // No gather before AVX2: per-lane scalar loads behind the vector mask
    // (masked-out lanes are never dereferenced).
    alignas(16) std::int32_t ibuf[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(ibuf), idx);
    alignas(16) float sbuf[4];
    for (int l = 0; l < 4; ++l) {
      sbuf[l] =
          (lanes >> l) & 1 ? echo[static_cast<std::size_t>(ibuf[l])] : 0.0f;
    }
    const __m128 s = _mm_load_ps(sbuf);
    // Widen to double and fold acc += w * s as separate mul + add — the
    // same IEEE operations per point as the scalar reference, so the
    // output is bit-identical.
    const __m128d lo = _mm_cvtps_pd(s);
    const __m128d hi = _mm_cvtps_pd(_mm_movehl_ps(s, s));
    _mm_storeu_pd(acc + p,
                  _mm_add_pd(_mm_loadu_pd(acc + p), _mm_mul_pd(vw, lo)));
    _mm_storeu_pd(acc + p + 2,
                  _mm_add_pd(_mm_loadu_pd(acc + p + 2), _mm_mul_pd(vw, hi)));
  }
  if (p < points) {
    das_row_scalar(echo, samples, delays + p, weight, acc + p, points - p);
  }
}

}  // namespace us3d::simd

#else  // !defined(__SSE2__)

namespace us3d::simd {

const bool kDasSse2Compiled = false;

// Keeps the symbol defined on non-x86 targets; dispatch reports the
// backend unavailable, so this body is unreachable through resolve.
void das_row_sse2(const float* echo, std::int64_t samples,
                  const std::int32_t* delays, double weight, double* acc,
                  int points) {
  das_row_scalar(echo, samples, delays, weight, acc, points);
}

}  // namespace us3d::simd

#endif
