#include "simd/das_scalar.h"

#include "simd/dispatch.h"

namespace us3d::simd {

void das_row_scalar(const float* echo, std::int64_t samples,
                    const std::int32_t* delays, double weight, double* acc,
                    int points) {
  for (int p = 0; p < points; ++p) {
    const std::int32_t idx = delays[p];
    // Clamp-to-zero outside the acquisition window, matching
    // EchoBuffer::sample; branch-light so the compiler can still
    // auto-vectorize this reference on its own.
    const float s = (idx >= 0 && idx < samples)
                        ? echo[static_cast<std::size_t>(idx)]
                        : 0.0f;
    acc[p] += weight * s;
  }
}

void das_row_q_scalar(const std::int16_t* echo, std::int64_t samples,
                      const std::int16_t* delays, std::int32_t weight,
                      std::int32_t* acc, int points) {
  // No window test anywhere: the quantized contract pre-sanitizes delays
  // into [0, samples] with the sentinel `samples` reading guaranteed-zero
  // padding, so even the reference body is a straight compare-free sweep.
  static_cast<void>(samples);
  for (int p = 0; p < points; ++p) {
    const std::int32_t s = echo[static_cast<std::size_t>(
        static_cast<std::uint16_t>(delays[p]))];
    // Exact two's-complement arithmetic: the product fits int32 (|s| <=
    // 2^15, weight < 2^15) and >> is an arithmetic shift (floor, the
    // hardware datapath's free rounding mode). Integer backends match
    // this bit-for-bit by construction.
    acc[p] += (weight * s) >> kQuantWeightFracBits;
  }
}

}  // namespace us3d::simd
