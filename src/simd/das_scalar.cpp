#include "simd/das_scalar.h"

namespace us3d::simd {

void das_row_scalar(const float* echo, std::int64_t samples,
                    const std::int32_t* delays, double weight, double* acc,
                    int points) {
  for (int p = 0; p < points; ++p) {
    const std::int32_t idx = delays[p];
    // Clamp-to-zero outside the acquisition window, matching
    // EchoBuffer::sample; branch-light so the compiler can still
    // auto-vectorize this reference on its own.
    const float s = (idx >= 0 && idx < samples)
                        ? echo[static_cast<std::size_t>(idx)]
                        : 0.0f;
    acc[p] += weight * s;
  }
}

}  // namespace us3d::simd
