// AVX-512 backend for the DAS row contracts (simd/dispatch.h): the double
// kernel runs 16 points per iteration — the AVX2 masked-gather body at
// twice the lanes, with native k-mask compares instead of vector masks —
// and the quantized kernel 16 int16 points per iteration through one
// unmasked 32-bit gather at int16 granularity, compare-free (delays
// arrive pre-sanitized and echo rows guarantee two readable entries past
// the last sample; see the DasRowQFn contract).
// Both keep the exact per-point arithmetic of their scalar references:
// packed-double mul + add (never FMA) for the double contract, exact
// int32 products/shifts (one vpmaddwd per 16 points) for the integer one.
// The double body needs AVX-512F, the quantized body AVX-512BW for zmm
// vpmaddwd; the TU is compiled with -mavx512f -mavx512bw on x86 and
// elsewhere degrades to the scalar bodies with kDasAvx512Compiled false.
#ifndef US3D_SIMD_DAS_AVX512_H
#define US3D_SIMD_DAS_AVX512_H

#include <cstdint>

namespace us3d::simd {

/// True when this TU was built with real AVX-512F intrinsics.
extern const bool kDasAvx512Compiled;

void das_row_avx512(const float* echo, std::int64_t samples,
                    const std::int32_t* delays, double weight, double* acc,
                    int points);

void das_row_q_avx512(const std::int16_t* echo, std::int64_t samples,
                      const std::int16_t* delays, std::int32_t weight,
                      std::int32_t* acc, int points);

}  // namespace us3d::simd

#endif  // US3D_SIMD_DAS_AVX512_H
