// AVX2 backend for the DAS row contracts (simd/dispatch.h). The double
// kernel runs 8 points per iteration: masked 32-bit gather for the echo
// samples (out-of-window lanes are masked out, so they are never
// dereferenced and read as zero), packed-double mul + add for the
// accumulation (never FMA — contraction would break bit-parity with the
// scalar reference). The quantized kernel runs 16 points per iteration —
// twice the lanes, int16 end to end and compare-free (delays arrive
// pre-sanitized, see the DasRowQFn contract): two unmasked 32-bit gathers
// at int16 granularity (echo rows guarantee two readable entries past the
// last sample — beamform::QuantizedEchoBuffer's layout), then exact int32
// products/accumulates. The TU is compiled with -mavx2 on
// x86; elsewhere it degrades to the scalar bodies and kDasAvx2Compiled is
// false.
#ifndef US3D_SIMD_DAS_AVX2_H
#define US3D_SIMD_DAS_AVX2_H

#include <cstdint>

namespace us3d::simd {

/// True when this TU was built with real AVX2 intrinsics.
extern const bool kDasAvx2Compiled;

void das_row_avx2(const float* echo, std::int64_t samples,
                  const std::int32_t* delays, double weight, double* acc,
                  int points);

void das_row_q_avx2(const std::int16_t* echo, std::int64_t samples,
                    const std::int16_t* delays, std::int32_t weight,
                    std::int32_t* acc, int points);

}  // namespace us3d::simd

#endif  // US3D_SIMD_DAS_AVX2_H
