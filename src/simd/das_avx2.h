// AVX2 backend for the DAS row contract (simd/dispatch.h): 8 points per
// iteration, masked 32-bit gather for the echo samples (out-of-window
// lanes are masked out, so they are never dereferenced and read as zero),
// packed-double mul + add for the accumulation (never FMA — contraction
// would break bit-parity with the scalar reference). The TU is compiled
// with -mavx2 on x86; elsewhere it degrades to the scalar body and
// kDasAvx2Compiled is false.
#ifndef US3D_SIMD_DAS_AVX2_H
#define US3D_SIMD_DAS_AVX2_H

#include <cstdint>

namespace us3d::simd {

/// True when this TU was built with real AVX2 intrinsics.
extern const bool kDasAvx2Compiled;

void das_row_avx2(const float* echo, std::int64_t samples,
                  const std::int32_t* delays, double weight, double* acc,
                  int points);

}  // namespace us3d::simd

#endif  // US3D_SIMD_DAS_AVX2_H
