// Backend selection for the explicit-SIMD delay-and-sum row kernels.
//
// Every backend implements the same row contract (DasRowFn): sweep one
// element's delay row against that element's echo stream and fold the
// apodization-weighted samples into the per-point partial sums,
//
//   acc[p] += weight * (0 <= delays[p] < samples ? echo[delays[p]] : 0)
//
// for p in [0, points). The accumulators are *lane-wise*: each focal point
// owns one double partial sum, the vector lanes map 1:1 onto consecutive
// points, and elements are folded in ascending flat-index order by the
// caller — there is no cross-lane reduction anywhere, so every backend
// performs the exact same sequence of IEEE double multiply-adds per point
// and produces bit-identical output to the scalar reference (the parity
// property tests in tests/beamform/test_das_kernel.cpp pin this).
//
// The *quantized* row contract (DasRowQFn) is the fixed-point mirror of
// the same sweep, for the int16 end-to-end pipeline (beamform/quantized.h):
//
//   acc[p] += (weight * echo[delays[p]]) >> kQuantWeightFracBits
//
// with int16 echo samples, int16 delay indices, a uQ1.14 weight word
// (weight in [0, 2^15)) and int32 accumulators. Unlike the double
// contract, the window clamp is *not* the kernel's job: delay rows are
// pre-sanitized by delay::QuantizedDelayPlane, which maps every
// out-of-window index to the sentinel `samples`, and echo rows carry at
// least two zeroed padding entries at [samples, samples+1] (the
// beamform::QuantizedEchoBuffer layout), so the sentinel reads an exact
// zero. That is what lets every integer body run compare-free unmasked
// sweeps — on AVX2 the whole inner loop is cvt + gather + widen + mullo +
// shift + add, roughly half the double kernel's per-point instruction
// count, which is where the quantized path's throughput advantage comes
// from. Every operation is exact two's-complement integer arithmetic (the
// >> is an arithmetic shift, well-defined in C++20), so all integer
// backends are bit-identical to the integer scalar reference *by
// construction* — there is no floating-point ordering to preserve, only
// the same integer result per point. The product fits int32 (|s| <= 2^15,
// w < 2^15 → |w*s| < 2^30) and each shifted term has magnitude <= 2^16,
// so the int32 accumulator is safe for any active-element count the
// kernel layer admits (< 2^15 rows).
//
// Selection is two-stage:
//  - compile time: each backend TU (das_sse2.cpp, das_avx2.cpp, ...) is
//    built with its own -m<isa> flag on x86 and exports a "compiled with
//    real intrinsics" flag; on other architectures the TU degrades to a
//    scalar body and reports itself unavailable.
//  - run time: resolve_backend() intersects the compiled set with what the
//    host CPU actually supports, honouring an explicit request
//    (BeamformOptions::simd / PipelineConfig::simd) first and the
//    US3D_SIMD environment variable (scalar|sse2|avx2|avx512|neon|auto)
//    second. Forcing a backend that is not available fails loudly instead
//    of silently falling back — that is what lets CI pin every dispatch
//    path.
//
// Precision is the second, orthogonal knob: kDouble runs the IEEE double
// contract, kQuantized the integer contract. resolve_precision() mirrors
// resolve_backend(): explicit request first, then the US3D_PRECISION
// environment variable (double|quantized|auto), then the double default —
// which is what lets CI re-run the whole suite with
// US3D_PRECISION=quantized exactly like a forced-backend cell.
#ifndef US3D_SIMD_DISPATCH_H
#define US3D_SIMD_DISPATCH_H

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace us3d::simd {

enum class DasBackend {
  kAuto,    ///< pick the best available (after the US3D_SIMD override)
  kScalar,  ///< portable reference; always available
  kSSE2,    ///< 4-wide x86 (baseline on x86-64)
  kAVX2,    ///< 8-wide x86 with masked gather
  kAVX512,  ///< 16-wide x86 (AVX-512F k-masked gather)
  kNEON,    ///< aarch64 AdvSIMD (2-wide f64 row, native 8-wide int16 row)
};

/// Row-sweep kernel: fold one element's weighted samples into the
/// per-point accumulators (see the contract at the top of this header).
using DasRowFn = void (*)(const float* echo, std::int64_t samples,
                          const std::int32_t* delays, double weight,
                          double* acc, int points);

/// Fraction bits of the quantized apodization-weight word (uQ1.14): the
/// arithmetic right-shift every integer backend applies to each
/// weight*sample product before accumulating. Part of the DasRowQFn
/// contract — the kernel layer quantizes weights into exactly this format.
inline constexpr int kQuantWeightFracBits = 14;

/// Largest acquisition window the quantized path can address: delay
/// indices are int16 and the out-of-window sentinel is `samples` itself,
/// so both in-window indices (0..samples-1) and the sentinel must fit —
/// samples <= 32767. The quantized containers (delay::QuantizedDelayPlane,
/// beamform::QuantizedEchoBuffer) reject longer windows as a precondition
/// instead of silently dropping samples.
inline constexpr std::int64_t kQuantMaxSamples = 32767;

/// Integer row-sweep kernel for the quantized pipeline: int16 echo
/// samples, *sanitized* int16 delay indices in [0, samples] (the value
/// `samples` is the out-of-window sentinel), uQ1.14 weight word, int32
/// lane-wise accumulators (see the contract above). Rows of `echo` must
/// carry at least two zeroed entries at [samples, samples+1]: the
/// sentinel reads the first, and the AVX2/AVX-512 bodies gather 32-bit
/// words at 16-bit indices so the entry after the one addressed is also
/// touched (beamform::QuantizedEchoBuffer guarantees both).
using DasRowQFn = void (*)(const std::int16_t* echo, std::int64_t samples,
                           const std::int16_t* delays, std::int32_t weight,
                           std::int32_t* acc, int points);

/// Arithmetic precision of the beamform hot path.
enum class Precision {
  kAuto,       ///< resolve via US3D_PRECISION, default double
  kDouble,     ///< exact IEEE double delay-and-sum (the reference)
  kQuantized,  ///< int16 end-to-end fixed-point path (beamform/quantized.h)
};

/// Lower-case stable name ("auto", "scalar", "sse2", "avx2", "avx512",
/// "neon").
const char* backend_name(DasBackend backend);

/// Inverse of backend_name(); nullopt for anything unrecognised.
std::optional<DasBackend> parse_backend(std::string_view name);

/// True when the backend's TU was built with its real intrinsics (compile
/// time only — says nothing about the host CPU). Scalar is always true.
bool backend_compiled(DasBackend backend);

/// True when the backend is compiled in AND the host CPU supports it.
bool backend_available(DasBackend backend);

/// The concrete backends usable on this host, best first. Always ends
/// with kScalar; never contains kAuto.
std::vector<DasBackend> available_backends();

/// Resolves a request to a concrete backend. A non-auto request must be
/// available (throws std::runtime_error naming the backend otherwise —
/// forcing never falls back silently). kAuto honours US3D_SIMD when set
/// (unknown values and unavailable backends also throw), else picks the
/// best available. The environment is re-read on every call so tests and
/// long-lived processes see changes.
DasBackend resolve_backend(DasBackend requested);

/// The row kernel for a concrete (resolved, non-auto) backend.
DasRowFn das_row_fn(DasBackend backend);

/// The integer row kernel for a concrete (resolved, non-auto) backend.
/// Every backend has one (integer arithmetic needs no ISA to be exact;
/// backends without a vector int body run the scalar reference).
DasRowQFn das_row_q_fn(DasBackend backend);

/// Lower-case stable name ("auto", "double", "quantized").
const char* precision_name(Precision precision);

/// Inverse of precision_name(); nullopt for anything unrecognised.
std::optional<Precision> parse_precision(std::string_view name);

/// Resolves a precision request to a concrete precision. An explicit
/// request wins; kAuto honours US3D_PRECISION when set (unknown values
/// throw std::runtime_error), else picks kDouble. Both concrete
/// precisions run on every host — there is no availability lattice — but
/// the same explicit-beats-environment precedence as resolve_backend()
/// keeps the two knobs predictable side by side. Re-reads the environment
/// on every call.
Precision resolve_precision(Precision requested);

}  // namespace us3d::simd

#endif  // US3D_SIMD_DISPATCH_H
