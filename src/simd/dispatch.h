// Backend selection for the explicit-SIMD delay-and-sum row kernels.
//
// Every backend implements the same row contract (DasRowFn): sweep one
// element's delay row against that element's echo stream and fold the
// apodization-weighted samples into the per-point partial sums,
//
//   acc[p] += weight * (0 <= delays[p] < samples ? echo[delays[p]] : 0)
//
// for p in [0, points). The accumulators are *lane-wise*: each focal point
// owns one double partial sum, the vector lanes map 1:1 onto consecutive
// points, and elements are folded in ascending flat-index order by the
// caller — there is no cross-lane reduction anywhere, so every backend
// performs the exact same sequence of IEEE double multiply-adds per point
// and produces bit-identical output to the scalar reference (the parity
// property tests in tests/beamform/test_das_kernel.cpp pin this).
//
// Selection is two-stage:
//  - compile time: each backend TU (das_sse2.cpp, das_avx2.cpp, ...) is
//    built with its own -m<isa> flag on x86 and exports a "compiled with
//    real intrinsics" flag; on other architectures the TU degrades to a
//    scalar body and reports itself unavailable.
//  - run time: resolve_backend() intersects the compiled set with what the
//    host CPU actually supports, honouring an explicit request
//    (BeamformOptions::simd / PipelineConfig::simd) first and the
//    US3D_SIMD environment variable (scalar|sse2|avx2|neon|auto) second.
//    Forcing a backend that is not available fails loudly instead of
//    silently falling back — that is what lets CI pin every dispatch path.
#ifndef US3D_SIMD_DISPATCH_H
#define US3D_SIMD_DISPATCH_H

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace us3d::simd {

enum class DasBackend {
  kAuto,    ///< pick the best available (after the US3D_SIMD override)
  kScalar,  ///< portable reference; always available
  kSSE2,    ///< 4-wide x86 (baseline on x86-64)
  kAVX2,    ///< 8-wide x86 with masked gather
  kNEON,    ///< aarch64; interface + dispatch wired, vector body pending
};

/// Row-sweep kernel: fold one element's weighted samples into the
/// per-point accumulators (see the contract at the top of this header).
using DasRowFn = void (*)(const float* echo, std::int64_t samples,
                          const std::int32_t* delays, double weight,
                          double* acc, int points);

/// Lower-case stable name ("auto", "scalar", "sse2", "avx2", "neon").
const char* backend_name(DasBackend backend);

/// Inverse of backend_name(); nullopt for anything unrecognised.
std::optional<DasBackend> parse_backend(std::string_view name);

/// True when the backend's TU was built with its real intrinsics (compile
/// time only — says nothing about the host CPU). Scalar is always true.
bool backend_compiled(DasBackend backend);

/// True when the backend is compiled in AND the host CPU supports it.
bool backend_available(DasBackend backend);

/// The concrete backends usable on this host, best first. Always ends
/// with kScalar; never contains kAuto.
std::vector<DasBackend> available_backends();

/// Resolves a request to a concrete backend. A non-auto request must be
/// available (throws std::runtime_error naming the backend otherwise —
/// forcing never falls back silently). kAuto honours US3D_SIMD when set
/// (unknown values and unavailable backends also throw), else picks the
/// best available. The environment is re-read on every call so tests and
/// long-lived processes see changes.
DasBackend resolve_backend(DasBackend requested);

/// The row kernel for a concrete (resolved, non-auto) backend.
DasRowFn das_row_fn(DasBackend backend);

}  // namespace us3d::simd

#endif  // US3D_SIMD_DISPATCH_H
