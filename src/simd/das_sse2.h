// SSE2 backend for the DAS row contracts (simd/dispatch.h). The double
// kernel runs 4 points per iteration; SSE2 has no gather, so sample loads
// are per-lane scalar moves behind a vector in-window mask, and the
// weighted accumulation runs as packed-double mul + add (never FMA),
// which keeps it bit-identical to the scalar reference. The quantized
// kernel runs 8 points per iteration — twice the lanes, int16 end to end
// and compare-free (delays arrive pre-sanitized, see the DasRowQFn
// contract): per-lane int16 loads, then the classic mullo/mulhi_epi16
// unpack to form the exact 32-bit products. The TU is
// compiled with -msse2 on x86; elsewhere it degrades to the scalar bodies
// and kDasSse2Compiled is false.
#ifndef US3D_SIMD_DAS_SSE2_H
#define US3D_SIMD_DAS_SSE2_H

#include <cstdint>

namespace us3d::simd {

/// True when this TU was built with real SSE2 intrinsics.
extern const bool kDasSse2Compiled;

void das_row_sse2(const float* echo, std::int64_t samples,
                  const std::int32_t* delays, double weight, double* acc,
                  int points);

void das_row_q_sse2(const std::int16_t* echo, std::int64_t samples,
                    const std::int16_t* delays, std::int32_t weight,
                    std::int32_t* acc, int points);

}  // namespace us3d::simd

#endif  // US3D_SIMD_DAS_SSE2_H
