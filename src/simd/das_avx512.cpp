#include "simd/das_avx512.h"

#include "simd/das_scalar.h"
#include "simd/dispatch.h"

#if defined(__AVX512F__) && defined(__AVX512BW__)

#include <immintrin.h>

#include <limits>

namespace us3d::simd {

const bool kDasAvx512Compiled = true;

void das_row_avx512(const float* echo, std::int64_t samples,
                    const std::int32_t* delays, double weight, double* acc,
                    int points) {
  // Delays are int32, so when the acquisition window itself exceeds the
  // int32 range every non-negative index is in-window and the upper-bound
  // compare drops out.
  const bool windowed =
      samples <= std::numeric_limits<std::int32_t>::max();
  const __m512i vbound =
      _mm512_set1_epi32(windowed ? static_cast<std::int32_t>(samples) : 0);
  const __m512i vminus1 = _mm512_set1_epi32(-1);
  const __m512d vw = _mm512_set1_pd(weight);
  int p = 0;
  for (; p + 16 <= points; p += 16) {
    const __m512i idx =
        _mm512_loadu_si512(reinterpret_cast<const void*>(delays + p));
    __mmask16 inwin = _mm512_cmpgt_epi32_mask(idx, vminus1);
    if (windowed) {
      inwin = _kand_mask16(inwin, _mm512_cmpgt_epi32_mask(vbound, idx));
    }
    // k-masked gather: masked-out lanes are never dereferenced and take
    // the zero source — the clamp-to-zero window semantics in one
    // instruction, at 16 lanes.
    const __m512 s = _mm512_mask_i32gather_ps(_mm512_setzero_ps(), inwin, idx,
                                              echo, sizeof(float));
    // Widen to double and fold acc += w * s as separate mul + add (never
    // FMA) — the same IEEE operations per point as the scalar reference,
    // so the output is bit-identical. The upper 8 floats come out via the
    // pd-cast extract, which is plain AVX-512F.
    const __m256 s_lo = _mm512_castps512_ps256(s);
    const __m256 s_hi = _mm256_castpd_ps(
        _mm512_extractf64x4_pd(_mm512_castps_pd(s), 1));
    const __m512d lo = _mm512_cvtps_pd(s_lo);
    const __m512d hi = _mm512_cvtps_pd(s_hi);
    _mm512_storeu_pd(acc + p, _mm512_add_pd(_mm512_loadu_pd(acc + p),
                                            _mm512_mul_pd(vw, lo)));
    _mm512_storeu_pd(acc + p + 8, _mm512_add_pd(_mm512_loadu_pd(acc + p + 8),
                                                _mm512_mul_pd(vw, hi)));
  }
  if (p < points) {
    das_row_scalar(echo, samples, delays + p, weight, acc + p, points - p);
  }
}

void das_row_q_avx512(const std::int16_t* echo, std::int64_t samples,
                      const std::int16_t* delays, std::int32_t weight,
                      std::int32_t* acc, int points) {
  // The quantized contract pre-sanitizes delays into [0, samples] (the
  // sentinel reads zeroed padding), so the loop is compare-free and the
  // gather runs unmasked. As in the AVX2 body, one vpmaddwd against the
  // pattern word [0 | weight] turns each gathered lane [echo[d+1] |
  // echo[d]] into the exact int32 product weight * echo[d] — no
  // sign-extension, no vpmulld. vpmaddwd on zmm is AVX-512BW, which this
  // TU requires alongside F.
  // On top of that, the same pair-compression as the AVX2 body: sanitized
  // delay rows are smooth (adjacent points usually differ by <= 1 sample),
  // so for each group of 32 points the 16 loaded lanes split into even/odd
  // halves and, when every pair fits one 32-bit lane at its min index, a
  // single 16-lane gather serves all 32 points — per-lane patterns (the
  // weight shifted into the half each point's sample occupies) then pick
  // the right int16. Gather lanes are the load-port bottleneck, so halving
  // them is what pushes the quantized kernel past the double one. Wide
  // groups fall back to two plain gathers; both paths run the identical
  // exact per-point arithmetic, preserving the bit-exact backend contract.
  static_cast<void>(samples);
  const __m512i vw = _mm512_set1_epi32(weight);
  const __m512i vone = _mm512_set1_epi32(1);
  const __m512i vlow16 = _mm512_set1_epi32(0xFFFF);
  // Natural-order restore for the unpacklo/hi halves: 64-bit element picks
  // across (lo, hi) that interleave their 128-bit chunks back to points
  // 0..15 and 16..31.
  const __m512i restore0 =
      _mm512_setr_epi64(0, 1, 8, 9, 2, 3, 10, 11);
  const __m512i restore1 =
      _mm512_setr_epi64(4, 5, 12, 13, 6, 7, 14, 15);
  int p = 0;
  for (; p + 32 <= points; p += 32) {
    const __m512i d =
        _mm512_loadu_si512(reinterpret_cast<const void*>(delays + p));
    // Even/odd point split of the 32 int16 delays; sanitized values are in
    // [0, 32767], so the 16-bit halves zero-extend exactly.
    const __m512i de = _mm512_and_si512(d, vlow16);   // points p, p+2, ...
    const __m512i do_ = _mm512_srli_epi32(d, 16);     // points p+1, p+3, ...
    __m512i te;  // even points' (weight * sample) >> frac
    __m512i to;  // odd points'
    const __mmask16 wide = _mm512_cmpgt_epi32_mask(
        _mm512_abs_epi32(_mm512_sub_epi32(de, do_)), vone);
    if (static_cast<unsigned>(_cvtmask16_u32(wide)) == 0u) {
      // All 16 pairs within one step: one gather of [echo[mn+1] | echo[mn]]
      // covers both points of every pair; the pattern word is the weight
      // shifted by 16 * (d - mn), selecting the lane half per point.
      const __m512i mn = _mm512_min_epi32(de, do_);
      const __m512i raw = _mm512_i32gather_epi32(
          mn, reinterpret_cast<const void*>(echo), 2);
      const __m512i pat_e = _mm512_sllv_epi32(
          vw, _mm512_slli_epi32(_mm512_sub_epi32(de, mn), 4));
      const __m512i pat_o = _mm512_sllv_epi32(
          vw, _mm512_slli_epi32(_mm512_sub_epi32(do_, mn), 4));
      te = _mm512_srai_epi32(_mm512_madd_epi16(raw, pat_e),
                             kQuantWeightFracBits);
      to = _mm512_srai_epi32(_mm512_madd_epi16(raw, pat_o),
                             kQuantWeightFracBits);
    } else {
      // Wide pair(s): gather the halves separately. Each lane still
      // overreads one int16 past its target — covered by the two
      // guaranteed readable entries past the last sample.
      const __m512i raw_e = _mm512_i32gather_epi32(
          de, reinterpret_cast<const void*>(echo), 2);
      const __m512i raw_o = _mm512_i32gather_epi32(
          do_, reinterpret_cast<const void*>(echo), 2);
      te = _mm512_srai_epi32(_mm512_madd_epi16(raw_e, vw),
                             kQuantWeightFracBits);
      to = _mm512_srai_epi32(_mm512_madd_epi16(raw_o, vw),
                             kQuantWeightFracBits);
    }
    // Interleave even/odd terms back to point order and accumulate.
    const __m512i lo = _mm512_unpacklo_epi32(te, to);
    const __m512i hi = _mm512_unpackhi_epi32(te, to);
    void* acc0 = reinterpret_cast<void*>(acc + p);
    void* acc1 = reinterpret_cast<void*>(acc + p + 16);
    _mm512_storeu_si512(
        acc0, _mm512_add_epi32(
                  _mm512_loadu_si512(acc0),
                  _mm512_permutex2var_epi64(lo, restore0, hi)));
    _mm512_storeu_si512(
        acc1, _mm512_add_epi32(
                  _mm512_loadu_si512(acc1),
                  _mm512_permutex2var_epi64(lo, restore1, hi)));
  }
  for (; p + 16 <= points; p += 16) {
    // Sign-extend 16 int16 indices to one 16-lane int32 vector (AVX-512F
    // keeps the whole iteration in a single register, where AVX2 needs
    // two 8-lane halves).
    const __m512i idx = _mm512_cvtepi16_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(delays + p)));
    // Unmasked 32-bit gather at int16 granularity (scale 2): each lane
    // loads the target sample in its low half plus the following int16 —
    // the two readable entries past the last sample QuantizedEchoBuffer
    // guarantees.
    const __m512i raw = _mm512_i32gather_epi32(
        idx, reinterpret_cast<const void*>(echo), 2);
    const __m512i t =
        _mm512_srai_epi32(_mm512_madd_epi16(raw, vw), kQuantWeightFracBits);
    _mm512_storeu_si512(
        reinterpret_cast<void*>(acc + p),
        _mm512_add_epi32(
            _mm512_loadu_si512(reinterpret_cast<const void*>(acc + p)), t));
  }
  if (p < points) {
    das_row_q_scalar(echo, samples, delays + p, weight, acc + p, points - p);
  }
}

}  // namespace us3d::simd

#else  // !(__AVX512F__ && __AVX512BW__)

namespace us3d::simd {

const bool kDasAvx512Compiled = false;

// Keeps the symbols defined when the TU is built without -mavx512f
// -mavx512bw (non-x86 targets, or a build system that skipped the flags);
// dispatch reports the backend unavailable, so these bodies are
// unreachable through resolve.
void das_row_avx512(const float* echo, std::int64_t samples,
                    const std::int32_t* delays, double weight, double* acc,
                    int points) {
  das_row_scalar(echo, samples, delays, weight, acc, points);
}

void das_row_q_avx512(const std::int16_t* echo, std::int64_t samples,
                      const std::int16_t* delays, std::int32_t weight,
                      std::int32_t* acc, int points) {
  das_row_q_scalar(echo, samples, delays, weight, acc, points);
}

}  // namespace us3d::simd

#endif
