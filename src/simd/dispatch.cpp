#include "simd/dispatch.h"

#include <cstdlib>
#include <stdexcept>
#include <string>

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#if __has_include(<asm/hwcap.h>)
#include <asm/hwcap.h>
#endif
#endif

#include "simd/das_avx2.h"
#include "simd/das_avx512.h"
#include "simd/das_neon.h"
#include "simd/das_scalar.h"
#include "simd/das_sse2.h"

namespace us3d::simd {

namespace {

#if defined(__x86_64__) || defined(__i386__)
bool cpu_supports(DasBackend backend) {
  // __builtin_cpu_supports is constant-time after the first call; call
  // __builtin_cpu_init() defensively so this is safe from static
  // initializers too.
  __builtin_cpu_init();
  switch (backend) {
    case DasBackend::kSSE2:
      return __builtin_cpu_supports("sse2") != 0;
    case DasBackend::kAVX2:
      return __builtin_cpu_supports("avx2") != 0;
    case DasBackend::kAVX512:
      // The double kernel is AVX-512F; the quantized kernel's vpmaddwd on
      // zmm is AVX-512BW. Any F+BW part also has avx2 — require all three
      // so the row functions (which may share the AVX2 bodies on a
      // degraded build) are always safe too.
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0 &&
             __builtin_cpu_supports("avx2") != 0;
    default:
      return false;
  }
}
#elif defined(__aarch64__) && defined(__linux__) && defined(HWCAP_ASIMD)
bool cpu_supports(DasBackend backend) {
  if (backend != DasBackend::kNEON) return false;
  // AdvSIMD is architecturally mandatory on AArch64, so this could just
  // return true — but availability is a runtime claim, so ask the
  // kernel's hwcap word instead of asserting the architecture manual.
  // qemu-user passes the emulated hwcaps through, so the CI lane
  // exercises this exact path.
  return (::getauxval(AT_HWCAP) & HWCAP_ASIMD) != 0;
}
#else
bool cpu_supports(DasBackend backend) {
  // Other targets (32-bit ARM, non-Linux AArch64, ...): NEON capability
  // is a compile-time property of the target.
  return backend == DasBackend::kNEON && kDasNeonCompiled;
}
#endif

[[noreturn]] void throw_unavailable(DasBackend backend, const char* via) {
  throw std::runtime_error(
      std::string("us3d::simd: backend '") + backend_name(backend) +
      "' requested via " + via + " is not available on this host (" +
      (backend_compiled(backend) ? "compiled in, but the CPU lacks it"
                                 : "not compiled into this build") +
      ")");
}

}  // namespace

const char* backend_name(DasBackend backend) {
  switch (backend) {
    case DasBackend::kAuto:
      return "auto";
    case DasBackend::kScalar:
      return "scalar";
    case DasBackend::kSSE2:
      return "sse2";
    case DasBackend::kAVX2:
      return "avx2";
    case DasBackend::kAVX512:
      return "avx512";
    case DasBackend::kNEON:
      return "neon";
  }
  return "unknown";
}

std::optional<DasBackend> parse_backend(std::string_view name) {
  if (name == "auto") return DasBackend::kAuto;
  if (name == "scalar") return DasBackend::kScalar;
  if (name == "sse2") return DasBackend::kSSE2;
  if (name == "avx2") return DasBackend::kAVX2;
  if (name == "avx512") return DasBackend::kAVX512;
  if (name == "neon") return DasBackend::kNEON;
  return std::nullopt;
}

bool backend_compiled(DasBackend backend) {
  switch (backend) {
    case DasBackend::kScalar:
      return true;
    case DasBackend::kSSE2:
      return kDasSse2Compiled;
    case DasBackend::kAVX2:
      return kDasAvx2Compiled;
    case DasBackend::kAVX512:
      return kDasAvx512Compiled;
    case DasBackend::kNEON:
      return kDasNeonCompiled;
    case DasBackend::kAuto:
      return false;
  }
  return false;
}

bool backend_available(DasBackend backend) {
  if (backend == DasBackend::kScalar) return true;
  if (backend == DasBackend::kAuto) return false;
  return backend_compiled(backend) && cpu_supports(backend);
}

std::vector<DasBackend> available_backends() {
  std::vector<DasBackend> result;
  for (DasBackend b : {DasBackend::kAVX512, DasBackend::kAVX2,
                       DasBackend::kNEON, DasBackend::kSSE2}) {
    if (backend_available(b)) result.push_back(b);
  }
  result.push_back(DasBackend::kScalar);
  return result;
}

DasBackend resolve_backend(DasBackend requested) {
  if (requested != DasBackend::kAuto) {
    if (!backend_available(requested)) {
      throw_unavailable(requested, "BeamformOptions/PipelineConfig");
    }
    return requested;
  }
  // Re-read the environment on every resolve (it is one getenv per block
  // sweep, not per point) so forced-backend test processes and long-lived
  // services behave predictably.
  if (const char* env = std::getenv("US3D_SIMD");
      env != nullptr && *env != '\0') {
    const std::optional<DasBackend> forced = parse_backend(env);
    if (!forced) {
      throw std::runtime_error(
          std::string("us3d::simd: US3D_SIMD='") + env +
          "' is not a backend (want auto|scalar|sse2|avx2|avx512|neon)");
    }
    if (*forced != DasBackend::kAuto) {
      if (!backend_available(*forced)) throw_unavailable(*forced, "US3D_SIMD");
      return *forced;
    }
  }
  return available_backends().front();
}

DasRowFn das_row_fn(DasBackend backend) {
  switch (backend) {
    case DasBackend::kScalar:
      return &das_row_scalar;
    case DasBackend::kSSE2:
      return &das_row_sse2;
    case DasBackend::kAVX2:
      return &das_row_avx2;
    case DasBackend::kAVX512:
      return &das_row_avx512;
    case DasBackend::kNEON:
      return &das_row_neon;
    case DasBackend::kAuto:
      break;
  }
  throw std::logic_error(
      "us3d::simd: das_row_fn wants a concrete backend; call "
      "resolve_backend first");
}

DasRowQFn das_row_q_fn(DasBackend backend) {
  switch (backend) {
    case DasBackend::kScalar:
      return &das_row_q_scalar;
    case DasBackend::kSSE2:
      return &das_row_q_sse2;
    case DasBackend::kAVX2:
      return &das_row_q_avx2;
    case DasBackend::kAVX512:
      return &das_row_q_avx512;
    case DasBackend::kNEON:
      return &das_row_q_neon;
    case DasBackend::kAuto:
      break;
  }
  throw std::logic_error(
      "us3d::simd: das_row_q_fn wants a concrete backend; call "
      "resolve_backend first");
}

const char* precision_name(Precision precision) {
  switch (precision) {
    case Precision::kAuto:
      return "auto";
    case Precision::kDouble:
      return "double";
    case Precision::kQuantized:
      return "quantized";
  }
  return "unknown";
}

std::optional<Precision> parse_precision(std::string_view name) {
  if (name == "auto") return Precision::kAuto;
  if (name == "double") return Precision::kDouble;
  if (name == "quantized") return Precision::kQuantized;
  return std::nullopt;
}

Precision resolve_precision(Precision requested) {
  if (requested != Precision::kAuto) return requested;
  if (const char* env = std::getenv("US3D_PRECISION");
      env != nullptr && *env != '\0') {
    const std::optional<Precision> forced = parse_precision(env);
    if (!forced) {
      throw std::runtime_error(
          std::string("us3d::simd: US3D_PRECISION='") + env +
          "' is not a precision (want auto|double|quantized)");
    }
    if (*forced != Precision::kAuto) return *forced;
  }
  return Precision::kDouble;
}

}  // namespace us3d::simd
