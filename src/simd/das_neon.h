// NEON slot behind the DAS row contract (simd/dispatch.h). The dispatch
// wiring, availability reporting and tests treat it exactly like the x86
// backends, but the body is still the scalar reference even on aarch64 —
// the vector implementation is an open ROADMAP item. On non-ARM builds
// kDasNeonCompiled is false and the backend reports unavailable.
#ifndef US3D_SIMD_DAS_NEON_H
#define US3D_SIMD_DAS_NEON_H

#include <cstdint>

namespace us3d::simd {

/// True when this TU was built on a NEON-capable target.
extern const bool kDasNeonCompiled;

void das_row_neon(const float* echo, std::int64_t samples,
                  const std::int32_t* delays, double weight, double* acc,
                  int points);

}  // namespace us3d::simd

#endif  // US3D_SIMD_DAS_NEON_H
