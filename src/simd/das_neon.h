// NEON slot behind the DAS row contracts (simd/dispatch.h). The dispatch
// wiring, availability reporting and tests treat it exactly like the x86
// backends, but both bodies are still the scalar references even on
// aarch64 — the double vector implementation is an open ROADMAP item, and
// the int16 quantized body (a natural fit for NEON's native 16-bit
// vmull/vshr lanes) is noted there as its follow-on. On non-ARM builds
// kDasNeonCompiled is false and the backend reports unavailable.
#ifndef US3D_SIMD_DAS_NEON_H
#define US3D_SIMD_DAS_NEON_H

#include <cstdint>

namespace us3d::simd {

/// True when this TU was built on a NEON-capable target.
extern const bool kDasNeonCompiled;

void das_row_neon(const float* echo, std::int64_t samples,
                  const std::int32_t* delays, double weight, double* acc,
                  int points);

void das_row_q_neon(const std::int16_t* echo, std::int64_t samples,
                    const std::int16_t* delays, std::int32_t weight,
                    std::int32_t* acc, int points);

}  // namespace us3d::simd

#endif  // US3D_SIMD_DAS_NEON_H
