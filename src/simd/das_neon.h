// AArch64 AdvSIMD (NEON) backend for the DAS row contracts
// (simd/dispatch.h). The double row works in float64x2 lanes with
// per-lane masked loads of the clamped delays (AdvSIMD has no gather) and
// separate vmulq/vaddq folds, so it is bit-identical to the scalar
// reference like every other backend. The int16 quantized row runs at
// NEON's native 16-bit lane width: widening vmull_s16 products, the
// contract's arithmetic shift, int32 lane accumulates — sweeping the
// sentinel-padded QuantizedDelayPlane rows with no scalar tail. On
// non-AArch64 builds kDasNeonCompiled is false and the backend reports
// unavailable (the bodies degrade to the scalar references, unreachable
// through resolve).
#ifndef US3D_SIMD_DAS_NEON_H
#define US3D_SIMD_DAS_NEON_H

#include <cstdint>

namespace us3d::simd {

/// True when this TU was built on a NEON-capable AArch64 target.
extern const bool kDasNeonCompiled;

void das_row_neon(const float* echo, std::int64_t samples,
                  const std::int32_t* delays, double weight, double* acc,
                  int points);

void das_row_q_neon(const std::int16_t* echo, std::int64_t samples,
                    const std::int16_t* delays, std::int32_t weight,
                    std::int32_t* acc, int points);

}  // namespace us3d::simd

#endif  // US3D_SIMD_DAS_NEON_H
