#include "simd/das_avx2.h"

#include "simd/das_scalar.h"
#include "simd/dispatch.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <limits>

namespace us3d::simd {

const bool kDasAvx2Compiled = true;

void das_row_avx2(const float* echo, std::int64_t samples,
                  const std::int32_t* delays, double weight, double* acc,
                  int points) {
  // Delays are int32, so when the acquisition window itself exceeds the
  // int32 range every non-negative index is in-window and the upper-bound
  // compare drops out.
  const bool windowed =
      samples <= std::numeric_limits<std::int32_t>::max();
  const __m256i vbound =
      _mm256_set1_epi32(windowed ? static_cast<std::int32_t>(samples) : 0);
  const __m256i vminus1 = _mm256_set1_epi32(-1);
  const __m256d vw = _mm256_set1_pd(weight);
  int p = 0;
  for (; p + 8 <= points; p += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(delays + p));
    __m256i inwin = _mm256_cmpgt_epi32(idx, vminus1);
    if (windowed) {
      inwin = _mm256_and_si256(inwin, _mm256_cmpgt_epi32(vbound, idx));
    }
    // Masked gather: lanes with a zero mask are not loaded (no fault, no
    // dereference) and take the zero source — the clamp-to-zero window
    // semantics in one instruction.
    const __m256 s = _mm256_mask_i32gather_ps(_mm256_setzero_ps(), echo, idx,
                                              _mm256_castsi256_ps(inwin),
                                              sizeof(float));
    // Widen to double and fold acc += w * s as separate mul + add (never
    // FMA) — the same IEEE operations per point as the scalar reference,
    // so the output is bit-identical.
    const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(s));
    const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(s, 1));
    _mm256_storeu_pd(
        acc + p, _mm256_add_pd(_mm256_loadu_pd(acc + p), _mm256_mul_pd(vw, lo)));
    _mm256_storeu_pd(acc + p + 4,
                     _mm256_add_pd(_mm256_loadu_pd(acc + p + 4),
                                   _mm256_mul_pd(vw, hi)));
  }
  if (p < points) {
    das_row_scalar(echo, samples, delays + p, weight, acc + p, points - p);
  }
}

void das_row_q_avx2(const std::int16_t* echo, std::int64_t samples,
                    const std::int16_t* delays, std::int32_t weight,
                    std::int32_t* acc, int points) {
  // The quantized contract pre-sanitizes delays into [0, samples] (the
  // sentinel reads zeroed padding), so the whole loop is compare-free with
  // unmasked gathers, and the per-point arithmetic collapses into one
  // vpmaddwd: a gathered 32-bit lane holds [echo[i+1] | echo[i]] as two
  // int16 halves, and madd against a pattern word with `weight` in one
  // half and 0 in the other computes the exact int32 product
  // weight * echo[i +/- 0/1] in a single uop — no sign-extension, no
  // 2-uop vpmulld. weight < 2^15, so set1_epi32(weight) is the low-half
  // pattern; shifting it left by 16 selects the high half instead.
  //
  // On top of that, the kernel exploits the smoothness of sanitized delay
  // rows (the field is a sampled distance function, so adjacent points
  // usually differ by <= 1 sample): for each group of 16 points it splits
  // the 8 loaded lanes into even/odd halves and, when every pair fits a
  // single 32-bit lane at its min index, ONE 8-lane gather serves all 16
  // points — per-lane madd patterns then pick each point's half. Gather
  // lanes are the load-port bottleneck both here and in the double body
  // (one lane per point there), so halving them is what pushes the
  // quantized kernel past the double one instead of tying with it. Groups
  // with any wider pair (including most sentinel boundaries) fall back to
  // two plain gathers; both paths do the identical exact per-point
  // arithmetic, so the bit-exact backend contract is untouched.
  static_cast<void>(samples);
  const __m256i vw_lo = _mm256_set1_epi32(weight);
  const __m256i vone = _mm256_set1_epi32(1);
  const __m256i vlow16 = _mm256_set1_epi32(0xFFFF);
  int p = 0;
  for (; p + 16 <= points; p += 16) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(delays + p));
    // Even/odd point split of the 16 int16 delays; sanitized values are in
    // [0, 32767], so the 16-bit halves zero-extend exactly.
    const __m256i de = _mm256_and_si256(d, vlow16);  // points p, p+2, ...
    const __m256i do_ = _mm256_srli_epi32(d, 16);    // points p+1, p+3, ...
    __m256i te;  // even points' (weight * sample) >> frac, natural order
    __m256i to;  // odd points'
    const __m256i wide = _mm256_cmpgt_epi32(
        _mm256_abs_epi32(_mm256_sub_epi32(de, do_)), vone);
    if (_mm256_testz_si256(wide, wide)) {
      const __m256i mn = _mm256_min_epi32(de, do_);
      // All 8 pairs within one step: one gather of [echo[mn+1] | echo[mn]]
      // covers both points of every pair. Each point's pattern word is the
      // weight shifted into the half its sample occupies: offset (d - mn)
      // is 0 or 1, so a variable shift by 16 * offset builds [0 | w] or
      // [w | 0] per lane.
      const __m256i raw =
          _mm256_i32gather_epi32(reinterpret_cast<const int*>(echo), mn, 2);
      const __m256i pat_e = _mm256_sllv_epi32(
          vw_lo, _mm256_slli_epi32(_mm256_sub_epi32(de, mn), 4));
      const __m256i pat_o = _mm256_sllv_epi32(
          vw_lo, _mm256_slli_epi32(_mm256_sub_epi32(do_, mn), 4));
      te = _mm256_srai_epi32(_mm256_madd_epi16(raw, pat_e),
                             kQuantWeightFracBits);
      to = _mm256_srai_epi32(_mm256_madd_epi16(raw, pat_o),
                             kQuantWeightFracBits);
    } else {
      // Wide pair(s) in the group: gather the halves separately. Each lane
      // still overreads one int16 past its target — covered by the two
      // guaranteed readable entries past the last sample.
      const __m256i raw_e =
          _mm256_i32gather_epi32(reinterpret_cast<const int*>(echo), de, 2);
      const __m256i raw_o =
          _mm256_i32gather_epi32(reinterpret_cast<const int*>(echo), do_, 2);
      te = _mm256_srai_epi32(_mm256_madd_epi16(raw_e, vw_lo),
                             kQuantWeightFracBits);
      to = _mm256_srai_epi32(_mm256_madd_epi16(raw_o, vw_lo),
                             kQuantWeightFracBits);
    }
    // Interleave even/odd terms back to point order and accumulate.
    const __m256i lo = _mm256_unpacklo_epi32(te, to);  // 0..3  | 8..11
    const __m256i hi = _mm256_unpackhi_epi32(te, to);  // 4..7  | 12..15
    __m256i* acc0 = reinterpret_cast<__m256i*>(acc + p);
    __m256i* acc1 = reinterpret_cast<__m256i*>(acc + p + 8);
    _mm256_storeu_si256(
        acc0, _mm256_add_epi32(_mm256_loadu_si256(acc0),
                               _mm256_permute2x128_si256(lo, hi, 0x20)));
    _mm256_storeu_si256(
        acc1, _mm256_add_epi32(_mm256_loadu_si256(acc1),
                               _mm256_permute2x128_si256(lo, hi, 0x31)));
  }
  for (; p + 8 <= points; p += 8) {
    const __m256i idx = _mm256_cvtepi16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(delays + p)));
    const __m256i raw =
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(echo), idx, 2);
    const __m256i t =
        _mm256_srai_epi32(_mm256_madd_epi16(raw, vw_lo), kQuantWeightFracBits);
    __m256i* accv = reinterpret_cast<__m256i*>(acc + p);
    _mm256_storeu_si256(accv, _mm256_add_epi32(_mm256_loadu_si256(accv), t));
  }
  if (p < points) {
    das_row_q_scalar(echo, samples, delays + p, weight, acc + p, points - p);
  }
}

}  // namespace us3d::simd

#else  // !defined(__AVX2__)

namespace us3d::simd {

const bool kDasAvx2Compiled = false;

// Keeps the symbols defined when the TU is built without -mavx2 (non-x86
// targets, or a build system that skipped the per-file flag); dispatch
// reports the backend unavailable, so these bodies are unreachable through
// resolve.
void das_row_avx2(const float* echo, std::int64_t samples,
                  const std::int32_t* delays, double weight, double* acc,
                  int points) {
  das_row_scalar(echo, samples, delays, weight, acc, points);
}

void das_row_q_avx2(const std::int16_t* echo, std::int64_t samples,
                    const std::int16_t* delays, std::int32_t weight,
                    std::int32_t* acc, int points) {
  das_row_q_scalar(echo, samples, delays, weight, acc, points);
}

}  // namespace us3d::simd

#endif
