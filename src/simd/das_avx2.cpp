#include "simd/das_avx2.h"

#include "simd/das_scalar.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <limits>

namespace us3d::simd {

const bool kDasAvx2Compiled = true;

void das_row_avx2(const float* echo, std::int64_t samples,
                  const std::int32_t* delays, double weight, double* acc,
                  int points) {
  // Delays are int32, so when the acquisition window itself exceeds the
  // int32 range every non-negative index is in-window and the upper-bound
  // compare drops out.
  const bool windowed =
      samples <= std::numeric_limits<std::int32_t>::max();
  const __m256i vbound =
      _mm256_set1_epi32(windowed ? static_cast<std::int32_t>(samples) : 0);
  const __m256i vminus1 = _mm256_set1_epi32(-1);
  const __m256d vw = _mm256_set1_pd(weight);
  int p = 0;
  for (; p + 8 <= points; p += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(delays + p));
    __m256i inwin = _mm256_cmpgt_epi32(idx, vminus1);
    if (windowed) {
      inwin = _mm256_and_si256(inwin, _mm256_cmpgt_epi32(vbound, idx));
    }
    // Masked gather: lanes with a zero mask are not loaded (no fault, no
    // dereference) and take the zero source — the clamp-to-zero window
    // semantics in one instruction.
    const __m256 s = _mm256_mask_i32gather_ps(_mm256_setzero_ps(), echo, idx,
                                              _mm256_castsi256_ps(inwin),
                                              sizeof(float));
    // Widen to double and fold acc += w * s as separate mul + add (never
    // FMA) — the same IEEE operations per point as the scalar reference,
    // so the output is bit-identical.
    const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(s));
    const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(s, 1));
    _mm256_storeu_pd(
        acc + p, _mm256_add_pd(_mm256_loadu_pd(acc + p), _mm256_mul_pd(vw, lo)));
    _mm256_storeu_pd(acc + p + 4,
                     _mm256_add_pd(_mm256_loadu_pd(acc + p + 4),
                                   _mm256_mul_pd(vw, hi)));
  }
  if (p < points) {
    das_row_scalar(echo, samples, delays + p, weight, acc + p, points - p);
  }
}

}  // namespace us3d::simd

#else  // !defined(__AVX2__)

namespace us3d::simd {

const bool kDasAvx2Compiled = false;

// Keeps the symbol defined when the TU is built without -mavx2 (non-x86
// targets, or a build system that skipped the per-file flag); dispatch
// reports the backend unavailable, so this body is unreachable through
// resolve.
void das_row_avx2(const float* echo, std::int64_t samples,
                  const std::int32_t* delays, double weight, double* acc,
                  int points) {
  das_row_scalar(echo, samples, delays, weight, acc, points);
}

}  // namespace us3d::simd

#endif
