// Minimal recursive JSON reader — the inverse of JsonWriter and the one
// parser behind every JSON the repo consumes: scenario descriptors on the
// service wire, metrics snapshots and Chrome trace events in the
// observability tests. Grown out of the scenario module's flat parser,
// with the same house strictness: tolerant of whitespace and key order,
// but malformed input, duplicate keys and trailing characters all throw
// ContractViolation — a half-understood document is never acted on.
//
// Numbers keep their raw text alongside the parsed double so callers can
// enforce their own width rules ("table_bits is not an integer") exactly
// as the flat parser did.
#ifndef US3D_COMMON_JSON_READER_H
#define US3D_COMMON_JSON_READER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace us3d {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Value accessors throw ContractViolation on a kind mismatch, naming
  /// `what` (usually the field being read) in the message.
  bool as_bool(const std::string& what = "value") const;
  double as_double(const std::string& what = "value") const;
  /// Strict integer: the raw text must parse fully as a base-10 integer
  /// (so "2.5" and "1e3" are rejected even though they are numbers).
  std::int64_t as_int(const std::string& what = "value") const;
  const std::string& as_string(const std::string& what = "value") const;

  /// Raw number text (or unescaped string body) for error messages.
  const std::string& text() const { return text_; }

  // --- objects ---------------------------------------------------------
  /// Members in document order. Duplicate keys were rejected at parse.
  const std::vector<std::pair<std::string, JsonValue>>& members() const;
  /// Member lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;
  /// Member lookup that throws when the key is missing.
  const JsonValue& at(std::string_view key) const;

  // --- arrays ----------------------------------------------------------
  const std::vector<JsonValue>& elements() const;
  std::size_t size() const { return elements_.size(); }

 private:
  friend class JsonReader;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string text_;  // raw number text, or the unescaped string body
  std::vector<std::pair<std::string, JsonValue>> members_;
  std::vector<JsonValue> elements_;
};

/// Parses one complete JSON document. Throws ContractViolation on any
/// syntax error, duplicate object key, or trailing non-whitespace.
JsonValue parse_json(std::string_view text);

}  // namespace us3d

#endif  // US3D_COMMON_JSON_READER_H
