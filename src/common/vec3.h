// Minimal 3D vector used for probe-element and focal-point coordinates.
// Coordinates follow the paper's convention: the transducer lies in the z=0
// plane, x is azimuth, y is elevation, z points into the body.
#ifndef US3D_COMMON_VEC3_H
#define US3D_COMMON_VEC3_H

#include <cmath>

namespace us3d {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }

  constexpr bool operator==(const Vec3& o) const = default;

  constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr double norm_squared() const { return dot(*this); }
  double norm() const { return std::sqrt(norm_squared()); }
  double distance_to(const Vec3& o) const { return (*this - o).norm(); }

  Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? (*this) / n : Vec3{};
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

}  // namespace us3d

#endif  // US3D_COMMON_VEC3_H
