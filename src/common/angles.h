// Degree/radian helpers. All internal computation uses radians; degrees
// appear only at configuration boundaries (the paper quotes 73 deg fields).
#ifndef US3D_COMMON_ANGLES_H
#define US3D_COMMON_ANGLES_H

#include <numbers>

namespace us3d {

constexpr double kPi = std::numbers::pi;

constexpr double deg_to_rad(double deg) { return deg * kPi / 180.0; }
constexpr double rad_to_deg(double rad) { return rad * 180.0 / kPi; }

}  // namespace us3d

#endif  // US3D_COMMON_ANGLES_H
