// Deterministic pseudo-random generation for the Monte-Carlo experiments.
// SplitMix64 is used rather than std::mt19937 + distributions so that the
// exact sample stream is reproducible across standard libraries.
#ifndef US3D_COMMON_PRNG_H
#define US3D_COMMON_PRNG_H

#include <cstdint>

namespace us3d {

/// SplitMix64 (Steele, Lea, Flood 2014): tiny, fast, passes BigCrush when
/// used as a stream. Good enough for error Monte-Carlo; never used for
/// anything security-relevant.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next_u64() {
    state_ += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1) with 53 random bits.
  constexpr double next_unit() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double next_in(double lo, double hi) {
    return lo + (hi - lo) * next_unit();
  }

  /// Uniform integer in [0, n). n must be > 0. Uses rejection-free modulo;
  /// bias is negligible for the n << 2^64 used here.
  constexpr std::uint64_t next_below(std::uint64_t n) {
    return next_u64() % n;
  }

 private:
  std::uint64_t state_;
};

}  // namespace us3d

#endif  // US3D_COMMON_PRNG_H
