// Minimal streaming JSON emitter shared by every exporter in the repo
// (pipeline/service stats, scenario descriptors, trace events, metrics
// snapshots), so there is exactly one place that knows how to place
// commas and escape strings instead of N hand-rolled dialects. The
// writer is append-only over an std::ostream: begin/end calls must
// balance (checked with US3D_EXPECTS), keys are only legal inside
// objects, and numbers use the stream's default formatting — identical
// to what the historical `os << value` emitters produced, so porting an
// exporter onto JsonWriter never changes its output contract.
#ifndef US3D_COMMON_JSON_WRITER_H
#define US3D_COMMON_JSON_WRITER_H

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace us3d {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits `"k":` inside an object. Every key must be followed by exactly
  /// one value (or container) before the next key.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view v);  ///< escaped via json_escape
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  /// Splices pre-rendered JSON verbatim (for nesting an exporter that
  /// already returns a JSON object, e.g. LatencyStats::to_json()).
  JsonWriter& value_raw(std::string_view json);

  // key + value in one call, for the flat-object emitters.
  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }
  JsonWriter& kv_raw(std::string_view k, std::string_view json) {
    key(k);
    return value_raw(json);
  }

  /// True once every begin has been matched by its end.
  bool complete() const { return stack_.empty() && wrote_root_; }

 private:
  enum class Frame : char { kObject, kArray };

  /// Comma/«expects a value» bookkeeping shared by every emission.
  void before_value();

  std::ostream& os_;
  std::vector<Frame> stack_;
  bool comma_pending_ = false;  ///< next sibling needs a ',' first
  bool key_pending_ = false;    ///< a key was written, value must follow
  bool wrote_root_ = false;
};

}  // namespace us3d

#endif  // US3D_COMMON_JSON_WRITER_H
