// Lightweight table/CSV emitters for the benchmark harnesses, so every
// bench prints the same rows/series the paper reports in a readable form.
#ifndef US3D_COMMON_TABLE_IO_H
#define US3D_COMMON_TABLE_IO_H

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace us3d {

/// Accumulates rows and renders a GitHub-flavoured Markdown table with
/// column widths padded for terminal readability.
class MarkdownTable {
 public:
  explicit MarkdownTable(std::vector<std::string> headers);

  MarkdownTable& add_row(std::vector<std::string> cells);
  std::size_t row_count() const { return rows_.size(); }

  std::string to_string() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Accumulates rows and renders RFC-4180-ish CSV (fields containing comma,
/// quote or newline are quoted).
class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> headers);

  CsvTable& add_row(std::vector<std::string> cells);
  std::string to_string() const;

 private:
  static std::string escape(const std::string& field);
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes a string for embedding inside a JSON string literal: quote,
/// backslash and control characters (as \n, \r, \t or \u00XX). One shared
/// implementation so every JSON emitter in the repo produces loadable
/// output even for hostile names.
std::string json_escape(const std::string& s);

/// Number formatting helpers shared by benches.
std::string format_double(double v, int precision = 3);
std::string format_si(double v, const std::string& unit, int precision = 3);
std::string format_percent(double fraction, int precision = 1);
std::string format_bits(double bits);    ///< "45.0 Mb" style (decimal)
std::string format_bytes(double bytes);  ///< "5.3 GB" style (decimal)
std::string format_count(double n);      ///< "164e9" style scientific-ish

}  // namespace us3d

#endif  // US3D_COMMON_TABLE_IO_H
