#include "common/latency.h"

#include <sstream>

#include "common/json_writer.h"

namespace us3d {

std::string LatencyStats::to_json() const {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object()
      .kv("count", count)
      .kv("total_ms", total_s * 1e3)
      .kv("mean_ms", mean_s() * 1e3)
      .kv("min_ms", min_s * 1e3)
      .kv("max_ms", max_s * 1e3)
      .end_object();
  return os.str();
}

}  // namespace us3d
