// Minimal over-aligned allocator for std::vector-backed SoA buffers whose
// rows are laid out at a cache-line pitch (delay/delay_plane.h). C++17
// aligned operator new does the heavy lifting.
#ifndef US3D_COMMON_ALIGNED_H
#define US3D_COMMON_ALIGNED_H

#include <cstddef>
#include <new>

namespace us3d {

template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two no smaller than alignof(T)");

  using value_type = T;
  // The non-type Alignment parameter defeats allocator_traits' default
  // rebind deduction, so spell it out.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const {
    return true;
  }
};

}  // namespace us3d

#endif  // US3D_COMMON_ALIGNED_H
