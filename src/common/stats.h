// Streaming statistics used by the accuracy experiments (Sec. VI-A).
#ifndef US3D_COMMON_STATS_H
#define US3D_COMMON_STATS_H

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace us3d {

/// Welford-style running statistics over a stream of samples.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Error-specific statistics: tracks |e| mean/max/RMS plus the count of
/// samples whose |e| exceeds a threshold (e.g. "off by more than 1 sample").
class AbsErrorStats {
 public:
  explicit AbsErrorStats(double exceed_threshold = 1.0)
      : threshold_(exceed_threshold) {}

  void add(double error);

  std::size_t count() const { return stats_.count(); }
  double mean_abs() const { return stats_.mean(); }
  double max_abs() const { return stats_.count() ? stats_.max() : 0.0; }
  double rms() const;
  std::size_t count_exceeding() const { return exceeding_; }
  double fraction_exceeding() const;
  double threshold() const { return threshold_; }

 private:
  RunningStats stats_;  // over |e|
  double sum_sq_ = 0.0;
  std::size_t exceeding_ = 0;
  double threshold_;
};

/// Exact sample-set quantiles for modest streams (per-session latency
/// distributions in the imaging service). Samples are stored and sorted
/// lazily on the first quantile() after an add(), so repeated reads are
/// cheap; use a histogram for unbounded streams.
class SampleQuantiles {
 public:
  void add(double x);
  /// Appends every sample of `other` (service-wide aggregation over
  /// per-session accumulators).
  void merge(const SampleQuantiles& other);

  std::size_t count() const { return samples_.size(); }
  /// Linear-interpolated quantile for q in [0, 1]; 0 when empty.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-bin histogram over a closed interval; out-of-range samples land in
/// saturating edge bins so no sample is ever silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const;
  double bin_lower_edge(std::size_t i) const;
  double bin_width() const { return width_; }
  std::uint64_t total() const { return total_; }

  /// Render as "lo..hi: count" lines, for bench logs.
  std::string to_string(std::size_t max_lines = 32) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace us3d

#endif  // US3D_COMMON_STATS_H
