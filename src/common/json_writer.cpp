#include "common/json_writer.h"

#include <string>

#include "common/contracts.h"
#include "common/table_io.h"

namespace us3d {

void JsonWriter::before_value() {
  if (key_pending_) {
    // The value completes a "key": pair; the comma was placed with the key.
    key_pending_ = false;
    return;
  }
  US3D_EXPECTS(stack_.empty() || stack_.back() == Frame::kArray);
  US3D_EXPECTS(!(stack_.empty() && wrote_root_));  // one root value only
  if (comma_pending_) os_ << ',';
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Frame::kObject);
  comma_pending_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  US3D_EXPECTS(!stack_.empty() && stack_.back() == Frame::kObject);
  US3D_EXPECTS(!key_pending_);
  os_ << '}';
  stack_.pop_back();
  comma_pending_ = true;
  wrote_root_ = wrote_root_ || stack_.empty();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Frame::kArray);
  comma_pending_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  US3D_EXPECTS(!stack_.empty() && stack_.back() == Frame::kArray);
  os_ << ']';
  stack_.pop_back();
  comma_pending_ = true;
  wrote_root_ = wrote_root_ || stack_.empty();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  US3D_EXPECTS(!stack_.empty() && stack_.back() == Frame::kObject);
  US3D_EXPECTS(!key_pending_);
  if (comma_pending_) os_ << ',';
  os_ << '"' << json_escape(std::string(k)) << "\":";
  comma_pending_ = true;
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  comma_pending_ = true;
  wrote_root_ = wrote_root_ || stack_.empty();
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  comma_pending_ = true;
  wrote_root_ = wrote_root_ || stack_.empty();
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  os_ << v;
  comma_pending_ = true;
  wrote_root_ = wrote_root_ || stack_.empty();
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  comma_pending_ = true;
  wrote_root_ = wrote_root_ || stack_.empty();
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  os_ << '"' << json_escape(std::string(v)) << '"';
  comma_pending_ = true;
  wrote_root_ = wrote_root_ || stack_.empty();
  return *this;
}

JsonWriter& JsonWriter::value_raw(std::string_view json) {
  US3D_EXPECTS(!json.empty());
  before_value();
  os_ << json;
  comma_pending_ = true;
  wrote_root_ = wrote_root_ || stack_.empty();
  return *this;
}

}  // namespace us3d
