// The one latency accumulator: count / total / min / max over recorded
// wall-clock intervals, plus the steady-clock helper that produces them.
// Shared by the runtime pipeline stages (runtime::StageStats is an alias)
// and the beamformer's per-block profile, so per-block and per-frame
// timings always use the same clock and the same aggregation.
#ifndef US3D_COMMON_LATENCY_H
#define US3D_COMMON_LATENCY_H

#include <chrono>
#include <cstdint>
#include <string>

namespace us3d {

/// Seconds elapsed since `start` on the steady clock.
inline double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Latency accumulator for one instrumented stage, in seconds.
struct LatencyStats {
  std::int64_t count = 0;
  double total_s = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;

  void record(double seconds) {
    if (count == 0 || seconds < min_s) min_s = seconds;
    if (count == 0 || seconds > max_s) max_s = seconds;
    total_s += seconds;
    ++count;
  }

  /// Folds another accumulator into this one (same empty-is-count-0
  /// convention as record()).
  void merge(const LatencyStats& other) {
    if (other.count == 0) return;
    if (count == 0 || other.min_s < min_s) min_s = other.min_s;
    if (count == 0 || other.max_s > max_s) max_s = other.max_s;
    count += other.count;
    total_s += other.total_s;
  }

  double mean_s() const {
    return count ? total_s / static_cast<double>(count) : 0.0;
  }

  /// The one JSON shape for an exported latency accumulator —
  /// count/total/min/max/mean, milliseconds — used by every stage-latency
  /// exporter (pipeline stats, trace/metrics snapshots) instead of each
  /// caller picking its own key names. Keys only grow, never get renamed
  /// (the historical count/mean_ms/min_ms/max_ms set is preserved).
  std::string to_json() const;

  void reset() { *this = LatencyStats{}; }
};

}  // namespace us3d

#endif  // US3D_COMMON_LATENCY_H
