#include "common/json_reader.h"

#include <cctype>
#include <cstdlib>

#include "common/contracts.h"

namespace us3d {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw ContractViolation("json: " + what);
}

}  // namespace

// Named (non-anonymous) so the friend declaration in JsonValue reaches it.
class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue root = parse_value(/*depth=*/0);
    skip_ws();
    if (pos_ != text_.size()) bad("trailing characters after JSON document");
    return root;
  }

 private:
  // Deep enough for every document the repo emits; shallow enough that a
  // hostile "[[[[..." cannot exhaust the real stack.
  static constexpr int kMaxDepth = 64;

  char peek() const {
    if (pos_ >= text_.size()) bad("unexpected end of JSON");
    return text_[pos_];
  }
  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (next() != c) bad(std::string("expected '") + c + "'");
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) bad("nesting too deep");
    const char c = peek();
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') {
      JsonValue v;
      v.kind_ = JsonValue::Kind::kString;
      v.text_ = parse_string();
      return v;
    }
    return parse_literal();
  }

  JsonValue parse_object(int depth) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      for (const auto& [existing, unused] : v.members_) {
        if (existing == key) bad("duplicate JSON key '" + key + "'");
      }
      skip_ws();
      expect(':');
      skip_ws();
      v.members_.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') bad("expected ',' or '}' in JSON object");
    }
    return v;
  }

  JsonValue parse_array(int depth) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      v.elements_.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') bad("expected ',' or ']' in JSON array");
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = next();
      if (c == '"') return out;
      if (c == '\\') {
        // Inverse of us3d::json_escape: the short escapes plus \u00XX.
        c = next();
        switch (c) {
          case 'n':
            c = '\n';
            break;
          case 'r':
            c = '\r';
            break;
          case 't':
            c = '\t';
            break;
          case 'u': {
            int code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += h - '0';
              } else if (h >= 'a' && h <= 'f') {
                code += 10 + h - 'a';
              } else if (h >= 'A' && h <= 'F') {
                code += 10 + h - 'A';
              } else {
                bad("malformed \\u escape in JSON string");
              }
            }
            if (code > 0xff) bad("non-latin \\u escape unsupported");
            c = static_cast<char>(code);
            break;
          }
          default:
            break;  // \" \\ \/ and friends: the character itself
        }
      }
      out.push_back(c);
    }
  }

  JsonValue parse_literal() {
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ',' || c == '}' || c == ']' ||
          std::isspace(static_cast<unsigned char>(c))) {
        break;
      }
      out.push_back(c);
      ++pos_;
    }
    if (out.empty()) bad("empty JSON value");
    JsonValue v;
    if (out == "true" || out == "false") {
      v.kind_ = JsonValue::Kind::kBool;
      v.bool_ = out == "true";
    } else if (out == "null") {
      v.kind_ = JsonValue::Kind::kNull;
    } else {
      char* end = nullptr;
      const double x = std::strtod(out.c_str(), &end);
      if (end != out.c_str() + out.size()) {
        bad("malformed JSON literal '" + out + "'");
      }
      v.kind_ = JsonValue::Kind::kNumber;
      v.number_ = x;
    }
    v.text_ = std::move(out);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool JsonValue::as_bool(const std::string& what) const {
  if (kind_ != Kind::kBool) bad(what + " must be a boolean");
  return bool_;
}

double JsonValue::as_double(const std::string& what) const {
  if (kind_ != Kind::kNumber) bad(what + " must be a number");
  return number_;
}

std::int64_t JsonValue::as_int(const std::string& what) const {
  if (kind_ != Kind::kNumber) bad(what + " must be a number");
  char* end = nullptr;
  const long long n = std::strtoll(text_.c_str(), &end, 10);
  if (end != text_.c_str() + text_.size()) bad(what + " is not an integer");
  return static_cast<std::int64_t>(n);
}

const std::string& JsonValue::as_string(const std::string& what) const {
  if (kind_ != Kind::kString) bad(what + " must be a string");
  return text_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::kObject) bad("value is not an object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (!v) bad("missing required key '" + std::string(key) + "'");
  return *v;
}

const std::vector<JsonValue>& JsonValue::elements() const {
  if (kind_ != Kind::kArray) bad("value is not an array");
  return elements_;
}

JsonValue parse_json(std::string_view text) {
  return JsonReader(text).parse_document();
}

}  // namespace us3d
