#include "common/fixed_point.h"

#include <cmath>
#include <limits>

#include "common/contracts.h"

namespace us3d::fx {

namespace {

constexpr int kMaxWordBits = 62;  // headroom below int64_t to avoid UB

std::int64_t saturate_or_wrap(std::int64_t raw, const Format& fmt,
                              Overflow overflow) {
  const std::int64_t lo = fmt.min_raw();
  const std::int64_t hi = fmt.max_raw();
  if (raw >= lo && raw <= hi) return raw;
  switch (overflow) {
    case Overflow::kSaturate:
      return raw < lo ? lo : hi;
    case Overflow::kWrap: {
      // Two's-complement wrap over total_bits, then sign-extend if signed.
      const int bits = fmt.total_bits();
      const std::uint64_t mask = (bits >= 64)
                                     ? ~std::uint64_t{0}
                                     : ((std::uint64_t{1} << bits) - 1);
      std::uint64_t u = static_cast<std::uint64_t>(raw) & mask;
      if (fmt.is_signed && bits < 64 &&
          (u & (std::uint64_t{1} << (bits - 1))) != 0) {
        u |= ~mask;  // sign extension
      }
      return static_cast<std::int64_t>(u);
    }
    case Overflow::kThrow:
      throw ContractViolation("fixed-point overflow in format " +
                              fmt.to_string());
  }
  return raw;  // unreachable
}

/// Rounds raw * 2^-shift to an integer word, shift >= 0.
std::int64_t shift_right_rounded(std::int64_t raw, int shift,
                                 Rounding rounding) {
  if (shift == 0) return raw;
  US3D_EXPECTS(shift > 0 && shift < 63);
  const std::int64_t one = std::int64_t{1} << shift;
  const std::int64_t half = one >> 1;
  switch (rounding) {
    case Rounding::kFloor:
      return raw >> shift;  // arithmetic shift: toward -inf
    case Rounding::kTruncate:
      return raw >= 0 ? (raw >> shift) : -((-raw) >> shift);
    case Rounding::kHalfUp: {
      // Round to nearest; ties away from zero.
      if (raw >= 0) return (raw + half) >> shift;
      return -((-raw + half) >> shift);
    }
    case Rounding::kHalfEven: {
      std::int64_t q = raw >> shift;            // floor
      const std::int64_t rem = raw - (q << shift);  // in [0, one)
      if (rem > half || (rem == half && (q & 1) != 0)) ++q;
      return q;
    }
  }
  return raw >> shift;  // unreachable
}

}  // namespace

double Format::scale() const { return std::ldexp(1.0, -fraction_bits); }

std::int64_t Format::min_raw() const {
  if (!is_signed) return 0;
  const int bits = integer_bits + fraction_bits;
  US3D_EXPECTS(bits <= kMaxWordBits);
  return -(std::int64_t{1} << bits);
}

std::int64_t Format::max_raw() const {
  const int bits = integer_bits + fraction_bits;
  US3D_EXPECTS(bits <= kMaxWordBits);
  return (std::int64_t{1} << bits) - 1;
}

double Format::min_real() const {
  return static_cast<double>(min_raw()) * scale();
}

double Format::max_real() const {
  return static_cast<double>(max_raw()) * scale();
}

double Format::lsb() const { return scale(); }

std::string Format::to_string() const {
  return std::string(is_signed ? "sQ" : "uQ") + std::to_string(integer_bits) +
         "." + std::to_string(fraction_bits) + " (" +
         std::to_string(total_bits()) + "b)";
}

Value Value::from_real(double real, const Format& fmt, Rounding rounding,
                       Overflow overflow) {
  US3D_EXPECTS(std::isfinite(real));
  US3D_EXPECTS(fmt.integer_bits >= 0 && fmt.fraction_bits >= 0);
  US3D_EXPECTS(fmt.integer_bits + fmt.fraction_bits <= kMaxWordBits);
  const double scaled = std::ldexp(real, fmt.fraction_bits);
  const std::int64_t raw = round_real_to_int(scaled, rounding);
  return Value(saturate_or_wrap(raw, fmt, overflow), fmt);
}

Value Value::from_raw(std::int64_t raw, const Format& fmt) {
  US3D_EXPECTS(raw >= fmt.min_raw() && raw <= fmt.max_raw());
  return Value(raw, fmt);
}

double Value::to_real() const {
  return static_cast<double>(raw_) * fmt_.scale();
}

Value Value::rescaled(const Format& target, Rounding rounding,
                      Overflow overflow) const {
  std::int64_t raw = raw_;
  const int dfrac = target.fraction_bits - fmt_.fraction_bits;
  if (dfrac >= 0) {
    US3D_EXPECTS(dfrac < 63);
    raw <<= dfrac;  // exact
  } else {
    raw = shift_right_rounded(raw, -dfrac, rounding);
  }
  return Value(saturate_or_wrap(raw, target, overflow), target);
}

std::int64_t Value::round_to_int(Rounding rounding) const {
  return shift_right_rounded(raw_, fmt_.fraction_bits, rounding);
}

namespace {

Value add_sub(const Value& a, const Value& b, bool subtract,
              const Format& result_fmt, Rounding rounding, Overflow overflow) {
  // Align both operands on the finer fractional grid (exact shifts).
  const int frac = std::max(a.format().fraction_bits, b.format().fraction_bits);
  const std::int64_t ra = a.raw() << (frac - a.format().fraction_bits);
  const std::int64_t rb = b.raw() << (frac - b.format().fraction_bits);
  const std::int64_t wide = subtract ? ra - rb : ra + rb;
  const int dfrac = frac - result_fmt.fraction_bits;
  const std::int64_t rounded =
      dfrac >= 0 ? shift_right_rounded(wide, dfrac, rounding)
                 : wide << (-dfrac);
  return Value::from_raw(saturate_or_wrap(rounded, result_fmt, overflow),
                         result_fmt);
}

}  // namespace

Value add(const Value& a, const Value& b, const Format& result_fmt,
          Rounding rounding, Overflow overflow) {
  return add_sub(a, b, /*subtract=*/false, result_fmt, rounding, overflow);
}

Value sub(const Value& a, const Value& b, const Format& result_fmt,
          Rounding rounding, Overflow overflow) {
  return add_sub(a, b, /*subtract=*/true, result_fmt, rounding, overflow);
}

Value mul(const Value& a, const Value& b, const Format& result_fmt,
          Rounding rounding, Overflow overflow) {
  // Full-precision product: fraction bits add up.
  const std::int64_t wide = a.raw() * b.raw();
  const int frac = a.format().fraction_bits + b.format().fraction_bits;
  const int dfrac = frac - result_fmt.fraction_bits;
  const std::int64_t rounded =
      dfrac >= 0 ? shift_right_rounded(wide, dfrac, rounding)
                 : wide << (-dfrac);
  return Value::from_raw(saturate_or_wrap(rounded, result_fmt, overflow),
                         result_fmt);
}

std::int64_t round_real_to_int(double value, Rounding rounding) {
  US3D_EXPECTS(std::isfinite(value));
  US3D_EXPECTS(std::abs(value) < 9.0e18);
  switch (rounding) {
    case Rounding::kFloor:
      return static_cast<std::int64_t>(std::floor(value));
    case Rounding::kTruncate:
      return static_cast<std::int64_t>(std::trunc(value));
    case Rounding::kHalfUp:
      return static_cast<std::int64_t>(
          value >= 0 ? std::floor(value + 0.5) : std::ceil(value - 0.5));
    case Rounding::kHalfEven: {
      const double r = std::nearbyint(value);  // assumes FE_TONEAREST
      return static_cast<std::int64_t>(r);
    }
  }
  return 0;  // unreachable
}

}  // namespace us3d::fx
