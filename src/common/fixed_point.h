// Bit-accurate fixed-point arithmetic used to model the hardware datapaths.
//
// The paper stores reference delays as unsigned Q13.5 (18-bit), steering
// corrections as signed Q13.4 (18-bit), and also evaluates a 14-bit variant.
// Every hardware quantity in this repo is represented as a raw integer word
// plus a Format, and all arithmetic is carried out on the raw words so that
// rounding/saturation behaviour matches what an RTL implementation would do.
#ifndef US3D_COMMON_FIXED_POINT_H
#define US3D_COMMON_FIXED_POINT_H

#include <cstdint>
#include <string>

namespace us3d::fx {

/// How to round when a real value (or a wider word) maps onto fewer
/// fractional bits. Hardware beamformers typically use half-up rounding
/// (add half LSB, truncate), which is what the paper assumes.
enum class Rounding {
  kHalfUp,      ///< round to nearest, ties away from zero for positives
  kHalfEven,    ///< round to nearest, ties to even (IEEE-style)
  kTruncate,    ///< drop fractional bits (toward zero)
  kFloor,       ///< drop fractional bits (toward -inf); free in hardware
};

/// What to do when a value exceeds the representable range.
enum class Overflow {
  kSaturate,  ///< clamp to min/max representable
  kWrap,      ///< two's-complement wraparound (what a plain adder does)
  kThrow,     ///< raise ContractViolation; used in tests/debug
};

/// A fixed-point format Q<integer_bits>.<fraction_bits>, optionally signed.
/// The sign bit, when present, is *in addition* to integer_bits, matching
/// the paper's notation ("signed 13.4" occupies 1+13+4 = 18 bits).
struct Format {
  int integer_bits = 0;
  int fraction_bits = 0;
  bool is_signed = false;

  constexpr int total_bits() const {
    return integer_bits + fraction_bits + (is_signed ? 1 : 0);
  }
  /// Scale factor: real = raw / 2^fraction_bits.
  double scale() const;
  /// Smallest/largest representable raw word.
  std::int64_t min_raw() const;
  std::int64_t max_raw() const;
  /// Smallest/largest representable real value.
  double min_real() const;
  double max_real() const;
  /// One least-significant-bit step in real units.
  double lsb() const;

  constexpr bool operator==(const Format&) const = default;

  std::string to_string() const;  ///< e.g. "uQ13.5 (18b)" / "sQ13.4 (18b)"
};

/// Unsigned Q13.5: the paper's 18-bit reference-delay format.
constexpr Format kRefDelay18 = Format{13, 5, false};
/// Signed Q13.4: the paper's 18-bit steering-correction format.
constexpr Format kCorrection18 = Format{13, 4, true};
/// Unsigned Q13.1: the 14-bit reference-delay variant.
constexpr Format kRefDelay14 = Format{13, 1, false};
/// Signed Q13.0: the 14-bit steering-correction variant.
constexpr Format kCorrection14 = Format{13, 0, true};

/// A fixed-point value: raw integer word + format. Value-semantic and cheap
/// to copy; arithmetic helpers below return results in an explicit target
/// format so every width change in the modelled datapath is visible in code.
class Value {
 public:
  Value() = default;

  /// Quantize a real number into `fmt`.
  static Value from_real(double real, const Format& fmt,
                         Rounding rounding = Rounding::kHalfUp,
                         Overflow overflow = Overflow::kSaturate);
  /// Adopt an existing raw word (must be in range for `fmt`).
  static Value from_raw(std::int64_t raw, const Format& fmt);

  double to_real() const;
  std::int64_t raw() const { return raw_; }
  const Format& format() const { return fmt_; }

  /// Re-quantize into another format (width/alignment change in hardware).
  Value rescaled(const Format& target, Rounding rounding = Rounding::kHalfUp,
                 Overflow overflow = Overflow::kSaturate) const;

  /// Round to the nearest integer (echo-buffer sample index).
  std::int64_t round_to_int(Rounding rounding = Rounding::kHalfUp) const;

  bool operator==(const Value& o) const = default;

 private:
  Value(std::int64_t raw, const Format& fmt) : raw_(raw), fmt_(fmt) {}
  std::int64_t raw_ = 0;
  Format fmt_{};
};

/// a + b, result quantized into `result_fmt`. Operands may have different
/// fraction alignments; they are aligned to the finer grid first (exactly),
/// then the sum is rounded/saturated into the result format.
Value add(const Value& a, const Value& b, const Format& result_fmt,
          Rounding rounding = Rounding::kHalfUp,
          Overflow overflow = Overflow::kSaturate);

/// a - b, result quantized into `result_fmt`.
Value sub(const Value& a, const Value& b, const Format& result_fmt,
          Rounding rounding = Rounding::kHalfUp,
          Overflow overflow = Overflow::kSaturate);

/// a * b, result quantized into `result_fmt`. The full-precision product is
/// formed on the raw words (as a hardware multiplier would) and then rounded.
Value mul(const Value& a, const Value& b, const Format& result_fmt,
          Rounding rounding = Rounding::kHalfUp,
          Overflow overflow = Overflow::kSaturate);

/// Round a real number onto an integer grid with the given mode.
/// Exposed because delay *selection* (index into the echo buffer) uses the
/// same rounding as the fixed-point datapath.
std::int64_t round_real_to_int(double value, Rounding rounding);

}  // namespace us3d::fx

#endif  // US3D_COMMON_FIXED_POINT_H
