#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/contracts.h"

namespace us3d {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::mean() const { return n_ ? mean_ : 0.0; }

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ ? min_ : 0.0; }

double RunningStats::max() const { return n_ ? max_ : 0.0; }

void AbsErrorStats::add(double error) {
  const double a = std::abs(error);
  stats_.add(a);
  sum_sq_ += a * a;
  if (a > threshold_) ++exceeding_;
}

double AbsErrorStats::rms() const {
  return count() ? std::sqrt(sum_sq_ / static_cast<double>(count())) : 0.0;
}

double AbsErrorStats::fraction_exceeding() const {
  return count() ? static_cast<double>(exceeding_) /
                       static_cast<double>(count())
                 : 0.0;
}

void SampleQuantiles::add(double x) {
  samples_.push_back(x);
  sorted_ = samples_.size() <= 1;
}

void SampleQuantiles::merge(const SampleQuantiles& other) {
  if (other.samples_.empty()) return;
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

double SampleQuantiles::quantile(double q) const {
  US3D_EXPECTS(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  US3D_EXPECTS(hi > lo);
  US3D_EXPECTS(bins > 0);
}

void Histogram::add(double x) {
  const auto n = static_cast<double>(counts_.size());
  double idx = (x - lo_) / width_;
  idx = std::clamp(idx, 0.0, n - 1.0);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::uint64_t Histogram::bin(std::size_t i) const {
  US3D_EXPECTS(i < counts_.size());
  return counts_[i];
}

double Histogram::bin_lower_edge(std::size_t i) const {
  US3D_EXPECTS(i < counts_.size());
  return lo_ + static_cast<double>(i) * width_;
}

std::string Histogram::to_string(std::size_t max_lines) const {
  std::ostringstream os;
  const std::size_t step = std::max<std::size_t>(1, counts_.size() / max_lines);
  for (std::size_t i = 0; i < counts_.size(); i += step) {
    std::uint64_t c = 0;
    const std::size_t end = std::min(i + step, counts_.size());
    for (std::size_t j = i; j < end; ++j) c += counts_[j];
    os << "[" << bin_lower_edge(i) << ", "
       << bin_lower_edge(end - 1) + width_ << "): " << c << "\n";
  }
  return os.str();
}

}  // namespace us3d
