#include "common/contracts.h"

namespace us3d::detail {

void contract_fail(const char* kind, const char* condition, const char* file,
                   int line) {
  throw ContractViolation(std::string(kind) + " violated: (" + condition +
                          ") at " + file + ":" + std::to_string(line));
}

}  // namespace us3d::detail
