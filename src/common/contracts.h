// Contract checking in the style of the C++ Core Guidelines (I.6/I.8, GSL
// Expects/Ensures). Violations throw, so tests can assert on them and
// library misuse is never silently ignored.
#ifndef US3D_COMMON_CONTRACTS_H
#define US3D_COMMON_CONTRACTS_H

#include <stdexcept>
#include <string>

namespace us3d {

/// Thrown when a precondition, postcondition or internal invariant fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void contract_fail(const char* kind, const char* condition,
                                const char* file, int line);
}  // namespace detail

}  // namespace us3d

/// Precondition check: caller handed us bad arguments.
#define US3D_EXPECTS(cond)                                                \
  ((cond) ? static_cast<void>(0)                                          \
          : ::us3d::detail::contract_fail("precondition", #cond, __FILE__, \
                                          __LINE__))

/// Postcondition / invariant check: our own logic went wrong.
#define US3D_ENSURES(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                           \
          : ::us3d::detail::contract_fail("postcondition", #cond, __FILE__, \
                                          __LINE__))

#endif  // US3D_COMMON_CONTRACTS_H
