// Clang thread-safety capability layer. Every lock in the codebase goes
// through these wrappers so that `clang -Wthread-safety -Werror` can prove,
// at compile time, that each access to guarded state holds the right mutex
// on *every* path — the static complement to the TSan CI job, which only
// sees the interleavings the tests happen to execute.
//
// The attribute macros expand to nothing on non-Clang compilers (GCC would
// warn on the unknown attributes), so the wrappers are exactly a
// std::mutex / std::condition_variable in every build: no virtual calls,
// no extra state, no behaviour change. The static-analysis CI job is the
// one place the annotations are actually checked.
//
// Usage pattern:
//   mutable us3d::Mutex mutex_;
//   int depth_ US3D_GUARDED_BY(mutex_);            // data needs the lock
//   void pump_locked() US3D_REQUIRES(mutex_);      // caller holds the lock
//   us3d::CondVar cv_;
//   // waits are explicit loops so the analysis sees the guarded reads:
//   us3d::MutexLock lock(mutex_);
//   while (!ready_) cv_.wait(mutex_);
//
// Documented escapes (the only sanctioned ones):
//   - obs/trace SpanRing and obs/event_log EventRing are seqlocks built
//     from std::atomic fields and fences; they have no mutex and need no
//     annotations.
//   - Pure-atomic metric primitives (Counter/Gauge/FixedHistogram) are
//     likewise annotation-free by design.
//   - std::condition_variable::wait needs a std::unique_lock, so
//     CondVar::wait adopts and re-releases the Mutex's underlying
//     std::mutex; that dance is invisible to the analysis by construction
//     (the REQUIRES contract on wait() is what the analysis checks).
#ifndef US3D_COMMON_ANNOTATED_MUTEX_H
#define US3D_COMMON_ANNOTATED_MUTEX_H

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define US3D_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef US3D_THREAD_ANNOTATION
#define US3D_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a capability (lockable) the analysis tracks.
#define US3D_CAPABILITY(x) US3D_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type whose lifetime acquires/releases a capability.
#define US3D_SCOPED_CAPABILITY US3D_THREAD_ANNOTATION(scoped_lockable)
/// The annotated member may only be touched while `x` is held.
#define US3D_GUARDED_BY(x) US3D_THREAD_ANNOTATION(guarded_by(x))
/// The pointee of the annotated pointer may only be touched while `x` is
/// held (the pointer itself is unguarded).
#define US3D_PT_GUARDED_BY(x) US3D_THREAD_ANNOTATION(pt_guarded_by(x))
/// The function acquires the capability and returns with it held.
#define US3D_ACQUIRE(...) US3D_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// The function releases a capability the caller held on entry.
#define US3D_RELEASE(...) US3D_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// The function acquires the capability iff it returns the given value.
#define US3D_TRY_ACQUIRE(...) \
  US3D_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// The caller must already hold the capability (the `_locked` helpers).
#define US3D_REQUIRES(...) US3D_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// The caller must NOT hold the capability (deadlock documentation for
/// public entry points that lock internally).
#define US3D_EXCLUDES(...) US3D_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Tells the analysis the capability is held from this call on — for code
/// (e.g. a callback) that runs under a lock taken by its caller.
#define US3D_ASSERT_CAPABILITY(x) US3D_THREAD_ANNOTATION(assert_capability(x))
/// The function returns a reference to the named capability.
#define US3D_RETURN_CAPABILITY(x) US3D_THREAD_ANNOTATION(lock_returned(x))
/// Opts a function out of analysis. Must carry a comment justifying it;
/// the only sanctioned uses are listed at the top of this header.
#define US3D_NO_THREAD_SAFETY_ANALYSIS \
  US3D_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace us3d {

class CondVar;

/// std::mutex with a capability annotation. Identical layout and cost; the
/// annotation is what lets `GUARDED_BY(mutex_)` members exist.
class US3D_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() US3D_ACQUIRE() { raw_.lock(); }
  void unlock() US3D_RELEASE() { raw_.unlock(); }
  bool try_lock() US3D_TRY_ACQUIRE(true) { return raw_.try_lock(); }

  /// No-op that asserts to the *analysis* that this mutex is held. For
  /// callbacks invoked by a caller that already holds the lock (e.g. the
  /// service delivery sink runs under the session mutex); the runtime
  /// contract is documented at each call site.
  void assert_held() const US3D_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex raw_;
};

/// RAII lock for Mutex — drop-in for std::lock_guard with the scoped
/// capability annotation the analysis needs.
class US3D_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) US3D_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() US3D_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable over Mutex. Waits must be explicit loops
/// (`while (!pred) cv.wait(mutex_);`) — unlike the std predicate overload,
/// that keeps the guarded reads in the annotated function body where the
/// analysis can see them. Internally this is a plain
/// std::condition_variable on the Mutex's std::mutex (not the slower
/// condition_variable_any), so wait/notify performance is unchanged.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex` and parks; the mutex is re-held on
  /// return. Spurious wakeups happen — always wait in a loop.
  void wait(Mutex& mutex) US3D_REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.raw_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  /// wait() with a deadline: returns false if the timeout elapsed without
  /// a notification, true otherwise. Same loop discipline applies — the
  /// predicate must be re-checked on return either way. This is what the
  /// periodic observability threads (resource sampler, SLO watchdog) park
  /// on, so stop() can interrupt a sleep instantly via notify.
  bool wait_for(Mutex& mutex, std::chrono::nanoseconds timeout)
      US3D_REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.raw_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();  // ownership stays with the caller's MutexLock
    return status == std::cv_status::no_timeout;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace us3d

#endif  // US3D_COMMON_ANNOTATED_MUTEX_H
