#include "common/table_io.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/contracts.h"

namespace us3d {

MarkdownTable::MarkdownTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  US3D_EXPECTS(!headers_.empty());
}

MarkdownTable& MarkdownTable::add_row(std::vector<std::string> cells) {
  US3D_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string MarkdownTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << "\n";
  };
  emit_row(headers_);
  os << "|";
  for (const std::size_t w : widths) os << std::string(w + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void MarkdownTable::print(std::ostream& os) const { os << to_string(); }

CsvTable::CsvTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  US3D_EXPECTS(!headers_.empty());
}

CsvTable& CsvTable::add_row(std::vector<std::string> cells) {
  US3D_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string CsvTable::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char ch : field) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += "\"";
  return out;
}

std::string CsvTable::to_string() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << escape(row[c]);
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::ostringstream os;
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(static_cast<unsigned char>(c)) << std::dec;
        } else {
          os << c;
        }
    }
  }
  return os.str();
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string format_si(double v, const std::string& unit, int precision) {
  static constexpr struct {
    double factor;
    const char* prefix;
  } kScales[] = {{1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""}};
  for (const auto& s : kScales) {
    if (std::abs(v) >= s.factor || s.factor == 1.0) {
      return format_double(v / s.factor, precision) + " " + s.prefix + unit;
    }
  }
  return format_double(v, precision) + " " + unit;
}

std::string format_percent(double fraction, int precision) {
  return format_double(fraction * 100.0, precision) + "%";
}

std::string format_bits(double bits) { return format_si(bits, "b", 1); }

std::string format_bytes(double bytes) { return format_si(bytes, "B", 1); }

std::string format_count(double n) {
  if (std::abs(n) < 1e4) return format_double(n, 0);
  const int exp = static_cast<int>(std::floor(std::log10(std::abs(n)) / 3.0)) * 3;
  const double mant = n / std::pow(10.0, exp);
  return format_double(mant, 2) + "e" + std::to_string(exp);
}

}  // namespace us3d
