#include "fpga/primitives.h"

#include <cmath>

#include "common/contracts.h"

namespace us3d::fpga {

namespace {
constexpr double kAdderLutPerBit = 0.92;
constexpr double kComparatorLutPerBit = 0.5;
constexpr double kMultiplierLutPerPartialBit = 0.35;
constexpr double kRomBitsPerLut = 64.0;
}  // namespace

ResourceUsage adder_cost(int bits, bool registered) {
  US3D_EXPECTS(bits > 0);
  ResourceUsage r;
  r.luts = kAdderLutPerBit * bits;
  r.ffs = registered ? static_cast<double>(bits) : 0.0;
  return r;
}

ResourceUsage comparator_cost(int bits) {
  US3D_EXPECTS(bits > 0);
  ResourceUsage r;
  r.luts = kComparatorLutPerBit * bits;
  return r;
}

ResourceUsage multiplier_lut_cost(int a_bits, int b_bits) {
  US3D_EXPECTS(a_bits > 0 && b_bits > 0);
  ResourceUsage r;
  r.luts = kMultiplierLutPerPartialBit * a_bits * b_bits;
  r.ffs = static_cast<double>(a_bits + b_bits);  // registered product
  return r;
}

ResourceUsage multiplier_dsp_cost(int a_bits, int b_bits) {
  US3D_EXPECTS(a_bits > 0 && b_bits > 0);
  ResourceUsage r;
  const double tiles_a = std::ceil(a_bits / 25.0);
  const double tiles_b = std::ceil(b_bits / 18.0);
  r.dsps = tiles_a * tiles_b;
  return r;
}

ResourceUsage lut_rom_cost(double bits) {
  US3D_EXPECTS(bits >= 0.0);
  ResourceUsage r;
  r.luts = std::ceil(bits / kRomBitsPerLut);
  return r;
}

double bram36_blocks_for(std::int64_t entries, int width_bits) {
  US3D_EXPECTS(entries > 0);
  US3D_EXPECTS(width_bits > 0 && width_bits <= 72);
  // Native widths of a 1k-deep 18 Kb half block: 1,2,4,9,18 (36 uses a
  // full block). Pad up, then count 1k-deep cascades.
  static constexpr int kNativeWidths[] = {1, 2, 4, 9, 18, 36};
  int padded = 36;
  for (const int w : kNativeWidths) {
    if (width_bits <= w) {
      padded = w;
      break;
    }
  }
  const double cascades = std::ceil(static_cast<double>(entries) / 1024.0);
  const double blocks_per_cascade = padded <= 18 ? 0.5 : 1.0;
  // Wider-than-36 words would need multiple blocks side by side; padded
  // is capped at 36 above, so this is the full cost.
  return cascades * blocks_per_cascade * std::max(1.0, padded / 36.0);
}

}  // namespace us3d::fpga
