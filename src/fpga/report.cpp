#include "fpga/report.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"

namespace us3d::fpga {

namespace {

Table2Row tablesteer_row(const imaging::SystemConfig& config,
                         const FpgaDevice& device,
                         const delay::TableSteerConfig& ts_config,
                         const AccuracyEntry& accuracy) {
  hw::FabricConfig fabric;
  fabric.entry_format = ts_config.entry_format;
  const TableSteerFeasibility f =
      analyze_tablesteer_fpga(config, device, fabric, ts_config);
  Table2Row row;
  row.architecture = "TABLESTEER" + ts_config.name_suffix();
  row.lut_fraction = f.util.lut_fraction;
  row.register_fraction = f.util.ff_fraction;
  row.bram_fraction = f.util.bram_fraction;
  row.clock_hz = TableSteerCostModel{}.clock_hz;
  row.offchip_bytes_per_second = f.fabric.dram_bandwidth_bytes_per_second;
  row.inaccuracy = accuracy;
  row.throughput_delays_per_second = f.fabric.peak_delays_per_second;
  row.frame_rate = f.fabric.frame_rate_at_peak;
  row.channels_x = config.probe.elements_x;
  row.channels_y = config.probe.elements_y;
  return row;
}

}  // namespace

std::vector<Table2Row> generate_table2(const imaging::SystemConfig& config,
                                       const FpgaDevice& device,
                                       const Table2Inputs& inputs) {
  US3D_EXPECTS(inputs.segment_count > 0);
  std::vector<Table2Row> rows;

  // TABLEFREE: normalized to the largest fleet that fits the device (the
  // paper: "we normalize the results so as to present the resource
  // utilization and performance of the largest design point that can still
  // fit in a chip").
  {
    const TableFreeFeasibility f = analyze_tablefree_fpga(
        config, device, inputs.segment_count, inputs.tablefree_stats);
    Table2Row row;
    row.architecture = "TABLEFREE";
    const double fit_units =
        std::min(static_cast<double>(f.max_units_fitting),
                 static_cast<double>(config.probe.element_count()));
    const ResourceUsage fit = f.per_unit.scaled(fit_units);
    const UtilizationReport util = utilization(fit, device);
    row.lut_fraction = util.lut_fraction;
    row.register_fraction = util.ff_fraction;
    row.bram_fraction = util.bram_fraction;
    row.clock_hz = TableFreeCostModel{}.clock_hz;
    row.offchip_bytes_per_second = 0.0;  // all coefficients on chip
    row.inaccuracy = inputs.tablefree;
    row.throughput_delays_per_second = f.normalized_delays_per_second;
    row.frame_rate = f.frame_rate;
    row.channels_x = f.max_channels_side;
    row.channels_y = f.max_channels_side;
    rows.push_back(row);
  }

  rows.push_back(tablesteer_row(config, device,
                                delay::TableSteerConfig::bits14(),
                                inputs.tablesteer14));
  rows.push_back(tablesteer_row(config, device,
                                delay::TableSteerConfig::bits18(),
                                inputs.tablesteer18));
  return rows;
}

MarkdownTable render_table2(const std::vector<Table2Row>& rows) {
  MarkdownTable table({"Architecture", "LUTs", "Registers", "BRAM", "Clock",
                       "Offchip BW", "Inaccuracy (|off samples|)",
                       "Throughput", "Frame Rate", "Supported Channels"});
  for (const Table2Row& r : rows) {
    table.add_row({
        r.architecture,
        format_percent(r.lut_fraction, 0),
        format_percent(r.register_fraction, 0),
        format_percent(r.bram_fraction, 0),
        format_si(r.clock_hz, "Hz", 0),
        r.offchip_bytes_per_second > 0.0
            ? format_si(r.offchip_bytes_per_second, "B/s", 1)
            : "none",
        "avg " + format_double(r.inaccuracy.avg_off_samples, 2) + ", max " +
            format_double(r.inaccuracy.max_off_samples, 0),
        format_si(r.throughput_delays_per_second, "delays/s", 2),
        format_double(r.frame_rate, 1) + " fps",
        std::to_string(r.channels_x) + "x" + std::to_string(r.channels_y),
    });
  }
  return table;
}

}  // namespace us3d::fpga
