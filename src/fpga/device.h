// FPGA device library and resource bookkeeping. This substitutes for the
// paper's Vivado synthesis runs: utilization percentages are produced by an
// analytic cost model over the same architectural inventories the paper
// states (unit counts, adder counts, BRAM banks), with per-primitive cost
// constants documented in primitives.h.
#ifndef US3D_FPGA_DEVICE_H
#define US3D_FPGA_DEVICE_H

#include <string>

namespace us3d::fpga {

struct FpgaDevice {
  std::string name;
  double luts = 0.0;
  double ffs = 0.0;
  int bram36_blocks = 0;  ///< 36 Kb block RAM count
  int dsps = 0;

  double bram_bits() const { return bram36_blocks * 36864.0; }
};

/// The paper's target: Xilinx Virtex-7 XC7VX1140T (speed grade -2).
FpgaDevice xc7vx1140t();

/// The paper's projection target: a 3D-stacked Virtex UltraScale part with
/// "twice the LUT count of the Virtex 7 family" (Sec. VI-B).
FpgaDevice ultrascale_projection();

/// Aggregated resource demand of a design (fractions of a device follow).
struct ResourceUsage {
  double luts = 0.0;
  double ffs = 0.0;
  double bram36 = 0.0;  ///< in 36 Kb block equivalents (0.5 = one 18 Kb half)
  double dsps = 0.0;

  ResourceUsage& operator+=(const ResourceUsage& o);
  ResourceUsage scaled(double factor) const;
};

ResourceUsage operator+(ResourceUsage a, const ResourceUsage& b);

struct UtilizationReport {
  double lut_fraction = 0.0;
  double ff_fraction = 0.0;
  double bram_fraction = 0.0;
  double dsp_fraction = 0.0;
  bool fits = false;
  double limiting_fraction = 0.0;  ///< max of the four
  std::string limiting_resource;
};

UtilizationReport utilization(const ResourceUsage& usage,
                              const FpgaDevice& device);

}  // namespace us3d::fpga

#endif  // US3D_FPGA_DEVICE_H
