#include "fpga/tablefree_cost.h"

#include <cmath>

#include "common/contracts.h"
#include "fpga/primitives.h"

namespace us3d::fpga {

ResourceUsage tablefree_unit_cost(std::size_t segment_count,
                                  const TableFreeCostModel& model) {
  US3D_EXPECTS(segment_count > 0);
  ResourceUsage unit;
  // Incremental squared-distance updates (Sec. IV-B: "only two additions
  // ... have to be evaluated specifically for each D", plus the shared-term
  // registers kept per unit). Only alternate stages carry registers.
  for (int i = 0; i < model.q_update_adders; ++i) {
    unit += adder_cost(model.q_bits,
                       /*registered=*/i < model.registered_q_adders);
  }
  // Segment tracking: two boundary comparators (Fig. 2a).
  unit += comparator_cost(model.comparator_bits);
  unit += comparator_cost(model.comparator_bits);
  // The PWL evaluation: one LUT-fabric multiplier and one adder.
  unit += multiplier_lut_cost(model.mult_a_bits, model.mult_b_bits);
  unit += adder_cost(model.result_adder_bits);
  // c1/c0/boundary segment ROM.
  unit += lut_rom_cost(static_cast<double>(segment_count) *
                       model.segment_word_bits);
  unit += ResourceUsage{model.control_luts, model.control_ffs, 0.0, 0.0};
  return unit;
}

TableFreeFeasibility analyze_tablefree_fpga(
    const imaging::SystemConfig& config, const FpgaDevice& device,
    std::size_t segment_count,
    const delay::TableFreeEngine::TrackerStats& stats,
    const TableFreeCostModel& model) {
  TableFreeFeasibility f;
  f.per_unit = tablefree_unit_cost(segment_count, model);
  const int elements = config.probe.element_count();
  f.full_probe = f.per_unit.scaled(static_cast<double>(elements));
  f.full_probe_util = utilization(f.full_probe, device);

  // TABLEFREE is LUT-bound (it uses no BRAM); the largest fleet is set by
  // the LUT budget.
  f.max_units_fitting =
      static_cast<int>(std::floor(device.luts / f.per_unit.luts));
  f.max_channels_side =
      static_cast<int>(std::floor(std::sqrt(f.max_units_fitting)));

  f.normalized_delays_per_second =
      static_cast<double>(elements) * model.clock_hz;

  const hw::TableFreeUnitModel timing_model{.clock_hz = model.clock_hz,
                                            .pipeline_depth = 4};
  f.frame_rate =
      hw::analyze_tablefree_timing(config, stats, timing_model).frame_rate;
  return f;
}

}  // namespace us3d::fpga
