#include "fpga/device.h"

#include <algorithm>

namespace us3d::fpga {

FpgaDevice xc7vx1140t() {
  return FpgaDevice{
      .name = "XC7VX1140T-2",
      .luts = 712'000.0,
      .ffs = 1'424'000.0,
      .bram36_blocks = 1'880,  // 67.7 Mb
      .dsps = 3'360,
  };
}

FpgaDevice ultrascale_projection() {
  const FpgaDevice v7 = xc7vx1140t();
  return FpgaDevice{
      .name = "Virtex-UltraScale (2x LUT projection)",
      .luts = 2.0 * v7.luts,
      .ffs = 2.0 * v7.ffs,
      .bram36_blocks = 2 * v7.bram36_blocks,
      .dsps = 2 * v7.dsps,
  };
}

ResourceUsage& ResourceUsage::operator+=(const ResourceUsage& o) {
  luts += o.luts;
  ffs += o.ffs;
  bram36 += o.bram36;
  dsps += o.dsps;
  return *this;
}

ResourceUsage ResourceUsage::scaled(double factor) const {
  return ResourceUsage{luts * factor, ffs * factor, bram36 * factor,
                       dsps * factor};
}

ResourceUsage operator+(ResourceUsage a, const ResourceUsage& b) {
  a += b;
  return a;
}

UtilizationReport utilization(const ResourceUsage& usage,
                              const FpgaDevice& device) {
  UtilizationReport r;
  r.lut_fraction = usage.luts / device.luts;
  r.ff_fraction = usage.ffs / device.ffs;
  r.bram_fraction = usage.bram36 / device.bram36_blocks;
  r.dsp_fraction = device.dsps > 0 ? usage.dsps / device.dsps : 0.0;

  r.limiting_fraction = r.lut_fraction;
  r.limiting_resource = "LUT";
  if (r.ff_fraction > r.limiting_fraction) {
    r.limiting_fraction = r.ff_fraction;
    r.limiting_resource = "FF";
  }
  if (r.bram_fraction > r.limiting_fraction) {
    r.limiting_fraction = r.bram_fraction;
    r.limiting_resource = "BRAM";
  }
  if (r.dsp_fraction > r.limiting_fraction) {
    r.limiting_fraction = r.dsp_fraction;
    r.limiting_resource = "DSP";
  }
  r.fits = r.limiting_fraction <= 1.0;
  return r;
}

}  // namespace us3d::fpga
