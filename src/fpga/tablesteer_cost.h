// FPGA cost/feasibility model of the TABLESTEER fabric (Sec. V + Table II
// rows 2-3). 128 BRAM-centric blocks x 136 adders each, the correction
// coefficient store, and the streamed reference-table slice.
#ifndef US3D_FPGA_TABLESTEER_COST_H
#define US3D_FPGA_TABLESTEER_COST_H

#include "delay/tablesteer.h"
#include "fpga/device.h"
#include "hw/delay_fabric.h"
#include "imaging/system_config.h"

namespace us3d::fpga {

struct TableSteerCostModel {
  double clock_hz = 200.0e6;  ///< adder-dominated datapath (Sec. V-B)
  /// Per-block LUTs beyond the adder tree: BRAM write/port muxing, address
  /// generation, output serialization and rounding. Calibrated against the
  /// paper's Table II (the model is linear in adder bits; this is the
  /// intercept of the fit through the 14b and 18b design points).
  double block_overhead_luts = 3050.0;
  /// Retiming registers inserted along the adder tree (fraction of adder
  /// bits), calibrated the same way.
  double retiming_ff_factor = 0.3;
  double control_ffs_per_block = 100.0;
  int output_index_bits = 13;  ///< rounded echo-buffer index width
};

/// Resource demand of one Fig. 4 block (adders, registers, its BRAM bank).
ResourceUsage tablesteer_block_cost(const hw::FabricConfig& fabric,
                                    const TableSteerCostModel& model = {});

struct TableSteerFeasibility {
  ResourceUsage per_block;
  ResourceUsage corrections;    ///< BRAM for the 832e3-coefficient store
  ResourceUsage total;
  UtilizationReport util;
  hw::FabricAnalysis fabric;    ///< throughput / bandwidth analysis
};

TableSteerFeasibility analyze_tablesteer_fpga(
    const imaging::SystemConfig& config, const FpgaDevice& device,
    const hw::FabricConfig& fabric,
    const delay::TableSteerConfig& ts_config,
    const TableSteerCostModel& model = {});

}  // namespace us3d::fpga

#endif  // US3D_FPGA_TABLESTEER_COST_H
