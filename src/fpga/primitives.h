// Per-primitive FPGA cost constants. These are the calibration points of
// the synthesis-model substitution (see DESIGN.md): classic Xilinx 7-series
// mappings (1 LUT per adder bit on carry chains, LUT6-as-64-bit ROM, 18 Kb
// BRAM halves with native widths), with two tuned factors documented below.
#ifndef US3D_FPGA_PRIMITIVES_H
#define US3D_FPGA_PRIMITIVES_H

#include <cstdint>

#include "fpga/device.h"

namespace us3d::fpga {

/// Ripple-carry adder on the carry chain: ~0.92 LUT/bit after packing
/// (calibrated; pure carry logic is 1 LUT/bit but synthesis shares LUTs
/// with neighbouring logic). Registered output adds one FF per bit.
ResourceUsage adder_cost(int bits, bool registered = true);

/// Magnitude comparator: one LUT per two bits (carry-chain compare).
ResourceUsage comparator_cost(int bits);

/// LUT-fabric multiplier (no DSP): Booth-recoded partial products come to
/// ~0.35 LUT per partial-product bit (calibrated against 7-series
/// soft-multiplier results). Registered output.
ResourceUsage multiplier_lut_cost(int a_bits, int b_bits);

/// DSP48-based multiplier: one DSP per 18x25 tile.
ResourceUsage multiplier_dsp_cost(int a_bits, int b_bits);

/// Distributed ROM in LUT6s: 64 bits per LUT.
ResourceUsage lut_rom_cost(double bits);

/// 36 Kb BRAM blocks needed for `entries` words of `width_bits` each.
/// Widths are padded to the native port widths (1,2,4,9,18,36); one
/// 1kx18 bank occupies half a 36 Kb block.
double bram36_blocks_for(std::int64_t entries, int width_bits);

}  // namespace us3d::fpga

#endif  // US3D_FPGA_PRIMITIVES_H
