#include "fpga/tablesteer_cost.h"

#include "common/contracts.h"
#include "delay/table_sizing.h"
#include "fpga/primitives.h"

namespace us3d::fpga {

ResourceUsage tablesteer_block_cost(const hw::FabricConfig& fabric,
                                    const TableSteerCostModel& model) {
  ResourceUsage block;
  const int w = fabric.entry_format.total_bits();
  // First stage: one adder per x correction (ref + cx), one guard bit.
  for (int i = 0; i < fabric.x_corrections; ++i) {
    block += adder_cost(w + 1, /*registered=*/false);
  }
  // Second stage: one adder per (x, y) pair, including the rounding to the
  // integer echo index ("of which 128 must also perform rounding").
  const int outputs = fabric.delays_per_cycle_per_block();
  for (int i = 0; i < outputs; ++i) {
    block += adder_cost(w + 2, /*registered=*/false);
  }
  // Output registers: one steered index per output per cycle.
  block.ffs += static_cast<double>(outputs) * model.output_index_bits;
  // Correction operand registers, kept constant through an insonification
  // ("entirely removing the coefficients from the critical timing path").
  block.ffs += static_cast<double>(fabric.x_corrections +
                                   fabric.y_corrections) * w;
  // Retiming/pipeline registers along the tree + control.
  const double adder_bits =
      static_cast<double>(fabric.x_corrections) * (w + 1) +
      static_cast<double>(outputs) * (w + 2);
  block.ffs += model.retiming_ff_factor * adder_bits;
  block.ffs += model.control_ffs_per_block;
  block.luts += model.block_overhead_luts;
  // The block's BRAM bank (1k-deep circular buffer at the entry width).
  block.bram36 += bram36_blocks_for(fabric.bram_lines_per_bank, w);
  return block;
}

TableSteerFeasibility analyze_tablesteer_fpga(
    const imaging::SystemConfig& config, const FpgaDevice& device,
    const hw::FabricConfig& fabric,
    const delay::TableSteerConfig& ts_config,
    const TableSteerCostModel& model) {
  US3D_EXPECTS(fabric.entry_format == ts_config.entry_format);
  TableSteerFeasibility f;
  f.per_block = tablesteer_block_cost(fabric, model);

  const auto steering =
      delay::steering_set_sizing(config, ts_config.coeff_format);
  f.corrections.bram36 = bram36_blocks_for(
      steering.total_coefficients, ts_config.coeff_format.total_bits());

  f.total = f.per_block.scaled(static_cast<double>(fabric.blocks));
  f.total += f.corrections;
  f.util = utilization(f.total, device);
  f.fabric = hw::analyze_fabric(config, fabric);
  return f;
}

}  // namespace us3d::fpga
