// FPGA cost/feasibility model of the TABLEFREE architecture (Sec. IV +
// Table II row 1). One unit per transducer element; each unit contains the
// incremental squared-distance datapath, the segment comparator pair, the
// c1/c0 segment ROM and the PWL multiplier+adder (Fig. 2a). On the FPGA
// target, the LUT-fabric multiplier dominates area and limits the clock to
// 167 MHz (the paper: "able to run at only half the frequency of its
// initial ASIC target, limited by the multiplier").
#ifndef US3D_FPGA_TABLEFREE_COST_H
#define US3D_FPGA_TABLEFREE_COST_H

#include <cstddef>

#include "delay/tablefree.h"
#include "fpga/device.h"
#include "hw/tablefree_unit.h"
#include "imaging/system_config.h"

namespace us3d::fpga {

struct TableFreeCostModel {
  double clock_hz = 167.0e6;  ///< LUT-multiplier limited (Sec. VI-B)
  int mult_a_bits = 24;       ///< c1 segment slope word
  int mult_b_bits = 18;       ///< (x - x_start), truncated to the MSBs
  int q_update_adders = 5;    ///< incremental dx^2/dy^2/dz^2/sum updates
  int registered_q_adders = 3;  ///< alternate update stages are registered
  int q_bits = 26;            ///< squared distance in sample^2 units
  int result_adder_bits = 20; ///< c1*dx + c0
  int comparator_bits = 26;   ///< the two segment-boundary comparators
  int segment_word_bits = 64; ///< c1 + c0 + boundary per ROM entry
  double control_luts = 12.0; ///< per-unit share of sequencing control
  double control_ffs = 40.0;  ///< per-unit pipeline/control registers
};

/// Resource demand of one per-element unit for a given PWL segment count.
ResourceUsage tablefree_unit_cost(std::size_t segment_count,
                                  const TableFreeCostModel& model = {});

struct TableFreeFeasibility {
  ResourceUsage per_unit;
  ResourceUsage full_probe;         ///< element_count units
  UtilizationReport full_probe_util;
  int max_units_fitting = 0;        ///< LUT-limited unit count on the device
  int max_channels_side = 0;        ///< floor(sqrt(max_units))
  /// Throughput of the normalized design (one unit per probe element, as
  /// the paper normalizes Table II): units * clock.
  double normalized_delays_per_second = 0.0;
  /// Frame rate of the full-probe design at the model clock, including
  /// tracker stalls (from hw timing analysis).
  double frame_rate = 0.0;
};

TableFreeFeasibility analyze_tablefree_fpga(
    const imaging::SystemConfig& config, const FpgaDevice& device,
    std::size_t segment_count,
    const delay::TableFreeEngine::TrackerStats& stats,
    const TableFreeCostModel& model = {});

}  // namespace us3d::fpga

#endif  // US3D_FPGA_TABLEFREE_COST_H
