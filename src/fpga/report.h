// Table II generator: assembles the synthesis-model results for TABLEFREE,
// TABLESTEER-14b and TABLESTEER-18b into the same row layout the paper
// reports (LUTs / Registers / BRAM / Clock / off-chip bandwidth /
// inaccuracy / throughput / frame rate / supported channels).
#ifndef US3D_FPGA_REPORT_H
#define US3D_FPGA_REPORT_H

#include <string>
#include <vector>

#include "common/table_io.h"
#include "delay/tablefree.h"
#include "fpga/tablefree_cost.h"
#include "fpga/tablesteer_cost.h"

namespace us3d::fpga {

/// Measured delay-selection inaccuracy (|off samples|) of an architecture,
/// produced by the delay error harness.
struct AccuracyEntry {
  double avg_off_samples = 0.0;
  double max_off_samples = 0.0;
};

struct Table2Inputs {
  AccuracyEntry tablefree;
  AccuracyEntry tablesteer14;
  AccuracyEntry tablesteer18;
  /// Tracker statistics of a nappe-order sweep (stall model input).
  delay::TableFreeEngine::TrackerStats tablefree_stats;
  /// PWL segment count of the TABLEFREE design point.
  std::size_t segment_count = 0;
};

struct Table2Row {
  std::string architecture;
  double lut_fraction = 0.0;
  double register_fraction = 0.0;
  double bram_fraction = 0.0;
  double clock_hz = 0.0;
  double offchip_bytes_per_second = 0.0;  ///< 0 = none
  AccuracyEntry inaccuracy;
  double throughput_delays_per_second = 0.0;
  double frame_rate = 0.0;
  int channels_x = 0;
  int channels_y = 0;
};

std::vector<Table2Row> generate_table2(const imaging::SystemConfig& config,
                                       const FpgaDevice& device,
                                       const Table2Inputs& inputs);

MarkdownTable render_table2(const std::vector<Table2Row>& rows);

}  // namespace us3d::fpga

#endif  // US3D_FPGA_REPORT_H
