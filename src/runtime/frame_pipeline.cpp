#include "runtime/frame_pipeline.h"

#include <chrono>
#include <exception>
#include <optional>
#include <thread>
#include <utility>

#include "common/contracts.h"
#include "obs/trace.h"
#include "runtime/async_pipeline.h"

namespace us3d::runtime {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

FramePipeline::FramePipeline(const imaging::SystemConfig& config,
                             const probe::ApodizationMap& apodization,
                             const delay::DelayEngine& prototype,
                             const PipelineConfig& pipeline_config)
    : config_(config),
      beamformer_(config, apodization),
      pipeline_config_(pipeline_config),
      ranges_(imaging::partition_scan(config.volume, pipeline_config.order,
                                      pipeline_config.worker_threads)),
      pool_(static_cast<int>(ranges_.size())) {
  US3D_EXPECTS(pipeline_config.worker_threads >= 1);
  US3D_EXPECTS(pipeline_config.queue_depth >= 1);
  US3D_EXPECTS(pipeline_config.compound_origins >= 1);
  US3D_EXPECTS(prototype.element_count() ==
               probe::MatrixProbe(config.probe).element_count());
  engines_.reserve(ranges_.size());
  for (std::size_t i = 0; i < ranges_.size(); ++i) {
    engines_.push_back(prototype.clone());
  }
  // One reusable sweep scratch per worker: DelayPlane, partial sums and
  // block storage grow to their high-water mark on the first frame and are
  // reused for every frame after — the steady state allocates nothing.
  scratch_.resize(ranges_.size());
  for (beamform::BeamformScratch& s : scratch_) s.profile = true;
  stats_.worker_threads = worker_threads();
  stats_.queue_depth = pipeline_config.queue_depth;
  // Resolve the DAS backend once up front: a forced-but-unavailable
  // backend fails here, loudly, instead of mid-stream in a worker, and a
  // later environment change cannot make the stream diverge from what the
  // stats report. Workers receive this concrete backend, never kAuto.
  simd_backend_ = simd::resolve_backend(pipeline_config.simd);
  stats_.simd_backend = simd::backend_name(simd_backend_);
  // Precision follows the same resolve-once rule. The quantized sweep only
  // exists on the block path, so a mis-paired config fails at construction
  // rather than on the first frame.
  precision_ = simd::resolve_precision(pipeline_config.precision);
  US3D_EXPECTS(precision_ == simd::Precision::kDouble ||
               pipeline_config.path == beamform::ReconstructPath::kBlock);
  stats_.precision = simd::precision_name(precision_);
}

void FramePipeline::reset_stats() {
  const std::string backend = stats_.simd_backend;
  const std::string precision = stats_.precision;
  stats_ = PipelineStats{};
  stats_.worker_threads = worker_threads();
  stats_.queue_depth = pipeline_config_.queue_depth;
  stats_.simd_backend = backend;
  stats_.precision = precision;
}

void FramePipeline::set_worker_cap(int cap) {
  US3D_EXPECTS(cap >= 1);
  pool_.set_parallelism_cap(std::min(cap, worker_threads()));
}

int FramePipeline::worker_cap() const { return pool_.parallelism_cap(); }

StageStats FramePipeline::beamform_into(const beamform::EchoBuffer& echoes,
                                        const Vec3& origin,
                                        beamform::VolumeImage& image) {
  const beamform::BeamformOptions options{
      .order = pipeline_config_.order,
      .normalize = pipeline_config_.normalize,
      .origin = origin,
      .path = pipeline_config_.path,
      .block_points = pipeline_config_.block_points,
      .simd = simd_backend_,
      .precision = precision_,
  };
  // For the quantized path the frame's echoes are quantized exactly once,
  // here, before the workers fan out — every worker then reads the same
  // int16 buffer instead of each re-quantizing its slab's view.
  const bool quantized = precision_ == simd::Precision::kQuantized;
  if (quantized) qechoes_.quantize_from(echoes);
  pool_.run(static_cast<int>(ranges_.size()), [&](int worker) {
    delay::DelayEngine& engine = *engines_[static_cast<std::size_t>(worker)];
    engine.begin_frame(origin);
    const imaging::ScanRange& range = ranges_[static_cast<std::size_t>(worker)];
    beamform::BeamformScratch& scratch =
        scratch_[static_cast<std::size_t>(worker)];
    if (quantized) {
      beamformer_.reconstruct_span(qechoes_, engine, range, image, scratch,
                                   options);
    } else {
      beamformer_.reconstruct_span(echoes, engine, range, image, scratch,
                                   options);
    }
  });
  // Fold the workers' per-block profiles into one frame-level accumulator
  // (after the pool has quiesced, so no synchronization is needed).
  StageStats frame_blocks;
  for (beamform::BeamformScratch& s : scratch_) {
    frame_blocks.merge(s.profile_data);
    s.profile_data.reset();
  }
  return frame_blocks;
}

beamform::VolumeImage FramePipeline::reconstruct_frame(
    const beamform::EchoBuffer& echoes, const Vec3& origin) {
  // wall_s uses one definition for every entry point — the whole call
  // counts, exactly as run() counts its whole stream duration — so
  // lifetime sustained_fps/voxels_per_second stay meaningful when both
  // entry points are mixed on one pipeline (see PipelineStats).
  const auto t_call = Clock::now();
  beamform::VolumeImage image(config_.volume);
  US3D_TRACE_SPAN("stage.beamform", "sequence", stats_.insonifications);
  const auto t_beamform = Clock::now();
  stats_.block.merge(beamform_into(echoes, origin, image));
  stats_.beamform.record(seconds_since(t_beamform));
  ++stats_.frames;
  ++stats_.insonifications;
  stats_.voxels += image.voxel_count();
  stats_.wall_s += seconds_since(t_call);
  return image;
}

PipelineStats FramePipeline::run(FrameSource& source, const VolumeSink& sink) {
  AsyncOptions options;
  options.depth =
      pipeline_config_.double_buffered ? pipeline_config_.queue_depth : 1;
  options.compound_origins = pipeline_config_.compound_origins;
  AsyncPipeline async(*this, options);

  // With overlap on, a consumer thread drains outputs so the sink runs
  // concurrently with later frames' beamform; otherwise the caller
  // flushes after every submission, keeping frames strictly sequential.
  std::thread consumer;
  if (pipeline_config_.double_buffered) {
    consumer = std::thread([&] {
      while (async.wait_one(sink)) {
      }
    });
  }

  const std::int64_t max_frames = pipeline_config_.max_frames;
  std::int64_t submitted = 0;
  // A throwing source must still wind the stages down and join the
  // consumer before the exception leaves run() — otherwise the joinable
  // consumer thread's destructor would terminate the process.
  std::exception_ptr source_error;
  try {
    while (max_frames < 0 || submitted < max_frames) {
      const auto t_ingest = Clock::now();
      std::optional<EchoFrame> frame;
      {
        // Source fetch only; the submit() below records its own
        // "stage.ingest" span covering any backpressure stall.
        US3D_TRACE_SPAN("ingest.source", "sequence", submitted);
        frame = source.next_frame();
      }
      if (!frame) break;
      async.record_ingest(seconds_since(t_ingest));
      if (!async.submit(std::move(*frame))) break;  // pipeline failed
      ++submitted;
      if (!pipeline_config_.double_buffered) async.flush(sink);
    }
  } catch (...) {
    source_error = std::current_exception();
  }
  async.close();
  if (consumer.joinable()) consumer.join();
  // finish() folds the session into the lifetime stats (exactly once,
  // inside the AsyncPipeline) before any rethrow, so a failed run still
  // leaves truthful delivery/drop accounting behind.
  const PipelineStats run_stats = async.finish(sink);
  US3D_ENSURES(stats_.lifetime_coherent());

  if (source_error) std::rethrow_exception(source_error);
  async.rethrow_if_failed();
  return run_stats;
}

}  // namespace us3d::runtime
