#include "runtime/frame_pipeline.h"

#include <array>
#include <chrono>
#include <exception>
#include <thread>
#include <utility>

#include "common/contracts.h"

namespace us3d::runtime {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

FramePipeline::FramePipeline(const imaging::SystemConfig& config,
                             const probe::ApodizationMap& apodization,
                             const delay::DelayEngine& prototype,
                             const PipelineConfig& pipeline_config)
    : config_(config),
      beamformer_(config, apodization),
      pipeline_config_(pipeline_config),
      ranges_(imaging::partition_scan(config.volume, pipeline_config.order,
                                      pipeline_config.worker_threads)),
      pool_(static_cast<int>(ranges_.size())) {
  US3D_EXPECTS(pipeline_config.worker_threads >= 1);
  US3D_EXPECTS(prototype.element_count() ==
               probe::MatrixProbe(config.probe).element_count());
  engines_.reserve(ranges_.size());
  for (std::size_t i = 0; i < ranges_.size(); ++i) {
    engines_.push_back(prototype.clone());
  }
  // One reusable sweep scratch per worker: DelayPlane, partial sums and
  // block storage grow to their high-water mark on the first frame and are
  // reused for every frame after — the steady state allocates nothing.
  scratch_.resize(ranges_.size());
  for (beamform::BeamformScratch& s : scratch_) s.profile = true;
  stats_.worker_threads = worker_threads();
}

void FramePipeline::reset_stats() {
  stats_ = PipelineStats{};
  stats_.worker_threads = worker_threads();
}

StageStats FramePipeline::beamform_into(const beamform::EchoBuffer& echoes,
                                        const Vec3& origin,
                                        beamform::VolumeImage& image) {
  const beamform::BeamformOptions options{
      .order = pipeline_config_.order,
      .normalize = pipeline_config_.normalize,
      .origin = origin,
      .path = pipeline_config_.path,
      .block_points = pipeline_config_.block_points,
  };
  pool_.run(static_cast<int>(ranges_.size()), [&](int worker) {
    delay::DelayEngine& engine = *engines_[static_cast<std::size_t>(worker)];
    engine.begin_frame(origin);
    beamformer_.reconstruct_span(echoes, engine,
                                 ranges_[static_cast<std::size_t>(worker)],
                                 image, scratch_[static_cast<std::size_t>(worker)],
                                 options);
  });
  // Fold the workers' per-block profiles into one frame-level accumulator
  // (after the pool has quiesced, so no synchronization is needed).
  StageStats frame_blocks;
  for (beamform::BeamformScratch& s : scratch_) {
    frame_blocks.merge(s.profile_data);
    s.profile_data.reset();
  }
  return frame_blocks;
}

beamform::VolumeImage FramePipeline::reconstruct_frame(
    const beamform::EchoBuffer& echoes, const Vec3& origin) {
  beamform::VolumeImage image(config_.volume);
  const auto t0 = Clock::now();
  stats_.block.merge(beamform_into(echoes, origin, image));
  const double elapsed = seconds_since(t0);
  stats_.beamform.record(elapsed);
  stats_.wall_s += elapsed;
  ++stats_.frames;
  stats_.voxels += image.voxel_count();
  return image;
}

PipelineStats FramePipeline::run(FrameSource& source, const VolumeSink& sink) {
  PipelineStats run_stats;
  run_stats.worker_threads = worker_threads();
  const auto t_run = Clock::now();
  const std::int64_t max_frames = pipeline_config_.max_frames;

  if (!pipeline_config_.double_buffered) {
    beamform::VolumeImage volume(config_.volume);
    while (max_frames < 0 || run_stats.frames < max_frames) {
      const auto t_ingest = Clock::now();
      std::optional<EchoFrame> frame = source.next_frame();
      if (!frame) break;
      run_stats.ingest.record(seconds_since(t_ingest));

      const auto t_beamform = Clock::now();
      run_stats.block.merge(beamform_into(frame->echoes, frame->origin, volume));
      run_stats.beamform.record(seconds_since(t_beamform));

      const auto t_consume = Clock::now();
      sink(volume, frame->sequence);
      run_stats.consume.record(seconds_since(t_consume));

      ++run_stats.frames;
      run_stats.voxels += volume.voxel_count();
    }
  } else {
    // Double buffering: the producer (this thread + pool) alternates
    // between two output volumes while a consumer thread runs the sink on
    // the previously finished one. seq[i] >= 0 publishes buffer i.
    std::array<beamform::VolumeImage, 2> buffers{
        beamform::VolumeImage(config_.volume),
        beamform::VolumeImage(config_.volume)};
    std::mutex mutex;
    std::condition_variable cv;
    std::array<std::int64_t, 2> seq{-1, -1};
    bool done = false;
    bool sink_failed = false;
    std::exception_ptr sink_error;

    std::thread consumer([&] {
      int slot = 0;
      while (true) {
        std::int64_t sequence;
        {
          std::unique_lock<std::mutex> lock(mutex);
          cv.wait(lock, [&] { return seq[slot] >= 0 || done; });
          if (seq[slot] < 0) return;  // stream over, nothing published
          sequence = seq[slot];
        }
        const auto t_consume = Clock::now();
        try {
          sink(buffers[static_cast<std::size_t>(slot)], sequence);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex);
          sink_error = std::current_exception();
          sink_failed = true;
          cv.notify_all();
          return;
        }
        run_stats.consume.record(seconds_since(t_consume));
        {
          std::lock_guard<std::mutex> lock(mutex);
          seq[slot] = -1;
          cv.notify_all();
        }
        slot ^= 1;
      }
    });

    std::exception_ptr producer_error;
    try {
      int slot = 0;
      while (max_frames < 0 || run_stats.frames < max_frames) {
        const auto t_ingest = Clock::now();
        std::optional<EchoFrame> frame = source.next_frame();
        if (!frame) break;
        run_stats.ingest.record(seconds_since(t_ingest));

        {
          std::unique_lock<std::mutex> lock(mutex);
          cv.wait(lock, [&] { return seq[slot] < 0 || sink_failed; });
          if (sink_failed) break;
        }
        beamform::VolumeImage& volume =
            buffers[static_cast<std::size_t>(slot)];
        const auto t_beamform = Clock::now();
        run_stats.block.merge(
            beamform_into(frame->echoes, frame->origin, volume));
        run_stats.beamform.record(seconds_since(t_beamform));
        {
          std::lock_guard<std::mutex> lock(mutex);
          seq[slot] = frame->sequence;
          cv.notify_all();
        }
        slot ^= 1;
        ++run_stats.frames;
        run_stats.voxels += volume.voxel_count();
      }
    } catch (...) {
      producer_error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      done = true;
      cv.notify_all();
    }
    consumer.join();
    if (producer_error) std::rethrow_exception(producer_error);
    if (sink_error) std::rethrow_exception(sink_error);
  }

  run_stats.wall_s = seconds_since(t_run);

  // Fold the run into the pipeline-lifetime stats.
  stats_.frames += run_stats.frames;
  stats_.voxels += run_stats.voxels;
  stats_.wall_s += run_stats.wall_s;
  stats_.ingest.merge(run_stats.ingest);
  stats_.beamform.merge(run_stats.beamform);
  stats_.consume.merge(run_stats.consume);
  stats_.block.merge(run_stats.block);
  return run_stats;
}

}  // namespace us3d::runtime
