#include "runtime/worker_pool.h"

#include "common/contracts.h"
#include "obs/trace.h"

namespace us3d::runtime {

WorkerPool::WorkerPool(int threads) : threads_(threads), cap_(threads) {
  US3D_EXPECTS(threads >= 1);
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

void WorkerPool::set_parallelism_cap(int cap) {
  US3D_EXPECTS(cap >= 1);
  cap_.store(cap < threads_ ? cap : threads_, std::memory_order_relaxed);
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::worker_loop(int member) {
  std::uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
    }
    // Capped members skip the job entirely; the dynamic task claim in
    // drain_job() lets the active members absorb their share. The caller
    // (member 0) always participates, so a cap of 1 is the serial sweep.
    if (member < cap_.load(std::memory_order_relaxed)) drain_job();
  }
}

void WorkerPool::drain_job() {
  while (true) {
    int task;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (next_task_ >= job_tasks_) return;
      task = next_task_++;
    }
    std::exception_ptr error;
    {
      US3D_TRACE_SPAN("worker.task", "task", task);
      try {
        (*job_)(task);
      } catch (...) {
        error = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--pending_tasks_ == 0) done_cv_.notify_all();
    }
  }
}

void WorkerPool::run(int task_count, const std::function<void(int)>& fn) {
  US3D_EXPECTS(task_count >= 0);
  if (task_count == 0) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    US3D_EXPECTS(job_ == nullptr);  // run() is not reentrant
    job_ = &fn;
    job_tasks_ = task_count;
    next_task_ = 0;
    pending_tasks_ = task_count;
    first_error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
  drain_job();  // the caller is a pool member too
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_tasks_ == 0; });
    job_ = nullptr;
    job_tasks_ = 0;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace us3d::runtime
