#include "runtime/worker_pool.h"

#include "common/contracts.h"
#include "obs/resource_profiler.h"
#include "obs/trace.h"

namespace us3d::runtime {

WorkerPool::WorkerPool(int threads) : threads_(threads), cap_(threads) {
  US3D_EXPECTS(threads >= 1);
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i) {
    workers_.emplace_back([this, i] {
      obs::ResourceProfiler::global().register_current_thread("worker");
      worker_loop(i + 1);
    });
  }
}

void WorkerPool::set_parallelism_cap(int cap) {
  US3D_EXPECTS(cap >= 1);
  cap_.store(cap < threads_ ? cap : threads_, std::memory_order_relaxed);
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::worker_loop(int member) {
  std::uint64_t seen_generation = 0;
  while (true) {
    {
      MutexLock lock(mutex_);
      while (!stop_ && generation_ == seen_generation) start_cv_.wait(mutex_);
      if (stop_) return;
      seen_generation = generation_;
    }
    // Capped members skip the job entirely; the dynamic task claim in
    // drain_job() lets the active members absorb their share. The caller
    // (member 0) always participates, so a cap of 1 is the serial sweep.
    if (member < cap_.load(std::memory_order_relaxed)) drain_job();
  }
}

void WorkerPool::drain_job() {
  while (true) {
    int task;
    const std::function<void(int)>* job;
    {
      MutexLock lock(mutex_);
      if (next_task_ >= job_tasks_) return;
      task = next_task_++;
      // Snapshot the job pointer together with the claim: run() only
      // clears job_ once pending_tasks_ hits zero, so a pointer claimed
      // under the lock stays valid until this task completes below.
      // (Reading job_ after dropping the lock relied on that same
      // argument implicitly; the snapshot makes it lock-provable.)
      job = job_;
    }
    std::exception_ptr error;
    {
      US3D_TRACE_SPAN("worker.task", "task", task);
      try {
        (*job)(task);
      } catch (...) {
        error = std::current_exception();
      }
    }
    {
      MutexLock lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--pending_tasks_ == 0) done_cv_.notify_all();
    }
  }
}

void WorkerPool::run(int task_count, const std::function<void(int)>& fn) {
  US3D_EXPECTS(task_count >= 0);
  if (task_count == 0) return;
  {
    MutexLock lock(mutex_);
    US3D_EXPECTS(job_ == nullptr);  // run() is not reentrant
    job_ = &fn;
    job_tasks_ = task_count;
    next_task_ = 0;
    pending_tasks_ = task_count;
    first_error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
  drain_job();  // the caller is a pool member too
  std::exception_ptr error;
  {
    MutexLock lock(mutex_);
    while (pending_tasks_ != 0) done_cv_.wait(mutex_);
    job_ = nullptr;
    job_tasks_ = 0;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace us3d::runtime
