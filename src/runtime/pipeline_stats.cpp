#include "runtime/pipeline_stats.h"

#include <sstream>

#include "common/json_writer.h"
#include "common/table_io.h"

namespace us3d::runtime {

namespace {

void stage_text(std::ostringstream& os, const char* name,
                const StageStats& s) {
  os << "  " << name << ": " << format_double(s.mean_s() * 1e3, 3)
     << " ms/frame mean (min " << format_double(s.min_s * 1e3, 3) << ", max "
     << format_double(s.max_s * 1e3, 3) << ", n=" << s.count << ")\n";
}

}  // namespace

std::string PipelineStats::to_string() const {
  std::ostringstream os;
  os << "pipeline: " << frames << " frames delivered ("
     << insonifications << " insonifications";
  if (dropped_frames > 0) os << ", " << dropped_frames << " DROPPED";
  os << "), " << worker_threads << " worker thread(s)";
  if (ring_slots > 0) {
    os << ", depth " << queue_depth << "/" << ring_slots << " slots";
  }
  if (!simd_backend.empty()) os << ", simd " << simd_backend;
  if (!precision.empty()) os << ", " << precision;
  os << ", " << format_double(wall_s * 1e3, 1) << " ms wall\n";
  stage_text(os, "ingest  ", ingest);
  stage_text(os, "beamform", beamform);
  if (compound.count > 0) stage_text(os, "compound", compound);
  stage_text(os, "consume ", consume);
  if (block.count > 0) stage_text(os, "block   ", block);
  os << "  sustained " << format_double(sustained_fps(), 2) << " fps, "
     << format_si(voxels_per_second(), "voxels/s", 2) << "\n";
  return os.str();
}

std::string PipelineStats::to_json() const {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object()
      .kv("frames", frames)
      .kv("insonifications", insonifications)
      .kv("dropped_frames", dropped_frames)
      .kv("voxels", voxels)
      .kv("worker_threads", worker_threads)
      .kv("queue_depth", queue_depth)
      .kv("ring_slots", ring_slots)
      .kv("simd_backend", simd_backend)
      .kv("precision", precision)
      .kv("wall_s", wall_s)
      .kv("sustained_fps", sustained_fps())
      .kv("voxels_per_second", voxels_per_second())
      .kv_raw("ingest", ingest.to_json())
      .kv_raw("beamform", beamform.to_json())
      .kv_raw("compound", compound.to_json())
      .kv_raw("consume", consume.to_json())
      .kv_raw("block", block.to_json())
      .end_object();
  return os.str();
}

}  // namespace us3d::runtime
