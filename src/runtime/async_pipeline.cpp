#include "runtime/async_pipeline.h"

#include <algorithm>
#include <utility>

#include "common/contracts.h"
#include "common/latency.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/resource_profiler.h"
#include "obs/trace.h"
#include "simd/dispatch.h"

namespace us3d::runtime {

namespace {

int ring_slots_for(const AsyncOptions& options) {
  int slots = std::max(1, options.depth);
  // The compound accumulator occupies one slot for its whole K-group; a
  // second slot keeps the next insonification beamforming meanwhile.
  if (options.compound_origins > 1) slots = std::max(slots, 2);
  return slots;
}

}  // namespace

AsyncPipeline::AsyncPipeline(FramePipeline& pipeline,
                             const AsyncOptions& options)
    : pipeline_(pipeline),
      options_(options),
      ring_(pipeline.config_.volume, ring_slots_for(options)),
      input_(static_cast<std::size_t>(std::max(1, options.depth))),
      beamformed_(static_cast<std::size_t>(ring_slots_for(options))),
      start_(Clock::now()) {
  US3D_EXPECTS(options.depth >= 1);
  US3D_EXPECTS(options.compound_origins >= 1);
  {
    // Uncontended (the stage threads don't exist yet); keeps the guarded
    // stats_ writes uniform for the thread-safety analysis.
    MutexLock lock(state_mutex_);
    stats_.worker_threads = pipeline.worker_threads();
    stats_.simd_backend = pipeline.stats().simd_backend;
    stats_.precision = pipeline.stats().precision;
    stats_.queue_depth = std::max(1, options.depth);
    stats_.ring_slots = ring_.slots();
  }
  backend_name_ = simd::backend_name(pipeline.simd_backend_);
  precision_name_ = simd::precision_name(pipeline.precision_);
  if (!options_.metrics_scope.empty()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    input_.set_depth_gauge(
        reg.gauge(options_.metrics_scope + ".input_queue_depth"));
    ring_.set_occupancy_gauge(
        reg.gauge(options_.metrics_scope + ".ring_in_flight"));
  }
  beamform_thread_ = std::thread([this] {
    obs::set_thread_name(options_.metrics_scope.empty()
                             ? "beamform"
                             : options_.metrics_scope + ".beamform");
    obs::ResourceProfiler::global().register_current_thread("beamform");
    beamform_loop();
  });
  compound_thread_ = std::thread([this] {
    obs::set_thread_name(options_.metrics_scope.empty()
                             ? "compound"
                             : options_.metrics_scope + ".compound");
    obs::ResourceProfiler::global().register_current_thread("compound");
    compound_loop();
  });
}

AsyncPipeline::~AsyncPipeline() {
  input_.close();
  ring_.close();  // unblock a beamform stage waiting on a slot
  if (beamform_thread_.joinable()) beamform_thread_.join();
  if (compound_thread_.joinable()) compound_thread_.join();
}

// Acceptance is counted *before* the push and rolled back on refusal.
// Counting after the push (as this used to) left a window where a frame
// was already in the pipeline — possibly beamformed, compounded and
// delivered — while submitted_ still excluded it, so a concurrent
// stats_snapshot() could observe frames > insonifications: exactly the
// torn ledger the snapshot contract rules out. The state lock cannot
// simply be held across the push, because push() blocks on backpressure
// and that would stall every scrape (and the delivery accounting) for the
// whole stall. Optimistically over-counting is safe: the ledger bound is
// delivered <= insonifications, and an accepted-but-still-queued frame
// only widens that gap until it is rolled back or delivered.
bool AsyncPipeline::submit(EchoFrame frame) {
  if (failed()) return false;
  const std::int64_t sequence = frame.sequence;
  {
    MutexLock lock(state_mutex_);
    ++submitted_;
  }
  bool pushed;
  // Timing the push only matters when someone is listening: the event is
  // a queue-stall diagnostic, so the clock reads hide behind the same
  // runtime gate as the emit itself.
  const bool log_stalls = obs::EventLog::instance().enabled();
  const auto push_t0 = log_stalls ? Clock::now() : Clock::time_point();
  {
    // The span covers the queue wait: with the input queue full this is
    // the backpressure stall the acquisition front-end experiences.
    US3D_TRACE_SPAN("stage.ingest", "sequence", sequence, "session",
                    options_.session);
    pushed = input_.push(std::move(frame));
  }
  if (log_stalls) {
    const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
        Clock::now() - push_t0);
    if (waited >= std::chrono::milliseconds(1)) {
      US3D_EVENT_WARN("pipeline.ingest_stall", options_.session, sequence,
                      nullptr, "wait_us", waited.count());
    }
  }
  if (!pushed) {
    {
      MutexLock lock(state_mutex_);
      --submitted_;
    }
    // A flush() parked on processed_ >= submitted_ may be waiting for the
    // rolled-back acceptance.
    state_cv_.notify_all();
    return false;
  }
  return true;
}

bool AsyncPipeline::try_submit(EchoFrame& frame) {
  if (failed()) return false;
  const std::int64_t sequence = frame.sequence;
  {
    MutexLock lock(state_mutex_);
    ++submitted_;
  }
  if (!input_.try_push(frame)) {
    {
      MutexLock lock(state_mutex_);
      --submitted_;
    }
    state_cv_.notify_all();
    US3D_EVENT_DEBUG("pipeline.queue_full", options_.session, sequence);
    return false;
  }
  US3D_TRACE_INSTANT("stage.ingest", "sequence", sequence, "session",
                     options_.session);
  return true;
}

void AsyncPipeline::close() { input_.close(); }

void AsyncPipeline::set_queue_depth(int depth) {
  US3D_EXPECTS(depth >= 1);
  input_.set_capacity(static_cast<std::size_t>(depth));
  int ring_cap = depth;
  // The compound accumulator pins one slot for its whole K-group; keep a
  // second so the next insonification can still beamform (same clamp as
  // construction).
  if (options_.compound_origins > 1) ring_cap = std::max(ring_cap, 2);
  ring_.set_active_slots(std::min(ring_cap, ring_.slots()));
  MutexLock lock(state_mutex_);
  stats_.queue_depth = depth;
}

int AsyncPipeline::queue_depth() const {
  MutexLock lock(state_mutex_);
  return stats_.queue_depth;
}

void AsyncPipeline::record_ingest(double seconds) {
  MutexLock lock(state_mutex_);
  stats_.ingest.record(seconds);
}

PipelineStats AsyncPipeline::stats_snapshot() const {
  MutexLock lock(state_mutex_);
  PipelineStats out = stats_;
  if (!finished_) {
    // Live view: acceptance is the running submit count, and nothing is
    // "dropped" yet — accepted-but-undelivered work is in flight, and
    // finish() settles the difference. This is what keeps a mid-run
    // scrape's ledger bounded instead of mixing a stale insonification
    // count with a fresh delivery count.
    out.insonifications = submitted_;
    out.dropped_frames = 0;
    out.wall_s = seconds_since(start_);
  }
  return out;
}

bool AsyncPipeline::take_output(Output& out) {
  if (output_.empty()) return false;
  out = output_.front();
  output_.pop_front();
  return true;
}

bool AsyncPipeline::poll(const VolumeSink& sink) {
  Output out;
  {
    MutexLock lock(state_mutex_);
    if (!take_output(out)) return false;
  }
  return deliver(sink, out);
}

bool AsyncPipeline::wait_one(const VolumeSink& sink) {
  Output out;
  {
    MutexLock lock(state_mutex_);
    while (output_.empty() && !stages_done_ &&
           !failed_.load(std::memory_order_acquire)) {
      state_cv_.wait(state_mutex_);
    }
    if (!take_output(out)) return false;  // drained and done (or failed)
  }
  return deliver(sink, out);
}

void AsyncPipeline::flush(const VolumeSink& sink) {
  while (true) {
    Output out;
    {
      MutexLock lock(state_mutex_);
      // An emit for insonification i always precedes processed_ reaching
      // i, so once processed_ catches up to submitted_ with the output
      // queue empty there is nothing more this flush could ever deliver
      // (a partial compound group intentionally stays buffered).
      while (output_.empty() && !stages_done_ &&
             !failed_.load(std::memory_order_acquire) &&
             processed_ < submitted_) {
        state_cv_.wait(state_mutex_);
      }
      if (!take_output(out)) return;
    }
    if (!deliver(sink, out)) return;
  }
}

PipelineStats AsyncPipeline::finish(const VolumeSink& sink) {
  {
    MutexLock lock(state_mutex_);
    if (finished_) return stats_;
  }
  close();
  while (wait_one(sink)) {
  }
  if (beamform_thread_.joinable()) beamform_thread_.join();
  if (compound_thread_.joinable()) compound_thread_.join();
  MutexLock lock(state_mutex_);
  if (!finished_) {
    finished_ = true;
    stats_.insonifications = submitted_;
    stats_.dropped_frames = submitted_ - delivered_insonifications_;
    stats_.wall_s = seconds_since(start_);
    // Fold this session into the owning pipeline's lifetime accumulator
    // (exactly once — finished_ gates it). Doing it here rather than in
    // run() means direct AsyncPipeline sessions account identically to
    // the synchronous wrapper: before this lived in run(), a session
    // driven through submit/poll/finish left pipeline.stats() untouched
    // and lifetime counters silently drifted from delivered reality.
    PipelineStats& life = pipeline_.stats_;
    life.frames += stats_.frames;
    life.insonifications += stats_.insonifications;
    life.dropped_frames += stats_.dropped_frames;
    life.voxels += stats_.voxels;
    life.wall_s += stats_.wall_s;
    life.ingest.merge(stats_.ingest);
    life.beamform.merge(stats_.beamform);
    life.compound.merge(stats_.compound);
    life.consume.merge(stats_.consume);
    life.block.merge(stats_.block);
    // Depth is a live dial; the lifetime view reports the latest session's
    // configured/adaptive values rather than a meaningless sum.
    life.queue_depth = stats_.queue_depth;
    life.ring_slots = stats_.ring_slots;
    US3D_ENSURES(stats_.lifetime_coherent());
    US3D_ENSURES(life.lifetime_coherent());
  }
  return stats_;
}

void AsyncPipeline::rethrow_if_failed() {
  std::exception_ptr error;
  {
    MutexLock lock(state_mutex_);
    error = worker_error_ ? worker_error_ : sink_error_;
  }
  if (error) std::rethrow_exception(error);
}

void AsyncPipeline::beamform_loop() {
  while (true) {
    std::optional<EchoFrame> frame = input_.pop();
    if (!frame) break;       // input closed and drained
    if (failed()) continue;  // drain-and-drop; counted via dropped_frames
    const int slot = ring_.acquire();
    if (slot < 0) continue;  // ring closed mid-shutdown: drop
    bool ok = false;
    US3D_TRACE_SPAN("stage.beamform", "sequence", frame->sequence, "session",
                    options_.session, "backend", backend_name_, "precision",
                    precision_name_);
    const auto t0 = Clock::now();
    try {
      StageStats blocks =
          pipeline_.beamform_into(frame->echoes, frame->origin, ring_[slot]);
      const double elapsed = seconds_since(t0);
      MutexLock lock(state_mutex_);
      stats_.beamform.record(elapsed);
      stats_.block.merge(blocks);
      ok = true;
    } catch (...) {
      fail(std::current_exception(), /*from_sink=*/false);
    }
    if (!ok) {
      ring_.release(slot);
      continue;
    }
    Beamformed item{slot, frame->sequence};
    if (!beamformed_.push(std::move(item))) ring_.release(slot);
  }
  beamformed_.close();
}

void AsyncPipeline::compound_loop() {
  const int k = std::max(1, options_.compound_origins);
  int acc_slot = -1;
  std::int64_t acc_count = 0;
  std::int64_t acc_seq = 0;
  const auto mark_processed = [&] {
    {
      MutexLock lock(state_mutex_);
      ++processed_;
    }
    state_cv_.notify_all();
  };
  while (true) {
    std::optional<Beamformed> b = beamformed_.pop();
    if (!b) break;
    if (failed()) {
      ring_.release(b->slot);
      mark_processed();
      continue;
    }
    US3D_TRACE_SPAN("stage.compound", "sequence", b->sequence, "session",
                    options_.session);
    if (k <= 1) {
      emit(Output{b->slot, b->sequence, 1});
      mark_processed();
      continue;
    }
    const auto t0 = Clock::now();
    if (acc_slot < 0) {
      // First shot of the group: its volume *is* the accumulator (summing
      // it into a zeroed volume would produce the same floats), so the
      // group costs K-1 adds, and shot k+1 beamforms while shot k sums.
      acc_slot = b->slot;
      acc_count = 1;
    } else {
      ring_[acc_slot].add(ring_[b->slot]);
      ring_.release(b->slot);
      ++acc_count;
    }
    acc_seq = b->sequence;
    {
      MutexLock lock(state_mutex_);
      stats_.compound.record(seconds_since(t0));
    }
    if (acc_count >= k) {
      emit(Output{acc_slot, acc_seq, acc_count});
      acc_slot = -1;
      acc_count = 0;
    }
    mark_processed();
  }
  if (acc_slot >= 0) {
    if (failed()) {
      ring_.release(acc_slot);
    } else {
      // Stream ended mid-group: deliver the partial compound with its
      // actual shot count rather than dropping coherent work.
      emit(Output{acc_slot, acc_seq, acc_count});
    }
  }
  {
    MutexLock lock(state_mutex_);
    stages_done_ = true;
  }
  state_cv_.notify_all();
}

void AsyncPipeline::emit(Output out) {
  bool dropped = false;
  {
    MutexLock lock(state_mutex_);
    if (failed_.load(std::memory_order_acquire)) {
      dropped = true;
    } else {
      output_.push_back(out);
    }
  }
  if (dropped) {
    ring_.release(out.slot);
  } else {
    state_cv_.notify_all();
  }
}

bool AsyncPipeline::deliver(const VolumeSink& sink, const Output& out) {
  const std::int64_t voxels = ring_[out.slot].voxel_count();
  US3D_TRACE_SPAN("stage.sink", "sequence", out.sequence, "session",
                  options_.session);
  const auto t0 = Clock::now();
  try {
    if (sink) sink(ring_[out.slot], out.sequence);
  } catch (...) {
    ring_.release(out.slot);
    fail(std::current_exception(), /*from_sink=*/true);
    return false;
  }
  const double elapsed = seconds_since(t0);
  ring_.release(out.slot);
  MutexLock lock(state_mutex_);
  stats_.consume.record(elapsed);
  ++stats_.frames;
  stats_.voxels += voxels;
  delivered_insonifications_ += out.summed;
  return true;
}

void AsyncPipeline::fail(std::exception_ptr error, bool from_sink) {
  std::deque<Output> orphans;
  bool first_failure = false;
  {
    MutexLock lock(state_mutex_);
    if (from_sink) {
      if (!sink_error_) sink_error_ = error;
    } else if (!worker_error_) {
      worker_error_ = error;
    }
    first_failure = !failed_.load(std::memory_order_relaxed);
    failed_.store(true, std::memory_order_release);
    orphans.swap(output_);
  }
  if (first_failure) {
    US3D_EVENT_ERROR("pipeline.failed", options_.session, -1,
                     from_sink ? "sink" : "worker");
  }
  for (const Output& o : orphans) ring_.release(o.slot);
  state_cv_.notify_all();
  input_.close();  // refuse further submissions, unblock producers
  ring_.close();   // unblock a beamform stage waiting on a slot
}

}  // namespace us3d::runtime
