// Bounded blocking FIFO — the backpressure primitive of the async runtime.
// A fixed-capacity queue with blocking and non-blocking ends on both sides:
// push() parks the producer while the queue is full (that *is* the
// backpressure an acquisition front-end sees), try_push() refuses instead,
// pop()/try_pop() mirror them for the consumer. close() ends the stream
// gracefully: producers are refused from then on, consumers drain whatever
// is left and then read end-of-stream (nullopt). All operations are safe
// from any number of threads; FIFO order is preserved, which is what keeps
// async pipeline outputs in acquisition order without sequence sorting.
#ifndef US3D_RUNTIME_BOUNDED_QUEUE_H
#define US3D_RUNTIME_BOUNDED_QUEUE_H

#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <utility>

#include "common/annotated_mutex.h"
#include "common/contracts.h"
#include "obs/metrics.h"

namespace us3d::runtime {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    US3D_EXPECTS(capacity >= 1);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  std::size_t capacity() const US3D_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return capacity_;
  }

  /// Attaches a live occupancy gauge, updated under the queue lock on
  /// every enqueue/dequeue — a scrape always sees a depth the queue
  /// actually had, never a mid-transition value. Null detaches.
  void set_depth_gauge(std::shared_ptr<obs::Gauge> gauge) US3D_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    depth_gauge_ = std::move(gauge);
    if (depth_gauge_) {
      depth_gauge_->set(static_cast<std::int64_t>(items_.size()));
    }
  }

  /// Adjusts the bound at runtime (the adaptive queue-depth hook). Growing
  /// wakes blocked producers; shrinking below the current fill level never
  /// drops queued items — pushes are simply refused until consumers drain
  /// below the new bound. Dropping is a policy decision that belongs to
  /// the caller (see service::ShedPolicy), not to the queue.
  void set_capacity(std::size_t capacity) US3D_EXCLUDES(mutex_) {
    US3D_EXPECTS(capacity >= 1);
    {
      MutexLock lock(mutex_);
      capacity_ = capacity;
    }
    space_cv_.notify_all();
  }

  /// Blocks while the queue is full. Returns false (and drops `item`) if
  /// the queue is closed — the stream is over, nobody will pop it.
  bool push(T item) US3D_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      while (!closed_ && items_.size() >= capacity_) space_cv_.wait(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
      sample_depth_locked();
    }
    item_cv_.notify_one();
    return true;
  }

  /// Non-blocking push. On refusal (full or closed) `item` is left intact
  /// so the caller can retry, buffer, or shed load — real backpressure.
  bool try_push(T& item) US3D_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      sample_depth_locked();
    }
    item_cv_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty and open. Returns nullopt only at
  /// end-of-stream: closed *and* fully drained.
  std::optional<T> pop() US3D_EXCLUDES(mutex_) {
    std::optional<T> item;
    {
      MutexLock lock(mutex_);
      while (!closed_ && items_.empty()) item_cv_.wait(mutex_);
      if (items_.empty()) return std::nullopt;
      item.emplace(std::move(items_.front()));
      items_.pop_front();
      sample_depth_locked();
    }
    space_cv_.notify_one();
    return item;
  }

  /// Non-blocking pop: nullopt when nothing is ready right now (which is
  /// not end-of-stream — check closed() to distinguish).
  std::optional<T> try_pop() US3D_EXCLUDES(mutex_) {
    std::optional<T> item;
    {
      MutexLock lock(mutex_);
      if (items_.empty()) return std::nullopt;
      item.emplace(std::move(items_.front()));
      items_.pop_front();
      sample_depth_locked();
    }
    space_cv_.notify_one();
    return item;
  }

  /// Ends the stream: subsequent pushes are refused, pops drain the
  /// remaining items and then return nullopt. Idempotent; wakes every
  /// blocked producer and consumer.
  void close() US3D_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    item_cv_.notify_all();
    space_cv_.notify_all();
  }

  bool closed() const US3D_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return closed_;
  }

  std::size_t size() const US3D_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return items_.size();
  }

 private:
  void sample_depth_locked() US3D_REQUIRES(mutex_) {
    if (depth_gauge_) {
      depth_gauge_->set(static_cast<std::int64_t>(items_.size()));
    }
  }

  mutable Mutex mutex_;
  CondVar item_cv_;   // signalled on push
  CondVar space_cv_;  // signalled on pop
  std::size_t capacity_ US3D_GUARDED_BY(mutex_);
  std::deque<T> items_ US3D_GUARDED_BY(mutex_);
  std::shared_ptr<obs::Gauge> depth_gauge_ US3D_GUARDED_BY(mutex_);
  bool closed_ US3D_GUARDED_BY(mutex_) = false;
};

}  // namespace us3d::runtime

#endif  // US3D_RUNTIME_BOUNDED_QUEUE_H
