// Frame ingest for the streaming pipeline. A FrameSource produces the
// echo frames the pipeline beamforms — one EchoBuffer plus the shot's
// transmit origin per insonification. ReplayFrameSource replays a
// pre-synthesized sequence (benches, tests); StreamedFrameSource wraps any
// source with the hw/stream_buffer DRAM-ingest model, so a pipeline run
// also answers whether a real front-end at the configured bandwidth could
// have delivered those frames without underrunning the acquisition buffer.
#ifndef US3D_RUNTIME_FRAME_SOURCE_H
#define US3D_RUNTIME_FRAME_SOURCE_H

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "beamform/echo_buffer.h"
#include "common/vec3.h"
#include "hw/stream_buffer.h"

namespace us3d::runtime {

/// One insonification's worth of input: the per-element RF traces and the
/// transmit origin the delay engines must begin_frame() with.
struct EchoFrame {
  beamform::EchoBuffer echoes;
  Vec3 origin{};
  std::int64_t sequence = 0;  ///< 0-based shot index within the stream
};

class FrameSource {
 public:
  virtual ~FrameSource() = default;

  /// Next frame in acquisition order, or nullopt when the stream ends.
  virtual std::optional<EchoFrame> next_frame() = 0;
};

/// Replays a fixed frame set `repeats` times (sequence numbers keep
/// increasing across repeats). The frames are copied out on emission, so
/// the source can be rewound and rerun.
class ReplayFrameSource final : public FrameSource {
 public:
  explicit ReplayFrameSource(std::vector<EchoFrame> frames, int repeats = 1);

  std::optional<EchoFrame> next_frame() override;

  /// Restarts the stream from the first frame.
  void rewind();

  std::int64_t total_frames() const;

 private:
  std::vector<EchoFrame> frames_;
  int repeats_;
  std::int64_t emitted_ = 0;
};

/// Ingest-feasibility report of a StreamedFrameSource: for each delivered
/// frame the cycle-level hw::simulate_stream model checks whether the
/// configured DRAM bandwidth keeps the acquisition buffer ahead of a
/// consumer draining at the configured rate.
struct IngestModelReport {
  std::int64_t frames = 0;
  std::int64_t underrun_frames = 0;    ///< frames whose ingest fell behind
  std::int64_t stall_cycles = 0;       ///< total modeled consumer stalls
  double min_margin_cycles = 0.0;      ///< worst latency margin seen
  /// Total modeled front-end time across delivered frames (simulated
  /// cycles / fabric clock) — the acquisition-rate clock that paced mode
  /// replays in wall-clock time.
  double modeled_ingest_s = 0.0;
  /// Wall-clock seconds next_frame() actually slept to hold frame
  /// delivery to the modeled acquisition rate (0 when pacing is off or
  /// the consumer is slower than the front-end).
  double paced_wait_s = 0.0;

  bool feasible() const { return underrun_frames == 0; }
};

/// Frame-delivery pacing of a StreamedFrameSource.
enum class IngestPacing {
  /// Report-only (historical behavior): the ingest model runs and fills
  /// IngestModelReport, but frames are handed out as fast as the inner
  /// source produces them.
  kReportOnly,
  /// Wall-clock simulation: next_frame() additionally sleeps until the
  /// modeled front-end would have finished acquiring the frame, so a
  /// pipeline run sees real acquisition-rate arrival times (and its
  /// ingest stage stats measure the true wait).
  kWallClock,
};

/// Decorator: forwards frames from `inner` unchanged while running the
/// stream-buffer ingest model over each frame's word count; in
/// IngestPacing::kWallClock mode it also delays each delivery to the
/// modeled acquisition instant.
class StreamedFrameSource final : public FrameSource {
 public:
  /// `config.capacity_words`, bandwidth, clock etc. describe the modeled
  /// front-end buffer; the per-frame word count comes from the frame itself
  /// (elements x samples).
  StreamedFrameSource(FrameSource& inner, const hw::StreamBufferConfig& config,
                      IngestPacing pacing = IngestPacing::kReportOnly);

  std::optional<EchoFrame> next_frame() override;

  const IngestModelReport& report() const { return report_; }
  IngestPacing pacing() const { return pacing_; }

 private:
  FrameSource* inner_;
  hw::StreamBufferConfig config_;
  IngestPacing pacing_;
  IngestModelReport report_;
  /// Wall-clock origin of the paced stream, set on the first frame.
  std::optional<std::chrono::steady_clock::time_point> stream_start_;
};

}  // namespace us3d::runtime

#endif  // US3D_RUNTIME_FRAME_SOURCE_H
