// Instrumentation for the streaming frame pipeline: per-stage latency
// accumulators (ingest / beamform / consume), sustained frame rate and
// voxel throughput. The JSON emitter is what the bench trajectory files
// (BENCH_runtime.json) are built from, so its keys are part of the bench
// contract and should only grow, never be renamed.
#ifndef US3D_RUNTIME_PIPELINE_STATS_H
#define US3D_RUNTIME_PIPELINE_STATS_H

#include <cstdint>
#include <string>

#include "common/latency.h"

namespace us3d::runtime {

/// Latency accumulator for one pipeline stage, in seconds (the shared
/// accumulator under its historical runtime name).
using StageStats = ::us3d::LatencyStats;

/// One pipeline run's worth of measurements. Latencies are wall-clock and
/// per frame: `ingest` covers pulling a frame from the FrameSource,
/// `beamform` the parallel reconstruction, `compound` the
/// synthetic-aperture accumulate stage (one record per insonification
/// folded into a compound volume), `consume` the sink callback (pipelined
/// stages overlap, which is why sustained fps can beat the sum of stage
/// means). `block` is finer-grained: one record per FocalBlock swept by
/// any worker (engine compute_block + DAS kernel + image scatter),
/// aggregated across workers after each frame.
///
/// Frame accounting is delivery-based: `frames` counts output volumes
/// actually handed to the sink (or returned to the caller), never work
/// that was beamformed and then lost. `insonifications` counts input
/// frames the pipeline accepted; with K-origin compounding one delivered
/// frame sums K insonifications. `dropped_frames` surfaces in-flight
/// insonifications that never reached a delivered volume (e.g. the sink
/// failed while they were queued or beamforming).
struct PipelineStats {
  StageStats ingest;
  StageStats beamform;
  StageStats compound;
  StageStats consume;
  StageStats block;
  std::int64_t frames = 0;    ///< volumes delivered to the sink/caller
  std::int64_t insonifications = 0;  ///< input frames accepted
  std::int64_t dropped_frames = 0;   ///< accepted but never delivered
  std::int64_t voxels = 0;    ///< total voxels delivered across frames
  /// Wall-clock seconds spent inside pipeline entry points, under one
  /// definition for every entry point: a run() contributes its whole
  /// stream duration (first ingest to last delivery), a
  /// reconstruct_frame() its whole call. Lifetime sustained_fps /
  /// voxels_per_second therefore stay meaningful when both entry points
  /// are mixed on one pipeline.
  double wall_s = 0.0;
  int worker_threads = 0;
  /// Current queue depth (bound on in-flight frames). Configured at
  /// construction; an adaptive load-shedding policy may shrink or regrow
  /// it mid-stream via AsyncPipeline::set_queue_depth, so dashboards can
  /// compare configured vs adaptive depth. 0 for hand-built stats.
  int queue_depth = 0;
  /// Allocated VolumeRing slots (fixed for the pipeline's lifetime; the
  /// adaptive depth is a soft cap within this allocation). 0 until a
  /// streaming run has attached a ring.
  int ring_slots = 0;
  /// Resolved SIMD backend of the DAS row kernel ("scalar", "sse2",
  /// "avx2", "neon"; see simd/dispatch.h), recorded when the pipeline
  /// resolves its configuration. Empty for hand-built stats.
  std::string simd_backend;
  /// Resolved arithmetic precision of the beamform hot path ("double" or
  /// "quantized"; see simd/dispatch.h), recorded alongside the backend.
  /// Empty for hand-built stats.
  std::string precision;

  double sustained_fps() const {
    return wall_s > 0.0 ? static_cast<double>(frames) / wall_s : 0.0;
  }
  double voxels_per_second() const {
    return wall_s > 0.0 ? static_cast<double>(voxels) / wall_s : 0.0;
  }

  /// Lifetime-counter invariants that must survive any mix of run() /
  /// reconstruct_frame() / direct AsyncPipeline sessions folded into one
  /// accumulator: delivery never exceeds acceptance, drops are never
  /// negative and never exceed acceptance. The pipeline asserts this after
  /// every fold; the multi-run accounting tests pin it.
  bool lifetime_coherent() const {
    return frames >= 0 && insonifications >= frames && dropped_frames >= 0 &&
           dropped_frames <= insonifications && voxels >= 0 && wall_s >= 0.0;
  }

  /// Human-readable multi-line summary.
  std::string to_string() const;
  /// Machine-readable single JSON object (no trailing newline).
  std::string to_json() const;
};

}  // namespace us3d::runtime

#endif  // US3D_RUNTIME_PIPELINE_STATS_H
