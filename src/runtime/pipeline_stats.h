// Instrumentation for the streaming frame pipeline: per-stage latency
// accumulators (ingest / beamform / consume), sustained frame rate and
// voxel throughput. The JSON emitter is what the bench trajectory files
// (BENCH_runtime.json) are built from, so its keys are part of the bench
// contract and should only grow, never be renamed.
#ifndef US3D_RUNTIME_PIPELINE_STATS_H
#define US3D_RUNTIME_PIPELINE_STATS_H

#include <cstdint>
#include <string>

#include "common/latency.h"

namespace us3d::runtime {

/// Latency accumulator for one pipeline stage, in seconds (the shared
/// accumulator under its historical runtime name).
using StageStats = ::us3d::LatencyStats;

/// One pipeline run's worth of measurements. Latencies are wall-clock and
/// per frame: `ingest` covers pulling a frame from the FrameSource,
/// `beamform` the parallel reconstruction, `consume` the sink callback
/// (which overlaps the next frame's beamform when double buffering is on —
/// that is why sustained fps can beat mean(beamform)+mean(consume)).
/// `block` is finer-grained: one record per FocalBlock swept by any worker
/// (engine compute_block + DAS kernel + image scatter), aggregated across
/// workers after each frame.
struct PipelineStats {
  StageStats ingest;
  StageStats beamform;
  StageStats consume;
  StageStats block;
  std::int64_t frames = 0;
  std::int64_t voxels = 0;    ///< total voxels written across frames
  double wall_s = 0.0;        ///< whole-run wall-clock time
  int worker_threads = 0;

  double sustained_fps() const {
    return wall_s > 0.0 ? static_cast<double>(frames) / wall_s : 0.0;
  }
  double voxels_per_second() const {
    return wall_s > 0.0 ? static_cast<double>(voxels) / wall_s : 0.0;
  }

  /// Human-readable multi-line summary.
  std::string to_string() const;
  /// Machine-readable single JSON object (no trailing newline).
  std::string to_json() const;
};

}  // namespace us3d::runtime

#endif  // US3D_RUNTIME_PIPELINE_STATS_H
