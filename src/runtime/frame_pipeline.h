// The streaming frame pipeline — the runtime that makes on-the-fly delay
// generation pay off at the system level. A FramePipeline owns a persistent
// worker pool and one DelayEngine clone per worker; each frame's volume is
// partitioned into contiguous outer-axis slabs (nappes for kNappeByNappe)
// via imaging::partition_scan, and every worker sweeps its slab with its
// private engine through Beamformer::reconstruct_span. Because delay values
// depend only on (origin, focal point) — never on visit order — the parallel
// result is bit-identical to Beamformer::reconstruct on one thread; the
// property tests in tests/runtime/ pin that invariant for every engine.
//
// Streaming is built on the async core in runtime/async_pipeline.h: a
// bounded VolumeRing of N in-flight volumes, an overlapped
// ingest → beamform → compound → sink stage graph, and optional K-origin
// synthetic-aperture compounding. run() is a thin synchronous wrapper over
// that core — there is exactly one scheduling implementation.
// PipelineStats records per-stage latency and the sustained frame rate;
// frame accounting is delivery-based (see pipeline_stats.h).
#ifndef US3D_RUNTIME_FRAME_PIPELINE_H
#define US3D_RUNTIME_FRAME_PIPELINE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "beamform/beamformer.h"
#include "beamform/volume_image.h"
#include "delay/engine.h"
#include "imaging/scan_order.h"
#include "imaging/system_config.h"
#include "probe/apodization.h"
#include "runtime/frame_source.h"
#include "runtime/pipeline_stats.h"
#include "runtime/worker_pool.h"

namespace us3d::runtime {

class AsyncPipeline;

struct PipelineConfig {
  /// Parallelism of the per-frame sweep. 1 reproduces the serial
  /// beamformer exactly (and shares its code path).
  int worker_threads = 1;
  imaging::ScanOrder order = imaging::ScanOrder::kNappeByNappe;
  /// Forwarded to BeamformOptions.
  bool normalize = true;
  /// Inner-loop selection, forwarded to BeamformOptions. kBlock is the
  /// production path; kPerVoxel exists for A/B throughput tracking.
  beamform::ReconstructPath path = beamform::ReconstructPath::kBlock;
  /// Max focal points per block (0 = auto), forwarded to BeamformOptions.
  int block_points = 0;
  /// SIMD backend for the DAS row kernel, forwarded to BeamformOptions.
  /// kAuto honours US3D_SIMD, then picks the best the CPU supports. The
  /// resolved choice is reported in PipelineStats::simd_backend.
  simd::DasBackend simd = simd::DasBackend::kAuto;
  /// Arithmetic precision of the beamform hot path, forwarded to
  /// BeamformOptions. kAuto honours US3D_PRECISION, then defaults to
  /// kDouble. kQuantized quantizes each frame's echoes once (int16) and
  /// runs the integer sweep — block path only. The resolved choice is
  /// reported in PipelineStats::precision.
  simd::Precision precision = simd::Precision::kAuto;
  /// Overlap the sink callback with the next frame's beamform in run().
  /// Off: frames are fully sequential (beamform, then sink, then next) —
  /// implemented as the async core at depth 1, flushed after every frame.
  bool double_buffered = true;
  /// In-flight output volumes of the async core when overlapping
  /// (double_buffered): the VolumeRing size and ingest queue depth. 2
  /// reproduces classic double buffering; 1 shares a single volume
  /// between beamform and sink (ingest still overlaps); larger values
  /// absorb burstier sinks. Internally the ring still holds >= 2 volumes
  /// when compounding (the accumulator occupies one for its whole group).
  int queue_depth = 2;
  /// Synthetic-aperture compounding factor K: coherently sum K successive
  /// insonifications (one per SyntheticAperturePlan origin) into each
  /// output volume. 1 disables compounding. The compounded volume is
  /// bit-identical to beamforming each insonification serially and
  /// summing in shot order.
  int compound_origins = 1;
  /// Stop run() after this many input frames; < 0 means drain the source.
  std::int64_t max_frames = -1;
};

/// Called once per finished output volume, in acquisition order. The
/// volume reference is only valid for the duration of the call (its ring
/// slot is recycled).
using VolumeSink = std::function<void(const beamform::VolumeImage& volume,
                                      std::int64_t sequence)>;

class FramePipeline {
 public:
  /// Clones `prototype` once per worker slab. The prototype itself is not
  /// retained and never computes — it only serves as the configured
  /// template (tables, formats, probe geometry).
  FramePipeline(const imaging::SystemConfig& config,
                const probe::ApodizationMap& apodization,
                const delay::DelayEngine& prototype,
                const PipelineConfig& pipeline_config = {});

  /// Actual sweep parallelism: min(worker_threads, outer axis extent).
  int worker_threads() const { return static_cast<int>(ranges_.size()); }

  /// Caps how many pool members sweep concurrently, in [1,
  /// worker_threads()], without re-partitioning: slabs are claimed
  /// dynamically, so the volume (and its bit pattern) is unchanged — only
  /// the CPU concurrency drops. This is the hook the imaging service uses
  /// to re-share one global worker budget across sessions as they come
  /// and go. Thread-safe; takes effect from the next frame.
  void set_worker_cap(int cap);
  int worker_cap() const;
  const std::vector<imaging::ScanRange>& ranges() const { return ranges_; }
  std::string engine_name() const { return engines_.front()->name(); }

  /// Cumulative stats since construction / the last reset_stats(). run()
  /// additionally returns the snapshot for just that run.
  const PipelineStats& stats() const { return stats_; }
  void reset_stats();

  /// Parallel reconstruction of a single frame; bit-identical to
  /// Beamformer::reconstruct(echoes, engine, {order, normalize, origin}).
  beamform::VolumeImage reconstruct_frame(const beamform::EchoBuffer& echoes,
                                          const Vec3& origin);

  /// Historical alias; see runtime::VolumeSink.
  using VolumeSink = runtime::VolumeSink;

  /// Streams frames from `source` until it runs dry (or max_frames),
  /// beamforming (and, with compound_origins > 1, compounding) each across
  /// the async core and handing finished volumes to `sink` in order.
  /// Returns the stats for this run. Exceptions thrown by the sink or by
  /// workers propagate after the pipeline has quiesced — with the run's
  /// stats already folded into stats(), including dropped_frames. A thin
  /// wrapper over AsyncPipeline (runtime/async_pipeline.h), which is the
  /// API for acquisition front-ends that need non-blocking submit/poll.
  PipelineStats run(FrameSource& source, const VolumeSink& sink);

 private:
  friend class AsyncPipeline;
  /// Parallel sweep of one frame into `image` (all slabs, one per worker).
  /// Returns the per-block timing gathered from the workers' scratches.
  StageStats beamform_into(const beamform::EchoBuffer& echoes,
                           const Vec3& origin, beamform::VolumeImage& image);

  imaging::SystemConfig config_;
  beamform::Beamformer beamformer_;
  PipelineConfig pipeline_config_;
  /// Concrete DAS backend, resolved once at construction (kAuto pinned to
  /// the environment/CPU seen then) so workers never re-resolve mid-stream
  /// and stats always name the backend that actually ran.
  simd::DasBackend simd_backend_ = simd::DasBackend::kScalar;
  /// Concrete arithmetic precision, resolved once at construction for the
  /// same reasons as simd_backend_.
  simd::Precision precision_ = simd::Precision::kDouble;
  /// Frame-level echo quantization target for the kQuantized path: filled
  /// once per frame by beamform_into (frames are beamformed one at a time;
  /// only the sweep inside a frame is parallel), read by every worker.
  beamform::QuantizedEchoBuffer qechoes_;
  std::vector<imaging::ScanRange> ranges_;
  std::vector<std::unique_ptr<delay::DelayEngine>> engines_;  // per slab
  std::vector<beamform::BeamformScratch> scratch_;            // per slab
  WorkerPool pool_;
  PipelineStats stats_;
};

}  // namespace us3d::runtime

#endif  // US3D_RUNTIME_FRAME_PIPELINE_H
