// Persistent thread pool for the frame pipeline. Threads are spawned once
// and reused across every frame (spawning per frame would dominate the
// small scaled-system workloads the tests use). run() is a blocking
// parallel-for: the calling thread participates in draining the task
// queue, so WorkerPool(1) runs everything inline on the caller with no
// cross-thread traffic at all — the serial baseline and the parallel path
// share one code path.
#ifndef US3D_RUNTIME_WORKER_POOL_H
#define US3D_RUNTIME_WORKER_POOL_H

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotated_mutex.h"

namespace us3d::runtime {

class WorkerPool {
 public:
  /// `threads` >= 1 is the parallelism of run() (threads - 1 are spawned;
  /// the caller is the remaining one).
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int thread_count() const { return threads_; }

  /// Caps how many pool members participate in subsequent run() calls,
  /// clamped to [1, thread_count()]. Tasks are claimed dynamically, so a
  /// capped run still completes every task — just with fewer concurrent
  /// claimants. This is the per-pipeline worker-cap hook the imaging
  /// service uses to re-share one worker budget across sessions without
  /// re-partitioning or respawning anything. Takes effect for jobs started
  /// after the call; safe from any thread.
  void set_parallelism_cap(int cap);
  int parallelism_cap() const {
    return cap_.load(std::memory_order_relaxed);
  }

  /// Runs fn(task) for every task in [0, task_count), distributing tasks
  /// dynamically over the pool, and blocks until all complete. If any task
  /// throws, the first exception is rethrown here (remaining tasks still
  /// run to completion so the pool stays consistent). Not reentrant.
  void run(int task_count, const std::function<void(int)>& fn)
      US3D_EXCLUDES(mutex_);

 private:
  /// `member` is this thread's pool index (the caller of run() is member
  /// 0; spawned workers are 1..threads-1). Members at or beyond the
  /// parallelism cap sit jobs out.
  void worker_loop(int member) US3D_EXCLUDES(mutex_);
  /// Claims and runs queued tasks until none remain; returns when the
  /// current job is drained.
  void drain_job() US3D_EXCLUDES(mutex_);

  int threads_;
  std::atomic<int> cap_;  // active pool members for new jobs
  std::vector<std::thread> workers_;

  Mutex mutex_;
  CondVar start_cv_;
  CondVar done_cv_;
  bool stop_ US3D_GUARDED_BY(mutex_) = false;
  // Bumped per run() to wake workers.
  std::uint64_t generation_ US3D_GUARDED_BY(mutex_) = 0;
  const std::function<void(int)>* job_ US3D_GUARDED_BY(mutex_) = nullptr;
  int job_tasks_ US3D_GUARDED_BY(mutex_) = 0;
  // Next unclaimed task of the current job.
  int next_task_ US3D_GUARDED_BY(mutex_) = 0;
  // Claimed-or-unclaimed tasks not yet finished.
  int pending_tasks_ US3D_GUARDED_BY(mutex_) = 0;
  std::exception_ptr first_error_ US3D_GUARDED_BY(mutex_);
};

}  // namespace us3d::runtime

#endif  // US3D_RUNTIME_WORKER_POOL_H
