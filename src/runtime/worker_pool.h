// Persistent thread pool for the frame pipeline. Threads are spawned once
// and reused across every frame (spawning per frame would dominate the
// small scaled-system workloads the tests use). run() is a blocking
// parallel-for: the calling thread participates in draining the task
// queue, so WorkerPool(1) runs everything inline on the caller with no
// cross-thread traffic at all — the serial baseline and the parallel path
// share one code path.
#ifndef US3D_RUNTIME_WORKER_POOL_H
#define US3D_RUNTIME_WORKER_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace us3d::runtime {

class WorkerPool {
 public:
  /// `threads` >= 1 is the parallelism of run() (threads - 1 are spawned;
  /// the caller is the remaining one).
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int thread_count() const { return threads_; }

  /// Caps how many pool members participate in subsequent run() calls,
  /// clamped to [1, thread_count()]. Tasks are claimed dynamically, so a
  /// capped run still completes every task — just with fewer concurrent
  /// claimants. This is the per-pipeline worker-cap hook the imaging
  /// service uses to re-share one worker budget across sessions without
  /// re-partitioning or respawning anything. Takes effect for jobs started
  /// after the call; safe from any thread.
  void set_parallelism_cap(int cap);
  int parallelism_cap() const {
    return cap_.load(std::memory_order_relaxed);
  }

  /// Runs fn(task) for every task in [0, task_count), distributing tasks
  /// dynamically over the pool, and blocks until all complete. If any task
  /// throws, the first exception is rethrown here (remaining tasks still
  /// run to completion so the pool stays consistent). Not reentrant.
  void run(int task_count, const std::function<void(int)>& fn);

 private:
  /// `member` is this thread's pool index (the caller of run() is member
  /// 0; spawned workers are 1..threads-1). Members at or beyond the
  /// parallelism cap sit jobs out.
  void worker_loop(int member);
  /// Claims and runs queued tasks until none remain; returns when the
  /// current job is drained.
  void drain_job();

  int threads_;
  std::atomic<int> cap_;  // active pool members for new jobs
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;  // bumped per run() to wake workers
  const std::function<void(int)>* job_ = nullptr;
  int job_tasks_ = 0;
  int next_task_ = 0;     // next unclaimed task (guarded by mutex_)
  int pending_tasks_ = 0; // claimed-or-unclaimed tasks not yet finished
  std::exception_ptr first_error_;
};

}  // namespace us3d::runtime

#endif  // US3D_RUNTIME_WORKER_POOL_H
