#include "runtime/frame_source.h"

#include <utility>

#include "common/contracts.h"

namespace us3d::runtime {

ReplayFrameSource::ReplayFrameSource(std::vector<EchoFrame> frames,
                                     int repeats)
    : frames_(std::move(frames)), repeats_(repeats) {
  US3D_EXPECTS(!frames_.empty());
  US3D_EXPECTS(repeats >= 1);
}

std::int64_t ReplayFrameSource::total_frames() const {
  return static_cast<std::int64_t>(frames_.size()) * repeats_;
}

std::optional<EchoFrame> ReplayFrameSource::next_frame() {
  if (emitted_ >= total_frames()) return std::nullopt;
  EchoFrame frame = frames_[static_cast<std::size_t>(
      emitted_ % static_cast<std::int64_t>(frames_.size()))];
  frame.sequence = emitted_++;
  return frame;
}

void ReplayFrameSource::rewind() { emitted_ = 0; }

StreamedFrameSource::StreamedFrameSource(FrameSource& inner,
                                         const hw::StreamBufferConfig& config)
    : inner_(&inner), config_(config) {
  US3D_EXPECTS(config.capacity_words > 0);
  US3D_EXPECTS(config.clock_hz > 0.0);
  US3D_EXPECTS(config.dram_bandwidth_bytes_per_s > 0.0);
  US3D_EXPECTS(config.word_bits > 0);
  US3D_EXPECTS(config.drain_words_per_cycle > 0.0);
}

std::optional<EchoFrame> StreamedFrameSource::next_frame() {
  std::optional<EchoFrame> frame = inner_->next_frame();
  if (!frame) return frame;
  const std::int64_t words =
      static_cast<std::int64_t>(frame->echoes.element_count()) *
      frame->echoes.samples_per_element();
  const hw::StreamBufferReport r = hw::simulate_stream(config_, words);
  if (r.underrun) {
    ++report_.underrun_frames;
    report_.stall_cycles += r.underrun_cycles;
  }
  if (report_.frames == 0 || r.min_margin_cycles < report_.min_margin_cycles) {
    report_.min_margin_cycles = r.min_margin_cycles;
  }
  ++report_.frames;
  return frame;
}

}  // namespace us3d::runtime
