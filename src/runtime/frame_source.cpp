#include "runtime/frame_source.h"

#include <thread>
#include <utility>

#include "common/contracts.h"

namespace us3d::runtime {

ReplayFrameSource::ReplayFrameSource(std::vector<EchoFrame> frames,
                                     int repeats)
    : frames_(std::move(frames)), repeats_(repeats) {
  US3D_EXPECTS(!frames_.empty());
  US3D_EXPECTS(repeats >= 1);
}

std::int64_t ReplayFrameSource::total_frames() const {
  return static_cast<std::int64_t>(frames_.size()) * repeats_;
}

std::optional<EchoFrame> ReplayFrameSource::next_frame() {
  if (emitted_ >= total_frames()) return std::nullopt;
  EchoFrame frame = frames_[static_cast<std::size_t>(
      emitted_ % static_cast<std::int64_t>(frames_.size()))];
  frame.sequence = emitted_++;
  return frame;
}

void ReplayFrameSource::rewind() { emitted_ = 0; }

StreamedFrameSource::StreamedFrameSource(FrameSource& inner,
                                         const hw::StreamBufferConfig& config,
                                         IngestPacing pacing)
    : inner_(&inner), config_(config), pacing_(pacing) {
  US3D_EXPECTS(config.capacity_words > 0);
  US3D_EXPECTS(config.clock_hz > 0.0);
  US3D_EXPECTS(config.dram_bandwidth_bytes_per_s > 0.0);
  US3D_EXPECTS(config.word_bits > 0);
  US3D_EXPECTS(config.drain_words_per_cycle > 0.0);
}

std::optional<EchoFrame> StreamedFrameSource::next_frame() {
  std::optional<EchoFrame> frame = inner_->next_frame();
  if (!frame) return frame;
  const std::int64_t words =
      static_cast<std::int64_t>(frame->echoes.element_count()) *
      frame->echoes.samples_per_element();
  const hw::StreamBufferReport r = hw::simulate_stream(config_, words);
  if (r.underrun) {
    ++report_.underrun_frames;
    report_.stall_cycles += r.underrun_cycles;
  }
  if (report_.frames == 0 || r.min_margin_cycles < report_.min_margin_cycles) {
    report_.min_margin_cycles = r.min_margin_cycles;
  }
  ++report_.frames;
  report_.modeled_ingest_s +=
      static_cast<double>(r.cycles_simulated) / config_.clock_hz;
  if (pacing_ == IngestPacing::kWallClock) {
    // Frame n becomes available at stream start + the modeled front-end
    // time of frames 0..n. A consumer slower than the front-end never
    // sleeps (the deadline is already past); a faster one is held to the
    // acquisition rate — which is what lets a pipeline run double as a
    // wall-clock acquisition simulation.
    using ClockT = std::chrono::steady_clock;
    if (!stream_start_) stream_start_ = ClockT::now();
    const auto deadline =
        *stream_start_ + std::chrono::duration_cast<ClockT::duration>(
                             std::chrono::duration<double>(
                                 report_.modeled_ingest_s));
    const auto now = ClockT::now();
    if (deadline > now) {
      report_.paced_wait_s +=
          std::chrono::duration<double>(deadline - now).count();
      std::this_thread::sleep_until(deadline);
    }
  }
  return frame;
}

}  // namespace us3d::runtime
