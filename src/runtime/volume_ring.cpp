#include "runtime/volume_ring.h"

#include <algorithm>

#include "common/contracts.h"

namespace us3d::runtime {

VolumeRing::VolumeRing(const imaging::VolumeSpec& spec, int slots) {
  US3D_EXPECTS(slots >= 1);
  volumes_.reserve(static_cast<std::size_t>(slots));
  for (int i = 0; i < slots; ++i) volumes_.emplace_back(spec);
  // The object is not shared yet, but holding the (uncontended) lock keeps
  // the guarded-member discipline uniform for the analysis.
  MutexLock lock(mutex_);
  free_.reserve(static_cast<std::size_t>(slots));
  // Hand out low indices first so single-slot runs always reuse slot 0.
  for (int i = slots - 1; i >= 0; --i) free_.push_back(i);
  active_ = slots;
}

int VolumeRing::acquire() {
  MutexLock lock(mutex_);
  while (!closed_ && (free_.empty() || in_flight_locked() >= active_)) {
    free_cv_.wait(mutex_);
  }
  if (closed_ || free_.empty()) return -1;
  const int slot = free_.back();
  free_.pop_back();
  sample_occupancy_locked();
  return slot;
}

int VolumeRing::try_acquire() {
  MutexLock lock(mutex_);
  if (closed_ || free_.empty() || in_flight_locked() >= active_) return -1;
  const int slot = free_.back();
  free_.pop_back();
  sample_occupancy_locked();
  return slot;
}

void VolumeRing::set_active_slots(int active) {
  US3D_EXPECTS(active >= 1);
  {
    MutexLock lock(mutex_);
    active_ = std::min(active, slots());
  }
  free_cv_.notify_all();
}

int VolumeRing::active_slots() const {
  MutexLock lock(mutex_);
  return active_;
}

void VolumeRing::release(int slot) {
  US3D_EXPECTS(slot >= 0 && slot < slots());
  {
    MutexLock lock(mutex_);
    US3D_EXPECTS(free_.size() < volumes_.size());  // double release
    free_.push_back(slot);
    sample_occupancy_locked();
  }
  free_cv_.notify_one();
}

void VolumeRing::set_occupancy_gauge(std::shared_ptr<obs::Gauge> gauge) {
  MutexLock lock(mutex_);
  occupancy_gauge_ = std::move(gauge);
  sample_occupancy_locked();
}

void VolumeRing::close() {
  {
    MutexLock lock(mutex_);
    closed_ = true;
  }
  free_cv_.notify_all();
}

beamform::VolumeImage& VolumeRing::operator[](int slot) {
  US3D_EXPECTS(slot >= 0 && slot < slots());
  return volumes_[static_cast<std::size_t>(slot)];
}

const beamform::VolumeImage& VolumeRing::operator[](int slot) const {
  US3D_EXPECTS(slot >= 0 && slot < slots());
  return volumes_[static_cast<std::size_t>(slot)];
}

int VolumeRing::free_count() const {
  MutexLock lock(mutex_);
  return static_cast<int>(free_.size());
}

}  // namespace us3d::runtime
