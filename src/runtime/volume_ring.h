// Fixed pool of reusable output volumes for the async pipeline. The ring
// owns N VolumeImages (the "N in-flight volumes" knob): the beamform stage
// acquires a free slot per frame, downstream stages pass the slot index
// along, and whoever finishes with the volume releases the slot back. When
// every slot is in flight, acquire() blocks — that is how a slow sink
// backpressures the beamformer without unbounded buffering. Slots are
// plain indices so queues move ints, never volumes.
#ifndef US3D_RUNTIME_VOLUME_RING_H
#define US3D_RUNTIME_VOLUME_RING_H

#include <memory>
#include <vector>

#include "beamform/volume_image.h"
#include "common/annotated_mutex.h"
#include "imaging/volume.h"
#include "obs/metrics.h"

namespace us3d::runtime {

class VolumeRing {
 public:
  /// Allocates `slots` volumes of `spec` up front; steady-state streaming
  /// then recycles them with zero allocation.
  VolumeRing(const imaging::VolumeSpec& spec, int slots);

  VolumeRing(const VolumeRing&) = delete;
  VolumeRing& operator=(const VolumeRing&) = delete;

  /// Lock-free by design: volumes_ is sized once in the ctor and never
  /// resized, so its size is safe to read from any thread.
  int slots() const { return static_cast<int>(volumes_.size()); }

  /// Soft cap on concurrently acquired slots, in [1, slots()]. Volumes are
  /// allocated once at construction; shrinking the cap makes acquire()
  /// hold back until in-flight count drops below it — the runtime hook an
  /// adaptive queue-depth policy shrinks a lagging session with (no
  /// reallocation, no dropped work). Growing wakes blocked acquirers.
  void set_active_slots(int active) US3D_EXCLUDES(mutex_);
  int active_slots() const US3D_EXCLUDES(mutex_);

  /// Blocks until a slot is free; returns its index, or -1 once the ring
  /// is closed (shutdown — the caller should drop its work item).
  int acquire() US3D_EXCLUDES(mutex_);

  /// Non-blocking acquire: -1 when no slot is free right now or closed.
  int try_acquire() US3D_EXCLUDES(mutex_);

  /// Returns a slot to the free list. Always succeeds (release capacity
  /// equals the number of slots by construction), even after close().
  void release(int slot) US3D_EXCLUDES(mutex_);

  /// Unblocks every pending and future acquire() with -1. Used on failure
  /// shutdown so the beamform stage can drain-and-drop instead of
  /// deadlocking on a slot the dead consumer will never return.
  void close() US3D_EXCLUDES(mutex_);

  beamform::VolumeImage& operator[](int slot);
  const beamform::VolumeImage& operator[](int slot) const;

  int free_count() const US3D_EXCLUDES(mutex_);

  /// Attaches a live in-flight-slot gauge, updated under the ring lock on
  /// every acquire/release so a scrape never sees a transient count.
  /// Null detaches.
  void set_occupancy_gauge(std::shared_ptr<obs::Gauge> gauge) US3D_EXCLUDES(mutex_);

 private:
  void sample_occupancy_locked() US3D_REQUIRES(mutex_) {
    if (occupancy_gauge_) occupancy_gauge_->set(in_flight_locked());
  }

  /// In-flight slots under the lock: allocated minus free.
  int in_flight_locked() const US3D_REQUIRES(mutex_) {
    return static_cast<int>(volumes_.size() - free_.size());
  }

  std::vector<beamform::VolumeImage> volumes_;  // sized once in the ctor
  mutable Mutex mutex_;
  CondVar free_cv_;
  std::vector<int> free_ US3D_GUARDED_BY(mutex_);
  std::shared_ptr<obs::Gauge> occupancy_gauge_ US3D_GUARDED_BY(mutex_);
  // Soft cap on in-flight slots (set in the ctor).
  int active_ US3D_GUARDED_BY(mutex_) = 0;
  bool closed_ US3D_GUARDED_BY(mutex_) = false;
};

}  // namespace us3d::runtime

#endif  // US3D_RUNTIME_VOLUME_RING_H
