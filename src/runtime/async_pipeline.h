// The async streaming core: a bounded-queue stage graph that overlaps
// ingest, beamform, compounding and sink consumption, with real
// backpressure for an acquisition front-end.
//
//   submit()/try_submit() ─► input queue ─► beamform stage ─► VolumeRing slot
//                            (bounded:       (pool sweep via     │
//                             backpressure)   FramePipeline)     ▼
//   poll()/wait_one()/  ◄─ output queue ◄─ compound stage (sums K origins)
//   flush()/finish()        (in order)
//
// - The caller is the ingest stage: submit() blocks while the bounded
//   input queue is full (that *is* the backpressure an acquisition
//   front-end needs), try_submit() refuses instead so a real-time producer
//   can shed or buffer.
// - The beamform stage runs on its own thread, sweeping each frame across
//   the FramePipeline's worker pool into a VolumeRing slot (N in-flight
//   volumes, not two hardcoded buffers).
// - The compound stage (its own thread) coherently sums K successive
//   insonifications into one output volume — origin k+1 beamforms while
//   origin k accumulates. With K = 1 it forwards volumes untouched. The
//   compounded volume is bit-identical to beamforming each insonification
//   serially and summing in shot order (property-tested for all engines).
// - Outputs leave in acquisition order. Consumption is either caller-driven
//   (poll / wait_one / flush — one consuming thread at a time) or the
//   synchronous FramePipeline::run wrapper, which is a thin loop over this
//   class: there is one scheduling implementation, not two.
//
// Failure semantics: a sink exception or a beamform/worker exception stops
// the pipeline — submit() starts returning false, in-flight work is
// drained and dropped (never silently lost: PipelineStats::dropped_frames
// counts it), and finish() reports the stored exception via
// rethrow_if_failed(). Frame accounting is delivery-based throughout:
// stats().frames only counts volumes the sink actually received.
#ifndef US3D_RUNTIME_ASYNC_PIPELINE_H
#define US3D_RUNTIME_ASYNC_PIPELINE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <exception>
#include <string>
#include <thread>

#include "common/annotated_mutex.h"
#include "runtime/bounded_queue.h"
#include "runtime/frame_pipeline.h"
#include "runtime/frame_source.h"
#include "runtime/pipeline_stats.h"
#include "runtime/volume_ring.h"

namespace us3d::runtime {

struct AsyncOptions {
  /// In-flight output volumes: the VolumeRing size and the bound on the
  /// input queue. 1 = fully serial hand-off, 2 = classic double
  /// buffering, larger absorbs burstier sinks. Clamped to >= 2 when
  /// compounding (the accumulator occupies one slot across its group).
  int depth = 2;
  /// Compounding factor K: sum K successive insonifications into each
  /// output volume. 1 disables compounding. A final partial group (stream
  /// ended mid-group) is still delivered, with its actual count.
  int compound_origins = 1;
  /// Session id stamped on every stage span this pipeline records (the
  /// "session" span arg in the exported trace). -1 = standalone pipeline.
  std::int64_t session = -1;
  /// When non-empty, the pipeline registers live occupancy gauges under
  /// this prefix in obs::MetricsRegistry::global() —
  /// "<scope>.input_queue_depth" and "<scope>.ring_in_flight", sampled
  /// under the queue/ring locks on every enqueue/dequeue — and names its
  /// stage threads "<scope>.beamform"/"<scope>.compound" in the trace.
  /// Empty (the default) registers nothing: standalone pipelines leave no
  /// residue in the global registry.
  std::string metrics_scope{};
};

class AsyncPipeline {
 public:
  /// Spawns the beamform and compound stage threads immediately. The
  /// pipeline borrows `pipeline`'s worker pool and engine clones; at most
  /// one AsyncPipeline (or run()) may be active per FramePipeline at a
  /// time — the pool is not reentrant.
  explicit AsyncPipeline(FramePipeline& pipeline,
                         const AsyncOptions& options = {});

  /// Joins the stage threads. If finish() was never called, in-flight
  /// work is discarded (call finish() to drain and collect stats).
  ~AsyncPipeline();

  AsyncPipeline(const AsyncPipeline&) = delete;
  AsyncPipeline& operator=(const AsyncPipeline&) = delete;

  /// Blocking submit: parks the caller while the input queue is full
  /// (backpressure). Returns false once the pipeline has failed or been
  /// closed — the frame was not accepted.
  bool submit(EchoFrame frame) US3D_EXCLUDES(state_mutex_);

  /// Non-blocking submit: false when the queue is full right now (the
  /// frame is left intact for the caller to retry or shed) or the
  /// pipeline is closed/failed.
  bool try_submit(EchoFrame& frame) US3D_EXCLUDES(state_mutex_);

  /// Non-blocking: delivers at most one finished volume to `sink`.
  /// Returns true if one was delivered. One consuming thread at a time.
  bool poll(const VolumeSink& sink) US3D_EXCLUDES(state_mutex_);

  /// Blocking: waits for the next finished volume and delivers it.
  /// Returns false when no more outputs will ever arrive (stream closed
  /// and drained, or pipeline failed).
  bool wait_one(const VolumeSink& sink) US3D_EXCLUDES(state_mutex_);

  /// Blocks until every insonification submitted so far has been
  /// processed through the beamform and compound stages, delivering any
  /// finished volumes to `sink` on the way (a partial compound group
  /// stays buffered until close()). This is what makes the synchronous
  /// non-overlapped mode strictly sequential.
  void flush(const VolumeSink& sink) US3D_EXCLUDES(state_mutex_);

  /// No more submissions; in-flight frames still complete and can be
  /// drained with wait_one()/finish(). Idempotent.
  void close();

  /// close() + deliver every remaining output to `sink` + join the stage
  /// threads, then return the final stats (wall_s covers construction to
  /// finish). The session's stats are also folded into the owning
  /// FramePipeline's lifetime stats() exactly once, so back-to-back
  /// sessions (run() wrappers or direct AsyncPipeline use) accumulate
  /// coherently on one pipeline. Does NOT throw on pipeline failure so
  /// the caller always gets truthful stats — call rethrow_if_failed()
  /// after. Idempotent. A pipeline destroyed without finish() leaves no
  /// trace in the lifetime stats (its work was discarded, not delivered).
  PipelineStats finish(const VolumeSink& sink) US3D_EXCLUDES(state_mutex_);

  /// Rethrows the first stored failure, worker errors before sink errors.
  /// No-op if the pipeline is healthy.
  void rethrow_if_failed() US3D_EXCLUDES(state_mutex_);

  bool failed() const { return failed_.load(std::memory_order_acquire); }

  /// Folds a caller-measured source latency into stats().ingest (the
  /// caller is the ingest stage, so only it can time the source).
  void record_ingest(double seconds) US3D_EXCLUDES(state_mutex_);

  /// One consistent mid-run stats view, taken under the pipeline's state
  /// lock. While the stream is live, `insonifications` reflects accepted
  /// submissions so far (and dropped_frames stays 0 — in-flight work is
  /// not yet dropped), so a scraper's ledger is always bounded:
  /// delivered <= insonifications at every instant. After finish() this
  /// is exactly the final stats.
  PipelineStats stats_snapshot() const US3D_EXCLUDES(state_mutex_);

  int ring_slots() const { return ring_.slots(); }

  /// Adaptive queue-depth hook (the ROADMAP load-shedding item): bounds
  /// in-flight frames to `depth` from now on — the input queue's capacity
  /// and a soft cap on concurrently acquired ring slots (clamped to >= 2
  /// while compounding, and to the allocated ring size). Shrinking never
  /// drops queued work; it only refuses new submissions earlier, which is
  /// what lets a service shed a lagging session's load without stalling
  /// its neighbours. Thread-safe; reported via stats().queue_depth.
  void set_queue_depth(int depth) US3D_EXCLUDES(state_mutex_);
  int queue_depth() const US3D_EXCLUDES(state_mutex_);

 private:
  using Clock = std::chrono::steady_clock;

  struct Beamformed {
    int slot = -1;
    std::int64_t sequence = 0;
  };
  struct Output {
    int slot = -1;
    std::int64_t sequence = 0;   ///< last insonification summed in
    std::int64_t summed = 0;     ///< insonifications in this volume
  };

  void beamform_loop() US3D_EXCLUDES(state_mutex_);
  void compound_loop() US3D_EXCLUDES(state_mutex_);
  /// Queues a finished volume for consumption (or drops it after failure).
  void emit(Output out) US3D_EXCLUDES(state_mutex_);
  /// Runs the sink on one output and does delivery accounting. Returns
  /// false if the sink threw (the pipeline is failed afterwards).
  bool deliver(const VolumeSink& sink, const Output& out)
      US3D_EXCLUDES(state_mutex_);
  void fail(std::exception_ptr error, bool from_sink)
      US3D_EXCLUDES(state_mutex_);
  /// Pops the next queued output under the state lock; false if none.
  bool take_output(Output& out) US3D_REQUIRES(state_mutex_);

  FramePipeline& pipeline_;
  AsyncOptions options_;
  VolumeRing ring_;
  BoundedQueue<EchoFrame> input_;
  BoundedQueue<Beamformed> beamformed_;
  /// Static backend / precision names for span args (point at
  /// dispatch.h's literals).
  const char* backend_name_ = "";
  const char* precision_name_ = "";

  std::atomic<bool> failed_{false};

  mutable Mutex state_mutex_;
  CondVar state_cv_;
  // Bounded by ring slots.
  std::deque<Output> output_ US3D_GUARDED_BY(state_mutex_);
  // Compound stage has exited.
  bool stages_done_ US3D_GUARDED_BY(state_mutex_) = false;
  bool finished_ US3D_GUARDED_BY(state_mutex_) = false;
  std::exception_ptr worker_error_ US3D_GUARDED_BY(state_mutex_);
  std::exception_ptr sink_error_ US3D_GUARDED_BY(state_mutex_);
  // Insonifications accepted.
  std::int64_t submitted_ US3D_GUARDED_BY(state_mutex_) = 0;
  // Through the compound stage.
  std::int64_t processed_ US3D_GUARDED_BY(state_mutex_) = 0;
  std::int64_t delivered_insonifications_ US3D_GUARDED_BY(state_mutex_) = 0;
  PipelineStats stats_ US3D_GUARDED_BY(state_mutex_);

  Clock::time_point start_;
  std::thread beamform_thread_;
  std::thread compound_thread_;
};

}  // namespace us3d::runtime

#endif  // US3D_RUNTIME_ASYNC_PIPELINE_H
