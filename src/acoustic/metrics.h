// Image-quality metrics on beamformed volumes: point-spread-function
// geometry and sidelobe level around a known scatterer, plus volume
// comparison. Used to show that delay approximation errors (TABLEFREE /
// TABLESTEER) translate into negligible image degradation inside the
// apodized field of view.
#ifndef US3D_ACOUSTIC_METRICS_H
#define US3D_ACOUSTIC_METRICS_H

#include "beamform/volume_image.h"
#include "imaging/volume.h"

namespace us3d::acoustic {

struct PsfMetrics {
  beamform::VolumeImage::Peak peak{};
  /// -6 dB full widths of the main lobe, in grid steps along each axis.
  double width_theta = 0.0;
  double width_phi = 0.0;
  double width_depth = 0.0;
  /// Largest |value| outside the main lobe, relative to the peak (linear).
  double sidelobe_ratio = 0.0;
};

/// Measures the PSF around the global peak. `mainlobe_exclusion` is the
/// half-size (in grid steps per axis) of the box treated as main lobe when
/// searching for sidelobes.
PsfMetrics measure_psf(const beamform::VolumeImage& image,
                       int mainlobe_exclusion = 6);

/// Distance in grid steps between the image peak and the expected location.
double peak_offset_steps(const PsfMetrics& psf, int i_theta, int i_phi,
                         int i_depth);

/// Voxel-wise deviation of a test volume from a reference (specs must
/// match). This is the acceptance gauge of the quantized int16 pipeline:
/// its volumes must stay within beamform::kQuantMinPsnrDb of the exact
/// double reconstruction.
struct VolumeDiff {
  double max_abs_diff = 0.0;  ///< largest |ref - test| (linear units)
  double rms_diff = 0.0;      ///< root-mean-square of (ref - test)
  /// 20·log10(peak|ref| / rms_diff); +infinity for identical volumes.
  double psnr_db = 0.0;
};

VolumeDiff compare_volumes(const beamform::VolumeImage& reference,
                           const beamform::VolumeImage& test);

}  // namespace us3d::acoustic

#endif  // US3D_ACOUSTIC_METRICS_H
