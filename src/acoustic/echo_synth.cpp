#include "acoustic/echo_synth.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"
#include "delay/exact.h"
#include "probe/transducer.h"

namespace us3d::acoustic {

beamform::EchoBuffer synthesize_echoes(const imaging::SystemConfig& config,
                                       const Phantom& phantom,
                                       const SynthesisOptions& options) {
  const probe::MatrixProbe probe(config.probe);
  const GaussianPulse pulse(config.probe.center_frequency_hz,
                            config.probe.bandwidth_hz);
  beamform::EchoBuffer echoes(probe.element_count(),
                              config.echo_buffer_samples());

  const double fs = config.sampling_frequency_hz;
  const double support_samples = pulse.support() * fs;

  for (int e = 0; e < probe.element_count(); ++e) {
    const Vec3 d = probe.element_position(e);
    auto row = echoes.row(e);
    for (const PointScatterer& sc : phantom) {
      US3D_EXPECTS(sc.position.z > 0.0);
      const double t = delay::two_way_delay_s(options.origin, sc.position, d,
                                              config.speed_of_sound);
      double amp = sc.amplitude;
      if (options.spherical_spreading) {
        const double r_tx = sc.position.distance_to(options.origin);
        const double r_rx = sc.position.distance_to(d);
        amp /= std::max(1e-9, r_tx * r_rx);
      }
      const double center = t * fs;
      const auto lo = static_cast<std::int64_t>(
          std::max(0.0, std::floor(center - support_samples)));
      const auto hi = static_cast<std::int64_t>(
          std::min(static_cast<double>(echoes.samples_per_element() - 1),
                   std::ceil(center + support_samples)));
      for (std::int64_t i = lo; i <= hi; ++i) {
        const double dt = (static_cast<double>(i) - center) / fs;
        row[static_cast<std::size_t>(i)] +=
            static_cast<float>(amp * pulse.value(dt));
      }
    }
  }
  return echoes;
}

}  // namespace us3d::acoustic
