// Element-level echo synthesis: fills an EchoBuffer with the RF traces each
// element would record from a phantom, using the exact two-way propagation
// physics of Eq. (2). The synthetic echoes exercise the full beamforming
// path so delay-architecture accuracy can be judged at the image level.
#ifndef US3D_ACOUSTIC_ECHO_SYNTH_H
#define US3D_ACOUSTIC_ECHO_SYNTH_H

#include "acoustic/phantom.h"
#include "acoustic/pulse.h"
#include "beamform/echo_buffer.h"
#include "imaging/system_config.h"

namespace us3d::acoustic {

struct SynthesisOptions {
  /// Apply 1/(r_tx * r_rx) spherical spreading to scatterer amplitudes.
  bool spherical_spreading = false;
  /// Transmit origin (virtual source); the paper's architectures assume
  /// the probe centre.
  Vec3 origin{};
};

/// Synthesizes echoes for every probe element. Buffer length is
/// config.echo_buffer_samples().
beamform::EchoBuffer synthesize_echoes(const imaging::SystemConfig& config,
                                       const Phantom& phantom,
                                       const SynthesisOptions& options = {});

}  // namespace us3d::acoustic

#endif  // US3D_ACOUSTIC_ECHO_SYNTH_H
