// Transmit pulse model: a Gaussian-modulated sinusoid at the transducer
// centre frequency, with the envelope width set by the fractional
// bandwidth (Table I: fc = 4 MHz, B = 4 MHz -> 100% fractional bandwidth).
#ifndef US3D_ACOUSTIC_PULSE_H
#define US3D_ACOUSTIC_PULSE_H

namespace us3d::acoustic {

class GaussianPulse {
 public:
  /// `bandwidth_hz` is the -6 dB (half-amplitude) full spectral width.
  GaussianPulse(double center_frequency_hz, double bandwidth_hz);

  /// Pulse amplitude at time t (seconds), centred at t = 0.
  double value(double t) const;

  /// Envelope amplitude at time t.
  double envelope(double t) const;

  /// Time beyond which the envelope is below ~1e-6 (integration cutoff).
  double support() const;

  double center_frequency() const { return fc_; }
  double sigma() const { return sigma_; }

 private:
  double fc_;
  double sigma_;  // envelope standard deviation in seconds
};

}  // namespace us3d::acoustic

#endif  // US3D_ACOUSTIC_PULSE_H
