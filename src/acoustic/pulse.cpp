#include "acoustic/pulse.h"

#include <cmath>

#include "common/angles.h"
#include "common/contracts.h"

namespace us3d::acoustic {

GaussianPulse::GaussianPulse(double center_frequency_hz, double bandwidth_hz)
    : fc_(center_frequency_hz) {
  US3D_EXPECTS(center_frequency_hz > 0.0);
  US3D_EXPECTS(bandwidth_hz > 0.0);
  // Gaussian envelope exp(-t^2 / (2 sigma^2)) has spectrum
  // exp(-sigma^2 (2 pi f)^2 / 2); the half-amplitude full width B satisfies
  // exp(-sigma^2 (pi B)^2 / 2) = 1/2  =>  sigma = sqrt(2 ln 2) / (pi B).
  sigma_ = std::sqrt(2.0 * std::log(2.0)) / (kPi * bandwidth_hz);
}

double GaussianPulse::envelope(double t) const {
  return std::exp(-t * t / (2.0 * sigma_ * sigma_));
}

double GaussianPulse::value(double t) const {
  return envelope(t) * std::cos(2.0 * kPi * fc_ * t);
}

double GaussianPulse::support() const {
  // exp(-x^2/2) < 1e-6 for |x| > ~5.26 sigma.
  return 5.3 * sigma_;
}

}  // namespace us3d::acoustic
