#include "acoustic/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.h"

namespace us3d::acoustic {

namespace {

/// -6 dB full width along one axis through the peak, by linear
/// interpolation of the crossing points.
double axis_width(const beamform::VolumeImage& image, int it, int ip, int id,
                  int axis) {
  const auto& spec = image.spec();
  const double peak = std::abs(image.at(it, ip, id));
  US3D_EXPECTS(peak > 0.0);
  const double half = peak / 2.0;

  auto value_at = [&](int offset) -> double {
    int a = it, b = ip, c = id;
    (axis == 0 ? a : axis == 1 ? b : c) += offset;
    if (a < 0 || a >= spec.n_theta || b < 0 || b >= spec.n_phi || c < 0 ||
        c >= spec.n_depth) {
      return 0.0;
    }
    return std::abs(image.at(a, b, c));
  };

  auto crossing = [&](int dir) -> double {
    double prev = peak;
    for (int step = 1; step < 4096; ++step) {
      const double v = value_at(dir * step);
      if (v < half) {
        // Linear interpolation between (step-1, prev) and (step, v).
        const double frac = prev > v ? (prev - half) / (prev - v) : 0.0;
        return static_cast<double>(step - 1) + frac;
      }
      prev = v;
    }
    return 4096.0;
  };

  return crossing(+1) + crossing(-1);
}

}  // namespace

PsfMetrics measure_psf(const beamform::VolumeImage& image,
                       int mainlobe_exclusion) {
  US3D_EXPECTS(mainlobe_exclusion >= 0);
  PsfMetrics m;
  m.peak = image.peak_abs();
  const double peak = std::abs(m.peak.value);
  US3D_EXPECTS(peak > 0.0);

  m.width_theta = axis_width(image, m.peak.i_theta, m.peak.i_phi,
                             m.peak.i_depth, 0);
  m.width_phi = axis_width(image, m.peak.i_theta, m.peak.i_phi,
                           m.peak.i_depth, 1);
  m.width_depth = axis_width(image, m.peak.i_theta, m.peak.i_phi,
                             m.peak.i_depth, 2);

  const auto& spec = image.spec();
  float worst = 0.0f;
  for (int it = 0; it < spec.n_theta; ++it) {
    for (int ip = 0; ip < spec.n_phi; ++ip) {
      for (int id = 0; id < spec.n_depth; ++id) {
        if (std::abs(it - m.peak.i_theta) <= mainlobe_exclusion &&
            std::abs(ip - m.peak.i_phi) <= mainlobe_exclusion &&
            std::abs(id - m.peak.i_depth) <= mainlobe_exclusion) {
          continue;
        }
        worst = std::max(worst, std::abs(image.at(it, ip, id)));
      }
    }
  }
  m.sidelobe_ratio = worst / peak;
  return m;
}

double peak_offset_steps(const PsfMetrics& psf, int i_theta, int i_phi,
                         int i_depth) {
  const double dt = psf.peak.i_theta - i_theta;
  const double dp = psf.peak.i_phi - i_phi;
  const double dd = psf.peak.i_depth - i_depth;
  return std::sqrt(dt * dt + dp * dp + dd * dd);
}

VolumeDiff compare_volumes(const beamform::VolumeImage& reference,
                           const beamform::VolumeImage& test) {
  const auto& spec = reference.spec();
  US3D_EXPECTS(test.spec().n_theta == spec.n_theta &&
               test.spec().n_phi == spec.n_phi &&
               test.spec().n_depth == spec.n_depth);
  VolumeDiff diff;
  double sum_sq = 0.0;
  double peak = 0.0;
  for (int it = 0; it < spec.n_theta; ++it) {
    for (int ip = 0; ip < spec.n_phi; ++ip) {
      for (int id = 0; id < spec.n_depth; ++id) {
        const double r = reference.at(it, ip, id);
        const double d = r - test.at(it, ip, id);
        diff.max_abs_diff = std::max(diff.max_abs_diff, std::abs(d));
        sum_sq += d * d;
        peak = std::max(peak, std::abs(r));
      }
    }
  }
  diff.rms_diff =
      std::sqrt(sum_sq / static_cast<double>(spec.total_points()));
  diff.psnr_db = diff.rms_diff > 0.0
                     ? 20.0 * std::log10(peak / diff.rms_diff)
                     : std::numeric_limits<double>::infinity();
  return diff;
}

}  // namespace us3d::acoustic
