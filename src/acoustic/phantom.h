// Synthetic imaging targets: point scatterers with reflectivities. This
// replaces the physical tissue of the paper's end application (see the
// substitution table in DESIGN.md).
#ifndef US3D_ACOUSTIC_PHANTOM_H
#define US3D_ACOUSTIC_PHANTOM_H

#include <vector>

#include "common/vec3.h"

namespace us3d::acoustic {

struct PointScatterer {
  Vec3 position{};
  double amplitude = 1.0;
};

using Phantom = std::vector<PointScatterer>;

}  // namespace us3d::acoustic

#endif  // US3D_ACOUSTIC_PHANTOM_H
