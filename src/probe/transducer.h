// Matrix-transducer geometry. The probe lies in the z=0 plane, centered on
// the origin, elements on a regular grid with pitch λ/2 (Table I).
#ifndef US3D_PROBE_TRANSDUCER_H
#define US3D_PROBE_TRANSDUCER_H

#include <cstddef>

#include "common/vec3.h"

namespace us3d::probe {

/// Static description of a matrix transducer head (Table I, "Transducer
/// Head" block).
struct TransducerSpec {
  int elements_x = 0;             ///< ex: elements along azimuth (x)
  int elements_y = 0;             ///< ey: elements along elevation (y)
  double pitch_m = 0.0;           ///< element-to-element spacing
  double center_frequency_hz = 0.0;  ///< fc
  double bandwidth_hz = 0.0;         ///< B

  int element_count() const { return elements_x * elements_y; }
  /// Physical extent of the aperture along x/y.
  double aperture_x_m() const { return elements_x * pitch_m; }
  double aperture_y_m() const { return elements_y * pitch_m; }
  /// Wavelength for a given speed of sound.
  double wavelength_m(double speed_of_sound) const {
    return speed_of_sound / center_frequency_hz;
  }
};

/// Element-position calculator for a TransducerSpec. Grid indices run
/// ix in [0, ex), iy in [0, ey); positions are centred so that the grid
/// centroid coincides with the origin.
class MatrixProbe {
 public:
  explicit MatrixProbe(const TransducerSpec& spec);

  const TransducerSpec& spec() const { return spec_; }
  int elements_x() const { return spec_.elements_x; }
  int elements_y() const { return spec_.elements_y; }
  int element_count() const { return spec_.element_count(); }

  /// Centre coordinate of element (ix, iy); z is always 0.
  Vec3 element_position(int ix, int iy) const;
  Vec3 element_position(int flat_index) const;

  /// Row-major flattening: flat = iy * elements_x + ix.
  int flat_index(int ix, int iy) const;
  int index_x(int flat_index) const;
  int index_y(int flat_index) const;

  /// Signed x/y coordinate of a column/row (used by the steering tables,
  /// which factor corrections per-column and per-row).
  double column_x(int ix) const;
  double row_y(int iy) const;

  /// Largest |position| over all elements (aperture corner radius).
  double max_element_radius() const;

 private:
  TransducerSpec spec_;
  double half_extent_x_;  // offset so the grid is centred
  double half_extent_y_;
};

}  // namespace us3d::probe

#endif  // US3D_PROBE_TRANSDUCER_H
