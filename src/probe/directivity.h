// Element directivity model. Matrix elements radiate/receive efficiently
// only within a cone around their surface normal (+z); the paper uses this
// to prune reference-table entries (Fig. 3a) and to filter the worst-case
// steering errors (Sec. VI-A "filtered away by apodization ... beyond the
// elements' directivity").
#ifndef US3D_PROBE_DIRECTIVITY_H
#define US3D_PROBE_DIRECTIVITY_H

#include "common/vec3.h"

namespace us3d::probe {

/// Soft + hard directivity model for a square piston element.
///
/// The soft model is the classic hard-baffle piston response
///   D(theta) = sinc(pi * (w/lambda) * sin(theta)) * cos(theta)
/// and the hard model is a cone of half-angle `cutoff`, outside which the
/// element is considered blind (used for pruning and error filtering).
class Directivity {
 public:
  /// Explicit cutoff cone.
  Directivity(double element_width_m, double wavelength_m,
              double cutoff_angle_rad);

  /// Derive the cutoff from the soft model's -`db_down` dB point (solved
  /// numerically at construction; e.g. db_down = 6 for the -6 dB beamwidth).
  static Directivity from_db_down(double element_width_m, double wavelength_m,
                                  double db_down);

  /// Soft amplitude response in [0, 1] at angle `theta` off the normal.
  double amplitude(double theta_rad) const;

  double cutoff_angle() const { return cutoff_; }

  /// Angle between the element normal (+z) and the direction element->point.
  static double angle_to(const Vec3& element_pos, const Vec3& point);

  /// True if `point` lies inside this element's acceptance cone.
  bool accepts(const Vec3& element_pos, const Vec3& point) const;

 private:
  double width_over_lambda_;
  double cutoff_;
};

}  // namespace us3d::probe

#endif  // US3D_PROBE_DIRECTIVITY_H
