// Apodization windows. The paper relies on apodization to suppress the
// contribution of elements at extreme angles, which is where the TABLESTEER
// far-field approximation is worst (Sec. V-A, VI-A).
#ifndef US3D_PROBE_APODIZATION_H
#define US3D_PROBE_APODIZATION_H

#include <vector>

#include "probe/transducer.h"

namespace us3d::probe {

enum class WindowKind {
  kRect,
  kHann,
  kHamming,
  kTukey,     ///< flat top with cosine tapers; alpha = taper fraction
  kBlackman,
};

/// Scalar window value at normalized position u in [0, 1] across the
/// aperture (0 and 1 are the aperture edges, 0.5 the centre).
/// `tukey_alpha` is only used for WindowKind::kTukey.
double window_value(WindowKind kind, double u, double tukey_alpha = 0.5);

/// Per-element apodization weights for a matrix probe, built as a separable
/// product of an x-window and a y-window (standard practice for 2D arrays).
class ApodizationMap {
 public:
  ApodizationMap(const MatrixProbe& probe, WindowKind kind,
                 double tukey_alpha = 0.5);

  double weight(int ix, int iy) const;
  double weight_flat(int flat_index) const;
  int elements_x() const { return nx_; }
  int elements_y() const { return ny_; }

  /// Sum of all weights (useful for normalising beamformed output).
  double total_weight() const;

 private:
  int nx_;
  int ny_;
  std::vector<double> wx_;
  std::vector<double> wy_;
};

}  // namespace us3d::probe

#endif  // US3D_PROBE_APODIZATION_H
