#include "probe/presets.h"

#include "common/contracts.h"

namespace us3d::probe {

namespace {

constexpr double kCenterFrequencyHz = 4.0e6;
constexpr double kBandwidthHz = 4.0e6;

// lambda = c / fc = 1540 / 4e6 = 0.385 mm; pitch = lambda / 2 (Table I).
constexpr double kPitchM = kSpeedOfSoundTissue / kCenterFrequencyHz / 2.0;

}  // namespace

TransducerSpec paper_probe() {
  return TransducerSpec{
      .elements_x = 100,
      .elements_y = 100,
      .pitch_m = kPitchM,
      .center_frequency_hz = kCenterFrequencyHz,
      .bandwidth_hz = kBandwidthHz,
  };
}

TransducerSpec small_probe(int elements_per_side) {
  US3D_EXPECTS(elements_per_side > 0);
  TransducerSpec spec = paper_probe();
  spec.elements_x = elements_per_side;
  spec.elements_y = elements_per_side;
  return spec;
}

TransducerSpec figure3_probe() { return small_probe(16); }

}  // namespace us3d::probe
