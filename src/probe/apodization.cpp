#include "probe/apodization.h"

#include <cmath>

#include "common/angles.h"
#include "common/contracts.h"

namespace us3d::probe {

double window_value(WindowKind kind, double u, double tukey_alpha) {
  US3D_EXPECTS(u >= 0.0 && u <= 1.0);
  switch (kind) {
    case WindowKind::kRect:
      return 1.0;
    case WindowKind::kHann:
      return 0.5 - 0.5 * std::cos(2.0 * kPi * u);
    case WindowKind::kHamming:
      return 0.54 - 0.46 * std::cos(2.0 * kPi * u);
    case WindowKind::kTukey: {
      US3D_EXPECTS(tukey_alpha >= 0.0 && tukey_alpha <= 1.0);
      if (tukey_alpha == 0.0) return 1.0;
      const double half = tukey_alpha / 2.0;
      if (u < half) {
        return 0.5 * (1.0 + std::cos(kPi * (2.0 * u / tukey_alpha - 1.0)));
      }
      if (u > 1.0 - half) {
        return 0.5 *
               (1.0 + std::cos(kPi * (2.0 * u / tukey_alpha -
                                      2.0 / tukey_alpha + 1.0)));
      }
      return 1.0;
    }
    case WindowKind::kBlackman:
      return 0.42 - 0.5 * std::cos(2.0 * kPi * u) +
             0.08 * std::cos(4.0 * kPi * u);
  }
  return 1.0;  // unreachable
}

ApodizationMap::ApodizationMap(const MatrixProbe& probe, WindowKind kind,
                               double tukey_alpha)
    : nx_(probe.elements_x()), ny_(probe.elements_y()) {
  wx_.reserve(static_cast<std::size_t>(nx_));
  wy_.reserve(static_cast<std::size_t>(ny_));
  for (int ix = 0; ix < nx_; ++ix) {
    const double u = nx_ == 1 ? 0.5
                              : static_cast<double>(ix) /
                                    static_cast<double>(nx_ - 1);
    wx_.push_back(window_value(kind, u, tukey_alpha));
  }
  for (int iy = 0; iy < ny_; ++iy) {
    const double u = ny_ == 1 ? 0.5
                              : static_cast<double>(iy) /
                                    static_cast<double>(ny_ - 1);
    wy_.push_back(window_value(kind, u, tukey_alpha));
  }
}

double ApodizationMap::weight(int ix, int iy) const {
  US3D_EXPECTS(ix >= 0 && ix < nx_);
  US3D_EXPECTS(iy >= 0 && iy < ny_);
  return wx_[static_cast<std::size_t>(ix)] * wy_[static_cast<std::size_t>(iy)];
}

double ApodizationMap::weight_flat(int flat) const {
  US3D_EXPECTS(flat >= 0 && flat < nx_ * ny_);
  return weight(flat % nx_, flat / nx_);
}

double ApodizationMap::total_weight() const {
  double sx = 0.0;
  for (const double w : wx_) sx += w;
  double sy = 0.0;
  for (const double w : wy_) sy += w;
  return sx * sy;
}

}  // namespace us3d::probe
