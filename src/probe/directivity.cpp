#include "probe/directivity.h"

#include <algorithm>
#include <cmath>

#include "common/angles.h"
#include "common/contracts.h"

namespace us3d::probe {

namespace {

double sinc(double x) { return x == 0.0 ? 1.0 : std::sin(x) / x; }

}  // namespace

Directivity::Directivity(double element_width_m, double wavelength_m,
                         double cutoff_angle_rad)
    : width_over_lambda_(element_width_m / wavelength_m),
      cutoff_(cutoff_angle_rad) {
  US3D_EXPECTS(element_width_m > 0.0 && wavelength_m > 0.0);
  US3D_EXPECTS(cutoff_angle_rad > 0.0 && cutoff_angle_rad <= kPi / 2.0);
}

Directivity Directivity::from_db_down(double element_width_m,
                                      double wavelength_m, double db_down) {
  US3D_EXPECTS(db_down > 0.0);
  const double target = std::pow(10.0, -db_down / 20.0);
  // The piston response is monotonically decreasing on [0, pi/2] for
  // w <= lambda, so bisection is safe.
  Directivity probe_model(element_width_m, wavelength_m, kPi / 2.0);
  double lo = 0.0;
  double hi = kPi / 2.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (probe_model.amplitude(mid) > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return Directivity(element_width_m, wavelength_m, 0.5 * (lo + hi));
}

double Directivity::amplitude(double theta_rad) const {
  const double t = std::abs(theta_rad);
  if (t >= kPi / 2.0) return 0.0;
  return std::abs(sinc(kPi * width_over_lambda_ * std::sin(t)) * std::cos(t));
}

double Directivity::angle_to(const Vec3& element_pos, const Vec3& point) {
  const Vec3 d = point - element_pos;
  const double n = d.norm();
  US3D_EXPECTS(n > 0.0);
  const double cos_theta = d.z / n;
  return std::acos(std::clamp(cos_theta, -1.0, 1.0));
}

bool Directivity::accepts(const Vec3& element_pos, const Vec3& point) const {
  return angle_to(element_pos, point) <= cutoff_;
}

}  // namespace us3d::probe
