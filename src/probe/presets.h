// Probe presets, including the paper's Table I transducer head.
#ifndef US3D_PROBE_PRESETS_H
#define US3D_PROBE_PRESETS_H

#include "probe/transducer.h"

namespace us3d::probe {

/// Speed of sound in soft tissue used throughout the paper (Table I).
constexpr double kSpeedOfSoundTissue = 1540.0;  // m/s

/// The paper's 100x100-element, 4 MHz, lambda/2-pitch matrix probe.
TransducerSpec paper_probe();

/// Scaled-down probes with the same fc/pitch, for tests and the imaging
/// example (a 100x100 probe makes exhaustive checks needlessly slow).
TransducerSpec small_probe(int elements_per_side);

/// The 16x16 probe used for Figure 3a's illustration geometry.
TransducerSpec figure3_probe();

}  // namespace us3d::probe

#endif  // US3D_PROBE_PRESETS_H
