#include "probe/transducer.h"

#include <cmath>

#include "common/contracts.h"

namespace us3d::probe {

MatrixProbe::MatrixProbe(const TransducerSpec& spec) : spec_(spec) {
  US3D_EXPECTS(spec.elements_x > 0 && spec.elements_y > 0);
  US3D_EXPECTS(spec.pitch_m > 0.0);
  US3D_EXPECTS(spec.center_frequency_hz > 0.0);
  half_extent_x_ = 0.5 * static_cast<double>(spec.elements_x - 1) * spec.pitch_m;
  half_extent_y_ = 0.5 * static_cast<double>(spec.elements_y - 1) * spec.pitch_m;
}

Vec3 MatrixProbe::element_position(int ix, int iy) const {
  US3D_EXPECTS(ix >= 0 && ix < spec_.elements_x);
  US3D_EXPECTS(iy >= 0 && iy < spec_.elements_y);
  return {column_x(ix), row_y(iy), 0.0};
}

Vec3 MatrixProbe::element_position(int flat) const {
  return element_position(index_x(flat), index_y(flat));
}

int MatrixProbe::flat_index(int ix, int iy) const {
  US3D_EXPECTS(ix >= 0 && ix < spec_.elements_x);
  US3D_EXPECTS(iy >= 0 && iy < spec_.elements_y);
  return iy * spec_.elements_x + ix;
}

int MatrixProbe::index_x(int flat) const {
  US3D_EXPECTS(flat >= 0 && flat < element_count());
  return flat % spec_.elements_x;
}

int MatrixProbe::index_y(int flat) const {
  US3D_EXPECTS(flat >= 0 && flat < element_count());
  return flat / spec_.elements_x;
}

double MatrixProbe::column_x(int ix) const {
  return static_cast<double>(ix) * spec_.pitch_m - half_extent_x_;
}

double MatrixProbe::row_y(int iy) const {
  return static_cast<double>(iy) * spec_.pitch_m - half_extent_y_;
}

double MatrixProbe::max_element_radius() const {
  return std::hypot(half_extent_x_, half_extent_y_);
}

}  // namespace us3d::probe
