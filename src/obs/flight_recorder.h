// Flight recorder: turns the always-on telemetry (span rings, metrics,
// event log, resource profiler) into a post-mortem artifact the moment
// something goes wrong. A dump atomically snapshots all four layers into
// one timestamped bundle directory:
//
//   <dir>/pm-<seq>-<reason>/
//     manifest.json    reason, session, timestamp, artifact list
//     trace.json       Chrome trace (TraceCollector::write_chrome_trace)
//     metrics.json     MetricsRegistry snapshot_json()
//     events.json      last-N structured events (+ drop count)
//     resources.json   ResourceProfiler summary
//
// Triggers: explicit dump() calls, the service's session-failure hook,
// and the SLO watchdog's breach callback. Dumps are rate-limited (a
// crash-looping session can't flood the disk) and retention-bounded
// (oldest bundles deleted beyond max_bundles). Disabled entirely when no
// directory is configured — the default unless US3D_POSTMORTEM_DIR is
// set — so production code can call dump() unconditionally from failure
// paths.
//
// Never call dump() while holding a session or pipeline lock: it does
// file IO and walks every telemetry registry. The service sets a flag
// under its lock and dumps after release (see maybe_dump_failure).
#ifndef US3D_OBS_FLIGHT_RECORDER_H
#define US3D_OBS_FLIGHT_RECORDER_H

#include <chrono>
#include <cstdint>
#include <string>

#include "common/annotated_mutex.h"

namespace us3d::obs {

struct FlightRecorderOptions {
  /// Bundle parent directory; empty disables the recorder. Defaults from
  /// the US3D_POSTMORTEM_DIR environment variable for the global()
  /// instance.
  std::string directory;
  /// Oldest bundles beyond this are deleted after each dump.
  std::size_t max_bundles = 8;
  /// Dumps closer together than this are dropped (counted, not queued).
  std::chrono::milliseconds min_interval{2000};
  /// How many trailing events land in events.json.
  std::size_t last_events = 256;
};

class FlightRecorder {
 public:
  /// Process-wide instance used by the service hooks; configured from
  /// US3D_POSTMORTEM_DIR at first use, reconfigurable via configure().
  static FlightRecorder& global();

  FlightRecorder() = default;
  explicit FlightRecorder(FlightRecorderOptions options);

  void configure(FlightRecorderOptions options);
  bool enabled() const;

  /// Writes one bundle and returns its directory path. Returns "" when
  /// disabled, rate-limited, or the directory cannot be created. `reason`
  /// becomes part of the bundle name — keep it a short slug
  /// ("session_failure", "slo_breach", "manual"); non-slug characters are
  /// sanitized to '-'. Thread-safe; concurrent dumps serialize.
  std::string dump(const std::string& reason, std::int64_t session = -1);

  /// Dumps written / dropped by the rate limiter since construction.
  std::uint64_t bundles_written() const;
  std::uint64_t rate_limited() const;

 private:
  mutable Mutex mutex_;
  FlightRecorderOptions options_ US3D_GUARDED_BY(mutex_);
  std::uint64_t next_bundle_id_ US3D_GUARDED_BY(mutex_) = 1;
  std::chrono::steady_clock::time_point last_dump_ US3D_GUARDED_BY(mutex_);
  bool dumped_once_ US3D_GUARDED_BY(mutex_) = false;
  std::uint64_t bundles_written_ US3D_GUARDED_BY(mutex_) = 0;
  std::uint64_t rate_limited_ US3D_GUARDED_BY(mutex_) = 0;
};

}  // namespace us3d::obs

#endif  // US3D_OBS_FLIGHT_RECORDER_H
