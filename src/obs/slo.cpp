#include "obs/slo.h"

#include <algorithm>
#include <utility>

#include "common/contracts.h"

namespace us3d::obs {

namespace {

/// Sum of the snapshot counters selected by `spec`: an exact name, or —
/// when the spec ends with '.' — every counter in that family.
std::int64_t counter_sum(const MetricsSnapshot& snap, const std::string& spec) {
  if (spec.empty()) return 0;
  if (spec.back() != '.') {
    const auto it = snap.counters.find(spec);
    return it != snap.counters.end() ? it->second : 0;
  }
  std::int64_t total = 0;
  for (auto it = snap.counters.lower_bound(spec);
       it != snap.counters.end() &&
       it->first.compare(0, spec.size(), spec) == 0;
       ++it) {
    total += it->second;
  }
  return total;
}

/// Quantile of a delta histogram (window = bucket counts since the last
/// pass). Interpolates linearly inside the winning bucket; the first
/// bucket's lower edge is 0 and the overflow bucket collapses to the last
/// bound (no upper edge to interpolate toward).
double delta_quantile(const std::vector<double>& bounds,
                      const std::vector<std::uint64_t>& delta, double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t n : delta) total += n;
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total - 1);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < delta.size(); ++i) {
    if (delta[i] == 0) continue;
    const double next = cumulative + static_cast<double>(delta[i]);
    if (rank < next || i + 1 == delta.size()) {
      if (i >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double upper = bounds[i];
      const double within =
          delta[i] > 1
              ? (rank - cumulative) / static_cast<double>(delta[i] - 1)
              : 0.5;
      return lower + within * (upper - lower);
    }
    cumulative = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

}  // namespace

/// Hysteresis + windowing baselines for one target.
struct SloWatchdog::TargetState {
  bool in_breach = false;
  int bad = 0;
  int good = 0;
  bool primed = false;  ///< baselines valid (second pass onward)
  std::vector<std::uint64_t> last_buckets;
  std::int64_t last_count = 0;
  std::int64_t last_numerator = 0;
  std::int64_t last_denominator = 0;
  std::shared_ptr<Counter> breaches;
  std::shared_ptr<Gauge> in_breach_gauge;
};

SloWatchdog::SloWatchdog(MetricsRegistry& registry,
                         std::vector<SloTarget> targets, Options options)
    : registry_(registry), targets_(std::move(targets)), options_(options) {
  US3D_EXPECTS(options_.breach_after >= 1);
  US3D_EXPECTS(options_.recover_after >= 1);
  MutexLock lock(mutex_);
  states_.resize(targets_.size());
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    const std::string prefix = "slo." + targets_[i].name;
    states_[i].breaches = registry_.counter(prefix + ".breaches");
    states_[i].in_breach_gauge = registry_.gauge(prefix + ".in_breach");
    states_[i].in_breach_gauge->set(0);
  }
}

SloWatchdog::~SloWatchdog() { stop(); }

void SloWatchdog::set_breach_callback(
    std::function<void(const SloBreach&)> callback) {
  MutexLock lock(mutex_);
  callback_ = std::move(callback);
}

bool SloWatchdog::windowed_value(std::size_t i, const MetricsSnapshot& snap,
                                 double* out) {
  const SloTarget& target = targets_[i];
  TargetState& state = states_[i];
  switch (target.kind) {
    case SloTarget::Kind::kQuantileMax: {
      const auto it = snap.histograms.find(target.metric);
      if (it == snap.histograms.end()) return false;
      const MetricsSnapshot::Histogram& h = it->second;
      std::vector<std::uint64_t> delta = h.buckets;
      if (state.primed && state.last_buckets.size() == delta.size()) {
        for (std::size_t b = 0; b < delta.size(); ++b) {
          delta[b] -= std::min(delta[b], state.last_buckets[b]);
        }
      }
      const std::int64_t window_count =
          state.primed ? h.count - state.last_count : h.count;
      state.last_buckets = h.buckets;
      state.last_count = h.count;
      state.primed = true;
      if (window_count < target.min_count) return false;
      *out = delta_quantile(h.upper_bounds, delta, target.quantile);
      return true;
    }
    case SloTarget::Kind::kRatioMax: {
      const std::int64_t num = counter_sum(snap, target.metric);
      const std::int64_t den = counter_sum(snap, target.denominator);
      const std::int64_t dnum =
          state.primed ? num - state.last_numerator : num;
      const std::int64_t dden =
          state.primed ? den - state.last_denominator : den;
      state.last_numerator = num;
      state.last_denominator = den;
      state.primed = true;
      if (dden < target.min_count || dden <= 0) return false;
      *out = static_cast<double>(dnum) / static_cast<double>(dden);
      return true;
    }
  }
  return false;
}

std::vector<SloEvaluation> SloWatchdog::evaluate_once() {
  const MetricsSnapshot snap = registry_.snapshot();
  std::vector<SloEvaluation> results;
  std::vector<SloBreach> edges;
  std::function<void(const SloBreach&)> callback;
  {
    MutexLock lock(mutex_);
    callback = callback_;
    results.reserve(targets_.size());
    for (std::size_t i = 0; i < targets_.size(); ++i) {
      const SloTarget& target = targets_[i];
      TargetState& state = states_[i];
      SloEvaluation eval;
      eval.target = target.name;
      eval.has_data = windowed_value(i, snap, &eval.observed);
      // An empty window says nothing either way: it neither accuses nor
      // absolves, so it advances the recovery streak (absence of bad
      // windows) but is reported healthy.
      eval.healthy = !eval.has_data || eval.observed <= target.threshold;
      if (eval.healthy) {
        state.bad = 0;
        state.good += 1;
        if (state.in_breach && state.good >= options_.recover_after) {
          state.in_breach = false;
          state.in_breach_gauge->set(0);
          edges.push_back(
              {target.name, false, eval.observed, target.threshold});
        }
      } else {
        state.good = 0;
        state.bad += 1;
        if (!state.in_breach && state.bad >= options_.breach_after) {
          state.in_breach = true;
          state.in_breach_gauge->set(1);
          state.breaches->increment();
          edges.push_back(
              {target.name, true, eval.observed, target.threshold});
        }
      }
      eval.in_breach = state.in_breach;
      results.push_back(std::move(eval));
    }
  }
  // Edges fire outside the lock: the flight recorder's dump is slow and
  // re-enters the registry.
  if (callback) {
    for (const SloBreach& edge : edges) callback(edge);
  }
  return results;
}

void SloWatchdog::run_loop() {
  for (;;) {
    {
      MutexLock lock(mutex_);
      if (stop_requested_) return;
      // Spurious/early wakeups just mean an early evaluation — harmless.
      cv_.wait_for(mutex_, std::chrono::duration_cast<std::chrono::nanoseconds>(
                               options_.period));
      if (stop_requested_) return;
    }
    evaluate_once();
  }
}

void SloWatchdog::start() {
  MutexLock lock(mutex_);
  if (running_.load(std::memory_order_relaxed)) return;
  stop_requested_ = false;
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { run_loop(); });
}

void SloWatchdog::stop() {
  std::thread thread;
  {
    MutexLock lock(mutex_);
    if (!running_.load(std::memory_order_relaxed)) return;
    stop_requested_ = true;
    thread = std::move(thread_);
  }
  cv_.notify_all();
  if (thread.joinable()) thread.join();
  running_.store(false, std::memory_order_relaxed);
}

bool SloWatchdog::running() const {
  return running_.load(std::memory_order_relaxed);
}

std::vector<SloTarget> SloWatchdog::default_service_targets() {
  std::vector<SloTarget> targets;
  const struct {
    const char* name;
    const char* klass;
    double threshold_s;
  } latency[] = {
      {"interactive_p99", "interactive", 0.100},
      {"routine_p99", "routine", 1.0},
      {"bulk_p99", "bulk", 10.0},
  };
  for (const auto& row : latency) {
    SloTarget t;
    t.name = row.name;
    t.kind = SloTarget::Kind::kQuantileMax;
    t.metric = std::string("service.latency_s.") + row.klass;
    t.quantile = 0.99;
    t.threshold = row.threshold_s;
    t.min_count = 5;
    targets.push_back(std::move(t));
  }
  SloTarget shed;
  shed.name = "shed_rate";
  shed.kind = SloTarget::Kind::kRatioMax;
  shed.metric = "service.shed.";  // family: all three policies
  shed.denominator = "service.frames_submitted";
  shed.threshold = 0.20;
  shed.min_count = 10;
  targets.push_back(std::move(shed));
  return targets;
}

}  // namespace us3d::obs
