#include "obs/resource_profiler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <thread>

#ifdef __linux__
#include <pthread.h>
#include <time.h>
#include <unistd.h>
#endif

#include "common/annotated_mutex.h"
#include "common/json_writer.h"
#include "obs/metrics.h"

namespace us3d::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool env_enables_profile() {
  const char* v = std::getenv("US3D_PROFILE");
  if (v == nullptr) return false;
  const std::string s(v);
  return s == "1" || s == "on" || s == "ON" || s == "true";
}

/// Immutable identity of a registered thread plus its exit flag. All
/// mutable sampling state lives in ProfilerState (under its mutex), so
/// this struct needs no lock of its own.
struct ThreadEntry {
  std::string stage;
#ifdef __linux__
  clockid_t clock{};
  bool clock_ok = false;
#endif
  std::atomic<bool> retired{false};
};

/// Per-entry sampler bookkeeping (baselines for the rate computation).
struct PerThread {
  std::uint64_t last_cpu_ns = 0;
  std::uint64_t last_wall_ns = 0;
  bool primed = false;
};

/// Per-stage aggregate carried across samples (peaks survive thread
/// churn within a stage).
struct StageAgg {
  double cpu_permille = 0;
  double cpu_permille_peak = 0;
  double cpu_seconds = 0;
  int threads = 0;
};

struct ProfilerState {
  Mutex mutex;
  std::vector<std::shared_ptr<ThreadEntry>> entries US3D_GUARDED_BY(mutex);
  std::map<const ThreadEntry*, PerThread> sampling US3D_GUARDED_BY(mutex);
  std::map<std::string, StageAgg> stages US3D_GUARDED_BY(mutex);
  std::int64_t rss_bytes US3D_GUARDED_BY(mutex) = 0;
  std::int64_t rss_bytes_peak US3D_GUARDED_BY(mutex) = 0;
  std::int64_t vm_bytes US3D_GUARDED_BY(mutex) = 0;
  std::uint64_t samples US3D_GUARDED_BY(mutex) = 0;
  bool stop_requested US3D_GUARDED_BY(mutex) = false;
  std::thread sampler US3D_GUARDED_BY(mutex);
  CondVar cv;
  std::atomic<bool> running{false};
};

// Leaked on purpose: stage threads may unregister during static
// destruction, after a non-leaked state would already be gone.
ProfilerState& prof_state() {
  static ProfilerState* s = new ProfilerState();
  return *s;
}

// Marks this thread's entry retired at thread exit; the next sample drops
// it from the roster.
struct ProfilerHandle {
  std::shared_ptr<ThreadEntry> entry;
  ~ProfilerHandle() {
    if (entry) entry->retired.store(true, std::memory_order_release);
  }
};

thread_local ProfilerHandle t_prof_handle;

/// Cumulative CPU time of the entry's thread, or false once the thread is
/// gone (the kernel recycles the clock with ESRCH/EINVAL).
bool read_thread_cpu_ns(const ThreadEntry& entry, std::uint64_t* out) {
#ifdef __linux__
  if (!entry.clock_ok) return false;
  struct timespec ts;
  if (clock_gettime(entry.clock, &ts) != 0) return false;
  *out = static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
  return true;
#else
  (void)entry;
  (void)out;
  return false;
#endif
}

/// /proc/self/statm: "size resident ..." in pages.
void read_process_memory(std::int64_t* vm_bytes, std::int64_t* rss_bytes) {
  *vm_bytes = 0;
  *rss_bytes = 0;
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return;
  long long pages_vm = 0;
  long long pages_rss = 0;
  if (std::fscanf(f, "%lld %lld", &pages_vm, &pages_rss) == 2) {
    const long page = sysconf(_SC_PAGESIZE);
    *vm_bytes = static_cast<std::int64_t>(pages_vm) * page;
    *rss_bytes = static_cast<std::int64_t>(pages_rss) * page;
  }
  std::fclose(f);
#endif
}

}  // namespace

ResourceProfiler& ResourceProfiler::global() {
  static ResourceProfiler profiler;
  (void)prof_state();
  return profiler;
}

void ResourceProfiler::register_current_thread(const std::string& stage) {
  if (t_prof_handle.entry) return;  // first registration wins
  auto entry = std::make_shared<ThreadEntry>();
  entry->stage = stage;
#ifdef __linux__
  entry->clock_ok = pthread_getcpuclockid(pthread_self(), &entry->clock) == 0;
#endif
  ProfilerState& s = prof_state();
  MutexLock lock(s.mutex);
  s.entries.push_back(entry);
  t_prof_handle.entry = std::move(entry);
}

void ResourceProfiler::sample_once(MetricsRegistry& registry) {
  ProfilerState& s = prof_state();
  // Aggregate under the lock, publish after: gauge handles come from the
  // registry (its own lock) and must not nest inside ours.
  std::map<std::string, StageAgg> stages;
  std::int64_t rss = 0;
  std::int64_t vm = 0;
  {
    MutexLock lock(s.mutex);
    const std::uint64_t now = steady_now_ns();
    for (auto& stage : s.stages) {
      stage.second.cpu_permille = 0;
      stage.second.cpu_seconds = 0;
      stage.second.threads = 0;
    }
    auto dead = [&](const std::shared_ptr<ThreadEntry>& e) {
      std::uint64_t cpu = 0;
      if (e->retired.load(std::memory_order_acquire) ||
          !read_thread_cpu_ns(*e, &cpu)) {
        s.sampling.erase(e.get());
        return true;
      }
      PerThread& pt = s.sampling[e.get()];
      StageAgg& agg = s.stages[e->stage];
      agg.threads += 1;
      agg.cpu_seconds += static_cast<double>(cpu) / 1e9;
      if (pt.primed && now > pt.last_wall_ns && cpu >= pt.last_cpu_ns) {
        const double dt_cpu = static_cast<double>(cpu - pt.last_cpu_ns);
        const double dt_wall = static_cast<double>(now - pt.last_wall_ns);
        agg.cpu_permille += 1000.0 * dt_cpu / dt_wall;
      }
      pt.last_cpu_ns = cpu;
      pt.last_wall_ns = now;
      pt.primed = true;
      return false;
    };
    s.entries.erase(std::remove_if(s.entries.begin(), s.entries.end(), dead),
                    s.entries.end());
    for (auto& stage : s.stages) {
      if (stage.second.cpu_permille > stage.second.cpu_permille_peak) {
        stage.second.cpu_permille_peak = stage.second.cpu_permille;
      }
    }
    read_process_memory(&s.vm_bytes, &s.rss_bytes);
    if (s.rss_bytes > s.rss_bytes_peak) s.rss_bytes_peak = s.rss_bytes;
    ++s.samples;
    stages = s.stages;
    rss = s.rss_bytes;
    vm = s.vm_bytes;
  }
  for (const auto& stage : stages) {
    const std::string prefix = "profile." + stage.first;
    registry.gauge(prefix + ".cpu_permille")
        ->set(static_cast<std::int64_t>(stage.second.cpu_permille));
    registry.gauge(prefix + ".threads")->set(stage.second.threads);
  }
  registry.gauge("profile.rss_bytes")->set(rss);
  registry.gauge("profile.vm_bytes")->set(vm);
}

void ResourceProfiler::start(MetricsRegistry& registry,
                             std::chrono::milliseconds period) {
  ProfilerState& s = prof_state();
  MutexLock lock(s.mutex);
  if (s.running.load(std::memory_order_relaxed)) return;
  s.stop_requested = false;
  s.running.store(true, std::memory_order_relaxed);
  s.sampler = std::thread([this, &registry, period] {
    ProfilerState& st = prof_state();
    for (;;) {
      {
        MutexLock sampler_lock(st.mutex);
        if (st.stop_requested) return;
        // Spurious/early wakeups just mean an early sample — harmless.
        st.cv.wait_for(st.mutex,
                       std::chrono::duration_cast<std::chrono::nanoseconds>(
                           period));
        if (st.stop_requested) return;
      }
      sample_once(registry);
    }
  });
}

void ResourceProfiler::stop() {
  ProfilerState& s = prof_state();
  std::thread sampler;
  {
    MutexLock lock(s.mutex);
    if (!s.running.load(std::memory_order_relaxed)) return;
    s.stop_requested = true;
    sampler = std::move(s.sampler);
  }
  s.cv.notify_all();
  if (sampler.joinable()) sampler.join();
  s.running.store(false, std::memory_order_relaxed);
}

bool ResourceProfiler::running() const {
  return prof_state().running.load(std::memory_order_relaxed);
}

ResourceProfile ResourceProfiler::summary() const {
  ProfilerState& s = prof_state();
  ResourceProfile out;
  MutexLock lock(s.mutex);
  for (const auto& stage : s.stages) {
    StageProfile sp;
    sp.stage = stage.first;
    sp.threads = stage.second.threads;
    sp.cpu_permille = stage.second.cpu_permille;
    sp.cpu_permille_peak = stage.second.cpu_permille_peak;
    sp.cpu_seconds = stage.second.cpu_seconds;
    out.stages.push_back(std::move(sp));
  }
  out.rss_bytes = s.rss_bytes;
  out.rss_bytes_peak = s.rss_bytes_peak;
  out.vm_bytes = s.vm_bytes;
  out.samples = s.samples;
  out.running = s.running.load(std::memory_order_relaxed);
  return out;
}

void ResourceProfiler::start_from_env() {
  if (env_enables_profile()) {
    global().start(MetricsRegistry::global());
  }
}

std::string ResourceProfile::to_json() const {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object()
      .kv("running", running)
      .kv("samples", static_cast<std::int64_t>(samples))
      .kv("rss_bytes", rss_bytes)
      .kv("rss_bytes_peak", rss_bytes_peak)
      .kv("vm_bytes", vm_bytes)
      .key("stages")
      .begin_object();
  for (const StageProfile& sp : stages) {
    w.key(sp.stage)
        .begin_object()
        .kv("threads", sp.threads)
        .kv("cpu_permille", sp.cpu_permille)
        .kv("cpu_permille_peak", sp.cpu_permille_peak)
        .kv("cpu_seconds", sp.cpu_seconds)
        .end_object();
  }
  w.end_object().end_object();
  return os.str();
}

}  // namespace us3d::obs
