// Always-on-capable pipeline tracing: per-thread fixed-capacity span ring
// buffers behind a RAII macro, drained by a process-wide collector into
// Chrome trace-event JSON (load `trace.json` at https://ui.perfetto.dev).
//
// Design constraints, in order:
//  - Zero cost when compiled out: `US3D_TRACING=OFF` (CMake option) makes
//    US3D_TRACE_SPAN/US3D_TRACE_INSTANT expand to an empty inline call —
//    no clock reads, no buffers, an empty trace.
//  - Near-zero cost when compiled in but disabled (the default unless the
//    US3D_TRACE env var or TraceCollector::set_enabled turns it on): one
//    relaxed atomic load per span site, no buffer is ever allocated.
//  - Lock-free recording when enabled: each thread owns a fixed-capacity
//    SpanRing (drop-oldest, zero steady-state allocation) and only ever
//    writes its own ring; the collector snapshots rings from any thread
//    through a per-slot sequence-number protocol (a seqlock over atomic
//    fields), so a mid-run export never blocks a pipeline stage and never
//    reads a torn record.
//
// Span names and argument names must be string literals (or otherwise
// outlive the collector) — records store the pointers, never copies,
// which is what keeps recording allocation-free.
#ifndef US3D_OBS_TRACE_H
#define US3D_OBS_TRACE_H

#ifndef US3D_TRACING
#define US3D_TRACING 1
#endif

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace us3d::obs {

/// One completed span as recorded by the owning thread. Args are optional
/// (null name = absent): two named integers (frame sequence, session id)
/// plus two named static strings (SIMD backend, arithmetic precision).
struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t t0_ns = 0;  ///< begin, ns since the process trace epoch
  std::uint64_t t1_ns = 0;  ///< end (>= t0_ns on the same thread)
  const char* arg1_name = nullptr;
  std::int64_t arg1 = 0;
  const char* arg2_name = nullptr;
  std::int64_t arg2 = 0;
  const char* sarg_name = nullptr;
  const char* sarg = nullptr;
  const char* sarg2_name = nullptr;
  const char* sarg2 = nullptr;
};

/// Fixed-capacity drop-oldest ring of SpanRecords: single recording
/// thread, any number of concurrent snapshot readers. Records overwritten
/// before a snapshot saw them are counted, never silently lost.
class SpanRing {
 public:
  explicit SpanRing(std::size_t capacity);
  ~SpanRing();  // out of line: Slot is complete only in trace.cpp

  SpanRing(const SpanRing&) = delete;
  SpanRing& operator=(const SpanRing&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Owner thread only. Never blocks, never allocates.
  void push(const SpanRecord& record);

  /// Any thread. Appends the current window (oldest to newest) to `out`
  /// and returns the cumulative count of spans dropped since the last
  /// reset (overwritten before this snapshot, plus records skipped
  /// because the owner was overwriting them during the read).
  std::uint64_t snapshot(std::vector<SpanRecord>& out) const;

  /// Any thread: discards the current window and zeroes the drop count.
  void reset();

 private:
  struct Slot;

  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> writes_{0};  ///< records ever pushed
  std::atomic<std::uint64_t> base_{0};    ///< reset watermark
};

/// Everything one thread contributed to the trace.
struct ThreadTrace {
  std::uint64_t tid = 0;
  std::string name;  ///< from set_thread_name(); "thread-<tid>" default
  std::uint64_t dropped_spans = 0;
  std::vector<SpanRecord> spans;  ///< completion order, oldest first
};

struct TraceSnapshot {
  std::vector<ThreadTrace> threads;

  std::uint64_t total_spans() const;
  std::uint64_t total_dropped() const;
  /// First record with this span name, or nullptr (test/assert helper).
  const SpanRecord* find(const char* name) const;
};

/// Process-wide collector: owns every thread's ring buffer (buffers
/// outlive their threads so a trace can be exported after the stage
/// threads joined), the runtime on/off switch, and the Chrome exporter.
class TraceCollector {
 public:
  static TraceCollector& instance();

  /// Runtime switch. Starts enabled only when the US3D_TRACE environment
  /// variable is "1"/"on" at first use; benches and services toggle it
  /// explicitly. Cheap to read (one relaxed load) — span sites check it
  /// before touching the clock.
  void set_enabled(bool enabled);
  bool enabled() const;

  /// True when US3D_TRACING compiled the span sites in at all.
  static constexpr bool compiled_in() { return US3D_TRACING != 0; }

  /// Ring capacity (spans) for threads that register after this call.
  void set_thread_capacity(std::size_t spans);
  std::size_t thread_capacity() const;

  /// Non-destructive snapshot of every thread's current window.
  TraceSnapshot collect() const;

  /// Chrome trace-event JSON: balanced B/E pairs per thread (ts
  /// monotonically non-decreasing within a thread), thread-name metadata
  /// events, and the dropped-span total under otherData. Loadable in
  /// Perfetto / chrome://tracing.
  void write_chrome_trace(std::ostream& os) const;

  /// Discards all recorded spans and zeroes drop counters. Buffers of
  /// threads that already exited are released entirely, so long-lived
  /// processes that trace, export and reset stay bounded.
  void reset();

  // Recording interface (used by TraceSpan / trace_instant).
  void record(const SpanRecord& record);
  std::uint64_t now_ns() const;

  /// Names this thread in the exported trace (thread-name metadata
  /// event). No-op while tracing is disabled.
  void name_this_thread(const std::string& name);

  struct ThreadBuffer;  // implementation detail, defined in trace.cpp

 private:
  TraceCollector();
  ThreadBuffer& buffer_for_this_thread();
};

/// Convenience: TraceCollector::instance().name_this_thread(name).
void set_thread_name(const std::string& name);

/// RAII span: records the enclosing scope as one completed span on exit.
/// Constructed disabled when the collector is off — no clock read.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  TraceSpan(const char* name, const char* arg1_name, std::int64_t arg1);
  TraceSpan(const char* name, const char* arg1_name, std::int64_t arg1,
            const char* arg2_name, std::int64_t arg2);
  TraceSpan(const char* name, const char* arg1_name, std::int64_t arg1,
            const char* arg2_name, std::int64_t arg2, const char* sarg_name,
            const char* sarg);
  TraceSpan(const char* name, const char* arg1_name, std::int64_t arg1,
            const char* arg2_name, std::int64_t arg2, const char* sarg_name,
            const char* sarg, const char* sarg2_name, const char* sarg2);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  SpanRecord record_;
  bool active_ = false;
};

/// Zero-duration span (an event): admission decisions, shed drops.
void trace_instant(const char* name);
void trace_instant(const char* name, const char* arg1_name,
                   std::int64_t arg1);
void trace_instant(const char* name, const char* arg1_name, std::int64_t arg1,
                   const char* arg2_name, std::int64_t arg2);

namespace detail {
/// Swallows span arguments in compiled-out builds without unused-variable
/// warnings; inlines to nothing.
template <typename... Args>
constexpr void trace_noop(const Args&...) {}
}  // namespace detail

}  // namespace us3d::obs

#define US3D_TRACE_CAT2(a, b) a##b
#define US3D_TRACE_CAT(a, b) US3D_TRACE_CAT2(a, b)

#if US3D_TRACING
/// Traces the enclosing scope: US3D_TRACE_SPAN("stage.beamform",
/// "sequence", seq, "session", id, "backend", backend_name).
#define US3D_TRACE_SPAN(...) \
  ::us3d::obs::TraceSpan US3D_TRACE_CAT(us3d_trace_span_, __LINE__)(__VA_ARGS__)
/// Records a zero-duration event.
#define US3D_TRACE_INSTANT(...) ::us3d::obs::trace_instant(__VA_ARGS__)
#else
#define US3D_TRACE_SPAN(...) ::us3d::obs::detail::trace_noop(__VA_ARGS__)
#define US3D_TRACE_INSTANT(...) ::us3d::obs::detail::trace_noop(__VA_ARGS__)
#endif

#endif  // US3D_OBS_TRACE_H
