#include "obs/flight_recorder.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/json_writer.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/resource_profiler.h"
#include "obs/trace.h"

namespace us3d::obs {

namespace fs = std::filesystem;

namespace {

std::string sanitize_slug(const std::string& reason) {
  std::string out;
  out.reserve(reason.size());
  for (const char c : reason) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    out.push_back(ok ? c : '-');
  }
  return out.empty() ? std::string("dump") : out;
}

/// UTC wall time for the manifest ("2026-08-08T12:34:56Z").
std::string utc_timestamp() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// Zero-padded bundle ordinal so lexical directory order is dump order
/// (what the retention sweep sorts by).
std::string bundle_ordinal(std::uint64_t id) {
  std::ostringstream os;
  os.width(6);
  os.fill('0');
  os << id;
  return os.str();
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderOptions options) {
  configure(std::move(options));
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* recorder = [] {
    auto* r = new FlightRecorder();
    FlightRecorderOptions options;
    const char* dir = std::getenv("US3D_POSTMORTEM_DIR");
    if (dir != nullptr) options.directory = dir;
    r->configure(std::move(options));
    return r;
  }();
  return *recorder;
}

void FlightRecorder::configure(FlightRecorderOptions options) {
  MutexLock lock(mutex_);
  options_ = std::move(options);
}

bool FlightRecorder::enabled() const {
  MutexLock lock(mutex_);
  return !options_.directory.empty();
}

std::uint64_t FlightRecorder::bundles_written() const {
  MutexLock lock(mutex_);
  return bundles_written_;
}

std::uint64_t FlightRecorder::rate_limited() const {
  MutexLock lock(mutex_);
  return rate_limited_;
}

std::string FlightRecorder::dump(const std::string& reason,
                                 std::int64_t session) {
  // Serializes concurrent dumps by design: a post-mortem is rare and the
  // failure path that triggers it must never throw, so the whole body is
  // fenced. Only leaf locks (registry/collector/log internals) nest
  // inside.
  MutexLock lock(mutex_);
  if (options_.directory.empty()) return "";
  const auto now = std::chrono::steady_clock::now();
  if (dumped_once_ && now - last_dump_ < options_.min_interval) {
    ++rate_limited_;
    MetricsRegistry::global().counter("flightrec.rate_limited")->increment();
    return "";
  }
  try {
    const std::string name =
        "pm-" + bundle_ordinal(next_bundle_id_) + "-" + sanitize_slug(reason);
    const fs::path parent(options_.directory);
    const fs::path bundle = parent / name;
    fs::create_directories(bundle);

    {
      std::ofstream os(bundle / "trace.json");
      TraceCollector::instance().write_chrome_trace(os);
    }
    {
      std::ofstream os(bundle / "metrics.json");
      os << MetricsRegistry::global().snapshot_json();
    }
    {
      std::ofstream os(bundle / "events.json");
      EventLog::instance().write_events_json(os, options_.last_events);
    }
    {
      // A final synchronous pass so resources.json reflects the moment of
      // failure, not the last sampler tick.
      ResourceProfiler::global().sample_once(MetricsRegistry::global());
      std::ofstream os(bundle / "resources.json");
      os << ResourceProfiler::global().summary().to_json();
    }
    {
      // Written last: a manifest's presence marks a complete bundle.
      std::ofstream os(bundle / "manifest.json");
      JsonWriter w(os);
      w.begin_object()
          .kv("reason", reason)
          .kv("session", session)
          .kv("timestamp", utc_timestamp())
          .kv("bundle", name)
          .key("artifacts")
          .begin_array()
          .value("trace.json")
          .value("metrics.json")
          .value("events.json")
          .value("resources.json")
          .end_array()
          .end_object();
    }

    // Retention: drop the oldest bundles beyond max_bundles (lexical
    // order == dump order thanks to the zero-padded ordinal).
    std::vector<fs::path> bundles;
    for (const auto& entry : fs::directory_iterator(parent)) {
      if (entry.is_directory() &&
          entry.path().filename().string().rfind("pm-", 0) == 0) {
        bundles.push_back(entry.path());
      }
    }
    std::sort(bundles.begin(), bundles.end());
    while (bundles.size() > options_.max_bundles) {
      fs::remove_all(bundles.front());
      bundles.erase(bundles.begin());
    }

    ++next_bundle_id_;
    last_dump_ = now;
    dumped_once_ = true;
    ++bundles_written_;
    MetricsRegistry::global().counter("flightrec.bundles_written")
        ->increment();
    US3D_EVENT_INFO("flightrec.dump", session, -1, "bundle written");
    return bundle.string();
  } catch (...) {
    // Never let a post-mortem attempt take down the failure path that
    // asked for it.
    return "";
  }
}

}  // namespace us3d::obs
