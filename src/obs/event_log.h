// Structured event log: the narrative companion to the span rings. Spans
// say how long each stage took; events say *what happened* — every
// admission, shed, rebalance, failure and queue stall leaves one typed,
// timestamped record the flight recorder can replay after a session dies.
//
// Same discipline as obs/trace.h, deliberately:
//  - Near-zero cost when disabled (the default unless the US3D_EVENTS env
//    var or EventLog::set_enabled turns it on): one relaxed atomic load
//    per emit site, no buffer ever allocated.
//  - Lock-free recording when enabled: each thread owns a fixed-capacity
//    drop-oldest EventRing and only ever writes its own ring; snapshots
//    read through the same per-slot seqlock protocol as SpanRing, so an
//    export mid-chaos never blocks an emitter and never reads a torn
//    record. Overwritten-before-seen records are counted, never silently
//    lost.
//  - Never allocates on the emit path: records store `const char*` for
//    the event name, the detail string and both argument keys — they MUST
//    be string literals (or otherwise outlive the log). tools/lint_us3d.py
//    enforces the literal rule at the US3D_EVENT_* macro sites exactly as
//    it does for trace spans.
#ifndef US3D_OBS_EVENT_LOG_H
#define US3D_OBS_EVENT_LOG_H

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

namespace us3d::obs {

enum class EventSeverity : std::int32_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/// "debug" / "info" / "warn" / "error" (static storage).
const char* severity_name(EventSeverity severity);

/// One recorded event. The pointers are borrowed, never owned: name and
/// the optional detail/key strings must have static storage.
struct EventRecord {
  std::uint64_t t_ns = 0;  ///< ns since the process trace epoch
  EventSeverity severity = EventSeverity::kInfo;
  const char* name = nullptr;   ///< literal: "service.shed", ...
  std::int64_t session = -1;    ///< session context; -1 = none
  std::int64_t sequence = -1;   ///< frame sequence context; -1 = none
  const char* detail = nullptr; ///< static string (backend, policy, reason)
  const char* arg1_name = nullptr;
  std::int64_t arg1 = 0;
  const char* arg2_name = nullptr;
  std::int64_t arg2 = 0;
};

/// Fixed-capacity drop-oldest ring of EventRecords: single recording
/// thread, any number of concurrent snapshot readers (the SpanRing
/// seqlock protocol over atomic fields — see event_log.cpp).
class EventRing {
 public:
  explicit EventRing(std::size_t capacity);
  ~EventRing();  // out of line: Slot is complete only in event_log.cpp

  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Owner thread only. Never blocks, never allocates.
  void push(const EventRecord& record);

  /// Any thread. Appends the current window (oldest to newest) to `out`
  /// and returns the cumulative count of records dropped since the last
  /// reset (overwritten before this snapshot saw them, plus records
  /// skipped because the owner was mid-overwrite during the read).
  std::uint64_t snapshot(std::vector<EventRecord>& out) const;

  /// Any thread: discards the current window and zeroes the drop count.
  void reset();

 private:
  struct Slot;

  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> base_{0};
};

/// Everything the log currently remembers, merged across threads and
/// sorted by timestamp (oldest first).
struct EventSnapshot {
  std::vector<EventRecord> events;
  std::uint64_t dropped = 0;

  /// The newest `n` events (suffix of `events`).
  std::vector<EventRecord> last(std::size_t n) const;
  /// First event with this name, or nullptr (test/assert helper).
  const EventRecord* find(const char* name) const;
  std::size_t count(const char* name) const;
};

/// Process-wide event log: owns every thread's ring (rings outlive their
/// threads so a post-mortem can read events from joined stage threads),
/// the runtime switch, and the JSON exporter the flight recorder uses.
class EventLog {
 public:
  static EventLog& instance();

  /// Runtime switch. Starts enabled only when the US3D_EVENTS environment
  /// variable is "1"/"on" at first use. One relaxed load per emit site.
  void set_enabled(bool enabled);
  bool enabled() const;

  /// Ring capacity (events) for threads that register after this call.
  void set_thread_capacity(std::size_t events);
  std::size_t thread_capacity() const;

  /// Non-destructive merged snapshot, sorted by timestamp.
  EventSnapshot collect() const;

  /// {"enabled":...,"dropped":N,"events":[{...}...]} — the newest
  /// `last_n` events (0 = all), readable back through us3d::parse_json.
  void write_events_json(std::ostream& os, std::size_t last_n = 0) const;

  /// Discards all recorded events, zeroes drop counters, and releases the
  /// rings of threads that already exited.
  void reset();

  /// Recording interface (used by the emit functions). Timestamps share
  /// the trace epoch so events line up with spans in a post-mortem.
  void record(const EventRecord& record);

  struct ThreadBuffer;  // implementation detail, defined in event_log.cpp

 private:
  EventLog();
  ThreadBuffer& buffer_for_this_thread();
};

/// Emit one event (cheap no-op while the log is disabled). `name`,
/// `detail` and the argument keys must be string literals / static.
void emit_event(EventSeverity severity, const char* name,
                std::int64_t session = -1, std::int64_t sequence = -1,
                const char* detail = nullptr, const char* arg1_name = nullptr,
                std::int64_t arg1 = 0, const char* arg2_name = nullptr,
                std::int64_t arg2 = 0);

}  // namespace us3d::obs

/// Emit macros, one per severity:
///   US3D_EVENT_WARN("service.shed", session, sequence, policy_name,
///                   "depth", depth);
/// Argument order after the literal name: session id, frame sequence,
/// static detail string, then up to two ("key", value) int64 pairs. All
/// trailing arguments are optional. The name and the keys must be string
/// literals — records keep the pointers (lint-enforced).
#define US3D_EVENT_DEBUG(...) \
  ::us3d::obs::emit_event(::us3d::obs::EventSeverity::kDebug, __VA_ARGS__)
#define US3D_EVENT_INFO(...) \
  ::us3d::obs::emit_event(::us3d::obs::EventSeverity::kInfo, __VA_ARGS__)
#define US3D_EVENT_WARN(...) \
  ::us3d::obs::emit_event(::us3d::obs::EventSeverity::kWarn, __VA_ARGS__)
#define US3D_EVENT_ERROR(...) \
  ::us3d::obs::emit_event(::us3d::obs::EventSeverity::kError, __VA_ARGS__)

#endif  // US3D_OBS_EVENT_LOG_H
