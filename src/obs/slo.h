// SLO watchdog: declarative service-level objectives ("interactive p99
// latency under 100 ms", "shed rate under 5%") evaluated periodically
// against a MetricsRegistry, with hysteresis so one noisy interval
// neither fires a breach nor ends one.
//
// Evaluation is windowed, not lifetime: each pass diffs the relevant
// counters/histogram buckets against the previous pass, so the watchdog
// judges what happened *since the last look* — a service that stops
// shedding actually recovers, instead of dragging its historical average
// around forever. A window with fewer than `min_count` samples is "no
// data" and counts as healthy.
//
// Per target the watchdog maintains
//   slo.<name>.breaches   counter — breach *entries* (edges, not polls)
//   slo.<name>.in_breach  gauge   — 1 while in breach
// and fires the breach callback on both edges (entered and recovered);
// the flight recorder hooks that callback to dump a post-mortem bundle.
#ifndef US3D_OBS_SLO_H
#define US3D_OBS_SLO_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/annotated_mutex.h"
#include "obs/metrics.h"

namespace us3d::obs {

/// One objective. `metric` names a histogram (kQuantileMax) or a counter
/// (kRatioMax); for counters, a trailing '.' makes it a family prefix
/// summed over every matching counter ("service.shed." covers all three
/// shed policies at once).
struct SloTarget {
  enum class Kind {
    kQuantileMax,  ///< histogram quantile of the window must stay <= threshold
    kRatioMax,     ///< counter-delta / denominator-delta must stay <= threshold
  };

  std::string name;     ///< short identifier: "interactive_p99", "shed_rate"
  Kind kind = Kind::kQuantileMax;
  std::string metric;
  std::string denominator;  ///< kRatioMax only: counter (or family prefix)
  double quantile = 0.99;   ///< kQuantileMax only
  double threshold = 0;
  std::int64_t min_count = 1;  ///< window samples below this = "no data"
};

/// Callback payload, fired on breach edges only.
struct SloBreach {
  std::string target;
  bool entered = false;  ///< true = entered breach, false = recovered
  double observed = 0;   ///< the windowed value that crossed the line
  double threshold = 0;
};

/// Per-target result of one evaluation pass (for tests and reporting).
struct SloEvaluation {
  std::string target;
  bool has_data = false;
  double observed = 0;
  bool healthy = true;    ///< this window alone (before hysteresis)
  bool in_breach = false; ///< sticky state after hysteresis
};

class SloWatchdog {
 public:
  struct Options {
    int breach_after = 2;   ///< consecutive bad windows to enter breach
    int recover_after = 2;  ///< consecutive good windows to recover
    std::chrono::milliseconds period{500};
  };

  /// `registry` must outlive the watchdog. Registers the per-target
  /// breach counter and in-breach gauge immediately.
  SloWatchdog(MetricsRegistry& registry, std::vector<SloTarget> targets,
              Options options);
  SloWatchdog(MetricsRegistry& registry, std::vector<SloTarget> targets)
      : SloWatchdog(registry, std::move(targets), Options()) {}
  ~SloWatchdog();

  SloWatchdog(const SloWatchdog&) = delete;
  SloWatchdog& operator=(const SloWatchdog&) = delete;

  /// Invoked on every breach edge, outside the watchdog's lock. Set
  /// before start(); the flight recorder's dump() is the intended sink.
  void set_breach_callback(std::function<void(const SloBreach&)> callback);

  /// One synchronous evaluation pass (what the periodic thread runs);
  /// callable directly for deterministic tests.
  std::vector<SloEvaluation> evaluate_once();

  /// Periodic evaluation thread. stop() joins it; the destructor stops
  /// implicitly.
  void start();
  void stop();
  bool running() const;

  const std::vector<SloTarget>& targets() const { return targets_; }

  /// The stock service objectives: per-priority-class p99 latency
  /// (interactive 100 ms / routine 1 s / bulk 10 s) over
  /// "service.latency_s.<class>", plus total shed ratio ("service.shed."
  /// family over "service.frames_submitted") <= 20%.
  static std::vector<SloTarget> default_service_targets();

 private:
  struct TargetState;

  void run_loop();
  /// Windowed value of target i given the fresh snapshot. Returns false
  /// when the window has no data.
  bool windowed_value(std::size_t i, const MetricsSnapshot& snap,
                      double* out) US3D_REQUIRES(mutex_);

  MetricsRegistry& registry_;
  const std::vector<SloTarget> targets_;
  const Options options_;

  mutable Mutex mutex_;
  std::vector<TargetState> states_ US3D_GUARDED_BY(mutex_);
  std::function<void(const SloBreach&)> callback_ US3D_GUARDED_BY(mutex_);
  bool stop_requested_ US3D_GUARDED_BY(mutex_) = false;
  std::thread thread_ US3D_GUARDED_BY(mutex_);
  CondVar cv_;
  std::atomic<bool> running_{false};
};

}  // namespace us3d::obs

#endif  // US3D_OBS_SLO_H
