// Prometheus text-format exposition for MetricsRegistry: the pull-side
// counterpart of snapshot_json(), rendering one `# TYPE`-annotated block
// per metric family so the future networked front-end can serve /metrics
// straight off the registry.
//
// Mapping rules (version 0.0.4 text format):
//  - Registry dot-paths become metric names with every character outside
//    [a-zA-Z0-9_:] rewritten to '_' and a leading digit guarded with '_'
//    ("service.latency_s.interactive" -> "service_latency_s_interactive").
//    The original dot-path is preserved verbatim in a `us3d_name` label,
//    escaped per the format (backslash, double-quote, newline).
//  - Counters render as `<name>_total`, gauges as `<name>`.
//  - Histograms render the cumulative `<name>_bucket{le="..."}` series
//    plus `{le="+Inf"}`, then `<name>_sum` and `<name>_count`.
//
// Lifecycle contract, tested in tests/obs/test_exposition.cpp: series
// unlisted via MetricsRegistry::remove_prefix() (closed sessions) never
// reappear in a later exposition — rendering always starts from a fresh
// snapshot of the live name map and nothing here caches families.
#ifndef US3D_OBS_EXPOSITION_H
#define US3D_OBS_EXPOSITION_H

#include <string>

#include "obs/metrics.h"

namespace us3d::obs {

/// "service.s3.depth" -> "service_s3_depth" (charset-sanitized, leading
/// digit guarded). Exposed for tests.
std::string prometheus_name(const std::string& name);

/// Escapes a label value per the text format: \ -> \\, " -> \", newline
/// -> \n. Exposed for tests.
std::string prometheus_label_escape(const std::string& value);

/// Renders a snapshot as Prometheus text format (ends with a newline).
std::string render_prometheus(const MetricsSnapshot& snapshot);

/// Convenience: snapshot + render in one call.
std::string render_prometheus(const MetricsRegistry& registry);

}  // namespace us3d::obs

#endif  // US3D_OBS_EXPOSITION_H
