// Per-stage resource profiler: answers "which stage is burning the CPU
// and how big is the process" as live gauges, so a stalled sink is
// distinguishable from a starved beamformer without attaching a debugger.
//
// Mechanics: pipeline/service threads register themselves under a stage
// label ("ingest", "beamform", "compound", "sink", "worker"); a single
// sampler thread periodically reads each registered thread's CPU clock
// (pthread_getcpuclockid → clock_gettime) plus the process RSS from
// /proc/self/statm, aggregates per stage, and publishes into
// MetricsRegistry::global():
//
//   profile.<stage>.cpu_permille   per-stage CPU utilisation, thousandths
//                                  of one core summed over the stage's
//                                  threads (2000 = two cores saturated)
//   profile.<stage>.threads        live registered threads in the stage
//   profile.rss_bytes              process resident set size
//   profile.vm_bytes               process virtual size
//
// Registration is unconditional and cheap (once per thread); sampling only
// happens while the profiler is started (US3D_PROFILE env var or start()).
// Everything is Linux-specific behind #ifdef __linux__: on other platforms
// registration still tracks stage membership but CPU/RSS read as zero.
#ifndef US3D_OBS_RESOURCE_PROFILER_H
#define US3D_OBS_RESOURCE_PROFILER_H

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace us3d::obs {

class MetricsRegistry;

/// Aggregated view of one stage for the flight-recorder summary.
struct StageProfile {
  std::string stage;
  int threads = 0;           ///< currently registered, not yet exited
  double cpu_permille = 0;   ///< last sample (sum over the stage's threads)
  double cpu_permille_peak = 0;
  double cpu_seconds = 0;    ///< cumulative thread CPU time, live threads
};

/// Everything the profiler currently knows; to_json() is what lands in a
/// post-mortem bundle's resources.json.
struct ResourceProfile {
  std::vector<StageProfile> stages;  ///< sorted by stage name
  std::int64_t rss_bytes = 0;
  std::int64_t rss_bytes_peak = 0;
  std::int64_t vm_bytes = 0;
  std::uint64_t samples = 0;  ///< sampler iterations since start
  bool running = false;

  std::string to_json() const;
};

class ResourceProfiler {
 public:
  static ResourceProfiler& global();

  /// Registers the calling thread under `stage`. Call once near the top
  /// of the thread function; the entry unregisters itself automatically
  /// at thread exit. Safe (and cheap) whether or not sampling is running.
  void register_current_thread(const std::string& stage);

  /// Starts the sampler thread publishing into `registry` every `period`.
  /// No-op if already running.
  void start(MetricsRegistry& registry,
             std::chrono::milliseconds period = std::chrono::milliseconds(100));
  /// Stops and joins the sampler thread. No-op if not running.
  void stop();
  bool running() const;

  /// One synchronous sampling pass into `registry` — what the sampler
  /// thread does per period, callable directly for deterministic tests
  /// and for a final pre-dump refresh from the flight recorder.
  void sample_once(MetricsRegistry& registry);

  /// Aggregated snapshot for the post-mortem bundle.
  ResourceProfile summary() const;

  /// Honors the US3D_PROFILE env var: starts sampling into the global
  /// registry when set. Called by the service; harmless to call twice.
  static void start_from_env();

 private:
  ResourceProfiler() = default;
};

}  // namespace us3d::obs

#endif  // US3D_OBS_RESOURCE_PROFILER_H
